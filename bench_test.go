// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6-§7). Each benchmark drives the same code paths as
// cmd/lakebench and reports the simulated headline metric of its artifact
// via b.ReportMetric, so `go test -bench=. -benchmem` regenerates the whole
// evaluation. Wall-clock ns/op measures the simulator itself; the custom
// metrics are the paper-comparable numbers.
package lake_test

import (
	"testing"
	"time"

	"lakego/internal/boundary"
	"lakego/internal/contention"
	"lakego/internal/core"
	"lakego/internal/ecryptfs"
	"lakego/internal/experiments"
	"lakego/internal/kleio"
	"lakego/internal/kml"
	"lakego/internal/linnos"
	"lakego/internal/malware"
	"lakego/internal/mllb"
	"lakego/internal/nn"
	"lakego/internal/offload"
	"lakego/internal/trace"
)

func newRT(b *testing.B) *core.Runtime {
	b.Helper()
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	return rt
}

// BenchmarkTable2Channels measures doorbell call time and latency for each
// kernel<->user mechanism (paper Table 2).
func BenchmarkTable2Channels(b *testing.B) {
	for _, k := range boundary.Kinds() {
		b.Run(k.String(), func(b *testing.B) {
			var call, lat time.Duration
			for i := 0; i < b.N; i++ {
				call = boundary.CallTime(k)
				lat = boundary.DoorbellLatency(k)
			}
			b.ReportMetric(float64(call.Microseconds()), "calltime_us")
			b.ReportMetric(float64(lat.Microseconds()), "latency_us")
		})
	}
}

// BenchmarkFig6NetlinkSize measures Netlink command round trips end to end
// through the real transport at each Fig 6 message size.
func BenchmarkFig6NetlinkSize(b *testing.B) {
	for _, size := range []int{128, 1024, 4096, 8192, 16384, 32768} {
		b.Run(sizeName(size), func(b *testing.B) {
			rt := newRT(b)
			tr := boundary.NewTransport(boundary.Netlink, rt.Clock(), 4)
			msg := make([]byte, size)
			var d time.Duration
			for i := 0; i < b.N; i++ {
				if err := tr.SendToUser(msg); err != nil {
					b.Fatal(err)
				}
				if _, ok := tr.RecvInUser(); !ok {
					b.Fatal("message lost")
				}
				d = tr.ChargeRoundTrip(size)
			}
			b.ReportMetric(float64(d.Nanoseconds())/1e3, "roundtrip_us")
		})
	}
}

func sizeName(n int) string {
	if n >= 1024 {
		return itoa(n/1024) + "K"
	}
	return itoa(n) + "B"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkTable4Traces regenerates each Table 4 trace and reports its
// average IOPS.
func BenchmarkTable4Traces(b *testing.B) {
	for _, p := range trace.Profiles() {
		b.Run(p.Name, func(b *testing.B) {
			var s trace.Stats
			for i := 0; i < b.N; i++ {
				s = trace.Measure(p.Generate(42, 10000))
			}
			b.ReportMetric(s.AvgIOPS, "iops")
			b.ReportMetric(s.AvgReadKB, "read_kb")
			b.ReportMetric(s.AvgWriteKB, "write_kb")
		})
	}
}

// BenchmarkTable3Crossovers measures every workload's GPU profitability
// crossover (paper Table 3).
func BenchmarkTable3Crossovers(b *testing.B) {
	rt := newRT(b)
	rt.Clock().Advance(time.Second)
	b.Run("linnos", func(b *testing.B) {
		var cross int
		for i := 0; i < b.N; i++ {
			pts, err := linnos.InferenceSweep(rt, linnos.Base, linnos.Fig8Batches())
			if err != nil {
				b.Fatal(err)
			}
			cross = linnos.Crossover(pts)
		}
		b.ReportMetric(float64(cross), "crossover_batch")
	})
	b.Run("mllb", func(b *testing.B) {
		bal, err := mllb.New(rt, nn.New(1, mllb.Sizes()...))
		if err != nil {
			b.Fatal(err)
		}
		var cross int
		for i := 0; i < b.N; i++ {
			pts, err := mllb.Sweep(bal, offload.StandardBatches())
			if err != nil {
				b.Fatal(err)
			}
			cross = offload.Crossover(pts)
		}
		b.ReportMetric(float64(cross), "crossover_batch")
	})
	b.Run("kml", func(b *testing.B) {
		cls, err := kml.New(rt, nn.New(2, kml.Sizes()...))
		if err != nil {
			b.Fatal(err)
		}
		var cross int
		for i := 0; i < b.N; i++ {
			pts, err := kml.Sweep(cls, offload.StandardBatches())
			if err != nil {
				b.Fatal(err)
			}
			cross = offload.Crossover(pts)
		}
		b.ReportMetric(float64(cross), "crossover_batch")
	})
}

// BenchmarkFig1Contention runs the unmanaged contention timeline and
// reports the worst-case user-space degradation (paper Fig 1: up to 68%).
func BenchmarkFig1Contention(b *testing.B) {
	var deg float64
	for i := 0; i < b.N; i++ {
		rt := newRT(b)
		deg = contention.Fig1Degradation(contention.Fig1(rt))
	}
	b.ReportMetric(deg*100, "degradation_pct")
}

// BenchmarkFig7ReadLatency replays the Fig 7 workload matrix (reduced trace
// length) and reports baseline vs ML average read latency on Mixed+.
func BenchmarkFig7ReadLatency(b *testing.B) {
	rt := newRT(b)
	net, err := linnos.TrainedNetwork(linnos.Base)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := linnos.NewPredictor(rt, linnos.Base, net)
	if err != nil {
		b.Fatal(err)
	}
	w := linnos.MixedWorkload("Mixed+", 2000, 15, 3)
	var base, lake linnos.Result
	for i := 0; i < b.N; i++ {
		if base, err = linnos.Replay(rt, nil, w, linnos.DefaultReplayConfig(linnos.ModeBaseline)); err != nil {
			b.Fatal(err)
		}
		if lake, err = linnos.Replay(rt, pred, w, linnos.DefaultReplayConfig(linnos.ModeLAKE)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(base.AvgRead.Microseconds()), "baseline_us")
	b.ReportMetric(float64(lake.AvgRead.Microseconds()), "lake_us")
	b.ReportMetric((1-float64(lake.AvgRead)/float64(base.AvgRead))*100, "improvement_pct")
}

// BenchmarkFig8Inference measures LinnOS inference at the paper's quoted
// operating point (batch 8) for each model variant and reports the GPU
// speedup at batch 1024.
func BenchmarkFig8Inference(b *testing.B) {
	for _, kind := range linnos.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			rt := newRT(b)
			rt.Clock().Advance(time.Second)
			var pts []linnos.SweepPoint
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = linnos.InferenceSweep(rt, kind, []int{8, 1024})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pts[0].CPU.Microseconds()), "cpu8_us")
			b.ReportMetric(float64(pts[0].LAKE.Microseconds()), "lake8_us")
			b.ReportMetric(float64(pts[1].CPU)/float64(pts[1].LAKE), "speedup_1024")
		})
	}
}

// BenchmarkFig9PageWarmth measures Kleio classification through the
// high-level API at the extremes of Fig 9's batch range.
func BenchmarkFig9PageWarmth(b *testing.B) {
	rt := newRT(b)
	cls, err := kleio.New(rt, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{20, 1160} {
		b.Run(itoa(n)+"pages", func(b *testing.B) {
			pages := make([]kleio.PageHistory, n)
			var d time.Duration
			for i := 0; i < b.N; i++ {
				if _, d, err = cls.ClassifyLAKE(pages); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(d.Milliseconds()), "lake_ms")
		})
	}
}

// BenchmarkFig10LoadBalance measures MLLB classification around its
// crossover (paper: GPU profitable beyond 256 tasks).
func BenchmarkFig10LoadBalance(b *testing.B) {
	rt := newRT(b)
	bal, err := mllb.New(rt, nn.New(3, mllb.Sizes()...))
	if err != nil {
		b.Fatal(err)
	}
	var pts []offload.SweepPoint
	for i := 0; i < b.N; i++ {
		if pts, err = mllb.Sweep(bal, []int{256, 1024}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].CPU.Microseconds()), "cpu256_us")
	b.ReportMetric(float64(pts[0].LAKE.Microseconds()), "lake256_us")
	b.ReportMetric(float64(pts[1].CPU)/float64(pts[1].LAKE), "speedup_1024")
}

// BenchmarkFig11Prefetch measures KML readahead classification around its
// crossover (paper: GPU profitable beyond 64 inputs).
func BenchmarkFig11Prefetch(b *testing.B) {
	rt := newRT(b)
	cls, err := kml.New(rt, nn.New(4, kml.Sizes()...))
	if err != nil {
		b.Fatal(err)
	}
	var pts []offload.SweepPoint
	for i := 0; i < b.N; i++ {
		if pts, err = kml.Sweep(cls, []int{64, 1024}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].CPU.Microseconds()), "cpu64_us")
	b.ReportMetric(float64(pts[0].LAKE.Microseconds()), "lake64_us")
	b.ReportMetric(float64(pts[1].CPU)/float64(pts[1].LAKE), "speedup_1024")
}

// BenchmarkFig12Malware measures the full-size KNN workload (4096 queries,
// 16384 refs) at representative feature counts and reports the GPU speedup
// (paper: ~1.5kx).
func BenchmarkFig12Malware(b *testing.B) {
	rt := newRT(b)
	var pts []malware.Fig12Point
	var err error
	for i := 0; i < b.N; i++ {
		if pts, err = malware.Fig12Sweep(rt, []int{8, 128, 1024}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pts[0].CPU)/float64(pts[0].LAKE), "speedup_d8")
	b.ReportMetric(float64(pts[2].CPU)/float64(pts[2].LAKE), "speedup_d1024")
	b.ReportMetric(float64(pts[2].LAKESync-pts[2].Direct)/float64(pts[2].Direct)*100, "lake_overhead_pct")
}

// BenchmarkFig13Adaptive runs the managed contention timeline and reports
// how quickly the policy reclaims the GPU after the user process exits.
func BenchmarkFig13Adaptive(b *testing.B) {
	var s contention.Fig13Summary
	for i := 0; i < b.N; i++ {
		rt := newRT(b)
		s = contention.Summarize(contention.Fig13(rt))
	}
	b.ReportMetric(s.CPUFraction*100, "cpu_fallback_pct")
	b.ReportMetric(s.ReclaimedBy.Seconds(), "reclaim_s")
}

// BenchmarkFig14Encryption measures eCryptfs write+read of real AES-GCM
// data per engine and reports the modeled read throughput at 2 MiB blocks.
func BenchmarkFig14Encryption(b *testing.B) {
	data := make([]byte, 1<<20)
	for _, e := range ecryptfs.Engines() {
		b.Run(e.String(), func(b *testing.B) {
			fs, err := ecryptfs.NewFS(e, nil, 2<<20, "bench")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := fs.Write("f", data); err != nil {
					b.Fatal(err)
				}
				if _, _, err := fs.Read("f"); err != nil {
					b.Fatal(err)
				}
			}
			m := ecryptfs.DefaultModel()
			b.ReportMetric(m.Throughput(e, 2<<20, false)/1e6, "read_MBps")
			b.ReportMetric(m.Throughput(e, 2<<20, true)/1e6, "write_MBps")
		})
	}
}

// BenchmarkFig15Utilization generates the utilization timelines and reports
// each engine's average CPU consumption (paper: CPU 56%, AES-NI 24%, LAKE
// ~20%).
func BenchmarkFig15Utilization(b *testing.B) {
	m := ecryptfs.DefaultModel()
	for _, e := range []ecryptfs.Engine{ecryptfs.EngineCPU, ecryptfs.EngineAESNI, ecryptfs.EngineLAKE} {
		b.Run(e.String(), func(b *testing.B) {
			var pts []ecryptfs.UtilPoint
			for i := 0; i < b.N; i++ {
				pts = ecryptfs.UtilizationTrace(m, e, 2<<30, 2<<20, 18*time.Second)
			}
			var cpu float64
			n := 0
			for _, p := range pts {
				if p.KernelCPU == 0 && p.UserAPI == 0 && p.GPU == 0 {
					continue
				}
				cpu += float64(p.KernelCPU + p.UserAPI)
				n++
			}
			b.ReportMetric(cpu/float64(n), "cpu_util_pct")
		})
	}
}

// BenchmarkExperimentHarness exercises the cmd/lakebench dispatch path on
// the cheapest experiment to keep the harness itself covered.
func BenchmarkExperimentHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("table2"); err != nil {
			b.Fatal(err)
		}
	}
}
