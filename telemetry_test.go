// Acceptance tests for the observability plane: a traced remoted call must
// produce a complete stage timeline, the batcher's coalescing must appear
// as a span, and keeping telemetry enabled (its default) must stay within
// the <5% wall-clock overhead bound on the batched-inference workload.
package lake_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	lake "lakego"
	"lakego/internal/batcher"
	"lakego/internal/linnos"
	"lakego/internal/nn"
)

// timelineSpan mirrors the tracer's JSON export shape.
type timelineSpan struct {
	Name   string `json:"name"`
	Seq    uint64 `json:"seq"`
	VStart int64  `json:"v_start_ns"`
	VEnd   int64  `json:"v_end_ns"`
	Stages []struct {
		Stage  string `json:"stage"`
		VStart int64  `json:"v_start_ns"`
		VEnd   int64  `json:"v_end_ns"`
		Wall   int64  `json:"wall_ns"`
	} `json:"stages"`
}

// TestTracedInferenceTimeline follows one offloaded call end to end: with
// tracing armed, a remoted cuLaunchKernel must export a JSON timeline whose
// stages cover marshal, channel, daemon dispatch, device launch and
// response demux, all timestamped on the virtual clock.
func TestTracedInferenceTimeline(t *testing.T) {
	cfg := lake.DefaultConfig()
	cfg.TraceCalls = true
	rt, err := lake.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.RegisterKernel(lake.VecAddKernel())
	lib := rt.Lib()
	ctx, r := lib.CuCtxCreate("trace-test")
	if r != lake.Success {
		t.Fatalf("cuCtxCreate: %s", r)
	}
	mod, _ := lib.CuModuleLoad("kernels.cubin")
	fn, r := lib.CuModuleGetFunction(mod, "vecadd")
	if r != lake.Success {
		t.Fatalf("cuModuleGetFunction: %s", r)
	}
	const n = 16
	da, _ := lib.CuMemAlloc(4 * n)
	dc, _ := lib.CuMemAlloc(4 * n)
	if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(da), uint64(da), uint64(dc), n}); r != lake.Success {
		t.Fatalf("launch: %s", r)
	}

	raw, err := rt.Telemetry().Tracer().TimelineJSON()
	if err != nil {
		t.Fatal(err)
	}
	var spans []timelineSpan
	if err := json.Unmarshal(raw, &spans); err != nil {
		t.Fatalf("timeline does not parse: %v\n%s", err, raw)
	}
	var launch *timelineSpan
	for i := range spans {
		if spans[i].Name == "cuLaunchKernel" {
			launch = &spans[i]
		}
	}
	if launch == nil {
		t.Fatalf("no cuLaunchKernel span in timeline:\n%s", raw)
	}
	if launch.VEnd < launch.VStart {
		t.Fatalf("span virtual bounds inverted: [%d, %d]", launch.VStart, launch.VEnd)
	}
	got := map[string]bool{}
	for _, st := range launch.Stages {
		got[st.Stage] = true
		if st.VStart < launch.VStart || st.VEnd > launch.VEnd || st.VEnd < st.VStart {
			t.Errorf("stage %s virtual window [%d, %d] escapes span [%d, %d]",
				st.Stage, st.VStart, st.VEnd, launch.VStart, launch.VEnd)
		}
	}
	for _, want := range []string{"marshal", "channel", "dispatch", "launch", "demux"} {
		if !got[want] {
			t.Errorf("timeline missing stage %q (have %v)", want, launch.Stages)
		}
	}
	// The modeled work — the channel round trip and the device launch —
	// must occupy virtual time; the host-only stages need not.
	for _, st := range launch.Stages {
		if (st.Stage == "channel" || st.Stage == "launch") && st.VEnd == st.VStart {
			t.Errorf("stage %s has zero virtual width", st.Stage)
		}
	}
}

// TestBatchedCoalesceTrace drives one flush through the batching subsystem
// with tracing armed and asserts the flush span records the coalesce window
// plus the nested remoted call's launch stage.
func TestBatchedCoalesceTrace(t *testing.T) {
	cfg := lake.DefaultConfig()
	cfg.TraceCalls = true
	rt, err := lake.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	pred, err := linnos.NewPredictor(rt, linnos.Base, nn.New(3, linnos.Base.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	bcfg := batcher.DefaultConfig()
	bcfg.MaxWait = 100 * time.Microsecond
	b := rt.NewBatcher(bcfg)
	if err := pred.EnableBatching(b); err != nil {
		t.Fatal(err)
	}
	c := b.Client("trace-client")
	p, err := pred.SubmitBatched(c, [][]float32{linnosFeature(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := linnos.WaitSlow(p); err != nil {
		t.Fatal(err)
	}

	raw, err := rt.Telemetry().Tracer().TimelineJSON()
	if err != nil {
		t.Fatal(err)
	}
	var spans []timelineSpan
	if err := json.Unmarshal(raw, &spans); err != nil {
		t.Fatal(err)
	}
	var flush *timelineSpan
	for i := range spans {
		if len(spans[i].Name) >= 6 && spans[i].Name[:6] == "flush/" {
			flush = &spans[i]
		}
	}
	if flush == nil {
		t.Fatalf("no flush span in timeline:\n%s", raw)
	}
	got := map[string]bool{}
	for _, st := range flush.Stages {
		got[st.Stage] = true
	}
	for _, want := range []string{"coalesce", "dispatch", "launch"} {
		if !got[want] {
			t.Errorf("flush span missing stage %q (have %v)", want, flush.Stages)
		}
	}
}

// TestTelemetryOverhead is the acceptance guard on instrumentation cost:
// the batched-inference workload with telemetry enabled (the default
// runtime shape) must stay within 5% wall-clock of the same workload on a
// runtime booted with DisableTelemetry. Each attempt takes the minimum of
// several interleaved measurements to shed scheduler noise, and the bound
// only fails after every attempt exceeds it.
func TestTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; skipped in -short")
	}
	const (
		clients   = 32
		reps      = 3 // measurements per mode per attempt
		attempts  = 4
		tolerance = 1.05
	)
	measure := func(disable bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			runBatchedLinnOSCfg(t, clients, batchBenchPerClient, benchConfig(disable))
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	var ratio float64
	for a := 0; a < attempts; a++ {
		disabled := measure(true)
		enabled := measure(false)
		ratio = float64(enabled) / float64(disabled)
		t.Logf("attempt %d: telemetry enabled %v, disabled %v, ratio %.3f", a, enabled, disabled, ratio)
		if ratio <= tolerance {
			return
		}
	}
	t.Fatalf("telemetry overhead %.1f%% exceeds 5%% on every attempt", (ratio-1)*100)
}

// TestRuntimeMetricsPopulated sanity-checks the registry end to end on a
// real workload: the per-layer counters that must move, move, and both
// export formats carry them.
func TestRuntimeMetricsPopulated(t *testing.T) {
	rt, err := lake.New(benchConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	pred, err := linnos.NewPredictor(rt, linnos.Base, nn.New(3, linnos.Base.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := pred.InferLAKE([][]float32{linnosFeature(0, i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	tel := rt.Telemetry()
	snap := tel.Snapshot()
	for _, name := range []string{
		`lake_boundary_sent_total{channel="Netlink"}`,
		"lake_lib_calls_total",
		"lake_daemon_handled_total",
		"lake_gpu_launches_total",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s did not move (snapshot %+v)", name, snap.Counters)
		}
	}
	if h, ok := snap.Histograms["lake_lib_call_latency_ns"]; !ok || h.Count == 0 {
		t.Error("lake_lib_call_latency_ns histogram empty")
	}
	text := tel.PrometheusText()
	for _, want := range []string{"# TYPE lake_lib_calls_total counter", "lake_gpu_launches_total "} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestTelemetryDisabledIsNil pins the disabled contract: Telemetry()
// returns nil and the nil registry degrades safely everywhere a caller
// might poke it.
func TestTelemetryDisabledIsNil(t *testing.T) {
	rt, err := lake.New(benchConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	tel := rt.Telemetry()
	if tel != nil {
		t.Fatalf("Telemetry() = %v on a DisableTelemetry runtime, want nil", tel)
	}
	// Exercising the runtime with a nil registry must not panic anywhere.
	lib := rt.Lib()
	if _, r := lib.CuCtxCreate("no-telemetry"); r != lake.Success {
		t.Fatalf("cuCtxCreate: %s", r)
	}
	if tel.Counter("x", "").Value() != 0 {
		t.Fatal("nil registry counter should read 0")
	}
	if tel.Tracer() != nil {
		t.Fatal("nil registry should hand out a nil tracer")
	}
	if s := tel.Tracer().Current(); s != nil {
		t.Fatal("nil tracer Current() should be nil")
	}
}

// TestObservedLatencyPolicy closes the Fig 3 loop on measured signal: after
// warming the shared per-item latency histograms through real runs, an
// Adaptive policy with UseObservedLatency must route by the observed
// GPU-vs-CPU comparison rather than the static batch threshold.
func TestObservedLatencyPolicy(t *testing.T) {
	rt, err := lake.New(benchConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	pred, err := linnos.NewPredictor(rt, linnos.Base, nn.New(3, linnos.Base.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	// Warm both series past MinSamples: single-item remoted runs are far
	// slower per item than the calibrated CPU path, so observed signal
	// says "CPU" even for batches the static threshold would offload.
	for i := 0; i < 20; i++ {
		if _, _, err := pred.InferLAKE([][]float32{linnosFeature(0, i)}, true); err != nil {
			t.Fatal(err)
		}
		pred.InferCPU([][]float32{linnosFeature(0, i)})
	}
	pcfg := lake.DefaultAdaptiveConfig()
	pcfg.BatchThreshold = 1 // static gate would say GPU for any batch
	pcfg.UseObservedLatency = true
	pol := rt.NewAdaptivePolicy(pcfg)
	if dec := pol.Decide(4); dec != lake.UseCPU {
		t.Fatalf("observed-latency policy decided %v; measured single-item GPU latency should route to CPU", dec)
	}
	// Control: the same configuration without the opt-in keeps the static
	// batch-threshold behavior.
	pcfg.UseObservedLatency = false
	if dec := rt.NewAdaptivePolicy(pcfg).Decide(4); dec != lake.UseGPU {
		t.Fatalf("static policy decided %v, want GPU", dec)
	}
}
