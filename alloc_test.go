// Allocation gates for the ring transport's steady-state hot paths: the CI
// allocgate job runs `go test -run 'TestAllocs'` and any regression from 0
// allocs/op fails the build. The gated paths are the single remoted call
// (lakeLib stub -> wire marshal -> descriptor ring -> lakeD decode/execute ->
// completion ring -> response demux) and the batcher's flush wire path
// (CuBatchedInferInto over a warmed scratch). The legacy channel transport
// is exempt: its per-message copy + channel handoff is the cost the ring
// replaces.
package lake_test

import (
	"testing"

	"lakego/internal/boundary"
	"lakego/internal/core"
	"lakego/internal/cuda"
	"lakego/internal/gpu"
	"lakego/internal/healthplane"
	"lakego/internal/remoting"
)

// ringConfig is the default runtime switched onto the descriptor-ring
// transport.
func ringConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Channel = boundary.Ring
	return cfg
}

func newRingRuntime(t testing.TB) *core.Runtime {
	t.Helper()
	rt, err := core.New(ringConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestAllocsRingRemotedCall gates the headline budget: a steady-state
// remoted call over the ring transport performs zero heap allocations on
// either side of the boundary.
func TestAllocsRingRemotedCall(t *testing.T) {
	rt := newRingRuntime(t)
	lib := rt.Lib()
	if r := lib.CuInit(); r != cuda.Success {
		t.Fatal(r)
	}
	// Warm the pools: callState, frame capacity, daemon scratch — and one
	// full lap of the 4096-slot journal ring, whose per-slot buffers grow on
	// first use and are recycled in place ever after.
	for i := 0; i < 4100; i++ {
		if _, r := lib.CuDeviceGetCount(); r != cuda.Success {
			t.Fatal(r)
		}
	}
	n := testing.AllocsPerRun(1000, func() {
		if _, r := lib.CuDeviceGetCount(); r != cuda.Success {
			t.Fatal(r)
		}
	})
	if n != 0 {
		t.Fatalf("ring remoted call allocates %v objects/op, want 0", n)
	}
}

// TestAllocsRingRemotedCallWithHealthPlane re-runs the headline gate with
// the live health plane attached and actively tailing: the tailer chases
// the recorder ring with its own cursor, so an armed plane must not add a
// single allocation (or any other disturbance) to the Emit-side call path.
func TestAllocsRingRemotedCallWithHealthPlane(t *testing.T) {
	rt := newRingRuntime(t)
	plane := rt.NewHealthPlane(healthplane.Config{})
	lib := rt.Lib()
	if r := lib.CuInit(); r != cuda.Success {
		t.Fatal(r)
	}
	for i := 0; i < 4100; i++ { // one full journal lap, see above
		if _, r := lib.CuDeviceGetCount(); r != cuda.Success {
			t.Fatal(r)
		}
	}
	// Drain the backlog so the tail cursor sits mid-ring, the worst case
	// for the Emit/Tail interleave, then gate the call path.
	plane.Poll()
	n := testing.AllocsPerRun(1000, func() {
		if _, r := lib.CuDeviceGetCount(); r != cuda.Success {
			t.Fatal(r)
		}
	})
	if n != 0 {
		t.Fatalf("ring remoted call with health plane attached allocates %v objects/op, want 0", n)
	}
	if snap := plane.SLO(); len(snap.Stages) == 0 {
		t.Fatal("plane never ingested the tailed call events")
	}
}

// TestAllocsRingCallWithValues gates a stub that returns values and carries
// args (the memcpy accounting path), not just the arg-less device count.
func TestAllocsRingCallWithValues(t *testing.T) {
	rt := newRingRuntime(t)
	lib := rt.Lib()
	if r := lib.CuInit(); r != cuda.Success {
		t.Fatal(r)
	}
	ptr, r := lib.CuMemAlloc(256)
	if r != cuda.Success {
		t.Fatal(r)
	}
	src := make([]byte, 256)
	for i := 0; i < 4100; i++ { // one full journal lap, see above
		if r := lib.CuMemcpyHtoD(ptr, src); r != cuda.Success {
			t.Fatal(r)
		}
	}
	n := testing.AllocsPerRun(1000, func() {
		if r := lib.CuMemcpyHtoD(ptr, src); r != cuda.Success {
			t.Fatal(r)
		}
	})
	if n != 0 {
		t.Fatalf("ring CuMemcpyHtoD allocates %v objects/op, want 0", n)
	}
}

// inPlaceKernel is an inference-shaped kernel (args = [in, out, n]) whose
// body moves bytes without allocating, so the flush gate below measures only
// the wire path.
func inPlaceKernel(name string) *cuda.Kernel {
	return &cuda.Kernel{
		Name:  name,
		Flops: func(args []uint64) float64 { return float64(args[2]) },
		Body: func(dev *gpu.Device, args []uint64) error {
			inMem, err := dev.Bytes(gpu.DevPtr(args[0]))
			if err != nil {
				return err
			}
			outMem, err := dev.Bytes(gpu.DevPtr(args[1]))
			if err != nil {
				return err
			}
			copy(outMem, inMem[:int(args[2])*4])
			return nil
		},
	}
}

// TestAllocsRingBatchedFlushWire gates the batcher's flush wire path: a
// warmed CuBatchedInferInto — marshal into scratch, one ring round trip, one
// gathered launch, per-entry demux into scratch — is allocation-free.
func TestAllocsRingBatchedFlushWire(t *testing.T) {
	rt := newRingRuntime(t)
	lib := rt.Lib()
	rt.RegisterKernel(inPlaceKernel("identity"))
	if r := lib.CuInit(); r != cuda.Success {
		t.Fatal(r)
	}
	ctx, r := lib.CuCtxCreate("allocgate")
	if r != cuda.Success {
		t.Fatal(r)
	}
	mod, r := lib.CuModuleLoad("identity.cubin")
	if r != cuda.Success {
		t.Fatal(r)
	}
	fn, r := lib.CuModuleGetFunction(mod, "identity")
	if r != cuda.Success {
		t.Fatal(r)
	}
	const maxItems = 32
	devIn, r := lib.CuMemAlloc(4 * maxItems)
	if r != cuda.Success {
		t.Fatal(r)
	}
	devOut, r := lib.CuMemAlloc(4 * maxItems)
	if r != cuda.Success {
		t.Fatal(r)
	}
	spec := remoting.BatchSpec{Ctx: ctx, Fn: fn, DevIn: devIn, DevOut: devOut, InWidth: 1, OutWidth: 1}

	region := rt.Region()
	entries := make([]remoting.BatchEntry, 4)
	for i := range entries {
		const count = 4
		in, err := region.Alloc(4 * count)
		if err != nil {
			t.Fatal(err)
		}
		out, err := region.Alloc(4 * count)
		if err != nil {
			t.Fatal(err)
		}
		entries[i] = remoting.BatchEntry{
			Seq:   uint64(100 + i),
			InOff: uint64(in.Offset()), OutOff: uint64(out.Offset()),
			Count: count,
		}
	}
	var sc remoting.BatchScratch
	flush := func() {
		res, r := lib.CuBatchedInferInto("identity", spec, entries, 0, &sc)
		if r != cuda.Success {
			t.Fatal(r)
		}
		for i, pr := range res {
			if pr != cuda.Success {
				t.Fatalf("entry %d: %v", i, pr)
			}
		}
	}
	for i := 0; i < 4100; i++ { // one full journal lap, see above
		flush()
	}
	if n := testing.AllocsPerRun(1000, flush); n != 0 {
		t.Fatalf("ring batched flush wire path allocates %v objects/op, want 0", n)
	}
}
