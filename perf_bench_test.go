// Substrate micro-benchmarks: real wall-clock performance of the hot code
// paths (allocator, lock-free capture, wire protocol, inference math,
// end-to-end remoted calls). Unlike the figure benchmarks, these measure
// the library itself rather than the simulated hardware.
package lake_test

import (
	"testing"

	"lakego/internal/bestfit"
	"lakego/internal/core"
	"lakego/internal/features"
	"lakego/internal/flightrec"
	"lakego/internal/linnos"
	"lakego/internal/lockfree"
	"lakego/internal/nn"
	"lakego/internal/remoting"
	"lakego/internal/ringbuf"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

func BenchmarkPerfBestFitAllocFree(b *testing.B) {
	a, err := bestfit.New(64<<20, 64)
	if err != nil {
		b.Fatal(err)
	}
	offs := make([]int64, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := a.Alloc(int64(1024 + i%4096))
		if err != nil {
			// Region full: drain and continue.
			for _, o := range offs {
				a.Free(o)
			}
			offs = offs[:0]
			continue
		}
		offs = append(offs, off)
		if len(offs) == 128 {
			for _, o := range offs {
				a.Free(o)
			}
			offs = offs[:0]
		}
	}
}

func BenchmarkPerfLockfreeCapture(b *testing.B) {
	m := lockfree.NewMap(16)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Add("pend_ios", 1)
		}
	})
}

func BenchmarkPerfRegistryCommit(b *testing.B) {
	s := features.NewStore()
	reg, err := s.CreateRegistry("bench", "sys", features.Schema{
		{Key: "pend_ios", Size: 8, Entries: 1},
		{Key: "io_latency", Size: 8, Entries: 4},
	}, 1024)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.BeginCapture(0)
		reg.CaptureFeatureIncr("pend_ios", 1)
		reg.CaptureFeature("io_latency", val)
		reg.CommitCapture(0)
	}
}

func BenchmarkPerfMarshalCommand(b *testing.B) {
	cmd := &remoting.Command{
		API:  remoting.APICuLaunchKernel,
		Seq:  1,
		Args: []uint64{1, 2, 3, 4, 5, 6},
		Name: "vecadd",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := remoting.MarshalCommand(cmd)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := remoting.UnmarshalCommand(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerfNNForward(b *testing.B) {
	net := nn.New(1, linnos.Base.Sizes()...)
	x := make([]float32, net.InputSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkPerfRingPush(b *testing.B) {
	r := ringbuf.New[int](1024)
	for i := 0; i < b.N; i++ {
		r.Push(i)
	}
}

func benchRemotedCall(b *testing.B, cfg core.Config) {
	rt, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	lib := rt.Lib()
	b.ReportAllocs()
	b.ResetTimer()
	start := rt.Clock().Now()
	for i := 0; i < b.N; i++ {
		if _, r := lib.CuDeviceGetCount(); r != 0 {
			b.Fatal(r)
		}
	}
	// Modeled per-call latency (virtual ns): the figure-level metric the
	// boundary cost model charges, what the >= 2x ring acceptance gates on.
	b.ReportMetric(float64(rt.Clock().Now()-start)/float64(b.N), "vns_per_call")
}

func BenchmarkPerfRemotedCall(b *testing.B) {
	benchRemotedCall(b, core.DefaultConfig())
}

// BenchmarkPerfRemotedCallRing is the ring-transport counterpart of
// BenchmarkPerfRemotedCall: same stub, same daemon, the Go-channel doorbell
// replaced by shm-resident descriptor rings. The acceptance bar (>= 2x over
// the channel transport, 0 allocs/op) is pinned by TestRingCallSpeedup and
// the TestAllocs gates.
func BenchmarkPerfRemotedCallRing(b *testing.B) {
	benchRemotedCall(b, ringConfig())
}

// BenchmarkPerfTailDrain measures the health plane's ingestion substrate:
// emit a batch of events into the flight-recorder ring, then drain them
// non-destructively with TailInto over a reused buffer. The reported time
// covers one emit + one tailed read per op; 0 allocs/op is the bar the
// TestTailRaceStorm/alloc gates pin.
func BenchmarkPerfTailDrain(b *testing.B) {
	rec := flightrec.New(vtime.New(), 1<<12)
	const batch = 64
	buf := make([]flightrec.Event, batch)
	var cur flightrec.TailCursor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := 0; j < batch; j++ {
			rec.Emit(flightrec.DomainKernel, flightrec.EvChannel,
				uint64(i+j), uint64(j), 0, 1500, 96, 0)
		}
		for {
			n, next, _ := rec.TailInto(cur, buf)
			cur = next
			if n < len(buf) {
				break
			}
		}
	}
}

// BenchmarkPerfWindowedObserve measures the SLO engine's other feed: one
// observation into a telemetry windowed histogram (current-epoch bucket
// increment behind an atomic epoch pointer).
func BenchmarkPerfWindowedObserve(b *testing.B) {
	w := telemetry.NewWindowedHistogram(telemetry.DefaultLatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Observe(int64(1000 + i%100_000))
	}
}

// BenchmarkPerfRingDescriptor measures the raw descriptor ring: one
// uncontended Push/Pop/Release cycle.
func BenchmarkPerfRingDescriptor(b *testing.B) {
	r := ringbuf.NewMPSC(64)
	d := ringbuf.Desc{Seq: 1, Slot: 3, Len: 512}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.Push(d) {
			b.Fatal("ring full")
		}
		_, ticket, ok := r.Pop()
		if !ok {
			b.Fatal("ring empty")
		}
		r.Release(ticket)
	}
}

// BenchmarkPerfDoorbell measures the no-waiter Ring fast path — the cost a
// producer pays per send when the consumer is already running.
func BenchmarkPerfDoorbell(b *testing.B) {
	bell := lockfree.NewDoorbell()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bell.Ring()
	}
}
