// Substrate micro-benchmarks: real wall-clock performance of the hot code
// paths (allocator, lock-free capture, wire protocol, inference math,
// end-to-end remoted calls). Unlike the figure benchmarks, these measure
// the library itself rather than the simulated hardware.
package lake_test

import (
	"testing"

	"lakego/internal/bestfit"
	"lakego/internal/core"
	"lakego/internal/features"
	"lakego/internal/linnos"
	"lakego/internal/lockfree"
	"lakego/internal/nn"
	"lakego/internal/remoting"
	"lakego/internal/ringbuf"
)

func BenchmarkPerfBestFitAllocFree(b *testing.B) {
	a, err := bestfit.New(64<<20, 64)
	if err != nil {
		b.Fatal(err)
	}
	offs := make([]int64, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := a.Alloc(int64(1024 + i%4096))
		if err != nil {
			// Region full: drain and continue.
			for _, o := range offs {
				a.Free(o)
			}
			offs = offs[:0]
			continue
		}
		offs = append(offs, off)
		if len(offs) == 128 {
			for _, o := range offs {
				a.Free(o)
			}
			offs = offs[:0]
		}
	}
}

func BenchmarkPerfLockfreeCapture(b *testing.B) {
	m := lockfree.NewMap(16)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Add("pend_ios", 1)
		}
	})
}

func BenchmarkPerfRegistryCommit(b *testing.B) {
	s := features.NewStore()
	reg, err := s.CreateRegistry("bench", "sys", features.Schema{
		{Key: "pend_ios", Size: 8, Entries: 1},
		{Key: "io_latency", Size: 8, Entries: 4},
	}, 1024)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.BeginCapture(0)
		reg.CaptureFeatureIncr("pend_ios", 1)
		reg.CaptureFeature("io_latency", val)
		reg.CommitCapture(0)
	}
}

func BenchmarkPerfMarshalCommand(b *testing.B) {
	cmd := &remoting.Command{
		API:  remoting.APICuLaunchKernel,
		Seq:  1,
		Args: []uint64{1, 2, 3, 4, 5, 6},
		Name: "vecadd",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := remoting.MarshalCommand(cmd)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := remoting.UnmarshalCommand(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerfNNForward(b *testing.B) {
	net := nn.New(1, linnos.Base.Sizes()...)
	x := make([]float32, net.InputSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkPerfRingPush(b *testing.B) {
	r := ringbuf.New[int](1024)
	for i := 0; i < b.N; i++ {
		r.Push(i)
	}
}

func BenchmarkPerfRemotedCall(b *testing.B) {
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	lib := rt.Lib()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, r := lib.CuDeviceGetCount(); r != 0 {
			b.Fatal(r)
		}
	}
}
