// Model-lifecycle micro-benchmarks: the cost of the serving-slot flip the
// inference hot path observes, and the per-outcome cost of the in-daemon
// online trainer (feedback channel -> minibatch SGD on the reusable
// gradient scratch -> shadow scoring).
package lake_test

import (
	"testing"

	"lakego/internal/core"
	"lakego/internal/lifecycle"
	"lakego/internal/linnos"
	"lakego/internal/nn"
	"lakego/internal/vtime"
)

// BenchmarkPerfModelSwap measures the hot-swap itself: shape validation
// plus one atomic pointer store. This is the entire cost an in-flight
// inference path can ever contend with — batches load the pointer once,
// so a swap is never observed mid-batch.
func BenchmarkPerfModelSwap(b *testing.B) {
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	a := nn.New(1, linnos.Base.Sizes()...)
	c := a.Clone()
	pred, err := linnos.NewPredictor(rt, linnos.Base, a)
	if err != nil {
		b.Fatal(err)
	}
	nets := [2]*nn.Network{a, c}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pred.SwapNet(nets[i&1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfRetrainStep measures the amortized per-outcome cost of the
// online trainer: bounded-channel handoff, drift window accounting,
// shadow ring insert, and (every Minibatch outcomes) one SGD step on the
// reusable scratch.
func BenchmarkPerfRetrainStep(b *testing.B) {
	cfg := lifecycle.DefaultConfig("bench")
	cfg.Buffer = 256
	m, err := lifecycle.NewManager(vtime.New(), cfg, nn.New(1, 2, 8, 2))
	if err != nil {
		b.Fatal(err)
	}
	outs := [2]lifecycle.Outcome{
		{X: []float32{-1, -1}, Predicted: 0, Label: 0},
		{X: []float32{1, 1}, Predicted: 0, Label: 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(outs[i&1])
		m.Pump()
	}
	b.StopTimer()
	if m.Dropped() != 0 {
		b.Fatalf("dropped %d", m.Dropped())
	}
}
