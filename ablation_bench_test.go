// Ablation benchmarks: each quantifies one design decision the paper (and
// DESIGN.md) calls out, by measuring the system with the decision reversed.
//
//   - Netlink as the command channel vs the three alternatives of Table 2
//   - lakeShm zero-copy staging vs inline data on the command channel
//   - best-fit vs first-fit placement in the lakeShm allocator
//   - batch-formation quantum in the LinnOS LAKE replay
//   - the Fig 3 policy's utilization threshold under contention
//   - benefit-aware ML modulation (§7.1 future work) vs always-on ML
package lake_test

import (
	"testing"
	"time"

	"lakego/internal/bestfit"
	"lakego/internal/boundary"
	"lakego/internal/contention"
	"lakego/internal/core"
	"lakego/internal/cuda"
	"lakego/internal/linnos"
	"lakego/internal/policy"
	"lakego/internal/shm"
	"lakego/internal/trace"
	"math/rand"
)

// BenchmarkAblationChannelKind runs the same remoted call sequence over
// every kernel<->user channel. Netlink should show the lowest modeled
// channel time among the non-spinning mechanisms (§6's rationale).
func BenchmarkAblationChannelKind(b *testing.B) {
	for _, kind := range boundary.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			rt, err := core.New(core.Config{Channel: kind})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			rt.RegisterKernel(cuda.VecAddKernel())
			lib := rt.Lib()
			ctx, _ := lib.CuCtxCreate("ablation")
			mod, _ := lib.CuModuleLoad("m")
			fn, _ := lib.CuModuleGetFunction(mod, "vecadd")
			buf, _ := rt.Region().Alloc(4 * 64)
			dp, _ := lib.CuMemAlloc(4 * 64)
			for i := 0; i < b.N; i++ {
				lib.CuMemcpyHtoDShm(dp, buf, 4*64)
				lib.CuLaunchKernel(ctx, fn, []uint64{uint64(dp), uint64(dp), uint64(dp), 64})
			}
			_, channel := lib.Stats()
			calls, _ := lib.Stats()
			b.ReportMetric(float64(channel.Microseconds())/float64(calls), "us_per_call")
		})
	}
}

// BenchmarkAblationZeroCopy compares moving payloads through lakeShm
// (offset-only commands) against inlining them in the command channel, the
// double-copy path §4.1 warns about.
func BenchmarkAblationZeroCopy(b *testing.B) {
	for _, size := range []int64{4 << 10, 64 << 10, 1 << 20} {
		for _, via := range []string{"shm", "inline"} {
			b.Run(via+"_"+sizeName(int(size)), func(b *testing.B) {
				rt, err := core.New(core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				defer rt.Close()
				lib := rt.Lib()
				dp, r := lib.CuMemAlloc(size)
				if r != cuda.Success {
					b.Fatal(r)
				}
				var buf *shm.Buffer
				var inline []byte
				if via == "shm" {
					if buf, err = rt.Region().Alloc(size); err != nil {
						b.Fatal(err)
					}
				} else {
					inline = make([]byte, size)
				}
				start := rt.Clock().Now()
				for i := 0; i < b.N; i++ {
					if via == "shm" {
						if r := lib.CuMemcpyHtoDShm(dp, buf, size); r != cuda.Success {
							b.Fatal(r)
						}
					} else {
						if r := lib.CuMemcpyHtoD(dp, inline); r != cuda.Success {
							b.Fatal(r)
						}
					}
				}
				elapsed := rt.Clock().Now() - start
				b.ReportMetric(float64(elapsed.Microseconds())/float64(b.N), "us_per_copy")
			})
		}
	}
}

// BenchmarkAblationAllocatorStrategy compares best-fit (the prototype's
// choice) with first-fit under a fragmenting churn workload, reporting
// failure rate and fragmentation.
func BenchmarkAblationAllocatorStrategy(b *testing.B) {
	for _, s := range []struct {
		name string
		s    bestfit.Strategy
	}{{"bestfit", bestfit.BestFit}, {"firstfit", bestfit.FirstFit}} {
		b.Run(s.name, func(b *testing.B) {
			var fails, frag float64
			for i := 0; i < b.N; i++ {
				a, err := bestfit.NewWithStrategy(1<<22, 64, s.s)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(7))
				var live []int64
				failures := 0
				for op := 0; op < 20000; op++ {
					if rng.Intn(3) != 0 || len(live) == 0 {
						// Bimodal sizes fragment aggressively.
						size := int64(rng.Intn(256) + 64)
						if rng.Intn(8) == 0 {
							size = int64(rng.Intn(64<<10) + 1<<10)
						}
						off, err := a.Alloc(size)
						if err != nil {
							failures++
							continue
						}
						live = append(live, off)
					} else {
						j := rng.Intn(len(live))
						if err := a.Free(live[j]); err != nil {
							b.Fatal(err)
						}
						live = append(live[:j], live[j+1:]...)
					}
				}
				fails = float64(failures)
				frag = float64(a.FreeBlocks())
			}
			b.ReportMetric(fails, "alloc_failures")
			b.ReportMetric(frag, "free_blocks")
		})
	}
}

// BenchmarkAblationBatchQuantum sweeps the LinnOS batch-formation quantum:
// shorter quanta cut waiting but shrink batches below the profitability
// threshold; longer quanta amortize the GPU but inflate latency.
func BenchmarkAblationBatchQuantum(b *testing.B) {
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	net, err := linnos.TrainedNetwork(linnos.Base)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := linnos.NewPredictor(rt, linnos.Base, net)
	if err != nil {
		b.Fatal(err)
	}
	w := linnos.MixedWorkload("Mixed+", 1500, 15, 3)
	for _, q := range []time.Duration{50 * time.Microsecond, 100 * time.Microsecond, 400 * time.Microsecond} {
		b.Run(q.String(), func(b *testing.B) {
			cfg := linnos.DefaultReplayConfig(linnos.ModeLAKE)
			cfg.Quantum = q
			var res linnos.Result
			for i := 0; i < b.N; i++ {
				if res, err = linnos.Replay(rt, pred, w, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.AvgRead.Microseconds()), "avg_read_us")
			b.ReportMetric(float64(res.GPUBatches), "gpu_batches")
		})
	}
}

// BenchmarkAblationUtilThreshold sweeps the Fig 3 policy's exec_threshold:
// too low and the kernel never uses the GPU; too high and it tramples the
// user process.
func BenchmarkAblationUtilThreshold(b *testing.B) {
	for _, thresh := range []int{10, 40, 90} {
		b.Run(itoa(thresh)+"pct", func(b *testing.B) {
			var s contention.Fig13Summary
			for i := 0; i < b.N; i++ {
				rt, err := core.New(core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				pts := fig13WithThreshold(rt, thresh)
				s = contention.Summarize(pts)
				rt.Close()
			}
			b.ReportMetric(s.CPUFraction*100, "cpu_fallback_pct")
			boolMetric(b, "hashing_stable", s.HashingStable)
		})
	}
}

func boolMetric(b *testing.B, name string, v bool) {
	f := 0.0
	if v {
		f = 1
	}
	b.ReportMetric(f, name)
}

// fig13WithThreshold reruns the Fig 13 scenario with a custom policy
// threshold by driving the same occupancy schedule manually.
func fig13WithThreshold(rt *core.Runtime, threshold int) []contention.Fig13Point {
	clock := rt.Clock()
	dev := rt.Device()
	pol := policy.NewAdaptive(policy.AdaptiveConfig{
		CheckInterval: 5 * time.Millisecond, UtilThreshold: threshold,
		BatchThreshold: 8, Window: 8,
	}, clock, func() int {
		g, _, res := rt.Lib().NvmlGetUtilization()
		if res != cuda.Success {
			return 100
		}
		return g
	})
	var out []contention.Fig13Point
	for t := time.Duration(0); t <= contention.Fig13Horizon; t += contention.Step {
		clock.AdvanceTo(t)
		hashingGPU := t >= contention.Fig13T2 && t < contention.Fig13T3
		p := contention.Fig13Point{T: t}
		if pol.Decide(32) == policy.UseGPU {
			occupy(dev, "kernel-predictor", t, 0.15)
			p.PredictorNorm, p.OnGPU = 1.0, true
		} else {
			p.PredictorNorm = 0.45
		}
		if hashingGPU {
			occupy(dev, "user-hash", t, 0.72)
			// With an over-permissive threshold the kernel stays on the
			// GPU and the user process loses its share.
			if p.OnGPU && threshold >= 90 {
				p.HashingNorm = 0.8
			} else {
				p.HashingNorm = 1.0
			}
		}
		out = append(out, p)
	}
	return out
}

func occupy(dev interface {
	OccupySpan(client string, start, end time.Duration)
}, client string, stepStart time.Duration, frac float64) {
	const slices = 10
	sliceLen := contention.Step / slices
	busy := time.Duration(frac * float64(sliceLen))
	for k := 0; k < slices; k++ {
		s := stepStart + time.Duration(k)*sliceLen
		dev.OccupySpan(client, s, s+busy)
	}
}

// BenchmarkAblationAutoML compares always-on ML with the §7.1 future-work
// benefit monitor on a workload where ML does not help: modulation should
// recover most of the overhead.
func BenchmarkAblationAutoML(b *testing.B) {
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	net, err := linnos.TrainedNetwork(linnos.Base)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := linnos.NewPredictor(rt, linnos.Base, net)
	if err != nil {
		b.Fatal(err)
	}
	w := linnos.SingleTraceWorkload(trace.Azure(), 3, 2500, 11)
	var always, auto linnos.Result
	var autoRes linnos.AutoMLResult
	for i := 0; i < b.N; i++ {
		if always, err = linnos.Replay(rt, pred, w, linnos.DefaultReplayConfig(linnos.ModeCPU)); err != nil {
			b.Fatal(err)
		}
		if autoRes, err = linnos.ReplayAutoML(pred, w, linnos.DefaultReplayConfig(linnos.ModeCPU), linnos.DefaultBenefitConfig()); err != nil {
			b.Fatal(err)
		}
		auto = autoRes.Result
	}
	b.ReportMetric(float64(always.AvgRead.Microseconds()), "always_ml_us")
	b.ReportMetric(float64(auto.AvgRead.Microseconds()), "modulated_us")
	b.ReportMetric(autoRes.MLFraction*100, "ml_used_pct")
}
