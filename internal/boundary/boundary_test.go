package boundary

import (
	"testing"
	"testing/quick"
	"time"

	"lakego/internal/vtime"
)

// Table 2's measured values, microseconds.
func TestTable2Values(t *testing.T) {
	cases := []struct {
		kind      Kind
		call, lat time.Duration
	}{
		{Signal, 56 * time.Microsecond, 56 * time.Microsecond},
		{DeviceRW, 6 * time.Microsecond, 57 * time.Microsecond},
		{Netlink, 11 * time.Microsecond, 54 * time.Microsecond},
		{Mmap, 6 * time.Microsecond, 6 * time.Microsecond},
	}
	for _, c := range cases {
		if got := CallTime(c.kind); got != c.call {
			t.Errorf("%s call time = %v, want %v", c.kind, got, c.call)
		}
		if got := DoorbellLatency(c.kind); got != c.lat {
			t.Errorf("%s doorbell latency = %v, want %v", c.kind, got, c.lat)
		}
	}
}

// Netlink is the chosen channel: mmap is faster but spins; all others have
// >50µs latency (§6 "The mmap method is fastest but wastes CPU spinning, so
// we use Netlink sockets").
func TestNetlinkBeatsNonSpinningAlternatives(t *testing.T) {
	for _, k := range []Kind{Signal, DeviceRW} {
		if DoorbellLatency(Netlink) >= DoorbellLatency(k) {
			t.Errorf("Netlink latency %v not < %s latency %v",
				DoorbellLatency(Netlink), k, DoorbellLatency(k))
		}
	}
	if DoorbellLatency(Mmap) >= DoorbellLatency(Netlink) {
		t.Error("Mmap should have the lowest doorbell latency")
	}
}

// Fig 6: flat until 4KiB, then roughly doubling steps.
func TestFig6NetlinkMessageCosts(t *testing.T) {
	cases := []struct {
		size int
		min  time.Duration
		max  time.Duration
	}{
		{128, 25 * time.Microsecond, 35 * time.Microsecond},
		{1024, 25 * time.Microsecond, 35 * time.Microsecond},
		{4096, 25 * time.Microsecond, 35 * time.Microsecond},
		{8192, 55 * time.Microsecond, 75 * time.Microsecond},
		{16384, 110 * time.Microsecond, 140 * time.Microsecond},
		{32768, 230 * time.Microsecond, 280 * time.Microsecond},
	}
	for _, c := range cases {
		got := MessageRoundTrip(Netlink, c.size)
		if got < c.min || got > c.max {
			t.Errorf("MessageRoundTrip(Netlink, %d) = %v, want in [%v, %v]",
				c.size, got, c.min, c.max)
		}
	}
}

func TestMessageRoundTripZeroSize(t *testing.T) {
	if got, want := MessageRoundTrip(Netlink, 0), MessageRoundTrip(Netlink, 1); got != want {
		t.Fatalf("zero-size message cost %v != minimal cost %v", got, want)
	}
}

func TestKindString(t *testing.T) {
	if Netlink.String() != "Netlink" {
		t.Fatalf("Netlink.String() = %q", Netlink)
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind stringifies empty")
	}
	if len(Kinds()) != 4 {
		t.Fatalf("Kinds() = %v", Kinds())
	}
}

func TestTransportRoundTrip(t *testing.T) {
	clk := vtime.New()
	tr := NewTransport(Netlink, clk, 8)
	if err := tr.SendToUser([]byte("cmd")); err != nil {
		t.Fatal(err)
	}
	msg, ok := tr.RecvInUser()
	if !ok || string(msg) != "cmd" {
		t.Fatalf("RecvInUser = %q, %v", msg, ok)
	}
	if err := tr.SendToKernel([]byte("resp")); err != nil {
		t.Fatal(err)
	}
	resp, ok := tr.RecvInKernel()
	if !ok || string(resp) != "resp" {
		t.Fatalf("RecvInKernel = %q, %v", resp, ok)
	}
	sent, recvd := tr.Stats()
	if sent != 1 || recvd != 1 {
		t.Fatalf("Stats = %d, %d; want 1, 1", sent, recvd)
	}
	// Data movement does not charge the clock; ChargeRoundTrip does.
	if clk.Now() != 0 {
		t.Fatalf("clock = %v, want 0 after pure data movement", clk.Now())
	}
}

func TestTransportCopiesMessages(t *testing.T) {
	tr := NewTransport(Netlink, vtime.New(), 1)
	buf := []byte{1}
	tr.SendToUser(buf)
	buf[0] = 99
	msg, _ := tr.RecvInUser()
	if msg[0] != 1 {
		t.Fatal("transport aliased sender buffer")
	}
}

func TestTransportQueueFull(t *testing.T) {
	tr := NewTransport(Netlink, vtime.New(), 1)
	if err := tr.SendToUser([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tr.SendToUser([]byte("b")); err == nil {
		t.Fatal("second send on depth-1 queue succeeded")
	}
}

func TestTransportEmptyRecv(t *testing.T) {
	tr := NewTransport(Netlink, vtime.New(), 1)
	if _, ok := tr.RecvInUser(); ok {
		t.Fatal("RecvInUser on empty transport reported ok")
	}
	if _, ok := tr.RecvInKernel(); ok {
		t.Fatal("RecvInKernel on empty transport reported ok")
	}
}

func TestTransportClose(t *testing.T) {
	tr := NewTransport(Netlink, vtime.New(), 4)
	tr.SendToUser([]byte("pending"))
	tr.Close()
	if err := tr.SendToUser([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if err := tr.SendToKernel([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if _, ok := tr.RecvInUser(); ok {
		t.Fatal("pending message survived Close")
	}
	tr.Close() // idempotent
}

func TestChargeRoundTripAdvancesClock(t *testing.T) {
	clk := vtime.New()
	tr := NewTransport(Netlink, clk, 1)
	d := tr.ChargeRoundTrip(8192)
	if clk.Now() != d {
		t.Fatalf("clock = %v, charge = %v", clk.Now(), d)
	}
	if d != MessageRoundTrip(Netlink, 8192) {
		t.Fatalf("charge = %v, want %v", d, MessageRoundTrip(Netlink, 8192))
	}
}

// Property: message cost is monotonically non-decreasing in size for every
// channel kind.
func TestQuickMessageCostMonotone(t *testing.T) {
	f := func(a, b uint16, kraw uint8) bool {
		k := Kinds()[int(kraw)%4]
		s1, s2 := int(a), int(b)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return MessageRoundTrip(k, s1) <= MessageRoundTrip(k, s2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// §6's rationale for rejecting mmap despite its 6µs latency: a core burns
// for the whole wait, while blocking channels pay only a wakeup.
func TestCPUBurnExplainsMmapRejection(t *testing.T) {
	wait := 500 * time.Microsecond
	if got := CPUBurn(Mmap, wait); got != wait {
		t.Fatalf("mmap burn = %v, want full wait %v", got, wait)
	}
	for _, k := range []Kind{Signal, DeviceRW, Netlink} {
		if got := CPUBurn(k, wait); got > 5*time.Microsecond {
			t.Fatalf("%s burn = %v, want wakeup-only", k, got)
		}
	}
	// Tiny waits never charge more than the wait itself.
	if got := CPUBurn(Netlink, time.Microsecond); got != time.Microsecond {
		t.Fatalf("sub-wakeup burn = %v", got)
	}
}
