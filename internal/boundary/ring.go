// RingTransport: the zero-allocation, lock-free boundary hot path.
//
// The channel Transport models the paper's Netlink choice: every frame is
// copied into a fresh slice and handed over a Go channel — one allocation
// and one channel handoff per message, the two costs §6 attributes to
// socket-based doorbells. RingTransport is the same duplex pipe rebuilt on
// the paper's own zero-copy + doorbell insight pushed to its limit:
//
//   - a submission ring (kernel→user commands) and a completion ring
//     (user→kernel responses), each a bounded lock-free MPSC descriptor
//     ring (ringbuf.MPSC);
//   - payload slots resident in the lakeShm region — descriptors carry
//     only (slot, len), the frame bytes are written once into the shared
//     arena and read in place by the receiver;
//   - a doorbell (lockfree.Doorbell) rung only on the empty→nonempty ring
//     transition, so a burst of sends — an entire batcher flush — pays for
//     one futex-style wake.
//
// Receive is borrow-based: RecvInUser / RecvInKernel return a view into
// the slot arena that stays valid until the NEXT Recv call in the same
// direction (which releases the previous slot back to the producers). Both
// existing consumers satisfy this: lakeD decodes and executes a command
// before its next pump, and lakeLib copies the response out before its
// next receive. Frames wider than a payload slot spill into a per-slot
// reusable overflow buffer — modeling a secondary shm arena — so the
// transport never rejects a frame for size.
package boundary

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/faults"
	"lakego/internal/flightrec"
	"lakego/internal/lockfree"
	"lakego/internal/ringbuf"
	"lakego/internal/shm"
	"lakego/internal/vtime"
)

// Channel is the boundary pipe contract shared by the legacy channel
// Transport and the RingTransport. The remoting layer runs on this
// interface; core selects the implementation from Config.
//
// Receive-side ownership differs by implementation: Transport returns
// caller-owned slices, RingTransport returns borrowed views valid only
// until the next RecvInUser / RecvInKernel call in the same direction.
// Consumers must finish with (or copy) a received frame before receiving
// again.
type Channel interface {
	Kind() Kind
	Clock() *vtime.Clock
	SendToUser(msg []byte) error
	RecvInUser() (msg []byte, ok bool)
	SendToKernel(msg []byte) error
	RecvInKernel() (msg []byte, ok bool)
	ChargeRoundTrip(size int) time.Duration
	InjectFaults(p *faults.Plane)
	SetTelemetry(tel TransportTelemetry)
	SetFlightRecorder(rec *flightrec.Recorder)
	Stats() (sent, received int64)
	Close()
}

// Compile-time checks: both transports satisfy the boundary contract.
var (
	_ Channel = (*Transport)(nil)
	_ Channel = (*RingTransport)(nil)
)

// descOverflow marks a descriptor whose payload spilled into the per-slot
// overflow buffer instead of the shm slot arena.
const descOverflow uint16 = 1 << 0

// DefaultSlotBytes is the payload slot width: large enough for every
// non-bulk frame (commands and responses route bulk data through lakeShm
// buffers already, so frames are small), small enough that a 64-deep ring
// costs 1 MiB of region per direction.
const DefaultSlotBytes = 16 << 10

// ringDir is one direction of the duplex pipe: descriptor ring, doorbell,
// slot arena and the single-consumer borrow state.
type ringDir struct {
	ring *ringbuf.MPSC
	bell *lockfree.Doorbell

	payload []byte   // shm-resident slot arena, Cap()*slotBytes bytes
	ov      [][]byte // per-slot reusable overflow spill buffers

	// outstanding tracks published-but-unconsumed frames; the doorbell
	// rings only on its 0→1 edge.
	outstanding atomic.Int64
	seq         atomic.Uint64 // descriptor diagnostic sequence

	// Consumer state. recvMu serializes consumers defensively (the stack
	// already serializes them via lakeLib's call lock); borrow is the
	// popped-but-unreleased ticket backing the last returned view.
	recvMu    sync.Mutex
	borrow    uint64
	hasBorrow bool
}

// RingTransport is the descriptor-ring implementation of Channel. The
// steady-state send/receive path performs zero heap allocations: frames
// are copied once into shm payload slots and read in place.
type RingTransport struct {
	clock     *vtime.Clock
	slotBytes int

	sub  ringDir // submission: kernel→user (commands)
	comp ringDir // completion: user→kernel (responses)

	fault  atomic.Pointer[faults.Plane]
	closed atomic.Bool

	sent, received atomic.Int64

	tel TransportTelemetry
	rec *flightrec.Recorder
}

// NewRingTransport builds a ring transport with depth descriptor slots per
// direction (rounded up to a power of two) and slotBytes-wide payload
// slots, both defaulted when <= 0. The two slot arenas are allocated from
// region — the same lakeShm area bulk tensors live in — so descriptors
// index memory both domains already share. region may be nil (tests), in
// which case the arenas are ordinary process memory.
func NewRingTransport(clock *vtime.Clock, region *shm.Region, depth, slotBytes int) (*RingTransport, error) {
	if depth < 1 {
		depth = 1
	}
	if slotBytes <= 0 {
		slotBytes = DefaultSlotBytes
	}
	t := &RingTransport{clock: clock, slotBytes: slotBytes}
	for _, d := range []*ringDir{&t.sub, &t.comp} {
		d.ring = ringbuf.NewMPSC(depth)
		d.bell = lockfree.NewDoorbell()
		d.ov = make([][]byte, d.ring.Cap())
		arena := int64(d.ring.Cap()) * int64(slotBytes)
		if region != nil {
			buf, err := region.Alloc(arena)
			if err != nil {
				return nil, fmt.Errorf("boundary: ring slot arena: %w", err)
			}
			d.payload = buf.Bytes()
		} else {
			d.payload = make([]byte, arena)
		}
	}
	return t, nil
}

// Kind reports Ring: the transport's cost model row.
func (t *RingTransport) Kind() Kind { return Ring }

// Clock returns the virtual clock the transport charges.
func (t *RingTransport) Clock() *vtime.Clock { return t.clock }

// SetTelemetry attaches instruments. Must be called during runtime
// construction, before any traffic: the hot paths read the set unlocked.
func (t *RingTransport) SetTelemetry(tel TransportTelemetry) { t.tel = tel }

// SetFlightRecorder attaches the flight recorder. Must be called during
// runtime construction, before any traffic.
func (t *RingTransport) SetFlightRecorder(rec *flightrec.Recorder) { t.rec = rec }

// InjectFaults attaches a fault plane: every subsequent frame in either
// direction is subject to the plane's drop / corrupt / duplicate / delay
// decisions at the ring layer, exactly like the channel transport. A nil
// plane detaches and restores the zero-allocation fast path.
func (t *RingTransport) InjectFaults(p *faults.Plane) { t.fault.Store(p) }

// Stats returns messages sent from kernel and received back.
func (t *RingTransport) Stats() (sent, received int64) {
	return t.sent.Load(), t.received.Load()
}

// DoorbellStats reports (rings, wakes, coalesced) summed over both
// directions: rings is the number of empty→nonempty transitions that rang
// a doorbell, wakes the wakeups actually delivered to a parked waiter,
// coalesced the rings absorbed by an already-pending wake.
func (t *RingTransport) DoorbellStats() (rings, wakes, coalesced uint64) {
	for _, d := range []*ringDir{&t.sub, &t.comp} {
		r, w, c := d.bell.Stats()
		rings, wakes, coalesced = rings+r, wakes+w, coalesced+c
	}
	return rings, wakes, coalesced
}

// enqueue reserves a descriptor, copies f into its payload slot (or the
// slot's overflow buffer) and publishes. Returns false when the ring is
// full. Zero-allocation once the overflow buffers have warmed up.
func (t *RingTransport) enqueue(d *ringDir, f []byte, dir uint64) bool {
	ticket, ok := d.ring.Reserve()
	if !ok {
		return false
	}
	slot := uint16(ticket) & uint16(d.ring.Cap()-1)
	var flags uint16
	if len(f) <= t.slotBytes {
		copy(d.payload[int(slot)*t.slotBytes:], f)
	} else {
		d.ov[slot] = append(d.ov[slot][:0], f...)
		flags = descOverflow
	}
	d.ring.Publish(ticket, ringbuf.Desc{
		Seq:   d.seq.Add(1),
		Slot:  slot,
		Flags: flags,
		Len:   uint32(len(f)),
	})
	if d.outstanding.Add(1) == 1 {
		d.bell.Ring()
		t.rec.EmitFrame(flightrec.EvDoorbell, f, dir)
	}
	return true
}

// send runs one frame through the fault plane (if armed) and into the
// direction's ring. Mirrors Transport.deliver's semantics: a drop returns
// nil (the sender cannot observe in-ring loss), a duplicate shed by a full
// ring is silent, a full ring on the primary frame is an error.
func (t *RingTransport) send(d *ringDir, msg []byte, dir uint64) error {
	if t.closed.Load() {
		return ErrClosed
	}
	t.rec.EmitFrame(flightrec.EvFrameSend, msg, dir)
	plane := t.fault.Load()
	if plane == nil {
		// Fast path: no fault plane, no defensive copy — the bytes go
		// straight into the shm slot.
		if !t.enqueue(d, msg, dir) {
			t.tel.QueueFull.Inc()
			t.rec.EmitFrame(flightrec.EvQueueFull, msg, dir)
			return fmt.Errorf("boundary: %s queue full", Ring)
		}
		return nil
	}
	// Chaos path: the plane may mutate, duplicate or drop the frame; give
	// it a private copy like the channel transport does. Allocation here
	// is acceptable — the zero-alloc gate covers the un-faulted steady
	// state.
	cp := make([]byte, len(msg))
	copy(cp, msg)
	frames, delay := plane.OnMessage(cp)
	if delay > 0 {
		t.clock.Advance(delay)
	}
	for i, f := range frames {
		if !t.enqueue(d, f, dir) {
			if i > 0 {
				return nil // duplicate shed by a full ring: not an error
			}
			t.tel.QueueFull.Inc()
			t.rec.EmitFrame(flightrec.EvQueueFull, f, dir)
			return fmt.Errorf("boundary: %s queue full", Ring)
		}
	}
	return nil
}

// recv pops the next descriptor and returns a borrowed view of its
// payload. The previous borrow in the same direction is released first —
// this is what bounds view lifetime to "until the next Recv".
func (t *RingTransport) recv(d *ringDir, dir uint64) ([]byte, bool) {
	d.recvMu.Lock()
	defer d.recvMu.Unlock()
	if d.hasBorrow {
		d.ring.Release(d.borrow)
		d.hasBorrow = false
	}
	desc, ticket, ok := d.ring.Pop()
	if !ok {
		return nil, false
	}
	d.outstanding.Add(-1)
	d.borrow, d.hasBorrow = ticket, true
	var view []byte
	if desc.Flags&descOverflow != 0 {
		view = d.ov[desc.Slot][:desc.Len]
	} else {
		off := int(desc.Slot) * t.slotBytes
		view = d.payload[off : off+int(desc.Len)]
	}
	t.rec.EmitFrame(flightrec.EvFrameRecv, view, dir)
	return view, true
}

// SendToUser transmits msg from the kernel domain over the submission
// ring. See Transport.SendToUser for the fault-plane and clock-charging
// contract, which is identical.
func (t *RingTransport) SendToUser(msg []byte) error {
	if err := t.send(&t.sub, msg, dirToUser); err != nil {
		return err
	}
	t.sent.Add(1)
	t.tel.Sent.Inc()
	return nil
}

// RecvInUser delivers the next kernel→user frame as a borrowed view (valid
// until the next RecvInUser). ok is false when the submission ring is
// empty.
func (t *RingTransport) RecvInUser() (msg []byte, ok bool) {
	return t.recv(&t.sub, dirToUser)
}

// SendToKernel transmits a response from the user domain over the
// completion ring, subject to the same fault plane as SendToUser.
func (t *RingTransport) SendToKernel(msg []byte) error {
	return t.send(&t.comp, msg, dirToKernel)
}

// RecvInKernel delivers the next user→kernel frame as a borrowed view
// (valid until the next RecvInKernel).
func (t *RingTransport) RecvInKernel() (msg []byte, ok bool) {
	m, ok := t.recv(&t.comp, dirToKernel)
	if ok {
		t.received.Add(1)
		t.tel.Received.Inc()
	}
	return m, ok
}

// ChargeRoundTrip advances the clock by the Ring cost model's round-trip
// cost for a command of the given size, once per remoted API invocation.
func (t *RingTransport) ChargeRoundTrip(size int) time.Duration {
	d := MessageRoundTrip(Ring, size)
	t.clock.Advance(d)
	t.tel.RoundTrip.ObserveDuration(d)
	return d
}

// Close shuts the transport down. Pending descriptors are discarded.
func (t *RingTransport) Close() {
	if t.closed.Swap(true) {
		return
	}
	for _, d := range []*ringDir{&t.sub, &t.comp} {
		d.recvMu.Lock()
		if d.hasBorrow {
			d.ring.Release(d.borrow)
			d.hasBorrow = false
		}
		for {
			_, ticket, ok := d.ring.Pop()
			if !ok {
				break
			}
			d.outstanding.Add(-1)
			d.ring.Release(ticket)
		}
		d.recvMu.Unlock()
	}
}
