// Package boundary models the kernel<->user communication channels LAKE
// evaluates in §6 before settling on Netlink sockets.
//
// Two paper artifacts are reproduced here. Table 2 compares the call time
// and doorbell latency of four Linux kernel->user signalling mechanisms
// (signals, device read/write, Netlink, mmap polling). Figure 6 measures the
// round-trip overhead of Netlink command messages as their size grows, which
// is what motivates routing bulk data through lakeShm instead of the command
// channel.
//
// The package also provides Transport, the real byte-moving duplex pipe the
// remoting layer runs on: messages are actually framed and delivered, while
// the virtual clock is charged according to the channel's cost model.
package boundary

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lakego/internal/faults"
	"lakego/internal/flightrec"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

// Kind identifies a kernel<->user communication mechanism.
type Kind int

// The mechanisms compared in Table 2, plus Ring — the shm-resident
// lock-free descriptor-ring transport this reproduction adds beyond the
// paper's Netlink choice (RingTransport; see DESIGN.md "Ring transport").
const (
	Signal Kind = iota
	DeviceRW
	Netlink
	Mmap
	Ring
)

var kindNames = [...]string{"Signal", "Device R/W", "Netlink", "Mmap", "Ring"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds lists all mechanisms in Table 2's column order.
func Kinds() []Kind { return []Kind{Signal, DeviceRW, Netlink, Mmap} }

// costModel captures one row pair of Table 2 plus the message-size model
// behind Fig 6.
type costModel struct {
	// callTime is the cost, charged to the sender, of issuing a doorbell.
	callTime time.Duration
	// doorbellLatency is the delay until the receiver observes it.
	doorbellLatency time.Duration
	// msgBase is the fixed round-trip cost of a command message.
	msgBase time.Duration
	// msgPerChunk is the added cost per additional 4 KiB chunk beyond the
	// first: larger messages traverse extra socket buffer queuing and
	// copies (Fig 6's step pattern).
	msgPerChunk time.Duration
}

// Calibration targets (paper §6): Table 2's measured call time / latency in
// microseconds — Signal 56/56, Device R/W 6/57, Netlink 11/54, Mmap 6/6 —
// and Fig 6's Netlink round trips: ~29-33 µs flat through 4 KiB, then 67.80,
// 127.79 and 256.88 µs at 8, 16 and 32 KiB.
var models = map[Kind]costModel{
	Signal:   {56 * time.Microsecond, 56 * time.Microsecond, 115 * time.Microsecond, 118 * time.Microsecond},
	DeviceRW: {6 * time.Microsecond, 57 * time.Microsecond, 64 * time.Microsecond, 35 * time.Microsecond},
	Netlink:  {11 * time.Microsecond, 54 * time.Microsecond, 29 * time.Microsecond, 32500 * time.Nanosecond},
	Mmap:     {6 * time.Microsecond, 6 * time.Microsecond, 13 * time.Microsecond, 2 * time.Microsecond},
	// Ring is not a Table 2 row: shm descriptor rings pay no per-message
	// syscall, only cache-coherent stores plus a coalesced futex wake, so
	// the model is mmap's doorbell without the per-poll spin — a small
	// fixed cost and a near-flat size curve (payload already lives in
	// lakeShm).
	Ring: {1 * time.Microsecond, 2 * time.Microsecond, 4 * time.Microsecond, 500 * time.Nanosecond},
}

const chunkSize = 4096

// CallTime returns the sender-side cost of ringing a doorbell (Table 2 row
// 1).
func CallTime(k Kind) time.Duration { return models[k].callTime }

// DoorbellLatency returns the delay until the peer observes a doorbell
// (Table 2 row 2).
func DoorbellLatency(k Kind) time.Duration { return models[k].doorbellLatency }

// CPUBurn returns the CPU time the receiver wastes while waiting `wait` for
// a doorbell over channel k. Mmap polling spins a core for the entire wait
// — "the mmap method is fastest but wastes CPU spinning" (§6) — while the
// blocking mechanisms only pay a wakeup's worth of cycles.
func CPUBurn(k Kind, wait time.Duration) time.Duration {
	if k == Mmap {
		return wait
	}
	// Blocking receive: scheduler wakeup cost only.
	const wakeup = 2 * time.Microsecond
	if wait < wakeup {
		return wait
	}
	return wakeup
}

// MessageRoundTrip returns the modeled round-trip cost of a command message
// of size bytes plus its (small) response over channel k (Fig 6).
func MessageRoundTrip(k Kind, size int) time.Duration {
	m := models[k]
	chunks := (size + chunkSize - 1) / chunkSize
	if chunks < 1 {
		chunks = 1
	}
	return m.msgBase + time.Duration(chunks-1)*m.msgPerChunk
}

// ErrClosed is returned by Transport operations after Close.
var ErrClosed = errors.New("boundary: transport closed")

// Transport is a duplex message pipe between the kernel domain and the user
// domain, carrying real framed bytes and charging the virtual clock per the
// channel's cost model. Send/Recv pairs are safe for concurrent use.
type Transport struct {
	kind  Kind
	clock *vtime.Clock

	toUser   chan []byte
	toKernel chan []byte

	mu     sync.Mutex
	closed bool
	fault  *faults.Plane

	sent, received int64

	tel TransportTelemetry

	// rec receives boundary-domain frame events; nil-safe. The recorder's
	// installed frame peeker tags each event with the frame's trace ID and
	// sequence without this package decoding (or importing) the protocol.
	rec *flightrec.Recorder
}

// TransportTelemetry is the transport's instrument set. All fields may be
// nil (telemetry disabled); instruments are nil-safe.
type TransportTelemetry struct {
	// Sent counts kernel->user frames accepted into the channel.
	Sent *telemetry.Counter
	// Received counts user->kernel frames delivered to the kernel side.
	Received *telemetry.Counter
	// QueueFull counts sends rejected by a full channel queue.
	QueueFull *telemetry.Counter
	// RoundTrip observes the modeled per-command round-trip cost (virtual
	// nanoseconds) charged via ChargeRoundTrip.
	RoundTrip *telemetry.Histogram
}

// SetTelemetry attaches instruments. It must be called during runtime
// construction, before any traffic: the hot paths read the set unlocked.
func (t *Transport) SetTelemetry(tel TransportTelemetry) {
	t.tel = tel
}

// SetFlightRecorder attaches the flight recorder. Must be called during
// runtime construction, before any traffic.
func (t *Transport) SetFlightRecorder(rec *flightrec.Recorder) {
	t.rec = rec
}

// NewTransport creates a transport over channel kind k with the given queue
// depth (Netlink sockets buffer messages; depth models that).
func NewTransport(k Kind, clock *vtime.Clock, depth int) *Transport {
	if depth < 1 {
		depth = 1
	}
	return &Transport{
		kind:     k,
		clock:    clock,
		toUser:   make(chan []byte, depth),
		toKernel: make(chan []byte, depth),
	}
}

// Kind returns the channel mechanism in use.
func (t *Transport) Kind() Kind { return t.kind }

// Clock returns the virtual clock the transport charges.
func (t *Transport) Clock() *vtime.Clock { return t.clock }

// InjectFaults attaches a fault plane to the transport: every subsequent
// frame in either direction is subject to the plane's drop / corrupt /
// duplicate / delay decisions. A nil plane detaches.
func (t *Transport) InjectFaults(p *faults.Plane) {
	t.mu.Lock()
	t.fault = p
	t.mu.Unlock()
}

// faultPlane returns the attached plane (possibly nil).
func (t *Transport) faultPlane() *faults.Plane {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fault
}

// deliver runs one frame through the fault plane and enqueues the surviving
// copies on ch, charging any injected delay to the clock. The caller's copy
// semantics are preserved: cp is already a private copy of the caller's
// message. A queue-full duplicate is silently shed, like an overrun socket
// buffer.
func (t *Transport) deliver(ch chan []byte, cp []byte, dir uint64) error {
	frames, delay := t.faultPlane().OnMessage(cp)
	if delay > 0 {
		t.clock.Advance(delay)
	}
	for i, f := range frames {
		select {
		case ch <- f:
		default:
			if i > 0 {
				return nil // duplicate shed by a full queue: not an error
			}
			t.tel.QueueFull.Inc()
			t.rec.EmitFrame(flightrec.EvQueueFull, cp, dir)
			return fmt.Errorf("boundary: %s queue full", t.kind)
		}
	}
	return nil
}

// Stats returns messages sent from kernel and received back.
func (t *Transport) Stats() (sent, received int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent, t.received
}

func (t *Transport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// SendToUser transmits msg from the kernel domain. Data movement itself is
// free of clock charges: the remoting layer charges each command's modeled
// round-trip cost once via ChargeRoundTrip, mirroring how Fig 6 accounts
// per-message overhead.
//
// With a fault plane attached the message may be silently dropped,
// corrupted, duplicated, or delayed; a drop still returns nil — the sender
// cannot observe in-channel loss, exactly like a lossy socket.
func (t *Transport) SendToUser(msg []byte) error {
	if t.isClosed() {
		return ErrClosed
	}
	t.rec.EmitFrame(flightrec.EvFrameSend, msg, dirToUser)
	cp := make([]byte, len(msg))
	copy(cp, msg)
	if err := t.deliver(t.toUser, cp, dirToUser); err != nil {
		return err
	}
	t.mu.Lock()
	t.sent++
	t.mu.Unlock()
	t.tel.Sent.Inc()
	return nil
}

// dirToUser / dirToKernel tag boundary events with the frame's direction.
const (
	dirToUser   = 0
	dirToKernel = 1
)

// RecvInUser delivers the next kernel->user message. ok is false when no
// message is pending.
func (t *Transport) RecvInUser() (msg []byte, ok bool) {
	select {
	case m := <-t.toUser:
		t.rec.EmitFrame(flightrec.EvFrameRecv, m, dirToUser)
		return m, true
	default:
		return nil, false
	}
}

// SendToKernel transmits a response from the user domain, subject to the
// same fault plane as SendToUser.
func (t *Transport) SendToKernel(msg []byte) error {
	if t.isClosed() {
		return ErrClosed
	}
	t.rec.EmitFrame(flightrec.EvFrameSend, msg, dirToKernel)
	cp := make([]byte, len(msg))
	copy(cp, msg)
	return t.deliver(t.toKernel, cp, dirToKernel)
}

// RecvInKernel delivers the next user->kernel message.
func (t *Transport) RecvInKernel() (msg []byte, ok bool) {
	select {
	case m := <-t.toKernel:
		t.mu.Lock()
		t.received++
		t.mu.Unlock()
		t.tel.Received.Inc()
		t.rec.EmitFrame(flightrec.EvFrameRecv, m, dirToKernel)
		return m, true
	default:
		return nil, false
	}
}

// ChargeRoundTrip advances the clock by the modeled round-trip cost for a
// command of the given size. The remoting layer calls it once per remoted
// API invocation; the actual bytes flow through Send/Recv above.
func (t *Transport) ChargeRoundTrip(size int) time.Duration {
	d := MessageRoundTrip(t.kind, size)
	t.clock.Advance(d)
	t.tel.RoundTrip.ObserveDuration(d)
	return d
}

// Close shuts the transport down. Pending messages are discarded.
func (t *Transport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for {
		select {
		case <-t.toUser:
		case <-t.toKernel:
		default:
			return
		}
	}
}
