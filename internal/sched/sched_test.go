package sched

import (
	"testing"
	"time"
)

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(Config{Cores: 1}, nil); err == nil {
		t.Fatal("single-core sim accepted")
	}
	s, err := NewSim(Config{Cores: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Tick <= 0 || s.cfg.Balance < s.cfg.Tick {
		t.Fatal("defaults not applied")
	}
}

func TestAllTasksComplete(t *testing.T) {
	s, _ := NewSim(DefaultConfig(), nil)
	s.SpawnRandom(100, 2*time.Millisecond, 20*time.Millisecond)
	st := s.Run(10 * time.Second)
	if st.Completed != 100 {
		t.Fatalf("completed %d/100", st.Completed)
	}
	if st.Makespan <= 0 || st.AvgTurnTime <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHeuristicMigratesUnderImbalance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Nodes = 1
	s, _ := NewSim(cfg, nil)
	// Pile work on one node/core pattern: spawn all on node 0; Spawn
	// load-balances initial placement, so force imbalance by spawning
	// sequentially with heavy work.
	for i := 0; i < 12; i++ {
		s.Spawn(50*time.Millisecond, 1, 0)
	}
	// Spawn placement spreads evenly, so skew the queues manually to
	// create the imbalance the balancer must react to.
	var all []*Task
	for c := range s.queues {
		all = append(all, s.queues[c]...)
		s.queues[c] = nil
	}
	s.queues[0] = all
	st := s.Run(5 * time.Second)
	if st.Decisions == 0 {
		t.Fatal("balancer never consulted")
	}
	if st.Completed != 12 {
		t.Fatalf("completed %d/12", st.Completed)
	}
}

func TestMigrationImprovesSkewedLoad(t *testing.T) {
	// With balancing disabled (balancer that never migrates), a skewed
	// load finishes later than with the heuristic.
	type never struct{}
	mk := func(b Balancer) Stats {
		cfg := DefaultConfig()
		cfg.Cores = 8
		cfg.Nodes = 1
		cfg.Seed = 7
		s, _ := NewSim(cfg, b)
		// Skew: many tasks land on few cores by spawning in bursts.
		for i := 0; i < 64; i++ {
			s.Spawn(30*time.Millisecond, 1, 0)
		}
		// Manually skew queues: move everything to core 0.
		var all []*Task
		for c := range s.queues {
			all = append(all, s.queues[c]...)
			s.queues[c] = nil
		}
		s.queues[0] = all
		return s.Run(20 * time.Second)
	}
	_ = never{}
	balanced := mk(nil)
	unbalanced := mk(neverBalancer{})
	if balanced.Makespan >= unbalanced.Makespan {
		t.Fatalf("work stealing did not help: balanced %v vs unbalanced %v",
			balanced.Makespan, unbalanced.Makespan)
	}
	if balanced.Migrations == 0 {
		t.Fatal("no migrations recorded")
	}
}

type neverBalancer struct{}

func (neverBalancer) ShouldMigrate(Features) bool { return false }

func TestSamplesLabeled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	s, _ := NewSim(cfg, nil)
	s.SpawnRandom(200, time.Millisecond, 50*time.Millisecond)
	// Skew to force balancing decisions.
	var all []*Task
	for c := range s.queues {
		all = append(all, s.queues[c]...)
		s.queues[c] = nil
	}
	s.queues[0] = all
	s.Run(time.Minute)
	samples := s.Samples()
	if len(samples) == 0 {
		t.Fatal("no training samples produced")
	}
	pos := 0
	for _, smp := range samples {
		if v := smp.Features.Vector(); len(v) != VectorSize {
			t.Fatalf("vector size %d, want %d", len(v), VectorSize)
		}
		if smp.Beneficial {
			pos++
		}
	}
	if pos == 0 || pos == len(samples) {
		t.Fatalf("degenerate labels: %d/%d beneficial", pos, len(samples))
	}
}

func TestFeaturesVectorEncoding(t *testing.T) {
	f := Features{
		SrcQueueLen: 3, DstQueueLen: 1, SrcLoad: 5, DstLoad: 2,
		TaskRemaining: 2 * time.Millisecond, TaskWeight: 2,
		CacheHot: true, SameNode: false, Imbalance: 0.6,
	}
	v := f.Vector()
	if v[0] != 3 || v[1] != 1 || v[5] != 2 || v[6] != 1 || v[7] != 0 {
		t.Fatalf("vector = %v", v)
	}
	if v[8] < 0.59 || v[8] > 0.61 {
		t.Fatalf("imbalance encoded as %v", v[8])
	}
}

func TestSpawnDefaults(t *testing.T) {
	s, _ := NewSim(DefaultConfig(), nil)
	task := s.Spawn(time.Millisecond, 0, 99)
	if task.Weight != 1 {
		t.Fatalf("weight = %d, want clamped 1", task.Weight)
	}
	if task.Node >= s.cfg.Nodes {
		t.Fatalf("node = %d out of range", task.Node)
	}
}

func TestWeightedTasksGetProportionalShare(t *testing.T) {
	// Round-robin within a queue is per-task; weights influence load
	// accounting and therefore balancing decisions.
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.Nodes = 1
	s, _ := NewSim(cfg, nil)
	heavy := s.Spawn(20*time.Millisecond, 3, 0)
	light := s.Spawn(20*time.Millisecond, 1, 0)
	st := s.Run(time.Second)
	if st.Completed != 2 {
		t.Fatalf("completed %d/2", st.Completed)
	}
	_ = heavy
	_ = light
}

func TestNUMAPlacementPrefersNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.Nodes = 2
	s, _ := NewSim(cfg, nil)
	// Tasks on node 1 must land on node-1 cores (odd indices with 2 nodes).
	for i := 0; i < 8; i++ {
		task := s.Spawn(time.Millisecond, 1, 1)
		if task.LastCore%2 != 1 {
			t.Fatalf("node-1 task placed on core %d", task.LastCore)
		}
	}
}

func TestCrossNodeMigrationPenalized(t *testing.T) {
	cfg := DefaultConfig()
	s, _ := NewSim(cfg, nil)
	f := Features{SrcLoad: 10, DstLoad: 0, SameNode: false, TaskRemaining: time.Millisecond}
	// Ground truth must be less eager across nodes: with identical loads,
	// remote-node moves need a larger gap.
	task := &Task{Remaining: time.Millisecond}
	localOK := s.beneficial(&Task{Remaining: 50 * time.Millisecond}, Features{SrcLoad: 1.5, DstLoad: 0, SameNode: true})
	remoteOK := s.beneficial(&Task{Remaining: 50 * time.Millisecond}, Features{SrcLoad: 1.5, DstLoad: 0, SameNode: false})
	if !localOK {
		t.Fatal("mild imbalance should justify a local-node steal")
	}
	if remoteOK {
		t.Fatal("the same mild imbalance should not justify a remote-node steal")
	}
	_ = f
	_ = task
}

func TestStepIdleCoresNoOp(t *testing.T) {
	s, _ := NewSim(DefaultConfig(), nil)
	s.Step() // no tasks: must not panic, time advances
	if s.now == 0 {
		t.Fatal("Step did not advance time")
	}
}
