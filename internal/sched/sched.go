// Package sched is a multi-core scheduler simulator with a pull-based
// work-stealing load balancer, the substrate for the MLLB workload (§7.3:
// "The Linux kernel does load balancing using a pull-based, work-stealing
// mechanism that moves processes' execution between CPUs").
//
// The simulator runs tasks on per-core run queues in fixed ticks; every
// balancing period an idle-ish core scans the busiest core and asks a
// Balancer — the CFS-style heuristic, or an ML model through LAKE — whether
// to steal each candidate task, mirroring can_migrate_task. The simulator
// also labels each migration opportunity with ground truth (did stealing
// reduce the task's completion time net of the cache/NUMA penalty), which is
// the training signal the MLLB model learns from.
package sched

import (
	"fmt"
	"math/rand"
	"time"
)

// Task is one runnable process.
type Task struct {
	ID int
	// Remaining is the CPU time left to finish.
	Remaining time.Duration
	// Weight scales the share of a core the task receives (nice level).
	Weight int
	// LastCore tracks cache affinity; migrating off it costs a warmup.
	LastCore int
	// Node is the task's preferred NUMA node.
	Node int
	// arrived and finished record lifecycle timestamps.
	arrived  time.Duration
	finished time.Duration
}

// Features is the per-candidate migration feature vector, modeled on the
// signals MLLB feeds its perceptron: source/destination load, queue
// lengths, the task's cache footprint proxy and NUMA distance.
type Features struct {
	SrcQueueLen   int
	DstQueueLen   int
	SrcLoad       float64 // sum of weights on source
	DstLoad       float64
	TaskRemaining time.Duration
	TaskWeight    int
	CacheHot      bool // ran on src within the hot window
	SameNode      bool
	Imbalance     float64 // (srcLoad-dstLoad)/max(srcLoad,1)
}

// VectorSize is the width of Features.Vector().
const VectorSize = 9

// Vector flattens the features for ML consumption.
func (f Features) Vector() []float32 {
	b2f := func(b bool) float32 {
		if b {
			return 1
		}
		return 0
	}
	return []float32{
		float32(f.SrcQueueLen),
		float32(f.DstQueueLen),
		float32(f.SrcLoad),
		float32(f.DstLoad),
		float32(f.TaskRemaining.Microseconds()) / 1000,
		float32(f.TaskWeight),
		b2f(f.CacheHot),
		b2f(f.SameNode),
		float32(f.Imbalance),
	}
}

// Balancer decides whether to migrate a candidate task.
type Balancer interface {
	ShouldMigrate(f Features) bool
}

// Heuristic is the CFS-flavoured default: steal when the load imbalance
// exceeds 25% and the task is not cache-hot on its current core.
type Heuristic struct{}

// ShouldMigrate implements Balancer.
func (Heuristic) ShouldMigrate(f Features) bool {
	return f.Imbalance > 0.25 && !f.CacheHot
}

// Config parameterizes a simulation.
type Config struct {
	Cores   int
	Nodes   int // NUMA nodes; cores are striped across them
	Tick    time.Duration
	Balance time.Duration // balancing period
	// MigrationPenalty is the cache-refill cost charged to a stolen task.
	MigrationPenalty time.Duration
	Seed             int64
}

// DefaultConfig is a 16-core, 2-node machine with 1ms ticks.
func DefaultConfig() Config {
	return Config{
		Cores:            16,
		Nodes:            2,
		Tick:             time.Millisecond,
		Balance:          4 * time.Millisecond,
		MigrationPenalty: 200 * time.Microsecond,
		Seed:             1,
	}
}

// Sample is one labeled migration opportunity, the training record MLLB
// consumes.
type Sample struct {
	Features Features
	// Beneficial is ground truth: stealing would reduce the task's
	// completion time by more than the migration penalty.
	Beneficial bool
}

// Stats summarizes a simulation run.
type Stats struct {
	Completed   int
	Migrations  int
	Makespan    time.Duration
	AvgTurnTime time.Duration
	Decisions   int
}

// Sim is one scheduler simulation instance.
type Sim struct {
	cfg      Config
	rng      *rand.Rand
	queues   [][]*Task
	now      time.Duration
	done     []*Task
	balancer Balancer

	migrations int
	decisions  int
	samples    []Sample
}

// NewSim creates a simulator with the given balancer (nil = Heuristic).
func NewSim(cfg Config, b Balancer) (*Sim, error) {
	if cfg.Cores <= 1 {
		return nil, fmt.Errorf("sched: need >= 2 cores, got %d", cfg.Cores)
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.Balance < cfg.Tick {
		cfg.Balance = cfg.Tick
	}
	if b == nil {
		b = Heuristic{}
	}
	return &Sim{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		queues:   make([][]*Task, cfg.Cores),
		balancer: b,
	}, nil
}

// Spawn adds a task to the least-loaded core on its preferred node.
func (s *Sim) Spawn(work time.Duration, weight, node int) *Task {
	if weight <= 0 {
		weight = 1
	}
	node = node % s.cfg.Nodes
	best := -1
	for c := 0; c < s.cfg.Cores; c++ {
		if c%s.cfg.Nodes != node {
			continue
		}
		if best == -1 || len(s.queues[c]) < len(s.queues[best]) {
			best = c
		}
	}
	t := &Task{
		ID:        len(s.done) + s.totalQueued() + 1,
		Remaining: work,
		Weight:    weight,
		LastCore:  best,
		Node:      node,
		arrived:   s.now,
	}
	s.queues[best] = append(s.queues[best], t)
	return t
}

// SpawnRandom adds n tasks with work drawn uniformly from [minW, maxW].
func (s *Sim) SpawnRandom(n int, minW, maxW time.Duration) {
	for i := 0; i < n; i++ {
		w := minW + time.Duration(s.rng.Int63n(int64(maxW-minW)+1))
		s.Spawn(w, 1+s.rng.Intn(3), s.rng.Intn(s.cfg.Nodes))
	}
}

func (s *Sim) totalQueued() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

func (s *Sim) load(core int) float64 {
	var l float64
	for _, t := range s.queues[core] {
		l += float64(t.Weight)
	}
	return l
}

// features builds the migration feature vector for stealing t from src to
// dst.
func (s *Sim) features(t *Task, src, dst int) Features {
	srcLoad, dstLoad := s.load(src), s.load(dst)
	den := srcLoad
	if den < 1 {
		den = 1
	}
	return Features{
		SrcQueueLen:   len(s.queues[src]),
		DstQueueLen:   len(s.queues[dst]),
		SrcLoad:       srcLoad,
		DstLoad:       dstLoad,
		TaskRemaining: t.Remaining,
		TaskWeight:    t.Weight,
		CacheHot:      t.LastCore == src && t.Remaining > 0,
		SameNode:      src%s.cfg.Nodes == dst%s.cfg.Nodes,
		Imbalance:     (srcLoad - dstLoad) / den,
	}
}

// beneficial computes ground truth for a candidate migration: expected
// queueing time saved (net of the slot the move itself frees) versus the
// cache/NUMA penalty paid. Near-done tasks are never worth moving.
func (s *Sim) beneficial(t *Task, f Features) bool {
	saved := (f.SrcLoad - f.DstLoad - 1) * float64(s.cfg.Tick)
	penalty := s.cfg.MigrationPenalty
	if !f.SameNode {
		penalty *= 3 // remote NUMA pull costs more
	}
	if f.CacheHot {
		penalty += s.cfg.MigrationPenalty
	}
	if t.Remaining <= 4*penalty {
		return false
	}
	return saved > float64(penalty)
}

// balance runs one balancing pass: each underloaded core considers stealing
// from the busiest core.
func (s *Sim) balance() {
	busiest, idlest := 0, 0
	for c := 1; c < s.cfg.Cores; c++ {
		if s.load(c) > s.load(busiest) {
			busiest = c
		}
		if s.load(c) < s.load(idlest) {
			idlest = c
		}
	}
	if busiest == idlest || len(s.queues[busiest]) <= 1 {
		return
	}
	q := s.queues[busiest]
	for i := len(q) - 1; i >= 0 && len(s.queues[busiest]) > 1; i-- {
		t := q[i]
		f := s.features(t, busiest, idlest)
		s.decisions++
		s.samples = append(s.samples, Sample{Features: f, Beneficial: s.beneficial(t, f)})
		if !s.balancer.ShouldMigrate(f) {
			continue
		}
		// Steal.
		s.queues[busiest] = append(s.queues[busiest][:i], s.queues[busiest][i+1:]...)
		t.Remaining += s.cfg.MigrationPenalty
		t.LastCore = idlest
		s.queues[idlest] = append(s.queues[idlest], t)
		s.migrations++
		q = s.queues[busiest]
		break // one steal per pass, like CFS's conservative pulls
	}
}

// Step advances the simulation one tick: every core runs the head of its
// queue (round robin within the queue).
func (s *Sim) Step() {
	if s.now%s.cfg.Balance == 0 && s.now > 0 {
		s.balance()
	}
	for c := 0; c < s.cfg.Cores; c++ {
		q := s.queues[c]
		if len(q) == 0 {
			continue
		}
		t := q[0]
		t.Remaining -= s.cfg.Tick
		t.LastCore = c
		if t.Remaining <= 0 {
			t.finished = s.now + s.cfg.Tick
			s.done = append(s.done, t)
			s.queues[c] = q[1:]
		} else {
			// Rotate for round-robin fairness.
			s.queues[c] = append(q[1:], t)
		}
	}
	s.now += s.cfg.Tick
}

// Run steps until all tasks finish or the horizon elapses, returning stats.
func (s *Sim) Run(horizon time.Duration) Stats {
	for s.now < horizon && s.totalQueued() > 0 {
		s.Step()
	}
	var turn time.Duration
	for _, t := range s.done {
		turn += t.finished - t.arrived
	}
	st := Stats{
		Completed:  len(s.done),
		Migrations: s.migrations,
		Makespan:   s.now,
		Decisions:  s.decisions,
	}
	if len(s.done) > 0 {
		st.AvgTurnTime = turn / time.Duration(len(s.done))
	}
	return st
}

// Samples returns the labeled migration opportunities observed so far.
func (s *Sim) Samples() []Sample { return s.samples }
