// Lock-free MPSC descriptor ring: the wire structure behind the boundary's
// ring transport. Where Ring (ringbuf.go) is the registry's mutex-guarded
// window, MPSC is the promoted-to-the-wire variant the ROADMAP calls for — a
// bounded multi-producer single-consumer queue of fixed-size frame
// descriptors, indexing payload slots that live in lakeShm.
//
// The algorithm is Vyukov's bounded queue specialized to one consumer. Each
// slot carries a sequence word that doubles as the publication fence:
//
//   - empty, ready for the producer of ticket pos:   seq == pos
//   - full, ready for the consumer at ticket pos:    seq == pos+1
//   - consumed, ready for producer pos+capacity:     seq == pos+capacity
//
// Producers claim a ticket with a CAS on head, write the descriptor words
// with plain stores, then publish with a release store of seq = pos+1. The
// consumer observes seq with an acquire load, so the descriptor words (and,
// in the transport, the payload bytes the descriptor indexes) happen-before
// the pop. Go's sync/atomic provides sequentially consistent operations,
// which subsume the acquire/release pairs this protocol needs; the full
// argument is written out in DESIGN.md ("Ring transport").
//
// Consumption is split into Pop and Release so the consumer can borrow the
// slot's payload without copying: Pop hands back the descriptor and its
// ticket while the slot stays reserved; Release(ticket) stores
// seq = pos+capacity, returning the slot (and its payload area) to the
// producers. A consumer that never releases stalls producers at the ring
// boundary — exactly the backpressure a full socket buffer would apply.
package ringbuf

import (
	"fmt"
	"sync/atomic"
)

// Desc is one fixed-size frame descriptor. It is the only thing that
// crosses the ring: payload bytes stay in their shm slot and are located by
// the (Slot, Len) pair.
type Desc struct {
	// Seq is the wire sequence of the frame (diagnostic tag; the transport
	// stamps it so torn or stale descriptors are attributable).
	Seq uint64
	// Slot is the payload slot ordinal the frame occupies.
	Slot uint16
	// Flags carries transport bits (direction, overflow spill).
	Flags uint16
	// Len is the payload length in bytes.
	Len uint32
}

// descWords is the descriptor's packed size: every descriptor is exactly
// two uint64 stores/loads, so a torn read is confined to word granularity
// and detectable via the slot sequence protocol.
const descWords = 2

// EncodeDesc packs d into its two ring words: word 0 is Len in the high 32
// bits, Slot in bits 16-31 and Flags in bits 0-15; word 1 is Seq. The
// packing is bijective — DecodeDesc inverts it exactly for every input —
// which FuzzRingDescriptor pins down.
func EncodeDesc(d Desc) [descWords]uint64 {
	return [descWords]uint64{
		uint64(d.Len)<<32 | uint64(d.Slot)<<16 | uint64(d.Flags),
		d.Seq,
	}
}

// DecodeDesc unpacks the two ring words produced by EncodeDesc.
func DecodeDesc(w [descWords]uint64) Desc {
	return Desc{
		Seq:   w[1],
		Slot:  uint16(w[0] >> 16),
		Flags: uint16(w[0]),
		Len:   uint32(w[0] >> 32),
	}
}

// mpscSlot is one ring cell: the sequence word plus the packed descriptor.
// atomic.Uint64 forces 8-byte alignment of the whole struct (the compiler's
// align64 rule), so the CAS/load/store words stay atomic on 32-bit
// platforms too — the CI lint job cross-builds GOARCH=386 to keep it that
// way.
type mpscSlot struct {
	seq atomic.Uint64
	w   [descWords]uint64
}

// cachePad separates the producer and consumer cursors so they do not
// false-share a cache line.
type cachePad [7]uint64

// MPSC is a bounded lock-free multi-producer single-consumer descriptor
// ring. Push is safe for any number of concurrent producers; Pop/Release
// must be called from one consumer at a time (the transport's receive side
// serializes on the protocol's demux lock, exactly like the prototype's
// per-socket Netlink reader).
type MPSC struct {
	mask uint64
	slot []mpscSlot

	_    cachePad
	head atomic.Uint64 // next producer ticket
	_    cachePad
	tail uint64 // next consumer ticket (single consumer: plain)
}

// NewMPSC returns a ring with the given capacity, rounded up to a power of
// two (minimum 2, maximum 1<<16 so Desc.Slot can index every slot).
func NewMPSC(capacity int) *MPSC {
	if capacity < 2 {
		capacity = 2
	}
	if capacity > 1<<16 {
		panic(fmt.Sprintf("ringbuf: MPSC capacity %d exceeds %d", capacity, 1<<16))
	}
	c := 2
	for c < capacity {
		c <<= 1
	}
	r := &MPSC{mask: uint64(c - 1), slot: make([]mpscSlot, c)}
	for i := range r.slot {
		r.slot[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's slot count.
func (r *MPSC) Cap() int { return len(r.slot) }

// Len returns the number of published, unconsumed descriptors. It is a
// racy snapshot, only exact when producers and the consumer are quiescent.
func (r *MPSC) Len() int {
	n := int(r.head.Load() - atomic.LoadUint64(&r.tail))
	if n < 0 {
		return 0
	}
	return n
}

// Reserve claims the next producer ticket without publishing it. The
// caller owns slot ticket&(Cap()-1) — and, in the transport, the payload
// area that slot indexes — until Publish(ticket, d) makes it visible to the
// consumer. Returns ok=false when the ring is full (including slots still
// borrowed by the consumer). Safe for concurrent producers; never blocks,
// never allocates.
//
// Every successful Reserve MUST be followed by a Publish: tickets are
// consumed in order, so an unpublished ticket wedges the consumer behind
// it.
func (r *MPSC) Reserve() (ticket uint64, ok bool) {
	pos := r.head.Load()
	for {
		s := &r.slot[pos&r.mask]
		seq := s.seq.Load()
		switch dif := int64(seq - pos); {
		case dif == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				return pos, true
			}
			pos = r.head.Load()
		case dif < 0:
			// The slot is a full lap behind: the ring is full (or the
			// consumer is sitting on a borrowed slot).
			return 0, false
		default:
			// Another producer claimed this ticket; reload and retry.
			pos = r.head.Load()
		}
	}
}

// Publish stores d into the reserved ticket's slot and makes it visible to
// the consumer. The seq store is the release fence: every write the
// producer made before Publish (descriptor words, payload bytes in the
// indexed slot) happens-before the consumer's Pop of this ticket.
func (r *MPSC) Publish(ticket uint64, d Desc) {
	s := &r.slot[ticket&r.mask]
	s.w = EncodeDesc(d)
	s.seq.Store(ticket + 1)
}

// Push is Reserve+Publish in one step, for producers whose payload does not
// live in the slot. Returns false when the ring is full.
func (r *MPSC) Push(d Desc) bool {
	pos, ok := r.Reserve()
	if !ok {
		return false
	}
	r.Publish(pos, d)
	return true
}

// Pop takes the next published descriptor without releasing its slot: the
// returned ticket keeps the slot (and the payload it indexes) reserved
// until Release(ticket). ok is false when the ring is empty. Single
// consumer only.
func (r *MPSC) Pop() (d Desc, ticket uint64, ok bool) {
	pos := atomic.LoadUint64(&r.tail)
	s := &r.slot[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return Desc{}, 0, false
	}
	d = DecodeDesc(s.w)
	atomic.StoreUint64(&r.tail, pos+1)
	return d, pos, true
}

// Release returns ticket's slot to the producers. Must be called exactly
// once per successful Pop, in Pop order.
func (r *MPSC) Release(ticket uint64) {
	r.slot[ticket&r.mask].seq.Store(ticket + r.mask + 1)
}
