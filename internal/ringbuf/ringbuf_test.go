package ringbuf

import (
	"testing"
	"testing/quick"
)

func TestPushAndAt(t *testing.T) {
	r := New[int](4)
	for i := 1; i <= 3; i++ {
		if _, ev := r.Push(i); ev {
			t.Fatalf("Push(%d) evicted before full", i)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", r.Len())
	}
	for i := 0; i < 3; i++ {
		if got := r.At(i); got != i+1 {
			t.Fatalf("At(%d) = %d, want %d", i, got, i+1)
		}
	}
}

func TestPushEvictsOldestWhenFull(t *testing.T) {
	r := New[int](3)
	for i := 1; i <= 3; i++ {
		r.Push(i)
	}
	old, evicted := r.Push(4)
	if !evicted || old != 1 {
		t.Fatalf("Push(4) = (%d, %v), want (1, true)", old, evicted)
	}
	want := []int{2, 3, 4}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestNewestAndPopOldest(t *testing.T) {
	r := New[string](2)
	if _, ok := r.Newest(); ok {
		t.Fatal("Newest() on empty ring reported ok")
	}
	if _, ok := r.PopOldest(); ok {
		t.Fatal("PopOldest() on empty ring reported ok")
	}
	r.Push("a")
	r.Push("b")
	if v, _ := r.Newest(); v != "b" {
		t.Fatalf("Newest() = %q, want b", v)
	}
	if v, _ := r.PopOldest(); v != "a" {
		t.Fatalf("PopOldest() = %q, want a", v)
	}
	if r.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", r.Len())
	}
}

func TestDropWhile(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 8; i++ {
		r.Push(i)
	}
	n := r.DropWhile(func(v int) bool { return v < 5 })
	if n != 5 {
		t.Fatalf("DropWhile removed %d, want 5", n)
	}
	if got := r.Snapshot(); len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Fatalf("Snapshot() = %v, want [5 6 7]", got)
	}
}

func TestDropWhileAll(t *testing.T) {
	r := New[int](4)
	r.Push(1)
	r.Push(2)
	if n := r.DropWhile(func(int) bool { return true }); n != 2 {
		t.Fatalf("DropWhile = %d, want 2", n)
	}
	if r.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", r.Len())
	}
}

func TestClear(t *testing.T) {
	r := New[int](4)
	r.Push(1)
	r.Clear()
	if r.Len() != 0 || r.Full() {
		t.Fatalf("after Clear: Len=%d Full=%v", r.Len(), r.Full())
	}
	r.Push(9)
	if got := r.At(0); got != 9 {
		t.Fatalf("At(0) after Clear+Push = %d, want 9", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(0) on empty ring did not panic")
		}
	}()
	New[int](1).At(0)
}

func TestNewZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}

// Property: a ring of capacity c holds exactly the last min(len(xs), c)
// values pushed, in push order.
func TestQuickKeepsSuffix(t *testing.T) {
	f := func(xs []int32, capRaw uint8) bool {
		c := int(capRaw%31) + 1
		r := New[int32](c)
		for _, x := range xs {
			r.Push(x)
		}
		keep := len(xs)
		if keep > c {
			keep = c
		}
		snap := r.Snapshot()
		if len(snap) != keep {
			return false
		}
		for i := 0; i < keep; i++ {
			if snap[i] != xs[len(xs)-keep+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
