// Package ringbuf provides the fixed-capacity circular buffer that backs the
// LAKE feature registry window (§5.1: "Feature vectors are stored in memory
// in a circular buffer sized according to the window parameter").
package ringbuf

import "fmt"

// Ring is a fixed-capacity FIFO ring buffer. When full, Push evicts the
// oldest element. The zero value is unusable; construct with New.
//
// Ring is not safe for concurrent use; the feature registry guards it.
type Ring[T any] struct {
	buf   []T
	start int // index of oldest element
	n     int // number of live elements
}

// New returns a ring with the given capacity. Capacity must be positive.
func New[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("ringbuf: capacity %d must be positive", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Len returns the number of live elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Full reports whether the next Push will evict.
func (r *Ring[T]) Full() bool { return r.n == len(r.buf) }

// Push appends v. If the ring is full it evicts and returns the oldest
// element with evicted=true.
func (r *Ring[T]) Push(v T) (old T, evicted bool) {
	if r.n == len(r.buf) {
		old = r.buf[r.start]
		r.buf[r.start] = v
		r.start = (r.start + 1) % len(r.buf)
		return old, true
	}
	r.buf[(r.start+r.n)%len(r.buf)] = v
	r.n++
	return old, false
}

// At returns the i-th element counting from the oldest (0) to the newest
// (Len()-1). It panics if i is out of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("ringbuf: index %d out of range [0,%d)", i, r.n))
	}
	return r.buf[(r.start+i)%len(r.buf)]
}

// Newest returns the most recently pushed element.
// ok is false when the ring is empty.
func (r *Ring[T]) Newest() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	return r.At(r.n - 1), true
}

// PopOldest removes and returns the oldest element.
// ok is false when the ring is empty.
func (r *Ring[T]) PopOldest() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	v = r.buf[r.start]
	var zero T
	r.buf[r.start] = zero
	r.start = (r.start + 1) % len(r.buf)
	r.n--
	return v, true
}

// DropWhile removes elements from the oldest end while pred holds, returning
// the number removed. The registry uses it for truncate_features(ts).
func (r *Ring[T]) DropWhile(pred func(T) bool) int {
	dropped := 0
	for r.n > 0 && pred(r.buf[r.start]) {
		var zero T
		r.buf[r.start] = zero
		r.start = (r.start + 1) % len(r.buf)
		r.n--
		dropped++
	}
	return dropped
}

// Snapshot returns the live elements oldest-first in a newly allocated slice.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Clear removes all elements.
func (r *Ring[T]) Clear() {
	var zero T
	for i := range r.buf {
		r.buf[i] = zero
	}
	r.start, r.n = 0, 0
}
