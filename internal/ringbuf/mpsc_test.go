package ringbuf

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMPSCCapacityRounding(t *testing.T) {
	cases := []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1 << 16, 1 << 16},
	}
	for _, c := range cases {
		if got := NewMPSC(c.ask).Cap(); got != c.want {
			t.Errorf("NewMPSC(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestMPSCCapacityLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity beyond 1<<16 did not panic (Desc.Slot could not index it)")
		}
	}()
	NewMPSC(1<<16 + 1)
}

func TestMPSCPushPopFIFO(t *testing.T) {
	r := NewMPSC(8)
	for i := 0; i < 5; i++ {
		if !r.Push(Desc{Seq: uint64(i), Slot: uint16(i), Len: uint32(i * 100)}) {
			t.Fatalf("push %d on non-full ring failed", i)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	for i := 0; i < 5; i++ {
		d, ticket, ok := r.Pop()
		if !ok {
			t.Fatalf("pop %d on non-empty ring failed", i)
		}
		if d.Seq != uint64(i) || d.Slot != uint16(i) || d.Len != uint32(i*100) {
			t.Fatalf("pop %d = %+v, out of FIFO order", i, d)
		}
		r.Release(ticket)
	}
	if _, _, ok := r.Pop(); ok {
		t.Fatal("pop on drained ring succeeded")
	}
}

func TestMPSCFullRejectsPush(t *testing.T) {
	r := NewMPSC(4)
	for i := 0; i < 4; i++ {
		if !r.Push(Desc{Seq: uint64(i)}) {
			t.Fatalf("push %d under capacity failed", i)
		}
	}
	if r.Push(Desc{Seq: 99}) {
		t.Fatal("push on full ring succeeded")
	}
	if _, ok := r.Reserve(); ok {
		t.Fatal("reserve on full ring succeeded")
	}
}

func TestMPSCBorrowedSlotBlocksProducers(t *testing.T) {
	// A popped-but-unreleased ticket keeps its slot reserved: after a full
	// lap the producers must stall on it (the transport's backpressure).
	r := NewMPSC(2)
	r.Push(Desc{Seq: 1})
	r.Push(Desc{Seq: 2})
	_, borrowed, ok := r.Pop()
	if !ok {
		t.Fatal("pop failed")
	}
	// One slot freed? No — Pop does not release. The ring still holds both.
	if r.Push(Desc{Seq: 3}) {
		t.Fatal("push reused a borrowed slot before Release")
	}
	r.Release(borrowed)
	if !r.Push(Desc{Seq: 3}) {
		t.Fatal("push after Release failed")
	}
}

func TestMPSCWrapAround(t *testing.T) {
	// Drive the ring through many laps so every slot's sequence word cycles
	// repeatedly; FIFO order and descriptor integrity must hold throughout.
	r := NewMPSC(4)
	next := uint64(0)
	for lap := 0; lap < 1000; lap++ {
		for i := 0; i < 3; i++ {
			if !r.Push(Desc{Seq: next + uint64(i), Slot: uint16(next + uint64(i)), Len: uint32(lap)}) {
				t.Fatalf("lap %d push %d failed", lap, i)
			}
		}
		for i := 0; i < 3; i++ {
			d, ticket, ok := r.Pop()
			if !ok {
				t.Fatalf("lap %d pop %d failed", lap, i)
			}
			if d.Seq != next {
				t.Fatalf("lap %d: popped seq %d, want %d", lap, d.Seq, next)
			}
			r.Release(ticket)
			next++
		}
	}
}

func TestMPSCReservePublish(t *testing.T) {
	// A reserved-but-unpublished ticket must not be visible to the consumer,
	// even when a later ticket is already published (in-order consumption).
	r := NewMPSC(8)
	t0, ok := r.Reserve()
	if !ok {
		t.Fatal("reserve failed")
	}
	t1, ok := r.Reserve()
	if !ok {
		t.Fatal("second reserve failed")
	}
	r.Publish(t1, Desc{Seq: 11})
	if _, _, ok := r.Pop(); ok {
		t.Fatal("consumer skipped ahead of an unpublished ticket")
	}
	r.Publish(t0, Desc{Seq: 10})
	d, tk, ok := r.Pop()
	if !ok || d.Seq != 10 {
		t.Fatalf("first pop = %+v ok=%v, want seq 10", d, ok)
	}
	r.Release(tk)
	d, tk, ok = r.Pop()
	if !ok || d.Seq != 11 {
		t.Fatalf("second pop = %+v ok=%v, want seq 11", d, ok)
	}
	r.Release(tk)
}

func TestMPSCConcurrentProducers(t *testing.T) {
	// N producers push disjoint sequence ranges through a small ring while
	// one consumer drains. Every descriptor must arrive exactly once and
	// each producer's own range must arrive in its push order.
	const (
		producers = 8
		perProd   = 2000
	)
	r := NewMPSC(16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := uint64(p) << 32
			for i := 0; i < perProd; i++ {
				d := Desc{Seq: base | uint64(i), Slot: uint16(p), Len: uint32(i)}
				for !r.Push(d) {
					runtime.Gosched()
				}
			}
		}(p)
	}

	seen := make([]uint64, producers) // next expected per-producer index
	var got atomic.Uint64
	done := make(chan error, 1)
	go func() {
		for got.Load() < producers*perProd {
			d, ticket, ok := r.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			p := int(d.Seq >> 32)
			idx := d.Seq & 0xFFFFFFFF
			if p >= producers || idx != seen[p] {
				done <- fmt.Errorf("producer %d: got index %d, want %d", p, idx, seen[p])
				return
			}
			seen[p]++
			r.Release(ticket)
			got.Add(1)
		}
		done <- nil
	}()

	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Load() != producers*perProd {
		t.Fatalf("consumed %d descriptors, want %d", got.Load(), producers*perProd)
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after drain: Len = %d", r.Len())
	}
}
