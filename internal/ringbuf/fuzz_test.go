package ringbuf

import "testing"

// FuzzRingDescriptor pins the descriptor packing as a bijection: for every
// (seq, slot, flags, len) tuple, EncodeDesc→DecodeDesc is the identity, and
// for every word pair, DecodeDesc→EncodeDesc is the identity. The seed corpus
// covers the wrap-around and torn-index shapes the transport can produce:
// lap-boundary sequences, max-ordinal slots, overflow flags, and word pairs
// where one word is from a stale lap (a torn read the slot-sequence protocol
// must make attributable, never silently corrupting).
func FuzzRingDescriptor(f *testing.F) {
	// Zero and identity shapes.
	f.Add(uint64(0), uint16(0), uint16(0), uint32(0))
	f.Add(uint64(1), uint16(1), uint16(1), uint32(1))
	// All-ones saturation of each field.
	f.Add(^uint64(0), ^uint16(0), ^uint16(0), ^uint32(0))
	// Wrap-around sequences: tickets at and across a lap boundary of every
	// power-of-two capacity the ring can have.
	f.Add(uint64(1<<16-1), uint16(1<<16-1), uint16(0), uint32(16<<10))
	f.Add(uint64(1<<16), uint16(0), uint16(0), uint32(16<<10))
	f.Add(uint64(1<<32-1), uint16(0xFFFF), uint16(0x0001), uint32(64<<20))
	f.Add(uint64(1<<32), uint16(0), uint16(0x0001), uint32(0))
	// Torn-index shape: a seq word from lap N with slot/flags from lap N+1
	// (cross-field bit spill would silently merge them; bijectivity forbids).
	f.Add(uint64(0xDEADBEEFCAFEF00D), uint16(0xAAAA), uint16(0x5555), uint32(0x0F0F0F0F))
	f.Add(uint64(0x0123456789ABCDEF), uint16(0x8000), uint16(0x0001), uint32(0x80000001))

	f.Fuzz(func(t *testing.T, seq uint64, slot uint16, flags uint16, length uint32) {
		d := Desc{Seq: seq, Slot: slot, Flags: flags, Len: length}
		w := EncodeDesc(d)
		got := DecodeDesc(w)
		if got != d {
			t.Fatalf("decode(encode(%+v)) = %+v", d, got)
		}
		// Word-level fixed point: re-encoding the decoded descriptor must
		// reproduce the exact words, so no bit of either word is dead.
		if w2 := EncodeDesc(got); w2 != w {
			t.Fatalf("encode(decode(%#x)) = %#x", w, w2)
		}
	})
}
