package nvml

import (
	"testing"
	"time"

	"lakego/internal/gpu"
	"lakego/internal/vtime"
)

func TestIdleDeviceReportsZero(t *testing.T) {
	dev := gpu.New(gpu.DefaultSpec(), vtime.New())
	dev.Clock().Advance(time.Second)
	u := DeviceGetUtilizationRates(dev)
	if u.GPU != 0 {
		t.Fatalf("GPU util = %d, want 0", u.GPU)
	}
	if u.Memory != 0 {
		t.Fatalf("Memory util = %d, want 0", u.Memory)
	}
}

func TestBusyDeviceReportsHighUtilization(t *testing.T) {
	clk := vtime.New()
	dev := gpu.New(gpu.DefaultSpec(), clk)
	clk.Advance(time.Second) // establish history
	dev.Execute("work", SamplingWindow, nil)
	u := DeviceGetUtilizationRates(dev)
	if u.GPU < 95 {
		t.Fatalf("GPU util = %d, want >=95 after saturating the window", u.GPU)
	}
}

func TestPartialUtilization(t *testing.T) {
	clk := vtime.New()
	dev := gpu.New(gpu.DefaultSpec(), clk)
	clk.Advance(time.Second)
	dev.Execute("work", SamplingWindow/2, nil)
	clk.Advance(SamplingWindow / 2)
	u := DeviceGetUtilizationRates(dev)
	if u.GPU < 40 || u.GPU > 60 {
		t.Fatalf("GPU util = %d, want ~50", u.GPU)
	}
}

func TestMemoryUtilizationTracksAllocations(t *testing.T) {
	spec := gpu.DefaultSpec()
	spec.MemoryBytes = 1000
	dev := gpu.New(spec, vtime.New())
	if _, err := dev.Alloc(500); err != nil {
		t.Fatal(err)
	}
	u := DeviceGetUtilizationRates(dev)
	if u.Memory != 50 {
		t.Fatalf("Memory util = %d, want 50", u.Memory)
	}
}

// TestLongWindowSurvivesPruning regresses the fixed-horizon pruning bug:
// busy spans used to be discarded after a constant 5s history regardless of
// the windows callers sample, so a long-window query issued after a prune
// undercounted busy time (and could flip the Fig 3 policy). The prune
// horizon must track the widest window ever queried.
func TestLongWindowSurvivesPruning(t *testing.T) {
	const longWindow = 8 * time.Second
	clk := vtime.New()
	dev := gpu.New(gpu.DefaultSpec(), clk)

	// A tenant occupies the device for the first 3.5 virtual seconds.
	dev.OccupySpan("tenant", 0, 3500*time.Millisecond)
	clk.AdvanceTo(3500 * time.Millisecond)

	if u := DeviceGetUtilizationRates(dev); u.GPU != 100 {
		t.Fatalf("short-window GPU util = %d, want 100 while tenant is busy", u.GPU)
	}
	// This long-window query must arm span retention for its width.
	if u := DeviceGetUtilizationRatesWindow(dev, longWindow); u.GPU != 100 {
		t.Fatalf("long-window GPU util = %d, want 100 (busy since boot)", u.GPU)
	}

	// Jump well past the fixed 5s history and record fresh activity; the
	// prune this triggers used to drop the 3.5s tenant span.
	clk.AdvanceTo(9050 * time.Millisecond)
	dev.OccupySpan("tenant", 9000*time.Millisecond, 9050*time.Millisecond)

	// Trailing 8s window [1.05s, 9.05s): busy (3.5-1.05)+(9.05-9.0) = 2.5s
	// of 8s = 31%. Pre-fix the early span is pruned and this reads 1.
	if u := DeviceGetUtilizationRatesWindow(dev, longWindow); u.GPU != 31 {
		t.Fatalf("long-window GPU util after prune = %d, want 31", u.GPU)
	}
	// The short window still sees only the fresh span: fully busy.
	if u := DeviceGetUtilizationRates(dev); u.GPU != 100 {
		t.Fatalf("short-window GPU util after prune = %d, want 100", u.GPU)
	}
}

// TestAggregateUtilizationRates pins the pool-wide fold: mean GPU busy
// percentage, memory as total used over total capacity.
func TestAggregateUtilizationRates(t *testing.T) {
	clk := vtime.New()
	spec := gpu.DefaultSpec()
	spec.MemoryBytes = 1000
	devs := []*gpu.Device{
		gpu.NewIndexed(spec, clk, 0),
		gpu.NewIndexed(spec, clk, 1),
		gpu.NewIndexed(spec, clk, 2),
		gpu.NewIndexed(spec, clk, 3),
	}
	clk.Advance(time.Second)
	devs[0].OccupySpan("tenant", time.Second-SamplingWindow, time.Second)
	if _, err := devs[1].Alloc(500); err != nil {
		t.Fatal(err)
	}
	u := AggregateUtilizationRates(devs)
	if u.GPU != 25 {
		t.Fatalf("aggregate GPU util = %d, want 25 (one of four devices busy)", u.GPU)
	}
	if u.Memory != 13 {
		t.Fatalf("aggregate Memory util = %d, want 13 (500 of 4000 bytes)", u.Memory)
	}
	if got := AggregateUtilizationRates(nil); got != (Utilization{}) {
		t.Fatalf("aggregate over empty pool = %+v, want zero", got)
	}
}

func TestClientUtilizationSplit(t *testing.T) {
	clk := vtime.New()
	dev := gpu.New(gpu.DefaultSpec(), clk)
	clk.Advance(time.Second)
	dev.Execute("kernel-ml", SamplingWindow/4, nil)
	dev.Execute("user-hash", SamplingWindow/4, nil)
	clk.Advance(SamplingWindow / 2)
	ml := DeviceGetClientUtilization(dev, "kernel-ml")
	hash := DeviceGetClientUtilization(dev, "user-hash")
	if ml < 15 || ml > 35 {
		t.Fatalf("kernel-ml util = %d, want ~25", ml)
	}
	if hash < 15 || hash > 35 {
		t.Fatalf("user-hash util = %d, want ~25", hash)
	}
}
