package nvml

import (
	"testing"
	"time"

	"lakego/internal/gpu"
	"lakego/internal/vtime"
)

func TestIdleDeviceReportsZero(t *testing.T) {
	dev := gpu.New(gpu.DefaultSpec(), vtime.New())
	dev.Clock().Advance(time.Second)
	u := DeviceGetUtilizationRates(dev)
	if u.GPU != 0 {
		t.Fatalf("GPU util = %d, want 0", u.GPU)
	}
	if u.Memory != 0 {
		t.Fatalf("Memory util = %d, want 0", u.Memory)
	}
}

func TestBusyDeviceReportsHighUtilization(t *testing.T) {
	clk := vtime.New()
	dev := gpu.New(gpu.DefaultSpec(), clk)
	clk.Advance(time.Second) // establish history
	dev.Execute("work", SamplingWindow, nil)
	u := DeviceGetUtilizationRates(dev)
	if u.GPU < 95 {
		t.Fatalf("GPU util = %d, want >=95 after saturating the window", u.GPU)
	}
}

func TestPartialUtilization(t *testing.T) {
	clk := vtime.New()
	dev := gpu.New(gpu.DefaultSpec(), clk)
	clk.Advance(time.Second)
	dev.Execute("work", SamplingWindow/2, nil)
	clk.Advance(SamplingWindow / 2)
	u := DeviceGetUtilizationRates(dev)
	if u.GPU < 40 || u.GPU > 60 {
		t.Fatalf("GPU util = %d, want ~50", u.GPU)
	}
}

func TestMemoryUtilizationTracksAllocations(t *testing.T) {
	spec := gpu.DefaultSpec()
	spec.MemoryBytes = 1000
	dev := gpu.New(spec, vtime.New())
	if _, err := dev.Alloc(500); err != nil {
		t.Fatal(err)
	}
	u := DeviceGetUtilizationRates(dev)
	if u.Memory != 50 {
		t.Fatalf("Memory util = %d, want 50", u.Memory)
	}
}

func TestClientUtilizationSplit(t *testing.T) {
	clk := vtime.New()
	dev := gpu.New(gpu.DefaultSpec(), clk)
	clk.Advance(time.Second)
	dev.Execute("kernel-ml", SamplingWindow/4, nil)
	dev.Execute("user-hash", SamplingWindow/4, nil)
	clk.Advance(SamplingWindow / 2)
	ml := DeviceGetClientUtilization(dev, "kernel-ml")
	hash := DeviceGetClientUtilization(dev, "user-hash")
	if ml < 15 || ml > 35 {
		t.Fatalf("kernel-ml util = %d, want ~25", ml)
	}
	if hash < 15 || hash > 35 {
		t.Fatalf("user-hash util = %d, want ~25", hash)
	}
}
