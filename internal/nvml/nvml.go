// Package nvml provides the NVML-style device utilization query that LAKE's
// contention policies sample (§4.3: "A policy's toolset includes any OS- or
// vendor-provided utilities (e.g. NVIDIA's NVML API, supported by LAKE)").
package nvml

import (
	"time"

	"lakego/internal/gpu"
)

// Utilization mirrors nvmlUtilization_t: percentages over the sampling
// window.
type Utilization struct {
	// GPU is the percentage of time one or more kernels executed.
	GPU int
	// Memory is the percentage of time device memory was being read or
	// written; the model approximates it from allocation pressure.
	Memory int
}

// SamplingWindow matches NVML's documented utilization sampling period
// range (roughly 50ms-1s depending on device); policies should treat
// readings as smoothed, which is why the Fig 3 policy applies its own
// moving average on top.
const SamplingWindow = 50 * time.Millisecond

// DeviceGetUtilizationRates reports device utilization over the trailing
// sampling window, like nvmlDeviceGetUtilizationRates.
func DeviceGetUtilizationRates(dev *gpu.Device) Utilization {
	u := dev.Utilization(SamplingWindow, "")
	memFrac := float64(dev.MemUsed()) / float64(dev.Spec().MemoryBytes)
	return Utilization{
		GPU:    int(u*100 + 0.5),
		Memory: int(memFrac*100 + 0.5),
	}
}

// DeviceGetClientUtilization reports utilization attributable to a single
// context tag. The paper's adaptive policy (Fig 13) uses the aggregate
// number; experiments use this to split kernel vs user shares (Fig 15).
func DeviceGetClientUtilization(dev *gpu.Device, client string) int {
	return int(dev.Utilization(SamplingWindow, client)*100 + 0.5)
}
