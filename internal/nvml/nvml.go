// Package nvml provides the NVML-style device utilization query that LAKE's
// contention policies sample (§4.3: "A policy's toolset includes any OS- or
// vendor-provided utilities (e.g. NVIDIA's NVML API, supported by LAKE)").
package nvml

import (
	"time"

	"lakego/internal/gpu"
)

// Utilization mirrors nvmlUtilization_t: percentages over the sampling
// window.
type Utilization struct {
	// GPU is the percentage of time one or more kernels executed.
	GPU int
	// Memory is the percentage of time device memory was being read or
	// written; the model approximates it from allocation pressure.
	Memory int
}

// SamplingWindow matches NVML's documented utilization sampling period
// range (roughly 50ms-1s depending on device); policies should treat
// readings as smoothed, which is why the Fig 3 policy applies its own
// moving average on top.
const SamplingWindow = 50 * time.Millisecond

// DeviceGetUtilizationRates reports device utilization over the trailing
// sampling window, like nvmlDeviceGetUtilizationRates.
func DeviceGetUtilizationRates(dev *gpu.Device) Utilization {
	return DeviceGetUtilizationRatesWindow(dev, SamplingWindow)
}

// DeviceGetUtilizationRatesWindow is DeviceGetUtilizationRates over an
// explicit trailing window. Long-horizon experiments (and the pool's
// placement policies) sample wider windows than NVML's default period.
func DeviceGetUtilizationRatesWindow(dev *gpu.Device, window time.Duration) Utilization {
	u := dev.Utilization(window, "")
	memFrac := float64(dev.MemUsed()) / float64(dev.Spec().MemoryBytes)
	return Utilization{
		GPU:    int(u*100 + 0.5),
		Memory: int(memFrac*100 + 0.5),
	}
}

// AggregateUtilizationRates folds per-device readings into one pool-wide
// figure: GPU is the mean busy percentage across devices (an idle device
// pulls the aggregate down, signalling spare capacity), Memory is total
// used over total capacity.
func AggregateUtilizationRates(devs []*gpu.Device) Utilization {
	if len(devs) == 0 {
		return Utilization{}
	}
	var gpuSum float64
	var used, capacity int64
	for _, dev := range devs {
		gpuSum += dev.Utilization(SamplingWindow, "")
		used += dev.MemUsed()
		capacity += dev.Spec().MemoryBytes
	}
	var memFrac float64
	if capacity > 0 {
		memFrac = float64(used) / float64(capacity)
	}
	return Utilization{
		GPU:    int(gpuSum/float64(len(devs))*100 + 0.5),
		Memory: int(memFrac*100 + 0.5),
	}
}

// DeviceGetClientUtilization reports utilization attributable to a single
// context tag. The paper's adaptive policy (Fig 13) uses the aggregate
// number; experiments use this to split kernel vs user shares (Fig 15).
func DeviceGetClientUtilization(dev *gpu.Device, client string) int {
	return int(dev.Utilization(SamplingWindow, client)*100 + 0.5)
}
