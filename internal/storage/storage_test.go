package storage

import (
	"testing"
	"testing/quick"
	"time"

	"lakego/internal/trace"
)

func dev(seed int64) *Device { return NewDevice(DefaultConfig("nvme0", seed)) }

func TestSubmitBasics(t *testing.T) {
	d := dev(1)
	c := d.Submit(0, 4096, false)
	if c.Latency <= 0 || c.FinishAt != c.Latency {
		t.Fatalf("completion = %+v", c)
	}
	if d.Submitted() != 1 {
		t.Fatalf("Submitted = %d", d.Submitted())
	}
}

func TestUnloadedReadsAreFast(t *testing.T) {
	// Modern NVMes under light load show low, stable read latency (§7.1).
	d := dev(2)
	var sum time.Duration
	const n = 200
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		c := d.Submit(now, 16<<10, false)
		sum += c.Latency
		now = c.FinishAt + time.Millisecond // fully drain between I/Os
	}
	avg := sum / n
	if avg > 150*time.Microsecond {
		t.Fatalf("unloaded avg read latency = %v, want < 150µs", avg)
	}
}

func TestOverloadCausesSlowIOs(t *testing.T) {
	d := dev(3)
	// Slam the device: 5000 reads at 2µs spacing.
	slow := 0
	for i := 0; i < 5000; i++ {
		c := d.Submit(time.Duration(i)*2*time.Microsecond, 64<<10, false)
		if c.Slow {
			slow++
		}
	}
	if slow == 0 {
		t.Fatal("no GC stalls under overload")
	}
	if d.SlowCount() != int64(slow) {
		t.Fatalf("SlowCount = %d, want %d", d.SlowCount(), slow)
	}
}

func TestQueueDepthDrivesLatencyVariance(t *testing.T) {
	// Average latency under overload must exceed unloaded latency by a
	// large factor — the variance LinnOS exploits.
	unloaded := dev(4)
	loaded := dev(4)
	var u, l time.Duration
	const n = 2000
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		c := unloaded.Submit(now, 32<<10, false)
		u += c.Latency
		now = c.FinishAt + 500*time.Microsecond
	}
	for i := 0; i < n; i++ {
		l += loaded.Submit(time.Duration(i)*3*time.Microsecond, 32<<10, false).Latency
	}
	if l < 4*u {
		t.Fatalf("loaded latency sum %v not >> unloaded %v", l, u)
	}
}

func TestPendingTracksInflight(t *testing.T) {
	d := dev(5)
	for i := 0; i < 10; i++ {
		d.Submit(0, 1<<20, false)
	}
	if got := d.Pending(0); got != 10 {
		t.Fatalf("Pending(0) = %d, want 10", got)
	}
	if got := d.Pending(time.Hour); got != 0 {
		t.Fatalf("Pending(1h) = %d, want 0", got)
	}
}

func TestRecentLatenciesNewestFirst(t *testing.T) {
	d := dev(6)
	var lats []time.Duration
	now := time.Duration(0)
	for i := 0; i < 6; i++ {
		c := d.Submit(now, 4096, false)
		lats = append(lats, c.Latency)
		now = c.FinishAt
	}
	recent := d.RecentLatencies()
	if len(recent) != RecentWindow {
		t.Fatalf("recent = %d entries, want %d", len(recent), RecentWindow)
	}
	for i := 0; i < RecentWindow; i++ {
		if recent[i] != lats[len(lats)-1-i] {
			t.Fatalf("recent[%d] = %v, want %v", i, recent[i], lats[len(lats)-1-i])
		}
	}
}

func TestWritesCheaperThanReadsUnloaded(t *testing.T) {
	dr, dw := dev(7), dev(7)
	var r, w time.Duration
	now := time.Duration(0)
	for i := 0; i < 500; i++ {
		c := dr.Submit(now, 8<<10, false)
		r += c.Latency
		now = c.FinishAt + time.Millisecond
	}
	now = 0
	for i := 0; i < 500; i++ {
		c := dw.Submit(now, 8<<10, true)
		w += c.Latency
		now = c.FinishAt + time.Millisecond
	}
	if w >= r {
		t.Fatalf("buffered writes (%v) not cheaper than reads (%v)", w, r)
	}
}

func TestZeroSizeDefaults(t *testing.T) {
	d := dev(8)
	c := d.Submit(0, 0, false)
	if c.Latency <= 0 {
		t.Fatal("zero-size I/O got zero latency")
	}
}

func TestArrayRequiresTwoDevices(t *testing.T) {
	if _, err := NewArray(dev(1)); err == nil {
		t.Fatal("single-device array accepted")
	}
	a, err := NewArray(dev(1), dev(2), dev(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Devices()) != 3 {
		t.Fatalf("Devices = %d", len(a.Devices()))
	}
}

func TestReissueTargetSkipsSource(t *testing.T) {
	d1 := NewDevice(DefaultConfig("nvme0", 1))
	d2 := NewDevice(DefaultConfig("nvme1", 2))
	d3 := NewDevice(DefaultConfig("nvme2", 3))
	a, _ := NewArray(d1, d2, d3)
	for i := 0; i < 20; i++ {
		if got := a.ReissueTarget(d1); got == d1 {
			t.Fatal("reissue target equals excluded device")
		}
	}
	// Round robin visits both alternatives.
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		seen[a.ReissueTarget(d1).Name()] = true
	}
	if len(seen) != 2 {
		t.Fatalf("round robin visited %d targets, want 2", len(seen))
	}
}

func TestReplayRealTraceProducesSaneLatencies(t *testing.T) {
	d := dev(9)
	reqs := trace.Azure().Generate(11, 3000)
	var total time.Duration
	reads := 0
	for _, r := range reqs {
		c := d.Submit(r.Arrival, r.Size, r.Write)
		if !r.Write {
			total += c.Latency
			reads++
		}
	}
	avg := total / time.Duration(reads)
	if avg < 10*time.Microsecond || avg > 5*time.Millisecond {
		t.Fatalf("Azure replay avg read latency = %v, outside sane range", avg)
	}
}

// Property: latency is always positive and completion never precedes
// submission.
func TestQuickLatencyPositive(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		d := dev(seed)
		now := time.Duration(0)
		for _, s := range sizes {
			c := d.Submit(now, int64(s)*512, s%3 == 0)
			if c.Latency <= 0 || c.FinishAt < now {
				return false
			}
			now += time.Duration(s) * time.Microsecond / 4
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
