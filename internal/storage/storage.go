// Package storage models the NVMe devices of the I/O latency prediction
// study (§7.1). The testbed's three Samsung 980 Pro drives are replaced by
// a queueing model that reproduces the properties LinnOS-style prediction
// depends on: internal channel parallelism, a fast DRAM cache that absorbs
// small reads under light load ("Larger caches absorb much more of the
// load"), bandwidth-proportional transfer time, and garbage-collection
// pauses whose likelihood grows with queue depth — the source of the
// latency variance that makes per-I/O fast/slow classification useful.
package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// DeviceConfig parameterizes one simulated NVMe device.
type DeviceConfig struct {
	// Name identifies the device (e.g. "nvme0").
	Name string
	// Channels is the internal parallelism (concurrent flash operations).
	Channels int
	// ReadBase / WriteBase are unloaded media access latencies.
	ReadBase, WriteBase time.Duration
	// BytesPerSec is per-channel transfer bandwidth.
	BytesPerSec float64
	// CacheLatency is the DRAM cache hit service time.
	CacheLatency time.Duration
	// CacheHitProb is the read cache hit probability at queue depth zero;
	// effective probability decays as the queue builds.
	CacheHitProb float64
	// GCThreshold is the queue depth beyond which garbage-collection
	// stalls become likely.
	GCThreshold int
	// GCProb is the stall probability per I/O once past the threshold
	// (outside the cooldown window).
	GCProb float64
	// GCPause is the base stall duration; actual stalls last between one
	// and two pauses.
	GCPause time.Duration
	// GCCooldown is the minimum gap between stalls. It bounds the GC duty
	// cycle, preventing the queue->stall->queue feedback loop from
	// melting the device: real drives amortize GC over time.
	GCCooldown time.Duration
	// GCWriteBudget triggers a stall after this many bytes written
	// (write-amplification-driven garbage collection). Because the
	// trigger depends only on the trace's cumulative write volume,
	// devices replaying the same trace stall in lockstep — reissuing to
	// a sibling lands on an equally stalled device — while devices
	// running dissimilar traces stall at uncorrelated times, which is
	// exactly when rejecting a slow I/O pays off (§7.1's mixed
	// workloads).
	GCWriteBudget int64
	// Seed drives the device's deterministic randomness.
	Seed int64
}

// DefaultConfig models a 980 Pro-class drive as seen by the study.
func DefaultConfig(name string, seed int64) DeviceConfig {
	return DeviceConfig{
		Name:          name,
		Channels:      8,
		ReadBase:      80 * time.Microsecond,
		WriteBase:     22 * time.Microsecond,
		BytesPerSec:   1.0e9,
		CacheLatency:  12 * time.Microsecond,
		CacheHitProb:  0.55,
		GCThreshold:   12,
		GCProb:        0.15,
		GCPause:       1500 * time.Microsecond,
		GCCooldown:    20 * time.Millisecond,
		GCWriteBudget: 8 << 20,
		Seed:          seed,
	}
}

// Completion describes one submitted I/O's outcome.
type Completion struct {
	// FinishAt is the absolute completion time.
	FinishAt time.Duration
	// Latency is FinishAt minus submission time.
	Latency time.Duration
	// Slow flags I/Os that hit a GC stall.
	Slow bool
}

// Device is one simulated NVMe drive. Safe for concurrent use, though the
// replay engines drive it from one goroutine for determinism.
type Device struct {
	cfg DeviceConfig

	mu       sync.Mutex
	rng      *rand.Rand
	channels []time.Duration // per-channel next-free time
	inflight []time.Duration // completion times, sorted
	recent   []time.Duration // most recent completion latencies, newest last

	gcUntil      time.Duration // device stalled until this instant
	gcCooldown   time.Duration // no new stall before this instant
	bytesSinceGC int64         // written bytes since the last stall
	gcTriggers   int64         // stalls so far (drives deterministic pauses)

	submitted int64
	slowCount int64
}

// RecentWindow is how many completed latencies the device exposes for
// feature capture (LinnOS uses the completion latency of a fixed number of
// previous I/Os).
const RecentWindow = 4

// NewDevice creates a device from cfg.
func NewDevice(cfg DeviceConfig) *Device {
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	return &Device{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		channels: make([]time.Duration, cfg.Channels),
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// Config returns the device's parameters.
func (d *Device) Config() DeviceConfig { return d.cfg }

// Submitted returns the number of I/Os accepted.
func (d *Device) Submitted() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.submitted
}

// SlowCount returns the number of I/Os that hit a GC stall.
func (d *Device) SlowCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.slowCount
}

func (d *Device) pruneLocked(now time.Duration) {
	i := sort.Search(len(d.inflight), func(i int) bool { return d.inflight[i] > now })
	if i > 0 {
		d.inflight = append(d.inflight[:0], d.inflight[i:]...)
	}
}

// Pending returns the number of in-flight I/Os at time now — the first
// LinnOS feature.
func (d *Device) Pending(now time.Duration) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pruneLocked(now)
	return len(d.inflight)
}

// RecentLatencies returns up to RecentWindow most recent completion
// latencies, newest first — the second LinnOS feature.
func (d *Device) RecentLatencies() []time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]time.Duration, len(d.recent))
	for i := range d.recent {
		out[i] = d.recent[len(d.recent)-1-i]
	}
	return out
}

// Submit issues an I/O of size bytes at time now and returns its modeled
// completion.
func (d *Device) Submit(now time.Duration, size int64, write bool) Completion {
	if size <= 0 {
		size = 4096
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pruneLocked(now)
	queue := len(d.inflight)
	d.submitted++

	if write {
		d.bytesSinceGC += size
	}
	// Accumulated writes or queue pressure kick off an internal
	// garbage-collection stall that freezes every channel. The cooldown
	// bounds the duty cycle.
	writeGC := d.cfg.GCWriteBudget > 0 && d.bytesSinceGC >= d.cfg.GCWriteBudget
	queueGC := queue > d.cfg.GCThreshold && d.rng.Float64() < d.cfg.GCProb
	if (writeGC || queueGC) && now >= d.gcCooldown {
		// Pause length is a deterministic function of the trigger index,
		// not the per-device RNG: devices replaying identical traces then
		// stall over identical windows (see GCWriteBudget).
		d.gcTriggers++
		jitter := time.Duration((d.gcTriggers * 2654435761) % int64(d.cfg.GCPause))
		d.gcUntil = now + d.cfg.GCPause + jitter
		d.gcCooldown = d.gcUntil + d.cfg.GCCooldown
		d.bytesSinceGC = 0
	}

	// Earliest-free channel.
	ch := 0
	for i := 1; i < len(d.channels); i++ {
		if d.channels[i] < d.channels[ch] {
			ch = i
		}
	}
	start := now
	if d.channels[ch] > start {
		start = d.channels[ch]
	}
	slow := false
	if d.gcUntil > start {
		start = d.gcUntil
		slow = true
		d.slowCount++
	}

	transfer := time.Duration(float64(size) / d.cfg.BytesPerSec * float64(time.Second))
	var service time.Duration
	switch {
	case !write && d.rng.Float64() < d.cfg.CacheHitProb/(1+float64(queue)/8):
		// DRAM cache absorbs the read; bandwidth still applies.
		service = d.cfg.CacheLatency + transfer/4
	case write:
		service = d.cfg.WriteBase + transfer
	default:
		service = d.cfg.ReadBase + transfer
	}

	finish := start + service
	d.channels[ch] = finish
	// Insert into sorted inflight list.
	i := sort.Search(len(d.inflight), func(i int) bool { return d.inflight[i] > finish })
	d.inflight = append(d.inflight, 0)
	copy(d.inflight[i+1:], d.inflight[i:])
	d.inflight[i] = finish

	lat := finish - now
	d.recent = append(d.recent, lat)
	if len(d.recent) > RecentWindow {
		d.recent = d.recent[1:]
	}
	return Completion{FinishAt: finish, Latency: lat, Slow: slow}
}

// Array is a set of devices with round-robin reissue target selection, the
// redundant-storage setting in which rejecting a slow I/O and reissuing it
// to a different device pays off (§5.5, §7.1).
type Array struct {
	devices []*Device
	next    int
	mu      sync.Mutex
}

// NewArray groups devices; it requires at least two (reissue needs a
// target).
func NewArray(devices ...*Device) (*Array, error) {
	if len(devices) < 2 {
		return nil, fmt.Errorf("storage: array needs >= 2 devices, got %d", len(devices))
	}
	return &Array{devices: devices}, nil
}

// Devices returns the member devices.
func (a *Array) Devices() []*Device { return a.devices }

// ReissueTarget picks the next round-robin device different from exclude.
func (a *Array) ReissueTarget(exclude *Device) *Device {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := 0; i < len(a.devices); i++ {
		d := a.devices[a.next%len(a.devices)]
		a.next++
		if d != exclude {
			return d
		}
	}
	return a.devices[0]
}
