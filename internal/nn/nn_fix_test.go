package nn

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// bombBlob builds the 17-byte crafted blob that made the pre-fix Unmarshal
// allocate a 4 TiB weight slice: a valid magic and layer count followed by a
// single layer declaring 2^20 x 2^20 weights with no weight bytes present.
func bombBlob() []byte {
	b := binary.LittleEndian.AppendUint32(nil, marshalMagic)
	b = binary.LittleEndian.AppendUint32(b, 1)     // one layer
	b = binary.LittleEndian.AppendUint32(b, 1<<20) // in
	b = binary.LittleEndian.AppendUint32(b, 1<<20) // out
	return append(b, byte(ReLU))
}

// TestUnmarshalAllocationBomb is the regression test for the seed bug: the
// pre-fix decoder called make([]float32, in*out) before the remaining-bytes
// check, so this 17-byte blob demanded a 4 TiB allocation (a runtime panic
// or OOM kill). Post-fix it is rejected before any weight allocation.
func TestUnmarshalAllocationBomb(t *testing.T) {
	blob := bombBlob()
	if len(blob) != 17 {
		t.Fatalf("crafted blob is %d bytes, want 17", len(blob))
	}
	if _, err := Unmarshal(blob); err == nil {
		t.Fatal("allocation-bomb blob accepted")
	}
	// The shape checks must also hold per-layer deeper into a blob: a valid
	// first layer followed by a bomb layer.
	good := New(1, 2, 2).Marshal()
	multi := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(multi[4:], 2) // claim a second layer
	multi = append(multi, bombBlob()[8:]...)    // header of the 2^20 x 2^20 layer
	if _, err := Unmarshal(multi); err == nil {
		t.Fatal("allocation-bomb second layer accepted")
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	if got := Softmax(nil); len(got) != 0 {
		t.Fatalf("Softmax(nil) = %v, want empty", got)
	}
	if got := Softmax([]float32{}); len(got) != 0 {
		t.Fatalf("Softmax(empty) = %v, want empty", got)
	}
}

func TestPredictEmptyOutput(t *testing.T) {
	// A degenerate hand-built network with an empty output layer: Predict
	// must degrade to class 0, not index logits[0].
	n := &Network{Layers: []*Layer{{In: 2, Out: 0, W: nil, B: nil, Act: Linear}}}
	if got := n.Predict([]float32{1, 2}); got != 0 {
		t.Fatalf("Predict on empty output = %d, want 0", got)
	}
}

func TestClone(t *testing.T) {
	n := New(5, 3, 8, 2)
	c := n.Clone()
	if !bytes.Equal(n.Marshal(), c.Marshal()) {
		t.Fatal("clone is not bit-identical")
	}
	c.Layers[0].W[0] += 1
	if n.Layers[0].W[0] == c.Layers[0].W[0] {
		t.Fatal("clone shares weight storage with the original")
	}
}

// TestTrainBatchScratchMatchesTrainBatch pins the scratch path to the
// allocating path bit-for-bit: the lifecycle trainer runs on scratch, and a
// numeric divergence would silently change every retrained model.
func TestTrainBatchScratchMatchesTrainBatch(t *testing.T) {
	a, b := New(11, 4, 8, 2), New(11, 4, 8, 2)
	s := NewScratch(b)
	xs := [][]float32{{1, 0, -1, 0.5}, {0, 1, 0.25, -1}, {0.5, 0.5, 0.5, 0.5}}
	labels := []int{0, 1, 0}
	for step := 0; step < 50; step++ {
		la, err := a.TrainBatch(xs, labels, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := b.TrainBatchScratch(s, xs, labels, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if la != lb {
			t.Fatalf("step %d: loss %v (alloc) vs %v (scratch)", step, la, lb)
		}
	}
	if !bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Fatal("scratch training diverged from allocating training")
	}
}

func TestTrainBatchScratchShapeMismatch(t *testing.T) {
	n := New(1, 4, 2)
	s := NewScratch(New(1, 4, 8, 2))
	if _, err := n.TrainBatchScratch(s, [][]float32{{1, 2, 3, 4}}, []int{0}, 0.1); err == nil {
		t.Fatal("mismatched scratch accepted")
	}
}

// TestTrainBatchScratchNoGarbage pins the online trainer's premise: steady
// state SGD steps allocate nothing.
func TestTrainBatchScratchNoGarbage(t *testing.T) {
	n := New(3, 4, 8, 2)
	s := NewScratch(n)
	xs := [][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}}
	labels := []int{0, 1}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := n.TrainBatchScratch(s, xs, labels, 0.05); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("TrainBatchScratch allocates %v objects/step, want 0", allocs)
	}
}

// TestMarshalGolden pins the serialized blob format: registry-persisted
// model versions written by older builds must keep loading, so any change
// to the wire layout has to be a deliberate, versioned one (add a new magic,
// keep decoding this).
func TestMarshalGolden(t *testing.T) {
	n := New(42, 3, 4, 2)
	blob := n.Marshal()
	path := filepath.Join("testdata", "marshal_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("Marshal blob format drifted from committed golden (%d vs %d bytes); "+
			"if the change is deliberate, version the format and update the golden with -update",
			len(blob), len(want))
	}
	// The golden must also round-trip through the current decoder.
	m, err := Unmarshal(want)
	if err != nil {
		t.Fatalf("golden blob no longer decodes: %v", err)
	}
	if !bytes.Equal(m.Marshal(), want) {
		t.Fatal("golden blob round trip is not a fixed point")
	}
}

// FuzzNNUnmarshal is the regression fuzz target for the allocation bomb:
// arbitrary input must never panic or demand absurd allocations, and any
// blob that decodes must be a marshal->unmarshal fixed point.
func FuzzNNUnmarshal(f *testing.F) {
	f.Add(New(1, 4, 2).Marshal())
	f.Add(New(2, 3, 4, 2).Marshal())
	f.Add(bombBlob())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Unmarshal(data)
		if err != nil {
			return
		}
		blob := net.Marshal()
		if !bytes.Equal(blob, data) {
			t.Fatalf("decoded blob is not a marshal fixed point: %d in, %d out", len(data), len(blob))
		}
		again, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if len(again.Layers) != len(net.Layers) {
			t.Fatal("layer count unstable")
		}
	})
}
