// Package nn implements the dense feed-forward neural networks used by the
// paper's ML-assisted subsystems: LinnOS's I/O latency classifier ("two
// layers with 256 and 2 neurons", §7.1, plus the +1/+2 augmented variants),
// MLLB's load-balancing perceptron (§7.3) and KML's readahead classifier
// (§7.4).
//
// Networks run real float32 arithmetic — forward inference and SGD training
// with softmax cross-entropy — so the end-to-end experiments classify with a
// genuinely trained model. The package also provides serialization (for the
// feature registry's model lifecycle) and FLOP accounting (for the GPU cost
// model).
package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation uint8

// Supported activations.
const (
	Linear Activation = iota
	ReLU
)

// Layer is one dense layer: y = act(W*x + b) with W stored row-major
// (Out rows of In columns).
type Layer struct {
	In, Out int
	W       []float32
	B       []float32
	Act     Activation
}

// Network is a sequence of dense layers.
type Network struct {
	Layers []*Layer
}

// New builds a network with the given layer sizes (sizes[0] = input width),
// ReLU on hidden layers and a linear output layer, with He-style random
// initialization from seed (deterministic for reproducibility).
func New(seed int64, sizes ...int) *Network {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	rng := rand.New(rand.NewSource(seed))
	net := &Network{}
	for i := 0; i+1 < len(sizes); i++ {
		in, out := sizes[i], sizes[i+1]
		if in <= 0 || out <= 0 {
			panic(fmt.Sprintf("nn: invalid layer size %dx%d", in, out))
		}
		l := &Layer{In: in, Out: out, W: make([]float32, in*out), B: make([]float32, out), Act: ReLU}
		if i+2 == len(sizes) {
			l.Act = Linear
		}
		scale := float32(math.Sqrt(2 / float64(in)))
		for j := range l.W {
			l.W[j] = float32(rng.NormFloat64()) * scale
		}
		net.Layers = append(net.Layers, l)
	}
	return net
}

// InputSize returns the expected input width.
func (n *Network) InputSize() int { return n.Layers[0].In }

// OutputSize returns the output width.
func (n *Network) OutputSize() int { return n.Layers[len(n.Layers)-1].Out }

// Sizes returns the layer widths including the input.
func (n *Network) Sizes() []int {
	s := []int{n.InputSize()}
	for _, l := range n.Layers {
		s = append(s, l.Out)
	}
	return s
}

// SameShape reports whether two networks have identical layer geometry.
// Allocation-free, so hot-swap validation can run it on every flip.
func SameShape(a, b *Network) bool {
	if len(a.Layers) != len(b.Layers) || a.InputSize() != b.InputSize() {
		return false
	}
	for i := range a.Layers {
		if a.Layers[i].Out != b.Layers[i].Out {
			return false
		}
	}
	return true
}

// Flops returns the multiply-accumulate FLOP count of one forward pass
// (2 FLOPs per weight), the quantity the GPU model converts to time.
func (n *Network) Flops() float64 {
	var f float64
	for _, l := range n.Layers {
		f += 2 * float64(l.In) * float64(l.Out)
	}
	return f
}

func (l *Layer) forward(x, out []float32) {
	for o := 0; o < l.Out; o++ {
		sum := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, w := range row {
			sum += w * x[i]
		}
		if l.Act == ReLU && sum < 0 {
			sum = 0
		}
		out[o] = sum
	}
}

// Forward runs one inference, returning the output activations (logits for
// classifier networks).
func (n *Network) Forward(x []float32) []float32 {
	if len(x) != n.InputSize() {
		panic(fmt.Sprintf("nn: input width %d, want %d", len(x), n.InputSize()))
	}
	cur := x
	for _, l := range n.Layers {
		next := make([]float32, l.Out)
		l.forward(cur, next)
		cur = next
	}
	return cur
}

// ForwardBatch runs inference over a batch.
func (n *Network) ForwardBatch(xs [][]float32) [][]float32 {
	out := make([][]float32, len(xs))
	for i, x := range xs {
		out[i] = n.Forward(x)
	}
	return out
}

// Predict returns the argmax class for x, or 0 when the output layer is
// empty — lifecycle shadow scoring calls this on registry-loaded models, so
// a degenerate network must degrade to class 0 instead of panicking.
func (n *Network) Predict(x []float32) int {
	logits := n.Forward(x)
	if len(logits) == 0 {
		return 0
	}
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// Softmax converts logits to probabilities (numerically stabilized). Empty
// input yields an empty distribution rather than a panic.
func Softmax(logits []float32) []float32 {
	out := make([]float32, len(logits))
	softmaxInto(out, logits)
	return out
}

// softmaxInto is the allocation-free Softmax used by the training scratch;
// dst must be len(logits).
func softmaxInto(dst, logits []float32) {
	if len(logits) == 0 {
		return
	}
	maxv := logits[0]
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for i, v := range logits {
		e := float32(math.Exp(float64(v - maxv)))
		dst[i] = e
		sum += e
	}
	for i := range dst[:len(logits)] {
		dst[i] /= sum
	}
}

// Scratch holds every buffer one TrainBatch step needs — gradient
// accumulators, retained activations, the softmax distribution and the
// per-layer backprop deltas — so an online trainer can run SGD steps
// indefinitely without per-step garbage. A Scratch is shaped for one
// network architecture and is reusable across steps (each step zeroes the
// accumulators itself); it is not safe for concurrent use.
type Scratch struct {
	sizes  []int
	gW, gB [][]float32
	acts   [][]float32 // acts[i+1] is layer i's retained output
	probs  []float32
	deltas [][]float32 // deltas[i] is the gradient w.r.t. layer i's output
}

// NewScratch allocates training scratch shaped for n's architecture.
func NewScratch(n *Network) *Scratch {
	nl := len(n.Layers)
	s := &Scratch{
		sizes:  n.Sizes(),
		gW:     make([][]float32, nl),
		gB:     make([][]float32, nl),
		acts:   make([][]float32, nl+1),
		deltas: make([][]float32, nl),
	}
	for i, l := range n.Layers {
		s.gW[i] = make([]float32, len(l.W))
		s.gB[i] = make([]float32, len(l.B))
		s.acts[i+1] = make([]float32, l.Out)
		s.deltas[i] = make([]float32, l.Out)
	}
	s.probs = make([]float32, n.OutputSize())
	return s
}

// fits reports whether the scratch matches n's architecture. Allocation
// free: it runs on every online training step.
func (s *Scratch) fits(n *Network) bool {
	if len(s.sizes) != len(n.Layers)+1 {
		return false
	}
	for i, l := range n.Layers {
		if s.sizes[i] != l.In || s.sizes[i+1] != l.Out {
			return false
		}
	}
	return true
}

// TrainBatch performs one SGD step on a batch with integer class labels,
// minimizing softmax cross-entropy, and returns the mean loss.
func (n *Network) TrainBatch(xs [][]float32, labels []int, lr float32) (float32, error) {
	return n.TrainBatchScratch(NewScratch(n), xs, labels, lr)
}

// TrainBatchScratch is TrainBatch on caller-owned scratch: identical
// arithmetic (bit-for-bit — the lifecycle determinism test pins this), zero
// per-step allocation. The scratch must come from NewScratch on a network
// of the same architecture.
func (n *Network) TrainBatchScratch(s *Scratch, xs [][]float32, labels []int, lr float32) (float32, error) {
	if len(xs) != len(labels) {
		return 0, fmt.Errorf("nn: %d inputs but %d labels", len(xs), len(labels))
	}
	if len(xs) == 0 {
		return 0, nil
	}
	if !s.fits(n) {
		return 0, fmt.Errorf("nn: scratch shaped %v, network is %v", s.sizes, n.Sizes())
	}
	nl := len(n.Layers)
	for i := range n.Layers {
		clear(s.gW[i])
		clear(s.gB[i])
	}
	var loss float64
	for smp, x := range xs {
		label := labels[smp]
		if label < 0 || label >= n.OutputSize() {
			return 0, fmt.Errorf("nn: label %d out of range [0,%d)", label, n.OutputSize())
		}
		// Forward, retaining activations.
		s.acts[0] = x
		for i, l := range n.Layers {
			l.forward(s.acts[i], s.acts[i+1])
		}
		softmaxInto(s.probs, s.acts[nl])
		p := float64(s.probs[label])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
		// Backward: output delta = probs - onehot.
		delta := s.deltas[nl-1]
		copy(delta, s.probs)
		delta[label] -= 1
		for i := nl - 1; i >= 0; i-- {
			l := n.Layers[i]
			in := s.acts[i]
			// ReLU derivative gates delta by the layer's own output.
			if l.Act == ReLU {
				out := s.acts[i+1]
				for o := range delta {
					if out[o] <= 0 {
						delta[o] = 0
					}
				}
			}
			for o := 0; o < l.Out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				s.gB[i][o] += d
				row := s.gW[i][o*l.In : (o+1)*l.In]
				for j, xv := range in {
					row[j] += d * xv
				}
			}
			if i > 0 {
				prev := s.deltas[i-1]
				clear(prev)
				for o := 0; o < l.Out; o++ {
					d := delta[o]
					if d == 0 {
						continue
					}
					row := l.W[o*l.In : (o+1)*l.In]
					for j, w := range row {
						prev[j] += w * d
					}
				}
				delta = prev
			}
		}
	}
	s.acts[0] = nil // don't retain the caller's last sample
	// Apply averaged gradients.
	scale := lr / float32(len(xs))
	for i, l := range n.Layers {
		for j := range l.W {
			l.W[j] -= scale * s.gW[i][j]
		}
		for j := range l.B {
			l.B[j] -= scale * s.gB[i][j]
		}
	}
	return float32(loss / float64(len(xs))), nil
}

// Clone returns a deep copy of the network. The model registry snapshots
// versions with it: a registered version must stay immutable while the
// trainer keeps mutating its working copy.
func (n *Network) Clone() *Network {
	c := &Network{Layers: make([]*Layer, len(n.Layers))}
	for i, l := range n.Layers {
		c.Layers[i] = &Layer{
			In: l.In, Out: l.Out, Act: l.Act,
			W: append([]float32(nil), l.W...),
			B: append([]float32(nil), l.B...),
		}
	}
	return c
}

// Accuracy evaluates classification accuracy over a labeled set.
func (n *Network) Accuracy(xs [][]float32, labels []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if n.Predict(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

const marshalMagic = 0x4C4E4E31 // "LNN1"

// Marshal serializes the network (for the feature registry's model files).
func (n *Network) Marshal() []byte {
	size := 8
	for _, l := range n.Layers {
		size += 9 + 4*len(l.W) + 4*len(l.B)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, marshalMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.Layers)))
	for _, l := range n.Layers {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l.In))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l.Out))
		buf = append(buf, byte(l.Act))
		for _, w := range l.W {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(w))
		}
		for _, b := range l.B {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(b))
		}
	}
	return buf
}

// ErrBadModel reports a corrupt serialized network.
var ErrBadModel = errors.New("nn: corrupt model blob")

// Unmarshal deserializes a network produced by Marshal.
func Unmarshal(blob []byte) (*Network, error) {
	if len(blob) < 8 || binary.LittleEndian.Uint32(blob) != marshalMagic {
		return nil, ErrBadModel
	}
	nl := int(binary.LittleEndian.Uint32(blob[4:]))
	if nl <= 0 || nl > 64 {
		return nil, ErrBadModel
	}
	pos := 8
	need := func(n int) bool { return pos+n <= len(blob) }
	net := &Network{}
	for i := 0; i < nl; i++ {
		if !need(9) {
			return nil, ErrBadModel
		}
		in := int(binary.LittleEndian.Uint32(blob[pos:]))
		out := int(binary.LittleEndian.Uint32(blob[pos+4:]))
		act := Activation(blob[pos+8])
		pos += 9
		if in <= 0 || out <= 0 || in > 1<<20 || out > 1<<20 || act > ReLU {
			return nil, ErrBadModel
		}
		// Bounds-check the declared shape against the bytes actually present
		// BEFORE allocating: in and out are attacker-controlled, and a
		// 17-byte blob declaring a 2^20 x 2^20 layer would otherwise demand a
		// 4 TiB weight slice. int64 math keeps in*out from overflowing int on
		// 32-bit builds.
		elems := int64(in)*int64(out) + int64(out)
		if int64(len(blob)-pos) < 4*elems {
			return nil, ErrBadModel
		}
		l := &Layer{In: in, Out: out, Act: act, W: make([]float32, in*out), B: make([]float32, out)}
		for j := range l.W {
			l.W[j] = math.Float32frombits(binary.LittleEndian.Uint32(blob[pos:]))
			pos += 4
		}
		for j := range l.B {
			l.B[j] = math.Float32frombits(binary.LittleEndian.Uint32(blob[pos:]))
			pos += 4
		}
		net.Layers = append(net.Layers, l)
	}
	if pos != len(blob) {
		return nil, ErrBadModel
	}
	return net, nil
}
