package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	n := New(1, 31, 256, 2)
	if n.InputSize() != 31 || n.OutputSize() != 2 {
		t.Fatalf("sizes = %d -> %d, want 31 -> 2", n.InputSize(), n.OutputSize())
	}
	got := n.Sizes()
	want := []int{31, 256, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
	if n.Layers[0].Act != ReLU || n.Layers[1].Act != Linear {
		t.Fatal("hidden layer must be ReLU, output Linear")
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(7, 4, 8, 2), New(7, 4, 8, 2)
	for i := range a.Layers[0].W {
		if a.Layers[0].W[i] != b.Layers[0].W[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	c := New(8, 4, 8, 2)
	same := true
	for i := range a.Layers[0].W {
		if a.Layers[0].W[i] != c.Layers[0].W[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestForwardKnownValues(t *testing.T) {
	// Hand-built 2->2->1 network.
	n := &Network{Layers: []*Layer{
		{In: 2, Out: 2, W: []float32{1, -1, 0.5, 0.5}, B: []float32{0, -1}, Act: ReLU},
		{In: 2, Out: 1, W: []float32{2, 3}, B: []float32{0.5}, Act: Linear},
	}}
	// x = [3, 1]: h = relu([3-1, 1.5+0.5-1]) = [2, 1]; y = 2*2+3*1+0.5 = 7.5
	got := n.Forward([]float32{3, 1})
	if len(got) != 1 || math.Abs(float64(got[0]-7.5)) > 1e-6 {
		t.Fatalf("Forward = %v, want [7.5]", got)
	}
}

func TestForwardPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong input width")
		}
	}()
	New(1, 4, 2).Forward([]float32{1})
}

func TestFlops(t *testing.T) {
	n := New(1, 31, 256, 2)
	want := 2 * float64(31*256+256*2)
	if got := n.Flops(); got != want {
		t.Fatalf("Flops = %v, want %v", got, want)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float32{1000, 1000}) // stability check
	if math.Abs(float64(p[0]-0.5)) > 1e-6 {
		t.Fatalf("Softmax large logits = %v", p)
	}
	p = Softmax([]float32{0, math.MaxFloat32 / 2})
	if p[1] < 0.99 {
		t.Fatalf("Softmax = %v, want ~[0,1]", p)
	}
	var sum float32
	for _, v := range Softmax([]float32{0.3, -1.2, 2.5}) {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

// Train a small model on a linearly separable task and require high
// accuracy: confirms backprop actually learns.
func TestTrainingLearnsSeparableTask(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := New(1, 2, 16, 2)
	var xs [][]float32
	var labels []int
	for i := 0; i < 400; i++ {
		x := []float32{rng.Float32()*2 - 1, rng.Float32()*2 - 1}
		label := 0
		if x[0]+x[1] > 0 {
			label = 1
		}
		xs = append(xs, x)
		labels = append(labels, label)
	}
	var lastLoss float32
	for epoch := 0; epoch < 200; epoch++ {
		loss, err := n.TrainBatch(xs, labels, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = loss
	}
	if acc := n.Accuracy(xs, labels); acc < 0.95 {
		t.Fatalf("accuracy = %.3f (loss %.4f), want >= 0.95", acc, lastLoss)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	n := New(3, 4, 8, 2)
	xs := [][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}}
	labels := []int{0, 1, 1, 0}
	first, err := n.TrainBatch(xs, labels, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var last float32
	for i := 0; i < 300; i++ {
		last, _ = n.TrainBatch(xs, labels, 0.1)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %v, last %v", first, last)
	}
}

func TestTrainBatchErrors(t *testing.T) {
	n := New(1, 2, 2)
	if _, err := n.TrainBatch([][]float32{{1, 2}}, []int{5}, 0.1); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := n.TrainBatch([][]float32{{1, 2}}, []int{0, 1}, 0.1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if loss, err := n.TrainBatch(nil, nil, 0.1); err != nil || loss != 0 {
		t.Error("empty batch should be a no-op")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if got := New(1, 2, 2).Accuracy(nil, nil); got != 0 {
		t.Fatalf("Accuracy(empty) = %v", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	n := New(99, 31, 256, 256, 2)
	blob := n.Marshal()
	m, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 31)
	for i := range x {
		x[i] = float32(i) / 31
	}
	a, b := n.Forward(x), m.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output mismatch after round trip: %v vs %v", a, b)
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	good := New(1, 4, 2).Marshal()
	for _, cut := range []int{0, 3, 7, 8, len(good) - 1} {
		if _, err := Unmarshal(good[:cut]); err == nil {
			t.Errorf("truncated blob (%d bytes) accepted", cut)
		}
	}
	bad := append([]byte{}, good...)
	bad[0] ^= 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Unmarshal(append(good, 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// Property: ForwardBatch agrees with per-sample Forward.
func TestQuickBatchMatchesSingle(t *testing.T) {
	n := New(5, 3, 8, 2)
	f := func(raw [][3]int16) bool {
		xs := make([][]float32, len(raw))
		for i, r := range raw {
			xs[i] = []float32{float32(r[0]) / 256, float32(r[1]) / 256, float32(r[2]) / 256}
		}
		batch := n.ForwardBatch(xs)
		for i, x := range xs {
			single := n.Forward(x)
			for j := range single {
				if batch[i][j] != single[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution for any finite
// logits.
func TestQuickSoftmaxDistribution(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float32, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			logits = append(logits, v)
		}
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || math.IsNaN(float64(v)) {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzUnmarshal: arbitrary bytes must never panic the model decoder.
func FuzzUnmarshal(f *testing.F) {
	f.Add(New(1, 4, 2).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode stably.
		again, err := Unmarshal(net.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if len(again.Layers) != len(net.Layers) {
			t.Fatal("layer count unstable")
		}
	})
}
