// Package core assembles LAKE (§4, Fig 2): the kernel-side API provider
// lakeLib, the bulk-data channel lakeShm, the user-side daemon lakeD that
// realizes accelerator APIs, the eBPF-style execution policies, and the
// in-kernel feature registry — one runtime a kernel subsystem boots once and
// programs against.
//
// Everything beneath the runtime is simulated hardware on a shared virtual
// clock (see DESIGN.md for the substitution map), but the components and the
// paths between them are the real ones: commands really serialize and cross
// a transport, lakeShm buffers really are shared memory, and policies really
// sample (remoted) NVML utilization.
package core

import (
	"fmt"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/boundary"
	"lakego/internal/cuda"
	"lakego/internal/faults"
	"lakego/internal/features"
	"lakego/internal/gpu"
	"lakego/internal/policy"
	"lakego/internal/remoting"
	"lakego/internal/shm"
	"lakego/internal/vtime"
)

// Config parameterizes a LAKE runtime.
type Config struct {
	// GPU is the accelerator model; zero value means gpu.DefaultSpec().
	GPU gpu.Spec
	// ShmBytes sizes the lakeShm region (default shm.DefaultRegionSize,
	// the artifact's cma=128M).
	ShmBytes int64
	// Channel selects the kernel<->user command channel (default Netlink,
	// the paper's choice).
	Channel boundary.Kind
	// QueueDepth is the command channel's buffering.
	QueueDepth int
	// Faults, when non-nil, attaches a fault plane with this mix to the
	// transport and daemon: frames may be dropped, corrupted, duplicated,
	// or delayed, and the daemon may crash while serving. Setting Faults
	// also arms client resilience (a faulty channel without retries would
	// just lose calls).
	Faults *faults.Mix
	// Resilience, when non-nil, arms lakeLib's fault-tolerant call path
	// explicitly; its Hook defaults to the runtime's Supervisor.
	Resilience *remoting.Resilience
	// Supervision parameterizes the lakeD supervisor (zero value =
	// defaults). Only consulted when Faults or Resilience is set.
	Supervision SupervisorConfig
}

// DefaultConfig mirrors the paper's deployment: Netlink command channel,
// 128 MiB CMA-backed shared region, A100-class GPU.
func DefaultConfig() Config {
	return Config{
		GPU:        gpu.DefaultSpec(),
		ShmBytes:   shm.DefaultRegionSize,
		Channel:    boundary.Netlink,
		QueueDepth: 64,
	}
}

// Runtime is one booted LAKE instance.
type Runtime struct {
	clock     *vtime.Clock
	device    *gpu.Device
	api       *cuda.API
	region    *shm.Region
	transport *boundary.Transport
	daemon    *remoting.Daemon
	lib       *remoting.Lib
	store     *features.Store
	plane     *faults.Plane
	sup       *Supervisor
}

// New boots a runtime: creates the device, maps the shared region into both
// domains, starts lakeD and wires lakeLib to it.
func New(cfg Config) (*Runtime, error) {
	if cfg.GPU.MemoryBytes == 0 {
		cfg.GPU = gpu.DefaultSpec()
	}
	if cfg.ShmBytes <= 0 {
		cfg.ShmBytes = shm.DefaultRegionSize
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	clock := vtime.New()
	device := gpu.New(cfg.GPU, clock)
	api := cuda.NewAPI(device)
	region, err := shm.NewRegion(cfg.ShmBytes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tr := boundary.NewTransport(cfg.Channel, clock, cfg.QueueDepth)
	daemon := remoting.NewDaemon(api, region, tr)
	lib := remoting.NewLib(tr, daemon, region)
	rt := &Runtime{
		clock:     clock,
		device:    device,
		api:       api,
		region:    region,
		transport: tr,
		daemon:    daemon,
		lib:       lib,
		store:     features.NewStore(),
	}
	if cfg.Faults != nil {
		rt.plane = faults.NewPlane(*cfg.Faults, clock)
		tr.InjectFaults(rt.plane)
		daemon.InjectFaults(rt.plane)
	}
	if cfg.Faults != nil || cfg.Resilience != nil {
		rt.sup = NewSupervisor(clock, daemon, lib, cfg.Supervision)
		res := remoting.DefaultResilience()
		if cfg.Resilience != nil {
			res = *cfg.Resilience
		}
		if res.Hook == nil {
			res.Hook = rt.sup
		}
		lib.EnableResilience(res)
	}
	if r := lib.CuInit(); r != cuda.Success {
		return nil, fmt.Errorf("core: remote cuInit failed: %s", r)
	}
	return rt, nil
}

// Clock returns the runtime's virtual clock.
func (r *Runtime) Clock() *vtime.Clock { return r.clock }

// Device returns the accelerator model (for experiment instrumentation;
// kernel-side code should only touch it through Lib).
func (r *Runtime) Device() *gpu.Device { return r.device }

// Lib returns lakeLib, the kernel-side accelerator API stubs.
func (r *Runtime) Lib() *remoting.Lib { return r.lib }

// Daemon returns lakeD, for registering high-level APIs (§4.4).
func (r *Runtime) Daemon() *remoting.Daemon { return r.daemon }

// Region returns the lakeShm shared region.
func (r *Runtime) Region() *shm.Region { return r.region }

// Features returns the in-kernel feature registry store (§5).
func (r *Runtime) Features() *features.Store { return r.store }

// FaultPlane returns the attached fault-injection plane, or nil when the
// runtime was booted without Config.Faults.
func (r *Runtime) FaultPlane() *faults.Plane { return r.plane }

// Supervisor returns the lakeD supervisor, or nil when neither faults nor
// resilience were configured.
func (r *Runtime) Supervisor() *Supervisor { return r.sup }

// RegisterKernel installs a device kernel into the user-domain vendor
// library so remoted cuModuleGetFunction can resolve it.
func (r *Runtime) RegisterKernel(k *cuda.Kernel) { r.api.RegisterKernel(k) }

// NewAdaptivePolicy builds a Fig 3 policy whose utilization source is the
// LAKE-remoted NVML query, exactly as the paper's pseudocode does.
func (r *Runtime) NewAdaptivePolicy(cfg policy.AdaptiveConfig) *policy.Adaptive {
	return policy.NewAdaptive(cfg, r.clock, func() int {
		g, _, res := r.lib.NvmlGetUtilization()
		if res != cuda.Success {
			return 100 // treat a failed query as contended: stay on CPU
		}
		return g
	})
}

// NewBatcher creates the lakeD cross-client inference batching subsystem
// on this runtime: clients submit independent inference requests and the
// batcher coalesces them into dynamically batched GPU launches (or the CPU
// fallback, per the configured policy). Register models with
// Batcher.RegisterModel and hand out Batcher.Client handles.
func (r *Runtime) NewBatcher(cfg batcher.Config) *batcher.Batcher {
	return batcher.New(r, cfg)
}

// InstallVMPolicy verifies a bytecode policy against the Fig 3 helper set
// (batch size from the returned policy itself, utilization from remoted
// NVML) and returns it ready for Decide calls.
func (r *Runtime) InstallVMPolicy(prog policy.Program, window int) (*policy.VMPolicy, error) {
	var vp *policy.VMPolicy
	helpers := policy.Figure3Helpers(
		func() int64 {
			if vp == nil {
				return 0
			}
			return vp.BatchSize()
		},
		func() int64 {
			g, _, res := r.lib.NvmlGetUtilization()
			if res != cuda.Success {
				return 100
			}
			return int64(g)
		},
		window,
	)
	p, err := policy.NewVMPolicy(prog, helpers)
	if err != nil {
		return nil, err
	}
	vp = p
	return vp, nil
}

// Stats summarizes runtime activity for experiment reports.
type Stats struct {
	RemotedCalls   int64
	ChannelTime    time.Duration
	DaemonHandled  int64
	KernelLaunches int64
	ShmUsed        int64
	VirtualTime    time.Duration
	// Fault/recovery counters (zero on a runtime without faults).
	DaemonExecuted    int64
	DaemonRedelivered int64
	DaemonRestarts    int64
}

// Stats snapshots the runtime counters.
func (r *Runtime) Stats() Stats {
	calls, channel := r.lib.Stats()
	return Stats{
		RemotedCalls:      calls,
		ChannelTime:       channel,
		DaemonHandled:     r.daemon.Handled(),
		KernelLaunches:    r.device.Launches(),
		ShmUsed:           r.region.Used(),
		VirtualTime:       r.clock.Now(),
		DaemonExecuted:    r.daemon.Executed(),
		DaemonRedelivered: r.daemon.Redelivered(),
		DaemonRestarts:    r.daemon.Restarts(),
	}
}

// Close shuts the runtime down.
func (r *Runtime) Close() { r.transport.Close() }
