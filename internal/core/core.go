// Package core assembles LAKE (§4, Fig 2): the kernel-side API provider
// lakeLib, the bulk-data channel lakeShm, the user-side daemon lakeD that
// realizes accelerator APIs, the eBPF-style execution policies, and the
// in-kernel feature registry — one runtime a kernel subsystem boots once and
// programs against.
//
// Everything beneath the runtime is simulated hardware on a shared virtual
// clock (see DESIGN.md for the substitution map), but the components and the
// paths between them are the real ones: commands really serialize and cross
// a transport, lakeShm buffers really are shared memory, and policies really
// sample (remoted) NVML utilization.
package core

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/boundary"
	"lakego/internal/cuda"
	"lakego/internal/faults"
	"lakego/internal/features"
	"lakego/internal/flightrec"
	"lakego/internal/gpu"
	"lakego/internal/gpupool"
	"lakego/internal/healthplane"
	"lakego/internal/lifecycle"
	"lakego/internal/nn"
	"lakego/internal/policy"
	"lakego/internal/remoting"
	"lakego/internal/shm"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

// BuildVersion is stamped into lake_build_info and health-plane responses;
// override at link time with `-ldflags "-X lakego/internal/core.BuildVersion=v..."`.
var BuildVersion = "dev"

// Config parameterizes a LAKE runtime.
type Config struct {
	// GPU is the accelerator model; zero value means gpu.DefaultSpec().
	GPU gpu.Spec
	// NumDevices sizes the device pool (default 1); each device gets the
	// GPU spec unless DeviceSpecs overrides the set.
	NumDevices int
	// DeviceSpecs, when non-empty, enumerates a (possibly heterogeneous)
	// pool explicitly, overriding GPU and NumDevices.
	DeviceSpecs []gpu.Spec
	// PoolPolicy selects context placement across the pool (default
	// round-robin; irrelevant with one device).
	PoolPolicy gpupool.Policy
	// PoolSeed seeds the pool's placement PRNG, keeping fixed-seed
	// multi-device runs bit-identical.
	PoolSeed int64
	// ShmBytes sizes the lakeShm region (default shm.DefaultRegionSize,
	// the artifact's cma=128M).
	ShmBytes int64
	// Channel selects the kernel<->user command channel (default Netlink,
	// the paper's choice).
	Channel boundary.Kind
	// QueueDepth is the command channel's buffering.
	QueueDepth int
	// Faults, when non-nil, attaches a fault plane with this mix to the
	// transport and daemon: frames may be dropped, corrupted, duplicated,
	// or delayed, and the daemon may crash while serving. Setting Faults
	// also arms client resilience (a faulty channel without retries would
	// just lose calls).
	Faults *faults.Mix
	// Resilience, when non-nil, arms lakeLib's fault-tolerant call path
	// explicitly; its Hook defaults to the runtime's Supervisor.
	Resilience *remoting.Resilience
	// Supervision parameterizes the lakeD supervisor (zero value =
	// defaults). Only consulted when Faults or Resilience is set.
	Supervision SupervisorConfig
	// DisableTelemetry boots the runtime without the observability plane:
	// Telemetry() returns nil and every instrument call across the stack
	// is a no-op on a nil receiver. The zero value keeps telemetry on —
	// its hot-path cost is a handful of atomic adds (see DESIGN.md).
	DisableTelemetry bool
	// TraceCalls arms span tracing at boot (equivalent to calling
	// Telemetry().Tracer().SetEnabled(true)): each remoted call records a
	// marshal / channel / dispatch / launch / demux stage timeline.
	TraceCalls bool
	// DisableFlightRecorder boots without the always-on flight recorder.
	// The recorder rides the telemetry switch: it is on whenever telemetry
	// is on (its per-event cost is a cursor fetch-add plus nine atomic
	// stores), and disabling either telemetry or this flag leaves every
	// remoted command untraced — the wire stays byte-identical to the
	// pre-recorder protocol.
	DisableFlightRecorder bool
	// FlightRecorderSize is the per-domain ring capacity in events (default
	// flightrec.DefaultRingSize = 4096).
	FlightRecorderSize int

	// NumShards, RouterPolicy and RouterSeed parameterize a sharded fleet
	// (internal/fleet): NumShards > 1 boots that many independent lakeD
	// runtimes behind a client-side router placing tenants by RouterPolicy
	// over a PRNG/ring seeded with RouterSeed. New ignores all three — a
	// single runtime is one shard; fleet.New consumes them.
	NumShards    int
	RouterPolicy gpupool.Policy
	RouterSeed   int64

	// Clock, when non-nil, is used instead of a fresh virtual clock. Each
	// fleet shard runs on its own clock — shards model independent lakeD
	// processes whose service timelines overlap in real time, so virtual
	// time is per-shard and the fleet's elapsed time is the maximum over
	// shards (the critical path), exactly as gpu.Stream timelines only
	// couple at synchronization points.
	Clock *vtime.Clock
	// Recorder, when non-nil, is wired instead of a fresh flight recorder —
	// typically a shard view (flightrec.WithShard) of a fleet-shared
	// recorder, so every shard's events land in one set of rings with shard
	// ordinals stamped on.
	Recorder *flightrec.Recorder
	// ShardLabel, when non-empty, appends a shard="<label>" pair to every
	// metric name this runtime registers, keeping per-shard series distinct
	// when a fleet merges registries into one exposition. Empty keeps every
	// name byte-identical to a standalone runtime's.
	ShardLabel string
	// ShardOrdinal namespaces lakeLib's wire sequence numbers
	// (remoting.Lib.SetShardTag) so shard journals can merge without key
	// collisions during migration. Ordinal 0 keeps the original space.
	ShardOrdinal int
}

// DefaultConfig mirrors the paper's deployment: Netlink command channel,
// 128 MiB CMA-backed shared region, A100-class GPU.
func DefaultConfig() Config {
	return Config{
		GPU:        gpu.DefaultSpec(),
		ShmBytes:   shm.DefaultRegionSize,
		Channel:    boundary.Netlink,
		QueueDepth: 64,
	}
}

// Runtime is one booted LAKE instance.
type Runtime struct {
	clock     *vtime.Clock
	pool      *gpupool.Pool
	device    *gpu.Device // pool device 0, the single-device view
	api       *cuda.API
	region    *shm.Region
	transport boundary.Channel
	daemon    *remoting.Daemon
	lib       *remoting.Lib
	store     *features.Store
	shardLbl  string
	plane     *faults.Plane
	sup       *Supervisor
	tel       *telemetry.Registry
	rec       *flightrec.Recorder

	modelsMu sync.Mutex
	models   map[string]*lifecycle.Manager
}

// New boots a runtime: creates the device, maps the shared region into both
// domains, starts lakeD and wires lakeLib to it.
func New(cfg Config) (*Runtime, error) {
	if cfg.GPU.MemoryBytes == 0 {
		cfg.GPU = gpu.DefaultSpec()
	}
	if cfg.ShmBytes <= 0 {
		cfg.ShmBytes = shm.DefaultRegionSize
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	clock := cfg.Clock
	if clock == nil {
		clock = vtime.New()
	}
	specs := cfg.DeviceSpecs
	if len(specs) == 0 {
		n := cfg.NumDevices
		if n <= 0 {
			n = 1
		}
		specs = make([]gpu.Spec, n)
		for i := range specs {
			specs[i] = cfg.GPU
		}
	}
	pool, err := gpupool.New(gpupool.Config{
		Specs:  specs,
		Policy: cfg.PoolPolicy,
		Seed:   cfg.PoolSeed,
	}, clock)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	device := pool.Device(0)
	var place cuda.PlaceFunc
	if pool.Size() > 1 {
		place = pool.Place
	}
	api := cuda.NewMultiAPI(pool.Devices(), place)
	region, err := shm.NewRegion(cfg.ShmBytes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Channel selection: boundary.Ring gets the shm-resident lock-free
	// descriptor-ring transport (payload slots carved from the region the
	// two domains already share); every Table-2 mechanism keeps the legacy
	// channel transport, byte-for-byte.
	var tr boundary.Channel
	if cfg.Channel == boundary.Ring {
		ring, err := boundary.NewRingTransport(clock, region, cfg.QueueDepth, boundary.DefaultSlotBytes)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		tr = ring
	} else {
		tr = boundary.NewTransport(cfg.Channel, clock, cfg.QueueDepth)
	}
	daemon := remoting.NewDaemon(api, region, tr)
	lib := remoting.NewLib(tr, daemon, region)
	lib.SetShardTag(cfg.ShardOrdinal)
	rt := &Runtime{
		clock:     clock,
		pool:      pool,
		device:    device,
		api:       api,
		region:    region,
		transport: tr,
		daemon:    daemon,
		lib:       lib,
		store:     features.NewStore(),
		shardLbl:  cfg.ShardLabel,
	}
	if !cfg.DisableTelemetry {
		rt.tel = telemetry.NewRegistry()
		rt.wireTelemetry(cfg)
		if cfg.TraceCalls {
			rt.tel.Tracer().SetEnabled(true)
		}
		boot := time.Now()
		rt.tel.Gauge(metricName(cfg.ShardLabel, "lake_build_info",
			`version="`+BuildVersion+`"`, `go_version="`+goruntime.Version()+`"`),
			"Build metadata carried in labels; the value is always 1.").Set(1)
		rt.tel.GaugeFunc(metricName(cfg.ShardLabel, "lake_uptime_vns"),
			"Virtual nanoseconds elapsed on this runtime's clock.",
			func() int64 { return int64(clock.Now()) })
		rt.tel.GaugeFunc(metricName(cfg.ShardLabel, "lake_uptime_seconds"),
			"Wall-clock seconds since the runtime booted.",
			func() int64 { return int64(time.Since(boot) / time.Second) })
	}
	if !cfg.DisableTelemetry && !cfg.DisableFlightRecorder {
		if cfg.Recorder != nil {
			rt.rec = cfg.Recorder
		} else {
			rt.rec = flightrec.New(clock, cfg.FlightRecorderSize)
		}
		rt.rec.SetFramePeeker(remoting.PeekFrame)
		rt.rec.SetEnabled(true)
		tr.SetFlightRecorder(rt.rec)
		lib.SetFlightRecorder(rt.rec)
		daemon.SetFlightRecorder(rt.rec)
		pool.SetFlightRecorder(rt.rec)
		api.SetFlightRecorder(rt.rec)
	}
	if cfg.Faults != nil {
		rt.plane = faults.NewPlane(*cfg.Faults, clock)
		tr.InjectFaults(rt.plane)
		daemon.InjectFaults(rt.plane)
	}
	if cfg.Faults != nil || cfg.Resilience != nil {
		rt.sup = NewSupervisor(clock, daemon, lib, cfg.Supervision)
		rt.sup.SetFlightRecorder(rt.rec)
		if rt.tel != nil {
			rt.sup.SetTelemetry(SupervisorTelemetry{
				TransitionsTotal: rt.tel.Counter(metricName(rt.shardLbl, "lake_supervisor_transitions_total"), "Supervisor state transitions recorded."),
				Restarts:         rt.tel.Counter(metricName(rt.shardLbl, "lake_supervisor_restarts_total"), "lakeD relaunches driven by the supervisor."),
				State:            rt.tel.Gauge(metricName(rt.shardLbl, "lake_supervisor_state"), "Current lakeD state (0=Healthy 1=Suspected 2=Dead 3=Restarting 4=ReAttached)."),
			})
		}
		res := remoting.DefaultResilience()
		if cfg.Resilience != nil {
			res = *cfg.Resilience
		}
		if res.Hook == nil {
			res.Hook = rt.sup
		}
		lib.EnableResilience(res)
	}
	if r := lib.CuInit(); r != cuda.Success {
		return nil, fmt.Errorf("core: remote cuInit failed: %s", r)
	}
	return rt, nil
}

// metricName composes one series name from its family and label pairs,
// dropping empty pairs and appending the runtime's shard pair when
// configured. All label construction in wireTelemetry goes through here:
// ad-hoc `name+lbl` concatenation is what let per-shard pooled series
// collide in a merged fleet exposition (two shards' `{device="0"}` were the
// same string).
func metricName(shardLabel, family string, pairs ...string) string {
	var parts []string
	for _, p := range pairs {
		if p != "" {
			parts = append(parts, p)
		}
	}
	if shardLabel != "" {
		parts = append(parts, `shard="`+shardLabel+`"`)
	}
	if len(parts) == 0 {
		return family
	}
	return family + "{" + strings.Join(parts, ",") + "}"
}

// wireTelemetry attaches registry-backed instruments to every layer of the
// freshly built runtime. Called once from New, before any traffic, so each
// SetTelemetry is a plain construction-time assignment.
func (r *Runtime) wireTelemetry(cfg Config) {
	tel := r.tel
	name := func(family string, pairs ...string) string { return metricName(r.shardLbl, family, pairs...) }
	ch := `channel="` + cfg.Channel.String() + `"`
	r.transport.SetTelemetry(boundary.TransportTelemetry{
		Sent:      tel.Counter(name("lake_boundary_sent_total", ch), "Kernel->user frames accepted into the command channel."),
		Received:  tel.Counter(name("lake_boundary_received_total", ch), "User->kernel frames delivered to the kernel side."),
		QueueFull: tel.Counter(name("lake_boundary_queue_full_total", ch), "Sends rejected by a full channel queue."),
		RoundTrip: tel.Histogram(name("lake_boundary_roundtrip_ns", ch), "Modeled per-command round-trip cost (virtual ns).", telemetry.DefaultLatencyBuckets()),
	})
	for i, dev := range r.pool.Devices() {
		// With one device (and no shard label) the metric names stay exactly
		// as they always were; a real pool labels each device's instrument
		// set by ordinal, and a fleet shard adds its shard pair on top.
		dv := ""
		if r.pool.Size() > 1 {
			dv = fmt.Sprintf(`device="%d"`, i)
		}
		dev.SetTelemetry(gpu.Telemetry{
			Launches:   tel.Counter(name("lake_gpu_launches_total", dv), "Kernels executed on the device model."),
			ExecTime:   tel.Histogram(name("lake_gpu_exec_ns", dv), "Per-operation modeled execution cost (virtual ns), excluding queueing.", telemetry.DefaultLatencyBuckets()),
			QueueDelay: tel.Histogram(name("lake_gpu_queue_delay_ns", dv), "Per-operation contention delay (virtual ns) waiting for the device.", telemetry.DefaultLatencyBuckets()),
			CopyTime:   tel.Histogram(name("lake_gpu_copy_ns", dv), "Host<->device DMA durations (virtual ns) — copy-engine occupancy.", telemetry.DefaultLatencyBuckets()),
			CopyBytes:  tel.Counter(name("lake_gpu_copy_bytes_total", dv), "Bytes moved across the modeled PCIe link."),
		})
	}
	r.lib.SetTelemetry(remoting.LibTelemetry{
		Calls:            tel.Counter(name("lake_lib_calls_total"), "Completed remoted invocations."),
		CallLatency:      tel.Histogram(name("lake_lib_call_latency_ns"), "End-to-end remoted call latency (virtual ns), including backoff.", telemetry.DefaultLatencyBuckets()),
		Retries:          tel.Counter(name("lake_lib_retries_total"), "Resilient-exchange retry attempts."),
		CorruptResponses: tel.Counter(name("lake_lib_corrupt_responses_total"), "Responses dropped for CRC/decode failure."),
		StaleResponses:   tel.Counter(name("lake_lib_stale_responses_total"), "Responses discarded for a stale sequence number."),
		Recoveries:       tel.Counter(name("lake_lib_recoveries_total"), "Calls that succeeded after at least one retry."),
		DeadlineExceeded: tel.Counter(name("lake_lib_deadline_exceeded_total"), "Calls abandoned at the retry deadline."),
		DaemonDead:       tel.Counter(name("lake_lib_daemon_dead_total"), "Calls refused because lakeD was declared dead."),
		Tracer:           tel.Tracer(),
	})
	r.daemon.SetTelemetry(remoting.DaemonTelemetry{
		Handled:       tel.Counter(name("lake_daemon_handled_total"), "Responses lakeD put on the channel."),
		Executed:      tel.Counter(name("lake_daemon_executed_total"), "Commands whose handler actually ran."),
		Redelivered:   tel.Counter(name("lake_daemon_redelivered_total"), "Commands answered from the exactly-once journal."),
		CorruptFrames: tel.Counter(name("lake_daemon_corrupt_frames_total"), "Undecodable command frames lakeD dropped."),
		GPUUtil:       tel.Gauge(name("lake_nvml_gpu_util"), "Last NVML GPU utilization sample served (percent)."),
		MemUtil:       tel.Gauge(name("lake_nvml_mem_util"), "Last NVML memory utilization sample served (percent)."),
		Tracer:        tel.Tracer(),
	})
}

// Telemetry returns the runtime's metrics/tracing registry, or nil when the
// runtime was booted with Config.DisableTelemetry (nil is safe: every
// instrument it would hand out degrades to a no-op).
func (r *Runtime) Telemetry() *telemetry.Registry { return r.tel }

// FlightRecorder returns the always-on flight recorder, or nil when the
// runtime was booted with DisableTelemetry or DisableFlightRecorder (nil is
// safe: every recorder method degrades to a no-op).
func (r *Runtime) FlightRecorder() *flightrec.Recorder { return r.rec }

// Clock returns the runtime's virtual clock.
func (r *Runtime) Clock() *vtime.Clock { return r.clock }

// Device returns the accelerator model (for experiment instrumentation;
// kernel-side code should only touch it through Lib). On a multi-device
// runtime this is pool device 0.
func (r *Runtime) Device() *gpu.Device { return r.device }

// Pool returns the device pool (size 1 on a default runtime). It also
// satisfies batcher.PoolRuntime, letting the batcher steer flushes across
// devices.
func (r *Runtime) Pool() *gpupool.Pool { return r.pool }

// Lib returns lakeLib, the kernel-side accelerator API stubs.
func (r *Runtime) Lib() *remoting.Lib { return r.lib }

// Daemon returns lakeD, for registering high-level APIs (§4.4).
func (r *Runtime) Daemon() *remoting.Daemon { return r.daemon }

// Region returns the lakeShm shared region.
func (r *Runtime) Region() *shm.Region { return r.region }

// Transport returns the boundary channel the runtime was booted on (the
// legacy *boundary.Transport or a *boundary.RingTransport, per
// Config.Channel); type-assert for implementation-specific stats.
func (r *Runtime) Transport() boundary.Channel { return r.transport }

// Features returns the in-kernel feature registry store (§5).
func (r *Runtime) Features() *features.Store { return r.store }

// FaultPlane returns the attached fault-injection plane, or nil when the
// runtime was booted without Config.Faults.
func (r *Runtime) FaultPlane() *faults.Plane { return r.plane }

// Supervisor returns the lakeD supervisor, or nil when neither faults nor
// resilience were configured.
func (r *Runtime) Supervisor() *Supervisor { return r.sup }

// RegisterKernel installs a device kernel into the user-domain vendor
// library so remoted cuModuleGetFunction can resolve it.
func (r *Runtime) RegisterKernel(k *cuda.Kernel) { r.api.RegisterKernel(k) }

// NewAdaptivePolicy builds a Fig 3 policy whose utilization source is the
// LAKE-remoted NVML query, exactly as the paper's pseudocode does.
func (r *Runtime) NewAdaptivePolicy(cfg policy.AdaptiveConfig) *policy.Adaptive {
	p := policy.NewAdaptive(cfg, r.clock, func() int {
		g, _, res := r.lib.NvmlGetUtilization()
		if res != cuda.Success {
			return 100 // treat a failed query as contended: stay on CPU
		}
		return g
	})
	if cfg.UseObservedLatency && r.tel != nil {
		// Feed the policy the shared per-item latency series the batcher
		// (and offload runner) populate, closing the Fig 3 loop on
		// measured signal instead of the static batch threshold.
		p.SetLatencySources(
			r.tel.Histogram(metricName(r.shardLbl, telemetry.MetricGPUItemLatency), "Observed per-item GPU-path latency (virtual ns).", telemetry.DefaultLatencyBuckets()),
			r.tel.Histogram(metricName(r.shardLbl, telemetry.MetricCPUItemLatency), "Observed per-item CPU-path latency (virtual ns).", telemetry.DefaultLatencyBuckets()),
		)
	}
	return p
}

// NewLifecycle boots the online model-lifecycle manager for one model on
// this runtime: a versioned registry seeded with base, the in-daemon
// online trainer, and the drift detector, wired into the runtime's flight
// recorder (lifecycle domain) and telemetry (model="..."-labeled swap /
// retrain / drift series plus the serving-version gauge). Attach the
// predictor's SwapNet and feed Observe from the completion path.
func (r *Runtime) NewLifecycle(cfg lifecycle.Config, base *nn.Network) (*lifecycle.Manager, error) {
	m, err := lifecycle.NewManager(r.clock, cfg, base)
	if err != nil {
		return nil, err
	}
	m.SetFlightRecorder(r.rec)
	if r.tel != nil {
		lbl := `model="` + cfg.Model + `"`
		name := func(family string) string { return metricName(r.shardLbl, family, lbl) }
		m.SetTelemetry(lifecycle.Telemetry{
			Registrations:   r.tel.Counter(name("lake_model_registrations_total"), "Model versions added to the registry."),
			Swaps:           r.tel.Counter(name("lake_model_swaps_total"), "Serving-slot flips (promotions, demotions, rollbacks)."),
			RetrainSteps:    r.tel.Counter(name("lake_model_retrain_steps_total"), "Online SGD minibatch steps run in lakeD."),
			RetrainSamples:  r.tel.Counter(name("lake_model_retrain_samples_total"), "Feedback samples consumed by online retraining."),
			DriftAlarms:     r.tel.Counter(name("lake_model_drift_alarms_total"), "Drift windows whose live accuracy fell below the pinned baseline."),
			Demotions:       r.tel.Counter(name("lake_model_demotions_total"), "Drift-driven rollbacks to the previous serving version."),
			FallbackEnters:  r.tel.Counter(name("lake_model_fallback_total"), "Times the model went unhealthy and routing fell back to the CPU/heuristic path."),
			FeedbackDropped: r.tel.Counter(name("lake_model_feedback_dropped_total"), "Outcomes dropped by the bounded feedback channel."),
			ServingVersion:  r.tel.Gauge(name("lake_model_serving_version"), "Sequence number of the serving model version."),
			ShadowAccuracy:  r.tel.Gauge(name("lake_model_shadow_accuracy_permille"), "Candidate accuracy over the last shadow window (per-mille)."),
		})
	}
	r.modelsMu.Lock()
	if r.models == nil {
		r.models = make(map[string]*lifecycle.Manager)
	}
	r.models[cfg.Model] = m
	r.modelsMu.Unlock()
	return m, nil
}

// ModelLifecycle returns the lifecycle manager registered for a model
// label, or nil.
func (r *Runtime) ModelLifecycle(model string) *lifecycle.Manager {
	r.modelsMu.Lock()
	defer r.modelsMu.Unlock()
	return r.models[model]
}

// ModelLifecycles lists every lifecycle manager on this runtime in label
// order.
func (r *Runtime) ModelLifecycles() []*lifecycle.Manager {
	r.modelsMu.Lock()
	defer r.modelsMu.Unlock()
	labels := make([]string, 0, len(r.models))
	for l := range r.models {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]*lifecycle.Manager, 0, len(labels))
	for _, l := range labels {
		out = append(out, r.models[l])
	}
	return out
}

// NewHealthPlane boots the live health plane over this runtime: the
// non-destructive flight-recorder tailer, the rolling SLO burn-rate engine,
// and anomaly-triggered black-box capture, pre-wired to the runtime's clock,
// recorder, telemetry registry, lifecycle managers, and lakeD supervisor.
// Serve the plane's Handler() routes (healthplane.Paths) from the host
// process or drive Poll from its control loop. On a single runtime the
// shard probe reports one shard whose readiness tracks the supervisor (a
// runtime booted without faults/resilience is trivially ready); completion
// outstanding is unknown here, so the stall watchdog only arms on fleets.
func (r *Runtime) NewHealthPlane(cfg healthplane.Config) *healthplane.Plane {
	if cfg.Version == "" {
		cfg.Version = BuildVersion
	}
	p := healthplane.New(cfg)
	p.SetClock(r.clock.Now)
	p.SetRecorder(r.rec)
	if r.tel != nil {
		p.SetTelemetrySource(r.tel.Snapshot)
	}
	p.SetModelSource(r.ModelLifecycles)
	p.SetShardProbe(func() []healthplane.ShardHealth {
		sh := healthplane.ShardHealth{
			Ordinal: 0,
			State:   "Healthy",
			Ready:   true,
			Handled: r.daemon.Handled(),
		}
		if r.sup != nil {
			st := r.sup.State()
			sh.State = st.String()
			sh.Ready = st == StateHealthy || st == StateReAttached
		}
		return []healthplane.ShardHealth{sh}
	})
	return p
}

// NewBatcher creates the lakeD cross-client inference batching subsystem
// on this runtime: clients submit independent inference requests and the
// batcher coalesces them into dynamically batched GPU launches (or the CPU
// fallback, per the configured policy). Register models with
// Batcher.RegisterModel and hand out Batcher.Client handles.
func (r *Runtime) NewBatcher(cfg batcher.Config) *batcher.Batcher {
	b := batcher.New(r, cfg)
	b.SetFlightRecorder(r.rec)
	if r.tel != nil {
		name := func(family string) string { return metricName(r.shardLbl, family) }
		b.SetTelemetry(batcher.Telemetry{
			QueueDepth:     r.tel.Gauge(name("lake_batcher_queue_depth"), "Inference items currently queued across all models."),
			FlushItems:     r.tel.Histogram(name("lake_batcher_flush_items"), "Items per formed batch.", telemetry.CountBuckets()),
			Rejects:        r.tel.Counter(name("lake_batcher_rejects_total"), "Submissions rejected by backpressure."),
			QueueDelay:     r.tel.Histogram(name("lake_batcher_queue_delay_ns"), "Per-request enqueue-to-flush wait (virtual ns).", telemetry.DefaultLatencyBuckets()),
			GPUItemLatency: r.tel.Histogram(metricName(r.shardLbl, telemetry.MetricGPUItemLatency), "Observed per-item GPU-path latency (virtual ns).", telemetry.DefaultLatencyBuckets()),
			CPUItemLatency: r.tel.Histogram(metricName(r.shardLbl, telemetry.MetricCPUItemLatency), "Observed per-item CPU-path latency (virtual ns).", telemetry.DefaultLatencyBuckets()),
			Tracer:         r.tel.Tracer(),
		})
	}
	return b
}

// InstallVMPolicy verifies a bytecode policy against the Fig 3 helper set
// (batch size from the returned policy itself, utilization from remoted
// NVML) and returns it ready for Decide calls.
func (r *Runtime) InstallVMPolicy(prog policy.Program, window int) (*policy.VMPolicy, error) {
	var vp *policy.VMPolicy
	helpers := policy.Figure3Helpers(
		func() int64 {
			if vp == nil {
				return 0
			}
			return vp.BatchSize()
		},
		func() int64 {
			g, _, res := r.lib.NvmlGetUtilization()
			if res != cuda.Success {
				return 100
			}
			return int64(g)
		},
		window,
	)
	p, err := policy.NewVMPolicy(prog, helpers)
	if err != nil {
		return nil, err
	}
	vp = p
	return vp, nil
}

// Stats summarizes runtime activity for experiment reports.
type Stats struct {
	RemotedCalls   int64
	ChannelTime    time.Duration
	DaemonHandled  int64
	KernelLaunches int64
	ShmUsed        int64
	VirtualTime    time.Duration
	// Fault/recovery counters (zero on a runtime without faults).
	DaemonExecuted    int64
	DaemonRedelivered int64
	DaemonRestarts    int64
}

// Stats snapshots the runtime counters.
func (r *Runtime) Stats() Stats {
	calls, channel := r.lib.Stats()
	var launches int64
	for _, dev := range r.pool.Devices() {
		launches += dev.Launches()
	}
	return Stats{
		RemotedCalls:      calls,
		ChannelTime:       channel,
		DaemonHandled:     r.daemon.Handled(),
		KernelLaunches:    launches,
		ShmUsed:           r.region.Used(),
		VirtualTime:       r.clock.Now(),
		DaemonExecuted:    r.daemon.Executed(),
		DaemonRedelivered: r.daemon.Redelivered(),
		DaemonRestarts:    r.daemon.Restarts(),
	}
}

// Close shuts the runtime down.
func (r *Runtime) Close() { r.transport.Close() }
