package core

import (
	"sync"
	"testing"
	"time"

	"lakego/internal/cuda"
	"lakego/internal/faults"
	"lakego/internal/remoting"
)

func newFaultyRuntime(t *testing.T, mix faults.Mix, sup SupervisorConfig) *Runtime {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Faults = &mix
	cfg.Supervision = sup
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestSupervisorRecoversInjectedCrash(t *testing.T) {
	rt := newFaultyRuntime(t, faults.Mix{Seed: 1}, SupervisorConfig{})
	sup := rt.Supervisor()
	if sup == nil {
		t.Fatal("faulty runtime has no supervisor")
	}
	if st := sup.Check(); st != StateHealthy {
		t.Fatalf("initial heartbeat: %s", st)
	}

	rt.Daemon().InjectCrash(false)
	// The crash fires while this call is being served; the supervisor
	// must bring the daemon back and the call must still succeed.
	ptr, r := rt.Lib().CuMemAlloc(256)
	if r != cuda.Success {
		t.Fatalf("alloc across crash: %s", r)
	}
	if r := rt.Lib().CuMemFree(ptr); r != cuda.Success {
		t.Fatalf("free after recovery: %s", r)
	}
	if got := rt.Daemon().Restarts(); got != 1 {
		t.Fatalf("Restarts = %d, want 1", got)
	}
	if !rt.Lib().Healthy() {
		t.Fatal("lib unhealthy after successful recovery")
	}
}

func TestSupervisorStateMachineWalk(t *testing.T) {
	rt := newFaultyRuntime(t, faults.Mix{Seed: 2}, SupervisorConfig{})
	sup := rt.Supervisor()
	rt.Daemon().InjectCrash(false)
	if _, r := rt.Lib().CuMemAlloc(64); r != cuda.Success {
		t.Fatalf("alloc across crash: %s", r)
	}
	// The walk so far: Healthy -> Suspected -> Dead -> Restarting ->
	// ReAttached. A confirming heartbeat closes the loop.
	if st := sup.Check(); st != StateHealthy {
		t.Fatalf("post-recovery heartbeat: %s", st)
	}
	want := []DaemonState{StateSuspected, StateDead, StateRestarting, StateReAttached, StateHealthy}
	trs := sup.Transitions()
	if len(trs) != len(want) {
		t.Fatalf("recorded %d transitions %v, want %d", len(trs), trs, len(want))
	}
	for i, tr := range trs {
		if tr.To != want[i] {
			t.Fatalf("transition %d is %s -> %s, want -> %s (cause %q)", i, tr.From, tr.To, want[i], tr.Cause)
		}
		if i > 0 && tr.From != want[i-1] {
			t.Fatalf("transition %d leaves %s, want %s", i, tr.From, want[i-1])
		}
	}
}

func TestSupervisorCheckRecoversIdleCrash(t *testing.T) {
	// A crash between client calls is only observable via heartbeat.
	rt := newFaultyRuntime(t, faults.Mix{Seed: 3}, SupervisorConfig{})
	sup := rt.Supervisor()
	rt.Daemon().InjectCrash(false)
	// Kill the daemon by serving one doomed command out-of-band.
	frame, err := remoting.MarshalCommand(&remoting.Command{API: remoting.APICuDeviceGetCount, Seq: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	// Bypass lakeLib so the crash is not recovered in-call.
	if err := rt.transport.SendToUser(frame); err != nil {
		t.Fatal(err)
	}
	rt.Daemon().PumpOne()
	if !rt.Daemon().Crashed() {
		t.Fatal("daemon not crashed")
	}
	if st := sup.Check(); st != StateHealthy {
		t.Fatalf("heartbeat did not recover idle crash: %s", st)
	}
	if rt.Daemon().Restarts() == 0 {
		t.Fatal("no restart recorded")
	}
}

func TestSupervisorHeartbeatRateLimit(t *testing.T) {
	rt := newFaultyRuntime(t, faults.Mix{Seed: 4}, SupervisorConfig{HeartbeatInterval: time.Millisecond})
	sup := rt.Supervisor()
	sup.Check()
	calls0, _ := rt.Lib().Stats()
	sup.Check() // within the interval while Healthy: no ping
	calls1, _ := rt.Lib().Stats()
	if calls1 != calls0 {
		t.Fatalf("rate-limited Check still pinged (%d -> %d calls)", calls0, calls1)
	}
	rt.Clock().Advance(2 * time.Millisecond)
	sup.Check()
	calls2, _ := rt.Lib().Stats()
	if calls2 == calls1 {
		t.Fatal("Check after the interval did not ping")
	}
}

func TestSupervisorMaxRestartsExhaustion(t *testing.T) {
	rt := newFaultyRuntime(t, faults.Mix{Seed: 5}, SupervisorConfig{MaxRestarts: 1})
	lib, daemon := rt.Lib(), rt.Daemon()

	daemon.InjectCrash(false)
	if _, r := lib.CuMemAlloc(64); r != cuda.Success {
		t.Fatalf("first crash should recover (budget 1): %s", r)
	}
	daemon.InjectCrash(false)
	if _, r := lib.CuMemAlloc(64); r != cuda.ErrNotReady {
		t.Fatalf("second crash exceeded the budget; want CUDA_ERROR_SYSTEM_NOT_READY, got %s", r)
	}
	if rt.Supervisor().State() != StateDead {
		t.Fatalf("supervisor state %s, want Dead", rt.Supervisor().State())
	}
	if lib.Healthy() {
		t.Fatal("lib healthy with a dead, unrestartable daemon")
	}
}

func TestSupervisorRaceWithConcurrentClients(t *testing.T) {
	// Concurrent remoted calls, injected crashes, and heartbeat checks:
	// run under -race this exercises every supervisor/lib/daemon lock.
	rt := newFaultyRuntime(t, faults.Mix{Seed: 6}, SupervisorConfig{})
	lib, daemon, sup := rt.Lib(), rt.Daemon(), rt.Supervisor()

	const workers, per = 4, 50
	var wg sync.WaitGroup
	errs := make(chan string, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if w == 0 && i%10 == 3 {
					daemon.InjectCrash(i%20 == 3)
				}
				if w == 1 && i%7 == 0 {
					sup.Check()
				}
				ptr, r := lib.CuMemAlloc(64)
				if r != cuda.Success {
					errs <- "alloc: " + r.String()
					return
				}
				if r := lib.CuMemFree(ptr); r != cuda.Success {
					errs <- "free: " + r.String()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if t.Failed() {
		t.Logf("restarts=%d transitions=%v", daemon.Restarts(), sup.Transitions())
	}
}
