package core

import (
	"testing"
	"time"

	"lakego/internal/cuda"
	"lakego/internal/features"
	"lakego/internal/policy"
	"lakego/internal/shm"
)

func boot(t *testing.T) *Runtime {
	t.Helper()
	rt, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestNewBootsAndInits(t *testing.T) {
	rt := boot(t)
	// CuInit already ran during boot; device queries succeed immediately.
	n, r := rt.Lib().CuDeviceGetCount()
	if r != cuda.Success || n != 1 {
		t.Fatalf("CuDeviceGetCount = %d, %v", n, r)
	}
	if rt.Region().Size() != shm.DefaultRegionSize {
		t.Fatalf("region = %d bytes", rt.Region().Size())
	}
}

func TestNewZeroConfigGetsDefaults(t *testing.T) {
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Device().Spec().MemoryBytes == 0 {
		t.Fatal("GPU spec defaults not applied")
	}
}

func TestEndToEndVecAddThroughRuntime(t *testing.T) {
	rt := boot(t)
	rt.RegisterKernel(cuda.VecAddKernel())
	lib := rt.Lib()
	ctx, _ := lib.CuCtxCreate("app")
	mod, _ := lib.CuModuleLoad("m")
	fn, r := lib.CuModuleGetFunction(mod, "vecadd")
	if r != cuda.Success {
		t.Fatal(r)
	}
	const n = 16
	buf, _ := rt.Region().Alloc(4 * n)
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = 2
	}
	cuda.PutFloat32s(buf.Bytes(), vals)
	ap, _ := lib.CuMemAlloc(4 * n)
	cp, _ := lib.CuMemAlloc(4 * n)
	lib.CuMemcpyHtoDShm(ap, buf, 4*n)
	if r := lib.CuLaunchKernel(ctx, fn, []uint64{uint64(ap), uint64(ap), uint64(cp), n}); r != cuda.Success {
		t.Fatal(r)
	}
	out, _ := rt.Region().Alloc(4 * n)
	lib.CuMemcpyDtoHShm(out, cp, 4*n)
	got, _ := cuda.Float32s(out.Bytes(), n)
	for i := range got {
		if got[i] != 4 {
			t.Fatalf("got[%d] = %v, want 4", i, got[i])
		}
	}
	st := rt.Stats()
	if st.RemotedCalls < 6 || st.KernelLaunches != 1 || st.VirtualTime == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdaptivePolicyUsesRemotedNVML(t *testing.T) {
	rt := boot(t)
	rt.Clock().Advance(time.Second)
	pol := rt.NewAdaptivePolicy(policy.AdaptiveConfig{
		UtilThreshold: 40, BatchThreshold: 8, Window: 1,
	})
	// Idle device, large batch: GPU.
	if got := pol.Decide(64); got != policy.UseGPU {
		t.Fatalf("idle decide = %v, want GPU", got)
	}
	// Saturate the device, advance past the rate limit, decide again: CPU.
	rt.Device().Execute("hog", 100*time.Millisecond, nil)
	rt.Clock().Advance(10 * time.Millisecond)
	for i := 0; i < 3; i++ {
		rt.Clock().Advance(6 * time.Millisecond)
		pol.Decide(64)
	}
	if got := pol.Decide(64); got != policy.UseCPU {
		t.Fatalf("contended decide = %v, want CPU", got)
	}
}

func TestInstallVMPolicy(t *testing.T) {
	rt := boot(t)
	rt.Clock().Advance(time.Second)
	vp, err := rt.InstallVMPolicy(policy.Figure3Program(40, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := vp.Decide(64); got != policy.UseGPU {
		t.Fatalf("idle decide = %v, want GPU", got)
	}
	if got := vp.Decide(2); got != policy.UseCPU {
		t.Fatalf("small batch = %v, want CPU", got)
	}
	// Broken program is rejected by the verifier.
	if _, err := rt.InstallVMPolicy(policy.Program{{Op: policy.OpJmp, Off: -1}, {Op: policy.OpExit}}, 1); err == nil {
		t.Fatal("verifier accepted broken program")
	}
}

func TestFeatureRegistryIntegration(t *testing.T) {
	rt := boot(t)
	reg, err := rt.Features().CreateRegistry("sda1", "bio", features.Schema{
		{Key: "pend_ios", Size: 8, Entries: 1},
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	reg.BeginCapture(rt.Clock().Now())
	reg.CaptureFeatureIncr("pend_ios", 2)
	reg.CommitCapture(rt.Clock().Now())
	if got := reg.Len(); got != 1 {
		t.Fatalf("registry len = %d", got)
	}
}

func TestCloseStopsRemoting(t *testing.T) {
	rt := boot(t)
	rt.Close()
	if _, r := rt.Lib().CuMemAlloc(64); r == cuda.Success {
		t.Fatal("remoted call succeeded after Close")
	}
}

func TestDaemonAccessorAndHighLevelViaRuntime(t *testing.T) {
	rt := boot(t)
	rt.Daemon().RegisterHighLevel("echo", func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
		return args, blob, cuda.Success
	})
	vals, blob, r := rt.Lib().CallHighLevel("echo", []uint64{5}, []byte{9})
	if r != cuda.Success || vals[0] != 5 || blob[0] != 9 {
		t.Fatalf("echo = %v %v %v", vals, blob, r)
	}
}

func TestAdaptivePolicyTreatsQueryFailureAsContended(t *testing.T) {
	rt := boot(t)
	rt.Close() // kill the transport: NVML queries now fail
	pol := rt.NewAdaptivePolicy(policy.AdaptiveConfig{UtilThreshold: 40, BatchThreshold: 1, Window: 1})
	if got := pol.Decide(1024); got != policy.UseCPU {
		t.Fatalf("decide with dead NVML = %v, want CPU (fail safe)", got)
	}
}
