package core

import (
	"fmt"
	"sync"
	"time"

	"lakego/internal/flightrec"
	"lakego/internal/remoting"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

// DaemonState is the supervisor's view of lakeD, following the recovery
// state machine documented in DESIGN.md:
//
//	Healthy -> Suspected -> Dead -> Restarting -> ReAttached -> Healthy
//
// Suspected is entered on the first unresponsive report or failed
// heartbeat; Dead when the failure threshold is reached; Restarting while
// the replacement process is launched; ReAttached once the shm region and
// sequence journal are re-bound, pending a confirming heartbeat.
type DaemonState int

const (
	StateHealthy DaemonState = iota
	StateSuspected
	StateDead
	StateRestarting
	StateReAttached
)

var stateNames = [...]string{"Healthy", "Suspected", "Dead", "Restarting", "ReAttached"}

func (s DaemonState) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("DaemonState(%d)", int(s))
	}
	return stateNames[s]
}

// SupervisorConfig parameterizes lakeD supervision.
type SupervisorConfig struct {
	// FailThreshold is the number of consecutive unresponsive reports
	// before the daemon is declared dead and restarted (default 2: the
	// first report only raises suspicion and grants a fresh retry round).
	FailThreshold int
	// MaxRestarts bounds restarts over the supervisor's lifetime; beyond
	// it the daemon stays Dead and clients fall back to CPU (default 16).
	MaxRestarts int64
	// HeartbeatInterval rate-limits Check pings on the virtual clock
	// (default 1ms): a Check within the interval of the previous one is a
	// no-op while Healthy.
	HeartbeatInterval time.Duration
	// RestartCost is the virtual time one restart takes — fork/exec of
	// lakeD, CUDA context re-acquisition, lakeShm re-attach (default
	// 250µs).
	RestartCost time.Duration
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 16
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Millisecond
	}
	if c.RestartCost <= 0 {
		c.RestartCost = 250 * time.Microsecond
	}
	return c
}

// Transition is one recorded state change, timestamped on the virtual
// clock, for post-mortem attribution in chaos runs.
type Transition struct {
	From, To DaemonState
	At       time.Duration
	Cause    string
}

// Supervisor watches lakeD and brings it back: it is the remoting
// RecoveryHook invoked when a client call exhausts a retry round, and it
// runs periodic heartbeats via Check. Recovery restarts the daemon process
// and re-attaches its persistent state (CUDA contexts survive in the
// driver; lakeShm and the sequence journal are re-bound), after which
// in-flight commands are redelivered and deduplicated by the journal.
type Supervisor struct {
	clock  *vtime.Clock
	daemon *remoting.Daemon
	lib    *remoting.Lib
	cfg    SupervisorConfig

	mu          sync.Mutex
	state       DaemonState
	failures    int // consecutive unresponsive reports since last success
	restarts    int64
	lastBeat    time.Duration
	beatValid   bool
	transitions []Transition

	tel SupervisorTelemetry

	// rec receives supervisor-domain transition events; nil-safe. Entering
	// Dead or Restarting triggers an automatic dump — the rings are the
	// post-mortem artifact of the recovery.
	rec *flightrec.Recorder
}

// SupervisorTelemetry is the supervisor's instrument set; all fields may
// be nil.
type SupervisorTelemetry struct {
	// TransitionsTotal counts recorded state changes.
	TransitionsTotal *telemetry.Counter
	// Restarts counts daemon relaunches.
	Restarts *telemetry.Counter
	// State holds the current DaemonState ordinal.
	State *telemetry.Gauge
}

// SetTelemetry attaches instruments. Must be called during runtime
// construction, before supervision traffic.
func (s *Supervisor) SetTelemetry(tel SupervisorTelemetry) {
	s.tel = tel
	s.tel.State.Set(int64(StateHealthy))
}

// SetFlightRecorder attaches the flight recorder. Must be called during
// runtime construction, before supervision traffic.
func (s *Supervisor) SetFlightRecorder(rec *flightrec.Recorder) {
	s.rec = rec
}

// NewSupervisor creates a supervisor for the runtime's daemon and lib.
func NewSupervisor(clock *vtime.Clock, daemon *remoting.Daemon, lib *remoting.Lib, cfg SupervisorConfig) *Supervisor {
	return &Supervisor{
		clock:  clock,
		daemon: daemon,
		lib:    lib,
		cfg:    cfg.withDefaults(),
	}
}

// State returns the supervisor's current view of the daemon.
func (s *Supervisor) State() DaemonState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Healthy reports whether the daemon is in the Healthy state.
func (s *Supervisor) Healthy() bool { return s.State() == StateHealthy }

// Restarts counts restarts performed by this supervisor.
func (s *Supervisor) Restarts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// Transitions returns the recorded state-change audit log.
func (s *Supervisor) Transitions() []Transition {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Transition, len(s.transitions))
	copy(out, s.transitions)
	return out
}

func (s *Supervisor) setStateLocked(to DaemonState, cause string) {
	if s.state == to {
		return
	}
	from := s.state
	s.transitions = append(s.transitions, Transition{
		From: from, To: to, At: s.clock.Now(), Cause: cause,
	})
	s.tel.TransitionsTotal.Inc()
	s.tel.State.Set(int64(to))
	s.state = to
	s.rec.Emit(flightrec.DomainSupervisor, flightrec.EvTransition,
		0, 0, 0, uint64(from), uint64(to), 0)
	if to == StateDead || to == StateRestarting {
		s.rec.TriggerDump("supervisor-" + to.String())
	}
}

// DaemonUnresponsive implements remoting.RecoveryHook. It is invoked with
// lakeLib's call lock held, after one call has exhausted a full retry
// round. The first report raises Suspected and grants another round; at
// FailThreshold the daemon is declared Dead and restarted. Returning true
// tells the client to redeliver — exactly-once is preserved by the
// daemon-side journal.
func (s *Supervisor) DaemonUnresponsive(api remoting.APIID, seq uint64, err error) bool {
	s.mu.Lock()
	s.failures++
	cause := fmt.Sprintf("%s seq=%d unresponsive: %v", api, seq, err)
	if s.state == StateHealthy || s.state == StateReAttached {
		s.setStateLocked(StateSuspected, cause)
	}
	if s.failures < s.cfg.FailThreshold && !s.daemon.Crashed() {
		// Not yet conclusive (and the process is visibly alive — likely
		// channel loss, not a crash): grant another retry round.
		s.mu.Unlock()
		return true
	}
	s.setStateLocked(StateDead, cause)
	if s.restarts >= s.cfg.MaxRestarts {
		s.mu.Unlock()
		return false
	}
	s.setStateLocked(StateRestarting, "relaunching lakeD")
	s.restarts++
	s.tel.Restarts.Inc()
	s.mu.Unlock()

	// Pay the fork/exec + re-attach cost, then bring the process back with
	// its shm-backed state (journal included).
	s.clock.Advance(s.cfg.RestartCost)
	s.daemon.Restart()

	s.mu.Lock()
	s.failures = 0
	s.setStateLocked(StateReAttached, fmt.Sprintf("gen=%d shm+journal re-attached", s.daemon.Generation()))
	s.mu.Unlock()
	s.lib.MarkRecovered()
	return true
}

// Abandon declares the daemon permanently Dead and exhausts the restart
// budget. The fleet invokes it after migrating a killed shard's journal and
// clients away: relaunching the process would resurrect a shard the router
// no longer routes to, splitting the exactly-once journal in two.
func (s *Supervisor) Abandon(cause string) {
	s.mu.Lock()
	s.restarts = s.cfg.MaxRestarts
	s.setStateLocked(StateDead, cause)
	s.mu.Unlock()
}

// Check runs one heartbeat round and returns the resulting state. While
// Healthy, checks within HeartbeatInterval of the previous one are no-ops.
// A successful ping confirms liveness (ReAttached/Suspected -> Healthy); a
// failed one raises suspicion, and a visibly crashed daemon is restarted
// out-of-band — the path that recovers crashes happening between client
// calls.
func (s *Supervisor) Check() DaemonState {
	now := s.clock.Now()
	s.mu.Lock()
	if s.state == StateHealthy && s.beatValid && now-s.lastBeat < s.cfg.HeartbeatInterval {
		defer s.mu.Unlock()
		return s.state
	}
	s.lastBeat = now
	s.beatValid = true
	s.mu.Unlock()

	// The ping itself runs the resilient call path; if this supervisor is
	// armed as its recovery hook, a crashed daemon may be restarted from
	// inside the ping.
	gen, _, ok := s.lib.Ping()
	if ok {
		s.mu.Lock()
		s.failures = 0
		s.setStateLocked(StateHealthy, fmt.Sprintf("heartbeat ok gen=%d", gen))
		st := s.state
		s.mu.Unlock()
		s.lib.MarkRecovered()
		return st
	}

	s.mu.Lock()
	s.failures++
	if s.state == StateHealthy {
		s.setStateLocked(StateSuspected, "heartbeat missed")
	}
	crashed := s.daemon.Crashed()
	canRestart := s.restarts < s.cfg.MaxRestarts
	if !crashed || !canRestart {
		if crashed {
			s.setStateLocked(StateDead, "restart budget exhausted")
		}
		defer s.mu.Unlock()
		return s.state
	}
	s.setStateLocked(StateDead, "heartbeat missed and process down")
	s.setStateLocked(StateRestarting, "relaunching lakeD")
	s.restarts++
	s.tel.Restarts.Inc()
	s.mu.Unlock()

	s.clock.Advance(s.cfg.RestartCost)
	s.daemon.Restart()

	s.mu.Lock()
	s.failures = 0
	s.setStateLocked(StateReAttached, fmt.Sprintf("gen=%d shm+journal re-attached", s.daemon.Generation()))
	s.mu.Unlock()

	if _, _, ok := s.lib.Ping(); ok {
		s.mu.Lock()
		s.setStateLocked(StateHealthy, "post-restart heartbeat ok")
		st := s.state
		s.mu.Unlock()
		s.lib.MarkRecovered()
		return st
	}
	return s.State()
}
