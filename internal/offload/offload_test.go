package offload

import (
	"testing"
	"time"

	"lakego/internal/core"
)

func boot(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func doubler(x []float32) []float32 {
	out := make([]float32, len(x))
	for i, v := range x {
		out[i] = 2 * v
	}
	return out
}

func cfg(name string) Config {
	return Config{
		Name: name, InputWidth: 4, OutputWidth: 4, MaxBatch: 64,
		CPUFixed: 2 * time.Microsecond, CPUPerItem: 1200 * time.Nanosecond,
		FlopsPerItem: 1000, Forward: doubler,
	}
}

func TestConfigValidation(t *testing.T) {
	rt := boot(t)
	bad := []Config{
		{},
		{Name: "x", InputWidth: 0, OutputWidth: 1, MaxBatch: 1},
		{Name: "x", InputWidth: 1, OutputWidth: 0, MaxBatch: 1},
		{Name: "x", InputWidth: 1, OutputWidth: 1, MaxBatch: 0},
	}
	for i, c := range bad {
		if _, err := NewRunner(rt, c); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestCPUAndLAKEProduceSameOutputs(t *testing.T) {
	rt := boot(t)
	r, err := NewRunner(rt, cfg("dbl"))
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}}
	cpuOut, cpuT := r.RunCPU(batch)
	lakeOut, lakeT, err := r.RunLAKE(batch, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		for j := range batch[i] {
			if cpuOut[i][j] != 2*batch[i][j] || lakeOut[i][j] != 2*batch[i][j] {
				t.Fatalf("outputs wrong: cpu=%v lake=%v", cpuOut[i], lakeOut[i])
			}
		}
	}
	if want := 2*time.Microsecond + 2*1200*time.Nanosecond; cpuT != want {
		t.Fatalf("cpu time = %v, want %v", cpuT, want)
	}
	if lakeT <= 0 {
		t.Fatalf("lake time = %v", lakeT)
	}
}

func TestTimingOnlyKernel(t *testing.T) {
	rt := boot(t)
	c := cfg("timing")
	c.Forward = nil
	r, err := NewRunner(rt, c)
	if err != nil {
		t.Fatal(err)
	}
	out, d, err := r.RunLAKE([][]float32{{1, 2, 3, 4}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("no time charged")
	}
	for _, v := range out[0] {
		if v != 0 {
			t.Fatalf("timing-only kernel produced %v", out[0])
		}
	}
	cpuOut, _ := r.RunCPU([][]float32{{1, 2, 3, 4}})
	if len(cpuOut[0]) != 4 {
		t.Fatal("cpu timing-only output wrong width")
	}
}

func TestRunLAKEValidation(t *testing.T) {
	rt := boot(t)
	r, _ := NewRunner(rt, cfg("val"))
	if _, _, err := r.RunLAKE(make([][]float32, 65), true); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if _, _, err := r.RunLAKE([][]float32{{1}}, true); err == nil {
		t.Fatal("narrow item accepted")
	}
	if out, d, err := r.RunLAKE(nil, true); err != nil || out != nil || d != 0 {
		t.Fatal("empty batch should be a no-op")
	}
}

func TestSweepAndCrossover(t *testing.T) {
	rt := boot(t)
	r, _ := NewRunner(rt, cfg("sweep"))
	pts, err := Sweep(r, []int{1, 8, 64}, func(i int) []float32 {
		return []float32{float32(i), 0, 0, 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// CPU grows linearly, LAKE is ~flat: with 1µs/item vs ~70µs fixed,
	// crossover must be 64.
	if got := Crossover(pts); got != 64 {
		for _, p := range pts {
			t.Logf("batch %d: cpu=%v lake=%v sync=%v", p.Batch, p.CPU, p.LAKE, p.LAKESync)
		}
		t.Fatalf("crossover = %d, want 64", got)
	}
	// Sync always costs at least async.
	for _, p := range pts {
		if p.LAKESync < p.LAKE {
			t.Fatalf("sync %v < async %v at batch %d", p.LAKESync, p.LAKE, p.Batch)
		}
	}
	if _, err := Sweep(r, []int{128}, func(int) []float32 { return nil }); err == nil {
		t.Fatal("sweep beyond MaxBatch accepted")
	}
}

func TestCrossoverNever(t *testing.T) {
	pts := []SweepPoint{{Batch: 1, CPU: 1, LAKE: 2}, {Batch: 2, CPU: 2, LAKE: 3}}
	if got := Crossover(pts); got != 0 {
		t.Fatalf("Crossover = %d, want 0", got)
	}
}

func TestStandardBatches(t *testing.T) {
	b := StandardBatches()
	if len(b) != 11 || b[0] != 1 || b[10] != 1024 {
		t.Fatalf("StandardBatches = %v", b)
	}
}

func TestRunnerConfigAccessorAndBadForward(t *testing.T) {
	rt := boot(t)
	c := cfg("badfwd")
	c.Forward = func(x []float32) []float32 { return []float32{1} } // wrong width
	r, err := NewRunner(rt, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Config().Name != "badfwd" {
		t.Fatal("Config accessor wrong")
	}
	// Wrong-width forward output surfaces as a launch failure.
	if _, _, err := r.RunLAKE([][]float32{{1, 2, 3, 4}}, true); err == nil {
		t.Fatal("wrong-width forward accepted on the GPU path")
	}
}

func TestNewRunnerDuplicateKernelNameOK(t *testing.T) {
	// Registering twice overwrites in the flat namespace; NewRunner must
	// still wire up cleanly.
	rt := boot(t)
	if _, err := NewRunner(rt, cfg("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(rt, cfg("dup")); err != nil {
		t.Fatal(err)
	}
}
