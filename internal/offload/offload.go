// Package offload provides the shared harness the ML-assisted subsystems
// use to run batched inference either on the kernel CPU path or through
// LAKE's remoted CUDA path, and to sweep batch sizes for the profitability
// figures (Figs 10, 11, 12) and Table 3's crossover points.
//
// Each workload package wraps a Runner with its own model, feature width
// and calibrated kernel-space CPU cost; the Runner owns the device kernel
// registration, lakeShm staging buffers and the measurement protocol
// (LAKE vs LAKE-sync, mirroring §7's "with and without synchronous data
// movement").
package offload

import (
	"fmt"
	"sync"
	"time"

	"lakego/internal/core"
	"lakego/internal/cuda"
	"lakego/internal/gpu"
	"lakego/internal/policy"
	"lakego/internal/shm"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

// Config describes one offloadable classifier.
type Config struct {
	// Name is the device-kernel symbol (must be unique per runtime).
	Name string
	// InputWidth / OutputWidth are per-item float32 counts.
	InputWidth, OutputWidth int
	// MaxBatch bounds one staged batch.
	MaxBatch int
	// CPUFixed is the per-invocation kernel-space cost (kernel_fpu
	// bracketing etc.); CPUPerItem is the per-inference cost.
	CPUFixed, CPUPerItem time.Duration
	// FlopsPerItem drives the GPU compute-time model.
	FlopsPerItem float64
	// Forward computes one item's real output. May be nil for
	// timing-only configurations (e.g. the large malware sweeps), in
	// which case outputs are zero.
	Forward func(x []float32) []float32
	// ForwardProvider, when non-nil, is resolved once per batch to obtain
	// the forward function, overriding Forward. It is the model-lifecycle
	// hot-swap hook: resolving per batch (instead of reading a mutable
	// Forward per item) guarantees a batch never mixes model versions.
	ForwardProvider func() func(x []float32) []float32
}

// forward resolves the per-batch forward function (nil = timing-only).
func (c Config) forward() func(x []float32) []float32 {
	if c.ForwardProvider != nil {
		return c.ForwardProvider()
	}
	return c.Forward
}

func (c Config) validate() error {
	if c.Name == "" {
		return fmt.Errorf("offload: config needs a kernel name")
	}
	if c.InputWidth <= 0 || c.OutputWidth <= 0 || c.MaxBatch <= 0 {
		return fmt.Errorf("offload: %s: invalid dimensions %dx%d max %d",
			c.Name, c.InputWidth, c.OutputWidth, c.MaxBatch)
	}
	return nil
}

// Runner executes one classifier on either path.
type Runner struct {
	rt  *core.Runtime
	cfg Config

	ctx, fn       uint64
	devIn, devOut gpu.DevPtr
	inBuf, outBuf *shm.Buffer

	// stageMu serializes RunLAKE: the staging buffers and device slabs are
	// one per runner, so concurrent remoted runs must not interleave.
	stageMu sync.Mutex

	// gpuLat / cpuLat are the runtime's shared per-item latency series
	// (the same histograms the batcher feeds and the Fig 3 policy's
	// observed-latency mode reads); nil without telemetry.
	gpuLat, cpuLat *telemetry.Histogram
}

// NewRunner registers the device kernel and stages buffers.
func NewRunner(rt *core.Runtime, cfg Config) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Runner{rt: rt, cfg: cfg}
	if tel := rt.Telemetry(); tel != nil {
		r.gpuLat = tel.Histogram(telemetry.MetricGPUItemLatency, "Observed per-item GPU-path latency (virtual ns).", telemetry.DefaultLatencyBuckets())
		r.cpuLat = tel.Histogram(telemetry.MetricCPUItemLatency, "Observed per-item CPU-path latency (virtual ns).", telemetry.DefaultLatencyBuckets())
	}
	rt.RegisterKernel(&cuda.Kernel{
		Name:  cfg.Name,
		Flops: func(args []uint64) float64 { return float64(args[2]) * cfg.FlopsPerItem },
		Body:  r.kernelBody,
	})
	lib := rt.Lib()
	ctx, res := lib.CuCtxCreate("kernel-" + cfg.Name)
	if res != cuda.Success {
		return nil, res.Err()
	}
	mod, res := lib.CuModuleLoad(cfg.Name + ".cubin")
	if res != cuda.Success {
		return nil, res.Err()
	}
	fn, res := lib.CuModuleGetFunction(mod, cfg.Name)
	if res != cuda.Success {
		return nil, res.Err()
	}
	r.ctx, r.fn = ctx, fn

	inBytes := int64(4 * cfg.InputWidth * cfg.MaxBatch)
	outBytes := int64(4 * cfg.OutputWidth * cfg.MaxBatch)
	if r.devIn, res = lib.CuMemAlloc(inBytes); res != cuda.Success {
		return nil, res.Err()
	}
	if r.devOut, res = lib.CuMemAlloc(outBytes); res != cuda.Success {
		return nil, res.Err()
	}
	var err error
	if r.inBuf, err = rt.Region().Alloc(inBytes); err != nil {
		return nil, err
	}
	if r.outBuf, err = rt.Region().Alloc(outBytes); err != nil {
		return nil, err
	}
	return r, nil
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

func (r *Runner) kernelBody(dev *gpu.Device, args []uint64) error {
	if len(args) != 3 {
		return fmt.Errorf("%s: want 3 args, got %d", r.cfg.Name, len(args))
	}
	n := int(args[2])
	if n <= 0 || n > r.cfg.MaxBatch {
		return fmt.Errorf("%s: batch %d out of range", r.cfg.Name, n)
	}
	fwd := r.cfg.forward()
	if fwd == nil {
		return nil // timing-only kernel
	}
	inMem, err := dev.Bytes(gpu.DevPtr(args[0]))
	if err != nil {
		return err
	}
	outMem, err := dev.Bytes(gpu.DevPtr(args[1]))
	if err != nil {
		return err
	}
	flat, err := cuda.Float32s(inMem, n*r.cfg.InputWidth)
	if err != nil {
		return err
	}
	out := make([]float32, 0, n*r.cfg.OutputWidth)
	for i := 0; i < n; i++ {
		y := fwd(flat[i*r.cfg.InputWidth : (i+1)*r.cfg.InputWidth])
		if len(y) != r.cfg.OutputWidth {
			return fmt.Errorf("%s: forward returned %d outputs, want %d",
				r.cfg.Name, len(y), r.cfg.OutputWidth)
		}
		out = append(out, y...)
	}
	return cuda.PutFloat32s(outMem, out)
}

// RunCPU executes the batch on the kernel CPU path: real outputs (when
// Forward is set) with the calibrated kernel-space cost charged.
func (r *Runner) RunCPU(batch [][]float32) ([][]float32, time.Duration) {
	fwd := r.cfg.forward() // resolved once: the whole batch runs one model version
	out := make([][]float32, len(batch))
	for i, x := range batch {
		if fwd != nil {
			out[i] = fwd(x)
		} else {
			out[i] = make([]float32, r.cfg.OutputWidth)
		}
	}
	cost := r.cfg.CPUFixed + time.Duration(len(batch))*r.cfg.CPUPerItem
	r.rt.Clock().Advance(cost)
	if len(batch) > 0 {
		r.cpuLat.ObserveDuration(cost / time.Duration(len(batch)))
	}
	return out, cost
}

// RunLAKE executes the batch through the full remoted stack. With sync the
// input staging copy is on the measured critical path ("LAKE (sync.)");
// otherwise it is charged before timing starts ("LAKE").
func (r *Runner) RunLAKE(batch [][]float32, sync bool) ([][]float32, time.Duration, error) {
	n := len(batch)
	if n == 0 {
		return nil, 0, nil
	}
	if n > r.cfg.MaxBatch {
		return nil, 0, fmt.Errorf("%s: batch %d exceeds max %d", r.cfg.Name, n, r.cfg.MaxBatch)
	}
	r.stageMu.Lock()
	defer r.stageMu.Unlock()
	flat := make([]float32, 0, n*r.cfg.InputWidth)
	for _, x := range batch {
		if len(x) != r.cfg.InputWidth {
			return nil, 0, fmt.Errorf("%s: item width %d, want %d", r.cfg.Name, len(x), r.cfg.InputWidth)
		}
		flat = append(flat, x...)
	}
	if err := cuda.PutFloat32s(r.inBuf.Bytes(), flat); err != nil {
		return nil, 0, err
	}
	lib := r.rt.Lib()
	inBytes := int64(4 * n * r.cfg.InputWidth)
	outBytes := int64(4 * n * r.cfg.OutputWidth)
	copyIn := func() error {
		if res := lib.CuMemcpyHtoDShm(r.devIn, r.inBuf, inBytes); res != cuda.Success {
			return res.Err()
		}
		return nil
	}
	var sw vtime.Stopwatch
	if sync {
		sw = vtime.StartStopwatch(r.rt.Clock())
		if err := copyIn(); err != nil {
			return nil, 0, err
		}
	} else {
		if err := copyIn(); err != nil {
			return nil, 0, err
		}
		sw = vtime.StartStopwatch(r.rt.Clock())
	}
	if res := lib.CuLaunchKernel(r.ctx, r.fn, []uint64{uint64(r.devIn), uint64(r.devOut), uint64(n)}); res != cuda.Success {
		return nil, 0, res.Err()
	}
	if res := lib.CuMemcpyDtoHShm(r.outBuf, r.devOut, outBytes); res != cuda.Success {
		return nil, 0, res.Err()
	}
	elapsed := sw.Elapsed()
	r.gpuLat.ObserveDuration(elapsed / time.Duration(n))

	vals, err := cuda.Float32s(r.outBuf.Bytes(), n*r.cfg.OutputWidth)
	if err != nil {
		return nil, 0, err
	}
	out := make([][]float32, n)
	for i := range out {
		out[i] = vals[i*r.cfg.OutputWidth : (i+1)*r.cfg.OutputWidth]
	}
	return out, elapsed, nil
}

// RunAuto routes one batch through pol (the Fig 3 profitability policy)
// and executes it on the decided path. A GPU-routed batch that fails
// because lakeD is unavailable (CUDA_ERROR_SYSTEM_NOT_READY — declared
// dead and unrecovered) transparently completes on the kernel CPU
// fallback; other remoted errors are returned. The returned Decision is
// the path that actually produced the outputs.
func (r *Runner) RunAuto(batch [][]float32, pol policy.Func) ([][]float32, policy.Decision, time.Duration, error) {
	dec := policy.UseGPU
	if pol != nil {
		dec = pol(len(batch))
	}
	if dec == policy.UseGPU {
		out, d, err := r.RunLAKE(batch, true)
		if err == nil {
			return out, policy.UseGPU, d, nil
		}
		if res, ok := cuda.AsResult(err); !ok || res != cuda.ErrNotReady {
			return nil, policy.UseGPU, 0, err
		}
	}
	out, d := r.RunCPU(batch)
	return out, policy.UseCPU, d, nil
}

// SweepPoint is one batch-size measurement across execution paths.
type SweepPoint struct {
	Batch    int
	CPU      time.Duration
	LAKE     time.Duration
	LAKESync time.Duration
}

// Sweep measures the runner at each batch size; mkItem generates the i-th
// input of a batch.
func Sweep(r *Runner, batches []int, mkItem func(i int) []float32) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(batches))
	for _, b := range batches {
		if b > r.cfg.MaxBatch {
			return nil, fmt.Errorf("offload: sweep batch %d exceeds max %d", b, r.cfg.MaxBatch)
		}
		batch := make([][]float32, b)
		for i := range batch {
			batch[i] = mkItem(i)
		}
		_, cpuT := r.RunCPU(batch)
		_, asyncT, err := r.RunLAKE(batch, false)
		if err != nil {
			return nil, err
		}
		_, syncT, err := r.RunLAKE(batch, true)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{Batch: b, CPU: cpuT, LAKE: asyncT, LAKESync: syncT})
	}
	return points, nil
}

// Crossover returns the smallest measured batch where the LAKE (async)
// path beats the CPU path, or 0 if it never does.
func Crossover(points []SweepPoint) int {
	for _, p := range points {
		if p.LAKE < p.CPU {
			return p.Batch
		}
	}
	return 0
}

// StandardBatches is the 1..1024 power-of-two x-axis of Figs 8, 10, 11.
func StandardBatches() []int {
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}
