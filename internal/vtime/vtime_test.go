package vtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueStartsAtZero(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(3 * time.Microsecond)
	c.Advance(7 * time.Microsecond)
	if got, want := c.Now(), 10*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceReturnsNewTime(t *testing.T) {
	c := New()
	if got := c.Advance(time.Millisecond); got != time.Millisecond {
		t.Fatalf("Advance returned %v, want 1ms", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestAdvanceToMovesForwardOnly(t *testing.T) {
	c := New()
	c.Advance(100)
	if got := c.AdvanceTo(50); got != 100 {
		t.Fatalf("AdvanceTo(50) after t=100 returned %v, want 100", got)
	}
	if got := c.AdvanceTo(250); got != 250 {
		t.Fatalf("AdvanceTo(250) = %v, want 250", got)
	}
	if got := c.Now(); got != 250 {
		t.Fatalf("Now() = %v, want 250", got)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() after Reset = %v, want 0", got)
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	sw := StartStopwatch(c)
	c.Advance(42 * time.Microsecond)
	if got, want := sw.Elapsed(), 42*time.Microsecond; got != want {
		t.Fatalf("Elapsed() = %v, want %v", got, want)
	}
}

func TestConcurrentAdvanceSumsExactly(t *testing.T) {
	c := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), time.Duration(workers*perWorker); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

// Property: for any sequence of non-negative advances, Now equals their sum
// and never decreases along the way.
func TestQuickAdvanceMonotonic(t *testing.T) {
	f := func(steps []uint16) bool {
		c := New()
		var sum time.Duration
		prev := time.Duration(0)
		for _, s := range steps {
			d := time.Duration(s)
			now := c.Advance(d)
			sum += d
			if now < prev || now != sum {
				return false
			}
			prev = now
		}
		return c.Now() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
