// Package vtime provides the deterministic virtual clock that every
// simulated component in this repository runs on.
//
// The LAKE paper measures wall-clock time on a physical testbed (Xeon CPUs,
// A100 GPUs, NVMe devices). This reproduction replaces each hardware
// component with an analytic cost model; vtime.Clock is the shared notion of
// "now" those models advance. Using virtual rather than wall time makes every
// experiment deterministic and lets benchmarks report simulated microseconds
// that are independent of the host the suite runs on.
package vtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a monotonic virtual clock counting simulated nanoseconds.
//
// The zero value is a clock at t=0, ready to use. Reads and advances are
// safe for concurrent use; experiments that need strict determinism advance
// the clock from a single logical thread of control.
type Clock struct {
	now atomic.Int64
}

// New returns a clock starting at t=0.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time since the clock's epoch.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d and returns the new time.
// Advancing by a negative duration panics: virtual time is monotonic.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("vtime: Advance(%v): negative advance", d))
	}
	return time.Duration(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock forward to t if t is later than now, and returns
// the (possibly unchanged) current time. It is the building block for
// modelling a resource that becomes free at a known future instant.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return time.Duration(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// Reset rewinds the clock to zero. Only tests and experiment harnesses that
// reuse a simulation between runs should call it.
func (c *Clock) Reset() { c.now.Store(0) }

// Stopwatch measures elapsed virtual time on a clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartStopwatch begins measuring elapsed virtual time on c.
func StartStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports virtual time elapsed since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }
