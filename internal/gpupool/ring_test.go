package gpupool

import (
	"fmt"
	"testing"
)

// TestRingBalance: key ownership must be near-uniform. The original
// FNV-only ring concentrated 37% of sequential tenant-style keys on one of
// four members; with the avalanche finalizer every member's share of 1000
// keys must sit within 2x of fair.
func TestRingBalance(t *testing.T) {
	r := NewRing(4, 0, 42)
	counts := make(map[int]int)
	const keys = 1000
	for i := 0; i < keys; i++ {
		m := r.Pick(fmt.Sprintf("tenant-%d", i))
		if m < 0 || m >= 4 {
			t.Fatalf("Pick returned member %d", m)
		}
		counts[m]++
	}
	for m := 0; m < 4; m++ {
		if c := counts[m]; c < keys/8 || c > keys/2 {
			t.Fatalf("member %d owns %d of %d keys (counts %v), want near %d",
				m, c, keys, counts, keys/4)
		}
	}
}

// TestRingSeededAndSticky: the layout is a pure function of the seed, and
// removing a member moves only the keys that lived on it.
func TestRingSeededAndSticky(t *testing.T) {
	a, b := NewRing(4, 0, 7), NewRing(4, 0, 7)
	healthy := func(skip int) func(int) bool {
		return func(m int) bool { return m != skip }
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		m := a.Pick(key)
		if got := b.Pick(key); got != m {
			t.Fatalf("same seed, different placement for %q: %d vs %d", key, m, got)
		}
		moved := a.PickHealthy(key, healthy(3))
		if m != 3 && moved != m {
			t.Fatalf("key %q moved from %d to %d when member 3 died", key, m, moved)
		}
		if m == 3 && moved == 3 {
			t.Fatalf("key %q stayed on dead member 3", key)
		}
	}
	if NewRing(4, 0, 8).Pick("key-0") == a.Pick("key-0") &&
		NewRing(4, 0, 8).Pick("key-1") == a.Pick("key-1") &&
		NewRing(4, 0, 8).Pick("key-2") == a.Pick("key-2") &&
		NewRing(4, 0, 8).Pick("key-3") == a.Pick("key-3") &&
		NewRing(4, 0, 8).Pick("key-4") == a.Pick("key-4") {
		t.Fatal("two different seeds produced identical placements for 5 keys")
	}
}
