package gpupool

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Ring is a seeded consistent-hash ring over member ordinals 0..n-1, the
// placement structure behind the ConsistentHash policy. Each member owns
// `replicas` virtual points whose positions derive from (seed, member,
// replica) through FNV-1a plus an avalanche finalizer (FNV alone clusters
// badly on short, mostly-zero inputs, which skews arc ownership — see
// TestRingBalance), so the layout is a pure function of the seed:
// fixed-seed runs place identically, and changing the member count moves
// only the keys adjacent to the added or removed points.
//
// The fleet router walks the ring clockwise past unhealthy shards
// (PickHealthy), which is what makes drain and shard death re-route only
// the keys that lived on the lost member.
type Ring struct {
	hashes  []uint64 // sorted virtual-point positions
	members []int    // members[i] owns hashes[i]
	n       int
}

// DefaultRingReplicas is the virtual-point count per member: enough that
// key ownership is near-uniform at small member counts.
const DefaultRingReplicas = 64

// NewRing builds a ring over n members with the given virtual-point count
// per member (DefaultRingReplicas if <= 0).
func NewRing(n, replicas int, seed int64) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	r := &Ring{n: n}
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(seed))
	for m := 0; m < n; m++ {
		binary.LittleEndian.PutUint64(buf[8:], uint64(m))
		for v := 0; v < replicas; v++ {
			binary.LittleEndian.PutUint64(buf[16:], uint64(v))
			h := fnv.New64a()
			h.Write(buf[:])
			r.hashes = append(r.hashes, mix64(h.Sum64()))
			r.members = append(r.members, m)
		}
	}
	sort.Sort(ringOrder{r})
	return r
}

// mix64 is the splitmix64 finalizer: a bijective avalanche that spreads
// FNV's weakly-mixed output uniformly over the ring's key space.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Size returns the member count.
func (r *Ring) Size() int { return r.n }

// Pick returns the member owning key: the first virtual point at or after
// the key's hash, wrapping at the top of the ring.
func (r *Ring) Pick(key string) int {
	return r.PickHealthy(key, nil)
}

// PickHealthy returns the first member at or after key's hash for which
// healthy reports true (nil means all healthy), walking clockwise past
// unhealthy owners. Returns -1 when no member is healthy.
func (r *Ring) PickHealthy(key string, healthy func(int) bool) int {
	if len(r.hashes) == 0 {
		return -1
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	kh := mix64(h.Sum64())
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= kh })
	for i := 0; i < len(r.hashes); i++ {
		m := r.members[(start+i)%len(r.hashes)]
		if healthy == nil || healthy(m) {
			return m
		}
	}
	return -1
}

// ringOrder sorts the parallel hash/member slices by hash position, with
// the member ordinal as a tiebreak so equal hashes (vanishingly rare but
// possible) still order deterministically.
type ringOrder struct{ r *Ring }

func (o ringOrder) Len() int { return len(o.r.hashes) }
func (o ringOrder) Less(i, j int) bool {
	if o.r.hashes[i] != o.r.hashes[j] {
		return o.r.hashes[i] < o.r.hashes[j]
	}
	return o.r.members[i] < o.r.members[j]
}
func (o ringOrder) Swap(i, j int) {
	o.r.hashes[i], o.r.hashes[j] = o.r.hashes[j], o.r.hashes[i]
	o.r.members[i], o.r.members[j] = o.r.members[j], o.r.members[i]
}
