// Package gpupool manages a pool of N modeled accelerators behind pluggable
// placement policies.
//
// LAKE's evaluation runs on a single A100, but the architecture it argues
// for — many kernel subsystems sharing accelerator capacity through one
// trusted daemon — generalizes directly to multi-device hosts. The pool is
// that generalization: lakeD owns every device, contexts bind to a
// pool-selected device at creation, and batched flushes are steered
// per-launch to the least-contended eligible device. Placement reuses the
// paper's contention machinery (NVML-style utilization sampling plus the
// Fig 3 profitability signal, here as a utilization threshold) per device.
//
// Determinism: every placement decision is a pure function of device state
// on the shared virtual clock plus draws from a seeded PRNG, so a
// fixed-seed multi-device run is bit-identical across executions.
package gpupool

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lakego/internal/flightrec"
	"lakego/internal/gpu"
	"lakego/internal/nvml"
	"lakego/internal/vtime"
)

// Policy selects how the pool places work on devices.
type Policy int

const (
	// RoundRobin rotates context placement across devices, ignoring load.
	RoundRobin Policy = iota
	// LeastOutstanding picks the device with the smallest queued backlog
	// (its BusyUntil horizon relative to now).
	LeastOutstanding
	// ContentionAware samples per-device NVML utilization and prefers
	// devices below the profitability threshold (Fig 3: contended devices
	// stop being profitable), breaking ties with the seeded PRNG.
	ContentionAware
	// ConsistentHash places each client on the member owning its name on a
	// seeded hash ring (NewRing), so placement is sticky under membership
	// change. Used by the fleet router; for per-flush device placement it
	// degenerates to load-blind and is rarely what a pool wants.
	ConsistentHash
)

// String returns the flag-form name of the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastOutstanding:
		return "least-outstanding"
	case ContentionAware:
		return "contention-aware"
	case ConsistentHash:
		return "consistent-hash"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "round-robin", "rr":
		return RoundRobin, nil
	case "least-outstanding", "lo":
		return LeastOutstanding, nil
	case "contention-aware", "ca":
		return ContentionAware, nil
	case "consistent-hash", "ch":
		return ConsistentHash, nil
	default:
		return 0, fmt.Errorf("gpupool: unknown policy %q (want round-robin, least-outstanding, contention-aware or consistent-hash)", s)
	}
}

// Config parameterizes a pool.
type Config struct {
	// Specs gives one hardware model per device; heterogeneous pools are
	// allowed. Must be non-empty.
	Specs []gpu.Spec
	// Policy selects placement (default RoundRobin, the zero value).
	Policy Policy
	// Seed initializes the PRNG used for placement tie-breaks.
	Seed int64
	// UtilWindow is the trailing window placement samples per device
	// (default nvml.SamplingWindow).
	UtilWindow time.Duration
	// UtilThreshold is the busy percentage above which ContentionAware
	// considers a device contended (default 40, the Fig 3 knee used by
	// policy.DefaultAdaptiveConfig).
	UtilThreshold int
}

// DeviceAccounting is one device's per-launch/per-copy counters, the feed
// for aggregated NVML-style accounting queries.
type DeviceAccounting struct {
	Ordinal   int
	Launches  int64
	Copies    int64
	CopyBytes int64
}

// Pool owns N devices on a shared virtual clock and answers placement
// queries. All methods are safe for concurrent use; placement draws are
// serialized under the pool mutex so fixed-seed runs stay reproducible.
type Pool struct {
	devs      []*gpu.Device
	clock     *vtime.Clock
	policy    Policy
	window    time.Duration
	threshold int

	mu     sync.Mutex
	rng    *rand.Rand
	cursor int
	ring   *Ring // non-nil iff policy is ConsistentHash

	// rec receives gpu-domain placement events; nil-safe.
	rec *flightrec.Recorder
}

// SetFlightRecorder attaches the flight recorder to the pool and all of its
// devices. Must be called during runtime construction, before any traffic.
func (p *Pool) SetFlightRecorder(rec *flightrec.Recorder) {
	p.rec = rec
	for _, d := range p.devs {
		d.SetFlightRecorder(rec)
	}
}

// New builds the pool, creating device i from cfg.Specs[i] with ordinal i
// (the ordinal is stamped into every DevPtr the device hands out).
func New(cfg Config, clock *vtime.Clock) (*Pool, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("gpupool: at least one device spec required")
	}
	if len(cfg.Specs) > gpu.MaxDevices {
		return nil, fmt.Errorf("gpupool: %d devices exceeds limit %d", len(cfg.Specs), gpu.MaxDevices)
	}
	window := cfg.UtilWindow
	if window <= 0 {
		window = nvml.SamplingWindow
	}
	threshold := cfg.UtilThreshold
	if threshold <= 0 {
		threshold = 40
	}
	p := &Pool{
		clock:     clock,
		policy:    cfg.Policy,
		window:    window,
		threshold: threshold,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	for i, spec := range cfg.Specs {
		p.devs = append(p.devs, gpu.NewIndexed(spec, clock, i))
	}
	if cfg.Policy == ConsistentHash {
		p.ring = NewRing(len(cfg.Specs), 0, cfg.Seed)
	}
	return p, nil
}

// Size returns the number of devices.
func (p *Pool) Size() int { return len(p.devs) }

// Policy returns the configured placement policy.
func (p *Pool) Policy() Policy { return p.policy }

// Device returns device ord; it panics on an out-of-range ordinal, like
// indexing a slice.
func (p *Pool) Device(ord int) *gpu.Device { return p.devs[ord] }

// Devices returns the pool's devices in ordinal order. Callers must not
// mutate the slice.
func (p *Pool) Devices() []*gpu.Device { return p.devs }

// Place picks a device ordinal for a new context owned by client,
// according to the configured policy.
func (p *Pool) Place(client string) int {
	p.mu.Lock()
	var ord int
	switch p.policy {
	case LeastOutstanding:
		ord = p.leastOutstandingLocked(nil)
	case ContentionAware:
		ord = p.contentionAwareLocked(nil)
	case ConsistentHash:
		ord = p.ring.Pick(client)
	default:
		ord = p.cursor % len(p.devs)
		p.cursor++
	}
	p.mu.Unlock()
	p.rec.Emit(flightrec.DomainGPU, flightrec.EvPlace,
		p.rec.ExecTrace(), 0, ord, uint64(p.policy), 0, 0)
	return ord
}

// PlaceFlush picks the device for one batched flush: the least-utilized
// eligible device (nil eligible = all devices), breaking utilization ties
// by smaller backlog and then by a seeded PRNG draw. Flush placement is
// load-driven regardless of the context policy — a flush is a single
// launch, so steering it to spare capacity is always profitable.
func (p *Pool) PlaceFlush(eligible []int) int {
	p.mu.Lock()
	ord := p.contentionAwareLocked(eligible)
	p.mu.Unlock()
	p.rec.Emit(flightrec.DomainGPU, flightrec.EvPlace,
		p.rec.ExecTrace(), 0, ord, uint64(p.policy), 1, 0)
	return ord
}

// leastOutstandingLocked returns the eligible ordinal with the smallest
// queued backlog, lowest ordinal on ties (deterministic without a draw).
func (p *Pool) leastOutstandingLocked(eligible []int) int {
	now := p.clock.Now()
	best, bestBacklog := -1, time.Duration(0)
	for _, ord := range p.eligible(eligible) {
		backlog := p.devs[ord].BusyUntil() - now
		if backlog < 0 {
			backlog = 0
		}
		if best < 0 || backlog < bestBacklog {
			best, bestBacklog = ord, backlog
		}
	}
	return best
}

// contentionAwareLocked prefers devices under the utilization threshold,
// then minimizes utilization; ties fall to smaller backlog, then to a PRNG
// draw so colliding clients spread out deterministically under the seed.
func (p *Pool) contentionAwareLocked(eligible []int) int {
	now := p.clock.Now()
	type cand struct {
		ord     int
		util    float64
		backlog time.Duration
	}
	var best []cand
	for _, ord := range p.eligible(eligible) {
		d := p.devs[ord]
		c := cand{ord: ord, util: d.Utilization(p.window, ""), backlog: d.BusyUntil() - now}
		if c.backlog < 0 {
			c.backlog = 0
		}
		switch {
		case len(best) == 0:
			best = append(best, c)
		case c.util < best[0].util || (c.util == best[0].util && c.backlog < best[0].backlog):
			best = append(best[:0], c)
		case c.util == best[0].util && c.backlog == best[0].backlog:
			best = append(best, c)
		}
	}
	if len(best) == 1 {
		return best[0].ord
	}
	return best[p.rng.Intn(len(best))].ord
}

// eligible expands a nil filter to all ordinals and drops out-of-range
// entries from an explicit one.
func (p *Pool) eligible(filter []int) []int {
	if filter == nil {
		all := make([]int, len(p.devs))
		for i := range all {
			all[i] = i
		}
		return all
	}
	var out []int
	for _, ord := range filter {
		if ord >= 0 && ord < len(p.devs) {
			out = append(out, ord)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

// DeviceRates reports one device's NVML-style utilization.
func (p *Pool) DeviceRates(ord int) nvml.Utilization {
	return nvml.DeviceGetUtilizationRates(p.devs[ord])
}

// AggregateRates folds all devices into one pool-wide NVML-style reading
// (mean GPU busy percentage; memory as total used over total capacity).
func (p *Pool) AggregateRates() nvml.Utilization {
	return nvml.AggregateUtilizationRates(p.devs)
}

// Accounting snapshots per-device launch and copy counters in ordinal
// order.
func (p *Pool) Accounting() []DeviceAccounting {
	out := make([]DeviceAccounting, len(p.devs))
	for i, d := range p.devs {
		copies, bytes := d.Copies()
		out[i] = DeviceAccounting{
			Ordinal:   i,
			Launches:  d.Launches(),
			Copies:    copies,
			CopyBytes: bytes,
		}
	}
	return out
}
