package gpupool

import (
	"testing"
	"time"

	"lakego/internal/gpu"
	"lakego/internal/vtime"
)

func newPool(t *testing.T, n int, policy Policy) (*Pool, *vtime.Clock) {
	t.Helper()
	clk := vtime.New()
	specs := make([]gpu.Spec, n)
	for i := range specs {
		specs[i] = gpu.DefaultSpec()
	}
	p, err := New(Config{Specs: specs, Policy: policy, Seed: 42}, clk)
	if err != nil {
		t.Fatal(err)
	}
	return p, clk
}

func TestNewRejectsEmptyPool(t *testing.T) {
	if _, err := New(Config{}, vtime.New()); err == nil {
		t.Fatal("empty spec list accepted")
	}
}

func TestOrdinalsAndPointerTagging(t *testing.T) {
	p, _ := newPool(t, 4, RoundRobin)
	for i := 0; i < 4; i++ {
		d := p.Device(i)
		if d.Ordinal() != i {
			t.Fatalf("device %d reports ordinal %d", i, d.Ordinal())
		}
		ptr, err := d.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if got := gpu.DevPtrOrdinal(ptr); got != i {
			t.Fatalf("pointer %#x from device %d tags ordinal %d", ptr, i, got)
		}
	}
	// Device 0's pointers must match the single-device layout exactly.
	solo, err := gpu.New(gpu.DefaultSpec(), vtime.New()).Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := newPool(t, 4, RoundRobin)
	pooled, err := fresh.Device(0).Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if solo != pooled {
		t.Fatalf("device-0 pointer %#x differs from single-device %#x", pooled, solo)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	p, _ := newPool(t, 3, RoundRobin)
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := p.Place("c"); got != w {
			t.Fatalf("placement %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastOutstandingPlacement(t *testing.T) {
	p, clk := newPool(t, 3, LeastOutstanding)
	// Device 0 has a deep backlog, device 1 a shallow one, device 2 idle.
	p.Device(0).OccupyUntil("w", 10*time.Millisecond)
	p.Device(1).OccupyUntil("w", 1*time.Millisecond)
	if got := p.Place("c"); got != 2 {
		t.Fatalf("placement = %d, want idle device 2", got)
	}
	// With 2 loaded too, the shallowest backlog (device 1) wins.
	p.Device(2).OccupyUntil("w", 5*time.Millisecond)
	if got := p.Place("c"); got != 1 {
		t.Fatalf("placement = %d, want shallowest-backlog device 1", got)
	}
	// Past all backlogs everything is zero; ties resolve to lowest ordinal.
	clk.AdvanceTo(20 * time.Millisecond)
	if got := p.Place("c"); got != 0 {
		t.Fatalf("placement = %d, want lowest-ordinal tie-break 0", got)
	}
}

func TestContentionAwarePlacementAvoidsBusyDevice(t *testing.T) {
	p, clk := newPool(t, 4, ContentionAware)
	clk.Advance(time.Second)
	// A tenant saturates device 0's sampling window.
	now := clk.Now()
	p.Device(0).OccupySpan("tenant", now-100*time.Millisecond, now)
	for i := 0; i < 16; i++ {
		if got := p.Place("c"); got == 0 {
			t.Fatalf("placement %d chose the saturated device", i)
		}
	}
	if got := p.PlaceFlush(nil); got == 0 {
		t.Fatal("flush placement chose the saturated device")
	}
	// An explicit eligibility filter is honored.
	if got := p.PlaceFlush([]int{0}); got != 0 {
		t.Fatalf("flush placement = %d, want the only eligible device 0", got)
	}
}

func TestPlacementDeterministicUnderSeed(t *testing.T) {
	run := func() []int {
		p, clk := newPool(t, 4, ContentionAware)
		clk.Advance(time.Second)
		var seq []int
		for i := 0; i < 64; i++ {
			seq = append(seq, p.Place("c"), p.PlaceFlush(nil))
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestAccountingAndAggregates(t *testing.T) {
	p, clk := newPool(t, 2, RoundRobin)
	clk.Advance(time.Second)
	p.Device(1).Execute("c", time.Millisecond, nil)
	p.Device(1).ObserveCopy(4096, 10*time.Microsecond)
	acct := p.Accounting()
	if acct[0].Launches != 0 || acct[1].Launches != 1 {
		t.Fatalf("launches = %d/%d, want 0/1", acct[0].Launches, acct[1].Launches)
	}
	if acct[1].Copies != 1 || acct[1].CopyBytes != 4096 {
		t.Fatalf("copies = %d (%d bytes), want 1 (4096)", acct[1].Copies, acct[1].CopyBytes)
	}
	if u := p.DeviceRates(0); u.GPU != 0 {
		t.Fatalf("device 0 util = %d, want 0", u.GPU)
	}
	agg := p.AggregateRates()
	if solo := p.DeviceRates(1); agg.GPU >= solo.GPU {
		t.Fatalf("aggregate GPU %d not below busy device's %d", agg.GPU, solo.GPU)
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastOutstanding, ContentionAware} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
