package kleio

import (
	"testing"

	"lakego/internal/lstm"
)

func TestNewLearnedSchedulerValidation(t *testing.T) {
	if _, err := NewLearnedScheduler(lstm.New(1, 2, []int{4}, 2)); err == nil {
		t.Fatal("wrong input width accepted")
	}
	if _, err := NewLearnedScheduler(lstm.New(1, 1, []int{4}, 3)); err == nil {
		t.Fatal("wrong class count accepted")
	}
	if _, err := NewLearnedScheduler(lstm.New(1, 1, []int{4}, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestTrainSchedulerValidation(t *testing.T) {
	if _, _, err := TrainScheduler(1, 10, 2+HistoryLen/2, 4, 1); err == nil {
		t.Fatal("too few intervals accepted")
	}
}

// The Kleio claim end to end: the trained LSTM scheduler must beat the
// history-based baseline on fast-tier hit ratio, because it anticipates the
// periodic pages' phase flips instead of reacting one interval late.
func TestLearnedSchedulerBeatsHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("BPTT training is seconds of work")
	}
	const pages, capacity, intervals = 30, 20, 64
	sched, acc, err := TrainScheduler(5, pages, 28, 12, 14)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("scheduler training accuracy = %.3f, want >= 0.9", acc)
	}

	histPat := NewAccessPattern(77, pages)
	histRes, err := TierSim(histPat, HistoryBased(15), pages, capacity, intervals)
	if err != nil {
		t.Fatal(err)
	}
	lstmPat := NewAccessPattern(77, pages)
	lstmRes, err := TierSim(lstmPat, sched, pages, capacity, intervals)
	if err != nil {
		t.Fatal(err)
	}
	oraclePat := NewAccessPattern(77, pages)
	oracleRes, err := TierSim(oraclePat, NewOracle(oraclePat), pages, capacity, intervals)
	if err != nil {
		t.Fatal(err)
	}

	if lstmRes.FastHitRatio <= histRes.FastHitRatio {
		t.Fatalf("LSTM hit ratio %.3f not > history %.3f (oracle %.3f)",
			lstmRes.FastHitRatio, histRes.FastHitRatio, oracleRes.FastHitRatio)
	}
	if lstmRes.FastHitRatio > oracleRes.FastHitRatio+0.01 {
		t.Fatalf("LSTM hit ratio %.3f exceeds the oracle %.3f: leakage",
			lstmRes.FastHitRatio, oracleRes.FastHitRatio)
	}
}
