package kleio

import (
	"fmt"
)

// This file is the page-scheduling substrate around the classifier: a
// two-tier memory simulator in the style of the systems Kleio targets
// (§7.2: multi-tiered memory "combines different memory types (e.g. RAM,
// NVMe) to expand capacity but faces data placement challenges ... The
// challenge is to classify pages to inform where they should be stored").
//
// Each interval the scheduler predicts next-interval hotness and moves the
// predicted-hot pages into the fast tier (capacity permitting). The figure
// of merit is the fraction of accesses served from the fast tier.

// Scheduler predicts which pages will be hot next interval given each
// page's recent access-count history.
type Scheduler interface {
	PredictHot(hist []PageHistory) []bool
}

// SchedulerFunc adapts a function to Scheduler.
type SchedulerFunc func(hist []PageHistory) []bool

// PredictHot implements Scheduler.
func (f SchedulerFunc) PredictHot(hist []PageHistory) []bool { return f(hist) }

// HistoryBased returns the Meswani-style baseline scheduler with the given
// hotness threshold.
func HistoryBased(threshold float32) Scheduler {
	return SchedulerFunc(func(hist []PageHistory) []bool {
		return HistoryScheduler(hist, threshold)
	})
}

// OracleScheduler returns ground-truth placement for an access pattern —
// the upper bound Kleio chases ("Kleio simulates different page schedulers"
// against an oracle).
type OracleScheduler struct {
	pattern *AccessPattern
}

// NewOracle wraps a pattern generator.
func NewOracle(p *AccessPattern) *OracleScheduler { return &OracleScheduler{pattern: p} }

// PredictHot implements Scheduler with perfect knowledge.
func (o *OracleScheduler) PredictHot([]PageHistory) []bool { return o.pattern.HotNext() }

// TierResult summarizes a tiering simulation.
type TierResult struct {
	Intervals int
	// FastHitRatio is the fraction of accesses served from the fast tier.
	FastHitRatio float64
	// Migrations counts pages moved between tiers.
	Migrations int
}

// TierSim runs a two-tier placement simulation: pages predicted hot are
// promoted into a fast tier of fastCapacity pages; accesses to fast-tier
// pages are hits. Returns the achieved fast-tier hit ratio.
func TierSim(pattern *AccessPattern, sched Scheduler, pages, fastCapacity, intervals int) (TierResult, error) {
	if fastCapacity <= 0 || fastCapacity > pages {
		return TierResult{}, fmt.Errorf("kleio: fast capacity %d invalid for %d pages", fastCapacity, pages)
	}
	if intervals <= 0 {
		return TierResult{}, fmt.Errorf("kleio: intervals %d invalid", intervals)
	}
	hist := make([]PageHistory, pages)
	inFast := make([]bool, pages)
	var res TierResult

	for it := 0; it < intervals; it++ {
		// Place pages for the upcoming interval based on history so far.
		if it > 0 {
			pred := sched.PredictHot(hist)
			if len(pred) != pages {
				return TierResult{}, fmt.Errorf("kleio: scheduler returned %d predictions for %d pages", len(pred), pages)
			}
			// Promote predicted-hot pages (first-come within capacity),
			// demote the rest.
			placed := 0
			newFast := make([]bool, pages)
			for p := 0; p < pages && placed < fastCapacity; p++ {
				if pred[p] {
					newFast[p] = true
					placed++
				}
			}
			for p := range newFast {
				if newFast[p] != inFast[p] {
					res.Migrations++
				}
			}
			inFast = newFast
		}
		counts := pattern.NextInterval()
		var hits, total float64
		for p, c := range counts {
			total += float64(c)
			if inFast[p] {
				hits += float64(c)
			}
			// Shift the page's history window.
			copy(hist[p][:HistoryLen-1], hist[p][1:])
			hist[p][HistoryLen-1] = c
		}
		if total > 0 {
			res.FastHitRatio += hits / total
		}
		res.Intervals++
	}
	res.FastHitRatio /= float64(res.Intervals)
	return res, nil
}
