package kleio

import (
	"testing"
	"time"

	"lakego/internal/core"
)

func boot(t *testing.T) (*core.Runtime, *Classifier) {
	t.Helper()
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	c, err := New(rt, 5)
	if err != nil {
		t.Fatal(err)
	}
	return rt, c
}

func mkPages(n int) []PageHistory {
	pages := make([]PageHistory, n)
	for i := range pages {
		for t := 0; t < HistoryLen; t++ {
			pages[i][t] = float32((i*7 + t*3) % 50)
		}
	}
	return pages
}

func TestClassifyLAKEMatchesCPU(t *testing.T) {
	_, c := boot(t)
	pages := mkPages(40)
	lakeHot, lakeT, err := c.ClassifyLAKE(pages)
	if err != nil {
		t.Fatal(err)
	}
	cpuHot, cpuT := c.ClassifyCPU(pages)
	if len(lakeHot) != 40 || len(cpuHot) != 40 {
		t.Fatal("wrong result lengths")
	}
	for i := range lakeHot {
		if lakeHot[i] != cpuHot[i] {
			t.Fatalf("page %d: LAKE=%v CPU=%v", i, lakeHot[i], cpuHot[i])
		}
	}
	if lakeT <= 0 || cpuT <= 0 {
		t.Fatalf("times: lake=%v cpu=%v", lakeT, cpuT)
	}
}

// Fig 9 shape: inference time in the ~100-300ms band across 20-1160 pages,
// increasing with batch size; GPU much faster than CPU at scale (§7.2).
func TestFig9TimingShape(t *testing.T) {
	_, c := boot(t)
	var prev time.Duration
	for _, n := range []int{20, 200, 560, 1160} {
		_, d, err := c.ClassifyLAKE(mkPages(n))
		if err != nil {
			t.Fatal(err)
		}
		if d < 90*time.Millisecond || d > 400*time.Millisecond {
			t.Fatalf("ClassifyLAKE(%d) = %v, want in Fig 9's ~100-300ms band", n, d)
		}
		if d <= prev {
			t.Fatalf("time not increasing with batch: %v after %v", d, prev)
		}
		prev = d
	}
	// GPU beats CPU by a wide margin at 1160 pages.
	_, gpuT, _ := c.ClassifyLAKE(mkPages(1160))
	_, cpuT := c.ClassifyCPU(mkPages(1160))
	if cpuT < 5*gpuT {
		t.Fatalf("GPU speedup only %.1fx at 1160 pages", float64(cpuT)/float64(gpuT))
	}
}

func TestClassifyLAKEValidation(t *testing.T) {
	_, c := boot(t)
	if _, _, err := c.ClassifyLAKE(make([]PageHistory, MaxPages+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
	hot, d, err := c.ClassifyLAKE(nil)
	if err != nil || hot != nil || d != 0 {
		t.Fatal("empty batch should be a no-op")
	}
}

func TestHighLevelHandlerRejectsBadArgs(t *testing.T) {
	rt, _ := boot(t)
	if _, _, r := rt.Lib().CallHighLevel(APIName, []uint64{0}, nil); r == 0 {
		t.Fatal("short args accepted")
	}
	if _, _, r := rt.Lib().CallHighLevel(APIName, []uint64{0, 0, 1 << 40}, nil); r == 0 {
		t.Fatal("huge page count accepted")
	}
}

func TestAccessPatternClasses(t *testing.T) {
	a := NewAccessPattern(3, 9)
	counts := a.NextInterval()
	if len(counts) != 9 {
		t.Fatalf("counts = %d pages", len(counts))
	}
	// Hot pages (p%3==0) always exceed cold pages (p%3==2).
	for i := 0; i < 9; i += 3 {
		if counts[i] < 30 {
			t.Fatalf("hot page %d count %v", i, counts[i])
		}
	}
	for i := 2; i < 9; i += 3 {
		if counts[i] > 10 {
			t.Fatalf("cold page %d count %v", i, counts[i])
		}
	}
}

func TestHistorySchedulerSeparatesHotCold(t *testing.T) {
	a := NewAccessPattern(7, 30)
	hist := make([]PageHistory, 30)
	for t := 0; t < HistoryLen; t++ {
		counts := a.NextInterval()
		for p := range hist {
			copy(hist[p][:HistoryLen-1], hist[p][1:])
			hist[p][HistoryLen-1] = counts[p]
		}
	}
	pred := HistoryScheduler(hist, 15)
	truth := a.HotNext()
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	// History heuristics handle persistent pages but miss phase changes;
	// they must still clearly beat chance here.
	if acc := float64(correct) / float64(len(pred)); acc < 0.6 {
		t.Fatalf("history scheduler accuracy = %.2f, want > 0.6", acc)
	}
}

func TestEncodeHistory(t *testing.T) {
	var h PageHistory
	h[0], h[HistoryLen-1] = 3, 9
	buf := EncodeHistory(h)
	if len(buf) != 4*HistoryLen {
		t.Fatalf("encoded %d bytes", len(buf))
	}
	if buf[0] != 3 || buf[4*(HistoryLen-1)] != 9 {
		t.Fatal("encoding wrong")
	}
}
