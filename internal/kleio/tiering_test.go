package kleio

import (
	"testing"
)

func TestTierSimValidation(t *testing.T) {
	p := NewAccessPattern(1, 30)
	if _, err := TierSim(p, HistoryBased(15), 30, 0, 10); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := TierSim(p, HistoryBased(15), 30, 31, 10); err == nil {
		t.Fatal("oversized capacity accepted")
	}
	if _, err := TierSim(p, HistoryBased(15), 30, 10, 0); err == nil {
		t.Fatal("zero intervals accepted")
	}
	bad := SchedulerFunc(func([]PageHistory) []bool { return nil })
	if _, err := TierSim(p, bad, 30, 10, 10); err == nil {
		t.Fatal("wrong-length predictions accepted")
	}
}

func TestOracleBeatsHistoryOnPhaseChanges(t *testing.T) {
	// One third of pages pulse with a period; the oracle anticipates the
	// phase flips, the history baseline reacts one interval late.
	const pages, capacity, intervals = 90, 60, 64
	histRes, err := TierSim(NewAccessPattern(5, pages), HistoryBased(15), pages, capacity, intervals)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewAccessPattern(5, pages)
	oracleRes, err := TierSim(oracle, NewOracle(oracle), pages, capacity, intervals)
	if err != nil {
		t.Fatal(err)
	}
	if oracleRes.FastHitRatio <= histRes.FastHitRatio {
		t.Fatalf("oracle hit ratio %.3f not > history %.3f",
			oracleRes.FastHitRatio, histRes.FastHitRatio)
	}
	if histRes.FastHitRatio < 0.5 {
		t.Fatalf("history baseline hit ratio %.3f implausibly low", histRes.FastHitRatio)
	}
	if oracleRes.FastHitRatio < 0.9 {
		t.Fatalf("oracle hit ratio %.3f should be near perfect with capacity for all hot pages",
			oracleRes.FastHitRatio)
	}
}

func TestTinyFastTierLimitsHits(t *testing.T) {
	const pages = 90
	p := NewAccessPattern(9, pages)
	small, err := TierSim(p, NewOracle(p), pages, 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewAccessPattern(9, pages)
	big, err := TierSim(p2, NewOracle(p2), pages, 60, 32)
	if err != nil {
		t.Fatal(err)
	}
	if small.FastHitRatio >= big.FastHitRatio {
		t.Fatalf("5-page tier (%.3f) not worse than 60-page tier (%.3f)",
			small.FastHitRatio, big.FastHitRatio)
	}
}

func TestMigrationsCounted(t *testing.T) {
	const pages = 30
	p := NewAccessPattern(3, pages)
	res, err := TierSim(p, HistoryBased(15), pages, 15, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("periodic pattern produced no migrations")
	}
	if res.Intervals != 32 {
		t.Fatalf("intervals = %d", res.Intervals)
	}
}
