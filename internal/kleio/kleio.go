// Package kleio reproduces the page warmth classification workload (§7.2):
// Kleio's LSTM-based page scheduler ported from TensorFlow to a kernel
// module through LAKE's high-level API remoting (§4.4).
//
// Two things are modeled faithfully. First, the machinery: because Kleio is
// "implemented using TensorFlow", the kernel side cannot call cuLaunchKernel
// directly — it invokes a custom high-level API ("kleio_infer") that lakeD
// realizes against the ML framework, with page histories staged in lakeShm.
// Second, the timing: TensorFlow session dispatch dominates small batches,
// so inference time is a large fixed cost plus a per-page term (Fig 9's
// 100-300 ms range over 20-1160 pages), and "data movement is handled
// synchronously by TensorFlow", which is why the paper plots only the
// synchronous variant.
package kleio

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"lakego/internal/core"
	"lakego/internal/cuda"
	"lakego/internal/lstm"
	"lakego/internal/shm"
)

// HistoryLen is the number of past access-count intervals fed to the LSTM
// per page.
const HistoryLen = 16

// HiddenSize is the LSTM hidden width (two layers, following Kleio).
const HiddenSize = 32

// MaxPages bounds one inference batch (Fig 9 sweeps to 1160).
const MaxPages = 2048

// APIName is the high-level API registered in lakeD.
const APIName = "kleio_infer"

// Timing model for the remoted TensorFlow path, calibrated to Fig 9:
// ~100 ms at 20 pages rising to ~300 ms at 1160 pages. The fixed term is
// TF session dispatch + kernel autotuning; the per-page term covers the
// LSTM sequence math at GPU occupancy typical for small recurrent models.
const (
	tfFixedGPU   = 95 * time.Millisecond
	tfPerPageGPU = 175 * time.Microsecond
	// CPU inference of the same TensorFlow stack (for the §7.2 claim that
	// GPU gives "significant speedup ... instead of CPUs"). Session
	// dispatch overhead applies on the CPU as well, which is why Table 3
	// puts the GPU crossover at batch 1: even a single page classifies
	// faster on the accelerator.
	tfFixedCPU = 120 * time.Millisecond
	cpuPerPage = 2500 * time.Microsecond
)

// Classifier is the kernel-side handle to the remoted Kleio model.
type Classifier struct {
	rt    *core.Runtime
	model *lstm.Model
	inBuf *shm.Buffer
	out   *shm.Buffer
}

// New trains nothing (Kleio trains offline); it builds the LSTM with
// deterministic weights, registers the high-level API in lakeD and stages
// shared buffers.
func New(rt *core.Runtime, seed int64) (*Classifier, error) {
	c := &Classifier{
		rt:    rt,
		model: lstm.New(seed, 1, []int{HiddenSize, HiddenSize}, 2),
	}
	var err error
	if c.inBuf, err = rt.Region().Alloc(4 * HistoryLen * MaxPages); err != nil {
		return nil, err
	}
	if c.out, err = rt.Region().Alloc(MaxPages); err != nil {
		return nil, err
	}
	rt.Daemon().RegisterHighLevel(APIName, c.handler)
	return c, nil
}

// handler is the lakeD-side realization: decode page histories from the
// shared region, run the real LSTM, write hot/cold bytes back, and charge
// the TensorFlow-on-GPU cost model.
func (c *Classifier) handler(api *cuda.API, region *shm.Region, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
	if len(args) != 3 {
		return nil, nil, cuda.ErrInvalidValue
	}
	inOff, outOff, pages := int64(args[0]), int64(args[1]), int(args[2])
	if pages <= 0 || pages > MaxPages {
		return nil, nil, cuda.ErrInvalidValue
	}
	in, err := region.At(inOff, int64(4*HistoryLen*pages))
	if err != nil {
		return nil, nil, cuda.ErrInvalidValue
	}
	out, err := region.At(outOff, int64(pages))
	if err != nil {
		return nil, nil, cuda.ErrInvalidValue
	}
	flat, err := cuda.Float32s(in, HistoryLen*pages)
	if err != nil {
		return nil, nil, cuda.ErrInvalidValue
	}
	// TensorFlow moves data and runs the session; LAKE only sees the one
	// high-level call (hence "sync." in Fig 9).
	api.Device().Execute("kernel-kleio", tfFixedGPU+time.Duration(pages)*tfPerPageGPU, func() {
		seq := make([][]float32, HistoryLen)
		for p := 0; p < pages; p++ {
			h := flat[p*HistoryLen : (p+1)*HistoryLen]
			for t := 0; t < HistoryLen; t++ {
				seq[t] = h[t : t+1]
			}
			out[p] = byte(c.model.Predict(seq))
		}
	})
	return []uint64{uint64(pages)}, nil, cuda.Success
}

// PageHistory is one page's recent access counts, oldest first.
type PageHistory [HistoryLen]float32

// ClassifyLAKE classifies the batch through the remoted high-level API and
// returns per-page hotness plus the modeled inference time (Fig 9's series).
func (c *Classifier) ClassifyLAKE(pages []PageHistory) ([]bool, time.Duration, error) {
	n := len(pages)
	if n == 0 {
		return nil, 0, nil
	}
	if n > MaxPages {
		return nil, 0, fmt.Errorf("kleio: %d pages exceeds max %d", n, MaxPages)
	}
	flat := make([]float32, 0, n*HistoryLen)
	for i := range pages {
		flat = append(flat, pages[i][:]...)
	}
	if err := cuda.PutFloat32s(c.inBuf.Bytes(), flat); err != nil {
		return nil, 0, err
	}
	start := c.rt.Clock().Now()
	vals, _, r := c.rt.Lib().CallHighLevel(APIName, []uint64{
		uint64(c.inBuf.Offset()), uint64(c.out.Offset()), uint64(n),
	}, nil)
	if r != cuda.Success {
		return nil, 0, r.Err()
	}
	if len(vals) != 1 || vals[0] != uint64(n) {
		return nil, 0, fmt.Errorf("kleio: daemon classified %v pages, want %d", vals, n)
	}
	elapsed := c.rt.Clock().Now() - start
	hot := make([]bool, n)
	for i := range hot {
		hot[i] = c.out.Bytes()[i] == 1
	}
	return hot, elapsed, nil
}

// ClassifyCPU runs the same model on the kernel CPU path, returning the
// modeled cost; used to quantify the GPU speedup of §7.2.
func (c *Classifier) ClassifyCPU(pages []PageHistory) ([]bool, time.Duration) {
	hot := make([]bool, len(pages))
	seq := make([][]float32, HistoryLen)
	for p := range pages {
		for t := 0; t < HistoryLen; t++ {
			seq[t] = pages[p][t : t+1]
		}
		hot[p] = c.model.Predict(seq) == 1
	}
	cost := tfFixedCPU + time.Duration(len(pages))*cpuPerPage
	c.rt.Clock().Advance(cost)
	return hot, cost
}

// Model exposes the underlying LSTM (tests and training experiments).
func (c *Classifier) Model() *lstm.Model { return c.model }

// --- Page scheduling substrate -------------------------------------------

// AccessPattern generates per-page access counts per interval for the page
// scheduler experiments: a deterministic mix of always-hot, periodic and
// cold pages, the regimes Kleio's LSTM separates better than history-based
// heuristics.
type AccessPattern struct {
	rng    *rand.Rand
	pages  int
	phase  int
	period int
}

// NewAccessPattern creates a pattern over the given number of pages.
func NewAccessPattern(seed int64, pages int) *AccessPattern {
	return &AccessPattern{rng: rand.New(rand.NewSource(seed)), pages: pages, period: 8}
}

// NextInterval returns the access count of every page for the next
// interval. One third of pages are persistently hot, one third pulse with
// a period (hot only in half the phase), one third are cold with noise.
func (a *AccessPattern) NextInterval() []float32 {
	counts := make([]float32, a.pages)
	for p := range counts {
		switch p % 3 {
		case 0: // hot
			counts[p] = float32(40 + a.rng.Intn(20))
		case 1: // periodic
			if (a.phase/(a.period/2))%2 == 0 {
				counts[p] = float32(30 + a.rng.Intn(20))
			} else {
				counts[p] = float32(a.rng.Intn(3))
			}
		default: // cold
			counts[p] = float32(a.rng.Intn(3))
		}
	}
	a.phase++
	return counts
}

// HotNext reports ground truth for the next interval (used to score
// schedulers): pages whose next-interval count will exceed the hot
// threshold.
func (a *AccessPattern) HotNext() []bool {
	// Peek by generating with a copied phase but stable rng expectation:
	// hot and cold classes are phase-independent; periodic pages toggle by
	// phase.
	hot := make([]bool, a.pages)
	for p := range hot {
		switch p % 3 {
		case 0:
			hot[p] = true
		case 1:
			hot[p] = (a.phase/(a.period/2))%2 == 0
		default:
			hot[p] = false
		}
	}
	return hot
}

// HistoryScheduler is the history-based baseline [Meswani et al.]: a page
// is predicted hot next interval iff its recent average exceeds a
// threshold.
func HistoryScheduler(hist []PageHistory, threshold float32) []bool {
	out := make([]bool, len(hist))
	for i, h := range hist {
		var sum float32
		for _, v := range h[HistoryLen-4:] {
			sum += v
		}
		out[i] = sum/4 > threshold
	}
	return out
}

// EncodeHistory packs a history window into bytes (for feature-registry
// style storage in experiments).
func EncodeHistory(h PageHistory) []byte {
	buf := make([]byte, 4*HistoryLen)
	for i, v := range h {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return buf
}
