package kleio

import (
	"fmt"
	"math/rand"

	"lakego/internal/lstm"
)

// LearnedScheduler is the Kleio design point: an LSTM trained on per-page
// access-count histories predicts next-interval hotness, anticipating the
// phase changes that history-based heuristics chase one interval behind
// ("Kleio ... implements a LSTM-based classifier, which makes better
// decisions than a history based solution", §7.2).
type LearnedScheduler struct {
	model *lstm.Model
	// norm scales raw access counts into the model's input range.
	norm float32
}

// countNorm is the normalization divisor for access counts.
const countNorm = 64

// NewLearnedScheduler wraps a trained model (input width 1, 2 classes).
func NewLearnedScheduler(m *lstm.Model) (*LearnedScheduler, error) {
	if m.InputSize() != 1 || m.Classes != 2 {
		return nil, fmt.Errorf("kleio: scheduler model must be 1-wide, 2-class; got %d-wide, %d-class",
			m.InputSize(), m.Classes)
	}
	return &LearnedScheduler{model: m, norm: countNorm}, nil
}

// Model returns the underlying LSTM.
func (s *LearnedScheduler) Model() *lstm.Model { return s.model }

func (s *LearnedScheduler) seq(h PageHistory) [][]float32 {
	seq := make([][]float32, HistoryLen)
	for t := 0; t < HistoryLen; t++ {
		seq[t] = []float32{h[t] / s.norm}
	}
	return seq
}

// PredictHot implements Scheduler.
func (s *LearnedScheduler) PredictHot(hist []PageHistory) []bool {
	out := make([]bool, len(hist))
	for i, h := range hist {
		out[i] = s.model.Predict(s.seq(h)) == 1
	}
	return out
}

// TrainScheduler fits an LSTM scheduler on histories harvested from an
// access pattern, labeled with ground-truth next-interval hotness. hidden
// sets the (single-layer) width; epochs the BPTT passes. Returns the
// scheduler and its training accuracy.
func TrainScheduler(seed int64, pages, intervals, hidden, epochs int) (*LearnedScheduler, float64, error) {
	if intervals <= 2+HistoryLen/2 {
		return nil, 0, fmt.Errorf("kleio: need more than %d intervals to harvest histories", 2+HistoryLen/2)
	}
	pattern := NewAccessPattern(seed, pages)
	hist := make([]PageHistory, pages)
	var seqs [][][]float32
	var labels []int
	sched := &LearnedScheduler{norm: countNorm}
	for it := 0; it < intervals; it++ {
		// Harvest from interval 2 onward, including the zero-padded
		// warm-up windows: deployed schedulers see exactly those
		// histories for the first HistoryLen intervals after boot.
		if it >= 2 {
			truth := pattern.HotNext()
			for p := 0; p < pages; p++ {
				seqs = append(seqs, sched.seq(hist[p]))
				label := 0
				if truth[p] {
					label = 1
				}
				labels = append(labels, label)
			}
		}
		counts := pattern.NextInterval()
		for p := range hist {
			copy(hist[p][:HistoryLen-1], hist[p][1:])
			hist[p][HistoryLen-1] = counts[p]
		}
	}
	m := lstm.New(seed, 1, []int{hidden}, 2)
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(seqs))
	const minibatch = 32
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for at := 0; at < len(idx); at += minibatch {
			end := at + minibatch
			if end > len(idx) {
				end = len(idx)
			}
			bs := make([][][]float32, 0, end-at)
			bl := make([]int, 0, end-at)
			for _, i := range idx[at:end] {
				bs = append(bs, seqs[i])
				bl = append(bl, labels[i])
			}
			if _, err := m.TrainBatch(bs, bl, 0.5); err != nil {
				return nil, 0, err
			}
		}
	}
	sched.model = m
	return sched, m.Accuracy(seqs, labels), nil
}
