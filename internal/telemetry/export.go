package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// HistogramSnapshot is the exported shape of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	// Buckets maps each finite upper bound to the cumulative count of
	// observations <= that bound; Inf is the total.
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE         string `json:"le"` // decimal bound, or "+Inf"
	Cumulative int64  `json:"cumulative"`
}

// Snapshot is a point-in-time JSON-friendly view of the registry. Values
// are read without stopping writers, so a snapshot taken under load is
// internally consistent per instrument but not across instruments.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Windows holds the settled (previous-tick) window of each
	// WindowedHistogram — per-window counts, not cumulative-since-start.
	Windows map[string]HistogramSnapshot `json:"windows,omitempty"`
}

// Snapshot captures every registered instrument (zero-value for nil).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	names, metrics, _ := r.snapshotLocked()
	r.mu.Unlock()
	for _, name := range names {
		switch m := metrics[name].(type) {
		case *Counter:
			snap.Counters[name] = m.Value()
		case *Gauge:
			snap.Gauges[name] = m.Value()
		case *Histogram:
			snap.Histograms[name] = snapshotHistogram(m)
		case *WindowedHistogram:
			if snap.Windows == nil {
				snap.Windows = map[string]HistogramSnapshot{}
			}
			snap.Windows[name] = snapshotWindow(m)
		case *GaugeFunc:
			snap.Gauges[name] = m.Value()
		}
	}
	return snap
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	bounds, cum := h.bucketCounts()
	hs := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
	}
	for i, b := range bounds {
		hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: fmt.Sprintf("%d", b), Cumulative: cum[i]})
	}
	hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: "+Inf", Cumulative: cum[len(cum)-1]})
	return hs
}

// JSON exports the snapshot with stable formatting.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Series of one family are grouped under a single # HELP/# TYPE
// header; histograms expand to _bucket{le=...}, _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names, metrics, help := r.snapshotLocked()
	r.mu.Unlock()
	return writePrometheus(w, names, metrics, help)
}

func writePrometheus(w io.Writer, names []string, metrics map[string]interface{}, help map[string]string) error {
	var b strings.Builder
	lastFamily := ""
	for _, name := range sortedByFamily(names) {
		family, labels := splitName(name)
		if family != lastFamily {
			if h := help[name]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", family, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", family, promType(metrics[name]))
			lastFamily = family
		}
		switch m := metrics[name].(type) {
		case *Counter:
			fmt.Fprintf(&b, "%s%s %d\n", family, labels, m.Value())
		case *Gauge:
			fmt.Fprintf(&b, "%s%s %d\n", family, labels, m.Value())
		case *Histogram:
			writePromHistogram(&b, family, labels, m)
		case *WindowedHistogram:
			writePromWindow(&b, family, labels, m)
		case *GaugeFunc:
			fmt.Fprintf(&b, "%s%s %d\n", family, labels, m.Value())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PrometheusText renders the exposition as a string.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	r.WritePrometheus(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// WriteMergedPrometheus renders several registries as one exposition, the
// fleet case: each shard runtime owns a private registry whose series carry
// a shard label, and the fleet endpoint serves their union. Names must be
// disjoint across registries (the shard label guarantees it); on a
// collision the first registration wins, matching get-or-create semantics
// within one registry. Nil registries are skipped.
func WriteMergedPrometheus(w io.Writer, regs ...*Registry) error {
	names, metrics, help := mergeRegistries(regs)
	return writePrometheus(w, names, metrics, help)
}

// MergedPrometheusText renders the merged exposition as a string.
func MergedPrometheusText(regs ...*Registry) string {
	var b strings.Builder
	WriteMergedPrometheus(&b, regs...) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// MergedSnapshot captures the union of several registries as one Snapshot,
// with the same first-wins collision rule as WriteMergedPrometheus.
func MergedSnapshot(regs ...*Registry) Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	names, metrics, _ := mergeRegistries(regs)
	for _, name := range names {
		switch m := metrics[name].(type) {
		case *Counter:
			snap.Counters[name] = m.Value()
		case *Gauge:
			snap.Gauges[name] = m.Value()
		case *Histogram:
			snap.Histograms[name] = snapshotHistogram(m)
		case *WindowedHistogram:
			if snap.Windows == nil {
				snap.Windows = map[string]HistogramSnapshot{}
			}
			snap.Windows[name] = snapshotWindow(m)
		case *GaugeFunc:
			snap.Gauges[name] = m.Value()
		}
	}
	return snap
}

// mergeRegistries snapshots each registry in turn and unions the results,
// keeping the first registration of a name.
func mergeRegistries(regs []*Registry) ([]string, map[string]interface{}, map[string]string) {
	var names []string
	metrics := map[string]interface{}{}
	help := map[string]string{}
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		rn, rm, rh := r.snapshotLocked()
		r.mu.Unlock()
		for _, name := range rn {
			if _, ok := metrics[name]; ok {
				continue
			}
			names = append(names, name)
			metrics[name] = rm[name]
			help[name] = rh[name]
		}
	}
	return names, metrics, help
}

func promType(m interface{}) string {
	switch m.(type) {
	case *Counter:
		return "counter"
	case *Gauge, *GaugeFunc:
		return "gauge"
	case *Histogram:
		return "histogram"
	case *WindowedHistogram:
		// Per-window (non-cumulative across scrapes) bucket counts are
		// Prometheus's gaugehistogram.
		return "gaugehistogram"
	}
	return "untyped"
}

// writePromHistogram emits the cumulative bucket series. Extra labels from
// the metric name are merged with the le label.
func writePromHistogram(b *strings.Builder, family, labels string, h *Histogram) {
	bounds, cum := h.bucketCounts()
	for i, bound := range bounds {
		fmt.Fprintf(b, "%s_bucket%s %d\n", family, mergeLabels(labels, fmt.Sprintf(`le="%d"`, bound)), cum[i])
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", family, mergeLabels(labels, `le="+Inf"`), cum[len(cum)-1])
	fmt.Fprintf(b, "%s_sum%s %d\n", family, labels, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", family, labels, h.Count())
}

// writePromWindow emits the settled window of a windowed histogram in
// bucket form (gaugehistogram: counts reset per window, not cumulative
// across scrapes).
func writePromWindow(b *strings.Builder, family, labels string, w *WindowedHistogram) {
	bounds, cum := w.SettledBuckets()
	for i, bound := range bounds {
		fmt.Fprintf(b, "%s_bucket%s %d\n", family, mergeLabels(labels, fmt.Sprintf(`le="%d"`, bound)), cum[i])
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", family, mergeLabels(labels, `le="+Inf"`), cum[len(cum)-1])
	fmt.Fprintf(b, "%s_sum%s %d\n", family, labels, w.SettledSum())
	fmt.Fprintf(b, "%s_count%s %d\n", family, labels, w.SettledCount())
}

// mergeLabels combines an existing `{a="b"}` label part with one more pair.
func mergeLabels(labels, pair string) string {
	if labels == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + pair + "}"
}
