package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTracerDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	if tr.Enabled() {
		t.Fatal("tracer must start disabled")
	}
	sp, owner := tr.StartSpan("call", 1, 0)
	if sp != nil || owner {
		t.Fatal("disabled tracer must not produce spans")
	}
	// Nil span is inert end to end.
	sp.AddStage("x", 0, 0, 0)
	sp.StageTimer("y", 0).End(0)
	if sp.Stages() != nil {
		t.Fatal("nil span must have no stages")
	}
}

func TestSpanOwnership(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)

	outer, owner := tr.StartSpan("flush", 7, 100)
	if outer == nil || !owner {
		t.Fatal("first StartSpan must create and own the span")
	}
	inner, innerOwner := tr.StartSpan("call", 8, 150)
	if inner != outer {
		t.Fatal("nested StartSpan must join the open span")
	}
	if innerOwner {
		t.Fatal("joiner must not own the span")
	}
	if tr.Current() != outer {
		t.Fatal("Current must return the open span")
	}

	outer.AddStage("coalesce", 100, 150, time.Microsecond)
	st := outer.StageTimer("launch", 150)
	st.End(190)
	tr.FinishSpan(outer, 200)

	if tr.Current() != nil {
		t.Fatal("finished span must clear current")
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("want 1 completed span, got %d", len(spans))
	}
	stages := spans[0].Stages()
	if len(stages) != 2 || stages[0].Name != "coalesce" || stages[1].Name != "launch" {
		t.Fatalf("unexpected stages: %+v", stages)
	}
	if stages[1].VStart != 150 || stages[1].VEnd != 190 {
		t.Fatalf("launch stage virtual bounds = %d..%d, want 150..190",
			stages[1].VStart, stages[1].VEnd)
	}
}

func TestTimelineJSON(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)
	sp, _ := tr.StartSpan("infer", 42, 1000)
	sp.AddStage("marshal", 1000, 1000, 3*time.Microsecond)
	sp.AddStage("channel", 1000, 31000, time.Microsecond)
	tr.FinishSpan(sp, 31000)

	raw, err := tr.TimelineJSON()
	if err != nil {
		t.Fatal(err)
	}
	var out []struct {
		Name   string `json:"name"`
		Seq    uint64 `json:"seq"`
		VStart int64  `json:"v_start_ns"`
		VEnd   int64  `json:"v_end_ns"`
		Stages []struct {
			Stage  string `json:"stage"`
			VStart int64  `json:"v_start_ns"`
			VEnd   int64  `json:"v_end_ns"`
			Wall   int64  `json:"wall_ns"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("timeline does not parse: %v\n%s", err, raw)
	}
	if len(out) != 1 || out[0].Name != "infer" || out[0].Seq != 42 {
		t.Fatalf("unexpected timeline: %s", raw)
	}
	if out[0].VStart != 1000 || out[0].VEnd != 31000 {
		t.Fatalf("span virtual bounds lost: %s", raw)
	}
	if len(out[0].Stages) != 2 || out[0].Stages[1].Stage != "channel" ||
		out[0].Stages[1].VEnd != 31000 {
		t.Fatalf("stage detail lost: %s", raw)
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)
	for i := 0; i < maxDoneSpans+10; i++ {
		sp, _ := tr.StartSpan("s", uint64(i), 0)
		tr.FinishSpan(sp, 0)
	}
	spans := tr.Spans()
	if len(spans) != maxDoneSpans {
		t.Fatalf("ring holds %d, want %d", len(spans), maxDoneSpans)
	}
	// Oldest entries evicted: the first surviving span is seq 10.
	if spans[0].seq != 10 {
		t.Fatalf("first surviving span seq = %d, want 10", spans[0].seq)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatal("Reset must clear completed spans")
	}
}
