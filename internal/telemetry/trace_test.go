package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	if tr.Enabled() {
		t.Fatal("tracer must start disabled")
	}
	sp, owner := tr.StartSpan("call", 1, 0, 1)
	if sp != nil || owner {
		t.Fatal("disabled tracer must not produce spans")
	}
	// Nil span is inert end to end.
	sp.AddStage("x", 0, 0, 0)
	sp.StageTimer("y", 0).End(0)
	if sp.Stages() != nil {
		t.Fatal("nil span must have no stages")
	}
}

func TestSpanOwnership(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)

	outer, owner := tr.StartSpan("flush", 7, 100, 42)
	if outer == nil || !owner {
		t.Fatal("first StartSpan must create and own the span")
	}
	if outer.TraceID() != 42 {
		t.Fatalf("span trace id = %d, want 42", outer.TraceID())
	}
	inner, innerOwner := tr.StartSpan("call", 8, 150, 42)
	if inner != outer {
		t.Fatal("StartSpan under the same trace id must join the open span")
	}
	if innerOwner {
		t.Fatal("joiner must not own the span")
	}
	if tr.Current() != outer {
		t.Fatal("Current must return the open span")
	}

	outer.AddStage("coalesce", 100, 150, time.Microsecond)
	st := outer.StageTimer("launch", 150)
	st.End(190)
	tr.FinishSpan(outer, 200)

	if tr.Current() != nil {
		t.Fatal("finished span must clear current")
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("want 1 completed span, got %d", len(spans))
	}
	stages := spans[0].Stages()
	if len(stages) != 2 || stages[0].Name != "coalesce" || stages[1].Name != "launch" {
		t.Fatalf("unexpected stages: %+v", stages)
	}
	if stages[1].VStart != 150 || stages[1].VEnd != 190 {
		t.Fatalf("launch stage virtual bounds = %d..%d, want 150..190",
			stages[1].VStart, stages[1].VEnd)
	}
}

func TestTimelineJSON(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)
	sp, _ := tr.StartSpan("infer", 42, 1000, 9)
	sp.AddStage("marshal", 1000, 1000, 3*time.Microsecond)
	sp.AddStage("channel", 1000, 31000, time.Microsecond)
	tr.FinishSpan(sp, 31000)

	raw, err := tr.TimelineJSON()
	if err != nil {
		t.Fatal(err)
	}
	var out []struct {
		Name   string `json:"name"`
		Seq    uint64 `json:"seq"`
		VStart int64  `json:"v_start_ns"`
		VEnd   int64  `json:"v_end_ns"`
		Stages []struct {
			Stage  string `json:"stage"`
			VStart int64  `json:"v_start_ns"`
			VEnd   int64  `json:"v_end_ns"`
			Wall   int64  `json:"wall_ns"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("timeline does not parse: %v\n%s", err, raw)
	}
	if len(out) != 1 || out[0].Name != "infer" || out[0].Seq != 42 {
		t.Fatalf("unexpected timeline: %s", raw)
	}
	if out[0].VStart != 1000 || out[0].VEnd != 31000 {
		t.Fatalf("span virtual bounds lost: %s", raw)
	}
	if len(out[0].Stages) != 2 || out[0].Stages[1].Stage != "channel" ||
		out[0].Stages[1].VEnd != 31000 {
		t.Fatalf("stage detail lost: %s", raw)
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)
	for i := 0; i < maxDoneSpans+10; i++ {
		sp, _ := tr.StartSpan("s", uint64(i), 0, uint64(i+1))
		tr.FinishSpan(sp, 0)
	}
	spans := tr.Spans()
	if len(spans) != maxDoneSpans {
		t.Fatalf("ring holds %d, want %d", len(spans), maxDoneSpans)
	}
	// Oldest entries evicted: the first surviving span is seq 10.
	if spans[0].seq != 10 {
		t.Fatalf("first surviving span seq = %d, want 10", spans[0].seq)
	}
	// ... and the evictions are counted, never silent.
	if got := tr.DroppedSpans(); got != 10 {
		t.Fatalf("DroppedSpans = %d, want 10", got)
	}
	if got := r.Counter("lake_tracer_dropped_spans_total", "").Value(); got != 10 {
		t.Fatalf("dropped-span counter = %d, want 10", got)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatal("Reset must clear completed spans")
	}
	if got := tr.DroppedSpans(); got != 10 {
		t.Fatalf("Reset must not zero the dropped count, got %d", got)
	}
}

// TestTracerKeyedByTraceID is the concurrency contract the flight recorder
// relies on: spans for distinct trace IDs are independent, Open finds a
// span by its trace ID, and trace ID 0 keeps the legacy shared-span shape.
func TestTracerKeyedByTraceID(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)

	a, aOwner := tr.StartSpan("callA", 1, 100, 11)
	b, bOwner := tr.StartSpan("callB", 2, 120, 22)
	if !aOwner || !bOwner || a == b {
		t.Fatal("distinct trace ids must open distinct owned spans")
	}
	if tr.Open(11) != a || tr.Open(22) != b || tr.Open(33) != nil {
		t.Fatal("Open must find spans by trace id")
	}
	if tr.Current() != b {
		t.Fatal("Current must return the most recently opened span")
	}
	tr.FinishSpan(b, 200)
	if tr.Current() != a || tr.Open(22) != nil {
		t.Fatal("finishing one span must not disturb the other")
	}
	tr.FinishSpan(a, 300)
	if tr.Current() != nil {
		t.Fatal("all spans finished, Current must be nil")
	}

	// Trace ID 0: untraced callers share one span, as before the rework.
	z1, z1Owner := tr.StartSpan("legacy", 3, 0, 0)
	z2, z2Owner := tr.StartSpan("legacy2", 4, 0, 0)
	if !z1Owner || z2Owner || z1 != z2 {
		t.Fatal("trace id 0 must keep the one-open-span behavior")
	}
	tr.FinishSpan(z1, 10)

	if exported := r.PrometheusText(); !strings.Contains(exported, "lake_tracer_dropped_spans_total 0") {
		t.Fatalf("dropped-span counter missing from exposition:\n%s", exported)
	}
}

// TestConcurrentSpansUnderRace drives many goroutines through their own
// trace IDs at once — under -race this is the proof the reworked tracer is
// concurrent-safe, not just keyed.
func TestConcurrentSpansUnderRace(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	for w := 1; w <= 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tid := uint64(w)<<32 | uint64(i+1)
				sp, owner := tr.StartSpan("c", uint64(i), 0, tid)
				if sp == nil || !owner {
					t.Error("concurrent StartSpan must own a fresh span per trace id")
					return
				}
				sp.StageTimer("dispatch", 0).End(10)
				if tr.Open(tid) != sp {
					t.Error("Open lost a concurrent span")
					return
				}
				tr.FinishSpan(sp, 10)
			}
		}(w)
	}
	wg.Wait()
	if got := tr.DroppedSpans(); got != 8*200-maxDoneSpans {
		t.Fatalf("DroppedSpans = %d, want %d", got, 8*200-maxDoneSpans)
	}
}
