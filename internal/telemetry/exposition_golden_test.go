package telemetry

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite exposition golden files")

// TestExpositionGolden pins the full Prometheus and JSON exposition of a
// registry carrying the build-info/uptime series plus one of every
// instrument type, so a format drift (bucket rendering, TYPE lines, JSON
// field names) fails loudly instead of silently breaking scrapers.
// Re-bless with: go test ./internal/telemetry/ -run Golden -update-golden
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Gauge(`lake_build_info{version="v0.10.0",go_version="go1.24"}`,
		"constant 1; build identity carried in labels").Set(1)
	r.GaugeFunc("lake_uptime_vns",
		"virtual nanoseconds since the runtime clock started",
		func() int64 { return 4_000_000 })
	r.GaugeFunc("lake_uptime_seconds",
		"wall seconds since the process booted",
		func() int64 { return 17 })
	r.Counter(`lake_demo_total{shard="0"}`, "demo counter").Add(3)
	h := r.Histogram("lake_demo_latency_ns", "demo latency", []int64{1000, 10000})
	h.Observe(500)
	h.Observe(5000)
	h.Observe(50000)
	w := r.WindowedHistogram("lake_demo_window_ns", "demo windowed latency", []int64{1000, 10000})
	w.Observe(800)
	w.Observe(8000)
	w.Roll()

	prom := r.PrometheusText()
	jsonBytes, err := r.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	// The JSON must stay parseable with the windows section populated.
	var snap Snapshot
	if err := json.Unmarshal(jsonBytes, &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Windows["lake_demo_window_ns"].Count != 2 {
		t.Fatalf("windows section lost in round trip: %+v", snap.Windows)
	}

	compareGolden(t, "exposition.prom", []byte(prom))
	compareGolden(t, "exposition.json", append(jsonBytes, '\n'))
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden to bless): %v", path, err)
	}
	if string(want) != string(got) {
		t.Fatalf("exposition drifted from golden %s\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}
