package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryHandsOutNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments, got %v %v %v", c, g, h)
	}
	// All mutations and reads on nil instruments are no-ops.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(10)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if r.Tracer() != nil {
		t.Fatal("nil registry must hand out a nil tracer")
	}
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must be disabled")
	}
	if sp, owner := tr.StartSpan("x", 1, 0, 1); sp != nil || owner {
		t.Fatal("nil tracer must not produce spans")
	}
	if r.PrometheusText() != "" {
		t.Fatal("nil registry exposition must be empty")
	}
}

func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lake_x_total", "x things")
	b := r.Counter("lake_x_total", "ignored on re-register")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	h1 := r.Histogram("lake_h", "", []int64{1, 2})
	h2 := r.Histogram("lake_h", "", []int64{99}) // bounds only consulted on create
	if h1 != h2 {
		t.Fatal("same name must return the same histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch must panic")
		}
	}()
	r.Gauge("lake_x_total", "")
}

func TestCounterRejectsNegativeAdd(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	c.Add(10)
	c.Add(-4)
	if got := c.Value(); got != 10 {
		t.Fatalf("negative Add must be ignored, got %d", got)
	}
}

func TestConcurrentIncrement(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Exercise get-or-create concurrently too.
			c := r.Counter("lake_conc_total", "")
			g := r.Gauge("lake_conc_depth", "")
			h := r.Histogram("lake_conc_ns", "", DefaultLatencyBuckets())
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i) * 1000)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("lake_conc_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("lake_conc_depth", "").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("lake_conc_ns", "", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 50})
	// A value equal to a bound lands in that bound's bucket; one past it
	// spills to the next; values beyond the last bound go to +Inf.
	for _, v := range []int64{1, 10, 11, 20, 21, 50, 51, 1 << 40} {
		h.Observe(v)
	}
	bounds, cum := h.bucketCounts()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("unexpected shape: bounds=%v cum=%v", bounds, cum)
	}
	// cumulative: <=10 holds {1,10}; <=20 adds {11,20}; <=50 adds {21,50};
	// +Inf adds {51, 2^40}.
	want := []int64{2, 4, 6, 8}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (cum=%v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 50})
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(5) // <=10 bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(15) // <=20 bucket
	}
	if got := h.Quantile(0.50); got != 10 {
		t.Fatalf("p50 = %d, want 10", got)
	}
	if got := h.Quantile(0.95); got != 20 {
		t.Fatalf("p95 = %d, want 20", got)
	}
	h.Observe(1 << 30) // overflow bucket saturates to last finite bound
	if got := h.Quantile(1.0); got != 50 {
		t.Fatalf("p100 with overflow = %d, want 50 (saturated)", got)
	}
	if got := h.QuantileDuration(0.5); got != 10*time.Nanosecond {
		t.Fatalf("QuantileDuration = %v, want 10ns", got)
	}
}

func TestSnapshotWhileWriting(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lake_snap_total", "")
	h := r.Histogram("lake_snap_ns", "", []int64{100, 1000})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(500)
				}
			}
		}()
	}
	// Snapshots under write load must stay well-formed and monotone.
	var last int64
	for i := 0; i < 200; i++ {
		snap := r.Snapshot()
		v := snap.Counters["lake_snap_total"]
		if v < last {
			t.Fatalf("counter snapshot went backwards: %d -> %d", last, v)
		}
		last = v
		hs := snap.Histograms["lake_snap_ns"]
		if len(hs.Buckets) != 3 {
			t.Fatalf("histogram snapshot buckets = %d, want 3", len(hs.Buckets))
		}
		for j := 1; j < len(hs.Buckets); j++ {
			if hs.Buckets[j].Cumulative < hs.Buckets[j-1].Cumulative {
				t.Fatalf("bucket counts not cumulative: %+v", hs.Buckets)
			}
		}
		if _, err := r.JSON(); err != nil {
			t.Fatalf("JSON export under load: %v", err)
		}
		_ = r.PrometheusText()
	}
	close(stop)
	wg.Wait()
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`lake_boundary_sent_total{channel="Netlink"}`, "frames sent").Add(3)
	r.Counter(`lake_boundary_sent_total{channel="Syscall"}`, "frames sent").Add(7)
	r.Gauge("lake_batcher_queue_depth", "queued items").Set(5)
	h := r.Histogram("lake_rtt_ns", "round trips", []int64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	text := r.PrometheusText()

	for _, want := range []string{
		"# TYPE lake_boundary_sent_total counter",
		`lake_boundary_sent_total{channel="Netlink"} 3`,
		`lake_boundary_sent_total{channel="Syscall"} 7`,
		"# TYPE lake_batcher_queue_depth gauge",
		"lake_batcher_queue_depth 5",
		"# TYPE lake_rtt_ns histogram",
		`lake_rtt_ns_bucket{le="100"} 1`,
		`lake_rtt_ns_bucket{le="1000"} 2`,
		`lake_rtt_ns_bucket{le="+Inf"} 3`,
		"lake_rtt_ns_sum 5550",
		"lake_rtt_ns_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// One family header even with multiple labeled series.
	if n := strings.Count(text, "# TYPE lake_boundary_sent_total"); n != 1 {
		t.Fatalf("family header emitted %d times, want 1:\n%s", n, text)
	}
	// Labeled series of one family must be adjacent.
	nl := strings.Index(text, `channel="Netlink"`)
	sc := strings.Index(text, `channel="Syscall"`)
	if nl == -1 || sc == -1 || sc < nl {
		t.Fatalf("family series out of order:\n%s", text)
	}
}

func TestJSONSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("lake_a_total", "").Inc()
	r.Histogram("lake_b_ns", "", []int64{10}).Observe(5)
	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["lake_a_total"] != 1 {
		t.Fatalf("counter lost in round trip: %+v", snap)
	}
	if hs := snap.Histograms["lake_b_ns"]; hs.Count != 1 || hs.Sum != 5 {
		t.Fatalf("histogram lost in round trip: %+v", snap)
	}
}

func TestSplitName(t *testing.T) {
	fam, labels := splitName(`lake_x_total{channel="Netlink"}`)
	if fam != "lake_x_total" || labels != `{channel="Netlink"}` {
		t.Fatalf("splitName = %q %q", fam, labels)
	}
	fam, labels = splitName("plain")
	if fam != "plain" || labels != "" {
		t.Fatalf("splitName(plain) = %q %q", fam, labels)
	}
}
