package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentExposition exports the registry (Prometheus text, JSON,
// span timeline) while counters, gauges, histograms, and spans are being
// written full-tilt. The CI test job runs the suite under -race, so this is
// the standing guard that the whole exposition path is data-race-free, not
// just the individual instruments.
func TestConcurrentExposition(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)

	// Register up front so the first exposition already sees the families;
	// the writer goroutines exercise concurrent get-or-create anyway.
	r.Counter("lake_expo_total", "")
	r.Gauge("lake_expo_depth", "")
	r.Histogram("lake_expo_ns", "", DefaultLatencyBuckets())

	var wg sync.WaitGroup

	// Instrument writers: fixed iteration counts keep the final assertions
	// deterministic while still overlapping the reader loop below.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("lake_expo_total", "")
			g := r.Gauge("lake_expo_depth", "")
			h := r.Histogram("lake_expo_ns", "", DefaultLatencyBuckets())
			for i := 0; i < 4000; i++ {
				c.Inc()
				g.Set(int64(i % 16))
				h.ObserveDuration(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	// Span writers: each goroutine owns its own trace IDs, spans open,
	// gain stages, finish, and churn through the done-ring concurrently —
	// 3×300 finished spans guarantee evictions past maxDoneSpans.
	for w := 1; w <= 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tid := uint64(w)<<32 | uint64(i+1)
				sp, _ := tr.StartSpan("expo", uint64(i), 0, tid)
				sp.AddStage("dispatch", 0, 10, time.Microsecond)
				sp.StageTimer("launch", 10).End(20)
				tr.FinishSpan(sp, 20)
			}
		}(w)
	}

	// Readers: every exposition surface, repeatedly, under load.
	for i := 0; i < 150; i++ {
		if text := r.PrometheusText(); !strings.Contains(text, "lake_expo_total") {
			t.Fatalf("exposition lost a live counter:\n%.300s", text)
		}
		if _, err := r.JSON(); err != nil {
			t.Fatalf("JSON exposition under load: %v", err)
		}
		if _, err := tr.TimelineJSON(); err != nil {
			t.Fatalf("timeline exposition under load: %v", err)
		}
		_ = tr.DroppedSpans()
		_ = r.Snapshot()
	}
	wg.Wait()

	// The churn guaranteed evictions; the counter must have seen them.
	if tr.DroppedSpans() == 0 {
		t.Fatal("span churn past the done-ring bound must be counted")
	}
	if !strings.Contains(r.PrometheusText(), "lake_tracer_dropped_spans_total") {
		t.Fatal("dropped-span counter missing from Prometheus exposition")
	}
}
