package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// WindowedHistogram is a pair of fixed-bucket histograms behind an epoch
// switch: writers observe into the active side while readers consume the
// settled side — the complete previous window. Roll() clears the settled
// side and flips the epoch, so each window's counts are isolated instead of
// cumulative-since-start; the health plane rolls one per virtual-time tick
// to build rolling 1s/30s/5m burn-rate windows.
//
// Observe is allocation-free and identical in cost to Histogram.Observe
// plus one extra atomic load (the epoch). Roll is not synchronized with
// writers: an observer that loaded the epoch just before a flip lands its
// observation in the side that just settled, where it is either read by the
// next consumer or cleared by the next Roll — one observation of jitter per
// flip at worst, the standard monitoring trade-off.
//
// A nil WindowedHistogram is a no-op. Construct with NewWindowedHistogram.
type WindowedHistogram struct {
	bounds []int64
	epoch  atomic.Uint32 // index (0/1) of the active side
	sides  [2]windowSide
}

type windowSide struct {
	counts []atomic.Int64 // len(bounds)+1, +Inf last
	total  atomic.Int64
	sum    atomic.Int64
}

// NewWindowedHistogram creates a windowed histogram with the given
// ascending bucket upper bounds (DefaultLatencyBuckets when empty).
func NewWindowedHistogram(bounds []int64) *WindowedHistogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	w := &WindowedHistogram{bounds: b}
	for i := range w.sides {
		w.sides[i].counts = make([]atomic.Int64, len(b)+1)
	}
	return w
}

// Observe records one value into the active window.
func (w *WindowedHistogram) Observe(v int64) {
	if w == nil {
		return
	}
	s := &w.sides[w.epoch.Load()&1]
	i := 0
	for i < len(w.bounds) && v > w.bounds[i] {
		i++
	}
	s.counts[i].Add(1)
	s.total.Add(1)
	s.sum.Add(v)
}

// ObserveDuration records a virtual duration in nanoseconds.
func (w *WindowedHistogram) ObserveDuration(d time.Duration) { w.Observe(int64(d)) }

// Roll closes the active window: the previously settled side is cleared,
// the epoch flips, and what was active becomes the settled window readers
// see. Call once per window tick. No-op on nil.
func (w *WindowedHistogram) Roll() {
	if w == nil {
		return
	}
	next := (w.epoch.Load() + 1) & 1
	s := &w.sides[next]
	for i := range s.counts {
		s.counts[i].Store(0)
	}
	s.total.Store(0)
	s.sum.Store(0)
	w.epoch.Store(next)
}

// settled returns the side readers should consume.
func (w *WindowedHistogram) settled() *windowSide {
	return &w.sides[(w.epoch.Load()+1)&1]
}

// SettledCount returns the observation count of the settled window.
func (w *WindowedHistogram) SettledCount() int64 {
	if w == nil {
		return 0
	}
	return w.settled().total.Load()
}

// SettledSum returns the value sum of the settled window.
func (w *WindowedHistogram) SettledSum() int64 {
	if w == nil {
		return 0
	}
	return w.settled().sum.Load()
}

// SettledQuantile estimates the q-quantile of the settled window with the
// same bucket-upper-bound semantics as Histogram.Quantile.
func (w *WindowedHistogram) SettledQuantile(q float64) int64 {
	if w == nil {
		return 0
	}
	s := w.settled()
	counts := make([]int64, len(s.counts))
	for i := range s.counts {
		counts[i] = s.counts[i].Load()
	}
	return quantileFromBuckets(w.bounds, counts, q)
}

// SettledBuckets snapshots the settled window's cumulative bucket counts,
// one per finite bound plus the +Inf bucket.
func (w *WindowedHistogram) SettledBuckets() (bounds []int64, cumulative []int64) {
	s := w.settled()
	bounds = w.bounds
	cumulative = make([]int64, len(s.counts))
	var cum int64
	for i := range s.counts {
		cum += s.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// quantileFromBuckets is the bucket-quantile estimate shared by Histogram
// and the windowed/engine readers: the upper bound of the bucket holding
// rank ceil(q*n), saturating overflow to the last finite bound. 0 with no
// observations or no bounds.
func quantileFromBuckets(bounds []int64, counts []int64, q float64) int64 {
	if len(bounds) == 0 {
		return 0
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Shave the float-error epsilon before rounding up, as Histogram does.
	target := int64(math.Ceil(q*float64(n) - 1e-9))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1]
		}
	}
	return bounds[len(bounds)-1]
}

// snapshotWindow exports the settled window in the histogram snapshot shape.
func snapshotWindow(w *WindowedHistogram) HistogramSnapshot {
	bounds, cum := w.SettledBuckets()
	n := w.SettledCount()
	hs := HistogramSnapshot{
		Count: n,
		Sum:   w.SettledSum(),
		P50:   w.SettledQuantile(0.50),
		P99:   w.SettledQuantile(0.99),
	}
	if n > 0 {
		hs.Mean = float64(hs.Sum) / float64(n)
	}
	for i, b := range bounds {
		hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: fmt.Sprintf("%d", b), Cumulative: cum[i]})
	}
	hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: "+Inf", Cumulative: cum[len(cum)-1]})
	return hs
}

// GaugeFunc is a gauge whose value is computed at read time by a callback —
// uptime clocks, derived sizes. The callback must be safe for concurrent
// use and cheap; it runs on every snapshot and exposition. A nil GaugeFunc
// (or nil callback) reads 0.
type GaugeFunc struct {
	f func() int64
}

// Value invokes the callback (0 for nil).
func (g *GaugeFunc) Value() int64 {
	if g == nil || g.f == nil {
		return 0
	}
	return g.f()
}

// WindowedHistogram get-or-creates a windowed histogram (nil for a nil
// registry). Bounds are only consulted on first creation. The exposition
// shows the settled window.
func (r *Registry) WindowedHistogram(name, help string, bounds []int64) *WindowedHistogram {
	if r == nil {
		return nil
	}
	m := r.register(name, help, func() interface{} { return NewWindowedHistogram(bounds) })
	w, ok := m.(*WindowedHistogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return w
}

// GaugeFunc get-or-creates a callback gauge (nil for a nil registry). The
// callback is only installed on first creation.
func (r *Registry) GaugeFunc(name, help string, f func() int64) *GaugeFunc {
	if r == nil {
		return nil
	}
	m := r.register(name, help, func() interface{} { return &GaugeFunc{f: f} })
	g, ok := m.(*GaugeFunc)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return g
}
