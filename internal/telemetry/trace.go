package telemetry

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one timed segment of a span: marshal, channel, dispatch, launch,
// demux, coalesce. VStart/VEnd are virtual-clock timestamps (simulated
// nanoseconds since the runtime's epoch); Wall is the stage's wall-clock
// duration, the only real-time quantity in the plane (it profiles the
// library itself, since stages like marshal cost no virtual time).
type Stage struct {
	Name   string        `json:"stage"`
	VStart time.Duration `json:"v_start_ns"`
	VEnd   time.Duration `json:"v_end_ns"`
	Wall   time.Duration `json:"wall_ns"`
}

// Span is one traced operation — typically a single remoted call following
// an offloaded inference from marshal through response demux, or a batcher
// flush that additionally carries the coalesce stage. Spans are created by
// a Tracer; a nil *Span is a no-op.
type Span struct {
	name    string
	seq     uint64
	traceID uint64
	vstart  time.Duration

	mu     sync.Mutex
	vend   time.Duration
	stages []Stage
}

// spanJSON is the exported shape of a span.
type spanJSON struct {
	Name    string        `json:"name"`
	Seq     uint64        `json:"seq"`
	TraceID uint64        `json:"trace_id,omitempty"`
	VStart  time.Duration `json:"v_start_ns"`
	VEnd    time.Duration `json:"v_end_ns"`
	Stages  []Stage       `json:"stages"`
}

// Name returns the span's operation name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the trace ID the span is keyed by (0 for nil or untraced).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// AddStage records a completed stage with explicit virtual bounds. Callers
// that accumulate a stage across components (the batcher's coalesce window)
// use this; sequential code prefers StageTimer.
func (s *Span) AddStage(name string, vstart, vend, wall time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stages = append(s.stages, Stage{Name: name, VStart: vstart, VEnd: vend, Wall: wall})
	s.mu.Unlock()
}

// Stages returns a copy of the recorded stages.
func (s *Span) Stages() []Stage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stage, len(s.stages))
	copy(out, s.stages)
	return out
}

// StageTimer begins timing a stage at virtual instant vnow; call End when
// the stage completes. Safe on a nil span (End becomes a no-op).
func (s *Span) StageTimer(name string, vnow time.Duration) StageTimer {
	if s == nil {
		return StageTimer{}
	}
	return StageTimer{s: s, name: name, vstart: vnow, wall: time.Now()}
}

// StageTimer measures one in-progress stage.
type StageTimer struct {
	s      *Span
	name   string
	vstart time.Duration
	wall   time.Time
}

// End records the stage, closing it at virtual instant vnow.
func (t StageTimer) End(vnow time.Duration) {
	if t.s == nil {
		return
	}
	t.s.AddStage(t.name, t.vstart, vnow, time.Since(t.wall))
}

// snapshot copies the span for export.
func (s *Span) snapshot() spanJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := make([]Stage, len(s.stages))
	copy(st, s.stages)
	return spanJSON{Name: s.name, Seq: s.seq, TraceID: s.traceID,
		VStart: s.vstart, VEnd: s.vend, Stages: st}
}

// maxDoneSpans bounds the tracer's completed-span ring.
const maxDoneSpans = 64

// Tracer produces spans when enabled. Open spans are keyed by trace ID, so
// concurrent unrelated calls each get their own span: StartSpan with a
// trace ID that already has an open span joins it (the batcher opens a
// flush span, and the remoted call it issues under the same trace ID
// attaches its stages there instead of opening a second one), while a
// fresh trace ID opens a fresh span. Trace ID 0 — components running
// without the flight recorder's allocator — degenerates to the historical
// one-open-span behavior, all untraced callers sharing one span.
//
// Completed spans land in a bounded ring; evictions past maxDoneSpans are
// counted by DroppedSpans (and the lake_tracer_dropped_spans_total counter
// when the tracer belongs to a Registry), never silent.
//
// A nil *Tracer is a permanently disabled no-op.
type Tracer struct {
	enabled atomic.Bool
	dropped atomic.Int64

	// droppedCounter mirrors dropped into the registry's exposition; set at
	// registry construction, nil for bare tracers.
	droppedCounter *Counter

	mu    sync.Mutex
	open  map[uint64]*Span
	order []uint64 // open trace IDs, oldest first (for Current)
	done  []*Span  // most recent maxDoneSpans, oldest first
}

// SetEnabled switches tracing on or off. No-op on nil.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether spans are being produced (false for nil). The
// check is one atomic load — the hot-path cost of disabled tracing.
func (t *Tracer) Enabled() bool {
	return t != nil && t.enabled.Load()
}

// StartSpan opens a span for traceID at virtual instant vnow, or joins the
// span already open under that trace ID. owner reports whether the caller
// opened the span and must close it with FinishSpan; a joiner only attaches
// stages. Returns (nil, false) when disabled.
func (t *Tracer) StartSpan(name string, seq uint64, vnow time.Duration, traceID uint64) (sp *Span, owner bool) {
	if !t.Enabled() {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur := t.open[traceID]; cur != nil {
		return cur, false
	}
	if t.open == nil {
		t.open = make(map[uint64]*Span)
	}
	sp = &Span{name: name, seq: seq, traceID: traceID, vstart: vnow}
	t.open[traceID] = sp
	t.order = append(t.order, traceID)
	return sp, true
}

// Open returns the span open under traceID, if any. Components that only
// ever attach stages (lakeD's dispatcher) use this instead of StartSpan.
// Costs one atomic load when tracing is disabled — hot paths call it
// unconditionally.
func (t *Tracer) Open(traceID uint64) *Span {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open[traceID]
}

// Current returns the most recently opened span still open, if any — the
// single-call debugging workflow's view (enable, issue one call, export).
func (t *Tracer) Current() *Span {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.order); n > 0 {
		return t.open[t.order[n-1]]
	}
	return nil
}

// FinishSpan closes an owned span at virtual instant vnow and moves it to
// the completed ring. Evicting a completed span past the ring bound bumps
// the dropped-span counter.
func (t *Tracer) FinishSpan(sp *Span, vnow time.Duration) {
	if t == nil || sp == nil {
		return
	}
	sp.mu.Lock()
	sp.vend = vnow
	sp.mu.Unlock()
	t.mu.Lock()
	if t.open[sp.traceID] == sp {
		delete(t.open, sp.traceID)
		for i, id := range t.order {
			if id == sp.traceID {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
	t.done = append(t.done, sp)
	var evicted int64
	if len(t.done) > maxDoneSpans {
		evicted = int64(len(t.done) - maxDoneSpans)
		t.done = append(t.done[:0], t.done[len(t.done)-maxDoneSpans:]...)
	}
	t.mu.Unlock()
	if evicted > 0 {
		t.dropped.Add(evicted)
		t.droppedCounter.Add(evicted)
	}
}

// DroppedSpans reports how many completed spans have been evicted from the
// done-ring since construction (0 for nil).
func (t *Tracer) DroppedSpans() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans returns the completed spans, oldest first.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.done))
	copy(out, t.done)
	return out
}

// Reset discards completed spans (open spans, if any, are kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done = nil
	t.mu.Unlock()
}

// TimelineJSON exports the completed spans as a JSON timeline: an array of
// spans, each with its virtual start/end and per-stage virtual bounds.
func (t *Tracer) TimelineJSON() ([]byte, error) {
	spans := t.Spans()
	out := make([]spanJSON, len(spans))
	for i, s := range spans {
		out[i] = s.snapshot()
	}
	return json.MarshalIndent(out, "", "  ")
}
