package telemetry

import (
	"strings"
	"testing"
)

// TestHistogramBucketEdgeAgreement verifies the three bucket-edge rules
// agree: Observe places v in the first bucket whose bound is >= v, the
// Prometheus exposition labels cumulative buckets le="bound" (v <= bound),
// and Quantile reports a bucket's upper bound. An observation exactly equal
// to a bound must therefore count in that bound's bucket everywhere.
func TestHistogramBucketEdgeAgreement(t *testing.T) {
	bounds := []int64{10, 20, 50}
	h := NewHistogram(bounds)
	// One observation exactly at each finite bound, one just above the top.
	for _, v := range bounds {
		h.Observe(v)
	}
	h.Observe(51)

	_, cum := h.bucketCounts()
	// Cumulative counts: le=10 -> 1, le=20 -> 2, le=50 -> 3, +Inf -> 4.
	want := []int64{1, 2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (cum %v)", i, cum[i], w, cum)
		}
	}

	// Quantile agrees: each observation's quantile is its own bound; the
	// overflow observation saturates to the last finite bound.
	for i, v := range bounds {
		q := float64(i+1) / 4
		if got := h.Quantile(q); got != v {
			t.Fatalf("Quantile(%v) = %d, want bound %d", q, got, v)
		}
	}
	if got := h.Quantile(1.0); got != 50 {
		t.Fatalf("Quantile(1.0) = %d, want saturation to top bound 50", got)
	}
}

// TestHistogramObserveBoundaryValues pins Observe's bucket choice for
// values at, just below, and just above each bound.
func TestHistogramObserveBoundaryValues(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int // index into counts (len(bounds) = +Inf)
	}{
		{9, 0}, {10, 0}, {11, 1},
		{19, 1}, {20, 1}, {21, 2},
		{49, 2}, {50, 2}, {51, 3},
	}
	for _, c := range cases {
		h := NewHistogram([]int64{10, 20, 50})
		h.Observe(c.v)
		for i := range h.counts {
			want := int64(0)
			if i == c.bucket {
				want = 1
			}
			if got := h.counts[i].Load(); got != want {
				t.Fatalf("Observe(%d): counts[%d] = %d, want %d", c.v, i, got, want)
			}
		}
	}
}

// TestHistogramQuantileRankRounding regresses the floating-point rank bug:
// ceil(q*n) could round 0.07*100 = 7.000000000000001 up to rank 8, skipping
// a bucket boundary and reporting the next bucket's bound.
func TestHistogramQuantileRankRounding(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	for i := 0; i < 7; i++ {
		h.Observe(5)
	}
	for i := 0; i < 93; i++ {
		h.Observe(15)
	}
	// Rank ceil(0.07*100) = 7 is the last observation in the first bucket.
	if got := h.Quantile(0.07); got != 10 {
		t.Fatalf("Quantile(0.07) = %d, want 10 (rank 7 of 100 lands in the first bucket)", got)
	}
	if got := h.Quantile(0.08); got != 20 {
		t.Fatalf("Quantile(0.08) = %d, want 20", got)
	}
}

// TestHistogramPrometheusEdgeExposition checks that a value observed at a
// bound is exposed under that bound's le label.
func TestHistogramPrometheusEdgeExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_ns", "edge test", []int64{10, 20})
	h.Observe(10)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`edge_ns_bucket{le="10"} 1`,
		`edge_ns_bucket{le="20"} 1`,
		`edge_ns_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
