package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWindowedHistogramEpochSwap(t *testing.T) {
	w := NewWindowedHistogram([]int64{10, 100, 1000})
	w.Observe(5)
	w.Observe(50)
	w.Observe(5000)

	// Nothing settled before the first roll.
	if got := w.SettledCount(); got != 0 {
		t.Fatalf("settled count before roll = %d, want 0", got)
	}
	w.Roll()
	if got := w.SettledCount(); got != 3 {
		t.Fatalf("settled count = %d, want 3", got)
	}
	if got := w.SettledSum(); got != 5055 {
		t.Fatalf("settled sum = %d, want 5055", got)
	}
	if got := w.SettledQuantile(0.50); got != 100 {
		t.Fatalf("settled p50 = %d, want bucket bound 100", got)
	}
	// Overflow saturates to the last finite bound.
	if got := w.SettledQuantile(0.999); got != 1000 {
		t.Fatalf("settled p999 = %d, want 1000", got)
	}

	// Observations after the flip land in the new active window.
	w.Observe(7)
	if got := w.SettledCount(); got != 3 {
		t.Fatalf("settled count perturbed by active observe: %d", got)
	}
	w.Roll()
	if got := w.SettledCount(); got != 1 {
		t.Fatalf("second settled count = %d, want 1", got)
	}
	// A third roll clears the first window entirely: windows never leak.
	w.Roll()
	if got := w.SettledCount(); got != 0 {
		t.Fatalf("third settled count = %d, want 0", got)
	}
}

func TestWindowedHistogramNil(t *testing.T) {
	var w *WindowedHistogram
	w.Observe(1)
	w.Roll()
	if w.SettledCount() != 0 || w.SettledSum() != 0 || w.SettledQuantile(0.5) != 0 {
		t.Fatal("nil WindowedHistogram must read zero")
	}
}

func TestWindowedHistogramConcurrentObserve(t *testing.T) {
	w := NewWindowedHistogram(DefaultLatencyBuckets())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					w.Observe(12345)
				}
			}
		}()
	}
	total := int64(0)
	for i := 0; i < 2000 && total == 0; i++ {
		time.Sleep(100 * time.Microsecond)
		w.Roll()
		total += w.SettledCount()
	}
	close(stop)
	wg.Wait()
	if total == 0 {
		t.Fatal("no observations landed across 2000 rolls")
	}
}

func TestRegistryWindowedAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	w := r.WindowedHistogram("lake_win_ns", "windowed", []int64{10, 100})
	if same := r.WindowedHistogram("lake_win_ns", "windowed", nil); same != w {
		t.Fatal("WindowedHistogram is not get-or-create")
	}
	g := r.GaugeFunc("lake_up", "derived", func() int64 { return 42 })
	if g.Value() != 42 {
		t.Fatalf("GaugeFunc value = %d, want 42", g.Value())
	}

	w.Observe(50)
	w.Roll()
	snap := r.Snapshot()
	if snap.Gauges["lake_up"] != 42 {
		t.Fatalf("snapshot gauge = %d, want 42", snap.Gauges["lake_up"])
	}
	ws, ok := snap.Windows["lake_win_ns"]
	if !ok || ws.Count != 1 || ws.P50 != 100 {
		t.Fatalf("snapshot window = %+v, ok=%v", ws, ok)
	}

	merged := MergedSnapshot(r, NewRegistry())
	if merged.Windows["lake_win_ns"].Count != 1 || merged.Gauges["lake_up"] != 42 {
		t.Fatalf("merged snapshot missing windowed/gaugefunc series: %+v", merged)
	}

	text := r.PrometheusText()
	for _, want := range []string{
		"# TYPE lake_win_ns gaugehistogram",
		`lake_win_ns_bucket{le="100"} 1`,
		"lake_win_ns_count 1",
		"# TYPE lake_up gauge",
		"lake_up 42",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
}
