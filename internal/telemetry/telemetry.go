// Package telemetry is LAKE's end-to-end observability plane: low-overhead
// metrics (atomic counters, gauges and fixed-bucket histograms) plus
// span-style per-call tracing, shared by every layer of the runtime —
// boundary transport, remoting, lakeD dispatch, the batcher, the GPU model
// and the supervisor.
//
// The paper's core argument is quantitative: Fig 3's profitability
// crossovers and §6's per-API breakdown both depend on knowing where time
// goes across the kernel↔user boundary. This package makes that signal
// always available at runtime instead of only inside ad-hoc experiment
// harnesses: subsystems hold direct instrument pointers (no map lookup on
// the hot path), every mutation is a handful of atomic operations with no
// allocation, and the whole registry can be exposed as Prometheus text or a
// JSON snapshot (core.Runtime.Telemetry, laked -telemetry-addr,
// lakebench -metrics).
//
// Instruments are nil-safe: methods on a nil *Counter, *Gauge, *Histogram,
// *Tracer or *Span are no-ops, so a runtime built with telemetry disabled
// pays only an untaken nil-check branch per site.
//
// Clock semantics: latency observations and span timestamps are virtual
// time (internal/vtime) — deterministic simulated nanoseconds. Stage wall
// durations on spans are the only wall-clock quantity, recorded for
// profiling the library itself.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Shared instrument names. The batcher, the offload runner and the Fig 3
// policy feedback all refer to the same observed-latency histograms; naming
// them once keeps the writers and the reader wired to the same series.
const (
	// MetricGPUItemLatency aggregates observed per-item virtual latency of
	// GPU-routed inference (batcher flushes and offload runs).
	MetricGPUItemLatency = "lake_gpu_item_latency_ns"
	// MetricCPUItemLatency is the CPU-fallback counterpart.
	MetricCPUItemLatency = "lake_cpu_item_latency_ns"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add applies a delta (queue depths go both ways).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds a process's named instruments and its tracer. Instruments
// are get-or-create by full name (which may carry Prometheus-style labels,
// e.g. `lake_boundary_sent_total{channel="Netlink"}`). A nil *Registry
// hands out nil instruments, so callers wire telemetry unconditionally and
// pay nothing when it is disabled.
type Registry struct {
	mu      sync.Mutex
	order   []string // registration order, for stable exposition
	metrics map[string]interface{}
	help    map[string]string
	tracer  Tracer
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		metrics: make(map[string]interface{}),
		help:    make(map[string]string),
	}
	// The tracer's done-ring eviction count is part of the exposition from
	// the start: a silent span drop is exactly the failure mode the counter
	// exists to surface.
	r.tracer.droppedCounter = r.Counter("lake_tracer_dropped_spans_total",
		"completed spans evicted from the tracer's bounded done-ring")
	return r
}

// Tracer returns the registry's span tracer (nil for a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return &r.tracer
}

// register get-or-creates the named instrument using mk; an existing entry
// must have the matching type (a mismatch is a programming error).
func (r *Registry) register(name, help string, mk func() interface{}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	r.help[name] = help
	r.order = append(r.order, name)
	return m
}

// Counter get-or-creates a counter (nil for a nil registry).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, help, func() interface{} { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return c
}

// Gauge get-or-creates a gauge (nil for a nil registry).
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, help, func() interface{} { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return g
}

// Histogram get-or-creates a histogram with the given bucket upper bounds
// (nil for a nil registry). Bounds are only consulted on first creation.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, help, func() interface{} { return NewHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", name, m))
	}
	return h
}

// names returns the registered names in registration order; sortedNames in
// lexical order grouped for exposition.
func (r *Registry) snapshotLocked() ([]string, map[string]interface{}, map[string]string) {
	names := make([]string, len(r.order))
	copy(names, r.order)
	metrics := make(map[string]interface{}, len(r.metrics))
	help := make(map[string]string, len(r.help))
	for k, v := range r.metrics {
		metrics[k] = v
		help[k] = r.help[k]
	}
	return names, metrics, help
}

// splitName separates a full metric name into its family and label part:
// `foo{a="b"}` -> (`foo`, `{a="b"}`); a plain name has an empty label part.
func splitName(name string) (family, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i], name[i:]
		}
	}
	return name, ""
}

// sortedByFamily returns names sorted so that series of the same family are
// adjacent (Prometheus exposition requires family grouping).
func sortedByFamily(names []string) []string {
	out := make([]string, len(names))
	copy(out, names)
	sort.SliceStable(out, func(i, j int) bool {
		fi, _ := splitName(out[i])
		fj, _ := splitName(out[j])
		if fi != fj {
			return fi < fj
		}
		return out[i] < out[j]
	})
	return out
}
