package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram over int64 values (virtual-clock
// nanoseconds for latencies, item counts for batch sizes). Observation is
// allocation-free: a short linear scan over the bucket bounds plus three
// atomic adds. Reads (Count, Quantile, snapshots) are lock-free and may
// observe a concurrent write partially applied — totals can transiently
// disagree with the bucket sum by in-flight observations, which is the
// standard monitoring trade-off and fine for exposition.
//
// A nil Histogram is a no-op. The zero value is unusable; construct with
// NewHistogram.
type Histogram struct {
	bounds []int64        // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64 // len(bounds)+1
	total  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds (values land in the first bucket whose bound is >= v; larger
// values land in the implicit +Inf bucket).
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// DefaultLatencyBuckets covers 1µs..1s in a 1-2-5 progression — the range
// LAKE's boundary crossings, launches and flushes span (Table 2, Fig 6 are
// tens of µs; contention tails reach ms).
func DefaultLatencyBuckets() []int64 {
	return []int64{
		1_000, 2_000, 5_000, // µs
		10_000, 20_000, 50_000,
		100_000, 200_000, 500_000,
		1_000_000, 2_000_000, 5_000_000, // ms
		10_000_000, 20_000_000, 50_000_000,
		100_000_000, 200_000_000, 500_000_000,
		1_000_000_000, // 1s
	}
}

// CountBuckets covers batch/queue sizes 1..1024 in powers of two.
func CountBuckets() []int64 {
	return []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a virtual duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper bound of the
// bucket holding the target observation; values in the overflow bucket
// saturate to the last finite bound. 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The rank is ceil(q*n), but the product can carry float error above the
	// exact integer (0.07*100 = 7.000000000000001) and ceil would then skip
	// to the next bucket; shave an epsilon before rounding up.
	target := int64(math.Ceil(q*float64(n) - 1e-9))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // +Inf bucket: saturate
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// QuantileDuration is Quantile for latency histograms, in virtual time. It
// is the policy.LatencySource feed for observed-latency profitability.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// bucketCounts snapshots cumulative bucket counts for exposition: one pair
// per finite bound plus the +Inf bucket.
func (h *Histogram) bucketCounts() (bounds []int64, cumulative []int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}
