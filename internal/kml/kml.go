// Package kml reproduces the filesystem prefetching workload (§7.4): KML's
// pre-trained neural network that classifies applications by I/O pattern,
// "where each pattern has an optimal readahead configuration", ported to a
// kernel module that uses CUDA through LAKE.
//
// The package contains the full pipeline: a workload generator emitting
// page-access streams for four canonical patterns, window statistics as
// model features, a trained classifier, an LRU page-cache simulator that
// quantifies how much pattern-matched readahead helps (the KML paper's
// RocksDB speedup analogue), and the Fig 11 batch sweep with its crossover
// at 64 inputs.
package kml

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"lakego/internal/core"
	"lakego/internal/nn"
	"lakego/internal/offload"
	"lakego/internal/policy"
)

// Pattern is one I/O access class.
type Pattern int

// The four access classes the classifier separates.
const (
	Sequential Pattern = iota
	Random
	Strided
	Zipf
)

var patternNames = [...]string{"sequential", "random", "strided", "zipf"}

func (p Pattern) String() string {
	if p >= 0 && int(p) < len(patternNames) {
		return patternNames[p]
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Patterns lists all classes.
func Patterns() []Pattern { return []Pattern{Sequential, Random, Strided, Zipf} }

// ReadaheadFor maps a predicted pattern to its readahead window in pages —
// the per-class "optimal readahead configuration". Forward-moving streams
// (sequential, short-stride) want a large window; reuse-heavy and random
// streams want prefetching off, since speculative pages only evict the
// working set.
func ReadaheadFor(p Pattern) int {
	switch p {
	case Sequential, Strided:
		return 64
	default: // Random, Zipf: prefetching only pollutes the cache
		return 0
	}
}

// WindowLen is the number of page accesses summarized per feature vector.
const WindowLen = 64

// InputWidth is the feature vector width.
const InputWidth = 10

// Sizes is the KML classifier shape.
func Sizes() []int { return []int{InputWidth, 128, len(patternNames)} }

// MaxBatch bounds one classification batch.
const MaxBatch = 1024

// Kernel-space CPU cost, calibrated so the Fig 11 crossover against the
// LAKE async path (~70 µs fixed) lands at batch 64 ("The GPU is profitable
// [when] more than 64 inputs are batched").
const (
	cpuFixed   = 2 * time.Microsecond
	cpuPerItem = 1100 * time.Nanosecond
)

// Generate emits a page-access stream of the given pattern.
func Generate(p Pattern, seed int64, n int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	var pos int64 = 1 << 20
	const space = 1 << 24
	switch p {
	case Sequential:
		for i := range out {
			pos++
			if rng.Float64() < 0.02 { // occasional seek
				pos = rng.Int63n(space)
			}
			out[i] = pos
		}
	case Random:
		for i := range out {
			out[i] = rng.Int63n(space)
		}
	case Strided:
		stride := int64(7 + rng.Intn(9))
		for i := range out {
			pos += stride
			if rng.Float64() < 0.02 {
				pos = rng.Int63n(space)
			}
			out[i] = pos
		}
	case Zipf:
		z := rand.NewZipf(rng, 1.2, 1, space-1)
		for i := range out {
			out[i] = int64(z.Uint64())
		}
	}
	return out
}

// Features summarizes a window of page accesses into the model's input:
// forward-seq fraction, unit-step fraction, constant-stride fraction, mean
// and dispersion of gaps, reuse statistics.
func Features(window []int64) []float32 {
	f := make([]float32, InputWidth)
	if len(window) < 2 {
		return f
	}
	gaps := make([]float64, 0, len(window)-1)
	seen := make(map[int64]int, len(window))
	var fwd, unit int
	strideCount := map[int64]int{}
	reuses := 0
	for i, pg := range window {
		if c := seen[pg]; c > 0 {
			reuses++
		}
		seen[pg]++
		if i == 0 {
			continue
		}
		g := window[i] - window[i-1]
		gaps = append(gaps, float64(g))
		if g > 0 {
			fwd++
		}
		if g == 1 {
			unit++
		}
		strideCount[g]++
	}
	n := float64(len(gaps))
	var mean, absMean float64
	for _, g := range gaps {
		mean += g
		absMean += math.Abs(g)
	}
	mean /= n
	absMean /= n
	var variance float64
	for _, g := range gaps {
		variance += (g - mean) * (g - mean)
	}
	variance /= n
	// Deterministic tie-break (map order varies): prefer the smaller
	// absolute stride so the feature is stable run to run.
	maxStride, maxStrideCnt := int64(0), 0
	for s, c := range strideCount {
		abs := s
		if abs < 0 {
			abs = -abs
		}
		cur := maxStride
		if cur < 0 {
			cur = -cur
		}
		if c > maxStrideCnt || (c == maxStrideCnt && abs < cur) {
			maxStride, maxStrideCnt = s, c
		}
	}
	uniq := float64(len(seen))

	// Log-scale magnitudes are normalized by log1p(2^24) so every feature
	// lands in ~[0,1]; without this the magnitude features swamp the
	// fraction features and SGD conditions poorly.
	const logNorm = 16.7
	f[0] = float32(float64(fwd) / n)                                   // forward fraction
	f[1] = float32(float64(unit) / n)                                  // unit-stride fraction
	f[2] = float32(float64(maxStrideCnt) / n)                          // dominant-stride fraction
	f[3] = float32(math.Log1p(math.Abs(float64(maxStride))) / logNorm) // dominant stride magnitude
	f[4] = float32(math.Log1p(absMean) / logNorm)                      // mean |gap|
	f[5] = float32(math.Log1p(math.Sqrt(variance)) / logNorm)          // gap dispersion
	f[6] = float32(float64(reuses) / float64(len(window)))             // reuse fraction
	f[7] = float32(uniq / float64(len(window)))                        // uniqueness
	f[8] = float32(math.Log1p(math.Abs(mean)) / logNorm)               // signed mean gap
	if mean < 0 {
		f[9] = 1 // backward drift
	}
	return f
}

// Sample is one labeled feature vector.
type Sample struct {
	X     []float32
	Label Pattern
}

// Dataset synthesizes labeled windows for every pattern.
func Dataset(seed int64, perClass int) []Sample {
	var out []Sample
	for _, p := range Patterns() {
		stream := Generate(p, seed+int64(p), perClass*WindowLen)
		for w := 0; w+WindowLen <= len(stream); w += WindowLen {
			out = append(out, Sample{X: Features(stream[w : w+WindowLen]), Label: p})
		}
	}
	return out
}

// Train fits the KML classifier and returns it with training accuracy.
func Train(seed int64, samples []Sample, epochs int) (*nn.Network, float64, error) {
	if len(samples) == 0 {
		return nil, 0, fmt.Errorf("kml: no samples")
	}
	net := nn.New(seed, Sizes()...)
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(samples))
	for e := 0; e < epochs; e++ {
		for at := 0; at < len(idx); at += 32 {
			end := at + 32
			if end > len(idx) {
				end = len(idx)
			}
			xs := make([][]float32, 0, end-at)
			labels := make([]int, 0, end-at)
			for _, i := range idx[at:end] {
				xs = append(xs, samples[i].X)
				labels = append(labels, int(samples[i].Label))
			}
			if _, err := net.TrainBatch(xs, labels, 0.1); err != nil {
				return nil, 0, err
			}
		}
	}
	xs := make([][]float32, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		xs[i], labels[i] = s.X, int(s.Label)
	}
	return net, net.Accuracy(xs, labels), nil
}

// Classifier is the KML model wired through LAKE. The serving network
// sits behind an atomic pointer so the model lifecycle can hot-swap
// versions; the offload runner resolves the forward function once per
// batch, so a swap never mixes versions inside a batch.
type Classifier struct {
	net    atomic.Pointer[nn.Network]
	runner *offload.Runner
}

// New wraps a trained network for runtime rt.
func New(rt *core.Runtime, net *nn.Network) (*Classifier, error) {
	if err := checkSizes(net); err != nil {
		return nil, err
	}
	c := &Classifier{}
	c.net.Store(net)
	runner, err := offload.NewRunner(rt, offload.Config{
		Name:        "kml_nn",
		InputWidth:  InputWidth,
		OutputWidth: len(patternNames),
		MaxBatch:    MaxBatch,
		CPUFixed:    cpuFixed,
		CPUPerItem:  cpuPerItem,
		// SwapNet only admits same-shape networks, so the per-item FLOP
		// count captured here stays correct across hot-swaps.
		FlopsPerItem:    net.Flops(),
		ForwardProvider: func() func([]float32) []float32 { return c.net.Load().Forward },
	})
	if err != nil {
		return nil, err
	}
	c.runner = runner
	return c, nil
}

func checkSizes(net *nn.Network) error {
	got := net.Sizes()
	if got[0] != InputWidth || got[len(got)-1] != len(patternNames) {
		return fmt.Errorf("kml: network sizes %v, want %v", got, Sizes())
	}
	return nil
}

// Net returns the serving network.
func (c *Classifier) Net() *nn.Network { return c.net.Load() }

// SwapNet atomically replaces the serving network — the lifecycle
// manager's hot-swap hook. The replacement must have the KML input and
// output widths. In-flight batches finish on the version they resolved.
func (c *Classifier) SwapNet(net *nn.Network) error {
	// Fast path: shape-matching the serving net avoids the Sizes()
	// allocations on every flip; odd shapes fall through to the full check.
	if !nn.SameShape(c.net.Load(), net) {
		if err := checkSizes(net); err != nil {
			return err
		}
	}
	c.net.Store(net)
	return nil
}

// Runner exposes the offload runner.
func (c *Classifier) Runner() *offload.Runner { return c.runner }

// ClassifyCPU predicts patterns on the kernel CPU path.
func (c *Classifier) ClassifyCPU(batch [][]float32) ([]Pattern, time.Duration) {
	out, d := c.runner.RunCPU(batch)
	return argmaxAll(out), d
}

// ClassifyLAKE predicts patterns through LAKE.
func (c *Classifier) ClassifyLAKE(batch [][]float32, sync bool) ([]Pattern, time.Duration, error) {
	out, d, err := c.runner.RunLAKE(batch, sync)
	if err != nil {
		return nil, 0, err
	}
	return argmaxAll(out), d, nil
}

// ClassifyAuto routes the batch through pol and classifies on the decided
// path, falling back to the kernel CPU path when lakeD is unavailable — a
// readahead decision is still due even with the accelerator service down.
// The returned Decision is the path that ran.
func (c *Classifier) ClassifyAuto(batch [][]float32, pol policy.Func) ([]Pattern, policy.Decision, time.Duration, error) {
	out, dec, d, err := c.runner.RunAuto(batch, pol)
	if err != nil {
		return nil, dec, 0, err
	}
	return argmaxAll(out), dec, d, nil
}

func argmaxAll(out [][]float32) []Pattern {
	res := make([]Pattern, len(out))
	for i, y := range out {
		best := 0
		for j, v := range y {
			if v > y[best] {
				best = j
			}
		}
		res[i] = Pattern(best)
	}
	return res
}

// Sweep produces the Fig 11 series.
func Sweep(c *Classifier, batches []int) ([]offload.SweepPoint, error) {
	streams := make([][]int64, len(patternNames))
	for _, p := range Patterns() {
		streams[p] = Generate(p, 99, WindowLen*4)
	}
	return offload.Sweep(c.runner, batches, func(i int) []float32 {
		p := Pattern(i % len(patternNames))
		off := (i % 4) * WindowLen
		return Features(streams[p][off : off+WindowLen])
	})
}

// --- Readahead cache simulator --------------------------------------------

// CacheSim measures how a readahead window performs against an access
// stream on an LRU page cache: the substrate for showing pattern-matched
// readahead beats a fixed configuration.
type CacheSim struct {
	capacity int
	lru      map[int64]int // page -> last-use tick
	tick     int
}

// NewCacheSim creates an LRU page cache of the given capacity (pages).
func NewCacheSim(capacity int) *CacheSim {
	return &CacheSim{capacity: capacity, lru: make(map[int64]int, capacity)}
}

func (c *CacheSim) touch(pg int64) {
	c.tick++
	if len(c.lru) >= c.capacity {
		if _, ok := c.lru[pg]; !ok {
			// Evict least recently used.
			var victim int64
			oldest := math.MaxInt
			for p, t := range c.lru {
				if t < oldest {
					victim, oldest = p, t
				}
			}
			delete(c.lru, victim)
		}
	}
	c.lru[pg] = c.tick
}

// CacheResult reports a run's hit statistics and modeled throughput.
type CacheResult struct {
	Hits, Misses int
	Prefetched   int
	HitRatio     float64
	// Throughput is accesses per second under a 100µs miss / 1µs hit
	// cost model with prefetches overlapped at half cost.
	Throughput float64
}

// Run replays the stream with the given readahead window.
func (c *CacheSim) Run(stream []int64, readahead int) CacheResult {
	var res CacheResult
	for _, pg := range stream {
		if _, ok := c.lru[pg]; ok {
			res.Hits++
			c.touch(pg)
			continue
		}
		res.Misses++
		c.touch(pg)
		for i := 1; i <= readahead; i++ {
			c.touch(pg + int64(i))
			res.Prefetched++
		}
	}
	total := res.Hits + res.Misses
	if total == 0 {
		return res
	}
	res.HitRatio = float64(res.Hits) / float64(total)
	const missCost, hitCost, prefetchCost = 100e-6, 1e-6, 0.4e-6
	secs := float64(res.Misses)*missCost + float64(res.Hits)*hitCost +
		float64(res.Prefetched)*prefetchCost
	res.Throughput = float64(total) / secs
	return res
}
