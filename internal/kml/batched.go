package kml

import (
	"lakego/internal/batcher"
)

// BatchModelName is the batcher model registered by EnableBatching.
const BatchModelName = "kml_nn_batched"

// EnableBatching registers the classifier with the lakeD cross-client
// batcher: per-mount readahead classifiers each see few windows per flush
// interval (the Fig 11 crossover is 64 inputs), so coalescing mounts is
// what makes GPU offload profitable.
func (c *Classifier) EnableBatching(b *batcher.Batcher) error {
	return b.RegisterModel(batcher.ModelConfig{
		Name:       BatchModelName,
		InputWidth: InputWidth, OutputWidth: len(patternNames),
		MaxBatch: MaxBatch,
		CPUFixed: cpuFixed, CPUPerItem: cpuPerItem,
		// Same-shape SwapNet keeps the FLOP count stable; the provider
		// resolves the serving version once per flush.
		FlopsPerItem:    c.Net().Flops(),
		ForwardProvider: func() func([]float32) []float32 { return c.Net().Forward },
	})
}

// ClassifyBatched predicts patterns through the cross-client batcher,
// bit-identical to ClassifyCPU / ClassifyLAKE.
func (c *Classifier) ClassifyBatched(cl *batcher.Client, batch [][]float32) ([]Pattern, error) {
	out, err := cl.Infer(BatchModelName, batch)
	if err != nil {
		return nil, err
	}
	return argmaxAll(out), nil
}
