package kml

import (
	"fmt"
	"time"
)

// Closed-loop adaptive readahead: the deployed form of KML. The kernel
// observes an application's recent accesses, classifies the pattern with
// the trained model, and sets the readahead window for the next stretch —
// reacting when the application changes phase (the scenario where a fixed
// configuration must lose).

// Phase is one stretch of a synthetic application's life.
type Phase struct {
	Pattern Pattern
	// Accesses in this phase.
	Length int
}

// PhaseWorkload builds an application that alternates between phases, e.g.
// a scan phase followed by point lookups (the RocksDB-like behaviour the
// KML paper targets).
func PhaseWorkload(seed int64, phases []Phase) []int64 {
	var stream []int64
	for i, ph := range phases {
		stream = append(stream, Generate(ph.Pattern, seed+int64(i)*131, ph.Length)...)
	}
	return stream
}

// AdaptiveResult summarizes a closed-loop run.
type AdaptiveResult struct {
	CacheResult
	// Reclassifications counts classifier invocations.
	Reclassifications int
	// InferenceTime is the modeled cost of those classifications.
	InferenceTime time.Duration
	// Correct counts windows classified to the phase's true pattern.
	Correct int
}

// RunAdaptive replays the stream against the cache, re-classifying every
// WindowLen accesses with the model (via the classifier's CPU path — the
// decision is coarse-grained, §7.4) and applying the predicted pattern's
// readahead to the next window. truth, when provided (same length as the
// number of windows), scores classification correctness.
func RunAdaptive(c *Classifier, cache *CacheSim, stream []int64, truth []Pattern) (AdaptiveResult, error) {
	if len(stream) < WindowLen {
		return AdaptiveResult{}, fmt.Errorf("kml: stream shorter than one window")
	}
	var res AdaptiveResult
	readahead := ReadaheadFor(Sequential) // optimistic default, like Linux
	var agg CacheResult
	w := 0
	for at := 0; at+WindowLen <= len(stream); at += WindowLen {
		window := stream[at : at+WindowLen]
		r := cache.Run(window, readahead)
		agg.Hits += r.Hits
		agg.Misses += r.Misses
		agg.Prefetched += r.Prefetched
		// Classify the window just seen; its pattern governs the next.
		preds, d := c.ClassifyCPU([][]float32{Features(window)})
		res.Reclassifications++
		res.InferenceTime += d
		if truth != nil && w < len(truth) && preds[0] == truth[w] {
			res.Correct++
		}
		readahead = ReadaheadFor(preds[0])
		w++
	}
	total := agg.Hits + agg.Misses
	if total > 0 {
		agg.HitRatio = float64(agg.Hits) / float64(total)
		const missCost, hitCost, prefetchCost = 100e-6, 1e-6, 0.4e-6
		secs := float64(agg.Misses)*missCost + float64(agg.Hits)*hitCost +
			float64(agg.Prefetched)*prefetchCost
		agg.Throughput = float64(total) / secs
	}
	res.CacheResult = agg
	return res, nil
}

// RunFixed replays the stream with a constant readahead, the kernel-default
// baseline.
func RunFixed(cache *CacheSim, stream []int64, readahead int) CacheResult {
	return cache.Run(stream, readahead)
}
