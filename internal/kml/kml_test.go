package kml

import (
	"testing"

	"lakego/internal/core"
	"lakego/internal/nn"
	"lakego/internal/offload"
)

func boot(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestGeneratePatternsDiffer(t *testing.T) {
	seq := Generate(Sequential, 1, 256)
	rnd := Generate(Random, 1, 256)
	if len(seq) != 256 || len(rnd) != 256 {
		t.Fatal("wrong lengths")
	}
	// Sequential streams are mostly unit-stride; random never are.
	unit := func(s []int64) int {
		n := 0
		for i := 1; i < len(s); i++ {
			if s[i]-s[i-1] == 1 {
				n++
			}
		}
		return n
	}
	if unit(seq) < 200 {
		t.Fatalf("sequential stream has %d unit strides", unit(seq))
	}
	if unit(rnd) > 10 {
		t.Fatalf("random stream has %d unit strides", unit(rnd))
	}
}

func TestFeaturesSeparateClasses(t *testing.T) {
	fSeq := Features(Generate(Sequential, 2, WindowLen))
	fRnd := Features(Generate(Random, 2, WindowLen))
	if fSeq[1] < 0.8 {
		t.Fatalf("sequential unit-stride fraction = %v", fSeq[1])
	}
	if fRnd[1] > 0.1 {
		t.Fatalf("random unit-stride fraction = %v", fRnd[1])
	}
	fStr := Features(Generate(Strided, 2, WindowLen))
	if fStr[2] < 0.7 {
		t.Fatalf("strided dominant-stride fraction = %v", fStr[2])
	}
	fZipf := Features(Generate(Zipf, 2, WindowLen))
	if fZipf[6] <= fRnd[6] {
		t.Fatalf("zipf reuse %v not > random reuse %v", fZipf[6], fRnd[6])
	}
}

func TestFeaturesDegenerate(t *testing.T) {
	if got := Features(nil); len(got) != InputWidth {
		t.Fatalf("Features(nil) width %d", len(got))
	}
	if got := Features([]int64{5}); len(got) != InputWidth {
		t.Fatalf("Features(1) width %d", len(got))
	}
}

func TestTrainReachesHighAccuracy(t *testing.T) {
	samples := Dataset(7, 60)
	net, acc, err := Train(7, samples, 12)
	if err != nil {
		t.Fatal(err)
	}
	if net == nil || acc < 0.9 {
		t.Fatalf("training accuracy = %.3f, want >= 0.9 (4-way patterns are separable)", acc)
	}
}

func TestTrainEmpty(t *testing.T) {
	if _, _, err := Train(1, nil, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestClassifierEndToEnd(t *testing.T) {
	rt := boot(t)
	net, _, err := Train(9, Dataset(9, 40), 10)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(rt, net)
	if err != nil {
		t.Fatal(err)
	}
	// Classify held-out windows of each class via both paths.
	var batch [][]float32
	var want []Pattern
	for _, p := range Patterns() {
		for w := 0; w < 4; w++ {
			batch = append(batch, Features(Generate(p, 1000+int64(w), WindowLen)))
			want = append(want, p)
		}
	}
	cpu, _ := c.ClassifyCPU(batch)
	lake, _, err := c.ClassifyLAKE(batch, true)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range cpu {
		if cpu[i] != lake[i] {
			t.Fatalf("path disagreement at %d", i)
		}
		if cpu[i] == want[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(want)); acc < 0.8 {
		t.Fatalf("held-out accuracy = %.2f, want >= 0.8", acc)
	}
}

func TestNewRejectsWrongShape(t *testing.T) {
	rt := boot(t)
	if _, err := New(rt, nn.New(1, 3, 4)); err == nil {
		t.Fatal("wrong shape accepted")
	}
}

// Fig 11 / Table 3: crossover at 64 classifications.
func TestFig11Crossover(t *testing.T) {
	rt := boot(t)
	c, err := New(rt, nn.New(5, Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Sweep(c, offload.StandardBatches())
	if err != nil {
		t.Fatal(err)
	}
	if got := offload.Crossover(pts); got != 64 {
		for _, p := range pts {
			t.Logf("batch %4d: cpu=%v lake=%v sync=%v", p.Batch, p.CPU, p.LAKE, p.LAKESync)
		}
		t.Fatalf("crossover = %d, want 64 (Table 3)", got)
	}
}

// Pattern-matched readahead must beat both extremes of fixed configuration
// on a mixed workload — the motivation for KML.
func TestAdaptiveReadaheadBeatsFixed(t *testing.T) {
	run := func(choose func(Pattern) int) float64 {
		var totalThroughput float64
		for _, p := range Patterns() {
			stream := Generate(p, 42, 4096)
			sim := NewCacheSim(512)
			res := sim.Run(stream, choose(p))
			totalThroughput += res.Throughput
		}
		return totalThroughput
	}
	adaptive := run(ReadaheadFor)
	alwaysBig := run(func(Pattern) int { return 64 })
	never := run(func(Pattern) int { return 0 })
	if adaptive <= alwaysBig || adaptive <= never {
		t.Fatalf("adaptive %.0f not better than fixed-big %.0f / fixed-off %.0f",
			adaptive, alwaysBig, never)
	}
}

func TestCacheSimBasics(t *testing.T) {
	sim := NewCacheSim(4)
	res := sim.Run([]int64{1, 2, 3, 1, 2, 3}, 0)
	if res.Hits != 3 || res.Misses != 3 {
		t.Fatalf("hits/misses = %d/%d, want 3/3", res.Hits, res.Misses)
	}
	if res.HitRatio != 0.5 || res.Throughput <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if got := (&CacheSim{capacity: 1, lru: map[int64]int{}}).Run(nil, 0); got.Hits != 0 {
		t.Fatal("empty stream produced hits")
	}
}

func TestReadaheadHelpsSequential(t *testing.T) {
	stream := Generate(Sequential, 3, 2048)
	with := NewCacheSim(256).Run(stream, 64)
	without := NewCacheSim(256).Run(stream, 0)
	if with.HitRatio <= without.HitRatio {
		t.Fatalf("readahead hit ratio %.2f not > %.2f", with.HitRatio, without.HitRatio)
	}
}

func TestRandomReadaheadPollutes(t *testing.T) {
	stream := Generate(Zipf, 3, 4096)
	with := NewCacheSim(256).Run(stream, 64)
	without := NewCacheSim(256).Run(stream, 0)
	if with.Throughput >= without.Throughput {
		t.Fatalf("useless prefetch did not hurt: with=%.0f without=%.0f",
			with.Throughput, without.Throughput)
	}
}

func TestPatternStringsAndReadahead(t *testing.T) {
	if Sequential.String() != "sequential" || Pattern(9).String() == "" {
		t.Fatal("pattern strings wrong")
	}
	if ReadaheadFor(Random) != 0 || ReadaheadFor(Sequential) == 0 {
		t.Fatal("readahead mapping wrong")
	}
}

// The deployed KML loop: classifier-driven readahead on a phase-switching
// application must beat both fixed configurations — with the classifier in
// the loop, not ground truth.
func TestClosedLoopAdaptiveBeatsFixed(t *testing.T) {
	rt := boot(t)
	net, _, err := Train(13, Dataset(13, 50), 12)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(rt, net)
	if err != nil {
		t.Fatal(err)
	}
	// Scan -> point lookups -> scan -> hot-set lookups, like a compaction
	// cycle interleaved with serving.
	phases := []Phase{
		{Sequential, 2048}, {Random, 2048}, {Sequential, 2048}, {Zipf, 2048},
	}
	stream := PhaseWorkload(99, phases)
	var truth []Pattern
	for _, ph := range phases {
		for i := 0; i < ph.Length/WindowLen; i++ {
			truth = append(truth, ph.Pattern)
		}
	}

	adaptive, err := RunAdaptive(c, NewCacheSim(512), stream, truth)
	if err != nil {
		t.Fatal(err)
	}
	fixedBig := RunFixed(NewCacheSim(512), stream, 64)
	fixedOff := RunFixed(NewCacheSim(512), stream, 0)

	if acc := float64(adaptive.Correct) / float64(adaptive.Reclassifications); acc < 0.8 {
		t.Fatalf("in-loop classification accuracy = %.2f", acc)
	}
	if adaptive.Throughput <= fixedBig.Throughput {
		t.Fatalf("adaptive %.0f not > fixed-64 %.0f acc/s", adaptive.Throughput, fixedBig.Throughput)
	}
	if adaptive.Throughput <= fixedOff.Throughput {
		t.Fatalf("adaptive %.0f not > fixed-off %.0f acc/s", adaptive.Throughput, fixedOff.Throughput)
	}
	if adaptive.InferenceTime <= 0 || adaptive.Reclassifications == 0 {
		t.Fatal("no classification work recorded")
	}
}

func TestRunAdaptiveValidation(t *testing.T) {
	rt := boot(t)
	c, err := New(rt, nn.New(1, Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAdaptive(c, NewCacheSim(16), []int64{1, 2}, nil); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestPhaseWorkloadComposition(t *testing.T) {
	stream := PhaseWorkload(1, []Phase{{Sequential, 100}, {Random, 50}})
	if len(stream) != 150 {
		t.Fatalf("stream = %d accesses, want 150", len(stream))
	}
}
