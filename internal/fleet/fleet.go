// Package fleet shards LAKE horizontally: N independent lakeD runtimes —
// each with its own daemon, supervisor, batcher, device pool and fault
// plane — behind a client-side router.
//
// LAKE's trust argument (§4: one privileged daemon owns the accelerators)
// does not require one *global* daemon: a host with many devices, or a
// deployment that wants fault isolation between kernel subsystems, can run
// several lakeDs, each owning a slice of the hardware. What must not change
// is the client contract — exactly-once execution, deterministic replay,
// explicit backpressure. The fleet keeps those invariants across shards:
//
//   - Routing is client-side and sticky: a tenant is placed onto a shard by
//     a pluggable policy (the same policy set internal/gpupool uses for
//     device placement, including a seeded consistent-hash ring) and stays
//     there until the shard drains or dies.
//   - Admission is layered: the batcher's per-client depth still applies on
//     the shard, and the fleet adds per-tenant caps plus weighted fair-share
//     quotas across the whole fleet, both surfacing the same retryable
//     batcher.ErrBackpressure.
//   - Drain/migration generalizes the supervisor's journal re-attach: a
//     shard quiesces, its exactly-once journal crosses to a successor as a
//     CRC-sealed handoff frame (remoting.MarshalHandoff), its tenants are
//     re-routed, and redelivered calls are answered from the merged journal
//     — zero lost, zero re-executed.
//
// Each shard runs on its own virtual clock: shards model independent lakeD
// processes whose service timelines overlap in real time, so charging one
// shard's round trips never stalls another's — the same rule gpu.Stream
// applies to device timelines, where only synchronization couples clocks.
// The fleet's elapsed virtual time is the maximum over shards (the critical
// path; see VirtualElapsed). One flight recorder spans the fleet: each
// shard holds a view (flightrec.WithShard) that stamps events with the
// shard ordinal and the shard's own clock.
package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/core"
	"lakego/internal/flightrec"
	"lakego/internal/gpu"
	"lakego/internal/gpupool"
	"lakego/internal/healthplane"
	"lakego/internal/lifecycle"
	"lakego/internal/nvml"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

// Config parameterizes a fleet.
type Config struct {
	// Runtime is the per-shard template. NumShards, RouterPolicy and
	// RouterSeed are consumed here (core.New ignores them); every other
	// field applies to each shard identically, except Clock and Recorder,
	// which the fleet always creates itself: one fresh clock per shard
	// (shards are independent processes with independent timelines) and one
	// root flight recorder whose per-shard views it hands to each runtime.
	Runtime core.Config
	// Batcher parameterizes every shard's batching subsystem.
	Batcher batcher.Config
	// MaxOutstanding caps fleet-wide in-flight requests for fair-share
	// admission: a tenant above its weighted share is rejected once the
	// fleet is at this cap (work-conserving: below the cap any tenant may
	// exceed its share). 0 disables the fleet-wide cap; per-tenant caps
	// and per-shard batcher depth still apply.
	MaxOutstanding int
}

// ShardState is the router's view of one shard.
type ShardState int32

const (
	// Active shards accept placements and traffic.
	Active ShardState = iota
	// Draining shards are excluded from placement while in-flight work
	// quiesces; they still answer journal redeliveries.
	Draining
	// Dead shards are gone: daemon abandoned, journal migrated, tenants
	// re-routed.
	Dead
)

var shardStateNames = [...]string{"Active", "Draining", "Dead"}

func (s ShardState) String() string {
	if s < 0 || int(s) >= len(shardStateNames) {
		return fmt.Sprintf("ShardState(%d)", int(s))
	}
	return shardStateNames[s]
}

// Shard is one lakeD runtime plus its batcher under fleet management.
type Shard struct {
	ord   int
	rt    *core.Runtime
	b     *batcher.Batcher
	clock *vtime.Clock
	state atomic.Int32
	// outstanding counts in-flight fleet requests routed to this shard,
	// the least-outstanding router signal.
	outstanding atomic.Int64
}

// Ordinal returns the shard's index in the fleet.
func (s *Shard) Ordinal() int { return s.ord }

// Runtime returns the shard's LAKE runtime.
func (s *Shard) Runtime() *core.Runtime { return s.rt }

// Batcher returns the shard's batching subsystem.
func (s *Shard) Batcher() *batcher.Batcher { return s.b }

// Clock returns the shard's own virtual clock.
func (s *Shard) Clock() *vtime.Clock { return s.clock }

// State returns the router's view of the shard.
func (s *Shard) State() ShardState { return ShardState(s.state.Load()) }

// Outstanding reports in-flight fleet requests currently routed here.
func (s *Shard) Outstanding() int64 { return s.outstanding.Load() }

// Fleet is a booted shard set plus its router state.
type Fleet struct {
	cfg    Config
	rec    *flightrec.Recorder // root recorder; shard views wrap it
	shards []*Shard
	policy gpupool.Policy
	ring   *gpupool.Ring

	mu      sync.Mutex
	rng     *rand.Rand
	cursor  int
	tenants map[string]*Tenant

	outstanding atomic.Int64 // fleet-wide, for the fair-share cap
	totalWeight atomic.Int64

	tel  *telemetry.Registry // fleet-level (router) registry
	rtel routerTelemetry
}

type routerTelemetry struct {
	placements *telemetry.Counter
	reroutes   *telemetry.Counter
	migrations *telemetry.Counter
	rejects    *telemetry.Counter
	gpuUtil    *telemetry.Gauge
	memUtil    *telemetry.Gauge
}

// New boots cfg.Runtime.NumShards independent runtimes — one virtual clock
// each — shares one flight recorder across them, and builds the router.
func New(cfg Config) (*Fleet, error) {
	n := cfg.Runtime.NumShards
	if n <= 0 {
		n = 1
	}
	f := &Fleet{
		cfg:     cfg,
		policy:  cfg.Runtime.RouterPolicy,
		rng:     rand.New(rand.NewSource(cfg.Runtime.RouterSeed)),
		tenants: make(map[string]*Tenant),
	}
	telemetryOn := !cfg.Runtime.DisableTelemetry
	recorderOn := telemetryOn && !cfg.Runtime.DisableFlightRecorder
	if recorderOn {
		// The root's own clock only stamps events emitted outside any
		// shard; shard views carry their shard's clock.
		f.rec = flightrec.New(vtime.New(), cfg.Runtime.FlightRecorderSize)
	}
	if telemetryOn {
		f.tel = telemetry.NewRegistry()
		f.rtel = routerTelemetry{
			placements: f.tel.Counter("lake_router_placements_total", "Tenant placements decided by the fleet router."),
			reroutes:   f.tel.Counter("lake_router_reroutes_total", "Placements that moved a tenant off a draining or dead shard."),
			migrations: f.tel.Counter("lake_router_migrations_total", "Completed shard journal migrations (drains and kills)."),
			rejects:    f.tel.Counter("lake_router_admission_rejects_total", "Submissions rejected by fleet admission (tenant cap or fair share)."),
			gpuUtil:    f.tel.Gauge("lake_fleet_gpu_util", "Last fleet-wide NVML GPU utilization aggregate (percent)."),
			memUtil:    f.tel.Gauge("lake_fleet_mem_util", "Last fleet-wide NVML memory utilization aggregate (percent)."),
		}
	}
	for i := 0; i < n; i++ {
		clk := vtime.New()
		scfg := cfg.Runtime
		scfg.NumShards = 0
		scfg.Clock = clk
		scfg.ShardOrdinal = i
		scfg.ShardLabel = fmt.Sprint(i)
		scfg.Recorder = nil
		if f.rec != nil {
			scfg.Recorder = f.rec.WithShard(i, clk)
		}
		rt, err := core.New(scfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		f.shards = append(f.shards, &Shard{
			ord:   i,
			rt:    rt,
			b:     rt.NewBatcher(cfg.Batcher),
			clock: clk,
		})
	}
	if f.policy == gpupool.ConsistentHash {
		f.ring = gpupool.NewRing(n, 0, cfg.Runtime.RouterSeed)
	}
	return f, nil
}

// NumShards returns the shard count.
func (f *Fleet) NumShards() int { return len(f.shards) }

// Shard returns shard ord; it panics on an out-of-range ordinal, like
// indexing a slice.
func (f *Fleet) Shard(ord int) *Shard { return f.shards[ord] }

// Shards returns the fleet's shards in ordinal order. Callers must not
// mutate the slice.
func (f *Fleet) Shards() []*Shard { return f.shards }

// VirtualElapsed returns the fleet's elapsed virtual time: the maximum
// over shards of each shard's clock. Shards are independent processes whose
// service timelines run concurrently, so the fleet finishes when its
// slowest shard does — the critical-path makespan, the denominator for
// fleet throughput.
func (f *Fleet) VirtualElapsed() time.Duration {
	var max time.Duration
	for _, s := range f.shards {
		if now := s.clock.Now(); now > max {
			max = now
		}
	}
	return max
}

// Recorder returns the fleet's root flight recorder (nil when disabled).
// Shard runtimes hold per-shard views of it; events from every shard land
// in this recorder's rings with shard ordinals stamped on.
func (f *Fleet) Recorder() *flightrec.Recorder { return f.rec }

// Policy returns the router's placement policy.
func (f *Fleet) Policy() gpupool.Policy { return f.policy }

// Telemetry returns the fleet-level (router) registry, nil when telemetry
// is disabled. Per-shard instruments live on each shard runtime's own
// registry; see PrometheusText and Snapshot for the merged view.
func (f *Fleet) Telemetry() *telemetry.Registry { return f.tel }

// RegisterModel installs a model on every shard's batcher: a tenant can be
// (re-)routed to any shard and must find its model there.
func (f *Fleet) RegisterModel(mc batcher.ModelConfig) error {
	for _, s := range f.shards {
		if err := s.b.RegisterModel(mc); err != nil {
			return fmt.Errorf("fleet: shard %d: %w", s.ord, err)
		}
	}
	return nil
}

// AggregateRates folds every shard's device pool into one fleet-wide
// NVML-style reading and records it on the fleet gauges.
func (f *Fleet) AggregateRates() nvml.Utilization {
	var devs []*gpu.Device
	for _, s := range f.shards {
		devs = append(devs, s.rt.Pool().Devices()...)
	}
	u := nvml.AggregateUtilizationRates(devs)
	f.rtel.gpuUtil.Set(int64(u.GPU))
	f.rtel.memUtil.Set(int64(u.Memory))
	return u
}

// registries returns the fleet registry followed by every shard's, the
// merge order for exposition (router series first, then shards by ordinal).
func (f *Fleet) registries() []*telemetry.Registry {
	regs := []*telemetry.Registry{f.tel}
	for _, s := range f.shards {
		regs = append(regs, s.rt.Telemetry())
	}
	return regs
}

// PrometheusText renders the merged fleet exposition: router series plus
// every shard's registry, shard-labeled series keeping them distinct.
func (f *Fleet) PrometheusText() string {
	f.AggregateRates()
	return telemetry.MergedPrometheusText(f.registries()...)
}

// Snapshot captures the merged fleet metrics view.
func (f *Fleet) Snapshot() telemetry.Snapshot {
	f.AggregateRates()
	return telemetry.MergedSnapshot(f.registries()...)
}

// NewHealthPlane boots the live health plane over the whole fleet: it tails
// the shared root flight recorder (every shard's events, shard-stamped),
// feeds the SLO engine from the merged per-shard telemetry, watches every
// shard's lifecycle managers, and probes per-shard readiness — a shard is
// ready while it is Active for the router and its lakeD supervisor (when
// armed) reports Healthy or ReAttached. Outstanding counts routed in-flight
// requests, so the completion-progress stall watchdog is live here.
func (f *Fleet) NewHealthPlane(cfg healthplane.Config) *healthplane.Plane {
	if cfg.Version == "" {
		cfg.Version = core.BuildVersion
	}
	p := healthplane.New(cfg)
	p.SetClock(f.VirtualElapsed)
	p.SetRecorder(f.rec)
	p.SetTelemetrySource(f.Snapshot)
	p.SetModelSource(func() []*lifecycle.Manager {
		var out []*lifecycle.Manager
		for _, s := range f.shards {
			out = append(out, s.rt.ModelLifecycles()...)
		}
		return out
	})
	p.SetShardProbe(func() []healthplane.ShardHealth {
		out := make([]healthplane.ShardHealth, 0, len(f.shards))
		for _, s := range f.shards {
			sh := healthplane.ShardHealth{
				Ordinal:     s.ord,
				State:       s.State().String(),
				Ready:       s.State() == Active,
				Outstanding: s.Outstanding(),
				Handled:     s.rt.Daemon().Handled(),
			}
			if sup := s.rt.Supervisor(); sup != nil {
				st := sup.State()
				if st != core.StateHealthy && st != core.StateReAttached {
					sh.Ready = false
					sh.State = sh.State + "/" + st.String()
				}
			}
			out = append(out, sh)
		}
		return out
	})
	return p
}

// Stats aggregates per-shard runtime stats plus router counters.
type Stats struct {
	Shards      []core.Stats
	Placements  int64
	Reroutes    int64
	Migrations  int64
	Rejects     int64
	Outstanding int64
}

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() Stats {
	st := Stats{
		Placements:  f.rtel.placements.Value(),
		Reroutes:    f.rtel.reroutes.Value(),
		Migrations:  f.rtel.migrations.Value(),
		Rejects:     f.rtel.rejects.Value(),
		Outstanding: f.outstanding.Load(),
	}
	for _, s := range f.shards {
		st.Shards = append(st.Shards, s.rt.Stats())
	}
	return st
}

// Close shuts every shard down.
func (f *Fleet) Close() {
	for _, s := range f.shards {
		s.rt.Close()
	}
}
