package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/flightrec"
	"lakego/internal/gpupool"
)

// TenantConfig parameterizes one tenant's admission.
type TenantConfig struct {
	// Weight is the tenant's fair-share weight (default 1): under the
	// fleet-wide MaxOutstanding cap each tenant is guaranteed
	// cap*weight/totalWeight in-flight requests; spare capacity is
	// work-conserving.
	Weight int
	// MaxOutstanding caps this tenant's in-flight requests regardless of
	// fleet load (0 = no per-tenant cap).
	MaxOutstanding int
}

// Tenant is one routed client identity: a sticky shard assignment plus
// admission state. All fleet Clients for one name share the Tenant.
type Tenant struct {
	f    *Fleet
	name string
	cfg  TenantConfig

	mu    sync.Mutex
	shard int // -1 until first placement
	sc    *batcher.Client

	outstanding atomic.Int64
	peak        atomic.Int64
}

// Name returns the tenant's identity, the consistent-hash routing key.
func (t *Tenant) Name() string { return t.name }

// Shard returns the tenant's current shard assignment (-1 before first
// placement).
func (t *Tenant) Shard() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shard
}

// Outstanding reports the tenant's in-flight requests across the fleet.
func (t *Tenant) Outstanding() int64 { return t.outstanding.Load() }

// PeakOutstanding reports the high-water mark of the tenant's in-flight
// requests, the witness for admission-invariant tests: it can never
// exceed the tenant's MaxOutstanding cap.
func (t *Tenant) PeakOutstanding() int64 { return t.peak.Load() }

// Config returns the tenant's admission parameters as applied (weight
// defaulted to 1).
func (t *Tenant) Config() TenantConfig { return t.cfg }

// Tenant get-or-creates the named tenant, applying cfg on first creation
// (a zero cfg means weight 1, no per-tenant cap).
func (f *Fleet) Tenant(name string, cfg TenantConfig) *Tenant {
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if t, ok := f.tenants[name]; ok {
		return t
	}
	t := &Tenant{f: f, name: name, cfg: cfg, shard: -1}
	f.tenants[name] = t
	f.totalWeight.Add(int64(cfg.Weight))
	return t
}

// Client is a tenant's submission handle, the fleet analogue of
// batcher.Client: Submit routes to the tenant's shard, Wait collects.
type Client struct {
	t *Tenant
}

// Client returns a handle for the named tenant (default TenantConfig when
// the tenant is new).
func (f *Fleet) Client(tenant string) *Client {
	return &Client{t: f.Tenant(tenant, TenantConfig{})}
}

// Tenant returns the client's tenant record.
func (c *Client) Tenant() *Tenant { return c.t }

// Pending is one in-flight fleet request: the shard-level handle plus the
// routing bookkeeping undone on delivery.
type Pending struct {
	p     *batcher.Pending
	t     *Tenant
	shard *Shard
}

// Shard returns the ordinal the request was routed to.
func (p *Pending) Shard() int { return p.shard.ord }

// TraceID returns the request's flight-recorder trace ID (0 untraced).
func (p *Pending) TraceID() uint64 { return p.p.TraceID() }

// Wait blocks until the request is delivered, releasing its admission
// slots. Exactly one goroutine should Wait per Pending.
func (p *Pending) Wait() ([][]float32, error) {
	out, err := p.p.Wait()
	p.shard.outstanding.Add(-1)
	p.t.outstanding.Add(-1)
	p.t.f.outstanding.Add(-1)
	return out, err
}

// Latency reports enqueue-to-delivery virtual time; valid after Wait.
func (p *Pending) Latency() time.Duration { return p.p.Latency() }

// admit applies fleet admission on top of the shard batcher's own depth
// bound. The rule is work-conserving weighted fair share: a tenant below
// its per-tenant cap is admitted while it is under its fleet share OR the
// fleet has spare capacity; at the fleet cap, only tenants under their
// share get in, so a chatty tenant drains back to its quota instead of
// starving the others.
func (t *Tenant) admit() error {
	f := t.f
	o := t.outstanding.Load()
	if t.cfg.MaxOutstanding > 0 && o >= int64(t.cfg.MaxOutstanding) {
		f.rtel.rejects.Inc()
		return batcher.ErrBackpressure
	}
	if cap := int64(f.cfg.MaxOutstanding); cap > 0 {
		if fo := f.outstanding.Load(); fo >= cap {
			share := cap * int64(t.cfg.Weight) / f.totalWeight.Load()
			if share < 1 {
				share = 1
			}
			if o >= share {
				f.rtel.rejects.Inc()
				return batcher.ErrBackpressure
			}
		}
	}
	return nil
}

// Submit routes one request to the tenant's shard and enqueues it there,
// re-placing the tenant first if its shard stopped accepting traffic. It
// fails fast with batcher.ErrBackpressure from either admission layer.
func (c *Client) Submit(model string, items [][]float32) (*Pending, error) {
	t := c.t
	f := t.f
	if err := t.admit(); err != nil {
		return nil, err
	}
	start := time.Now()
	s, sc, rerouted, err := t.route()
	if err != nil {
		return nil, err
	}
	decideNs := time.Since(start).Nanoseconds()
	p, err := sc.Submit(model, items)
	if err != nil {
		return nil, err
	}
	s.outstanding.Add(1)
	now := t.outstanding.Add(1)
	for {
		peak := t.peak.Load()
		if now <= peak || t.peak.CompareAndSwap(peak, now) {
			break
		}
	}
	f.outstanding.Add(1)
	var reroute uint64
	if rerouted {
		reroute = 1
	}
	// The route event lands in the router domain through the destination
	// shard's recorder view, so the stitched per-call timeline shows both
	// the hop and where it landed.
	s.rt.FlightRecorder().Emit(flightrec.DomainRouter, flightrec.EvRoute,
		p.TraceID(), 0, 0, uint64(f.policy), reroute, uint64(decideNs))
	return &Pending{p: p, t: t, shard: s}, nil
}

// Route resolves (placing if necessary) the tenant's shard without
// submitting anything. Open-loop drivers use it to advance the target
// shard's clock to a scheduled arrival instant before Submit, so queueing
// delay is charged from the arrival, not from whenever the driver got
// around to it.
func (c *Client) Route() (*Shard, error) {
	s, _, _, err := c.t.route()
	return s, err
}

// Infer is Submit followed by Wait.
func (c *Client) Infer(model string, items [][]float32) ([][]float32, error) {
	p, err := c.Submit(model, items)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// route returns the tenant's shard and per-shard batcher client, placing
// (or re-placing, when the sticky shard left Active) under the fleet lock.
func (t *Tenant) route() (*Shard, *batcher.Client, bool, error) {
	f := t.f
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.shard >= 0 && f.shards[t.shard].State() == Active {
		return f.shards[t.shard], t.sc, false, nil
	}
	rerouted := t.shard >= 0
	ord, err := f.place(t.name)
	if err != nil {
		return nil, nil, false, err
	}
	t.shard = ord
	t.sc = f.shards[ord].b.Client(t.name)
	if rerouted {
		f.rtel.reroutes.Inc()
	}
	return f.shards[ord], t.sc, rerouted, nil
}

// place picks an Active shard for the tenant under the router policy.
// Placement draws are serialized under the fleet mutex so fixed-seed runs
// stay reproducible.
func (f *Fleet) place(tenant string) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ord := -1
	switch f.policy {
	case gpupool.ConsistentHash:
		ord = f.ring.PickHealthy(tenant, func(m int) bool {
			return f.shards[m].State() == Active
		})
	case gpupool.LeastOutstanding:
		ord = f.leastOutstandingLocked()
	case gpupool.ContentionAware:
		ord = f.contentionAwareLocked()
	default: // RoundRobin
		for range f.shards {
			cand := f.cursor % len(f.shards)
			f.cursor++
			if f.shards[cand].State() == Active {
				ord = cand
				break
			}
		}
	}
	if ord < 0 {
		return -1, fmt.Errorf("fleet: no active shard to place tenant %q", tenant)
	}
	f.rtel.placements.Inc()
	return ord, nil
}

// leastOutstandingLocked returns the Active shard with the fewest in-flight
// requests, lowest ordinal on ties (deterministic without a draw).
func (f *Fleet) leastOutstandingLocked() int {
	best, bestOut := -1, int64(0)
	for _, s := range f.shards {
		if s.State() != Active {
			continue
		}
		out := s.outstanding.Load()
		if best < 0 || out < bestOut {
			best, bestOut = s.ord, out
		}
	}
	return best
}

// contentionAwareLocked prefers Active shards whose pool-wide utilization
// is below the threshold, then minimizes utilization; ties fall to fewer
// outstanding requests, then to a seeded PRNG draw.
func (f *Fleet) contentionAwareLocked() int {
	type cand struct {
		ord  int
		util int
		out  int64
	}
	var best []cand
	for _, s := range f.shards {
		if s.State() != Active {
			continue
		}
		c := cand{ord: s.ord, util: s.rt.Pool().AggregateRates().GPU, out: s.outstanding.Load()}
		switch {
		case len(best) == 0:
			best = append(best, c)
		case c.util < best[0].util || (c.util == best[0].util && c.out < best[0].out):
			best = append(best[:0], c)
		case c.util == best[0].util && c.out == best[0].out:
			best = append(best, c)
		}
	}
	switch len(best) {
	case 0:
		return -1
	case 1:
		return best[0].ord
	}
	return best[f.rng.Intn(len(best))].ord
}
