// Fleet router, admission and migration semantics: placement policies,
// sticky tenancy, weighted fair-share admission, drain/kill journal
// handoff, and the determinism contract — a fixed-seed drained run must be
// bit-identical to an undrained one.
package fleet_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/core"
	"lakego/internal/faults"
	"lakego/internal/fleet"
	"lakego/internal/gpupool"
	"lakego/internal/nn"
)

// testNet builds the reference network shared by every test; a fixed seed
// keeps forwards bit-identical across runs and shards.
func testNet() *nn.Network { return nn.New(7, 4, 8, 2) }

func testModel(net *nn.Network) batcher.ModelConfig {
	return batcher.ModelConfig{
		Name:       "fleetnet",
		InputWidth: 4, OutputWidth: 2,
		MaxBatch:     64,
		CPUFixed:     2 * time.Microsecond,
		CPUPerItem:   time.Microsecond,
		FlopsPerItem: 300,
		Forward:      net.Forward,
	}
}

func newFleet(t testing.TB, shards int, pol gpupool.Policy, mutate func(*fleet.Config)) (*fleet.Fleet, *nn.Network) {
	t.Helper()
	cfg := fleet.Config{
		Runtime: core.DefaultConfig(),
		Batcher: batcher.Config{
			MaxBatch: 16,
			MaxWait:  100 * time.Microsecond,
			Linger:   0,
		},
	}
	cfg.Runtime.NumShards = shards
	cfg.Runtime.RouterPolicy = pol
	cfg.Runtime.RouterSeed = 42
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	net := testNet()
	if err := f.RegisterModel(testModel(net)); err != nil {
		t.Fatal(err)
	}
	return f, net
}

func feature(i int) []float32 {
	return []float32{
		float32(i%7) / 7,
		float32(i%5) / 5,
		float32(i%3) / 3,
		float32(i%11) / 11,
	}
}

// inferOne runs one single-item request for the client and checks the
// prediction against the reference forward pass.
func inferOne(t *testing.T, c *fleet.Client, net *nn.Network, i int) []float32 {
	t.Helper()
	x := feature(i)
	out, err := c.Infer("fleetnet", [][]float32{x})
	if err != nil {
		t.Fatalf("infer %d: %v", i, err)
	}
	want := net.Forward(x)
	if len(out) != 1 || len(out[0]) != len(want) {
		t.Fatalf("infer %d: wrong shape", i)
	}
	for j := range want {
		if out[0][j] != want[j] {
			t.Fatalf("infer %d: prediction diverged from reference", i)
		}
	}
	return out[0]
}

func TestFleetRoundRobinPlacement(t *testing.T) {
	f, net := newFleet(t, 4, gpupool.RoundRobin, nil)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		c := f.Client(name)
		inferOne(t, c, net, i)
		if got := c.Tenant().Shard(); got != i%4 {
			t.Fatalf("tenant %d placed on shard %d, want %d", i, got, i%4)
		}
	}
	if st := f.Stats(); st.Placements != 8 || st.Reroutes != 0 {
		t.Fatalf("placements=%d reroutes=%d, want 8/0", st.Placements, st.Reroutes)
	}
}

func TestFleetConsistentHashStickyAndReproducible(t *testing.T) {
	place := func() map[string]int {
		f, net := newFleet(t, 4, gpupool.ConsistentHash, nil)
		got := make(map[string]int)
		for i := 0; i < 16; i++ {
			name := fmt.Sprintf("tenant-%d", i)
			c := f.Client(name)
			inferOne(t, c, net, i)
			first := c.Tenant().Shard()
			inferOne(t, c, net, i+100)
			if c.Tenant().Shard() != first {
				t.Fatalf("tenant %s moved shards without a drain", name)
			}
			got[name] = first
		}
		return got
	}
	a, b := place(), place()
	used := make(map[int]bool)
	for name, s := range a {
		if b[name] != s {
			t.Fatalf("tenant %s placed on %d then %d with the same seed", name, s, b[name])
		}
		used[s] = true
	}
	if len(used) < 2 {
		t.Fatalf("consistent hash used %d of 4 shards for 16 tenants", len(used))
	}
}

func TestFleetLeastOutstandingPlacement(t *testing.T) {
	f, _ := newFleet(t, 2, gpupool.LeastOutstanding, nil)
	a := f.Client("tenant-a")
	var pend []*fleet.Pending
	for i := 0; i < 2; i++ {
		p, err := a.Submit("fleetnet", [][]float32{feature(i)})
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, p)
	}
	if got := a.Tenant().Shard(); got != 0 {
		t.Fatalf("first tenant on shard %d, want 0", got)
	}
	b := f.Client("tenant-b")
	p, err := b.Submit("fleetnet", [][]float32{feature(9)})
	if err != nil {
		t.Fatal(err)
	}
	pend = append(pend, p)
	if got := b.Tenant().Shard(); got != 1 {
		t.Fatalf("second tenant on shard %d, want 1 (shard 0 has 2 outstanding)", got)
	}
	for _, p := range pend {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Stats().Outstanding; got != 0 {
		t.Fatalf("outstanding=%d after all waits, want 0", got)
	}
}

func TestFleetContentionAwarePlacement(t *testing.T) {
	f, net := newFleet(t, 3, gpupool.ContentionAware, nil)
	c := f.Client("tenant-a")
	inferOne(t, c, net, 1)
	s := c.Tenant().Shard()
	if s < 0 || s > 2 {
		t.Fatalf("placed on shard %d", s)
	}
	if f.Shard(s).State() != fleet.Active {
		t.Fatalf("placed on non-active shard %d", s)
	}
	inferOne(t, c, net, 2)
	if c.Tenant().Shard() != s {
		t.Fatal("tenant moved shards without a drain")
	}
}

func TestFleetTenantCap(t *testing.T) {
	f, _ := newFleet(t, 1, gpupool.RoundRobin, nil)
	f.Tenant("capped", fleet.TenantConfig{MaxOutstanding: 2})
	c := f.Client("capped")
	var pend []*fleet.Pending
	for i := 0; i < 2; i++ {
		p, err := c.Submit("fleetnet", [][]float32{feature(i)})
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, p)
	}
	if _, err := c.Submit("fleetnet", [][]float32{feature(3)}); !errors.Is(err, batcher.ErrBackpressure) {
		t.Fatalf("third submit err=%v, want ErrBackpressure", err)
	}
	if got := f.Stats().Rejects; got != 1 {
		t.Fatalf("rejects=%d, want 1", got)
	}
	for _, p := range pend {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Draining outstanding restores admission.
	p, err := c.Submit("fleetnet", [][]float32{feature(4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFleetFairShareAdmission(t *testing.T) {
	f, _ := newFleet(t, 1, gpupool.RoundRobin, func(cfg *fleet.Config) {
		cfg.MaxOutstanding = 4
	})
	f.Tenant("a", fleet.TenantConfig{Weight: 1})
	f.Tenant("b", fleet.TenantConfig{Weight: 1})
	a, b := f.Client("a"), f.Client("b")

	// Work-conserving: with b idle, a may run past its share of 2 up to
	// the fleet cap.
	var pend []*fleet.Pending
	for i := 0; i < 4; i++ {
		p, err := a.Submit("fleetnet", [][]float32{feature(i)})
		if err != nil {
			t.Fatalf("submit %d (below fleet cap): %v", i, err)
		}
		pend = append(pend, p)
	}
	// At the cap, a is over its 2-slot share: rejected.
	if _, err := a.Submit("fleetnet", [][]float32{feature(9)}); !errors.Is(err, batcher.ErrBackpressure) {
		t.Fatalf("over-share submit err=%v, want ErrBackpressure", err)
	}
	// b is under its guaranteed share: admitted even at the cap.
	p, err := b.Submit("fleetnet", [][]float32{feature(10)})
	if err != nil {
		t.Fatalf("under-share submit rejected: %v", err)
	}
	pend = append(pend, p)
	for _, p := range pend {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFleetDrainMigratesJournalAndTenants(t *testing.T) {
	f, net := newFleet(t, 2, gpupool.RoundRobin, nil)
	a, b := f.Client("tenant-a"), f.Client("tenant-b")
	for i := 0; i < 4; i++ {
		inferOne(t, a, net, i)
		inferOne(t, b, net, 100+i)
	}
	if a.Tenant().Shard() != 0 || b.Tenant().Shard() != 1 {
		t.Fatalf("unexpected placements %d/%d", a.Tenant().Shard(), b.Tenant().Shard())
	}

	m, err := f.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Src != 0 || m.Dst != 1 {
		t.Fatalf("migrated %d->%d, want 0->1", m.Src, m.Dst)
	}
	if m.JournalEntries == 0 {
		t.Fatal("no journal entries crossed in the handoff")
	}
	if m.Tenants != 1 {
		t.Fatalf("moved %d tenants, want 1", m.Tenants)
	}
	if m.HandoffBytes == 0 {
		t.Fatal("empty handoff frame")
	}
	if got := f.Shard(0).State(); got != fleet.Dead {
		t.Fatalf("drained shard state %s, want Dead", got)
	}

	// A second drain of the same shard must refuse.
	if _, err := f.Drain(0); err == nil {
		t.Fatal("double drain succeeded")
	}

	// The drained shard's tenant re-routes on its next call and keeps
	// computing bit-identical results.
	inferOne(t, a, net, 50)
	if got := a.Tenant().Shard(); got != 1 {
		t.Fatalf("tenant-a re-routed to shard %d, want 1", got)
	}
	st := f.Stats()
	if st.Migrations != 1 || st.Reroutes != 1 {
		t.Fatalf("migrations=%d reroutes=%d, want 1/1", st.Migrations, st.Reroutes)
	}
	// Zero re-executed: the surviving daemon answered no redeliveries and
	// nothing was lost along the way (every Infer above checked its
	// prediction).
	for _, sh := range f.Shards() {
		if r := sh.Runtime().Daemon().Redelivered(); r != 0 {
			t.Fatalf("shard %d redelivered %d commands", sh.Ordinal(), r)
		}
	}
}

// TestFleetDrainDeterministic is the fleet analogue of
// TestPoolChaosDeterministic: a fixed-seed serial workload must produce
// bit-identical predictions — and execute every command exactly once —
// whether or not a shard drains mid-run.
func TestFleetDrainDeterministic(t *testing.T) {
	const tenants, rounds = 6, 8
	run := func(drainAtRound int) (preds []float32, executed int64, placements int64) {
		f, _ := newFleet(t, 4, gpupool.RoundRobin, nil)
		net := testNet()
		clients := make([]*fleet.Client, tenants)
		for i := range clients {
			clients[i] = f.Client(fmt.Sprintf("tenant-%d", i))
		}
		for r := 0; r < rounds; r++ {
			if r == drainAtRound {
				if _, err := f.Drain(1); err != nil {
					t.Fatal(err)
				}
			}
			for ci, c := range clients {
				x := feature(r*tenants + ci)
				out, err := c.Infer("fleetnet", [][]float32{x})
				if err != nil {
					t.Fatalf("round %d tenant %d: %v", r, ci, err)
				}
				want := net.Forward(x)
				for j := range want {
					if out[0][j] != want[j] {
						t.Fatalf("round %d tenant %d: diverged", r, ci)
					}
				}
				preds = append(preds, out[0]...)
			}
		}
		for _, sh := range f.Shards() {
			executed += sh.Runtime().Daemon().Executed()
			if rd := sh.Runtime().Daemon().Redelivered(); rd != 0 {
				t.Fatalf("shard %d redelivered %d", sh.Ordinal(), rd)
			}
		}
		return preds, executed, f.Stats().Placements
	}

	p1, e1, pl1 := run(-1)
	p2, e2, pl2 := run(-1)
	if e1 != e2 || pl1 != pl2 {
		t.Fatalf("two identical runs diverged: executed %d/%d placements %d/%d", e1, e2, pl1, pl2)
	}
	pd, ed, _ := run(rounds / 2)
	if len(p1) != len(p2) || len(p1) != len(pd) {
		t.Fatalf("prediction counts diverged: %d/%d/%d", len(p1), len(p2), len(pd))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("identical runs: prediction %d diverged", i)
		}
		if p1[i] != pd[i] {
			t.Fatalf("drained run: prediction %d diverged from undrained", i)
		}
	}
	if ed != e1 {
		t.Fatalf("drained run executed %d commands, undrained %d — work was lost or re-executed", ed, e1)
	}
}

// TestFleetShardDeviceLabels is the regression test for the merged-
// exposition label collision: with two shards of two devices each, every
// per-device series must stay distinct under the merge — before the
// shard label, both shards' `device="0"` series collided and the second
// shard's silently vanished.
func TestFleetShardDeviceLabels(t *testing.T) {
	f, net := newFleet(t, 2, gpupool.RoundRobin, func(cfg *fleet.Config) {
		cfg.Runtime.NumDevices = 2
	})
	for i := 0; i < 4; i++ {
		inferOne(t, f.Client(fmt.Sprintf("tenant-%d", i)), net, i)
	}
	text := f.PrometheusText()
	for shard := 0; shard < 2; shard++ {
		for dev := 0; dev < 2; dev++ {
			series := fmt.Sprintf(`lake_gpu_launches_total{device="%d",shard="%d"}`, dev, shard)
			if !strings.Contains(text, series) {
				t.Fatalf("merged exposition is missing %s", series)
			}
		}
	}
	// No series identity may repeat across the merged registries.
	seen := make(map[string]bool)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id := line
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			id = line[:i]
		}
		if seen[id] {
			t.Fatalf("duplicate series in merged exposition: %s", id)
		}
		seen[id] = true
	}
}

// TestFleetKillFallsBackAndMigrates kills a shard with queued work: the
// in-flight requests complete on the CPU fallback path (zero lost), the
// journal crosses to a successor, and redeliveries stay zero (zero
// re-executed).
func TestFleetKillFallsBackAndMigrates(t *testing.T) {
	f, net := newFleet(t, 2, gpupool.RoundRobin, func(cfg *fleet.Config) {
		cfg.Runtime.Faults = &faults.Mix{Seed: 21} // plane attached; the kill is manual
	})
	a, b := f.Client("tenant-a"), f.Client("tenant-b")
	inferOne(t, a, net, 0)
	inferOne(t, b, net, 1)

	// Queue work on shard 0, then kill it before the flush runs.
	var pend []*fleet.Pending
	for i := 0; i < 3; i++ {
		p, err := a.Submit("fleetnet", [][]float32{feature(10 + i)})
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, p)
	}
	if _, err := f.Kill(0); err != nil {
		t.Fatal(err)
	}
	for i, p := range pend {
		out, err := p.Wait()
		if err != nil {
			t.Fatalf("queued request %d lost to the kill: %v", i, err)
		}
		want := net.Forward(feature(10 + i))
		for j := range want {
			if out[0][j] != want[j] {
				t.Fatalf("queued request %d diverged after kill", i)
			}
		}
	}
	if fb := f.Shard(0).Batcher().Stats().FallbackFlushes; fb == 0 {
		t.Fatal("killed shard's queued work did not use the CPU fallback")
	}
	// The tenant lands on the survivor and keeps computing correctly.
	inferOne(t, a, net, 20)
	if got := a.Tenant().Shard(); got != 1 {
		t.Fatalf("tenant-a on shard %d after kill, want 1", got)
	}
	for _, sh := range f.Shards() {
		if r := sh.Runtime().Daemon().Redelivered(); r != 0 {
			t.Fatalf("shard %d redelivered %d commands", sh.Ordinal(), r)
		}
	}
	if st := f.Stats(); st.Migrations != 1 {
		t.Fatalf("migrations=%d, want 1", st.Migrations)
	}
}

func TestFleetLastShardKillLeavesNoSuccessor(t *testing.T) {
	f, _ := newFleet(t, 1, gpupool.RoundRobin, func(cfg *fleet.Config) {
		cfg.Runtime.Faults = &faults.Mix{Seed: 3}
	})
	if _, err := f.Kill(0); err == nil {
		t.Fatal("killing the last shard reported a successor")
	}
	if got := f.Shard(0).State(); got != fleet.Dead {
		t.Fatalf("state %s, want Dead", got)
	}
	if _, err := f.Client("t").Submit("fleetnet", [][]float32{feature(0)}); err == nil {
		t.Fatal("submit succeeded with no active shard")
	}
}

func TestFleetVirtualElapsed(t *testing.T) {
	f, net := newFleet(t, 2, gpupool.RoundRobin, nil)
	inferOne(t, f.Client("a"), net, 0) // shard 0
	if f.VirtualElapsed() != f.Shard(0).Clock().Now() {
		t.Fatal("elapsed should track the busiest shard")
	}
	inferOne(t, f.Client("b"), net, 1) // shard 1
	max := f.Shard(0).Clock().Now()
	if c1 := f.Shard(1).Clock().Now(); c1 > max {
		max = c1
	}
	if f.VirtualElapsed() != max {
		t.Fatalf("VirtualElapsed=%v, want max shard clock %v", f.VirtualElapsed(), max)
	}
}
