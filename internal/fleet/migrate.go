package fleet

import (
	"fmt"
	"runtime"
	"sort"

	"lakego/internal/flightrec"
	"lakego/internal/remoting"
)

// Migration is the report of one completed shard drain or kill.
type Migration struct {
	// Src and Dst are the shard ordinals the journal moved between.
	Src, Dst int
	// JournalEntries is how many exactly-once entries crossed.
	JournalEntries int
	// Tenants is how many sticky assignments were moved off Src.
	Tenants int
	// HandoffBytes is the size of the CRC-sealed wire frame.
	HandoffBytes int
}

// Drain gracefully retires shard ord: placement stops, in-flight work
// quiesces, the exactly-once journal crosses to a successor as a sealed
// handoff frame, and the shard's tenants are re-routed. A drained run is
// bit-identical to an undrained one — zero calls lost, zero re-executed.
func (f *Fleet) Drain(ord int) (*Migration, error) {
	s, err := f.beginMigration(ord, Draining)
	if err != nil {
		return nil, err
	}
	// Quiesce: the router no longer places tenants here and sticky tenants
	// re-route on their next submit, so outstanding only drains. In-flight
	// requests finish normally — a drain never turns work into fallbacks.
	for s.outstanding.Load() > 0 {
		runtime.Gosched()
	}
	return f.migrate(s)
}

// Kill hard-fails shard ord mid-traffic: the daemon crashes and its
// supervisor abandons it (no restart — the fleet, not the supervisor, owns
// recovery now), the journal still crosses to a successor, and tenants are
// re-routed. In-flight flushes on the dead shard complete on the CPU
// fallback path, so no call is lost; redeliveries of calls the dead shard
// already executed are answered from the migrated journal, so none is
// re-executed.
func (f *Fleet) Kill(ord int) (*Migration, error) {
	s, err := f.beginMigration(ord, Dead)
	if err != nil {
		return nil, err
	}
	if sup := s.rt.Supervisor(); sup != nil {
		sup.Abandon(fmt.Sprintf("fleet: shard %d killed", ord))
	}
	s.rt.Daemon().InjectCrash(false)
	return f.migrate(s)
}

// beginMigration transitions the shard out of Active so the router stops
// placing onto it, and emits the migration-start event.
func (f *Fleet) beginMigration(ord int, to ShardState) (*Shard, error) {
	if ord < 0 || ord >= len(f.shards) {
		return nil, fmt.Errorf("fleet: no shard %d", ord)
	}
	s := f.shards[ord]
	if !s.state.CompareAndSwap(int32(Active), int32(to)) {
		return nil, fmt.Errorf("fleet: shard %d is %s, not Active", ord, s.State())
	}
	return s, nil
}

// migrate moves the shard's journal and tenants to a successor. The shard
// is already out of Active, so placement cannot race the transfer.
func (f *Fleet) migrate(src *Shard) (*Migration, error) {
	f.mu.Lock()
	dst := f.successorLocked()
	f.mu.Unlock()
	if dst < 0 {
		src.state.Store(int32(Dead))
		return nil, fmt.Errorf("fleet: no active shard left to inherit shard %d", src.ord)
	}
	// Migration events go through the successor's recorder view: the
	// transfer executes on the inheriting shard's timeline.
	drec := f.shards[dst].rt.FlightRecorder()
	drec.Emit(flightrec.DomainRouter, flightrec.EvMigrateStart,
		0, 0, 0, uint64(src.ord), uint64(dst), 0)

	// The journal rides the wire like everything else between shards: a
	// CRC-sealed frame, rejected wholesale on a flipped bit rather than
	// half-merged. Shard-tagged sequence spaces make the merge collision
	// free.
	entries := src.rt.Daemon().ExportJournal()
	frame, err := remoting.MarshalHandoff(&remoting.Handoff{
		SrcShard: uint32(src.ord),
		DstShard: uint32(dst),
		Entries:  entries,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: shard %d handoff: %w", src.ord, err)
	}
	h, err := remoting.UnmarshalHandoff(frame)
	if err != nil {
		return nil, fmt.Errorf("fleet: shard %d handoff: %w", src.ord, err)
	}
	moved := f.shards[dst].rt.Daemon().ImportJournal(h.Entries)

	// Evict the shard's tenants (sorted for determinism): each re-places
	// lazily on its next submit through Tenant.route, which sees the shard
	// out of Active and fires the reroute path.
	tenants := f.evictTenants(src.ord)

	src.state.Store(int32(Dead))
	f.rtel.migrations.Inc()
	drec.Emit(flightrec.DomainRouter, flightrec.EvMigrateEnd,
		0, 0, 0, uint64(src.ord), uint64(dst), uint64(moved))
	return &Migration{
		Src:            src.ord,
		Dst:            dst,
		JournalEntries: moved,
		Tenants:        tenants,
		HandoffBytes:   len(frame),
	}, nil
}

// successorLocked picks the journal inheritor: the Active shard with the
// fewest in-flight requests, lowest ordinal on ties. The migrating shard
// already left Active, so it can never inherit from itself.
func (f *Fleet) successorLocked() int { return f.leastOutstandingLocked() }

// evictTenants drops the stale batcher handle of every tenant stuck to
// shard ord, in sorted name order, and counts them. The sticky ordinal is
// kept: Tenant.route treats a non-Active assignment as a reroute.
func (f *Fleet) evictTenants(ord int) int {
	// Snapshot under the fleet lock, mutate under each tenant's own lock:
	// route() acquires tenant-then-fleet, so holding both here would
	// invert the order.
	f.mu.Lock()
	names := make([]string, 0, len(f.tenants))
	tenants := make(map[string]*Tenant, len(f.tenants))
	for name, t := range f.tenants {
		names = append(names, name)
		tenants[name] = t
	}
	f.mu.Unlock()
	sort.Strings(names)
	n := 0
	for _, name := range names {
		t := tenants[name]
		t.mu.Lock()
		if t.shard == ord {
			t.sc = nil
			n++
		}
		t.mu.Unlock()
	}
	return n
}
