package flightrec

import "sync/atomic"

// ring is a lock-free MPSC event ring sized to a power of two. Writers are
// the hot paths of every domain (lakeLib calls, lakeD dispatch, boundary
// frame delivery, GPU launches); the single consumer is Snapshot, which runs
// rarely (a crash, a supervisor transition, an operator request).
//
// The classic kernel answer here is a seqlock, but a seqlock's unsynchronized
// slot copy is exactly what the Go race detector flags — and the chaos and
// soak CI jobs run under -race with dumps racing live writers. So every slot
// word is an atomic.Uint64 instead: a writer reserves a slot with one
// fetch-add on the cursor, invalidates the slot's stamp, stores the
// eventWords payload words, then publishes by storing stamp = index+1 (unique
// per write, so a reader can tell a torn or lapped slot from the one it
// wants). All accesses are atomic loads/stores — race-clean by construction,
// and the only coordination cost on the write path is the cursor fetch-add.
//
// Overflow overwrites the oldest slots, but never silently: Snapshot reports
// every overwritten or torn slot in the ring's dropped count. The one
// accepted imprecision: if a writer stalls mid-store for long enough that
// another writer laps the entire ring and republishes the same slot, a
// concurrent reader can observe mixed payload words under a valid stamp.
// That needs a full-capacity lap during one 8-word store — vanishingly rare,
// only possible while events are already being dropped, and still race-clean.
const eventWords = 8

type ring struct {
	mask   uint64
	cursor atomic.Uint64 // next slot index to reserve; monotonically increasing
	stamp  []atomic.Uint64
	words  []atomic.Uint64 // eventWords per slot
	// sampledOut counts events skipped by per-domain sampled emission; they
	// fold into the snapshot's dropped tally so sampling is never silent.
	sampledOut atomic.Uint64
}

func newRing(capacity int) *ring {
	if capacity < 64 {
		capacity = 64
	}
	// Round up to a power of two so slot = index & mask.
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{
		mask:  uint64(n - 1),
		stamp: make([]atomic.Uint64, n),
		words: make([]atomic.Uint64, n*eventWords),
	}
}

func (r *ring) capacity() uint64 { return r.mask + 1 }

// put reserves the next slot and publishes one event.
func (r *ring) put(w [eventWords]uint64) {
	idx := r.cursor.Add(1) - 1
	slot := idx & r.mask
	r.stamp[slot].Store(0) // invalidate while the payload is in flight
	base := slot * eventWords
	for i, v := range w {
		r.words[base+uint64(i)].Store(v)
	}
	r.stamp[slot].Store(idx + 1)
}

// overwritten reports how many events have been lost to ring overflow so far.
func (r *ring) overwritten() uint64 {
	if cur := r.cursor.Load(); cur > r.capacity() {
		return cur - r.capacity()
	}
	return 0
}

// snapshot copies the surviving events oldest-first. dropped counts both
// slots lost to overflow and slots torn by a concurrent writer during the
// scan — the recorder never truncates silently.
func (r *ring) snapshot() (events [][eventWords]uint64, dropped uint64) {
	cur := r.cursor.Load()
	start := uint64(0)
	dropped = r.sampledOut.Load()
	if cur > r.capacity() {
		start = cur - r.capacity()
		dropped += start
	}
	for idx := start; idx < cur; idx++ {
		slot := idx & r.mask
		if r.stamp[slot].Load() != idx+1 {
			dropped++
			continue
		}
		var w [eventWords]uint64
		base := slot * eventWords
		for i := range w {
			w[i] = r.words[base+uint64(i)].Load()
		}
		if r.stamp[slot].Load() != idx+1 { // torn by a writer mid-copy
			dropped++
			continue
		}
		events = append(events, w)
	}
	return events, dropped
}
