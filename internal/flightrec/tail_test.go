package flightrec

import (
	"sync"
	"testing"
	"time"

	"lakego/internal/vtime"
)

func newTailRecorder(t *testing.T, ringSize int) *Recorder {
	t.Helper()
	r := New(vtime.New(), ringSize)
	r.SetEnabled(true)
	return r
}

func emitN(r *Recorder, d Domain, start, n uint64) {
	for i := uint64(0); i < n; i++ {
		r.Emit(d, EvCallStart, start+i, start+i, 0, 7, 0, 0)
	}
}

func TestTailBasic(t *testing.T) {
	r := newTailRecorder(t, 1024)
	emitN(r, DomainKernel, 0, 10)
	emitN(r, DomainGPU, 100, 3)

	events, cur, skipped := r.Tail(TailCursor{}, 0)
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if len(events) != 13 {
		t.Fatalf("len(events) = %d, want 13", len(events))
	}
	for i := 0; i < 10; i++ {
		if events[i].Domain != DomainKernel || events[i].TraceID != uint64(i) {
			t.Fatalf("event %d = %+v, want kernel trace %d", i, events[i], i)
		}
	}
	for i := 0; i < 3; i++ {
		if events[10+i].Domain != DomainGPU || events[10+i].TraceID != uint64(100+i) {
			t.Fatalf("event %d = %+v, want gpu trace %d", 10+i, events[10+i], 100+i)
		}
	}
	if got := cur.Position(DomainKernel); got != 10 {
		t.Fatalf("kernel position = %d, want 10", got)
	}

	// Nothing new: an immediate re-tail is empty and the cursor is stable.
	events, cur2, skipped := r.Tail(cur, 0)
	if len(events) != 0 || skipped != 0 || cur2 != cur {
		t.Fatalf("re-tail: %d events, %d skipped, cursor moved %v", len(events), skipped, cur2 != cur)
	}

	// New events resume exactly where the cursor left off.
	emitN(r, DomainKernel, 10, 5)
	events, _, skipped = r.Tail(cur2, 0)
	if len(events) != 5 || skipped != 0 {
		t.Fatalf("resume tail: %d events, %d skipped, want 5, 0", len(events), skipped)
	}
	if events[0].TraceID != 10 || events[4].TraceID != 14 {
		t.Fatalf("resume tail traces %d..%d, want 10..14", events[0].TraceID, events[4].TraceID)
	}
}

func TestTailNilAndEmpty(t *testing.T) {
	var r *Recorder
	events, cur, skipped := r.Tail(TailCursor{}, 0)
	if events != nil || skipped != 0 || cur != (TailCursor{}) {
		t.Fatalf("nil recorder tail: %v %v %d", events, cur, skipped)
	}
	r2 := newTailRecorder(t, 64)
	n, _, skipped := r2.TailInto(TailCursor{}, nil)
	if n != 0 || skipped != 0 {
		t.Fatalf("empty buf tail: n=%d skipped=%d", n, skipped)
	}
}

func TestTailCursorRoundTrip(t *testing.T) {
	var c TailCursor
	c.pos[DomainKernel] = 0xdeadbeef
	c.pos[DomainLifecycle] = 42
	c.sampled[DomainGPU] = 1 << 40
	got, err := ParseTailCursor(c.String())
	if err != nil {
		t.Fatalf("ParseTailCursor(%q): %v", c.String(), err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}
	if z, err := ParseTailCursor(""); err != nil || z != (TailCursor{}) {
		t.Fatalf("empty cursor: %+v, %v", z, err)
	}
	for _, bad := range []string{"v0.1-2", "v1.zz-0", "v1.1.2-3", "garbage", "v1"} {
		if _, err := ParseTailCursor(bad); err == nil {
			t.Fatalf("ParseTailCursor(%q) accepted malformed cursor", bad)
		}
	}
}

func TestTailOverrunExact(t *testing.T) {
	r := newTailRecorder(t, 64) // minimum ring capacity
	capacity := r.rings[DomainKernel].capacity()

	total := 3 * capacity
	emitN(r, DomainKernel, 0, total)
	events, cur, skipped := r.Tail(TailCursor{}, 0)
	if want := total - capacity; skipped != want {
		t.Fatalf("skipped = %d, want %d", skipped, want)
	}
	if uint64(len(events)) != capacity {
		t.Fatalf("len(events) = %d, want %d", len(events), capacity)
	}
	// The survivors are exactly the newest capacity events, in order.
	if events[0].TraceID != total-capacity || events[len(events)-1].TraceID != total-1 {
		t.Fatalf("survivor traces %d..%d, want %d..%d",
			events[0].TraceID, events[len(events)-1].TraceID, total-capacity, total-1)
	}

	// Overrun again from the advanced cursor: the gap is still exact.
	emitN(r, DomainKernel, total, total)
	events, _, skipped = r.Tail(cur, 0)
	if want := total - capacity; skipped != want {
		t.Fatalf("second skipped = %d, want %d", skipped, want)
	}
	if uint64(len(events)) != capacity {
		t.Fatalf("second len(events) = %d, want %d", len(events), capacity)
	}
}

func TestTailMaxTruncation(t *testing.T) {
	r := newTailRecorder(t, 256)
	emitN(r, DomainKernel, 0, 100)
	var cur TailCursor
	var got int
	for i := 0; i < 20; i++ {
		events, next, skipped := r.Tail(cur, 7)
		if skipped != 0 {
			t.Fatalf("skipped = %d during bounded drain", skipped)
		}
		got += len(events)
		cur = next
		if len(events) == 0 {
			break
		}
	}
	if got != 100 {
		t.Fatalf("bounded drain returned %d events, want 100", got)
	}
}

func TestTailSampledCounted(t *testing.T) {
	r := newTailRecorder(t, 1024)
	r.SetSampleEvery(DomainGPU, 4)
	emitN(r, DomainGPU, 0, 100)
	events, cur, skipped := r.Tail(TailCursor{}, 0)
	if len(events)+int(skipped) != 100 {
		t.Fatalf("returned %d + skipped %d != 100 offered", len(events), skipped)
	}
	if skipped != 75 {
		t.Fatalf("skipped = %d, want 75 sampled out", skipped)
	}
	// The sampled baseline rides the cursor: no double counting on re-tail.
	events, _, skipped = r.Tail(cur, 0)
	if len(events) != 0 || skipped != 0 {
		t.Fatalf("re-tail after sampling: %d events, %d skipped", len(events), skipped)
	}
}

// TestTailRaceStorm is the race-and-overrun gate: a concurrent Emit storm
// with a deliberately slow, small-buffered tailer. Cursors must stay
// monotonic throughout, and once the writers quiesce the tailer's
// returned+skipped totals must account for every event emitted — nothing
// lost, nothing double-counted. Runs under -race in the CI chaos job.
func TestTailRaceStorm(t *testing.T) {
	const (
		writers   = 4
		perWriter = 20000
	)
	r := newTailRecorder(t, 64) // tiny ring so the storm laps the tailer constantly

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				tid := uint64(w*perWriter + i)
				r.Emit(DomainKernel, EvCallStart, tid, tid, 0, 1, 2, 3)
				if i%3 == 0 {
					r.Emit(DomainGPU, EvExec, tid, tid, 1, 1000, 50, 0)
				}
			}
		}(w)
	}

	var (
		cur      TailCursor
		returned uint64
		skipped  uint64
	)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	close(start)

	buf := make([]Event, 48) // smaller than the ring: the tailer can never keep up
	storming := true
	for storming {
		select {
		case <-done:
			storming = false
		default:
		}
		n, next, sk := r.TailInto(cur, buf)
		for d := Domain(0); d < numDomains; d++ {
			if next.Position(d) < cur.Position(d) {
				t.Fatalf("cursor for %v moved backward: %d -> %d", d, cur.Position(d), next.Position(d))
			}
		}
		returned += uint64(n)
		skipped += sk
		cur = next
		time.Sleep(50 * time.Microsecond) // deliberately slow reader
	}

	// Writers have quiesced; drain to the frontier.
	for {
		n, next, sk := r.TailInto(cur, buf)
		returned += uint64(n)
		skipped += sk
		cur = next
		if n == 0 && sk == 0 {
			break
		}
	}

	kernelEmitted := uint64(writers * perWriter)
	gpuEmitted := uint64(writers) * uint64((perWriter+2)/3)
	if total := returned + skipped; total != kernelEmitted+gpuEmitted {
		t.Fatalf("returned %d + skipped %d = %d, want exactly %d emitted",
			returned, skipped, returned+skipped, kernelEmitted+gpuEmitted)
	}
	if got := cur.Position(DomainKernel); got != kernelEmitted {
		t.Fatalf("kernel cursor = %d, want %d", got, kernelEmitted)
	}
	if got := cur.Position(DomainGPU); got != gpuEmitted {
		t.Fatalf("gpu cursor = %d, want %d", got, gpuEmitted)
	}
}
