package flightrec

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Timeline is one remoted call stitched back together across domains from
// its trace ID: client serialize → boundary crossing → daemon queue → exec
// → copy → response. Virtual durations unless noted.
type Timeline struct {
	TraceID uint64
	Seq     uint64
	API     uint64 // remoting API id from the call events
	Device  int    // executing device ordinal, -1 if no GPU work
	Shard   int    // fleet shard that executed the call (0 outside a fleet)
	Result  uint64 // remoting Result code from EvCallEnd
	Retries int

	// Router hop (fleet runs only): how many placement decisions routed
	// this call and whether any was a migration re-route.
	Routes   int
	Rerouted bool

	Start, End time.Duration // EvCallStart .. EvCallEnd
	ExecStartV time.Duration
	ExecEndV   time.Duration

	// The Fig 5/6 stages. Serialize and Route are wall time (marshal and
	// placement cost no virtual time); the rest partition the call's
	// virtual duration.
	Serialize time.Duration // wall ns spent marshaling
	Route     time.Duration // wall ns spent on router placement decisions
	Queue     time.Duration // call start until lakeD decoded it (incl. injected delay)
	Exec      time.Duration // daemon execution window minus transfer time
	Copy      time.Duration // transfer time charged inside the execution window
	Boundary  time.Duration // modeled channel round-trip cost
	Other     time.Duration // remainder: backoff, restart cost, response handling

	Completed bool // the client observed a response (EvCallEnd present)
	Complete  bool // every cross-domain link was recovered
	Missing   []string
}

// Total is the call's virtual duration.
func (t Timeline) Total() time.Duration { return t.End - t.Start }

// StitchResult is the reconstruction of a dump.
type StitchResult struct {
	Dump      *Dump
	Timelines []Timeline // calls (trace IDs with an EvCallStart), by Start
	Completed int        // timelines whose call finished
	Complete  int        // completed timelines with the full chain recovered
	Dropped   uint64     // events the recorder reported lost
}

// chain lists the links a completed call must have for its timeline to
// count as complete.
var chain = []struct {
	name string
	kind Kind
}{
	{"call_start", EvCallStart},
	{"marshal", EvMarshal},
	{"dispatch", EvDispatch},
	{"exec_start", EvExecStart},
	{"exec_end", EvExecEnd},
	{"respond", EvRespond},
	{"demux", EvDemux},
	{"channel", EvChannel},
	{"call_end", EvCallEnd},
}

// Stitch groups a dump's events by trace ID and rebuilds per-call
// cross-domain timelines.
func Stitch(d *Dump) *StitchResult {
	byTID := make(map[uint64][]Event)
	// Router events ride member-request trace IDs (the fleet routes
	// requests, the batcher flushes them under a fresh flush ID), so the
	// flush_member link re-homes each route hop onto the remoted call it
	// coalesced into — the stitched timeline then shows the hop.
	flushOf := make(map[uint64]uint64)
	var routes []Event
	for _, dd := range d.Domains {
		for _, e := range dd.Events {
			if e.TraceID == 0 {
				continue
			}
			byTID[e.TraceID] = append(byTID[e.TraceID], e)
			switch e.Kind {
			case EvFlushMember:
				if e.Arg0 != 0 {
					flushOf[e.TraceID] = e.Arg0
				}
			case EvRoute:
				routes = append(routes, e)
			}
		}
	}
	for _, e := range routes {
		if ftid, ok := flushOf[e.TraceID]; ok && ftid != e.TraceID {
			byTID[ftid] = append(byTID[ftid], e)
		}
	}
	res := &StitchResult{Dump: d, Dropped: d.TotalDropped()}
	for tid, evs := range byTID {
		tl, isCall := stitchOne(tid, evs)
		if !isCall {
			continue
		}
		res.Timelines = append(res.Timelines, tl)
		if tl.Completed {
			res.Completed++
			if tl.Complete {
				res.Complete++
			}
		}
	}
	sort.Slice(res.Timelines, func(i, j int) bool {
		a, b := res.Timelines[i], res.Timelines[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.TraceID < b.TraceID
	})
	return res
}

func stitchOne(tid uint64, evs []Event) (Timeline, bool) {
	tl := Timeline{TraceID: tid, Device: -1}
	have := make(map[Kind]bool, len(evs))
	const unset = time.Duration(-1 << 62)
	start, end, dispatchAt, execStartV, execEndV := unset, unset, unset, unset, unset
	for _, e := range evs {
		have[e.Kind] = true
		switch e.Kind {
		case EvCallStart:
			if start == unset || e.VTime < start {
				start = e.VTime
				tl.API = e.Arg0
				tl.Seq = e.Seq
			}
		case EvCallEnd:
			tl.Completed = true
			if end == unset || e.VTime > end {
				end = e.VTime
				tl.Result = e.Arg1
			}
		case EvMarshal:
			tl.Serialize += time.Duration(e.Arg0)
		case EvRetry:
			tl.Retries++
		case EvChannel:
			tl.Boundary += time.Duration(e.Arg0)
		case EvDispatch:
			if dispatchAt == unset || e.VTime < dispatchAt {
				dispatchAt = e.VTime
			}
		case EvExecStart:
			tl.Shard = int(e.Shard)
			if execStartV == unset || e.VTime < execStartV {
				execStartV = e.VTime
			}
		case EvExecEnd:
			if execEndV == unset || e.VTime < execEndV {
				execEndV = e.VTime
			}
		case EvCopy:
			tl.Copy += time.Duration(e.Arg1)
		case EvExec, EvLaunch:
			tl.Device = int(e.Device)
			tl.Shard = int(e.Shard)
		case EvRoute:
			tl.Routes++
			if e.Arg1 == 1 {
				tl.Rerouted = true
			}
			tl.Route += time.Duration(e.Arg2)
			tl.Shard = int(e.Shard)
		}
	}
	if !have[EvCallStart] {
		// Not a remoted call: a batcher member or flush-only trace ID.
		return tl, false
	}
	tl.Start = start
	if end != unset {
		tl.End = end
	} else {
		tl.End = start
	}
	if dispatchAt != unset && dispatchAt > start {
		tl.Queue = dispatchAt - start
	}
	if execStartV != unset && execEndV != unset && execEndV >= execStartV {
		tl.ExecStartV, tl.ExecEndV = execStartV, execEndV
		window := execEndV - execStartV
		if tl.Copy > window {
			tl.Copy = window
		}
		tl.Exec = window - tl.Copy
		// The dispatch anchor can postdate the exec window when the first
		// dispatch event was retransmission-reordered; re-anchor on the
		// window so the stages still partition the call.
		if tl.Start+tl.Queue > execStartV {
			tl.Queue = execStartV - tl.Start
		}
		if tl.Queue < 0 {
			tl.Queue = 0
		}
	}
	if tl.Completed {
		other := tl.Total() - tl.Queue - (tl.ExecEndV - tl.ExecStartV) - tl.Boundary
		if other > 0 {
			tl.Other = other
		}
	}
	for _, link := range chain {
		if !have[link.kind] {
			tl.Missing = append(tl.Missing, link.name)
		}
	}
	tl.Complete = tl.Completed && len(tl.Missing) == 0
	return tl, true
}

// StageMeans aggregates completed timelines into mean per-call
// nanoseconds for the virtual Fig 5/6 stages. The wall-time stages
// (Serialize, Route) are deliberately absent: they measure host
// scheduling, not modeled time, and would make a fixed-seed results file
// differ run over run. Consumers that gate on determinism (lakebench
// -results, lakeload) report exactly these fields.
type StageMeans struct {
	Calls      int
	PerCallNS  float64
	QueueNS    float64
	ExecNS     float64
	CopyNS     float64
	BoundaryNS float64
}

// MeasureStages folds the completed timelines of a stitched dump into
// per-stage means.
func MeasureStages(ts []Timeline) StageMeans {
	var m StageMeans
	var total, queue, exec, cp, boundary time.Duration
	for _, t := range ts {
		if !t.Completed {
			continue
		}
		m.Calls++
		total += t.Total()
		queue += t.Queue
		exec += t.Exec
		cp += t.Copy
		boundary += t.Boundary
	}
	if m.Calls > 0 {
		n := float64(m.Calls)
		m.PerCallNS = float64(total) / n
		m.QueueNS = float64(queue) / n
		m.ExecNS = float64(exec) / n
		m.CopyNS = float64(cp) / n
		m.BoundaryNS = float64(boundary) / n
	}
	return m
}

// stageNames orders the breakdown columns; the "(w)" stages (router
// placement, marshal) are wall time, the rest virtual.
var stageNames = []string{"route(w)", "serialize(w)", "queue", "exec", "copy", "boundary", "other"}

// wallStage reports whether the i'th breakdown column is wall time (and so
// excluded from virtual-share math).
func wallStage(i int) bool { return strings.HasSuffix(stageNames[i], "(w)") }

func (t Timeline) stages() []time.Duration {
	return []time.Duration{t.Route, t.Serialize, t.Queue, t.Exec, t.Copy, t.Boundary, t.Other}
}

// BreakdownTable renders the paper-Fig-5/6-shaped per-stage latency table:
// one row per API, mean per-call microseconds per stage plus each virtual
// stage's share of total virtual time. apiName maps remoting API ids to
// names (pass nil for numeric ids).
func BreakdownTable(ts []Timeline, apiName func(uint64) string) string {
	if apiName == nil {
		apiName = func(id uint64) string { return fmt.Sprintf("api_%d", id) }
	}
	type agg struct {
		api    uint64
		n      int
		total  time.Duration
		stages []time.Duration
	}
	byAPI := make(map[uint64]*agg)
	for _, t := range ts {
		if !t.Completed {
			continue
		}
		a := byAPI[t.API]
		if a == nil {
			a = &agg{api: t.API, stages: make([]time.Duration, len(stageNames))}
			byAPI[t.API] = a
		}
		a.n++
		a.total += t.Total()
		for i, d := range t.stages() {
			a.stages[i] += d
		}
	}
	rows := make([]*agg, 0, len(byAPI))
	for _, a := range byAPI {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })

	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %7s %10s", "api", "calls", "total_us")
	for _, s := range stageNames {
		fmt.Fprintf(&b, " %12s", s)
	}
	b.WriteString("\n")
	us := func(d time.Duration, n int) float64 { return float64(d) / float64(n) / 1e3 }
	for _, a := range rows {
		fmt.Fprintf(&b, "%-24s %7d %10.2f", apiName(a.api), a.n, us(a.total, a.n))
		for i, d := range a.stages {
			cell := fmt.Sprintf("%.2f", us(d, a.n))
			if !wallStage(i) && a.total > 0 { // virtual stages get a share column
				cell += fmt.Sprintf("/%2.0f%%", 100*float64(d)/float64(a.total))
			}
			fmt.Fprintf(&b, " %12s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TailAttribution reports which stage dominates the slowest calls: the
// per-stage share of virtual time among calls at or above the q'th
// total-latency quantile, against the all-calls share for contrast.
func TailAttribution(ts []Timeline, q float64, apiName func(uint64) string) string {
	if apiName == nil {
		apiName = func(id uint64) string { return fmt.Sprintf("api_%d", id) }
	}
	var done []Timeline
	for _, t := range ts {
		if t.Completed {
			done = append(done, t)
		}
	}
	if len(done) == 0 {
		return "no completed calls\n"
	}
	totals := make([]time.Duration, len(done))
	for i, t := range done {
		totals[i] = t.Total()
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	rank := int(math.Ceil(q*float64(len(totals)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(totals) {
		rank = len(totals) - 1
	}
	cut := totals[rank]

	sum := func(pred func(Timeline) bool) (stages []time.Duration, total time.Duration, n int, apis map[uint64]int) {
		stages = make([]time.Duration, len(stageNames))
		apis = make(map[uint64]int)
		for _, t := range done {
			if !pred(t) {
				continue
			}
			n++
			total += t.Total()
			apis[t.API]++
			for i, d := range t.stages() {
				stages[i] += d
			}
		}
		return
	}
	allStages, allTotal, allN, _ := sum(func(Timeline) bool { return true })
	tailStages, tailTotal, tailN, tailAPIs := sum(func(t Timeline) bool { return t.Total() >= cut })

	share := func(stages []time.Duration, total time.Duration, i int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(stages[i]) / float64(total)
	}
	dominant, dominantShare := "", -1.0
	var b strings.Builder
	fmt.Fprintf(&b, "p%.0f cutoff %.2fus: %d of %d calls\n", q*100, float64(cut)/1e3, tailN, allN)
	fmt.Fprintf(&b, "%-14s %12s %12s\n", "stage", "tail share", "all share")
	for i, name := range stageNames {
		if wallStage(i) {
			continue // wall-time stages; shares are of virtual totals
		}
		ts, as := share(tailStages, tailTotal, i), share(allStages, allTotal, i)
		fmt.Fprintf(&b, "%-14s %11.1f%% %11.1f%%\n", name, ts, as)
		if ts > dominantShare {
			dominant, dominantShare = name, ts
		}
	}
	fmt.Fprintf(&b, "tail is dominated by %q (%.1f%% of tail virtual time)\n", dominant, dominantShare)
	var names []string
	for api, n := range tailAPIs {
		names = append(names, fmt.Sprintf("%s×%d", apiName(api), n))
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "tail calls: %s\n", strings.Join(names, " "))
	return b.String()
}

// chromeEvent is one Chrome trace_event record (Perfetto's JSON format).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders the stitched timelines (plus crash/transition
// markers from the dump) as Chrome trace_event JSON loadable in Perfetto
// (chrome://tracing, ui.perfetto.dev). The virtual clock is the time axis;
// each trace ID gets its own track.
func ChromeTrace(res *StitchResult, apiName func(uint64) string) ([]byte, error) {
	if apiName == nil {
		apiName = func(id uint64) string { return fmt.Sprintf("api_%d", id) }
	}
	us := func(d time.Duration) float64 { return float64(d) / 1e3 }
	var events []chromeEvent
	for _, t := range res.Timelines {
		if !t.Completed {
			continue
		}
		args := map[string]any{
			"api": apiName(t.API), "seq": t.Seq, "trace_id": t.TraceID,
			"retries": t.Retries, "serialize_wall_ns": t.Serialize.Nanoseconds(),
		}
		if t.Device >= 0 {
			args["device"] = t.Device
		}
		if t.Routes > 0 {
			args["shard"] = t.Shard
			args["rerouted"] = t.Rerouted
		}
		events = append(events, chromeEvent{
			Name: apiName(t.API), Cat: "call", Ph: "X", Pid: 1, Tid: t.TraceID,
			Ts: us(t.Start), Dur: us(t.Total()), Args: args,
		})
		slice := func(name string, start, dur time.Duration) {
			if dur <= 0 {
				return
			}
			events = append(events, chromeEvent{
				Name: name, Cat: "stage", Ph: "X", Pid: 1, Tid: t.TraceID,
				Ts: us(start), Dur: us(dur),
			})
		}
		slice("queue", t.Start, t.Queue)
		if t.ExecEndV > t.ExecStartV {
			slice("exec", t.ExecStartV, t.ExecEndV-t.ExecStartV)
			slice("copy", t.ExecStartV, t.Copy)
			slice("boundary", t.ExecEndV, t.Boundary)
		} else {
			slice("boundary", t.Start+t.Queue, t.Boundary)
		}
	}
	if res.Dump != nil {
		for _, dd := range res.Dump.Domains {
			for _, e := range dd.Events {
				switch e.Kind {
				case EvCrash, EvRestart, EvTransition, EvQueueFull, EvMigrateStart, EvMigrateEnd:
					events = append(events, chromeEvent{
						Name: e.Kind.String(), Cat: e.Domain.String(), Ph: "i",
						Pid: 1, Tid: e.TraceID, Ts: us(e.VTime),
						Args: map[string]any{"arg0": e.Arg0, "arg1": e.Arg1},
					})
				}
			}
		}
	}
	return json.MarshalIndent(map[string]any{
		"displayTimeUnit": "ns",
		"traceEvents":     events,
	}, "", " ")
}
