package flightrec

import (
	"testing"
	"time"

	"lakego/internal/vtime"
)

// TestEmitCoarseWallStamps: every recorded event must carry a nonzero wall
// stamp, and the cached clock must actually advance across refresh periods
// (the stamp is coarse, not frozen at boot).
func TestEmitCoarseWallStamps(t *testing.T) {
	r := New(vtime.New(), 1024)
	r.SetEnabled(true)
	before := time.Now().UnixNano()
	for i := 0; i < int(3*wallRefreshEvery); i++ {
		r.Emit(DomainGPU, EvLaunch, 1, uint64(i), 0, 0, 0, 0)
		if i == int(wallRefreshEvery) { // let the wall clock visibly move
			time.Sleep(2 * time.Millisecond)
		}
	}
	d := r.Snapshot("test")
	evs := d.Domains[DomainGPU].Events
	if len(evs) != int(3*wallRefreshEvery) {
		t.Fatalf("recorded %d events, want %d", len(evs), 3*wallRefreshEvery)
	}
	var minW, maxW int64
	for i, e := range evs {
		if e.Wall < before {
			t.Fatalf("event %d wall stamp %d predates the run (%d)", i, e.Wall, before)
		}
		if minW == 0 || e.Wall < minW {
			minW = e.Wall
		}
		if e.Wall > maxW {
			maxW = e.Wall
		}
	}
	if maxW == minW {
		t.Fatal("coarse wall clock never advanced across refresh periods")
	}
}

// TestSampledEmission: a sampled domain records every nth event and counts
// the skipped remainder as dropped, while other domains stay untouched.
func TestSampledEmission(t *testing.T) {
	r := New(vtime.New(), 1024)
	r.SetEnabled(true)
	r.SetSampleEvery(DomainGPU, 4)
	const n = 100
	for i := 0; i < n; i++ {
		r.Emit(DomainGPU, EvLaunch, 1, uint64(i), 0, 0, 0, 0)
		r.Emit(DomainDaemon, EvDispatch, 1, uint64(i), 0, 0, 0, 0)
	}
	d := r.Snapshot("test")
	gpu := d.Domains[DomainGPU]
	if len(gpu.Events) != n/4 {
		t.Fatalf("sampled domain recorded %d events, want %d", len(gpu.Events), n/4)
	}
	if gpu.Dropped != n-n/4 {
		t.Fatalf("sampled domain dropped %d, want %d (sampling must not be silent)", gpu.Dropped, n-n/4)
	}
	if got := len(d.Domains[DomainDaemon].Events); got != n {
		t.Fatalf("unsampled domain recorded %d events, want %d", got, n)
	}
	// Restoring full recording stops the skipping.
	r.SetSampleEvery(DomainGPU, 1)
	for i := 0; i < 10; i++ {
		r.Emit(DomainGPU, EvLaunch, 2, uint64(i), 0, 0, 0, 0)
	}
	d = r.Snapshot("test")
	if got := len(d.Domains[DomainGPU].Events); got != n/4+10 {
		t.Fatalf("after restore: %d events, want %d", got, n/4+10)
	}
}

func TestLifecycleDomainNames(t *testing.T) {
	if DomainLifecycle.String() != "lifecycle" {
		t.Fatalf("DomainLifecycle = %q", DomainLifecycle.String())
	}
	for _, k := range []Kind{EvModelRegister, EvModelSwap, EvRetrainStep, EvShadowScore, EvDriftAlarm, EvFallback} {
		if k.String() == "unknown" || k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	// The new domain must round-trip through the binary dump format.
	r := New(vtime.New(), 64)
	r.SetEnabled(true)
	r.Emit(DomainLifecycle, EvModelSwap, 7, 1, 0, 2, 1, 0)
	d, err := ReadDump(r.Snapshot("test").Encode())
	if err != nil {
		t.Fatal(err)
	}
	evs := d.Domains[DomainLifecycle].Events
	if len(evs) != 1 || evs[0].Kind != EvModelSwap || evs[0].Arg0 != 2 {
		t.Fatalf("lifecycle event did not survive the dump round trip: %+v", evs)
	}
}

// BenchmarkFlightrecEmit measures the per-event recording cost — the number
// that used to be ~65% time.Now() on the ring transport's profiles. The
// "refresh=1" case is the pre-fix behavior (a real clock read per event);
// "refresh=64" is the shipping coarse cache.
func BenchmarkFlightrecEmit(b *testing.B) {
	for _, every := range []uint64{1, 64} {
		b.Run(map[uint64]string{1: "refresh=1", 64: "refresh=64"}[every], func(b *testing.B) {
			old := wallRefreshEvery
			wallRefreshEvery = every
			defer func() { wallRefreshEvery = old }()
			r := New(vtime.New(), DefaultRingSize)
			r.SetEnabled(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Emit(DomainGPU, EvLaunch, 1, uint64(i), 0, 1, 2, 3)
			}
		})
	}
}
