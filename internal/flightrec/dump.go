package flightrec

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"
)

// Dump is a flight-recorder snapshot: the crash artifact. It round-trips
// through a compact little-endian binary encoding (the laked
// /flightrec.dump endpoint, CI artifacts) and through JSON (the
// /flightrec.json endpoint, human inspection); ReadDump accepts either.
type Dump struct {
	Version int           `json:"version"`
	Reason  string        `json:"reason"`
	VNow    time.Duration `json:"v_now_ns"`
	WallNow int64         `json:"wall_now_ns"`
	Domains []DomainDump  `json:"domains"`
}

// DomainDump is one domain's surviving events plus its explicit loss count.
type DomainDump struct {
	Domain  Domain  `json:"domain"`
	Name    string  `json:"name"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// TotalEvents counts events across domains.
func (d *Dump) TotalEvents() int {
	n := 0
	for _, dd := range d.Domains {
		n += len(dd.Events)
	}
	return n
}

// TotalDropped totals the per-domain loss counts.
func (d *Dump) TotalDropped() uint64 {
	var n uint64
	for _, dd := range d.Domains {
		n += dd.Dropped
	}
	return n
}

const dumpVersion = 1

// dumpMagic leads the binary encoding; the trailing newline keeps the file
// recognizable in a pager.
var dumpMagic = [8]byte{'L', 'A', 'K', 'E', 'F', 'R', '1', '\n'}

// Encode serializes the dump in the binary format.
func (d *Dump) Encode() []byte {
	out := make([]byte, 0, 64+d.TotalEvents()*eventWords*8)
	out = append(out, dumpMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Version))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(d.Reason)))
	out = append(out, d.Reason...)
	out = binary.LittleEndian.AppendUint64(out, uint64(d.VNow))
	out = binary.LittleEndian.AppendUint64(out, uint64(d.WallNow))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(d.Domains)))
	for _, dd := range d.Domains {
		out = binary.LittleEndian.AppendUint16(out, uint16(dd.Domain))
		out = binary.LittleEndian.AppendUint64(out, dd.Dropped)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(dd.Events)))
		for _, e := range dd.Events {
			for _, w := range e.pack() {
				out = binary.LittleEndian.AppendUint64(out, w)
			}
		}
	}
	return out
}

// JSON serializes the dump as indented JSON.
func (d *Dump) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", " ")
}

// ReadDump parses a dump from either encoding, sniffing JSON by its leading
// brace.
func ReadDump(data []byte) (*Dump, error) {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			d := new(Dump)
			if err := json.Unmarshal(data, d); err != nil {
				return nil, fmt.Errorf("flightrec: bad JSON dump: %w", err)
			}
			return d, nil
		}
		break
	}
	return decodeBinary(data)
}

func decodeBinary(data []byte) (*Dump, error) {
	r := byteReader{buf: data}
	magic, err := r.take(len(dumpMagic))
	if err != nil || string(magic) != string(dumpMagic[:]) {
		return nil, fmt.Errorf("flightrec: not a flight-recorder dump")
	}
	d := new(Dump)
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	d.Version = int(ver)
	if d.Version != dumpVersion {
		return nil, fmt.Errorf("flightrec: unsupported dump version %d", d.Version)
	}
	rlen, err := r.u16()
	if err != nil {
		return nil, err
	}
	reason, err := r.take(int(rlen))
	if err != nil {
		return nil, err
	}
	d.Reason = string(reason)
	vnow, err := r.u64()
	if err != nil {
		return nil, err
	}
	d.VNow = time.Duration(vnow)
	wall, err := r.u64()
	if err != nil {
		return nil, err
	}
	d.WallNow = int64(wall)
	ndom, err := r.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(ndom); i++ {
		var dd DomainDump
		dom, err := r.u16()
		if err != nil {
			return nil, err
		}
		dd.Domain = Domain(dom)
		dd.Name = dd.Domain.String()
		if dd.Dropped, err = r.u64(); err != nil {
			return nil, err
		}
		nev, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(nev) > r.remaining()/(eventWords*8) {
			return nil, fmt.Errorf("flightrec: truncated dump")
		}
		dd.Events = make([]Event, nev)
		for j := range dd.Events {
			var w [eventWords]uint64
			for k := range w {
				if w[k], err = r.u64(); err != nil {
					return nil, err
				}
			}
			dd.Events[j] = unpackEvent(w)
		}
		d.Domains = append(d.Domains, dd)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("flightrec: %d trailing bytes after dump", r.remaining())
	}
	return d, nil
}

type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) remaining() int { return len(r.buf) - r.pos }

func (r *byteReader) take(n int) ([]byte, error) {
	if r.remaining() < n {
		return nil, fmt.Errorf("flightrec: truncated dump")
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *byteReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *byteReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *byteReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}
