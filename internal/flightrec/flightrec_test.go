package flightrec

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lakego/internal/vtime"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder must be disabled")
	}
	r.Emit(DomainKernel, EvCallStart, 1, 1, 0, 0, 0, 0)
	r.EmitFrame(EvFrameSend, []byte{1, 2, 3}, 0)
	r.BeginExec(7)
	r.EndExec()
	if r.ExecTrace() != 0 || r.NextTraceID() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder reads must be zero")
	}
	if r.Snapshot("x") != nil || r.TriggerDump("x") != nil || r.LastDump() != nil {
		t.Fatal("nil recorder must not produce dumps")
	}
}

func TestEventPackRoundTrip(t *testing.T) {
	e := Event{
		VTime: 123456789, Wall: time.Now().UnixNano(), TraceID: 1 << 60,
		Seq: 42, Domain: DomainGPU, Kind: EvCopy, Device: 3,
		Arg0: 4096, Arg1: 777, Arg2: 1,
	}
	if got := unpackEvent(e.pack()); got != e {
		t.Fatalf("pack round trip lost data:\n got %+v\nwant %+v", got, e)
	}
}

func TestRecorderDisabledEmitsNothing(t *testing.T) {
	r := New(vtime.New(), 128)
	r.Emit(DomainKernel, EvCallStart, 1, 1, 0, 0, 0, 0)
	if d := r.Snapshot("probe"); d.TotalEvents() != 0 {
		t.Fatalf("disabled recorder captured %d events", d.TotalEvents())
	}
}

func TestEmitAndSnapshot(t *testing.T) {
	clock := vtime.New()
	r := New(clock, 128)
	r.SetEnabled(true)
	clock.Advance(10 * time.Microsecond)
	r.Emit(DomainKernel, EvCallStart, 9, 1, 0, 5, 0, 0)
	clock.Advance(time.Microsecond)
	r.Emit(DomainDaemon, EvDispatch, 9, 1, 0, 5, 0, 0)
	r.Emit(DomainGPU, EvExec, 9, 0, 2, 100, 0, 0)

	d := r.Snapshot("unit")
	if d.TotalEvents() != 3 || d.TotalDropped() != 0 {
		t.Fatalf("events=%d dropped=%d, want 3/0", d.TotalEvents(), d.TotalDropped())
	}
	k := d.Domains[DomainKernel].Events
	if len(k) != 1 || k[0].Kind != EvCallStart || k[0].TraceID != 9 ||
		k[0].VTime != 10*time.Microsecond {
		t.Fatalf("kernel event wrong: %+v", k)
	}
	g := d.Domains[DomainGPU].Events
	if len(g) != 1 || g[0].Device != 2 {
		t.Fatalf("gpu event lost device ordinal: %+v", g)
	}
}

func TestRingOverflowCountsDropped(t *testing.T) {
	r := New(vtime.New(), 64)
	r.SetEnabled(true)
	const n = 200
	for i := 0; i < n; i++ {
		r.Emit(DomainKernel, EvCallStart, uint64(i+1), uint64(i+1), 0, 0, 0, 0)
	}
	d := r.Snapshot("overflow")
	kd := d.Domains[DomainKernel]
	if len(kd.Events) != 64 {
		t.Fatalf("surviving events = %d, want 64", len(kd.Events))
	}
	if kd.Dropped != n-64 {
		t.Fatalf("dropped = %d, want %d (no silent truncation)", kd.Dropped, n-64)
	}
	if r.Dropped() != n-64 {
		t.Fatalf("live Dropped() = %d, want %d", r.Dropped(), n-64)
	}
	// Oldest-first, and the survivors are the newest writes.
	if kd.Events[0].TraceID != n-64+1 || kd.Events[63].TraceID != n {
		t.Fatalf("survivor window wrong: first=%d last=%d",
			kd.Events[0].TraceID, kd.Events[63].TraceID)
	}
}

// TestConcurrentEmitAndSnapshot hammers one recorder from many writers
// while snapshots run — the -race guard for the lock-free ring.
func TestConcurrentEmitAndSnapshot(t *testing.T) {
	r := New(vtime.New(), 256)
	r.SetEnabled(true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					r.Emit(Domain(w%int(numDomains)), EvExec, uint64(w)<<32|uint64(i), 0, w, 1, 2, 3)
				}
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		d := r.Snapshot("race")
		for _, dd := range d.Domains {
			for _, e := range dd.Events {
				if e.Kind != EvExec {
					t.Fatalf("torn event leaked through stamp check: %+v", e)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestTraceIDsAreFreshAndNonzero(t *testing.T) {
	r := New(vtime.New(), 64)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := r.NextTraceID()
		if id == 0 || seen[id] {
			t.Fatalf("trace id %d reused or zero", id)
		}
		seen[id] = true
	}
}

func TestExecTraceAttribution(t *testing.T) {
	r := New(vtime.New(), 64)
	r.SetEnabled(true)
	r.BeginExec(55)
	if r.ExecTrace() != 55 {
		t.Fatal("ExecTrace must surface the in-flight trace id")
	}
	r.EndExec()
	if r.ExecTrace() != 0 {
		t.Fatal("EndExec must clear the in-flight trace id")
	}
}

func TestDumpBinaryAndJSONRoundTrip(t *testing.T) {
	clock := vtime.New()
	r := New(clock, 64)
	r.SetEnabled(true)
	clock.Advance(time.Millisecond)
	r.Emit(DomainKernel, EvCallStart, 1, 1, 0, 8, 0, 0)
	r.Emit(DomainDaemon, EvExecEnd, 1, 1, 0, 8, 0, 0)
	d := r.Snapshot("roundtrip")

	bin, err := ReadDump(d.Encode())
	if err != nil {
		t.Fatalf("binary round trip: %v", err)
	}
	js, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jd, err := ReadDump(js)
	if err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	for _, got := range []*Dump{bin, jd} {
		if got.Reason != "roundtrip" || got.VNow != d.VNow || got.WallNow != d.WallNow {
			t.Fatalf("header lost: %+v", got)
		}
		if got.TotalEvents() != 2 ||
			got.Domains[DomainKernel].Events[0] != d.Domains[DomainKernel].Events[0] {
			t.Fatalf("events lost: %+v", got)
		}
	}
	if _, err := ReadDump([]byte("not a dump")); err == nil {
		t.Fatal("garbage must not parse")
	}
	if _, err := ReadDump(d.Encode()[:20]); err == nil {
		t.Fatal("truncated dump must not parse")
	}
}

func TestTriggerDumpSinkAndLast(t *testing.T) {
	r := New(vtime.New(), 64)
	r.SetEnabled(true)
	var got *Dump
	r.SetDumpSink(func(d *Dump) { got = d })
	d := r.TriggerDump("crash")
	if d == nil || got != d || r.LastDump() != d || r.DumpCount() != 1 {
		t.Fatal("TriggerDump must retain the dump and call the sink")
	}
}

// synthetic timeline: one call with the full cross-domain chain.
func emitCall(r *Recorder, clock *vtime.Clock, tid, seq, api uint64) {
	r.Emit(DomainKernel, EvCallStart, tid, seq, 0, api, 0, 0)
	r.Emit(DomainKernel, EvMarshal, tid, seq, 0, 1500, 0, 0) // 1.5us wall
	r.EmitFrame(EvFrameSend, []byte{0xC2}, 1)
	clock.Advance(2 * time.Microsecond) // queue
	r.Emit(DomainDaemon, EvDispatch, tid, seq, 0, api, 0, 0)
	r.Emit(DomainDaemon, EvExecStart, tid, seq, 0, api, 0, 0)
	r.Emit(DomainGPU, EvCopy, tid, 0, 1, 4096, uint64(3*time.Microsecond), 0)
	clock.Advance(3 * time.Microsecond) // the copy
	clock.Advance(5 * time.Microsecond) // compute
	r.Emit(DomainGPU, EvExec, tid, 0, 1, uint64(5*time.Microsecond), 0, 0)
	r.Emit(DomainDaemon, EvExecEnd, tid, seq, 0, api, 0, 0)
	r.Emit(DomainDaemon, EvRespond, tid, seq, 0, api, 0, 0)
	r.Emit(DomainKernel, EvDemux, tid, seq, 0, 900, 0, 0)
	clock.Advance(60 * time.Microsecond) // boundary round trip
	r.Emit(DomainKernel, EvChannel, tid, seq, 0, uint64(60*time.Microsecond), 128, 0)
	r.Emit(DomainKernel, EvCallEnd, tid, seq, 0, api, 0, 0)
}

func TestStitchRebuildsTimelines(t *testing.T) {
	clock := vtime.New()
	r := New(clock, 1024)
	r.SetEnabled(true)
	for i := uint64(1); i <= 5; i++ {
		emitCall(r, clock, i, i, 3)
	}
	// One incomplete call: started, never finished.
	r.Emit(DomainKernel, EvCallStart, 99, 99, 0, 3, 0, 0)
	// One non-call trace id (batcher member) that must not count.
	r.Emit(DomainBatcher, EvEnqueue, 77, 1, 0, 1, 0, 0)

	res := Stitch(r.Snapshot("stitch"))
	if len(res.Timelines) != 6 {
		t.Fatalf("timelines = %d, want 6 (5 complete + 1 unfinished)", len(res.Timelines))
	}
	if res.Completed != 5 || res.Complete != 5 {
		t.Fatalf("completed=%d complete=%d, want 5/5", res.Completed, res.Complete)
	}
	tl := res.Timelines[0]
	if tl.TraceID != 1 || tl.API != 3 {
		t.Fatalf("first timeline wrong: %+v", tl)
	}
	if tl.Total() != 70*time.Microsecond {
		t.Fatalf("total = %v, want 70us", tl.Total())
	}
	if tl.Queue != 2*time.Microsecond || tl.Copy != 3*time.Microsecond ||
		tl.Exec != 5*time.Microsecond || tl.Boundary != 60*time.Microsecond ||
		tl.Other != 0 {
		t.Fatalf("stage partition wrong: %+v", tl)
	}
	if tl.Serialize != 1500*time.Nanosecond || tl.Device != 1 {
		t.Fatalf("serialize/device lost: %+v", tl)
	}
	if sum := tl.Queue + tl.Exec + tl.Copy + tl.Boundary + tl.Other; sum != tl.Total() {
		t.Fatalf("virtual stages do not partition the call: %v != %v", sum, tl.Total())
	}

	// The unfinished call is visible but not "completed".
	last := res.Timelines[len(res.Timelines)-1]
	if last.TraceID != 99 || last.Completed || last.Complete {
		t.Fatalf("unfinished call misclassified: %+v", last)
	}
	if len(last.Missing) == 0 {
		t.Fatal("unfinished call must list its missing links")
	}
}

func TestBreakdownAndTailRendering(t *testing.T) {
	clock := vtime.New()
	r := New(clock, 1024)
	r.SetEnabled(true)
	for i := uint64(1); i <= 20; i++ {
		emitCall(r, clock, i, i, 3)
	}
	res := Stitch(r.Snapshot("render"))
	name := func(id uint64) string { return "cuLaunchKernel" }

	table := BreakdownTable(res.Timelines, name)
	if !strings.Contains(table, "cuLaunchKernel") || !strings.Contains(table, "boundary") {
		t.Fatalf("breakdown table malformed:\n%s", table)
	}
	tail := TailAttribution(res.Timelines, 0.99, name)
	if !strings.Contains(tail, `dominated by "boundary"`) {
		t.Fatalf("tail attribution should blame the 60us boundary stage:\n%s", tail)
	}
	chrome, err := ChromeTrace(res, name)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents"`, `"ph": "X"`, `"cuLaunchKernel"`, `"boundary"`} {
		if !strings.Contains(string(chrome), want) {
			t.Fatalf("chrome trace missing %s:\n%.400s", want, chrome)
		}
	}
}
