// Package flightrec is LAKE's always-on flight recorder: per-domain MPSC
// rings of fixed-size binary event records, in the spirit of ftrace's ring
// buffers. Every layer of the remoting stack — lakeLib, the boundary
// channel, lakeD, the batcher, the GPU model and device pool, and the
// supervisor — emits compact events (virtual + wall timestamp, kind, trace
// ID, sequence number, device ordinal, three payload words) into its own
// ring. The rings are cheap enough to leave on (one atomic cursor fetch-add
// plus nine atomic stores per event; one atomic load when disabled) and
// their contents become the crash artifact: dumps trigger automatically on
// supervisor Dead/Restarting transitions and armed chaos crashes, and on
// demand over laked's telemetry HTTP server.
//
// The trace ID threaded through events is the cross-boundary correlation
// key: lakeLib stamps each remoted command with a fresh ID (carried on the
// wire by the optional v2 command frame), lakeD tags its dispatch/exec
// events with the same ID, and the GPU layers inherit it from the in-flight
// execution — so one inference call can be stitched back together across
// the kernel/user boundary. cmd/laketrace does exactly that with a dump.
package flightrec

import (
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/vtime"
)

// Domain identifies which layer of the stack emitted an event; each domain
// writes to its own ring so a noisy layer cannot evict another's history.
type Domain uint8

const (
	DomainKernel     Domain = iota // lakeLib, the kernel-side stub library
	DomainBoundary                 // the modeled kernel/user channel
	DomainDaemon                   // lakeD command dispatch and execution
	DomainBatcher                  // cross-client batching
	DomainGPU                      // device model, CUDA API, device pool
	DomainSupervisor               // daemon health state machine
	DomainRouter                   // fleet client-side routing and migration
	DomainLifecycle                // model registry: swaps, retraining, drift
	numDomains
)

var domainNames = [numDomains]string{
	"kernel", "boundary", "daemon", "batcher", "gpu", "supervisor", "router",
	"lifecycle",
}

func (d Domain) String() string {
	if int(d) < len(domainNames) {
		return domainNames[d]
	}
	return "unknown"
}

// Kind is the event type. Payload word meanings are per kind and documented
// inline; unused words are zero.
type Kind uint16

const (
	EvNone          Kind = iota
	EvCallStart          // kernel: remoted call begins; a0=API id
	EvMarshal            // kernel: command marshaled; a0=wall ns spent
	EvRetry              // kernel: retransmission; a0=attempt number
	EvChannel            // kernel: boundary round trip charged; a0=virtual ns, a1=bytes
	EvDemux              // kernel: response matched to call; a0=wall ns spent
	EvCallEnd            // kernel: remoted call done; a0=API id, a1=Result code
	EvFrameSend          // boundary: frame enqueued; a0=bytes, a1=direction (0 to user, 1 to kernel)
	EvFrameRecv          // boundary: frame dequeued; a0=bytes, a1=direction
	EvQueueFull          // boundary: frame lost to a full channel queue; a1=direction
	EvDispatch           // daemon: command decoded; a0=API id
	EvJournalHit         // daemon: redelivered command answered from the journal
	EvExecStart          // daemon: command execution begins; a0=API id
	EvExecEnd            // daemon: command execution done; a0=API id, a1=Result code
	EvRespond            // daemon: response frame sent; a0=API id
	EvCrash              // daemon: armed crash fired; a0=crash point
	EvRestart            // daemon: daemon restarted; a0=new generation
	EvEnqueue            // batcher: request queued; a0=item count
	EvFlushStart         // batcher: flush begins; a0=batched requests, a1=reason (0 full, 1 deadline, 2 linger)
	EvFlushMember        // batcher/daemon: member request rode a flush; a0=flush trace ID
	EvFlushEnd           // batcher: flush done; a0=batched requests, a1=1 if GPU path, 0 if CPU fallback
	EvPlace              // gpu: pool placement decision; a0=policy, a1=1 for a flush placement
	EvLaunch             // gpu: kernel launch requested; a0=function handle, a1=arg count
	EvExec               // gpu: device executed work; a0=virtual ns of work, a1=virtual ns queued behind the device
	EvCopy               // gpu: transfer charged; a0=bytes, a1=virtual ns
	EvTransition         // supervisor: state change; a0=from, a1=to
	EvRoute              // router: call placed on a shard; a0=policy, a1=1 for a migration re-route, a2=wall ns spent deciding
	EvMigrateStart       // router: shard migration begins; a0=source shard, a1=destination shard
	EvMigrateEnd         // router: shard migration done; a0=source shard, a1=destination shard, a2=journal entries moved
	EvDoorbell           // boundary: ring-transport doorbell rung on an empty→nonempty transition; a0=bytes, a1=direction
	EvModelRegister      // lifecycle: version added to the registry; a0=version seq, a1=content hash (low 64)
	EvModelSwap          // lifecycle: serving slot flipped; a0=new version seq, a1=old version seq, a2=reason (0 promote, 1 demote, 2 rollback)
	EvRetrainStep        // lifecycle: one online SGD step; a0=samples consumed, a1=loss milli-units
	EvShadowScore        // lifecycle: A-B shadow comparison; a0=candidate hits, a1=serving hits, a2=window size
	EvDriftAlarm         // lifecycle: drift detector fired; a0=accuracy per-mille, a1=baseline per-mille, a2=consecutive bad windows
	EvFallback           // lifecycle: model marked unhealthy, *Auto routing on heuristic path; a0=1 entering fallback, 0 leaving
	numKinds
)

var kindNames = [numKinds]string{
	"none", "call_start", "marshal", "retry", "channel", "demux", "call_end",
	"frame_send", "frame_recv", "queue_full",
	"dispatch", "journal_hit", "exec_start", "exec_end", "respond", "crash", "restart",
	"enqueue", "flush_start", "flush_member", "flush_end",
	"place", "launch", "exec", "copy",
	"transition",
	"route", "migrate_start", "migrate_end",
	"doorbell",
	"model_register", "model_swap", "retrain_step", "shadow_score", "drift_alarm", "fallback",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one decoded flight-recorder record. On the wire (and in the
// rings) it is exactly eventWords packed uint64s.
type Event struct {
	VTime   time.Duration // virtual-clock timestamp
	Wall    int64         // wall-clock timestamp, unix nanoseconds
	TraceID uint64
	Seq     uint64
	Domain  Domain
	Kind    Kind
	Shard   uint16 // fleet shard ordinal (0 outside a fleet)
	Device  uint16 // device ordinal for GPU-domain events
	Arg0    uint64
	Arg1    uint64
	Arg2    uint64
}

// pack squeezes kind/shard/domain/device into one word: kind in bits 32-47,
// shard in the previously unused bits 48-63, domain in 16-23, device in
// 0-15. Pre-fleet dumps decode with Shard 0, so the binary format needs no
// version bump.
func (e Event) pack() [eventWords]uint64 {
	return [eventWords]uint64{
		uint64(e.VTime),
		uint64(e.Wall),
		e.TraceID,
		e.Seq,
		uint64(e.Kind)<<32 | uint64(e.Shard)<<48 | uint64(e.Domain)<<16 | uint64(e.Device),
		e.Arg0,
		e.Arg1,
		e.Arg2,
	}
}

func unpackEvent(w [eventWords]uint64) Event {
	return Event{
		VTime:   time.Duration(w[0]),
		Wall:    int64(w[1]),
		TraceID: w[2],
		Seq:     w[3],
		Kind:    Kind(w[4] >> 32),
		Shard:   uint16(w[4] >> 48),
		Domain:  Domain(w[4] >> 16),
		Device:  uint16(w[4]),
		Arg0:    w[5],
		Arg1:    w[6],
		Arg2:    w[7],
	}
}

// FrameInfo is what a frame peeker extracts from a wire frame so the
// boundary can tag its events without decoding (or depending on) the
// remoting package. Resp distinguishes response frames from commands.
type FrameInfo struct {
	Resp    bool
	API     uint32
	Seq     uint64
	TraceID uint64
}

// FramePeeker reads the identifying header of a wire frame. ok is false for
// frames the peeker does not recognize (corrupt or foreign); the boundary
// still records those, just untagged.
type FramePeeker func(frame []byte) (FrameInfo, bool)

// DefaultRingSize is the per-domain ring capacity when the config does not
// say otherwise: 4096 events × 64 bytes × 8 domains = 2 MiB resident.
const DefaultRingSize = 4096

// wallRefreshEvery is how many emissions share one cached wall-clock read.
// Emit used to call time.Now() per event, which dominated wall time on the
// ring transport (~65% CPU in profiles); the recorder now refreshes a single
// atomic word once per this many events. Event wall stamps are therefore
// coarse — laketrace stitching orders and partitions on the virtual
// timestamps, and dump headers re-read the real clock, so only the per-event
// display resolution degrades. (A var only so the benchmark can measure the
// per-event-refresh cost it replaced.)
var wallRefreshEvery uint64 = 64

// Recorder owns one ring per domain plus the trace-ID allocator. All
// methods are safe on a nil *Recorder and safe for concurrent use; Emit on
// a disabled recorder costs one atomic load.
//
// A fleet shares one recorder across shards through WithShard views: each
// view writes to the root's rings (and draws from the root's trace-ID
// allocator, so IDs stay fleet-unique) but stamps its shard ordinal on
// every event and keeps its own in-flight execution word — each shard's
// lakeD executes commands independently, so one shared execTID would
// cross-tag concurrent executions.
type Recorder struct {
	enabled atomic.Bool
	clock   *vtime.Clock
	traceID atomic.Uint64
	execTID atomic.Uint64 // trace ID of the command this shard's lakeD is executing now
	peek    atomic.Value  // FramePeeker
	rings   [numDomains]*ring

	// Coarse wall clock: one cached unix-ns word shared by all emitters,
	// refreshed every wallRefreshEvery events (see the const for why).
	wallCoarse atomic.Int64
	wallSeq    atomic.Uint64

	// Per-domain sampling period: 0/1 records every event, n keeps every
	// nth. sampleSeq counts each domain's offered events.
	sampleEvery [numDomains]atomic.Uint32
	sampleSeq   [numDomains]atomic.Uint64

	shard uint16    // ordinal stamped on events emitted through this view
	root  *Recorder // non-nil on shard views; shared ring/dump/ID state lives there

	dumpMu sync.Mutex
	last   *Dump
	sink   func(*Dump)
	dumps  atomic.Int64
}

// base resolves to the recorder owning the shared state: the root for a
// shard view, the receiver otherwise.
func (r *Recorder) base() *Recorder {
	if r.root != nil {
		return r.root
	}
	return r
}

// WithShard derives a view of the recorder for fleet shard ord: events
// emitted through the view carry Shard=ord and land in the shared rings.
// The view has an independent BeginExec/EndExec word. clock, when non-nil,
// stamps the view's events — fleet shards run on independent virtual
// clocks, so each shard's events must be stamped on its own timeline; nil
// inherits the root's clock. Nil-safe.
func (r *Recorder) WithShard(ord int, clock *vtime.Clock) *Recorder {
	if r == nil {
		return nil
	}
	b := r.base()
	if clock == nil {
		clock = b.clock
	}
	return &Recorder{clock: clock, shard: uint16(ord), root: b}
}

// Shard returns the ordinal this view stamps on events (0 for the root).
func (r *Recorder) Shard() int {
	if r == nil {
		return 0
	}
	return int(r.shard)
}

// New builds a recorder on the runtime's virtual clock with ringSize events
// per domain (DefaultRingSize if <= 0). The recorder starts disabled.
func New(clock *vtime.Clock, ringSize int) *Recorder {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	r := &Recorder{clock: clock}
	for i := range r.rings {
		r.rings[i] = newRing(ringSize)
	}
	return r
}

// SetEnabled switches recording on or off (fleet-wide on a shard view).
// No-op on nil.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.base().enabled.Store(on)
	}
}

// Enabled reports whether events are being recorded (false for nil).
func (r *Recorder) Enabled() bool {
	return r != nil && r.base().enabled.Load()
}

// NextTraceID allocates a fresh nonzero trace ID. Valid (and deterministic)
// even while recording is disabled, so span tracing can key off trace IDs
// without the recorder. Shard views draw from the root's allocator, keeping
// IDs unique across a fleet. Returns 0 on nil — the "untraced" sentinel
// that keeps the wire in its old byte-identical shape.
func (r *Recorder) NextTraceID() uint64 {
	if r == nil {
		return 0
	}
	return r.base().traceID.Add(1)
}

// SetFramePeeker installs the frame-header reader the boundary events use.
// Injected by core from the remoting package to keep this package (and the
// boundary) free of a protocol dependency.
func (r *Recorder) SetFramePeeker(p FramePeeker) {
	if r != nil && p != nil {
		r.base().peek.Store(p)
	}
}

// SetSampleEvery arms sampled emission for one domain: every nth offered
// event is recorded, the rest are counted (they surface in the dump's
// dropped tally so a sampled ring never looks falsely complete). n <= 1
// restores full recording. Sampling a domain whose events laketrace
// stitches into call chains (kernel, daemon, boundary) trades chain
// completeness for overhead; the high-rate GPU and batcher domains are the
// intended targets. No-op on nil.
func (r *Recorder) SetSampleEvery(d Domain, n uint32) {
	if r == nil || int(d) >= int(numDomains) {
		return
	}
	if n <= 1 {
		n = 0
	}
	r.base().sampleEvery[d].Store(n)
}

// coarseWall returns the cached wall clock, refreshing it from the real
// clock once per wallRefreshEvery emissions.
func (r *Recorder) coarseWall() int64 {
	// The 1%... form keeps refresh=1 (the benchmark's per-event emulation)
	// refreshing on every emission.
	if r.wallSeq.Add(1)%wallRefreshEvery == 1%wallRefreshEvery {
		now := time.Now().UnixNano()
		r.wallCoarse.Store(now)
		return now
	}
	if w := r.wallCoarse.Load(); w != 0 {
		return w
	}
	now := time.Now().UnixNano() // first events of a quiet recorder
	r.wallCoarse.Store(now)
	return now
}

// Emit records one event. device is the GPU ordinal (pass 0 elsewhere).
func (r *Recorder) Emit(d Domain, k Kind, traceID, seq uint64, device int, a0, a1, a2 uint64) {
	if !r.Enabled() {
		return
	}
	b := r.base()
	if n := b.sampleEvery[d].Load(); n > 1 {
		if b.sampleSeq[d].Add(1)%uint64(n) != 1 {
			b.rings[d].sampledOut.Add(1)
			return
		}
	}
	e := Event{
		VTime:   r.clock.Now(),
		Wall:    b.coarseWall(),
		TraceID: traceID,
		Seq:     seq,
		Domain:  d,
		Kind:    k,
		Shard:   r.shard,
		Device:  uint16(device),
		Arg0:    a0,
		Arg1:    a1,
		Arg2:    a2,
	}
	b.rings[d].put(e.pack())
}

// EmitFrame records a boundary-domain event for a wire frame, tagging it
// with the frame's trace ID and sequence number when the installed peeker
// recognizes it. dir is 0 for kernel→user, 1 for user→kernel.
func (r *Recorder) EmitFrame(k Kind, frame []byte, dir uint64) {
	if !r.Enabled() {
		return
	}
	var tid, seq uint64
	if p, ok := r.base().peek.Load().(FramePeeker); ok {
		if info, ok := p(frame); ok {
			tid, seq = info.TraceID, info.Seq
		}
	}
	r.Emit(DomainBoundary, k, tid, seq, 0, uint64(len(frame)), dir, 0)
}

// BeginExec marks traceID as the command lakeD is currently executing, so
// GPU-domain events fired from inside the execution (launches, copies) can
// inherit it. lakeD executes one command at a time (every PumpOne runs
// under lakeLib's call lock), so a single word suffices.
func (r *Recorder) BeginExec(traceID uint64) {
	if r != nil {
		r.execTID.Store(traceID)
	}
}

// EndExec clears the in-flight execution trace ID.
func (r *Recorder) EndExec() {
	if r != nil {
		r.execTID.Store(0)
	}
}

// ExecTrace returns the trace ID of the command currently executing in
// lakeD, or 0 when GPU work is running outside a remoted command.
func (r *Recorder) ExecTrace() uint64 {
	if r == nil {
		return 0
	}
	return r.execTID.Load()
}

// Dropped totals the events lost to ring overflow so far across domains.
// Torn slots are only detectable at snapshot time and are added to the
// per-domain dropped counts in the dump itself.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for _, rg := range r.base().rings {
		n += rg.overwritten()
	}
	return n
}

// Snapshot captures the surviving events of every domain into a Dump.
// Writers are not paused; slots torn during the scan count as dropped.
func (r *Recorder) Snapshot(reason string) *Dump {
	if r == nil {
		return nil
	}
	r = r.base()
	d := &Dump{
		Version: dumpVersion,
		Reason:  reason,
		VNow:    r.clock.Now(),
		WallNow: time.Now().UnixNano(),
	}
	r.wallCoarse.Store(d.WallNow) // dumps re-anchor the coarse event clock
	for dom := Domain(0); dom < numDomains; dom++ {
		raw, dropped := r.rings[dom].snapshot()
		dd := DomainDump{Domain: dom, Name: dom.String(), Dropped: dropped}
		dd.Events = make([]Event, len(raw))
		for i, w := range raw {
			dd.Events[i] = unpackEvent(w)
		}
		d.Domains = append(d.Domains, dd)
	}
	return d
}

// SetDumpSink installs a callback invoked with every automatic dump (the
// CI artifact writer, a test harness). Called synchronously from
// TriggerDump; keep it cheap.
func (r *Recorder) SetDumpSink(sink func(*Dump)) {
	if r == nil {
		return
	}
	r = r.base()
	r.dumpMu.Lock()
	r.sink = sink
	r.dumpMu.Unlock()
}

// TriggerDump snapshots the rings in response to a fault (supervisor
// transition, armed crash, operator request), retains it as LastDump, and
// hands it to the sink if one is installed. No-op when disabled.
func (r *Recorder) TriggerDump(reason string) *Dump {
	if !r.Enabled() {
		return nil
	}
	r = r.base()
	d := r.Snapshot(reason)
	r.dumpMu.Lock()
	r.last = d
	sink := r.sink
	r.dumpMu.Unlock()
	r.dumps.Add(1)
	if sink != nil {
		sink(d)
	}
	return d
}

// LastDump returns the most recent automatic dump, if any.
func (r *Recorder) LastDump() *Dump {
	if r == nil {
		return nil
	}
	r = r.base()
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	return r.last
}

// DumpCount reports how many automatic dumps have fired.
func (r *Recorder) DumpCount() int64 {
	if r == nil {
		return 0
	}
	return r.base().dumps.Load()
}
