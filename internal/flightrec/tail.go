package flightrec

import (
	"fmt"
	"strconv"
	"strings"
)

// Live tailing: a non-destructive, cursor-based reader over the per-domain
// MPSC rings. Snapshot copies whatever survives at one instant; Tail instead
// lets a consumer (the health plane's SLO engine, laked's /flightrec.tail
// endpoint) chase the writers' cursor incrementally, observing every event
// exactly once — or, when the writers lap a slow reader, counting exactly
// how many events it missed. Tailing costs the writers nothing: readers only
// perform atomic loads against the same slot protocol Emit already uses, so
// the zero-allocation hot path is untouched.
//
// Cursor protocol (per domain):
//
//   - The reader holds a position pos, the index of the next event it wants.
//     Writers publish slot idx with stamp = idx+1, so the reader accepts a
//     slot exactly when stamp == pos+1 and re-checks the stamp after copying
//     the payload (a change mid-copy means a writer lapped the ring during
//     the read — the event is gone, counted skipped).
//   - stamp > pos+1 means the slot was lapped before the reader arrived:
//     that event is lost, counted skipped, and the reader advances.
//   - stamp < pos+1 means the event is not published yet (a writer reserved
//     the index but has not finished its stores, or the index is beyond the
//     write cursor): the reader stops and will resume here next call, so an
//     in-flight event is never falsely counted skipped.
//   - If the write cursor has advanced more than a full ring capacity past
//     pos, everything in between was overwritten: the gap is added to the
//     skipped count in one step and pos jumps to the oldest surviving index.
//
// Sampled-out events (Recorder.SetSampleEvery) never reach a ring, so a
// tailer cannot return them; the cursor carries each domain's sampled-out
// baseline and the delta folds into the skipped count — sampling is never
// silent, matching Snapshot's dropped accounting.
//
// Every emitted event is therefore either returned exactly once or counted
// skipped exactly once (the count for an event racing a lapping writer may
// land on the call after the race resolves). Cursors are monotonic: no
// domain position ever moves backward.

// TailCursor is an opaque resumption point for Recorder.Tail. The zero
// value reads each domain's ring from its oldest surviving event. Cursors
// round-trip through String/ParseTailCursor for use as an HTTP query
// parameter.
type TailCursor struct {
	pos     [numDomains]uint64
	sampled [numDomains]uint64
}

// Position returns the cursor's next event index for one domain (the count
// of that domain's events already consumed or skipped past).
func (c TailCursor) Position(d Domain) uint64 {
	if int(d) >= int(numDomains) {
		return 0
	}
	return c.pos[d]
}

// tailCursorVersion tags the wire form so a format change cannot silently
// misparse an old cursor.
const tailCursorVersion = "v1"

// String encodes the cursor for transport: "v1.<pos...>-<sampled...>" with
// dot-separated hex words, one per domain.
func (c TailCursor) String() string {
	var b strings.Builder
	b.WriteString(tailCursorVersion)
	for _, p := range c.pos {
		b.WriteByte('.')
		b.WriteString(strconv.FormatUint(p, 16))
	}
	b.WriteByte('-')
	for i, s := range c.sampled {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(s, 16))
	}
	return b.String()
}

// ParseTailCursor decodes a String-encoded cursor. The empty string is the
// zero cursor (tail from the beginning).
func ParseTailCursor(s string) (TailCursor, error) {
	var c TailCursor
	if s == "" {
		return c, nil
	}
	body, sampledPart, ok := strings.Cut(s, "-")
	if !ok {
		return c, fmt.Errorf("flightrec: malformed tail cursor %q", s)
	}
	parts := strings.Split(body, ".")
	if len(parts) != int(numDomains)+1 || parts[0] != tailCursorVersion {
		return c, fmt.Errorf("flightrec: malformed tail cursor %q", s)
	}
	for i, p := range parts[1:] {
		v, err := strconv.ParseUint(p, 16, 64)
		if err != nil {
			return c, fmt.Errorf("flightrec: malformed tail cursor %q: %w", s, err)
		}
		c.pos[i] = v
	}
	sparts := strings.Split(sampledPart, ".")
	if len(sparts) != int(numDomains) {
		return c, fmt.Errorf("flightrec: malformed tail cursor %q", s)
	}
	for i, p := range sparts {
		v, err := strconv.ParseUint(p, 16, 64)
		if err != nil {
			return c, fmt.Errorf("flightrec: malformed tail cursor %q: %w", s, err)
		}
		c.sampled[i] = v
	}
	return c, nil
}

// Tail returns up to max events published since the cursor (0 or negative
// means no bound beyond one ring capacity per domain), the cursor to resume
// from, and how many events the reader missed — lost to overwrite, torn by
// a lapping writer mid-copy, or withheld by sampling. Domains drain in
// ordinal order; when max truncates the read, the remainder is picked up by
// the next call. Nil-safe: a nil recorder returns no events and the cursor
// unchanged.
func (r *Recorder) Tail(c TailCursor, max int) (events []Event, next TailCursor, skipped uint64) {
	if r == nil {
		return nil, c, 0
	}
	if max <= 0 {
		max = int(numDomains) * int(r.base().rings[0].capacity())
	}
	buf := make([]Event, max)
	n, next, skipped := r.TailInto(c, buf)
	return buf[:n], next, skipped
}

// TailInto is Tail with a caller-owned buffer: it fills buf, returning the
// count filled. A reader that reuses its buffer tails allocation-free.
func (r *Recorder) TailInto(c TailCursor, buf []Event) (n int, next TailCursor, skipped uint64) {
	next = c
	if r == nil || len(buf) == 0 {
		return 0, next, 0
	}
	b := r.base()
	for d := Domain(0); d < numDomains; d++ {
		rg := b.rings[d]
		// Sampling withholds events before they reach the ring; surface the
		// delta since this cursor so a sampled domain never looks complete.
		if so := rg.sampledOut.Load(); so > next.sampled[d] {
			skipped += so - next.sampled[d]
			next.sampled[d] = so
		}
		pos := next.pos[d]
		cur := rg.cursor.Load()
		if cap := rg.capacity(); cur > cap && pos < cur-cap {
			// The writers are at least a full ring ahead: everything in
			// [pos, cur-cap) was overwritten before we got here.
			skipped += (cur - cap) - pos
			pos = cur - cap
		}
	scan:
		for pos < cur && n < len(buf) {
			slot := pos & rg.mask
			st := rg.stamp[slot].Load()
			switch {
			case st == pos+1:
				var w [eventWords]uint64
				base := slot * eventWords
				for i := range w {
					w[i] = rg.words[base+uint64(i)].Load()
				}
				if rg.stamp[slot].Load() != pos+1 {
					// A writer lapped the ring and re-stamped the slot while
					// we copied: the event we wanted is gone.
					skipped++
					pos++
					continue
				}
				buf[n] = unpackEvent(w)
				n++
				pos++
			case st > pos+1:
				// Lapped before we arrived; the event was overwritten.
				skipped++
				pos++
			default:
				// st < pos+1: the slot is reserved but unpublished (a writer
				// mid-store) or invalidated by an in-flight lap. Stop this
				// domain — the next call resumes at pos and either reads the
				// published event or accounts the overwrite, never both.
				break scan
			}
		}
		next.pos[d] = pos
		if n == len(buf) {
			break
		}
	}
	return n, next, skipped
}
