// Package trace synthesizes the block-I/O traces of the LinnOS end-to-end
// study (§7.1, Table 4).
//
// The original LinnOS traces are not public; the paper generates substitutes
// "with similar characteristics based on parameters presented in the paper,
// using an exponential distribution for inter-arrival time, a lognormal
// distribution for I/O size and a uniform distribution for I/O offset", and
// "rerates" them by scaling inter-arrival times to raise IOPS. This package
// does exactly that, with profiles parameterized to reproduce Table 4.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"
)

// Request is one block I/O in a trace.
type Request struct {
	// Arrival is the absolute issue time from trace start.
	Arrival time.Duration
	// Size is the transfer length in bytes.
	Size int64
	// Offset is the starting byte offset on the device.
	Offset int64
	// Write distinguishes writes from reads.
	Write bool
}

// Profile parameterizes a synthetic trace family.
type Profile struct {
	// Name labels the trace (Azure, Bing-I, Cosmos).
	Name string
	// AvgIOPS sets the exponential inter-arrival mean (1/AvgIOPS).
	AvgIOPS float64
	// ReadKB / WriteKB are mean I/O sizes in KiB (lognormal).
	ReadKB, WriteKB float64
	// MaxArrival clips inter-arrival gaps (Table 4's max arrival time).
	MaxArrival time.Duration
	// WriteFrac is the fraction of write requests.
	WriteFrac float64
	// SizeSigma is the lognormal shape parameter for sizes.
	SizeSigma float64
	// DeviceBytes bounds the uniform offset distribution.
	DeviceBytes int64
}

// The three enterprise trace profiles of Table 4, already rerated to double
// the IOPS of the LinnOS originals for Azure and Bing-I ("we rerate the
// traces presented as enterprise-level in the original work by doubling the
// average IOPS of the traces with smaller I/O sizes ... The Cosmos trace was
// not rerated").
func Azure() Profile {
	return Profile{
		Name: "Azure", AvgIOPS: 26000, ReadKB: 30, WriteKB: 19,
		MaxArrival: 324 * time.Microsecond, WriteFrac: 0.35,
		SizeSigma: 0.7, DeviceBytes: 900 << 30,
	}
}

// Bing-I profile (Table 4 row 2).
func BingI() Profile {
	return Profile{
		Name: "Bing-I", AvgIOPS: 4800, ReadKB: 73, WriteKB: 59,
		MaxArrival: 1800 * time.Microsecond, WriteFrac: 0.30,
		SizeSigma: 0.7, DeviceBytes: 900 << 30,
	}
}

// Cosmos profile (Table 4 row 3).
func Cosmos() Profile {
	return Profile{
		Name: "Cosmos", AvgIOPS: 2500, ReadKB: 657, WriteKB: 609,
		MaxArrival: 1600 * time.Microsecond, WriteFrac: 0.40,
		SizeSigma: 0.5, DeviceBytes: 900 << 30,
	}
}

// Profiles returns the three Table 4 profiles in row order.
func Profiles() []Profile { return []Profile{Azure(), BingI(), Cosmos()} }

// ProfileByName resolves a Table 4 profile from its config-file spelling
// (case-insensitive: "azure", "bing-i", "cosmos").
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q (want azure, bing-i or cosmos)", name)
}

// Rerate returns a copy of p with IOPS scaled by factor, the paper's
// technique for stressing faster devices (the Mixed+ workload rerates all
// traces to three times their IOPS).
func (p Profile) Rerate(factor float64) Profile {
	p.AvgIOPS *= factor
	return p
}

// Generate synthesizes n requests deterministically from seed. A profile
// with no positive rate (AvgIOPS <= 0 or NaN, e.g. after Rerate(0))
// generates nothing: the exponential mean 1/AvgIOPS would otherwise
// overflow time.Duration and produce garbage negative arrivals.
func (p Profile) Generate(seed int64, n int) []Request {
	if n <= 0 || !(p.AvgIOPS > 0) {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	var now time.Duration
	meanGap := time.Duration(float64(time.Second) / p.AvgIOPS)
	for i := range reqs {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		if p.MaxArrival > 0 && gap > p.MaxArrival {
			gap = p.MaxArrival
		}
		now += gap
		write := rng.Float64() < p.WriteFrac
		meanKB := p.ReadKB
		if write {
			meanKB = p.WriteKB
		}
		size := lognormalBytes(rng, meanKB*1024, p.SizeSigma)
		offset := rng.Int63n(maxInt64(p.DeviceBytes-size, 1))
		reqs[i] = Request{Arrival: now, Size: size, Offset: offset, Write: write}
	}
	return reqs
}

// lognormalBytes draws a lognormal size with the given mean (bytes) and
// shape sigma, rounded up to 4 KiB blocks and floored at one block.
func lognormalBytes(rng *rand.Rand, mean, sigma float64) int64 {
	mu := math.Log(mean) - sigma*sigma/2
	v := math.Exp(mu + sigma*rng.NormFloat64())
	blocks := int64(math.Ceil(v / 4096))
	if blocks < 1 {
		blocks = 1
	}
	return blocks * 4096
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Stats summarizes a trace the way Table 4 reports it.
type Stats struct {
	Requests     int
	AvgIOPS      float64
	AvgReadKB    float64
	AvgWriteKB   float64
	MinArrival   time.Duration
	MaxArrival   time.Duration
	WritePercent float64
}

// Measure computes Table 4-style statistics for a trace.
func Measure(reqs []Request) Stats {
	if len(reqs) == 0 {
		return Stats{}
	}
	var s Stats
	s.Requests = len(reqs)
	var readBytes, writeBytes int64
	var reads, writes int
	s.MinArrival = time.Duration(math.MaxInt64)
	prev := time.Duration(0)
	for _, r := range reqs {
		gap := r.Arrival - prev
		prev = r.Arrival
		if gap < s.MinArrival {
			s.MinArrival = gap
		}
		if gap > s.MaxArrival {
			s.MaxArrival = gap
		}
		if r.Write {
			writes++
			writeBytes += r.Size
		} else {
			reads++
			readBytes += r.Size
		}
	}
	total := reqs[len(reqs)-1].Arrival
	if total > 0 {
		s.AvgIOPS = float64(len(reqs)) / total.Seconds()
	}
	if reads > 0 {
		s.AvgReadKB = float64(readBytes) / float64(reads) / 1024
	}
	if writes > 0 {
		s.AvgWriteKB = float64(writeBytes) / float64(writes) / 1024
	}
	s.WritePercent = 100 * float64(writes) / float64(len(reqs))
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%d reqs, %.0f IOPS, read %.0fKB / write %.0fKB, arrival %v..%v",
		s.Requests, s.AvgIOPS, s.AvgReadKB, s.AvgWriteKB, s.MinArrival, s.MaxArrival)
}
