package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Azure().Generate(1, 100)
	b := Azure().Generate(1, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c := Azure().Generate(2, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateEmpty(t *testing.T) {
	if got := Azure().Generate(1, 0); got != nil {
		t.Fatalf("Generate(0) = %v, want nil", got)
	}
}

func TestArrivalsMonotonic(t *testing.T) {
	reqs := BingI().Generate(3, 1000)
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatalf("arrival %d (%v) before %d (%v)", i, reqs[i].Arrival, i-1, reqs[i-1].Arrival)
		}
	}
}

func TestSizesAreBlockAligned(t *testing.T) {
	for _, r := range Cosmos().Generate(7, 500) {
		if r.Size <= 0 || r.Size%4096 != 0 {
			t.Fatalf("size %d not positive 4KiB-aligned", r.Size)
		}
		if r.Offset < 0 || r.Offset >= Cosmos().DeviceBytes {
			t.Fatalf("offset %d outside device", r.Offset)
		}
	}
}

// Table 4's characteristics must hold approximately for each profile.
func TestTable4Characteristics(t *testing.T) {
	cases := []struct {
		p          Profile
		iops       float64
		readKB     float64
		writeKB    float64
		maxArrival time.Duration
	}{
		{Azure(), 26000, 30, 19, 324 * time.Microsecond},
		{BingI(), 4800, 73, 59, 1800 * time.Microsecond},
		{Cosmos(), 2500, 657, 609, 1600 * time.Microsecond},
	}
	for _, c := range cases {
		s := Measure(c.p.Generate(42, 20000))
		if s.AvgIOPS < c.iops*0.85 || s.AvgIOPS > c.iops*1.25 {
			t.Errorf("%s: IOPS = %.0f, want ~%.0f", c.p.Name, s.AvgIOPS, c.iops)
		}
		if s.AvgReadKB < c.readKB*0.75 || s.AvgReadKB > c.readKB*1.35 {
			t.Errorf("%s: read KB = %.1f, want ~%.0f", c.p.Name, s.AvgReadKB, c.readKB)
		}
		if s.AvgWriteKB < c.writeKB*0.75 || s.AvgWriteKB > c.writeKB*1.35 {
			t.Errorf("%s: write KB = %.1f, want ~%.0f", c.p.Name, s.AvgWriteKB, c.writeKB)
		}
		if s.MaxArrival > c.maxArrival {
			t.Errorf("%s: max arrival = %v, want <= %v", c.p.Name, s.MaxArrival, c.maxArrival)
		}
		if s.MinArrival < 0 {
			t.Errorf("%s: min arrival = %v", c.p.Name, s.MinArrival)
		}
	}
}

func TestRerateScalesIOPS(t *testing.T) {
	base := Measure(Azure().Generate(9, 20000))
	rerated := Measure(Azure().Rerate(3).Generate(9, 20000))
	ratio := rerated.AvgIOPS / base.AvgIOPS
	if ratio < 2.4 || ratio > 3.3 {
		t.Fatalf("rerate(3) IOPS ratio = %.2f, want ~3 (clipping tolerated)", ratio)
	}
}

// TestMeasureEmptyIsZero pins the empty-trace contract the macro layer
// relies on: Measure of a nil or empty trace is the zero Stats — every
// field, not just Requests — with no NaN leaking out of the averages.
func TestMeasureEmptyIsZero(t *testing.T) {
	for _, reqs := range [][]Request{nil, {}} {
		s := Measure(reqs)
		if s != (Stats{}) {
			t.Fatalf("Measure(%v) = %+v, want zero Stats", reqs, s)
		}
		for _, v := range []float64{s.AvgIOPS, s.AvgReadKB, s.AvgWriteKB, s.WritePercent} {
			if v != v {
				t.Fatalf("Measure of empty trace produced NaN: %+v", s)
			}
		}
	}
}

// TestGenerateDegenerateRate is the regression test for the real empty /
// degenerate-input bug in this package (it fails against the pre-fix
// Generate): a profile with no positive rate — AvgIOPS 0, negative, or
// NaN, e.g. after Rerate(0) — used to compute a +Inf exponential mean
// that overflowed time.Duration and emitted garbage negative,
// non-monotonic arrivals, which Measure then summarized as plausible-
// looking nonsense. Such profiles must generate nothing.
func TestGenerateDegenerateRate(t *testing.T) {
	nan := math.NaN()
	for _, p := range []Profile{
		Azure().Rerate(0),
		Azure().Rerate(-1),
		{Name: "zero"},
		{Name: "nan", AvgIOPS: nan},
	} {
		if reqs := p.Generate(1, 100); reqs != nil {
			t.Fatalf("%s (AvgIOPS=%v): generated %d requests, first arrival %v; want nil",
				p.Name, p.AvgIOPS, len(reqs), reqs[0].Arrival)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for name, want := range map[string]string{
		"azure": "Azure", "Azure": "Azure",
		"bing-i": "Bing-I", "BING-I": "Bing-I",
		"cosmos": "Cosmos",
	} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", name, err)
		}
		if p.Name != want {
			t.Fatalf("ProfileByName(%q) = %s, want %s", name, p.Name, want)
		}
	}
	if _, err := ProfileByName("bing"); err == nil {
		t.Fatal("partial profile name accepted")
	}
}

func TestStatsString(t *testing.T) {
	s := Measure(Azure().Generate(1, 100))
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestProfilesOrder(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 || ps[0].Name != "Azure" || ps[1].Name != "Bing-I" || ps[2].Name != "Cosmos" {
		t.Fatalf("Profiles() = %v", ps)
	}
}

// Property: write fraction tracks the profile's WriteFrac.
func TestQuickWriteFraction(t *testing.T) {
	f := func(seed int64) bool {
		reqs := Azure().Generate(seed, 5000)
		s := Measure(reqs)
		return s.WritePercent > 25 && s.WritePercent < 45 // target 35
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
