package lstm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	m := New(1, 8, []int{16, 16}, 2)
	if m.InputSize() != 8 {
		t.Fatalf("InputSize = %d, want 8", m.InputSize())
	}
	if len(m.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(m.Cells))
	}
	if m.Cells[1].In != 16 {
		t.Fatalf("second cell input = %d, want 16", m.Cells[1].In)
	}
	if len(m.HeadW) != 2*16 {
		t.Fatalf("head weights = %d, want 32", len(m.HeadW))
	}
}

func TestForgetGateBiasInit(t *testing.T) {
	m := New(1, 4, []int{8}, 2)
	c := m.Cells[0]
	for i := 8; i < 16; i++ {
		if c.B[i] != 1 {
			t.Fatalf("forget bias[%d] = %v, want 1", i, c.B[i])
		}
	}
	if c.B[0] != 0 {
		t.Fatalf("input-gate bias = %v, want 0", c.B[0])
	}
}

func TestDeterministicInit(t *testing.T) {
	a, b := New(5, 4, []int{8}, 2), New(5, 4, []int{8}, 2)
	for i := range a.Cells[0].Wx {
		if a.Cells[0].Wx[i] != b.Cells[0].Wx[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestForwardDeterministicAndBounded(t *testing.T) {
	m := New(2, 4, []int{8, 8}, 2)
	seq := [][]float32{{1, 0, -1, 0.5}, {0.2, 0.4, 0.6, 0.8}, {0, 0, 0, 0}}
	a := m.Forward(seq)
	b := m.Forward(seq)
	if len(a) != 2 {
		t.Fatalf("logits = %d, want 2", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Forward not deterministic")
		}
		if math.IsNaN(float64(a[i])) || math.IsInf(float64(a[i]), 0) {
			t.Fatalf("logit %d = %v", i, a[i])
		}
	}
}

func TestStateCarriesAcrossTimesteps(t *testing.T) {
	m := New(3, 2, []int{8}, 2)
	x := []float32{1, -1}
	short := m.Forward([][]float32{x})
	long := m.Forward([][]float32{x, x, x, x})
	same := true
	for i := range short {
		if short[i] != long[i] {
			same = false
		}
	}
	if same {
		t.Fatal("longer sequence produced identical logits: no recurrence")
	}
}

func TestHiddenStateIsBounded(t *testing.T) {
	// h = o * tanh(c) is bounded in (-1, 1) regardless of input magnitude.
	m := New(4, 2, []int{6}, 2)
	h := make([]float32, 6)
	c := make([]float32, 6)
	for step := 0; step < 50; step++ {
		m.Cells[0].step([]float32{1000, -1000}, h, c)
		for _, v := range h {
			// Saturation can hit exactly ±1 in float32.
			if v < -1 || v > 1 {
				t.Fatalf("hidden state %v escaped [-1,1]", v)
			}
		}
	}
}

func TestForwardPanics(t *testing.T) {
	m := New(1, 4, []int{8}, 2)
	for name, fn := range map[string]func(){
		"empty sequence": func() { m.Forward(nil) },
		"bad width":      func() { m.Forward([][]float32{{1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPredictReturnsValidClass(t *testing.T) {
	m := New(9, 4, []int{8}, 3)
	got := m.Predict([][]float32{{0.1, 0.2, 0.3, 0.4}})
	if got < 0 || got >= 3 {
		t.Fatalf("Predict = %d, want in [0,3)", got)
	}
}

func TestFlops(t *testing.T) {
	m := New(1, 4, []int{8}, 2)
	// Per step: 2*(4*8*4 + 4*8*8) = 2*(128+256) = 768.
	if got := m.FlopsPerStep(); got != 768 {
		t.Fatalf("FlopsPerStep = %v, want 768", got)
	}
	// Head: 2*2*8 = 32.
	if got := m.Flops(10); got != 768*10+32 {
		t.Fatalf("Flops(10) = %v, want %v", got, 768*10+32)
	}
}

// Property: logits stay finite for any bounded input sequence.
func TestQuickForwardFinite(t *testing.T) {
	m := New(11, 3, []int{8}, 2)
	f := func(raw [][3]int8) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make([][]float32, len(raw))
		for i, r := range raw {
			seq[i] = []float32{float32(r[0]) / 32, float32(r[1]) / 32, float32(r[2]) / 32}
		}
		for _, v := range m.Forward(seq) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
