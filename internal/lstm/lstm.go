// Package lstm implements the stacked LSTM used by Kleio's page warmth
// classifier (§7.2: "Kleio ... implements a LSTM-based classifier", a model
// "with two LSTM layers" built in TensorFlow in the original).
//
// The cell is the standard formulation: input/forget/output gates plus a
// candidate update, sigmoid/tanh nonlinearities, carried cell and hidden
// state. Inference is real float32 arithmetic; FLOP accounting feeds the GPU
// cost model when the classifier is remoted through LAKE's high-level API.
package lstm

import (
	"fmt"
	"math"
	"math/rand"
)

// Cell is one LSTM layer. Gate weight matrices are stored row-major, with
// the four gates (input, forget, candidate, output) concatenated:
// Wx is [4*Hidden x In], Wh is [4*Hidden x Hidden], B is [4*Hidden].
type Cell struct {
	In, Hidden int
	Wx, Wh, B  []float32
}

// Model is a stack of LSTM layers followed by a dense classification head.
type Model struct {
	Cells []*Cell
	// HeadW is [Classes x Hidden], HeadB is [Classes].
	HeadW   []float32
	HeadB   []float32
	Classes int
}

// New builds a model with deterministic random initialization: input width,
// per-layer hidden sizes, and the number of output classes. Kleio's page
// warmth model is New(seed, inputWidth, []int{h, h}, 2).
func New(seed int64, in int, hidden []int, classes int) *Model {
	if in <= 0 || len(hidden) == 0 || classes <= 0 {
		panic(fmt.Sprintf("lstm: invalid shape in=%d hidden=%v classes=%d", in, hidden, classes))
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{Classes: classes}
	prev := in
	for _, h := range hidden {
		if h <= 0 {
			panic("lstm: hidden size must be positive")
		}
		c := &Cell{
			In:     prev,
			Hidden: h,
			Wx:     make([]float32, 4*h*prev),
			Wh:     make([]float32, 4*h*h),
			B:      make([]float32, 4*h),
		}
		scaleX := float32(1 / math.Sqrt(float64(prev)))
		scaleH := float32(1 / math.Sqrt(float64(h)))
		for i := range c.Wx {
			c.Wx[i] = float32(rng.NormFloat64()) * scaleX
		}
		for i := range c.Wh {
			c.Wh[i] = float32(rng.NormFloat64()) * scaleH
		}
		// Forget-gate bias starts at 1, the standard trick for gradient flow;
		// kept for fidelity even though this reproduction only infers.
		for i := h; i < 2*h; i++ {
			c.B[i] = 1
		}
		m.Cells = append(m.Cells, c)
		prev = h
	}
	m.HeadW = make([]float32, classes*prev)
	m.HeadB = make([]float32, classes)
	scale := float32(1 / math.Sqrt(float64(prev)))
	for i := range m.HeadW {
		m.HeadW[i] = float32(rng.NormFloat64()) * scale
	}
	return m
}

// InputSize returns the per-step input width.
func (m *Model) InputSize() int { return m.Cells[0].In }

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

func tanh32(x float32) float32 {
	return float32(math.Tanh(float64(x)))
}

// step advances the cell one timestep. h and c are updated in place.
func (c *Cell) step(x, h, cs []float32) {
	hsz := c.Hidden
	gates := make([]float32, 4*hsz)
	for g := 0; g < 4*hsz; g++ {
		sum := c.B[g]
		rowX := c.Wx[g*c.In : (g+1)*c.In]
		for i, w := range rowX {
			sum += w * x[i]
		}
		rowH := c.Wh[g*hsz : (g+1)*hsz]
		for i, w := range rowH {
			sum += w * h[i]
		}
		gates[g] = sum
	}
	for j := 0; j < hsz; j++ {
		in := sigmoid(gates[j])
		forget := sigmoid(gates[hsz+j])
		cand := tanh32(gates[2*hsz+j])
		out := sigmoid(gates[3*hsz+j])
		cs[j] = forget*cs[j] + in*cand
		h[j] = out * tanh32(cs[j])
	}
}

// Forward runs the model over a sequence of input vectors and returns the
// class logits from the final timestep's top-layer hidden state.
func (m *Model) Forward(seq [][]float32) []float32 {
	if len(seq) == 0 {
		panic("lstm: empty sequence")
	}
	hs := make([][]float32, len(m.Cells))
	cs := make([][]float32, len(m.Cells))
	for i, c := range m.Cells {
		hs[i] = make([]float32, c.Hidden)
		cs[i] = make([]float32, c.Hidden)
	}
	for _, x := range seq {
		if len(x) != m.InputSize() {
			panic(fmt.Sprintf("lstm: input width %d, want %d", len(x), m.InputSize()))
		}
		cur := x
		for i, c := range m.Cells {
			c.step(cur, hs[i], cs[i])
			cur = hs[i]
		}
	}
	top := hs[len(hs)-1]
	logits := make([]float32, m.Classes)
	hsz := len(top)
	for k := 0; k < m.Classes; k++ {
		sum := m.HeadB[k]
		row := m.HeadW[k*hsz : (k+1)*hsz]
		for i, w := range row {
			sum += w * top[i]
		}
		logits[k] = sum
	}
	return logits
}

// Predict returns the argmax class for a sequence.
func (m *Model) Predict(seq [][]float32) int {
	logits := m.Forward(seq)
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// FlopsPerStep returns the multiply-accumulate FLOPs of one timestep across
// all layers (2 per weight), used by the GPU cost model.
func (m *Model) FlopsPerStep() float64 {
	var f float64
	for _, c := range m.Cells {
		f += 2 * float64(len(c.Wx)+len(c.Wh))
	}
	return f
}

// Flops returns the FLOPs of a full forward pass over steps timesteps plus
// the classification head.
func (m *Model) Flops(steps int) float64 {
	return m.FlopsPerStep()*float64(steps) + 2*float64(len(m.HeadW))
}
