package lstm

import (
	"math"
	"math/rand"
	"testing"
)

// Numerical gradient check: the BPTT gradients must match central finite
// differences on a tiny model. This is the canonical correctness test for
// a hand-written backward pass.
func TestGradientCheck(t *testing.T) {
	m := New(3, 2, []int{3, 3}, 2)
	seqs := [][][]float32{
		{{0.5, -0.3}, {0.1, 0.9}, {-0.7, 0.2}},
		{{-0.2, 0.4}, {0.8, -0.6}},
	}
	labels := []int{0, 1}

	// Analytic gradients.
	g := newGrads(m)
	for s, seq := range seqs {
		traces, logits := m.forwardTrace(seq)
		m.backward(traces, logits, labels[s], g)
	}

	// Parameters to probe: a sample from every tensor.
	type param struct {
		name string
		w    []float32
		grad []float32
		idx  int
	}
	rng := rand.New(rand.NewSource(4))
	var params []param
	for l, c := range m.Cells {
		params = append(params,
			param{"wx", c.Wx, g.cells[l].wx, rng.Intn(len(c.Wx))},
			param{"wh", c.Wh, g.cells[l].wh, rng.Intn(len(c.Wh))},
			param{"b", c.B, g.cells[l].b, rng.Intn(len(c.B))},
		)
	}
	params = append(params,
		param{"headW", m.HeadW, g.headW, rng.Intn(len(m.HeadW))},
		param{"headB", m.HeadB, g.headB, rng.Intn(len(m.HeadB))},
	)

	const eps = 1e-2
	for _, p := range params {
		orig := p.w[p.idx]
		p.w[p.idx] = orig + eps
		lossPlus := m.Loss(seqs, labels) * float64(len(seqs))
		p.w[p.idx] = orig - eps
		lossMinus := m.Loss(seqs, labels) * float64(len(seqs))
		p.w[p.idx] = orig
		numeric := (lossPlus - lossMinus) / (2 * eps)
		analytic := float64(p.grad[p.idx])
		denom := math.Max(math.Abs(numeric)+math.Abs(analytic), 1e-4)
		rel := math.Abs(numeric-analytic) / denom
		if rel > 0.05 {
			t.Errorf("%s[%d]: analytic %.6f vs numeric %.6f (rel %.3f)",
				p.name, p.idx, analytic, numeric, rel)
		}
	}
}

func TestTrainBatchValidation(t *testing.T) {
	m := New(1, 2, []int{4}, 2)
	if _, err := m.TrainBatch([][][]float32{{{1, 2}}}, []int{5}, 0.1); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := m.TrainBatch([][][]float32{{{1, 2}}}, []int{0, 1}, 0.1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := m.TrainBatch([][][]float32{{}}, []int{0}, 0.1); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if loss, err := m.TrainBatch(nil, nil, 0.1); err != nil || loss != 0 {
		t.Fatal("empty batch should be a no-op")
	}
}

// The LSTM must learn a temporal task an order-free model cannot: classify
// whether a sequence is rising or falling (same value multiset, different
// order).
func TestLearnsTemporalOrder(t *testing.T) {
	m := New(7, 1, []int{12}, 2)
	rng := rand.New(rand.NewSource(7))
	mkSeq := func(rising bool) [][]float32 {
		base := rng.Float32() * 0.3
		step := 0.1 + rng.Float32()*0.1
		seq := make([][]float32, 6)
		for i := range seq {
			v := base + float32(i)*step
			if !rising {
				v = base + float32(len(seq)-1-i)*step
			}
			seq[i] = []float32{v}
		}
		return seq
	}
	var seqs [][][]float32
	var labels []int
	for i := 0; i < 200; i++ {
		rising := i%2 == 0
		seqs = append(seqs, mkSeq(rising))
		label := 0
		if rising {
			label = 1
		}
		labels = append(labels, label)
	}
	var loss float32
	var err error
	for epoch := 0; epoch < 150; epoch++ {
		if loss, err = m.TrainBatch(seqs, labels, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	if acc := m.Accuracy(seqs, labels); acc < 0.95 {
		t.Fatalf("accuracy = %.3f (loss %.4f), want >= 0.95 on rising/falling", acc, loss)
	}
	// Held-out generalization.
	var testSeqs [][][]float32
	var testLabels []int
	for i := 0; i < 50; i++ {
		rising := i%2 == 0
		testSeqs = append(testSeqs, mkSeq(rising))
		if rising {
			testLabels = append(testLabels, 1)
		} else {
			testLabels = append(testLabels, 0)
		}
	}
	if acc := m.Accuracy(testSeqs, testLabels); acc < 0.9 {
		t.Fatalf("held-out accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	m := New(11, 2, []int{8, 8}, 3)
	rng := rand.New(rand.NewSource(11))
	var seqs [][][]float32
	var labels []int
	for i := 0; i < 60; i++ {
		label := i % 3
		seq := make([][]float32, 5)
		for tt := range seq {
			seq[tt] = []float32{float32(label) + rng.Float32()*0.3, rng.Float32()}
		}
		seqs = append(seqs, seq)
		labels = append(labels, label)
	}
	first := m.Loss(seqs, labels)
	for epoch := 0; epoch < 60; epoch++ {
		if _, err := m.TrainBatch(seqs, labels, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	last := m.Loss(seqs, labels)
	if last >= first/2 {
		t.Fatalf("loss %f -> %f: did not halve", first, last)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if got := New(1, 1, []int{2}, 2).Accuracy(nil, nil); got != 0 {
		t.Fatalf("Accuracy(empty) = %v", got)
	}
}
