package lstm

import (
	"fmt"
	"math"
)

// Training via backpropagation through time. Kleio trains its LSTM offline
// in TensorFlow; this file provides the equivalent capability natively so
// the page-warmth experiments can use a genuinely learned model rather than
// fixed weights.

// gates holds one timestep's post-activation gate values for one cell.
type gates struct {
	i, f, g, o []float32
}

// trace records everything the backward pass needs for one layer.
type layerTrace struct {
	// xs[t] is the layer's input at step t; hs[t], cs[t] the state AFTER
	// step t. hPrev/cPrev index t-1 with zeros at t=0.
	xs, hs, cs [][]float32
	gt         []gates
}

// stepRecord advances the cell one timestep like step, returning the new
// h and c (freshly allocated) and the gate activations.
func (c *Cell) stepRecord(x, hPrev, cPrev []float32) (h, cs []float32, g gates) {
	hsz := c.Hidden
	pre := make([]float32, 4*hsz)
	for k := 0; k < 4*hsz; k++ {
		sum := c.B[k]
		rowX := c.Wx[k*c.In : (k+1)*c.In]
		for i, w := range rowX {
			sum += w * x[i]
		}
		rowH := c.Wh[k*hsz : (k+1)*hsz]
		for i, w := range rowH {
			sum += w * hPrev[i]
		}
		pre[k] = sum
	}
	g = gates{
		i: make([]float32, hsz), f: make([]float32, hsz),
		g: make([]float32, hsz), o: make([]float32, hsz),
	}
	h = make([]float32, hsz)
	cs = make([]float32, hsz)
	for j := 0; j < hsz; j++ {
		g.i[j] = sigmoid(pre[j])
		g.f[j] = sigmoid(pre[hsz+j])
		g.g[j] = tanh32(pre[2*hsz+j])
		g.o[j] = sigmoid(pre[3*hsz+j])
		cs[j] = g.f[j]*cPrev[j] + g.i[j]*g.g[j]
		h[j] = g.o[j] * tanh32(cs[j])
	}
	return h, cs, g
}

// cellGrads accumulates one cell's parameter gradients.
type cellGrads struct {
	wx, wh, b []float32
}

// modelGrads accumulates the whole model's gradients.
type modelGrads struct {
	cells []cellGrads
	headW []float32
	headB []float32
}

func newGrads(m *Model) *modelGrads {
	g := &modelGrads{
		headW: make([]float32, len(m.HeadW)),
		headB: make([]float32, len(m.HeadB)),
	}
	for _, c := range m.Cells {
		g.cells = append(g.cells, cellGrads{
			wx: make([]float32, len(c.Wx)),
			wh: make([]float32, len(c.Wh)),
			b:  make([]float32, len(c.B)),
		})
	}
	return g
}

// forwardTrace runs the model over seq, recording per-layer traces, and
// returns the logits.
func (m *Model) forwardTrace(seq [][]float32) ([]layerTrace, []float32) {
	traces := make([]layerTrace, len(m.Cells))
	hPrev := make([][]float32, len(m.Cells))
	cPrev := make([][]float32, len(m.Cells))
	for l, c := range m.Cells {
		hPrev[l] = make([]float32, c.Hidden)
		cPrev[l] = make([]float32, c.Hidden)
	}
	for _, x := range seq {
		cur := x
		for l, c := range m.Cells {
			h, cs, g := c.stepRecord(cur, hPrev[l], cPrev[l])
			traces[l].xs = append(traces[l].xs, cur)
			traces[l].hs = append(traces[l].hs, h)
			traces[l].cs = append(traces[l].cs, cs)
			traces[l].gt = append(traces[l].gt, g)
			hPrev[l], cPrev[l] = h, cs
			cur = h
		}
	}
	top := hPrev[len(m.Cells)-1]
	logits := make([]float32, m.Classes)
	hsz := len(top)
	for k := 0; k < m.Classes; k++ {
		sum := m.HeadB[k]
		row := m.HeadW[k*hsz : (k+1)*hsz]
		for i, w := range row {
			sum += w * top[i]
		}
		logits[k] = sum
	}
	return traces, logits
}

// backward accumulates gradients for one (sequence, label) example given
// its forward traces, returning the example's loss.
func (m *Model) backward(traces []layerTrace, logits []float32, label int, g *modelGrads) float64 {
	// Softmax cross-entropy at the head.
	probs := softmax(logits)
	loss := -math.Log(math.Max(float64(probs[label]), 1e-12))
	nl := len(m.Cells)
	T := len(traces[0].hs)
	topH := traces[nl-1].hs[T-1]
	hsz := len(topH)

	dLogits := make([]float32, len(probs))
	copy(dLogits, probs)
	dLogits[label] -= 1
	// Head gradients and the gradient flowing into the top layer's final h.
	dhFinal := make([]float32, hsz)
	for k := 0; k < m.Classes; k++ {
		d := dLogits[k]
		g.headB[k] += d
		row := m.HeadW[k*hsz : (k+1)*hsz]
		grow := g.headW[k*hsz : (k+1)*hsz]
		for i := range row {
			grow[i] += d * topH[i]
			dhFinal[i] += d * row[i]
		}
	}

	// dhNext[l] / dcNext[l]: gradients w.r.t. layer l's h/c flowing back
	// from step t+1. dxFromAbove[t] carries gradient into layer l's output
	// at step t from layer l+1's input.
	dxFromAbove := make([][]float32, T)
	dxFromAbove[T-1] = dhFinal
	for i := T - 2; i >= 0; i-- {
		dxFromAbove[i] = make([]float32, hsz)
	}

	for l := nl - 1; l >= 0; l-- {
		c := m.Cells[l]
		tr := traces[l]
		hsz := c.Hidden
		dhNext := make([]float32, hsz)
		dcNext := make([]float32, hsz)
		// Gradient to pass down to layer l-1's outputs per step.
		var dxBelow [][]float32
		if l > 0 {
			dxBelow = make([][]float32, T)
			for t := range dxBelow {
				dxBelow[t] = make([]float32, m.Cells[l-1].Hidden)
			}
		}
		for t := T - 1; t >= 0; t-- {
			gt := tr.gt[t]
			cT := tr.cs[t]
			var cPrev []float32
			if t > 0 {
				cPrev = tr.cs[t-1]
			} else {
				cPrev = make([]float32, hsz)
			}
			var hPrev []float32
			if t > 0 {
				hPrev = tr.hs[t-1]
			} else {
				hPrev = make([]float32, hsz)
			}
			dh := make([]float32, hsz)
			copy(dh, dhNext)
			for j := range dh {
				dh[j] += dxFromAbove[t][j]
			}
			dPre := make([]float32, 4*hsz)
			dc := make([]float32, hsz)
			for j := 0; j < hsz; j++ {
				tc := tanh32(cT[j])
				do := dh[j] * tc
				dc[j] = dcNext[j] + dh[j]*gt.o[j]*(1-tc*tc)
				di := dc[j] * gt.g[j]
				df := dc[j] * cPrev[j]
				dg := dc[j] * gt.i[j]
				dPre[j] = di * gt.i[j] * (1 - gt.i[j])
				dPre[hsz+j] = df * gt.f[j] * (1 - gt.f[j])
				dPre[2*hsz+j] = dg * (1 - gt.g[j]*gt.g[j])
				dPre[3*hsz+j] = do * gt.o[j] * (1 - gt.o[j])
			}
			// Parameter grads and input/recurrent grads.
			x := tr.xs[t]
			cg := &g.cells[l]
			dhPrev := make([]float32, hsz)
			for k := 0; k < 4*hsz; k++ {
				d := dPre[k]
				if d == 0 {
					continue
				}
				cg.b[k] += d
				rowX := cg.wx[k*c.In : (k+1)*c.In]
				wRowX := c.Wx[k*c.In : (k+1)*c.In]
				for i := range rowX {
					rowX[i] += d * x[i]
					if l > 0 {
						dxBelow[t][i] += d * wRowX[i]
					}
				}
				rowH := cg.wh[k*hsz : (k+1)*hsz]
				wRowH := c.Wh[k*hsz : (k+1)*hsz]
				for i := range rowH {
					rowH[i] += d * hPrev[i]
					dhPrev[i] += d * wRowH[i]
				}
			}
			dhNext = dhPrev
			for j := 0; j < hsz; j++ {
				dcNext[j] = dc[j] * gt.f[j]
			}
		}
		if l > 0 {
			dxFromAbove = dxBelow
		}
	}
	return loss
}

func softmax(logits []float32) []float32 {
	maxv := logits[0]
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float32, len(logits))
	var sum float32
	for i, v := range logits {
		e := float32(math.Exp(float64(v - maxv)))
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// TrainBatch performs one SGD step over (sequence, label) examples with
// full backpropagation through time, returning the mean loss.
func (m *Model) TrainBatch(seqs [][][]float32, labels []int, lr float32) (float32, error) {
	if len(seqs) != len(labels) {
		return 0, fmt.Errorf("lstm: %d sequences but %d labels", len(seqs), len(labels))
	}
	if len(seqs) == 0 {
		return 0, nil
	}
	g := newGrads(m)
	var loss float64
	for s, seq := range seqs {
		if labels[s] < 0 || labels[s] >= m.Classes {
			return 0, fmt.Errorf("lstm: label %d out of range [0,%d)", labels[s], m.Classes)
		}
		if len(seq) == 0 {
			return 0, fmt.Errorf("lstm: empty sequence at index %d", s)
		}
		traces, logits := m.forwardTrace(seq)
		loss += m.backward(traces, logits, labels[s], g)
	}
	scale := lr / float32(len(seqs))
	clip := func(v float32) float32 {
		// Gradient clipping keeps BPTT stable on long sequences.
		const lim = 5
		if v > lim {
			return lim
		}
		if v < -lim {
			return -lim
		}
		return v
	}
	for l, c := range m.Cells {
		cg := g.cells[l]
		for i := range c.Wx {
			c.Wx[i] -= scale * clip(cg.wx[i])
		}
		for i := range c.Wh {
			c.Wh[i] -= scale * clip(cg.wh[i])
		}
		for i := range c.B {
			c.B[i] -= scale * clip(cg.b[i])
		}
	}
	for i := range m.HeadW {
		m.HeadW[i] -= scale * clip(g.headW[i])
	}
	for i := range m.HeadB {
		m.HeadB[i] -= scale * clip(g.headB[i])
	}
	return float32(loss / float64(len(seqs))), nil
}

// Loss computes mean cross-entropy over a labeled set without updating
// weights (for gradient checking and eval).
func (m *Model) Loss(seqs [][][]float32, labels []int) float64 {
	var loss float64
	for s, seq := range seqs {
		_, logits := m.forwardTrace(seq)
		probs := softmax(logits)
		loss += -math.Log(math.Max(float64(probs[labels[s]]), 1e-12))
	}
	return loss / float64(len(seqs))
}

// Accuracy evaluates classification accuracy over a labeled set.
func (m *Model) Accuracy(seqs [][][]float32, labels []int) float64 {
	if len(seqs) == 0 {
		return 0
	}
	correct := 0
	for i, seq := range seqs {
		if m.Predict(seq) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(seqs))
}
