// Package policy implements LAKE's custom execution policies (§4.2, §4.3):
// the mechanism by which kernel subsystems modulate between CPU and
// accelerator execution at function-call granularity, and back off when the
// accelerator is contended by user space.
//
// The paper lets developers "write and install such policies using eBPF".
// This package provides the analogous sandbox: a small register-machine
// bytecode with a verifier that statically guarantees termination (forward
// jumps only), memory safety (registers only, no loads/stores) and helper
// whitelisting — the same contract eBPF's verifier enforces for this class
// of program. Native Go policies (policy.Func) are also supported; the
// Fig 3 adaptive policy is provided in both forms.
package policy

import (
	"fmt"
)

// OpCode enumerates the VM's instruction set.
type OpCode uint8

// Instruction opcodes. ALU ops have register and immediate variants;
// conditional jumps compare Dst against Imm (…Imm) or against Src (…X).
const (
	OpMov    OpCode = iota // Dst = Src
	OpMovImm               // Dst = Imm
	OpAdd                  // Dst += Src
	OpAddImm               // Dst += Imm
	OpSub                  // Dst -= Src
	OpSubImm               // Dst -= Imm
	OpMul                  // Dst *= Src
	OpMulImm               // Dst *= Imm
	OpDiv                  // Dst /= Src (runtime error if Src == 0)
	OpDivImm               // Dst /= Imm (verifier rejects Imm == 0)
	OpJmp                  // pc += Off
	OpJeqImm               // if Dst == Imm: pc += Off
	OpJneImm               // if Dst != Imm: pc += Off
	OpJgtImm               // if Dst >  Imm: pc += Off
	OpJgeImm               // if Dst >= Imm: pc += Off
	OpJltImm               // if Dst <  Imm: pc += Off
	OpJleImm               // if Dst <= Imm: pc += Off
	OpJeqX                 // if Dst == Src: pc += Off
	OpJgeX                 // if Dst >= Src: pc += Off
	OpJltX                 // if Dst <  Src: pc += Off
	OpCall                 // r0 = helper[Imm](r1..r5)
	OpExit                 // return r0
)

var opNames = [...]string{
	"mov", "mov.imm", "add", "add.imm", "sub", "sub.imm", "mul", "mul.imm",
	"div", "div.imm", "jmp", "jeq.imm", "jne.imm", "jgt.imm", "jge.imm",
	"jlt.imm", "jle.imm", "jeq.x", "jge.x", "jlt.x", "call", "exit",
}

func (op OpCode) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// NumRegs is the register file size (r0 = return value, r1..r5 = helper
// arguments, r6..r15 = callee scratch), mirroring eBPF's layout.
const NumRegs = 16

// MaxInstructions bounds program size, like the eBPF verifier's complexity
// limit.
const MaxInstructions = 512

// Instruction is one VM instruction.
type Instruction struct {
	Op       OpCode
	Dst, Src uint8
	// Off is a forward jump distance in instructions (applied after the
	// implicit pc++).
	Off int16
	// Imm is the immediate operand or helper number for OpCall.
	Imm int64
}

// Program is a verified-or-not sequence of instructions.
type Program []Instruction

// Helper is a function exposed to programs. Arguments arrive in r1..r5 and
// the result must be placed in r0 by the VM (the helper returns it).
type Helper func(args [5]int64) int64

// HelperSet maps helper numbers to implementations. Verification pins the
// set: running with a different set re-verifies.
type HelperSet map[int64]Helper

// VerifyError describes a verifier rejection.
type VerifyError struct {
	PC     int
	Reason string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("policy: verifier rejected instruction %d: %s", e.PC, e.Reason)
}

// Verify statically checks the program against the eBPF-style safety
// contract: bounded size, known opcodes, valid registers, strictly forward
// in-bounds jumps (termination), no immediate division by zero, only
// whitelisted helpers, and termination by OpExit on every straight-line
// path (guaranteed by requiring the final instruction to be OpExit and all
// jumps to land in-bounds).
func Verify(p Program, helpers HelperSet) error {
	if len(p) == 0 {
		return &VerifyError{PC: 0, Reason: "empty program"}
	}
	if len(p) > MaxInstructions {
		return &VerifyError{PC: 0, Reason: fmt.Sprintf("program has %d instructions, limit %d", len(p), MaxInstructions)}
	}
	if p[len(p)-1].Op != OpExit {
		return &VerifyError{PC: len(p) - 1, Reason: "program does not end with exit"}
	}
	for pc, ins := range p {
		if int(ins.Op) >= len(opNames) {
			return &VerifyError{PC: pc, Reason: fmt.Sprintf("unknown opcode %d", ins.Op)}
		}
		if ins.Dst >= NumRegs || ins.Src >= NumRegs {
			return &VerifyError{PC: pc, Reason: "register out of range"}
		}
		switch ins.Op {
		case OpDivImm:
			if ins.Imm == 0 {
				return &VerifyError{PC: pc, Reason: "division by zero immediate"}
			}
		case OpJmp, OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm, OpJeqX, OpJgeX, OpJltX:
			if ins.Off <= 0 {
				return &VerifyError{PC: pc, Reason: "backward or zero jump (termination)"}
			}
			// The target must be a real instruction; combined with the
			// final-OpExit rule this makes falling off the end impossible.
			if pc+1+int(ins.Off) >= len(p) {
				return &VerifyError{PC: pc, Reason: "jump out of bounds"}
			}
		case OpCall:
			if _, ok := helpers[ins.Imm]; !ok {
				return &VerifyError{PC: pc, Reason: fmt.Sprintf("unknown helper %d", ins.Imm)}
			}
		}
	}
	return nil
}

// RunError describes a runtime fault (only division by a zero register can
// occur in verified programs).
type RunError struct {
	PC     int
	Reason string
}

func (e *RunError) Error() string {
	return fmt.Sprintf("policy: runtime fault at instruction %d: %s", e.PC, e.Reason)
}

// Run verifies and executes the program with the given helpers, returning
// r0 at exit.
func Run(p Program, helpers HelperSet) (int64, error) {
	if err := Verify(p, helpers); err != nil {
		return 0, err
	}
	return runVerified(p, helpers)
}

func runVerified(p Program, helpers HelperSet) (int64, error) {
	var regs [NumRegs]int64
	pc := 0
	for pc < len(p) {
		ins := p[pc]
		pc++
		switch ins.Op {
		case OpMov:
			regs[ins.Dst] = regs[ins.Src]
		case OpMovImm:
			regs[ins.Dst] = ins.Imm
		case OpAdd:
			regs[ins.Dst] += regs[ins.Src]
		case OpAddImm:
			regs[ins.Dst] += ins.Imm
		case OpSub:
			regs[ins.Dst] -= regs[ins.Src]
		case OpSubImm:
			regs[ins.Dst] -= ins.Imm
		case OpMul:
			regs[ins.Dst] *= regs[ins.Src]
		case OpMulImm:
			regs[ins.Dst] *= ins.Imm
		case OpDiv:
			if regs[ins.Src] == 0 {
				return 0, &RunError{PC: pc - 1, Reason: "division by zero"}
			}
			regs[ins.Dst] /= regs[ins.Src]
		case OpDivImm:
			regs[ins.Dst] /= ins.Imm
		case OpJmp:
			pc += int(ins.Off)
		case OpJeqImm:
			if regs[ins.Dst] == ins.Imm {
				pc += int(ins.Off)
			}
		case OpJneImm:
			if regs[ins.Dst] != ins.Imm {
				pc += int(ins.Off)
			}
		case OpJgtImm:
			if regs[ins.Dst] > ins.Imm {
				pc += int(ins.Off)
			}
		case OpJgeImm:
			if regs[ins.Dst] >= ins.Imm {
				pc += int(ins.Off)
			}
		case OpJltImm:
			if regs[ins.Dst] < ins.Imm {
				pc += int(ins.Off)
			}
		case OpJleImm:
			if regs[ins.Dst] <= ins.Imm {
				pc += int(ins.Off)
			}
		case OpJeqX:
			if regs[ins.Dst] == regs[ins.Src] {
				pc += int(ins.Off)
			}
		case OpJgeX:
			if regs[ins.Dst] >= regs[ins.Src] {
				pc += int(ins.Off)
			}
		case OpJltX:
			if regs[ins.Dst] < regs[ins.Src] {
				pc += int(ins.Off)
			}
		case OpCall:
			regs[0] = helpers[ins.Imm]([5]int64{regs[1], regs[2], regs[3], regs[4], regs[5]})
		case OpExit:
			return regs[0], nil
		}
	}
	// Unreachable for verified programs (final instruction is OpExit).
	return 0, &RunError{PC: len(p), Reason: "fell off program end"}
}
