package policy

import (
	"testing"
	"testing/quick"
	"time"

	"lakego/internal/vtime"
)

func noHelpers() HelperSet { return HelperSet{} }

func TestVerifyRejects(t *testing.T) {
	cases := []struct {
		name string
		prog Program
	}{
		{"empty", Program{}},
		{"no exit", Program{{Op: OpMovImm, Dst: 0, Imm: 1}}},
		{"bad reg", Program{{Op: OpMov, Dst: 16}, {Op: OpExit}}},
		{"bad src reg", Program{{Op: OpMov, Dst: 0, Src: 200}, {Op: OpExit}}},
		{"bad opcode", Program{{Op: OpCode(99)}, {Op: OpExit}}},
		{"div zero imm", Program{{Op: OpDivImm, Dst: 0, Imm: 0}, {Op: OpExit}}},
		{"backward jump", Program{{Op: OpMovImm, Dst: 0}, {Op: OpJmp, Off: -1}, {Op: OpExit}}},
		{"zero jump", Program{{Op: OpJmp, Off: 0}, {Op: OpExit}}},
		{"jump oob", Program{{Op: OpJmp, Off: 5}, {Op: OpExit}}},
		{"unknown helper", Program{{Op: OpCall, Imm: 77}, {Op: OpExit}}},
	}
	for _, c := range cases {
		if err := Verify(c.prog, noHelpers()); err == nil {
			t.Errorf("%s: verifier accepted invalid program", c.name)
		}
	}
}

func TestVerifyRejectsOversizedProgram(t *testing.T) {
	p := make(Program, MaxInstructions+1)
	for i := range p {
		p[i] = Instruction{Op: OpMovImm, Dst: 1, Imm: 1}
	}
	p[len(p)-1] = Instruction{Op: OpExit}
	if err := Verify(p, noHelpers()); err == nil {
		t.Fatal("oversized program accepted")
	}
}

func TestRunArithmetic(t *testing.T) {
	// r0 = (7 + 5) * 3 / 2 - 4 = 14
	p := Program{
		{Op: OpMovImm, Dst: 0, Imm: 7},
		{Op: OpAddImm, Dst: 0, Imm: 5},
		{Op: OpMulImm, Dst: 0, Imm: 3},
		{Op: OpDivImm, Dst: 0, Imm: 2},
		{Op: OpSubImm, Dst: 0, Imm: 4},
		{Op: OpExit},
	}
	got, err := Run(p, noHelpers())
	if err != nil {
		t.Fatal(err)
	}
	if got != 14 {
		t.Fatalf("result = %d, want 14", got)
	}
}

func TestRunRegisterOps(t *testing.T) {
	// r1=10, r2=3: r0 = r1*r2 + r1 - r2 = 37; then r0 /= r2 -> 12
	p := Program{
		{Op: OpMovImm, Dst: 1, Imm: 10},
		{Op: OpMovImm, Dst: 2, Imm: 3},
		{Op: OpMov, Dst: 0, Src: 1},
		{Op: OpMul, Dst: 0, Src: 2},
		{Op: OpAdd, Dst: 0, Src: 1},
		{Op: OpSub, Dst: 0, Src: 2},
		{Op: OpDiv, Dst: 0, Src: 2},
		{Op: OpExit},
	}
	got, err := Run(p, noHelpers())
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Fatalf("result = %d, want 12", got)
	}
}

func TestRunDivByZeroRegisterFaults(t *testing.T) {
	p := Program{
		{Op: OpMovImm, Dst: 0, Imm: 1},
		{Op: OpDiv, Dst: 0, Src: 1}, // r1 == 0
		{Op: OpExit},
	}
	if _, err := Run(p, noHelpers()); err == nil {
		t.Fatal("division by zero register did not fault")
	}
}

func TestRunConditionalJumps(t *testing.T) {
	// if r1 >= 5 -> r0 = 1 else r0 = 0
	mk := func(v int64) Program {
		return Program{
			{Op: OpMovImm, Dst: 1, Imm: v},
			{Op: OpJgeImm, Dst: 1, Imm: 5, Off: 2},
			{Op: OpMovImm, Dst: 0, Imm: 0},
			{Op: OpExit},
			{Op: OpMovImm, Dst: 0, Imm: 1},
			{Op: OpExit},
		}
	}
	for v, want := range map[int64]int64{4: 0, 5: 1, 6: 1, -1: 0} {
		got, err := Run(mk(v), noHelpers())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("v=%d: got %d, want %d", v, got, want)
		}
	}
}

func TestRunHelperCall(t *testing.T) {
	helpers := HelperSet{
		9: func(args [5]int64) int64 { return args[0] + args[1] },
	}
	p := Program{
		{Op: OpMovImm, Dst: 1, Imm: 20},
		{Op: OpMovImm, Dst: 2, Imm: 22},
		{Op: OpCall, Imm: 9},
		{Op: OpExit},
	}
	got, err := Run(p, helpers)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("helper result = %d, want 42", got)
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(3)
	if m.Value() != 0 {
		t.Fatalf("empty Value = %v, want 0", m.Value())
	}
	if got := m.Add(3); got != 3 {
		t.Fatalf("Add(3) = %v, want 3", got)
	}
	m.Add(6)
	if got := m.Value(); got != 4.5 {
		t.Fatalf("Value = %v, want 4.5", got)
	}
	m.Add(9)         // window full: 3,6,9 -> 6
	got := m.Add(12) // evicts 3: 6,9,12 -> 9
	if got != 9 {
		t.Fatalf("windowed average = %v, want 9", got)
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	m := NewMovingAverage(0) // clamps to 1
	m.Add(5)
	if got := m.Add(11); got != 11 {
		t.Fatalf("window-1 average = %v, want 11", got)
	}
}

func TestAdaptivePolicyProfitabilityGate(t *testing.T) {
	clock := vtime.New()
	a := NewAdaptive(AdaptiveConfig{BatchThreshold: 8, UtilThreshold: 40, Window: 4}, clock,
		func() int { return 0 }) // idle GPU
	if got := a.Decide(4); got != UseCPU {
		t.Fatalf("batch 4 = %v, want CPU (below crossover)", got)
	}
	if got := a.Decide(8); got != UseGPU {
		t.Fatalf("batch 8 = %v, want GPU", got)
	}
}

func TestAdaptivePolicyContentionGate(t *testing.T) {
	clock := vtime.New()
	util := 90
	a := NewAdaptive(DefaultAdaptiveConfig(), clock, func() int { return util })
	if got := a.Decide(1024); got != UseCPU {
		t.Fatalf("contended GPU: %v, want CPU", got)
	}
	// Contention clears; moving average must decay before offload resumes.
	util = 0
	var got Decision
	for i := 0; i < 16; i++ {
		clock.Advance(5 * time.Millisecond)
		got = a.Decide(1024)
	}
	if got != UseGPU {
		t.Fatalf("after contention cleared: %v, want GPU", got)
	}
}

func TestAdaptiveRateLimitsQueries(t *testing.T) {
	clock := vtime.New()
	queries := 0
	a := NewAdaptive(AdaptiveConfig{CheckInterval: 5 * time.Millisecond, UtilThreshold: 40, BatchThreshold: 1, Window: 4},
		clock, func() int { queries++; return 0 })
	for i := 0; i < 100; i++ {
		a.Decide(10)
		clock.Advance(100 * time.Microsecond) // 100 calls over 10ms
	}
	if queries > 3 {
		t.Fatalf("utilization queried %d times in 10ms, want <= 3 (5ms rate limit)", queries)
	}
}

func TestFigure3ProgramMatchesNativePolicy(t *testing.T) {
	var batch, util int64
	helpers := Figure3Helpers(func() int64 { return batch }, func() int64 { return util }, 1)
	vp, err := NewVMPolicy(Figure3Program(40, 8), helpers)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		batch, util int64
		want        Decision
	}{
		{16, 0, UseGPU},
		{16, 90, UseCPU}, // contended
		{2, 0, UseCPU},   // unprofitable batch
		{8, 39, UseGPU},  // just under both thresholds
		{8, 40, UseCPU},  // at util threshold -> cpu
	}
	for _, c := range cases {
		// Fresh average per case so prior samples don't bleed through.
		helpers = Figure3Helpers(func() int64 { return batch }, func() int64 { return util }, 1)
		vp, err = NewVMPolicy(Figure3Program(40, 8), helpers)
		if err != nil {
			t.Fatal(err)
		}
		batch, util = c.batch, c.util
		if got := vp.Decide(int(c.batch)); got != c.want {
			t.Errorf("batch=%d util=%d: got %v, want %v", c.batch, c.util, got, c.want)
		}
	}
}

func TestDecisionString(t *testing.T) {
	if UseCPU.String() != "CPU" || UseGPU.String() != "GPU" {
		t.Fatal("Decision strings wrong")
	}
}

// Property: every verified program terminates (forward-jump-only invariant).
// Generate random-but-verifiable programs and confirm Run returns.
func TestQuickVerifiedProgramsTerminate(t *testing.T) {
	f := func(seed []uint8) bool {
		p := Program{}
		for i, b := range seed {
			if len(p) >= 60 {
				break
			}
			switch b % 5 {
			case 0:
				p = append(p, Instruction{Op: OpMovImm, Dst: b % NumRegs, Imm: int64(b)})
			case 1:
				p = append(p, Instruction{Op: OpAddImm, Dst: b % NumRegs, Imm: int64(b)})
			case 2:
				p = append(p, Instruction{Op: OpMulImm, Dst: b % NumRegs, Imm: 2})
			case 3:
				p = append(p, Instruction{Op: OpJgtImm, Dst: b % NumRegs, Imm: int64(i), Off: 1})
			case 4:
				p = append(p, Instruction{Op: OpSub, Dst: b % NumRegs, Src: (b / 5) % NumRegs})
			}
		}
		// Pad so a trailing Off=1 jump still lands on an instruction.
		p = append(p, Instruction{Op: OpMovImm, Dst: 0, Imm: 0}, Instruction{Op: OpExit})
		if err := Verify(p, noHelpers()); err != nil {
			return false
		}
		_, err := Run(p, noHelpers())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: moving average always lies within [min, max] of its window.
func TestQuickMovingAverageBounded(t *testing.T) {
	f := func(vals []uint16, w uint8) bool {
		window := int(w%16) + 1
		m := NewMovingAverage(window)
		for i, v := range vals {
			avg := m.Add(float64(v))
			lo, hi := float64(v), float64(v)
			start := i - window + 1
			if start < 0 {
				start = 0
			}
			for _, u := range vals[start : i+1] {
				if float64(u) < lo {
					lo = float64(u)
				}
				if float64(u) > hi {
					hi = float64(u)
				}
			}
			if avg < lo-1e-9 || avg > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Exercise every opcode, including the register-comparison jump variants.
func TestRunAllOpcodes(t *testing.T) {
	helpers := HelperSet{1: func([5]int64) int64 { return 7 }}
	p := Program{
		{Op: OpMovImm, Dst: 1, Imm: 10},
		{Op: OpMovImm, Dst: 2, Imm: 10},
		{Op: OpJeqX, Dst: 1, Src: 2, Off: 1},    // taken
		{Op: OpMovImm, Dst: 0, Imm: -1},         // skipped
		{Op: OpJgeX, Dst: 1, Src: 2, Off: 1},    // taken (equal)
		{Op: OpMovImm, Dst: 0, Imm: -2},         // skipped
		{Op: OpJltX, Dst: 2, Src: 1, Off: 1},    // not taken (equal)
		{Op: OpAddImm, Dst: 3, Imm: 5},          // executed
		{Op: OpJneImm, Dst: 3, Imm: 0, Off: 1},  // taken (5 != 0)
		{Op: OpMovImm, Dst: 0, Imm: -3},         // skipped
		{Op: OpJleImm, Dst: 3, Imm: 5, Off: 1},  // taken (5 <= 5)
		{Op: OpMovImm, Dst: 0, Imm: -4},         // skipped
		{Op: OpJgtImm, Dst: 3, Imm: 99, Off: 1}, // not taken
		{Op: OpCall, Imm: 1},                    // r0 = 7
		{Op: OpJmp, Off: 1},                     // skip the poison
		{Op: OpMovImm, Dst: 0, Imm: -5},
		{Op: OpExit},
	}
	got, err := Run(p, helpers)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("result = %d, want 7", got)
	}
}

func TestOpcodeAndErrorStrings(t *testing.T) {
	if OpExit.String() != "exit" || OpCode(250).String() == "" {
		t.Fatal("opcode strings wrong")
	}
	ve := &VerifyError{PC: 3, Reason: "nope"}
	if ve.Error() == "" {
		t.Fatal("empty VerifyError")
	}
	re := &RunError{PC: 1, Reason: "bad"}
	if re.Error() == "" {
		t.Fatal("empty RunError")
	}
}

func TestAdaptiveUtilizationView(t *testing.T) {
	clock := vtime.New()
	a := NewAdaptive(AdaptiveConfig{Window: 2}, clock, func() int { return 30 })
	a.Decide(1)
	if got := a.Utilization(); got != 30 {
		t.Fatalf("Utilization = %v, want 30", got)
	}
}

func TestNewAdaptiveDefaults(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{CheckInterval: -1, Window: -1}, vtime.New(), func() int { return 0 })
	if a.cfg.CheckInterval <= 0 || a.cfg.Window <= 0 {
		t.Fatal("defaults not applied")
	}
}

func TestVMPolicyRejectsUnverifiable(t *testing.T) {
	if _, err := NewVMPolicy(Program{{Op: OpJmp, Off: -1}, {Op: OpExit}}, noHelpers()); err == nil {
		t.Fatal("verifier bypassed")
	}
}
