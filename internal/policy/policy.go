package policy

import (
	"sync"
	"time"

	"lakego/internal/vtime"
)

// Decision is where a policy routes one invocation.
type Decision int

// Policy outcomes: run on the CPU fallback or offload to the accelerator.
const (
	UseCPU Decision = iota
	UseGPU
)

func (d Decision) String() string {
	if d == UseGPU {
		return "GPU"
	}
	return "CPU"
}

// Func is a native Go policy: given the pending batch size, pick an
// execution target. It corresponds to the paper's policy callback invoked
// "automatically by the kernel during the application's execution".
type Func func(batchSize int) Decision

// HealthGated wraps a policy so offload is only considered while the
// accelerator service is healthy: when healthy() reports false every
// decision is UseCPU without consulting inner — whose utilization query
// would itself be a doomed remoted call against a dead lakeD. A nil inner
// permits the GPU whenever healthy.
func HealthGated(inner Func, healthy func() bool) Func {
	return func(batchSize int) Decision {
		if healthy != nil && !healthy() {
			return UseCPU
		}
		if inner == nil {
			return UseGPU
		}
		return inner(batchSize)
	}
}

// MovingAverage is the windowed moving average Fig 3's policy applies to
// GPU utilization samples. The zero value is unusable; construct with
// NewMovingAverage. Safe for concurrent use.
type MovingAverage struct {
	mu      sync.Mutex
	samples []float64
	next    int
	n       int
	sum     float64
}

// NewMovingAverage creates an average over the last window samples.
func NewMovingAverage(window int) *MovingAverage {
	if window <= 0 {
		window = 1
	}
	return &MovingAverage{samples: make([]float64, window)}
}

// Add incorporates a sample and returns the updated average.
func (m *MovingAverage) Add(v float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.n == len(m.samples) {
		m.sum -= m.samples[m.next]
	} else {
		m.n++
	}
	m.samples[m.next] = v
	m.sum += v
	m.next = (m.next + 1) % len(m.samples)
	return m.sum / float64(m.n)
}

// Value returns the current average (0 with no samples).
func (m *MovingAverage) Value() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// LatencySource exposes observed latency percentiles in virtual time.
// *telemetry.Histogram satisfies it (the interface lives here so policy
// does not import the telemetry plane it is fed by).
type LatencySource interface {
	// QuantileDuration estimates the q-quantile of observed latencies.
	QuantileDuration(q float64) time.Duration
	// Count reports how many observations back the estimate.
	Count() int64
}

// AdaptiveConfig parameterizes the Fig 3 policy.
type AdaptiveConfig struct {
	// CheckInterval rate-limits utilization queries ("if ...5 ms elapsed
	// since last check...").
	CheckInterval time.Duration
	// UtilThreshold is exec_threshold: above this moving-average GPU
	// utilization (percent), the kernel backs off to the CPU.
	UtilThreshold int
	// BatchThreshold is batch_threshold: below this batch size the GPU is
	// not performance profitable and the CPU is used.
	BatchThreshold int
	// Window is the moving-average window in samples.
	Window int

	// UseObservedLatency opts into telemetry-fed profitability: once both
	// latency sources (SetLatencySources) hold at least MinSamples
	// observations, the static BatchThreshold gate is replaced by a direct
	// comparison of observed per-item GPU vs CPU latency at
	// LatencyQuantile. The contention gate (UtilThreshold) always applies.
	UseObservedLatency bool
	// LatencyQuantile is the compared percentile. Default 0.5 (median).
	LatencyQuantile float64
	// MinSamples is the per-source observation floor below which the
	// policy falls back to BatchThreshold. Default 16.
	MinSamples int64
}

// DefaultAdaptiveConfig mirrors the constants the evaluation uses.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		CheckInterval:  5 * time.Millisecond,
		UtilThreshold:  40,
		BatchThreshold: 8,
		Window:         8,
	}
}

// Adaptive is the Fig 3 cu_policy: it rate-limits queries of GPU
// utilization, keeps a moving average, and permits offload only when the
// accelerator is uncontended and the batch is large enough to be
// profitable. Safe for concurrent use.
type Adaptive struct {
	cfg   AdaptiveConfig
	clock *vtime.Clock
	query func() int // GPU utilization source, e.g. remoted NVML

	mu        sync.Mutex
	avg       *MovingAverage
	lastCheck time.Duration
	checked   bool

	gpuLat, cpuLat LatencySource
}

// NewAdaptive builds the policy. query is invoked at most once per
// CheckInterval; between checks the last moving average is reused.
func NewAdaptive(cfg AdaptiveConfig, clock *vtime.Clock, query func() int) *Adaptive {
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 5 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.LatencyQuantile <= 0 || cfg.LatencyQuantile > 1 {
		cfg.LatencyQuantile = 0.5
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 16
	}
	return &Adaptive{cfg: cfg, clock: clock, query: query, avg: NewMovingAverage(cfg.Window)}
}

// SetLatencySources feeds the policy observed per-item latency series for
// each path (typically the runtime's shared telemetry histograms). Only
// consulted when AdaptiveConfig.UseObservedLatency is set.
func (a *Adaptive) SetLatencySources(gpu, cpu LatencySource) {
	a.mu.Lock()
	a.gpuLat, a.cpuLat = gpu, cpu
	a.mu.Unlock()
}

// Decide implements Func.
func (a *Adaptive) Decide(batchSize int) Decision {
	a.mu.Lock()
	now := a.clock.Now()
	if !a.checked || now-a.lastCheck >= a.cfg.CheckInterval {
		a.lastCheck = now
		a.checked = true
		a.mu.Unlock()
		u := a.query() // may itself be a remoted call; don't hold the lock
		a.mu.Lock()
		a.avg.Add(float64(u))
	}
	execRate := a.avg.Value()
	gpuLat, cpuLat := a.gpuLat, a.cpuLat
	a.mu.Unlock()

	if execRate >= float64(a.cfg.UtilThreshold) {
		return UseCPU // contended: back off regardless of profitability
	}
	if a.cfg.UseObservedLatency && gpuLat != nil && cpuLat != nil &&
		gpuLat.Count() >= a.cfg.MinSamples && cpuLat.Count() >= a.cfg.MinSamples {
		// Fig 3's crossover on measured signal: offload when the observed
		// per-item GPU latency beats the CPU path at the chosen quantile.
		if gpuLat.QuantileDuration(a.cfg.LatencyQuantile) <= cpuLat.QuantileDuration(a.cfg.LatencyQuantile) {
			return UseGPU
		}
		return UseCPU
	}
	if batchSize >= a.cfg.BatchThreshold {
		return UseGPU
	}
	return UseCPU
}

// Utilization returns the policy's current moving-average view of GPU
// utilization (percent).
func (a *Adaptive) Utilization() float64 { return a.avg.Value() }

// Helper numbers for the bytecode form of the Fig 3 policy.
const (
	HelperGetBatchSize int64 = 1
	HelperGetGPUUtil   int64 = 2
	HelperMovAvg       int64 = 3
)

// Figure3Helpers builds the helper set for Figure3Program. getUtil queries
// device utilization (percent); the mov_avg helper keeps per-instance state
// with the given window.
func Figure3Helpers(getBatch func() int64, getUtil func() int64, window int) HelperSet {
	avg := NewMovingAverage(window)
	return HelperSet{
		HelperGetBatchSize: func([5]int64) int64 { return getBatch() },
		HelperGetGPUUtil:   func([5]int64) int64 { return getUtil() },
		HelperMovAvg:       func(args [5]int64) int64 { return int64(avg.Add(float64(args[0]))) },
	}
}

// Figure3Program returns the paper's Fig 3 policy compiled to VM bytecode:
//
//	util      = get_gpu_util()
//	exec_rate = mov_avg(util)
//	batch_sz  = get_batch_size()
//	if exec_rate < exec_threshold && batch_sz >= batch_threshold:
//	    return 1  // dev_func: offload
//	return 0      // cpu_func: fall back
func Figure3Program(execThreshold, batchThreshold int64) Program {
	return Program{
		{Op: OpCall, Imm: HelperGetGPUUtil},                 // 0: r0 = util
		{Op: OpMov, Dst: 1, Src: 0},                         // 1: r1 = util (helper arg)
		{Op: OpCall, Imm: HelperMovAvg},                     // 2: r0 = mov_avg(util)
		{Op: OpMov, Dst: 6, Src: 0},                         // 3: r6 = exec_rate
		{Op: OpCall, Imm: HelperGetBatchSize},               // 4: r0 = batch_sz
		{Op: OpMov, Dst: 7, Src: 0},                         // 5: r7 = batch_sz
		{Op: OpJgeImm, Dst: 6, Imm: execThreshold, Off: 3},  // 6: contended -> cpu
		{Op: OpJltImm, Dst: 7, Imm: batchThreshold, Off: 2}, // 7: small batch -> cpu
		{Op: OpMovImm, Dst: 0, Imm: 1},                      // 8: r0 = UseGPU
		{Op: OpExit},                                        // 9
		{Op: OpMovImm, Dst: 0, Imm: 0},                      // 10: r0 = UseCPU
		{Op: OpExit},                                        // 11
	}
}

// VMPolicy wraps a verified program + helpers as a policy Func. Verification
// happens once at construction; Decide runs the pre-verified bytecode.
type VMPolicy struct {
	prog    Program
	helpers HelperSet
	batch   int64
	mu      sync.Mutex
}

// NewVMPolicy verifies prog against helpers and returns the callable
// policy. The helper set must include HelperGetBatchSize wired through the
// returned policy's pending batch (use Figure3Helpers with the policy's
// BatchSize method), or ignore batch entirely.
func NewVMPolicy(prog Program, helpers HelperSet) (*VMPolicy, error) {
	if err := Verify(prog, helpers); err != nil {
		return nil, err
	}
	return &VMPolicy{prog: prog, helpers: helpers}, nil
}

// BatchSize returns the batch size of the in-flight Decide call; pass it as
// the getBatch callback to Figure3Helpers.
func (v *VMPolicy) BatchSize() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.batch
}

// Decide implements Func by running the bytecode.
func (v *VMPolicy) Decide(batchSize int) Decision {
	v.mu.Lock()
	v.batch = int64(batchSize)
	v.mu.Unlock()
	r, err := runVerified(v.prog, v.helpers)
	if err != nil || r == 0 {
		return UseCPU
	}
	return UseGPU
}
