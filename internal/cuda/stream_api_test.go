package cuda

import (
	"testing"
	"time"

	"lakego/internal/gpu"
	"lakego/internal/vtime"
)

func asyncAPI(t *testing.T) (*API, uint64, *vtime.Clock) {
	t.Helper()
	clk := vtime.New()
	a := NewAPI(gpu.New(gpu.DefaultSpec(), clk))
	a.RegisterKernel(VecAddKernel())
	a.Init()
	ctx, r := a.CtxCreate("async")
	if r != Success {
		t.Fatal(r)
	}
	return a, ctx, clk
}

func TestStreamCreateDestroy(t *testing.T) {
	a, ctx, _ := asyncAPI(t)
	s, r := a.StreamCreate(ctx)
	if r != Success {
		t.Fatal(r)
	}
	if _, r := a.StreamCreate(777); r != ErrInvalidContext {
		t.Fatalf("bad ctx = %v", r)
	}
	if r := a.StreamDestroy(s); r != Success {
		t.Fatal(r)
	}
	if r := a.StreamDestroy(s); r != ErrInvalidHandle {
		t.Fatalf("double destroy = %v", r)
	}
	if r := a.StreamSynchronize(s); r != ErrInvalidHandle {
		t.Fatalf("sync dead stream = %v", r)
	}
}

func TestAsyncCopyAndLaunchDirect(t *testing.T) {
	a, ctx, clk := asyncAPI(t)
	s, _ := a.StreamCreate(ctx)
	mod, _ := a.ModuleLoad("m")
	fn, _ := a.ModuleGetFunction(mod, "vecadd")

	const n = 16
	src := make([]byte, 4*n)
	PutFloat32s(src, make([]float32, n)) // zeros: 0+0=0
	da, _ := a.MemAlloc(4 * n)
	dc, _ := a.MemAlloc(4 * n)

	if r := a.MemcpyHtoDAsync(da, src, s); r != Success {
		t.Fatal(r)
	}
	if clk.Now() != 0 {
		t.Fatalf("async copy advanced clock to %v", clk.Now())
	}
	if r := a.LaunchKernelAsync(ctx, fn, s, []uint64{uint64(da), uint64(da), uint64(dc), n}); r != Success {
		t.Fatal(r)
	}
	dst := make([]byte, 4*n)
	if r := a.MemcpyDtoHAsync(dst, dc, s); r != Success {
		t.Fatal(r)
	}
	if r := a.StreamSynchronize(s); r != Success {
		t.Fatal(r)
	}
	if clk.Now() < 2*a.Device().TransferTime(4*n) {
		t.Fatalf("sync advanced only to %v", clk.Now())
	}
	got, _ := Float32s(dst, n)
	for _, v := range got {
		if v != 0 {
			t.Fatalf("vecadd of zeros = %v", got)
		}
	}
}

func TestAsyncErrorPathsDirect(t *testing.T) {
	a, ctx, _ := asyncAPI(t)
	s, _ := a.StreamCreate(ctx)
	dp, _ := a.MemAlloc(8)
	if r := a.MemcpyHtoDAsync(dp, make([]byte, 64), s); r != ErrInvalidValue {
		t.Fatalf("oversized async HtoD = %v", r)
	}
	if r := a.MemcpyHtoDAsync(gpu.DevPtr(0xbad), make([]byte, 8), s); r != ErrInvalidValue {
		t.Fatalf("bad ptr = %v", r)
	}
	if r := a.MemcpyDtoHAsync(make([]byte, 64), dp, s); r != ErrInvalidValue {
		t.Fatalf("oversized async DtoH = %v", r)
	}
	if r := a.MemcpyDtoHAsync(make([]byte, 8), dp, 999); r != ErrInvalidHandle {
		t.Fatalf("bad stream = %v", r)
	}
	mod, _ := a.ModuleLoad("m")
	fn, _ := a.ModuleGetFunction(mod, "vecadd")
	if r := a.LaunchKernelAsync(999, fn, s, nil); r != ErrInvalidContext {
		t.Fatalf("bad ctx = %v", r)
	}
	if r := a.LaunchKernelAsync(ctx, 999, s, nil); r != ErrInvalidHandle {
		t.Fatalf("bad fn = %v", r)
	}
	if r := a.LaunchKernelAsync(ctx, fn, 999, nil); r != ErrInvalidHandle {
		t.Fatalf("bad stream launch = %v", r)
	}
	// A kernel body error surfaces as launch failed even async.
	if r := a.LaunchKernelAsync(ctx, fn, s, []uint64{1}); r != ErrLaunchFailed {
		t.Fatalf("bad args = %v", r)
	}
}

func TestChargeTransfer(t *testing.T) {
	a, _, clk := asyncAPI(t)
	d := a.ChargeTransfer(12 << 20)
	if clk.Now() != d || d < 900*time.Microsecond {
		t.Fatalf("ChargeTransfer = %v, clock %v", d, clk.Now())
	}
}

func TestDeviceGetNameBeforeInit(t *testing.T) {
	a := NewAPI(gpu.New(gpu.DefaultSpec(), vtime.New()))
	if _, r := a.DeviceGetName(); r != ErrNotInitialized {
		t.Fatalf("name before init = %v", r)
	}
	if _, r := a.MemAlloc(0); r != ErrNotInitialized {
		t.Fatalf("alloc before init = %v", r)
	}
	a.Init()
	if _, r := a.MemAlloc(-4); r != ErrInvalidValue {
		t.Fatalf("negative alloc = %v", r)
	}
	spec := gpu.DefaultSpec()
	spec.MemoryBytes = 16
	small := NewAPI(gpu.New(spec, vtime.New()))
	small.Init()
	if _, r := small.MemAlloc(1 << 20); r != ErrOutOfMemory {
		t.Fatalf("oversized alloc = %v", r)
	}
}

func TestMemGetInfoDirect(t *testing.T) {
	a := NewAPI(gpu.New(gpu.DefaultSpec(), vtime.New()))
	if _, _, r := a.MemGetInfo(); r != ErrNotInitialized {
		t.Fatalf("before init = %v", r)
	}
	a.Init()
	free, total, r := a.MemGetInfo()
	if r != Success || free != total {
		t.Fatalf("fresh device free=%d total=%d", free, total)
	}
}
