package cuda

import (
	"lakego/internal/gpu"
)

// Asynchronous driver API surface: streams let kernel-space callers overlap
// data movement with execution, the mechanism behind the evaluation's
// "LAKE" (async) vs "LAKE (sync.)" split. Mirrors cuStreamCreate /
// cuMemcpyHtoDAsync / cuLaunchKernel-on-stream / cuStreamSynchronize.

// StreamCreate creates a stream owned by ctx's client, on the context's
// placed device.
func (a *API) StreamCreate(ctx uint64) (uint64, Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ci, ok := a.ctxs[ctx]
	if !ok {
		return 0, ErrInvalidContext
	}
	h := a.nextStream
	a.nextStream++
	a.streams[h] = ci.dev.NewStream(ci.client)
	return h, Success
}

// StreamDestroy releases a stream handle (pending work completes on its
// timeline regardless, as in CUDA).
func (a *API) StreamDestroy(h uint64) Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.streams[h]; !ok {
		return ErrInvalidHandle
	}
	delete(a.streams, h)
	return Success
}

func (a *API) stream(h uint64) (*gpu.Stream, Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.streams[h]
	if !ok {
		return nil, ErrInvalidHandle
	}
	return s, Success
}

// MemcpyHtoDAsync enqueues a host-to-device copy on the stream: the bytes
// move now (functional effect), the time is charged on the stream timeline.
func (a *API) MemcpyHtoDAsync(dst gpu.DevPtr, src []byte, stream uint64) Result {
	s, r := a.stream(stream)
	if r != Success {
		return r
	}
	buf, err := a.Bytes(dst)
	if err != nil || len(src) > len(buf) {
		return ErrInvalidValue
	}
	s.EnqueueTransfer(int64(len(src)), func() { copy(buf, src) })
	return Success
}

// MemcpyDtoHAsync enqueues a device-to-host copy on the stream. As with
// real CUDA, the destination must not be read before synchronizing.
func (a *API) MemcpyDtoHAsync(dst []byte, src gpu.DevPtr, stream uint64) Result {
	s, r := a.stream(stream)
	if r != Success {
		return r
	}
	buf, err := a.Bytes(src)
	if err != nil || len(dst) > len(buf) {
		return ErrInvalidValue
	}
	s.EnqueueTransfer(int64(len(dst)), func() { copy(dst, buf[:len(dst)]) })
	return Success
}

// LaunchKernelAsync enqueues a kernel on the stream instead of executing
// synchronously.
func (a *API) LaunchKernelAsync(ctx, fn, stream uint64, args []uint64) Result {
	a.mu.Lock()
	_, okCtx := a.ctxs[ctx]
	k, okFn := a.fns[fn]
	s, okStream := a.streams[stream]
	a.mu.Unlock()
	if !okCtx {
		return ErrInvalidContext
	}
	if !okFn {
		return ErrInvalidHandle
	}
	if !okStream {
		return ErrInvalidHandle
	}
	var flops float64
	if k.Flops != nil {
		flops = k.Flops(args)
	}
	var launchErr error
	s.EnqueueCompute(flops, func() {
		if k.Body != nil {
			launchErr = k.Body(s.Device(), args)
		}
	})
	if launchErr != nil {
		return ErrLaunchFailed
	}
	return Success
}

// StreamSynchronize drains the stream, advancing the virtual clock to its
// completion horizon.
func (a *API) StreamSynchronize(h uint64) Result {
	s, r := a.stream(h)
	if r != Success {
		return r
	}
	s.Synchronize()
	return Success
}
