package cuda

import (
	"encoding/binary"
	"fmt"
	"math"

	"lakego/internal/gpu"
)

// PutFloat32s encodes vals little-endian into dst, which must hold
// 4*len(vals) bytes. It is the host-side marshalling helper every workload
// uses to stage tensors into device (or shared) memory.
func PutFloat32s(dst []byte, vals []float32) error {
	if len(dst) < 4*len(vals) {
		return fmt.Errorf("cuda: buffer %d bytes, need %d", len(dst), 4*len(vals))
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
	return nil
}

// Float32s decodes n little-endian float32 values from src.
func Float32s(src []byte, n int) ([]float32, error) {
	if len(src) < 4*n {
		return nil, fmt.Errorf("cuda: buffer %d bytes, need %d", len(src), 4*n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return out, nil
}

// VecAddKernel returns the classic element-wise c = a + b kernel over
// float32 vectors. Args: [aPtr, bPtr, cPtr, n]. The quickstart example and
// the remoting tests use it as the minimal end-to-end device computation.
func VecAddKernel() *Kernel {
	return &Kernel{
		Name: "vecadd",
		Flops: func(args []uint64) float64 {
			if len(args) != 4 {
				return 0
			}
			return float64(args[3]) // one add per element
		},
		Body: func(dev *gpu.Device, args []uint64) error {
			if len(args) != 4 {
				return fmt.Errorf("vecadd: want 4 args, got %d", len(args))
			}
			n := int(args[3])
			abuf, err := dev.Bytes(gpu.DevPtr(args[0]))
			if err != nil {
				return err
			}
			bbuf, err := dev.Bytes(gpu.DevPtr(args[1]))
			if err != nil {
				return err
			}
			cbuf, err := dev.Bytes(gpu.DevPtr(args[2]))
			if err != nil {
				return err
			}
			av, err := Float32s(abuf, n)
			if err != nil {
				return err
			}
			bv, err := Float32s(bbuf, n)
			if err != nil {
				return err
			}
			cv := make([]float32, n)
			for i := range cv {
				cv[i] = av[i] + bv[i]
			}
			return PutFloat32s(cbuf, cv)
		},
	}
}
