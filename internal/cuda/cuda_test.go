package cuda

import (
	"testing"
	"testing/quick"

	"lakego/internal/gpu"
	"lakego/internal/vtime"
)

func newAPI() *API {
	return NewAPI(gpu.New(gpu.DefaultSpec(), vtime.New()))
}

func TestRequiresInit(t *testing.T) {
	a := newAPI()
	if _, r := a.DeviceGetCount(); r != ErrNotInitialized {
		t.Fatalf("DeviceGetCount before Init = %v, want ErrNotInitialized", r)
	}
	if _, r := a.MemAlloc(64); r != ErrNotInitialized {
		t.Fatalf("MemAlloc before Init = %v, want ErrNotInitialized", r)
	}
	if r := a.Init(); r != Success {
		t.Fatalf("Init = %v", r)
	}
	if n, r := a.DeviceGetCount(); r != Success || n != 1 {
		t.Fatalf("DeviceGetCount = %d, %v", n, r)
	}
	if name, r := a.DeviceGetName(); r != Success || name == "" {
		t.Fatalf("DeviceGetName = %q, %v", name, r)
	}
}

func TestMemRoundTrip(t *testing.T) {
	a := newAPI()
	a.Init()
	ptr, r := a.MemAlloc(16)
	if r != Success {
		t.Fatal(r)
	}
	src := []byte{1, 2, 3, 4}
	if r := a.MemcpyHtoD(ptr, src); r != Success {
		t.Fatal(r)
	}
	dst := make([]byte, 4)
	if r := a.MemcpyDtoH(dst, ptr); r != Success {
		t.Fatal(r)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst = %v, want %v", dst, src)
		}
	}
	if r := a.MemFree(ptr); r != Success {
		t.Fatal(r)
	}
	if r := a.MemFree(ptr); r != ErrInvalidValue {
		t.Fatalf("double free = %v, want ErrInvalidValue", r)
	}
}

func TestMemcpyBoundsChecked(t *testing.T) {
	a := newAPI()
	a.Init()
	ptr, _ := a.MemAlloc(4)
	if r := a.MemcpyHtoD(ptr, make([]byte, 8)); r != ErrInvalidValue {
		t.Fatalf("oversized HtoD = %v, want ErrInvalidValue", r)
	}
	if r := a.MemcpyDtoH(make([]byte, 8), ptr); r != ErrInvalidValue {
		t.Fatalf("oversized DtoH = %v, want ErrInvalidValue", r)
	}
	if r := a.MemcpyHtoD(gpu.DevPtr(0xdead), []byte{1}); r != ErrInvalidValue {
		t.Fatalf("HtoD to bad ptr = %v, want ErrInvalidValue", r)
	}
}

func TestMemcpyChargesTransferTime(t *testing.T) {
	clk := vtime.New()
	dev := gpu.New(gpu.DefaultSpec(), clk)
	a := NewAPI(dev)
	a.Init()
	ptr, _ := a.MemAlloc(1 << 20)
	before := clk.Now()
	a.MemcpyHtoD(ptr, make([]byte, 1<<20))
	elapsed := clk.Now() - before
	want := dev.TransferTime(1 << 20)
	if elapsed != want {
		t.Fatalf("HtoD advanced clock by %v, want %v", elapsed, want)
	}
}

func TestVecAddEndToEnd(t *testing.T) {
	a := newAPI()
	a.RegisterKernel(VecAddKernel())
	a.Init()
	ctx, r := a.CtxCreate("test")
	if r != Success {
		t.Fatal(r)
	}
	mod, r := a.ModuleLoad("kernels.cubin")
	if r != Success {
		t.Fatal(r)
	}
	fn, r := a.ModuleGetFunction(mod, "vecadd")
	if r != Success {
		t.Fatal(r)
	}

	const n = 128
	av, bv := make([]float32, n), make([]float32, n)
	for i := 0; i < n; i++ {
		av[i], bv[i] = float32(i), float32(2*i)
	}
	abytes, bbytes := make([]byte, 4*n), make([]byte, 4*n)
	PutFloat32s(abytes, av)
	PutFloat32s(bbytes, bv)

	ap, _ := a.MemAlloc(4 * n)
	bp, _ := a.MemAlloc(4 * n)
	cp, _ := a.MemAlloc(4 * n)
	a.MemcpyHtoD(ap, abytes)
	a.MemcpyHtoD(bp, bbytes)

	if r := a.LaunchKernel(ctx, fn, []uint64{uint64(ap), uint64(bp), uint64(cp), n}); r != Success {
		t.Fatalf("LaunchKernel = %v", r)
	}
	out := make([]byte, 4*n)
	a.MemcpyDtoH(out, cp)
	cv, err := Float32s(out, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if cv[i] != float32(3*i) {
			t.Fatalf("c[%d] = %v, want %v", i, cv[i], float32(3*i))
		}
	}
	if a.Device().Launches() != 1 {
		t.Fatalf("Launches = %d, want 1", a.Device().Launches())
	}
}

func TestLaunchErrors(t *testing.T) {
	a := newAPI()
	a.Init()
	ctx, _ := a.CtxCreate("t")
	if r := a.LaunchKernel(999, 1, nil); r != ErrInvalidContext {
		t.Fatalf("bad ctx = %v, want ErrInvalidContext", r)
	}
	if r := a.LaunchKernel(ctx, 999, nil); r != ErrInvalidHandle {
		t.Fatalf("bad fn = %v, want ErrInvalidHandle", r)
	}
	mod, _ := a.ModuleLoad("m")
	if _, r := a.ModuleGetFunction(mod, "missing"); r != ErrNotFound {
		t.Fatalf("missing kernel = %v, want ErrNotFound", r)
	}
	if _, r := a.ModuleGetFunction(12345, "x"); r != ErrInvalidHandle {
		t.Fatalf("bad module = %v, want ErrInvalidHandle", r)
	}
}

func TestKernelBodyErrorSurfacesAsLaunchFailed(t *testing.T) {
	a := newAPI()
	a.RegisterKernel(VecAddKernel())
	a.Init()
	ctx, _ := a.CtxCreate("t")
	mod, _ := a.ModuleLoad("m")
	fn, _ := a.ModuleGetFunction(mod, "vecadd")
	// Wrong arg count -> kernel body errors -> launch failed.
	if r := a.LaunchKernel(ctx, fn, []uint64{1, 2}); r != ErrLaunchFailed {
		t.Fatalf("launch with bad args = %v, want ErrLaunchFailed", r)
	}
}

func TestCtxLifecycle(t *testing.T) {
	a := newAPI()
	a.Init()
	ctx, _ := a.CtxCreate("")
	if r := a.CtxSynchronize(ctx); r != Success {
		t.Fatal(r)
	}
	if r := a.CtxDestroy(ctx); r != Success {
		t.Fatal(r)
	}
	if r := a.CtxDestroy(ctx); r != ErrInvalidContext {
		t.Fatalf("destroy twice = %v, want ErrInvalidContext", r)
	}
	if r := a.CtxSynchronize(ctx); r != ErrInvalidContext {
		t.Fatalf("sync dead ctx = %v, want ErrInvalidContext", r)
	}
}

func TestResultStrings(t *testing.T) {
	if Success.String() != "CUDA_SUCCESS" {
		t.Fatalf("Success.String() = %q", Success)
	}
	if Success.Err() != nil {
		t.Fatal("Success.Err() != nil")
	}
	if ErrOutOfMemory.Err() == nil {
		t.Fatal("ErrOutOfMemory.Err() = nil")
	}
	if Result(12345).String() == "" {
		t.Fatal("unknown result has empty string")
	}
}

// Property: float32 slices survive a Put/Get round trip exactly.
func TestQuickFloat32RoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		buf := make([]byte, 4*len(vals))
		if err := PutFloat32s(buf, vals); err != nil {
			return false
		}
		got, err := Float32s(buf, len(vals))
		if err != nil {
			return false
		}
		for i := range vals {
			// NaN-safe bitwise comparison.
			a, b := vals[i], got[i]
			if a != b && !(a != a && b != b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
