package cuda

import (
	"errors"
	"fmt"
)

// Result is a CUDA-driver-style status code. The remoting layer ships these
// across the kernel/user boundary verbatim, so kernel-space callers do their
// own error checking exactly as §4.1 of the paper describes ("Errors caused
// when executing an API are forwarded to the application").
type Result int32

// Driver API result codes (the subset LAKE's workloads exercise).
const (
	Success           Result = 0
	ErrInvalidValue   Result = 1
	ErrOutOfMemory    Result = 2
	ErrNotInitialized Result = 3
	ErrInvalidContext Result = 201
	ErrInvalidHandle  Result = 400
	ErrNotFound       Result = 500
	ErrLaunchFailed   Result = 719
	// ErrNotReady maps CUDA_ERROR_SYSTEM_NOT_READY: the remoting layer
	// returns it when lakeD has been declared dead and could not be
	// recovered, signalling callers to route through the CPU fallback.
	ErrNotReady Result = 802
	ErrUnknown  Result = 999
)

var resultNames = map[Result]string{
	Success:           "CUDA_SUCCESS",
	ErrInvalidValue:   "CUDA_ERROR_INVALID_VALUE",
	ErrOutOfMemory:    "CUDA_ERROR_OUT_OF_MEMORY",
	ErrNotInitialized: "CUDA_ERROR_NOT_INITIALIZED",
	ErrInvalidContext: "CUDA_ERROR_INVALID_CONTEXT",
	ErrInvalidHandle:  "CUDA_ERROR_INVALID_HANDLE",
	ErrNotFound:       "CUDA_ERROR_NOT_FOUND",
	ErrLaunchFailed:   "CUDA_ERROR_LAUNCH_FAILED",
	ErrNotReady:       "CUDA_ERROR_SYSTEM_NOT_READY",
	ErrUnknown:        "CUDA_ERROR_UNKNOWN",
}

func (r Result) String() string {
	if s, ok := resultNames[r]; ok {
		return s
	}
	return fmt.Sprintf("CUDA_ERROR(%d)", int32(r))
}

// Err converts a Result to a Go error (nil for Success). The returned
// error carries the Result; recover it with AsResult.
func (r Result) Err() error {
	if r == Success {
		return nil
	}
	return resultError{r}
}

type resultError struct{ r Result }

func (e resultError) Error() string { return fmt.Sprintf("cuda: %s", e.r) }

// AsResult extracts the Result from an error chain produced by Err. ok is
// false for nil and for errors that did not originate from a Result.
func AsResult(err error) (r Result, ok bool) {
	var re resultError
	if errors.As(err, &re) {
		return re.r, true
	}
	return Success, false
}
