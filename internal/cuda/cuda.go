// Package cuda implements the CUDA-driver-style API that lakeD realizes in
// user space and lakeLib remotes into kernel space (§4: "LAKE uses API
// remoting to provide kernel space applications with the vendor-supported
// accelerator interfaces (e.g. CUDA APIs)").
//
// The surface mirrors the driver API the paper's prototype exposes —
// contexts, device memory, host<->device copies, module/function lookup and
// kernel launch — implemented against the gpu.Device model. Kernels are
// registered Go functions: workloads register e.g. an "mlp_forward" kernel,
// and launching it runs the real computation against device memory while the
// device model charges launch overhead plus a FLOP-derived compute time.
package cuda

import (
	"fmt"
	"sync"
	"time"

	"lakego/internal/flightrec"
	"lakego/internal/gpu"
)

// Kernel is a device function loadable via ModuleGetFunction and runnable
// via LaunchKernel. Args follow the CUDA convention of untyped 64-bit
// values: device pointers and scalars, interpretation is the kernel's.
type Kernel struct {
	// Name is the symbol ModuleGetFunction resolves.
	Name string
	// Flops returns the kernel's compute budget for a launch with args;
	// the device model converts it to execution time.
	Flops func(args []uint64) float64
	// Body performs the actual computation against device memory.
	// It may be nil for timing-only kernels.
	Body func(dev *gpu.Device, args []uint64) error
}

// PlaceFunc chooses the device ordinal a new context binds to; the pool's
// placement policy provides it. A nil PlaceFunc always picks device 0.
type PlaceFunc func(client string) int

// ctxInfo binds a context handle to its client tag (for utilization
// attribution) and its placed device.
type ctxInfo struct {
	client string
	dev    *gpu.Device
}

// API is one in-process realization of the driver API, bound to one or more
// devices. lakeD owns one; tests may use it directly. All methods are safe
// for concurrent use.
//
// Multi-device semantics: contexts bind to a pool-selected device at
// creation (CtxCreate consults the PlaceFunc; CtxCreateOnDevice pins), and
// everything flowing through a context — launches, streams, synchronize —
// runs on that device. Memory operations are routed by the ordinal tag
// every DevPtr carries, so copies always hit the owning device. Calls that
// take a pointer route by its tag; MemAlloc without an explicit ordinal
// follows CUDA's current-context rule — cuCtxCreate makes the new context
// current, so plain allocations land on the most recently created context's
// device (device 0 until any context exists, preserving single-device
// behavior bit-for-bit).
type API struct {
	devs  []*gpu.Device
	place PlaceFunc
	// rec receives gpu-domain launch events; nil-safe.
	rec *flightrec.Recorder

	mu         sync.Mutex
	inited     bool
	curDev     int // device of the current (most recently created) context
	nextCtx    uint64
	ctxs       map[uint64]ctxInfo
	nextFn     uint64
	fns        map[uint64]*Kernel
	kernels    map[string]*Kernel
	modules    map[string]uint64 // module path -> handle (flat namespace)
	nextMod    uint64
	modNames   map[uint64]string
	nextStream uint64
	streams    map[uint64]*gpu.Stream
}

// NewAPI returns an API bound to a single device with no kernels
// registered.
func NewAPI(dev *gpu.Device) *API {
	return NewMultiAPI([]*gpu.Device{dev}, nil)
}

// NewMultiAPI returns an API over a device pool. Device i must have
// ordinal i (gpupool.New guarantees this); place picks the device for each
// new context (nil = always device 0).
func NewMultiAPI(devs []*gpu.Device, place PlaceFunc) *API {
	if len(devs) == 0 {
		panic("cuda: NewMultiAPI requires at least one device")
	}
	return &API{
		devs:       devs,
		place:      place,
		nextCtx:    1,
		ctxs:       make(map[uint64]ctxInfo),
		nextFn:     1,
		fns:        make(map[uint64]*Kernel),
		kernels:    make(map[string]*Kernel),
		modules:    make(map[string]uint64),
		nextMod:    1,
		modNames:   make(map[uint64]string),
		nextStream: 1,
		streams:    make(map[uint64]*gpu.Stream),
	}
}

// SetFlightRecorder attaches the flight recorder. Must be called during
// runtime construction, before any traffic.
func (a *API) SetFlightRecorder(rec *flightrec.Recorder) {
	a.rec = rec
}

// Device returns the primary (ordinal 0) device model.
func (a *API) Device() *gpu.Device { return a.devs[0] }

// Devices returns all pool devices in ordinal order.
func (a *API) Devices() []*gpu.Device { return a.devs }

// devForPtr routes a device pointer to its owning device via the ordinal
// tag, or nil if the tag is out of range for this pool.
func (a *API) devForPtr(p gpu.DevPtr) *gpu.Device {
	ord := gpu.DevPtrOrdinal(p)
	if ord < 0 || ord >= len(a.devs) {
		return nil
	}
	return a.devs[ord]
}

// RegisterKernel installs a kernel so ModuleGetFunction can resolve it.
// Registering a nil kernel or one without a name panics: kernels are wired
// at program start, not at runtime.
func (a *API) RegisterKernel(k *Kernel) {
	if k == nil || k.Name == "" {
		panic("cuda: RegisterKernel requires a named kernel")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.kernels[k.Name] = k
}

// Init initializes the driver. Every other call requires it, mirroring
// cuInit.
func (a *API) Init() Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inited = true
	return Success
}

func (a *API) checkInit() Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inited {
		return ErrNotInitialized
	}
	return Success
}

// DeviceGetCount mirrors cuDeviceGetCount: the pool size.
func (a *API) DeviceGetCount() (int, Result) {
	if r := a.checkInit(); r != Success {
		return 0, r
	}
	return len(a.devs), Success
}

// DeviceGetName mirrors cuDeviceGetName (for the primary device).
func (a *API) DeviceGetName() (string, Result) {
	if r := a.checkInit(); r != Success {
		return "", r
	}
	return a.devs[0].Spec().Name, Success
}

// CtxCreate creates a context tagged with client, which attributes the
// context's device occupancy in utilization queries (the signal contention
// policies consume). The context binds to the device the placement
// function selects.
func (a *API) CtxCreate(client string) (uint64, Result) {
	ord := 0
	if a.place != nil {
		ord = a.place(client)
	}
	return a.CtxCreateOnDevice(client, ord)
}

// CtxCreateOnDevice creates a context pinned to an explicit device
// ordinal, bypassing placement.
func (a *API) CtxCreateOnDevice(client string, ord int) (uint64, Result) {
	if r := a.checkInit(); r != Success {
		return 0, r
	}
	if ord < 0 || ord >= len(a.devs) {
		return 0, ErrInvalidValue
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	h := a.nextCtx
	a.nextCtx++
	if client == "" {
		client = fmt.Sprintf("ctx-%d", h)
	}
	a.ctxs[h] = ctxInfo{client: client, dev: a.devs[ord]}
	a.curDev = ord // cuCtxCreate makes the new context current
	return h, Success
}

// CtxDestroy destroys a context.
func (a *API) CtxDestroy(h uint64) Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.ctxs[h]; !ok {
		return ErrInvalidContext
	}
	delete(a.ctxs, h)
	return Success
}

// MemAlloc mirrors cuMemAlloc, allocating in the current context — the one
// most recently created, per CUDA's context-stack rule. Before any context
// exists it allocates on device 0.
func (a *API) MemAlloc(size int64) (gpu.DevPtr, Result) {
	a.mu.Lock()
	ord := a.curDev
	a.mu.Unlock()
	return a.MemAllocOnDevice(size, ord)
}

// MemAllocOnDevice allocates on an explicit device ordinal. The returned
// pointer carries the ordinal tag, so later copies and frees route
// themselves.
func (a *API) MemAllocOnDevice(size int64, ord int) (gpu.DevPtr, Result) {
	if r := a.checkInit(); r != Success {
		return 0, r
	}
	if ord < 0 || ord >= len(a.devs) {
		return 0, ErrInvalidValue
	}
	ptr, err := a.devs[ord].Alloc(size)
	if err != nil {
		if size <= 0 {
			return 0, ErrInvalidValue
		}
		return 0, ErrOutOfMemory
	}
	return ptr, Success
}

// MemGetInfo mirrors cuMemGetInfo: free and total device memory, summed
// across the pool. Policies use it to gauge memory pressure before staging
// large batches.
func (a *API) MemGetInfo() (free, total int64, r Result) {
	if r := a.checkInit(); r != Success {
		return 0, 0, r
	}
	var used int64
	for _, d := range a.devs {
		total += d.Spec().MemoryBytes
		used += d.MemUsed()
	}
	return total - used, total, Success
}

// MemFree mirrors cuMemFree.
func (a *API) MemFree(ptr gpu.DevPtr) Result {
	dev := a.devForPtr(ptr)
	if dev == nil {
		return ErrInvalidValue
	}
	if err := dev.Free(ptr); err != nil {
		return ErrInvalidValue
	}
	return Success
}

// Bytes exposes a device allocation's backing storage, routed to the
// owning device by the pointer's ordinal tag. The daemon's batched-infer
// gather/scatter uses it.
func (a *API) Bytes(ptr gpu.DevPtr) ([]byte, error) {
	dev := a.devForPtr(ptr)
	if dev == nil {
		return nil, fmt.Errorf("%w: %#x", gpu.ErrBadPtr, ptr)
	}
	return dev.Bytes(ptr)
}

// MemcpyHtoD copies src into device memory at dst, charging PCIe transfer
// time on the virtual clock.
func (a *API) MemcpyHtoD(dst gpu.DevPtr, src []byte) Result {
	dev := a.devForPtr(dst)
	if dev == nil {
		return ErrInvalidValue
	}
	buf, err := dev.Bytes(dst)
	if err != nil {
		return ErrInvalidValue
	}
	if len(src) > len(buf) {
		return ErrInvalidValue
	}
	d := dev.TransferTime(int64(len(src)))
	dev.Clock().Advance(d)
	dev.ObserveCopy(int64(len(src)), d)
	copy(buf, src)
	return Success
}

// MemcpyDtoH copies device memory at src into dst, charging transfer time.
func (a *API) MemcpyDtoH(dst []byte, src gpu.DevPtr) Result {
	dev := a.devForPtr(src)
	if dev == nil {
		return ErrInvalidValue
	}
	buf, err := dev.Bytes(src)
	if err != nil {
		return ErrInvalidValue
	}
	if len(dst) > len(buf) {
		return ErrInvalidValue
	}
	d := dev.TransferTime(int64(len(dst)))
	dev.Clock().Advance(d)
	dev.ObserveCopy(int64(len(dst)), d)
	copy(dst, buf[:len(dst)])
	return Success
}

// ModuleLoad mirrors cuModuleLoad. Kernels live in a flat namespace, so any
// path succeeds and resolves the same symbols; the handle exists to keep the
// call sequence faithful to driver-API programs.
func (a *API) ModuleLoad(path string) (uint64, Result) {
	if r := a.checkInit(); r != Success {
		return 0, r
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if h, ok := a.modules[path]; ok {
		return h, Success
	}
	h := a.nextMod
	a.nextMod++
	a.modules[path] = h
	a.modNames[h] = path
	return h, Success
}

// ModuleGetFunction resolves a kernel by name within a loaded module.
func (a *API) ModuleGetFunction(module uint64, name string) (uint64, Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.modNames[module]; !ok {
		return 0, ErrInvalidHandle
	}
	k, ok := a.kernels[name]
	if !ok {
		return 0, ErrNotFound
	}
	h := a.nextFn
	a.nextFn++
	a.fns[h] = k
	return h, Success
}

// LaunchKernel launches fn synchronously on behalf of ctx's client,
// advancing the clock by launch overhead + modeled compute time (plus any
// queueing delay behind other device users), then running the kernel body.
func (a *API) LaunchKernel(ctx, fn uint64, args []uint64) Result {
	a.mu.Lock()
	ci, okCtx := a.ctxs[ctx]
	k, okFn := a.fns[fn]
	a.mu.Unlock()
	if !okCtx {
		return ErrInvalidContext
	}
	if !okFn {
		return ErrInvalidHandle
	}
	dev := ci.dev
	cost := dev.Spec().LaunchOverhead
	if k.Flops != nil {
		cost += dev.ComputeTime(k.Flops(args))
	}
	a.rec.Emit(flightrec.DomainGPU, flightrec.EvLaunch,
		a.rec.ExecTrace(), 0, dev.Ordinal(), fn, uint64(len(args)), 0)
	var launchErr error
	dev.Execute(ci.client, cost, func() {
		if k.Body != nil {
			launchErr = k.Body(dev, args)
		}
	})
	if launchErr != nil {
		return ErrLaunchFailed
	}
	return Success
}

// CtxSynchronize mirrors cuCtxSynchronize. Execution in this model is
// synchronous, so the device is already drained; the call advances the
// clock to the device's busy horizon for programs that overlap work.
func (a *API) CtxSynchronize(ctx uint64) Result {
	a.mu.Lock()
	ci, ok := a.ctxs[ctx]
	a.mu.Unlock()
	if !ok {
		return ErrInvalidContext
	}
	ci.dev.Clock().AdvanceTo(ci.dev.BusyUntil())
	return Success
}

// ChargeTransfer advances the clock as if n bytes crossed PCIe without
// touching memory (on the primary device's link). High-level remoted APIs
// (the TensorFlow-style calls of §4.4) use it to model their internal data
// movement.
func (a *API) ChargeTransfer(n int64) time.Duration {
	return a.chargeTransferOn(a.devs[0], n)
}

// ChargeTransferFor charges a transfer of n bytes on the link of the
// device owning ptr, so multi-device staging bills the right copy engine.
func (a *API) ChargeTransferFor(ptr gpu.DevPtr, n int64) time.Duration {
	dev := a.devForPtr(ptr)
	if dev == nil {
		dev = a.devs[0]
	}
	return a.chargeTransferOn(dev, n)
}

func (a *API) chargeTransferOn(dev *gpu.Device, n int64) time.Duration {
	d := dev.TransferTime(n)
	dev.Clock().Advance(d)
	dev.ObserveCopy(n, d)
	return d
}
