// Package cuda implements the CUDA-driver-style API that lakeD realizes in
// user space and lakeLib remotes into kernel space (§4: "LAKE uses API
// remoting to provide kernel space applications with the vendor-supported
// accelerator interfaces (e.g. CUDA APIs)").
//
// The surface mirrors the driver API the paper's prototype exposes —
// contexts, device memory, host<->device copies, module/function lookup and
// kernel launch — implemented against the gpu.Device model. Kernels are
// registered Go functions: workloads register e.g. an "mlp_forward" kernel,
// and launching it runs the real computation against device memory while the
// device model charges launch overhead plus a FLOP-derived compute time.
package cuda

import (
	"fmt"
	"sync"
	"time"

	"lakego/internal/gpu"
)

// Kernel is a device function loadable via ModuleGetFunction and runnable
// via LaunchKernel. Args follow the CUDA convention of untyped 64-bit
// values: device pointers and scalars, interpretation is the kernel's.
type Kernel struct {
	// Name is the symbol ModuleGetFunction resolves.
	Name string
	// Flops returns the kernel's compute budget for a launch with args;
	// the device model converts it to execution time.
	Flops func(args []uint64) float64
	// Body performs the actual computation against device memory.
	// It may be nil for timing-only kernels.
	Body func(dev *gpu.Device, args []uint64) error
}

// API is one in-process realization of the driver API, bound to a device.
// lakeD owns one; tests may use it directly. All methods are safe for
// concurrent use.
type API struct {
	dev *gpu.Device

	mu         sync.Mutex
	inited     bool
	nextCtx    uint64
	ctxs       map[uint64]string // handle -> client tag for utilization attribution
	nextFn     uint64
	fns        map[uint64]*Kernel
	kernels    map[string]*Kernel
	modules    map[string]uint64 // module path -> handle (flat namespace)
	nextMod    uint64
	modNames   map[uint64]string
	nextStream uint64
	streams    map[uint64]*gpu.Stream
}

// NewAPI returns an API bound to dev with no kernels registered.
func NewAPI(dev *gpu.Device) *API {
	return &API{
		dev:        dev,
		nextCtx:    1,
		ctxs:       make(map[uint64]string),
		nextFn:     1,
		fns:        make(map[uint64]*Kernel),
		kernels:    make(map[string]*Kernel),
		modules:    make(map[string]uint64),
		nextMod:    1,
		modNames:   make(map[uint64]string),
		nextStream: 1,
		streams:    make(map[uint64]*gpu.Stream),
	}
}

// Device returns the underlying device model.
func (a *API) Device() *gpu.Device { return a.dev }

// RegisterKernel installs a kernel so ModuleGetFunction can resolve it.
// Registering a nil kernel or one without a name panics: kernels are wired
// at program start, not at runtime.
func (a *API) RegisterKernel(k *Kernel) {
	if k == nil || k.Name == "" {
		panic("cuda: RegisterKernel requires a named kernel")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.kernels[k.Name] = k
}

// Init initializes the driver. Every other call requires it, mirroring
// cuInit.
func (a *API) Init() Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inited = true
	return Success
}

func (a *API) checkInit() Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inited {
		return ErrNotInitialized
	}
	return Success
}

// DeviceGetCount mirrors cuDeviceGetCount: this model exposes one device.
func (a *API) DeviceGetCount() (int, Result) {
	if r := a.checkInit(); r != Success {
		return 0, r
	}
	return 1, Success
}

// DeviceGetName mirrors cuDeviceGetName.
func (a *API) DeviceGetName() (string, Result) {
	if r := a.checkInit(); r != Success {
		return "", r
	}
	return a.dev.Spec().Name, Success
}

// CtxCreate creates a context tagged with client, which attributes the
// context's device occupancy in utilization queries (the signal contention
// policies consume).
func (a *API) CtxCreate(client string) (uint64, Result) {
	if r := a.checkInit(); r != Success {
		return 0, r
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	h := a.nextCtx
	a.nextCtx++
	if client == "" {
		client = fmt.Sprintf("ctx-%d", h)
	}
	a.ctxs[h] = client
	return h, Success
}

// CtxDestroy destroys a context.
func (a *API) CtxDestroy(h uint64) Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.ctxs[h]; !ok {
		return ErrInvalidContext
	}
	delete(a.ctxs, h)
	return Success
}

// MemAlloc mirrors cuMemAlloc.
func (a *API) MemAlloc(size int64) (gpu.DevPtr, Result) {
	if r := a.checkInit(); r != Success {
		return 0, r
	}
	ptr, err := a.dev.Alloc(size)
	if err != nil {
		if size <= 0 {
			return 0, ErrInvalidValue
		}
		return 0, ErrOutOfMemory
	}
	return ptr, Success
}

// MemGetInfo mirrors cuMemGetInfo: free and total device memory. Policies
// use it to gauge memory pressure before staging large batches.
func (a *API) MemGetInfo() (free, total int64, r Result) {
	if r := a.checkInit(); r != Success {
		return 0, 0, r
	}
	total = a.dev.Spec().MemoryBytes
	return total - a.dev.MemUsed(), total, Success
}

// MemFree mirrors cuMemFree.
func (a *API) MemFree(ptr gpu.DevPtr) Result {
	if err := a.dev.Free(ptr); err != nil {
		return ErrInvalidValue
	}
	return Success
}

// MemcpyHtoD copies src into device memory at dst, charging PCIe transfer
// time on the virtual clock.
func (a *API) MemcpyHtoD(dst gpu.DevPtr, src []byte) Result {
	buf, err := a.dev.Bytes(dst)
	if err != nil {
		return ErrInvalidValue
	}
	if len(src) > len(buf) {
		return ErrInvalidValue
	}
	d := a.dev.TransferTime(int64(len(src)))
	a.dev.Clock().Advance(d)
	a.dev.ObserveCopy(int64(len(src)), d)
	copy(buf, src)
	return Success
}

// MemcpyDtoH copies device memory at src into dst, charging transfer time.
func (a *API) MemcpyDtoH(dst []byte, src gpu.DevPtr) Result {
	buf, err := a.dev.Bytes(src)
	if err != nil {
		return ErrInvalidValue
	}
	if len(dst) > len(buf) {
		return ErrInvalidValue
	}
	d := a.dev.TransferTime(int64(len(dst)))
	a.dev.Clock().Advance(d)
	a.dev.ObserveCopy(int64(len(dst)), d)
	copy(dst, buf[:len(dst)])
	return Success
}

// ModuleLoad mirrors cuModuleLoad. Kernels live in a flat namespace, so any
// path succeeds and resolves the same symbols; the handle exists to keep the
// call sequence faithful to driver-API programs.
func (a *API) ModuleLoad(path string) (uint64, Result) {
	if r := a.checkInit(); r != Success {
		return 0, r
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if h, ok := a.modules[path]; ok {
		return h, Success
	}
	h := a.nextMod
	a.nextMod++
	a.modules[path] = h
	a.modNames[h] = path
	return h, Success
}

// ModuleGetFunction resolves a kernel by name within a loaded module.
func (a *API) ModuleGetFunction(module uint64, name string) (uint64, Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.modNames[module]; !ok {
		return 0, ErrInvalidHandle
	}
	k, ok := a.kernels[name]
	if !ok {
		return 0, ErrNotFound
	}
	h := a.nextFn
	a.nextFn++
	a.fns[h] = k
	return h, Success
}

// LaunchKernel launches fn synchronously on behalf of ctx's client,
// advancing the clock by launch overhead + modeled compute time (plus any
// queueing delay behind other device users), then running the kernel body.
func (a *API) LaunchKernel(ctx, fn uint64, args []uint64) Result {
	a.mu.Lock()
	client, okCtx := a.ctxs[ctx]
	k, okFn := a.fns[fn]
	a.mu.Unlock()
	if !okCtx {
		return ErrInvalidContext
	}
	if !okFn {
		return ErrInvalidHandle
	}
	cost := a.dev.Spec().LaunchOverhead
	if k.Flops != nil {
		cost += a.dev.ComputeTime(k.Flops(args))
	}
	var launchErr error
	a.dev.Execute(client, cost, func() {
		if k.Body != nil {
			launchErr = k.Body(a.dev, args)
		}
	})
	if launchErr != nil {
		return ErrLaunchFailed
	}
	return Success
}

// CtxSynchronize mirrors cuCtxSynchronize. Execution in this model is
// synchronous, so the device is already drained; the call advances the
// clock to the device's busy horizon for programs that overlap work.
func (a *API) CtxSynchronize(ctx uint64) Result {
	a.mu.Lock()
	_, ok := a.ctxs[ctx]
	a.mu.Unlock()
	if !ok {
		return ErrInvalidContext
	}
	a.dev.Clock().AdvanceTo(a.dev.BusyUntil())
	return Success
}

// ChargeTransfer advances the clock as if n bytes crossed PCIe without
// touching memory. High-level remoted APIs (the TensorFlow-style calls of
// §4.4) use it to model their internal data movement.
func (a *API) ChargeTransfer(n int64) time.Duration {
	d := a.dev.TransferTime(n)
	a.dev.Clock().Advance(d)
	a.dev.ObserveCopy(n, d)
	return d
}
