package linnos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/core"
	"lakego/internal/cuda"
	"lakego/internal/gpu"
	"lakego/internal/nn"
	"lakego/internal/policy"
	"lakego/internal/shm"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

// ModelKind selects the network depth: the original LinnOS model or the
// augmented variants the paper evaluates ("We suffix these implementations
// with +1 and +2 ... three layers with [256,256,2] neurons and four layers
// with [256,256,256,2] neurons").
type ModelKind int

// Model variants.
const (
	Base ModelKind = iota
	Plus1
	Plus2
)

func (k ModelKind) String() string {
	switch k {
	case Base:
		return "NN"
	case Plus1:
		return "NN+1"
	case Plus2:
		return "NN+2"
	}
	return fmt.Sprintf("ModelKind(%d)", int(k))
}

// Sizes returns the layer widths for the variant.
func (k ModelKind) Sizes() []int {
	switch k {
	case Plus1:
		return []int{InputWidth, 256, 256, 2}
	case Plus2:
		return []int{InputWidth, 256, 256, 256, 2}
	default:
		return []int{InputWidth, 256, 2}
	}
}

// Kinds lists the three variants in evaluation order.
func Kinds() []ModelKind { return []ModelKind{Base, Plus1, Plus2} }

// CPUInferCost is the kernel-space CPU cost of one inference per variant.
//
// Calibration: §7.1 reports "each inference on CPU takes around 15 µs" for
// the base model. Kernel-space inference pays kernel_fpu_begin/end and runs
// without the SIMD batching user-space frameworks get, so cost grows far
// more slowly than raw FLOPs when layers are added (larger matmuls amortize
// the fixed overhead); the +1/+2 constants keep the Fig 8 crossovers at the
// reported batch sizes (8, ~3, ~2 against the LAKE async path).
func (k ModelKind) CPUInferCost() time.Duration {
	switch k {
	case Plus1:
		return 26500 * time.Nanosecond
	case Plus2:
		return 38 * time.Microsecond
	default:
		return 15 * time.Microsecond
	}
}

// MaxBatch is the largest batch a predictor can stage (Fig 8 sweeps to
// 1024).
const MaxBatch = 1024

// Predictor is one LinnOS-style latency classifier wired through LAKE:
// the trained network lives in the user-space daemon (lakeD registers it as
// a device kernel), while the kernel side stages feature batches in lakeShm
// and launches inference via the remoted driver API.
type Predictor struct {
	rt   *core.Runtime
	kind ModelKind
	// net is the serving network behind an atomic pointer: the model
	// lifecycle hot-swaps versions with SwapNet while inferences are in
	// flight. Every inference path loads the pointer exactly once per
	// batch, so a batch always completes on a single version — swaps never
	// drop or mix predictions.
	net atomic.Pointer[nn.Network]

	ctx, fn uint64
	devIn   gpu.DevPtr
	devOut  gpu.DevPtr
	inBuf   *shm.Buffer
	outBuf  *shm.Buffer

	// stageMu serializes InferLAKE: the staging buffers and device slabs
	// are one per predictor, so concurrent remoted runs must not
	// interleave.
	stageMu sync.Mutex

	// gpuLat / cpuLat are the runtime's shared per-item latency series
	// (the histograms the Fig 3 policy's observed-latency mode reads);
	// nil without telemetry.
	gpuLat, cpuLat *telemetry.Histogram
}

// kernelName is the device-kernel symbol for a variant.
func kernelName(k ModelKind) string { return fmt.Sprintf("linnos_%s", k) }

// NewPredictor builds a predictor for the trained network net (layer sizes
// must match kind) on runtime rt.
func NewPredictor(rt *core.Runtime, kind ModelKind, net *nn.Network) (*Predictor, error) {
	if err := checkSizes(kind, net); err != nil {
		return nil, err
	}
	p := &Predictor{rt: rt, kind: kind}
	p.net.Store(net)
	if tel := rt.Telemetry(); tel != nil {
		p.gpuLat = tel.Histogram(telemetry.MetricGPUItemLatency, "Observed per-item GPU-path latency (virtual ns).", telemetry.DefaultLatencyBuckets())
		p.cpuLat = tel.Histogram(telemetry.MetricCPUItemLatency, "Observed per-item CPU-path latency (virtual ns).", telemetry.DefaultLatencyBuckets())
	}
	// SwapNet only admits same-shape networks, so the FLOP count captured
	// here stays correct across hot-swaps.
	flops := net.Flops()
	rt.RegisterKernel(&cuda.Kernel{
		Name:  kernelName(kind),
		Flops: func(args []uint64) float64 { return float64(args[2]) * flops },
		Body:  p.kernelBody,
	})
	lib := rt.Lib()
	ctx, r := lib.CuCtxCreate("kernel-linnos")
	if r != cuda.Success {
		return nil, r.Err()
	}
	mod, r := lib.CuModuleLoad("linnos.cubin")
	if r != cuda.Success {
		return nil, r.Err()
	}
	fn, r := lib.CuModuleGetFunction(mod, kernelName(kind))
	if r != cuda.Success {
		return nil, r.Err()
	}
	p.ctx, p.fn = ctx, fn

	inBytes := int64(4 * InputWidth * MaxBatch)
	outBytes := int64(4 * 2 * MaxBatch)
	if p.devIn, r = lib.CuMemAlloc(inBytes); r != cuda.Success {
		return nil, r.Err()
	}
	if p.devOut, r = lib.CuMemAlloc(outBytes); r != cuda.Success {
		return nil, r.Err()
	}
	var err error
	if p.inBuf, err = rt.Region().Alloc(inBytes); err != nil {
		return nil, err
	}
	if p.outBuf, err = rt.Region().Alloc(outBytes); err != nil {
		return nil, err
	}
	return p, nil
}

// checkSizes validates a network against the variant's layer shape.
func checkSizes(kind ModelKind, net *nn.Network) error {
	want := kind.Sizes()
	got := net.Sizes()
	if len(got) != len(want) {
		return fmt.Errorf("linnos: network has %d layers, %s needs %d", len(got)-1, kind, len(want)-1)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("linnos: network sizes %v, %s needs %v", got, kind, want)
		}
	}
	return nil
}

// Kind returns the model variant.
func (p *Predictor) Kind() ModelKind { return p.kind }

// Net returns the serving network (used by training and tests).
func (p *Predictor) Net() *nn.Network { return p.net.Load() }

// SwapNet atomically replaces the serving network — the lifecycle
// manager's hot-swap hook. The new network must match the predictor's
// variant shape. Batches already in flight finish on the network they
// loaded; new batches see the replacement.
func (p *Predictor) SwapNet(net *nn.Network) error {
	// Fast path: the serving net already satisfies the variant shape, so
	// matching it is equivalent to checkSizes without the allocations.
	if !nn.SameShape(p.net.Load(), net) {
		if err := checkSizes(p.kind, net); err != nil {
			return err
		}
	}
	p.net.Store(net)
	return nil
}

// kernelBody is the device-side inference kernel: real forward passes over
// the staged batch. Args: [inPtr, outPtr, batch].
func (p *Predictor) kernelBody(dev *gpu.Device, args []uint64) error {
	if len(args) != 3 {
		return fmt.Errorf("linnos kernel: want 3 args, got %d", len(args))
	}
	batch := int(args[2])
	if batch <= 0 || batch > MaxBatch {
		return fmt.Errorf("linnos kernel: batch %d out of range", batch)
	}
	inMem, err := dev.Bytes(gpu.DevPtr(args[0]))
	if err != nil {
		return err
	}
	outMem, err := dev.Bytes(gpu.DevPtr(args[1]))
	if err != nil {
		return err
	}
	flat, err := cuda.Float32s(inMem, batch*InputWidth)
	if err != nil {
		return err
	}
	net := p.net.Load() // one load per batch: a concurrent swap cannot mix versions mid-batch
	out := make([]float32, 0, batch*2)
	for i := 0; i < batch; i++ {
		logits := net.Forward(flat[i*InputWidth : (i+1)*InputWidth])
		out = append(out, logits...)
	}
	return cuda.PutFloat32s(outMem, out)
}

// InferCPU classifies the batch on the kernel's CPU path: real forward
// passes, with the modeled kernel-space cost charged per inference.
func (p *Predictor) InferCPU(batch [][]float32) ([]bool, time.Duration) {
	net := p.net.Load() // one load per batch: swaps never mix versions mid-batch
	slow := make([]bool, len(batch))
	for i, x := range batch {
		logits := net.Forward(x)
		slow[i] = logits[1] > logits[0]
	}
	cost := time.Duration(len(batch)) * p.kind.CPUInferCost()
	p.rt.Clock().Advance(cost)
	if len(batch) > 0 {
		p.cpuLat.ObserveDuration(cost / time.Duration(len(batch)))
	}
	return slow, cost
}

// InferAuto routes the batch through pol (the Fig 3 profitability policy):
// GPU-profitable batches run the full LAKE stack, and a batch whose remoted
// path fails because lakeD is unavailable
// (CUDA_ERROR_SYSTEM_NOT_READY) completes on the kernel CPU path instead —
// an I/O completion must be predicted fast or slow either way. The returned
// Decision is the path that actually produced the predictions.
func (p *Predictor) InferAuto(batch [][]float32, pol policy.Func) ([]bool, policy.Decision, time.Duration, error) {
	dec := policy.UseGPU
	if pol != nil {
		dec = pol(len(batch))
	}
	if dec == policy.UseGPU {
		slow, d, err := p.InferLAKE(batch, true)
		if err == nil {
			return slow, policy.UseGPU, d, nil
		}
		if res, ok := cuda.AsResult(err); !ok || res != cuda.ErrNotReady {
			return nil, policy.UseGPU, 0, err
		}
	}
	slow, d := p.InferCPU(batch)
	return slow, policy.UseCPU, d, nil
}

// InferLAKE classifies the batch on the GPU through the full LAKE stack and
// returns the predictions plus the modeled inference time. With sync=true
// the input staging copy is included in the measured time ("LAKE (sync.)");
// otherwise the copy is performed before timing starts, modeling input data
// copied to the GPU asynchronously during batch formation ("LAKE").
func (p *Predictor) InferLAKE(batch [][]float32, sync bool) ([]bool, time.Duration, error) {
	n := len(batch)
	if n == 0 {
		return nil, 0, nil
	}
	if n > MaxBatch {
		return nil, 0, fmt.Errorf("linnos: batch %d exceeds max %d", n, MaxBatch)
	}
	p.stageMu.Lock()
	defer p.stageMu.Unlock()
	lib := p.rt.Lib()
	flat := make([]float32, 0, n*InputWidth)
	for _, x := range batch {
		if len(x) != InputWidth {
			return nil, 0, fmt.Errorf("linnos: feature vector width %d, want %d", len(x), InputWidth)
		}
		flat = append(flat, x...)
	}
	if err := cuda.PutFloat32s(p.inBuf.Bytes(), flat); err != nil {
		return nil, 0, err
	}
	inBytes := int64(4 * n * InputWidth)
	outBytes := int64(4 * 2 * n)

	copyIn := func() error {
		if r := lib.CuMemcpyHtoDShm(p.devIn, p.inBuf, inBytes); r != cuda.Success {
			return r.Err()
		}
		return nil
	}

	var sw vtime.Stopwatch
	if sync {
		sw = vtime.StartStopwatch(p.rt.Clock())
		if err := copyIn(); err != nil {
			return nil, 0, err
		}
	} else {
		if err := copyIn(); err != nil {
			return nil, 0, err
		}
		sw = vtime.StartStopwatch(p.rt.Clock())
	}
	if r := lib.CuLaunchKernel(p.ctx, p.fn, []uint64{uint64(p.devIn), uint64(p.devOut), uint64(n)}); r != cuda.Success {
		return nil, 0, r.Err()
	}
	if r := lib.CuMemcpyDtoHShm(p.outBuf, p.devOut, outBytes); r != cuda.Success {
		return nil, 0, r.Err()
	}
	elapsed := sw.Elapsed()
	p.gpuLat.ObserveDuration(elapsed / time.Duration(n))

	logits, err := cuda.Float32s(p.outBuf.Bytes(), n*2)
	if err != nil {
		return nil, 0, err
	}
	slow := make([]bool, n)
	for i := range slow {
		slow[i] = logits[2*i+1] > logits[2*i]
	}
	return slow, elapsed, nil
}
