package linnos

import (
	"fmt"
	"sort"
	"time"

	"lakego/internal/storage"
	"lakego/internal/trace"
)

// replayWithMonitor is the modulated replay loop: per read, the monitor
// decides between ML-driven reissue (CPU model path) and the kernel default.
func replayWithMonitor(pred *Predictor, w Workload, cfg ReplayConfig, monitor *BenefitMonitor) (Result, error) {
	if pred == nil {
		return Result{}, fmt.Errorf("linnos: automl replay requires a predictor")
	}
	if cfg.InferLanes <= 0 {
		cfg.InferLanes = 1
	}
	if cfg.ReissuePenalty <= 0 {
		cfg.ReissuePenalty = 5 * time.Microsecond
	}
	nDev := len(w.PerDevice)
	if nDev < 2 {
		return Result{}, fmt.Errorf("linnos: workload needs >= 2 devices, got %d", nDev)
	}
	devs := make([]*storage.Device, nDev)
	lanes := make([][]time.Duration, nDev)
	for i := range devs {
		devs[i] = storage.NewDevice(storage.DefaultConfig(fmt.Sprintf("nvme%d", i), cfg.Seed+int64(i)))
		lanes[i] = make([]time.Duration, cfg.InferLanes)
	}
	array, err := storage.NewArray(devs...)
	if err != nil {
		return Result{}, err
	}

	type event struct {
		req trace.Request
		dev int
	}
	var events []event
	for d, reqs := range w.PerDevice {
		for _, r := range reqs {
			events = append(events, event{req: r, dev: d})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].req.Arrival < events[j].req.Arrival })

	var (
		readLats  []time.Duration
		reissued  int
		cpuInfers int
	)
	for _, ev := range events {
		now := ev.req.Arrival
		dev := devs[ev.dev]
		if ev.req.Write {
			dev.Submit(now, ev.req.Size, true)
			continue
		}
		if !monitor.NextUseML() {
			c := dev.Submit(now, ev.req.Size, false)
			lat := c.Latency
			readLats = append(readLats, lat)
			monitor.Record(false, lat)
			continue
		}
		// ML path: per-I/O CPU inference on the issuing core's lane.
		x := DeviceFeatures(dev, now)
		lane := 0
		for i := 1; i < len(lanes[ev.dev]); i++ {
			if lanes[ev.dev][i] < lanes[ev.dev][lane] {
				lane = i
			}
		}
		start := now
		if lanes[ev.dev][lane] > start {
			start = lanes[ev.dev][lane]
		}
		done := start + pred.Kind().CPUInferCost()
		lanes[ev.dev][lane] = done
		cpuInfers++
		adder := done - now
		logits := pred.Net().Forward(x)
		target := dev
		if logits[1] > logits[0] {
			target = array.ReissueTarget(dev)
			adder += cfg.ReissuePenalty
			reissued++
		}
		c := target.Submit(now+adder, ev.req.Size, false)
		lat := c.FinishAt - now
		readLats = append(readLats, lat)
		monitor.Record(true, lat)
	}

	res := Result{
		Workload: w.Name,
		Config:   fmt.Sprintf("%s auto-ml", pred.Kind()),
		Reads:    len(readLats),
		Reissued: reissued, CPUInferences: cpuInfers,
	}
	if len(readLats) > 0 {
		var sum time.Duration
		for _, l := range readLats {
			sum += l
		}
		res.AvgRead = sum / time.Duration(len(readLats))
		sorted := append([]time.Duration(nil), readLats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		res.P95Read = sorted[len(sorted)*95/100]
	}
	return res, nil
}
