package linnos

import (
	"time"
)

// This file implements the extension the paper proposes as future work in
// §7.1: "given that even the original CPU-based model actually harms
// performance when applications do not stress the device, some mechanism to
// modulate the use of ML even on the CPU is a likely necessity. We believe
// the same framework LAKE provides for managing contention and selecting
// between CPU and GPU can be used to implement policies that avoid using ML
// when it does not help".
//
// BenefitMonitor is that policy: an A/B sampling controller. While ML is
// enabled, a sparse control group of reads bypasses prediction; while
// disabled, a sparse probe group keeps exercising it. The two groups'
// latencies are compared as aged arithmetic means: storage latency is
// heavy-tailed and ML's benefit is concentrated in rare stall windows, so
// the comparison uses the same statistic the operator cares about (the
// mean, as in Fig 7) accumulated over whole epochs, with exponential
// forgetting between epochs so regime changes are still tracked.

// BenefitConfig tunes the monitor.
type BenefitConfig struct {
	// ControlEvery routes every Nth read to the opposite treatment for
	// measurement.
	ControlEvery int
	// Margin is the hysteresis band: ML turns off only when its mean is
	// at least Margin fraction worse than baseline, and on only when at
	// least Margin better.
	Margin float64
	// MinSamples is the minimum effective sample count per group before
	// a decision.
	MinSamples int
	// EvalEvery evaluates the decision (and ages the accumulators by
	// half) once per this many recorded reads.
	EvalEvery int
	// ConfirmEvals requires the comparison to point the same way for
	// this many consecutive evaluations before flipping, suppressing
	// chatter from heavy-tailed epoch noise.
	ConfirmEvals int
}

// DefaultBenefitConfig returns the evaluation settings.
func DefaultBenefitConfig() BenefitConfig {
	return BenefitConfig{ControlEvery: 8, Margin: 0.05, MinSamples: 48, EvalEvery: 512, ConfirmEvals: 2}
}

// BenefitMonitor decides, online, whether ML-driven reissue helps.
type BenefitMonitor struct {
	cfg BenefitConfig

	sumML, sumCtrl float64 // aged latency sums (µs)
	nML, nCtrl     float64 // aged sample counts

	enabled  bool
	streak   int // consecutive evals pointing against the current decision
	recorded int
	idx      int
	flips    int
	mlUsed   int
	totalIOs int
}

// NewBenefitMonitor starts with ML enabled (optimistic, like deploying the
// predictor and letting measurement veto it).
func NewBenefitMonitor(cfg BenefitConfig) *BenefitMonitor {
	if cfg.ControlEvery < 2 {
		cfg.ControlEvery = 8
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 48
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 512
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 0.05
	}
	if cfg.ConfirmEvals <= 0 {
		cfg.ConfirmEvals = 2
	}
	return &BenefitMonitor{cfg: cfg, enabled: true}
}

// Enabled reports the current decision.
func (m *BenefitMonitor) Enabled() bool { return m.enabled }

// Flips reports how many times the decision changed.
func (m *BenefitMonitor) Flips() int { return m.flips }

// MLFraction reports the fraction of reads that took the ML path.
func (m *BenefitMonitor) MLFraction() float64 {
	if m.totalIOs == 0 {
		return 0
	}
	return float64(m.mlUsed) / float64(m.totalIOs)
}

// NextUseML returns whether the next read should take the ML path. The
// majority follows the current decision; every ControlEvery-th read takes
// the opposite treatment to keep both estimates alive.
func (m *BenefitMonitor) NextUseML() bool {
	m.idx++
	m.totalIOs++
	useML := m.enabled
	if m.idx%m.cfg.ControlEvery == 0 {
		useML = !useML
	}
	if useML {
		m.mlUsed++
	}
	return useML
}

// Record feeds back one read's latency under the treatment it received.
// Decisions happen once per EvalEvery records, on aged group means.
func (m *BenefitMonitor) Record(usedML bool, lat time.Duration) {
	v := float64(lat.Microseconds())
	if usedML {
		m.sumML += v
		m.nML++
	} else {
		m.sumCtrl += v
		m.nCtrl++
	}
	m.recorded++
	if m.recorded%m.cfg.EvalEvery != 0 {
		return
	}
	if m.nML >= float64(m.cfg.MinSamples) && m.nCtrl >= float64(m.cfg.MinSamples) {
		mlMean := m.sumML / m.nML
		ctrlMean := m.sumCtrl / m.nCtrl
		against := (m.enabled && mlMean > ctrlMean*(1+m.cfg.Margin)) ||
			(!m.enabled && mlMean < ctrlMean*(1-m.cfg.Margin))
		if against {
			m.streak++
			if m.streak >= m.cfg.ConfirmEvals {
				m.enabled = !m.enabled
				m.flips++
				m.streak = 0
			}
		} else {
			m.streak = 0
		}
	}
	// Age the accumulators: old epochs decay geometrically so regime
	// changes surface within a few epochs.
	m.sumML /= 2
	m.nML /= 2
	m.sumCtrl /= 2
	m.nCtrl /= 2
}

// AutoMLResult extends a replay result with modulation statistics.
type AutoMLResult struct {
	Result
	// MLFraction is the share of reads that took the ML path.
	MLFraction float64
	// FinalEnabled is the monitor's decision at the end of the replay.
	FinalEnabled bool
	// Flips counts decision changes.
	Flips int
}

// ReplayAutoML replays a workload with the benefit-aware modulation policy
// wrapped around the CPU model path: reads take ML-driven reissue only while
// the monitor believes it helps.
func ReplayAutoML(pred *Predictor, w Workload, cfg ReplayConfig, bcfg BenefitConfig) (AutoMLResult, error) {
	monitor := NewBenefitMonitor(bcfg)
	res, err := replayWithMonitor(pred, w, cfg, monitor)
	if err != nil {
		return AutoMLResult{}, err
	}
	return AutoMLResult{
		Result:       res,
		MLFraction:   monitor.MLFraction(),
		FinalEnabled: monitor.Enabled(),
		Flips:        monitor.Flips(),
	}, nil
}
