package linnos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"lakego/internal/nn"
	"lakego/internal/storage"
	"lakego/internal/trace"
)

// Sample is one labeled training record: device state at I/O issue and
// whether the I/O turned out slow.
type Sample struct {
	X    []float32
	Slow bool
}

// CollectSamples profiles a trace against a fresh device and labels each
// read with whether its latency exceeded the returned threshold (the
// inflection-point style cutoff LinnOS derives from the latency CDF; this
// reproduction uses the 80th percentile).
func CollectSamples(cfg storage.DeviceConfig, reqs []trace.Request) ([]Sample, time.Duration) {
	dev := storage.NewDevice(cfg)
	type rec struct {
		x   []float32
		lat time.Duration
	}
	var recs []rec
	for _, r := range reqs {
		if r.Write {
			dev.Submit(r.Arrival, r.Size, true)
			continue
		}
		x := DeviceFeatures(dev, r.Arrival)
		c := dev.Submit(r.Arrival, r.Size, false)
		recs = append(recs, rec{x: x, lat: c.Latency})
	}
	if len(recs) == 0 {
		return nil, 0
	}
	lats := make([]time.Duration, len(recs))
	for i, r := range recs {
		lats[i] = r.lat
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	threshold := lats[len(lats)*80/100]
	samples := make([]Sample, len(recs))
	for i, r := range recs {
		samples[i] = Sample{X: r.x, Slow: r.lat > threshold}
	}
	return samples, threshold
}

// Train fits a fresh network of the given kind to the samples with
// minibatch SGD and returns it with its training-set accuracy.
func Train(kind ModelKind, seed int64, samples []Sample, epochs int, lr float32) (*nn.Network, float64, error) {
	if len(samples) == 0 {
		return nil, 0, fmt.Errorf("linnos: no training samples")
	}
	net := nn.New(seed, kind.Sizes()...)
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	const minibatch = 64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for at := 0; at < len(idx); at += minibatch {
			end := at + minibatch
			if end > len(idx) {
				end = len(idx)
			}
			xs := make([][]float32, 0, end-at)
			labels := make([]int, 0, end-at)
			for _, i := range idx[at:end] {
				xs = append(xs, samples[i].X)
				label := 0
				if samples[i].Slow {
					label = 1
				}
				labels = append(labels, label)
			}
			if _, err := net.TrainBatch(xs, labels, lr); err != nil {
				return nil, 0, err
			}
		}
	}
	correct := 0
	for _, s := range samples {
		pred := net.Predict(s.X) == 1
		if pred == s.Slow {
			correct++
		}
	}
	return net, float64(correct) / float64(len(samples)), nil
}

// trainedCache memoizes trained networks per kind: the evaluation sweeps
// train each variant once and reuse it across workloads, like the artifact's
// offline training step.
var trainedCache struct {
	sync.Mutex
	nets map[ModelKind]*nn.Network
}

// TrainedNetwork returns a network of the given kind trained on a standard
// profiling corpus (all three Table 4 traces stressing a default device).
// Results are cached per kind for the life of the process.
func TrainedNetwork(kind ModelKind) (*nn.Network, error) {
	trainedCache.Lock()
	defer trainedCache.Unlock()
	if trainedCache.nets == nil {
		trainedCache.nets = make(map[ModelKind]*nn.Network)
	}
	if net, ok := trainedCache.nets[kind]; ok {
		return net, nil
	}
	var samples []Sample
	for i, p := range trace.Profiles() {
		// Rerate to stress the device so slow I/Os actually occur.
		reqs := p.Rerate(3).Generate(int64(100+i), 4000)
		s, _ := CollectSamples(storage.DefaultConfig("train", int64(i+1)), reqs)
		samples = append(samples, s...)
	}
	net, _, err := Train(kind, 7, samples, 3, 0.05)
	if err != nil {
		return nil, err
	}
	trainedCache.nets[kind] = net
	return net, nil
}
