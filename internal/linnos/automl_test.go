package linnos

import (
	"testing"
	"time"

	"lakego/internal/nn"
	"lakego/internal/trace"
)

func TestBenefitMonitorDefaults(t *testing.T) {
	m := NewBenefitMonitor(BenefitConfig{})
	if !m.Enabled() {
		t.Fatal("monitor must start optimistic")
	}
	if m.MLFraction() != 0 {
		t.Fatal("fraction nonzero before traffic")
	}
}

func TestBenefitMonitorControlSampling(t *testing.T) {
	m := NewBenefitMonitor(BenefitConfig{ControlEvery: 4, MinSamples: 1000000, EvalEvery: 1 << 20})
	ml, ctrl := 0, 0
	for i := 0; i < 400; i++ {
		if m.NextUseML() {
			ml++
		} else {
			ctrl++
		}
	}
	if ctrl != 100 {
		t.Fatalf("control group = %d of 400, want 100 (every 4th)", ctrl)
	}
	if got := m.MLFraction(); got < 0.74 || got > 0.76 {
		t.Fatalf("MLFraction = %v, want 0.75", got)
	}
	_ = ml
}

func TestBenefitMonitorDisablesWhenMLHurts(t *testing.T) {
	m := NewBenefitMonitor(BenefitConfig{ControlEvery: 2, Margin: 0.05, MinSamples: 8, EvalEvery: 32})
	for i := 0; i < 200; i++ {
		useML := m.NextUseML()
		lat := 100 * time.Microsecond
		if useML {
			lat = 130 * time.Microsecond // ML consistently 30% worse
		}
		m.Record(useML, lat)
	}
	if m.Enabled() {
		t.Fatal("monitor kept harmful ML enabled")
	}
	if m.Flips() == 0 {
		t.Fatal("no decision flip recorded")
	}
}

func TestBenefitMonitorReEnablesWhenRegimeChanges(t *testing.T) {
	m := NewBenefitMonitor(BenefitConfig{ControlEvery: 2, Margin: 0.05, MinSamples: 8, EvalEvery: 32})
	// Phase 1: ML hurts.
	for i := 0; i < 100; i++ {
		useML := m.NextUseML()
		lat := 100 * time.Microsecond
		if useML {
			lat = 150 * time.Microsecond
		}
		m.Record(useML, lat)
	}
	if m.Enabled() {
		t.Fatal("phase 1: ML should be off")
	}
	// Phase 2: the device starts stalling; ML dodges it.
	for i := 0; i < 300; i++ {
		useML := m.NextUseML()
		lat := 800 * time.Microsecond
		if useML {
			lat = 200 * time.Microsecond
		}
		m.Record(useML, lat)
	}
	if !m.Enabled() {
		t.Fatal("phase 2: monitor failed to re-enable beneficial ML")
	}
}

// The §7.1 future-work behaviour end to end: on a single-trace workload
// (where ML cannot help) the modulated replay approaches the baseline and
// ends with ML disabled; on the stressed mixed workload it keeps ML on and
// beats the baseline.
func TestAutoMLModulatesEndToEnd(t *testing.T) {
	rt := boot(t)
	net, err := TrainedNetwork(Base)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewPredictor(rt, Base, net)
	if err != nil {
		t.Fatal(err)
	}

	single := SingleTraceWorkload(trace.Azure(), 3, 3000, 11)
	base, err := Replay(rt, nil, single, DefaultReplayConfig(ModeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	alwaysML, err := Replay(rt, pred, single, DefaultReplayConfig(ModeCPU))
	if err != nil {
		t.Fatal(err)
	}
	auto, err := ReplayAutoML(pred, single, DefaultReplayConfig(ModeCPU), DefaultBenefitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if auto.FinalEnabled {
		t.Fatalf("single trace: ML still enabled at end (fraction %.2f)", auto.MLFraction)
	}
	if auto.MLFraction > 0.6 {
		t.Fatalf("single trace: ML used for %.0f%% of reads, want mostly off", auto.MLFraction*100)
	}
	// Modulation must recover most of the gap between always-ML and baseline.
	if auto.AvgRead >= alwaysML.AvgRead {
		t.Fatalf("modulated %v not better than always-ML %v on single trace",
			auto.AvgRead, alwaysML.AvgRead)
	}
	slack := base.AvgRead + (alwaysML.AvgRead-base.AvgRead)*3/4
	if auto.AvgRead > slack {
		t.Fatalf("modulated %v recovered too little (baseline %v, always-ML %v)",
			auto.AvgRead, base.AvgRead, alwaysML.AvgRead)
	}

	mixed := MixedWorkload("Mixed+", 2500, 31, 3)
	baseM, err := Replay(rt, nil, mixed, DefaultReplayConfig(ModeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	autoM, err := ReplayAutoML(pred, mixed, DefaultReplayConfig(ModeCPU), DefaultBenefitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !autoM.FinalEnabled {
		t.Fatal("mixed+: beneficial ML was disabled")
	}
	if autoM.MLFraction < 0.5 {
		t.Fatalf("mixed+: ML used for only %.0f%% of reads", autoM.MLFraction*100)
	}
	if autoM.AvgRead >= baseM.AvgRead {
		t.Fatalf("mixed+: modulated %v did not beat baseline %v", autoM.AvgRead, baseM.AvgRead)
	}
}

func TestReplayAutoMLValidation(t *testing.T) {
	if _, err := ReplayAutoML(nil, Workload{}, DefaultReplayConfig(ModeCPU), DefaultBenefitConfig()); err == nil {
		t.Fatal("nil predictor accepted")
	}
	rt := boot(t)
	pred, err := NewPredictor(rt, Base, mustNet(t))
	if err != nil {
		t.Fatal(err)
	}
	one := Workload{Name: "one", PerDevice: [][]trace.Request{trace.Azure().Generate(1, 10)}}
	if _, err := ReplayAutoML(pred, one, DefaultReplayConfig(ModeCPU), DefaultBenefitConfig()); err == nil {
		t.Fatal("single-device workload accepted")
	}
}

func mustNet(t *testing.T) *nn.Network {
	t.Helper()
	net, err := TrainedNetwork(Base)
	if err != nil {
		t.Fatal(err)
	}
	return net
}
