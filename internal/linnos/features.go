// Package linnos reproduces the paper's end-to-end I/O latency prediction
// study (§7.1): LinnOS's light neural network ported to a LAKE-powered
// kernel module, the augmented +1/+2 layer variants, batch-vs-CPU
// profitability (Fig 8), and full trace replays against the NVMe array with
// reissue-on-slow (Fig 7).
package linnos

import (
	"time"

	"lakego/internal/storage"
)

// InputWidth is the LinnOS feature vector width: the number of pending
// I/Os encoded as 3 decimal digits plus the completion latency of the 4
// most recent I/Os, each as 7 decimal digits (3 + 4*7 = 31).
const InputWidth = 31

const (
	pendingDigits = 3
	latencyCount  = 4
	latencyDigits = 7
)

// FeatureVector encodes device state at I/O issue the way LinnOS feeds its
// network: decimal-digit encodings of the pending-I/O count and recent
// latencies, most recent latency first.
func FeatureVector(pending int, recent []time.Duration) []float32 {
	v := make([]float32, InputWidth)
	encodeDigits(v[:pendingDigits], int64(pending))
	for i := 0; i < latencyCount; i++ {
		var lat int64
		if i < len(recent) {
			lat = recent[i].Microseconds()
		}
		off := pendingDigits + i*latencyDigits
		encodeDigits(v[off:off+latencyDigits], lat)
	}
	return v
}

// encodeDigits writes v's decimal digits most-significant first, saturating
// at the field width.
func encodeDigits(dst []float32, v int64) {
	if v < 0 {
		v = 0
	}
	max := int64(1)
	for range dst {
		max *= 10
	}
	if v >= max {
		v = max - 1
	}
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = float32(v % 10)
		v /= 10
	}
}

// DeviceFeatures builds the feature vector from a live device's state, the
// capture sites of Listings 4 and 5.
func DeviceFeatures(d *storage.Device, now time.Duration) []float32 {
	return FeatureVector(d.Pending(now), d.RecentLatencies())
}
