package linnos

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"lakego/internal/core"
	"lakego/internal/features"
	"lakego/internal/storage"
	"lakego/internal/trace"
)

// Mode selects the Fig 7 configuration for a replay.
type Mode int

// Replay modes: the kernel's default behaviour (no rerouting), LinnOS's
// CPU-only model, or the LAKE port that batches inference and modulates
// between CPU and GPU.
const (
	ModeBaseline Mode = iota
	ModeCPU
	ModeLAKE
)

func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeCPU:
		return "cpu"
	case ModeLAKE:
		return "LAKE"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Workload is a set of traces, one per device of the array (§7.1: "Our
// mixed workload replays each trace with a different default target NVMe").
type Workload struct {
	Name      string
	PerDevice [][]trace.Request
}

// SingleTraceWorkload replays the same trace on every device — the original
// LinnOS setting ("replaying the same trace on each NVMe"). Identical
// traffic means identical write-pressure GC schedules, so all devices stall
// together and rejecting a slow I/O has nowhere better to go — the reason
// the paper finds "no benefit in rerouting I/Os" for these workloads.
func SingleTraceWorkload(p trace.Profile, devices, n int, seed int64) Workload {
	w := Workload{Name: p.Name + "*"}
	reqs := p.Generate(seed, n)
	for d := 0; d < devices; d++ {
		w.PerDevice = append(w.PerDevice, reqs)
	}
	return w
}

// MixedWorkload replays Azure, Bing-I and Cosmos on devices 0, 1, 2,
// rerated by the given factor (1 for Mixed, 3 for Mixed+).
func MixedWorkload(name string, n int, seed int64, rerate float64) Workload {
	w := Workload{Name: name}
	for i, p := range trace.Profiles() {
		w.PerDevice = append(w.PerDevice, p.Rerate(rerate).Generate(seed+int64(i), n))
	}
	return w
}

// ReplayConfig tunes the replay engine.
type ReplayConfig struct {
	Mode Mode
	// Quantum bounds batch formation time (Listing 4's "quantum passed").
	Quantum time.Duration
	// BatchCap dispatches a batch early when it fills ("batch > thresh").
	BatchCap int
	// GPUBatchThreshold is the policy's profitability cutoff: when the
	// recent arrival rate predicts fewer I/Os per quantum, inference
	// falls back to the per-I/O CPU path. Zero selects the model's
	// measured crossover.
	GPUBatchThreshold int
	// InferLanes models how many cores concurrently run per-I/O CPU
	// inference (I/O issue is spread across the submitting cores).
	InferLanes int
	// ReissuePenalty is the cost of revoking and reissuing an I/O.
	ReissuePenalty time.Duration
	// Seed drives device randomness.
	Seed int64
}

// DefaultReplayConfig returns the evaluation's settings.
func DefaultReplayConfig(mode Mode) ReplayConfig {
	return ReplayConfig{
		Mode:     mode,
		Quantum:  100 * time.Microsecond,
		BatchCap: 32,
		// LinnOS runs inference synchronously in the submission path: one
		// core's worth of inference capacity per device.
		InferLanes:     1,
		ReissuePenalty: 5 * time.Microsecond,
		Seed:           1,
	}
}

// crossover is the measured Fig 8 batch-size crossover per model variant
// (Table 3 reports 8 for the base model; §7.1 reports ~3 and ~2 for the
// augmented ones).
func crossover(k ModelKind) int {
	switch k {
	case Plus1:
		return 4
	case Plus2:
		return 2
	default:
		return 8
	}
}

// Result summarizes one replay.
type Result struct {
	Workload string
	Config   string
	Reads    int
	AvgRead  time.Duration
	P95Read  time.Duration
	Reissued int
	// GPUBatches and CPUInferences split inference work by target.
	GPUBatches    int
	CPUInferences int
}

// pendingIO is one read I/O waiting in the global inference batch.
type pendingIO struct {
	arrival time.Duration
	size    int64
	dev     int
	x       []float32
}

// devState carries per-device replay state.
type devState struct {
	dev      *storage.Device
	reg      *features.Registry
	lanes    []time.Duration // per-core CPU inference availability
	ewmaGap  time.Duration
	lastArr  time.Duration
	haveLast bool
}

// Replay runs a workload through the array under the given configuration.
// pred may be nil for ModeBaseline.
func Replay(rt *core.Runtime, pred *Predictor, w Workload, cfg ReplayConfig) (Result, error) {
	if cfg.Mode != ModeBaseline && pred == nil {
		return Result{}, fmt.Errorf("linnos: mode %s requires a predictor", cfg.Mode)
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 100 * time.Microsecond
	}
	if cfg.BatchCap <= 0 || cfg.BatchCap > MaxBatch {
		cfg.BatchCap = 32
	}
	if cfg.InferLanes <= 0 {
		cfg.InferLanes = 2
	}
	if cfg.GPUBatchThreshold <= 0 && pred != nil {
		cfg.GPUBatchThreshold = crossover(pred.Kind())
	}

	// Fresh devices and per-device feature registries (Listing 4: "Each
	// block device needs its own feature registry").
	nDev := len(w.PerDevice)
	if nDev < 2 {
		return Result{}, fmt.Errorf("linnos: workload needs >= 2 devices, got %d", nDev)
	}
	states := make([]*devState, nDev)
	devs := make([]*storage.Device, nDev)
	schema := features.Schema{
		{Key: "pend_ios", Size: 8, Entries: 1},
		{Key: "io_latency", Size: 8, Entries: latencyCount},
	}
	sys := "bio_latency_prediction"
	for i := range states {
		name := fmt.Sprintf("nvme%d", i)
		dev := storage.NewDevice(storage.DefaultConfig(name, cfg.Seed+int64(i)))
		reg, err := rt.Features().CreateRegistry(fmt.Sprintf("%s-%d", name, cfg.Seed), sys, schema, MaxBatch)
		if err != nil {
			return Result{}, err
		}
		states[i] = &devState{dev: dev, reg: reg, lanes: make([]time.Duration, cfg.InferLanes)}
		devs[i] = dev
	}
	defer func() {
		for i := range states {
			rt.Features().DestroyRegistry(fmt.Sprintf("nvme%d-%d", i, cfg.Seed), sys)
		}
	}()
	array, err := storage.NewArray(devs...)
	if err != nil {
		return Result{}, err
	}

	// Merge arrivals across devices.
	type event struct {
		req trace.Request
		dev int
	}
	var events []event
	for d, reqs := range w.PerDevice {
		for _, r := range reqs {
			events = append(events, event{req: r, dev: d})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].req.Arrival < events[j].req.Arrival })

	var (
		readLats  []time.Duration
		reissued  int
		gpuBatch  int
		cpuInfers int
		// Global inference batch across devices: the GPU classifier is
		// one resource; aggregating arrivals is what makes batches large
		// enough to amortize offload ("LAKE performs better with high
		// IOPS workloads ... due to increased batching").
		queue   []pendingIO
		firstAt time.Duration
	)

	act := func(p pendingIO, slow bool, adder time.Duration) {
		target := states[p.dev].dev
		if slow {
			target = array.ReissueTarget(target)
			adder += cfg.ReissuePenalty
			reissued++
		}
		c := target.Submit(p.arrival+adder, p.size, false)
		readLats = append(readLats, c.FinishAt-p.arrival)
	}

	// inferCPUOne runs per-I/O inference on the issuing device's least
	// busy core; at high IOPS the lanes saturate and queueing delay makes
	// rich models impractical on the CPU (§7.1's case for acceleration).
	inferCPUOne := func(p pendingIO) {
		s := states[p.dev]
		lane := 0
		for i := 1; i < len(s.lanes); i++ {
			if s.lanes[i] < s.lanes[lane] {
				lane = i
			}
		}
		start := p.arrival
		if s.lanes[lane] > start {
			start = s.lanes[lane]
		}
		done := start + pred.Kind().CPUInferCost()
		s.lanes[lane] = done
		cpuInfers++
		logits := pred.Net().Forward(p.x)
		act(p, logits[1] > logits[0], done-p.arrival)
	}

	flush := func() error {
		if len(queue) == 0 {
			return nil
		}
		dispatchAt := firstAt + cfg.Quantum
		if last := queue[len(queue)-1].arrival; last > dispatchAt {
			dispatchAt = last
		}
		xs := make([][]float32, len(queue))
		for i := range queue {
			xs[i] = queue[i].x
		}
		slow, gpuDur, err := pred.InferLAKE(xs, true)
		if err != nil {
			return err
		}
		gpuBatch++
		for i, p := range queue {
			wait := dispatchAt - p.arrival
			if wait < 0 {
				wait = 0
			}
			act(p, slow[i], wait+gpuDur)
		}
		queue = queue[:0]
		return nil
	}

	// capture records the I/O's device state in the feature registry
	// (Listing 4) and returns the decoded model input.
	capture := func(s *devState, now time.Duration) []float32 {
		s.reg.BeginCapture(now)
		pend := int64(s.dev.Pending(now))
		s.reg.CaptureFeature("pend_ios", u64le(pend))
		var lat0 int64
		if rl := s.dev.RecentLatencies(); len(rl) > 0 {
			lat0 = int64(rl[0])
		}
		s.reg.CaptureFeature("io_latency", u64le(lat0))
		v := s.reg.CommitCapture(now)
		if s.reg.Len() >= s.reg.Window() {
			s.reg.Truncate(features.NullTS)
		}
		return vectorOf(v)
	}

	for _, ev := range events {
		now := ev.req.Arrival
		// Quantum-expiry dispatch (Listing 4 line 11).
		if cfg.Mode == ModeLAKE && len(queue) > 0 && now >= firstAt+cfg.Quantum {
			if err := flush(); err != nil {
				return Result{}, err
			}
		}
		s := states[ev.dev]
		if ev.req.Write {
			s.dev.Submit(now, ev.req.Size, true)
			continue
		}
		switch cfg.Mode {
		case ModeBaseline:
			c := s.dev.Submit(now, ev.req.Size, false)
			readLats = append(readLats, c.Latency)

		case ModeCPU:
			x := capture(s, now)
			inferCPUOne(pendingIO{arrival: now, size: ev.req.Size, dev: ev.dev, x: x})

		case ModeLAKE:
			// Track the global arrival rate for the batch-size policy.
			if s.haveLast {
				gap := now - s.lastArr
				if s.ewmaGap == 0 {
					s.ewmaGap = gap
				} else {
					s.ewmaGap = (s.ewmaGap*7 + gap) / 8
				}
			}
			s.lastArr, s.haveLast = now, true

			x := capture(s, now)
			p := pendingIO{arrival: now, size: ev.req.Size, dev: ev.dev, x: x}

			// Predicted global batch from per-device rates.
			var rate float64 // arrivals per second across devices
			for _, st := range states {
				if st.haveLast && st.ewmaGap > 0 {
					rate += 1 / st.ewmaGap.Seconds()
				}
			}
			predictedBatch := int(rate * cfg.Quantum.Seconds())
			if predictedBatch < cfg.GPUBatchThreshold {
				// Policy: too few I/Os to amortize the GPU; CPU path.
				inferCPUOne(p)
				continue
			}
			if len(queue) == 0 {
				firstAt = now
			}
			queue = append(queue, p)
			if len(queue) >= cfg.BatchCap {
				if err := flush(); err != nil {
					return Result{}, err
				}
			}
		}
	}
	if cfg.Mode == ModeLAKE {
		if err := flush(); err != nil {
			return Result{}, err
		}
	}

	res := Result{Workload: w.Name, Config: cfg.Mode.String(), Reads: len(readLats),
		Reissued: reissued, GPUBatches: gpuBatch, CPUInferences: cpuInfers}
	if pred != nil {
		res.Config = fmt.Sprintf("%s %s", pred.Kind(), cfg.Mode)
	}
	if len(readLats) > 0 {
		var sum time.Duration
		for _, l := range readLats {
			sum += l
		}
		res.AvgRead = sum / time.Duration(len(readLats))
		sorted := append([]time.Duration(nil), readLats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		res.P95Read = sorted[len(sorted)*95/100]
	}
	return res, nil
}

// vectorOf decodes a committed feature vector back into model input.
func vectorOf(v features.Vector) []float32 {
	pendRaw := v.Values["pend_ios"]
	latRaw := v.Values["io_latency"]
	pendingCnt := int(int64(binary.LittleEndian.Uint64(pendRaw)))
	recent := make([]time.Duration, latencyCount)
	for i := 0; i < latencyCount; i++ {
		recent[i] = time.Duration(int64(binary.LittleEndian.Uint64(latRaw[8*i:])))
	}
	return FeatureVector(pendingCnt, recent)
}

func u64le(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}
