package linnos

import (
	"testing"
	"time"

	"lakego/internal/batcher"
	"lakego/internal/nn"
)

// TestBatchedRoutingMatchesUnbatched: the batcher opt-in path must produce
// the same predictions as both unbatched paths, request by request.
func TestBatchedRoutingMatchesUnbatched(t *testing.T) {
	rt := boot(t)
	pred, err := NewPredictor(rt, Base, nn.New(3, Base.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	cfg := batcher.DefaultConfig()
	cfg.Linger = 0
	b := rt.NewBatcher(cfg)
	if err := pred.EnableBatching(b); err != nil {
		t.Fatal(err)
	}
	c := b.Client("queue-0")

	batch := make([][]float32, 16)
	for i := range batch {
		batch[i] = FeatureVector(i*7, []time.Duration{time.Duration(i) * 300 * time.Microsecond})
	}
	batched, err := pred.InferBatched(c, batch)
	if err != nil {
		t.Fatal(err)
	}
	cpuPred, _ := pred.InferCPU(batch)
	lakePred, _, err := pred.InferLAKE(batch, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if batched[i] != cpuPred[i] || batched[i] != lakePred[i] {
			t.Fatalf("prediction %d differs: batched=%v cpu=%v lake=%v",
				i, batched[i], cpuPred[i], lakePred[i])
		}
	}
	st := b.Stats()
	if st.Requests != 1 || st.Flushes == 0 {
		t.Fatalf("unexpected batcher stats: %+v", st)
	}
}
