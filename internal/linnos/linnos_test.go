package linnos

import (
	"testing"
	"time"

	"lakego/internal/core"
	"lakego/internal/features"
	"lakego/internal/nn"
	"lakego/internal/policy"
	"lakego/internal/storage"
	"lakego/internal/trace"
)

func boot(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestFeatureVectorEncoding(t *testing.T) {
	v := FeatureVector(42, []time.Duration{1234 * time.Microsecond})
	if len(v) != InputWidth {
		t.Fatalf("width = %d, want %d", len(v), InputWidth)
	}
	// Pending 42 -> digits 0,4,2.
	if v[0] != 0 || v[1] != 4 || v[2] != 2 {
		t.Fatalf("pending digits = %v", v[:3])
	}
	// First latency 1234µs -> 7 digits 0001234.
	want := []float32{0, 0, 0, 1, 2, 3, 4}
	for i, w := range want {
		if v[3+i] != w {
			t.Fatalf("latency digits = %v, want %v", v[3:10], want)
		}
	}
	// Missing latencies encode as zero.
	for i := 10; i < InputWidth; i++ {
		if v[i] != 0 {
			t.Fatalf("slot %d = %v, want 0", i, v[i])
		}
	}
}

func TestFeatureVectorSaturates(t *testing.T) {
	v := FeatureVector(5000, []time.Duration{time.Hour})
	if v[0] != 9 || v[1] != 9 || v[2] != 9 {
		t.Fatalf("pending saturation = %v", v[:3])
	}
	for i := 3; i < 10; i++ {
		if v[i] != 9 {
			t.Fatalf("latency saturation = %v", v[3:10])
		}
	}
	// Negative values clamp to zero.
	v = FeatureVector(-5, []time.Duration{-time.Second})
	for i := 0; i < 10; i++ {
		if v[i] != 0 {
			t.Fatalf("negative clamp = %v", v[:10])
		}
	}
}

func TestModelKindSizes(t *testing.T) {
	if got := Base.Sizes(); len(got) != 3 || got[1] != 256 {
		t.Fatalf("Base.Sizes = %v", got)
	}
	if got := Plus1.Sizes(); len(got) != 4 {
		t.Fatalf("Plus1.Sizes = %v", got)
	}
	if got := Plus2.Sizes(); len(got) != 5 {
		t.Fatalf("Plus2.Sizes = %v", got)
	}
	if Base.String() != "NN" || Plus1.String() != "NN+1" || Plus2.String() != "NN+2" {
		t.Fatal("kind strings wrong")
	}
	if len(Kinds()) != 3 {
		t.Fatal("Kinds() wrong")
	}
}

func TestCPUInferCostOrdering(t *testing.T) {
	if !(Base.CPUInferCost() < Plus1.CPUInferCost() && Plus1.CPUInferCost() < Plus2.CPUInferCost()) {
		t.Fatal("CPU costs not increasing with depth")
	}
	if Base.CPUInferCost() != 15*time.Microsecond {
		t.Fatalf("base cost = %v, want 15µs (§7.1)", Base.CPUInferCost())
	}
}

func TestNewPredictorRejectsWrongShape(t *testing.T) {
	rt := boot(t)
	if _, err := NewPredictor(rt, Plus1, nn.New(1, Base.Sizes()...)); err == nil {
		t.Fatal("wrong depth accepted")
	}
	if _, err := NewPredictor(rt, Base, nn.New(1, 16, 256, 2)); err == nil {
		t.Fatal("wrong width accepted")
	}
}

func TestCPUAndLAKEAgreeOnPredictions(t *testing.T) {
	rt := boot(t)
	pred, err := NewPredictor(rt, Base, nn.New(3, Base.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]float32, 16)
	for i := range batch {
		batch[i] = FeatureVector(i*7, []time.Duration{time.Duration(i) * 300 * time.Microsecond})
	}
	cpuPred, _ := pred.InferCPU(batch)
	gpuPred, _, err := pred.InferLAKE(batch, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cpuPred {
		if cpuPred[i] != gpuPred[i] {
			t.Fatalf("prediction %d differs: cpu=%v gpu=%v", i, cpuPred[i], gpuPred[i])
		}
	}
}

func TestInferLAKEBatchLimits(t *testing.T) {
	rt := boot(t)
	pred, _ := NewPredictor(rt, Base, nn.New(3, Base.Sizes()...))
	if _, _, err := pred.InferLAKE(make([][]float32, MaxBatch+1), true); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if preds, d, err := pred.InferLAKE(nil, true); err != nil || preds != nil || d != 0 {
		t.Fatal("empty batch should be a no-op")
	}
	if _, _, err := pred.InferLAKE([][]float32{{1, 2}}, true); err == nil {
		t.Fatal("narrow feature vector accepted")
	}
}

// Fig 8 / Table 3: the base model's GPU crossover must land at batch 8,
// with the augmented models crossing earlier, and single-inference CPU time
// ~15µs.
func TestFig8Crossovers(t *testing.T) {
	rt := boot(t)
	rt.Clock().Advance(time.Second)
	pts, err := InferenceSweep(rt, Base, Fig8Batches())
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].CPU != 15*time.Microsecond {
		t.Fatalf("CPU(1) = %v, want 15µs", pts[0].CPU)
	}
	if got := Crossover(pts); got != 8 {
		for _, p := range pts {
			t.Logf("batch %4d: cpu=%v lake=%v sync=%v", p.Batch, p.CPU, p.LAKE, p.LAKESync)
		}
		t.Fatalf("base crossover = %d, want 8 (Table 3)", got)
	}
	// GPU(8) end-to-end should be in the ~58µs ballpark §7.1 reports.
	var g8 time.Duration
	for _, p := range pts {
		if p.Batch == 8 {
			g8 = p.LAKE
		}
	}
	if g8 < 40*time.Microsecond || g8 > 90*time.Microsecond {
		t.Fatalf("LAKE(8) = %v, want ~58µs", g8)
	}

	p1, err := InferenceSweep(rt, Plus1, Fig8Batches())
	if err != nil {
		t.Fatal(err)
	}
	c1 := Crossover(p1)
	if c1 < 2 || c1 > 4 {
		t.Fatalf("+1 crossover = %d, want in [2,4] (paper: >3)", c1)
	}
	p2, err := InferenceSweep(rt, Plus2, Fig8Batches())
	if err != nil {
		t.Fatal(err)
	}
	c2 := Crossover(p2)
	if c2 < 1 || c2 > 2 {
		t.Fatalf("+2 crossover = %d, want <= 2 (paper: >2)", c2)
	}
	if c1 > 8 || c2 > c1 {
		t.Fatalf("crossovers not decreasing with model size: base=8, +1=%d, +2=%d", c1, c2)
	}
}

func TestSyncCostsMoreThanAsync(t *testing.T) {
	rt := boot(t)
	pts, err := InferenceSweep(rt, Base, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].LAKESync <= pts[0].LAKE {
		t.Fatalf("sync %v not > async %v", pts[0].LAKESync, pts[0].LAKE)
	}
}

func TestCollectSamplesLabels(t *testing.T) {
	reqs := trace.Azure().Rerate(3).Generate(5, 3000)
	samples, threshold := CollectSamples(storage.DefaultConfig("prof", 5), reqs)
	if len(samples) == 0 || threshold <= 0 {
		t.Fatalf("samples=%d threshold=%v", len(samples), threshold)
	}
	slow := 0
	for _, s := range samples {
		if len(s.X) != InputWidth {
			t.Fatalf("sample width %d", len(s.X))
		}
		if s.Slow {
			slow++
		}
	}
	frac := float64(slow) / float64(len(samples))
	if frac < 0.05 || frac > 0.35 {
		t.Fatalf("slow fraction = %.3f, want ~0.2 (p80 threshold)", frac)
	}
}

func TestTrainingBeatsChance(t *testing.T) {
	reqs := trace.Azure().Rerate(3).Generate(6, 4000)
	samples, _ := CollectSamples(storage.DefaultConfig("prof", 6), reqs)
	net, acc, err := Train(Base, 7, samples, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if net == nil {
		t.Fatal("nil network")
	}
	// Majority class is ~80%; a useful model must beat it.
	if acc < 0.82 {
		t.Fatalf("training accuracy = %.3f, want > 0.82", acc)
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, _, err := Train(Base, 1, nil, 1, 0.1); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestReplayBaselineVsMLShape(t *testing.T) {
	// The Fig 7 headline: for the stressed mixed workload, ML-driven
	// reissue beats the baseline; the replay engine must reproduce that.
	rt := boot(t)
	net, err := TrainedNetwork(Base)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewPredictor(rt, Base, net)
	if err != nil {
		t.Fatal(err)
	}
	w := MixedWorkload("Mixed+", 2500, 31, 3)

	base, err := Replay(rt, nil, w, DefaultReplayConfig(ModeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := Replay(rt, pred, w, DefaultReplayConfig(ModeCPU))
	if err != nil {
		t.Fatal(err)
	}
	if base.Reads == 0 || cpu.Reads == 0 {
		t.Fatalf("no reads: base=%+v cpu=%+v", base, cpu)
	}
	if cpu.Reissued == 0 {
		t.Fatal("ML mode never reissued")
	}
	if cpu.AvgRead >= base.AvgRead {
		t.Fatalf("ML (%v) did not beat baseline (%v) on Mixed+", cpu.AvgRead, base.AvgRead)
	}
}

func TestReplayLAKEUsesGPUBatches(t *testing.T) {
	rt := boot(t)
	net, err := TrainedNetwork(Base)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewPredictor(rt, Base, net)
	if err != nil {
		t.Fatal(err)
	}
	w := MixedWorkload("Mixed+", 2000, 32, 3)
	res, err := Replay(rt, pred, w, DefaultReplayConfig(ModeLAKE))
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUBatches == 0 {
		t.Fatalf("LAKE replay never dispatched a GPU batch: %+v", res)
	}
}

func TestReplayValidation(t *testing.T) {
	rt := boot(t)
	w := MixedWorkload("m", 100, 1, 1)
	if _, err := Replay(rt, nil, w, DefaultReplayConfig(ModeCPU)); err == nil {
		t.Fatal("CPU mode without predictor accepted")
	}
	one := Workload{Name: "one", PerDevice: [][]trace.Request{trace.Azure().Generate(1, 10)}}
	if _, err := Replay(rt, nil, one, DefaultReplayConfig(ModeBaseline)); err == nil {
		t.Fatal("single-device workload accepted")
	}
}

func TestSingleTraceWorkloadShape(t *testing.T) {
	w := SingleTraceWorkload(trace.Azure(), 3, 100, 1)
	if len(w.PerDevice) != 3 || w.Name != "Azure*" {
		t.Fatalf("workload = %s with %d devices", w.Name, len(w.PerDevice))
	}
	for _, reqs := range w.PerDevice {
		if len(reqs) != 100 {
			t.Fatalf("trace len %d", len(reqs))
		}
	}
}

// Model lifecycle end to end (§5.1): the trained network survives
// update_model -> load_model through the feature store and predicts
// identically after the round trip.
func TestModelLifecycleThroughFeatureStore(t *testing.T) {
	rt := boot(t)
	net, err := TrainedNetwork(Base)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/linnos.model"
	if _, err := rt.Features().CreateModel("sda1", "bio", path); err != nil {
		t.Fatal(err)
	}
	if err := rt.Features().UpdateModel("sda1", "bio", net.Marshal()); err != nil {
		t.Fatal(err)
	}
	m, err := rt.Features().LoadModel("sda1", "bio", path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := nn.Unmarshal(m.Blob)
	if err != nil {
		t.Fatal(err)
	}
	x := FeatureVector(12, []time.Duration{500 * time.Microsecond})
	a, b := net.Forward(x), restored.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored model diverges: %v vs %v", a, b)
		}
	}
}

// The full Table 1 loop: register the LinnOS predictor as the registry's
// classifier (register_classifier) with a batching policy
// (register_policy), then drive begin/capture/commit/get/score/truncate —
// the Listing 4 call sequence — and check routing.
func TestScoreFeaturesListing4Loop(t *testing.T) {
	rt := boot(t)
	pred, err := NewPredictor(rt, Base, nn.New(3, Base.Sizes()...))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := rt.Features().CreateRegistry("sda1", "bio_latency_prediction", features.Schema{
		{Key: "pend_ios", Size: 8, Entries: 1},
		{Key: "io_latency", Size: 8, Entries: 4},
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	toBatch := func(vecs []features.Vector) [][]float32 {
		xs := make([][]float32, len(vecs))
		for i, v := range vecs {
			xs[i] = vectorOf(v)
		}
		return xs
	}
	var gpuBatches, cpuBatches int
	reg.RegisterClassifier(features.ArchCPU, func(batch []features.Vector) ([]float32, error) {
		cpuBatches++
		slow, _ := pred.InferCPU(toBatch(batch))
		return boolScores(slow), nil
	})
	reg.RegisterClassifier(features.ArchGPU, func(batch []features.Vector) ([]float32, error) {
		gpuBatches++
		slow, _, err := pred.InferLAKE(toBatch(batch), true)
		if err != nil {
			return nil, err
		}
		return boolScores(slow), nil
	})
	reg.RegisterPolicy(func(b int) policy.Decision {
		if b >= 8 {
			return policy.UseGPU
		}
		return policy.UseCPU
	})

	// Listing 4: capture per I/O, commit, batch-score, truncate.
	commit := func(n int) {
		for i := 0; i < n; i++ {
			reg.BeginCapture(time.Duration(i))
			reg.CaptureFeatureIncr("pend_ios", 1)
			reg.CaptureFeature("io_latency", u64le(int64(i)*1000))
			reg.CommitCapture(time.Duration(i))
			reg.CaptureFeatureIncr("pend_ios", -1)
		}
	}
	commit(4)
	scores, arch, err := reg.ScoreFeatures(reg.GetFeatures(features.NullTS))
	if err != nil || arch != features.ArchCPU || len(scores) != 4 {
		t.Fatalf("small batch: %d scores on %v, err %v", len(scores), arch, err)
	}
	reg.Truncate(features.NullTS)
	commit(16)
	scores, arch, err = reg.ScoreFeatures(reg.GetFeatures(features.NullTS))
	if err != nil || arch != features.ArchGPU {
		t.Fatalf("large batch: arch %v, err %v", arch, err)
	}
	// One retained history vector from the truncate plus 16 fresh commits.
	if len(scores) != 17 {
		t.Fatalf("scored %d vectors, want 17", len(scores))
	}
	if cpuBatches != 1 || gpuBatches != 1 {
		t.Fatalf("batches cpu=%d gpu=%d, want 1/1", cpuBatches, gpuBatches)
	}
	st := reg.Stats()
	if st.Scored != 21 || st.Commits != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func boolScores(slow []bool) []float32 {
	out := make([]float32, len(slow))
	for i, s := range slow {
		if s {
			out[i] = 1
		}
	}
	return out
}
