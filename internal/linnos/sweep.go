package linnos

import (
	"time"

	"lakego/internal/core"
	"lakego/internal/nn"
)

// SweepPoint is one Fig 8 measurement: inference time for a batch on each
// execution path.
type SweepPoint struct {
	Batch    int
	CPU      time.Duration
	LAKE     time.Duration // input copy overlapped (async)
	LAKESync time.Duration // input copy on the critical path
}

// Fig8Batches are the x-axis batch sizes of Fig 8.
func Fig8Batches() []int {
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// InferenceSweep measures I/O latency prediction time for each batch size
// on the CPU path and through LAKE (Fig 8). Timing is independent of the
// weights, so an untrained network of the right shape suffices.
func InferenceSweep(rt *core.Runtime, kind ModelKind, batches []int) ([]SweepPoint, error) {
	pred, err := NewPredictor(rt, kind, nn.New(11, kind.Sizes()...))
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, 0, len(batches))
	for _, b := range batches {
		batch := make([][]float32, b)
		for i := range batch {
			batch[i] = FeatureVector(i%50, []time.Duration{
				time.Duration(i) * 10 * time.Microsecond,
				time.Duration(i) * 20 * time.Microsecond,
			})
		}
		_, cpuT := pred.InferCPU(batch)
		_, asyncT, err := pred.InferLAKE(batch, false)
		if err != nil {
			return nil, err
		}
		_, syncT, err := pred.InferLAKE(batch, true)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{Batch: b, CPU: cpuT, LAKE: asyncT, LAKESync: syncT})
	}
	return points, nil
}

// Crossover returns the smallest measured batch size at which the LAKE
// (async) path beats the CPU path, or 0 if it never does — the Table 3
// crossover point.
func Crossover(points []SweepPoint) int {
	for _, p := range points {
		if p.LAKE < p.CPU {
			return p.Batch
		}
	}
	return 0
}
