package linnos

import (
	"fmt"

	"lakego/internal/batcher"
)

// Cross-client batching opt-in: on a live system many block devices (and
// their submission queues) classify I/Os concurrently, but each queue on
// its own accumulates only a handful of requests per window — below the
// Fig 8 crossover of 8. Routing predictors through the lakeD batcher
// coalesces those independent streams into one profitable GPU launch.

// BatchModelName is the batcher model registered by EnableBatching.
func (p *Predictor) BatchModelName() string {
	return kernelName(p.kind) + "_batched"
}

// EnableBatching registers this predictor's network as a batcher model so
// clients can route classification through cross-client batching. The
// model reuses the predictor's calibrated kernel-space CPU cost, so the
// batcher's CPU fallback and the Fig 3 policy see the same economics as
// the unbatched paths.
func (p *Predictor) EnableBatching(b *batcher.Batcher) error {
	return b.RegisterModel(batcher.ModelConfig{
		Name:       p.BatchModelName(),
		InputWidth: InputWidth, OutputWidth: 2,
		MaxBatch:   MaxBatch,
		CPUPerItem: p.kind.CPUInferCost(),
		// Same-shape SwapNet keeps the FLOP count stable; the provider
		// resolves the serving version once per flush.
		FlopsPerItem:    p.Net().Flops(),
		ForwardProvider: func() func([]float32) []float32 { return p.Net().Forward },
	})
}

// SubmitBatched stages one client's feature batch with the batcher and
// returns the pending handle; combine with WaitSlow to collect
// predictions.
func (p *Predictor) SubmitBatched(c *batcher.Client, batch [][]float32) (*batcher.Pending, error) {
	return c.Submit(p.BatchModelName(), batch)
}

// WaitSlow resolves a SubmitBatched handle into per-I/O slow-vs-fast
// predictions, decoding logits exactly as the unbatched paths do.
func WaitSlow(pending *batcher.Pending) ([]bool, error) {
	out, err := pending.Wait()
	if err != nil {
		return nil, err
	}
	slow := make([]bool, len(out))
	for i, logits := range out {
		if len(logits) != 2 {
			return nil, fmt.Errorf("linnos: batched output width %d, want 2", len(logits))
		}
		slow[i] = logits[1] > logits[0]
	}
	return slow, nil
}

// InferBatched classifies the batch through the cross-client batcher:
// SubmitBatched + WaitSlow. Predictions are bit-identical to InferCPU and
// InferLAKE; only the request's scheduling differs.
func (p *Predictor) InferBatched(c *batcher.Client, batch [][]float32) ([]bool, error) {
	pending, err := p.SubmitBatched(c, batch)
	if err != nil {
		return nil, err
	}
	return WaitSlow(pending)
}
