package gpu

import (
	"sync"
	"time"
)

// Stream is an ordered asynchronous work queue on the device, the mechanism
// behind the paper's "LAKE" (asynchronous data movement) measurements: work
// enqueued on a stream executes in order on its own timeline and only
// synchronization advances the caller's clock, so copies and compute on
// different streams overlap.
//
// Functional effects (kernel bodies, memory movement) are applied at
// enqueue time; the virtual timeline tracks when they would complete, which
// is what Synchronize waits for. This is sound for programs that only read
// results after synchronizing — the discipline real CUDA requires anyway.
type Stream struct {
	dev    *Device
	client string

	mu          sync.Mutex
	availableAt time.Duration
}

// NewStream creates a stream attributed to client.
func (d *Device) NewStream(client string) *Stream {
	return &Stream{dev: d, client: client}
}

// Device returns the device this stream's work executes on.
func (s *Stream) Device() *Device { return s.dev }

// enqueue appends an operation of the given modeled cost to the stream's
// timeline and returns its completion instant. The device records the busy
// span for utilization accounting but the caller's clock does not advance.
func (s *Stream) enqueue(cost time.Duration) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.dev.Clock().Now()
	if s.availableAt > start {
		start = s.availableAt
	}
	end := start + cost
	s.availableAt = end
	s.dev.OccupySpan(s.client, start, end)
	return end
}

// EnqueueTransfer models an asynchronous host<->device copy of n bytes and
// applies fn (the actual byte movement) immediately.
func (s *Stream) EnqueueTransfer(n int64, fn func()) time.Duration {
	end := s.enqueue(s.dev.TransferTime(n))
	if fn != nil {
		fn()
	}
	return end
}

// EnqueueCompute models an asynchronous kernel of the given FLOP budget and
// runs fn (the kernel body) immediately.
func (s *Stream) EnqueueCompute(flops float64, fn func()) time.Duration {
	cost := s.dev.Spec().LaunchOverhead + s.dev.ComputeTime(flops)
	end := s.enqueue(cost)
	if fn != nil {
		fn()
	}
	return end
}

// CompletesAt reports when the last enqueued operation finishes.
func (s *Stream) CompletesAt() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.availableAt
}

// Synchronize blocks (advances the virtual clock) until the stream drains,
// like cuStreamSynchronize.
func (s *Stream) Synchronize() time.Duration {
	return s.dev.Clock().AdvanceTo(s.CompletesAt())
}

// Event is a marker on a stream's timeline, like cuEvent.
type Event struct {
	at time.Duration
}

// RecordEvent captures the stream's current completion horizon.
func (s *Stream) RecordEvent() Event {
	return Event{at: s.CompletesAt()}
}

// Synchronize advances the clock to the event, like cuEventSynchronize.
func (e Event) Synchronize(d *Device) time.Duration {
	return d.Clock().AdvanceTo(e.at)
}

// At reports the event's completion instant.
func (e Event) At() time.Duration { return e.at }

// WaitEvent makes subsequent work on s start no earlier than the event,
// like cuStreamWaitEvent — the cross-stream ordering primitive.
func (s *Stream) WaitEvent(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.at > s.availableAt {
		s.availableAt = e.at
	}
}
