// Package gpu models the accelerator that LAKE exposes to kernel space.
//
// The paper's testbed uses NVIDIA A100 GPUs; this package replaces the
// hardware with a functional + analytic model. Functional: device memory is
// real host memory and launched kernels run real Go functions against it, so
// every workload computes correct results. Analytic: each operation advances
// the shared virtual clock by a modeled duration — launch overhead, PCIe
// transfer time, compute time derived from a FLOP budget — calibrated against
// the micro-measurements the paper reports (§7.1, Fig 8). The model is what
// makes accelerator profitability, the crossover points of Table 3, and
// contention dynamics (Figs 1, 13) reproducible without the hardware.
//
// Contention arises naturally: the device executes one kernel at a time, so
// a launch issued while the device is busy queues until the device frees up,
// and per-client busy accounting feeds the NVML-style utilization queries
// that LAKE's contention policies sample.
package gpu

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/flightrec"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

// DevPtr is an opaque device memory address, as returned by allocation.
// Address 0 is never valid.
//
// In a multi-device pool the top DevPtrOrdinalShift bits carry the owning
// device's ordinal, so pointers are globally unique and self-describing:
// any layer holding only a DevPtr (the daemon's batched-infer dispatch, the
// CUDA API's copy routing) can recover which device backs it. Device 0's
// pointers are bit-identical to the single-device layout.
type DevPtr uint64

// DevPtrOrdinalShift is the bit position of the device ordinal inside a
// DevPtr; the low 48 bits are the per-device address space (≫ any modeled
// device memory).
const DevPtrOrdinalShift = 48

// MaxDevices bounds pool size (the ordinal must fit above the shift).
const MaxDevices = 1 << (64 - DevPtrOrdinalShift)

// DevPtrOrdinal extracts the owning device's ordinal from a pointer.
func DevPtrOrdinal(p DevPtr) int { return int(uint64(p) >> DevPtrOrdinalShift) }

// ErrOutOfMemory is returned when device memory is exhausted.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// ErrBadPtr is returned for operations on unallocated device pointers.
var ErrBadPtr = errors.New("gpu: invalid device pointer")

// Spec describes the modeled hardware. The defaults approximate the paper's
// A100 testbed as seen from kernel space through LAKE.
type Spec struct {
	// Name is reported by identification queries.
	Name string
	// MemoryBytes is total device memory.
	MemoryBytes int64
	// LaunchOverhead is the fixed cost of one kernel launch (driver +
	// hardware dispatch).
	LaunchOverhead time.Duration
	// PCIeLatency is the fixed per-transfer DMA setup cost.
	PCIeLatency time.Duration
	// PCIeBytesPerSec is effective host<->device copy bandwidth.
	PCIeBytesPerSec float64
	// GFLOPS is effective compute throughput for the small inference
	// kernels kernel subsystems launch (far below peak; small kernels
	// cannot saturate an A100).
	GFLOPS float64
}

// DefaultSpec returns the A100-like model used across the evaluation.
//
// Calibration: launch overhead and transfer constants are fitted so the
// LinnOS batch sweep (Fig 8) crosses over at batch 8 with GPU(batch=8) ≈
// 58 µs end-to-end including remoting, as §7.1 reports.
func DefaultSpec() Spec {
	return Spec{
		Name:            "Simulated-A100-SXM4-40GB",
		MemoryBytes:     40 << 30,
		LaunchOverhead:  5 * time.Microsecond,
		PCIeLatency:     7 * time.Microsecond,
		PCIeBytesPerSec: 12e9, // effective, small-transfer regime
		GFLOPS:          4500,
	}
}

type busySpan struct {
	client     string
	start, end time.Duration
}

// Device is one simulated accelerator. All methods are safe for concurrent
// use.
type Device struct {
	spec    Spec
	clock   *vtime.Clock
	ordinal int

	mu        sync.Mutex
	mem       map[DevPtr][]byte
	next      DevPtr
	used      int64
	busyUntil time.Duration
	spans     []busySpan // recent busy intervals, pruned lazily
	launches  int64
	// maxWindow is the largest window any Utilization query has asked for;
	// the span-prune horizon tracks it so long-window queries stay accurate.
	maxWindow time.Duration

	copies    atomic.Int64
	copyBytes atomic.Int64

	tel Telemetry

	// rec receives gpu-domain events, tagged with the trace ID of the
	// command lakeD is currently executing (Recorder.ExecTrace); nil-safe.
	rec *flightrec.Recorder
}

// Telemetry is the device's instrument set; all fields may be nil.
type Telemetry struct {
	// Launches counts executed kernels.
	Launches *telemetry.Counter
	// ExecTime observes each operation's modeled cost (virtual ns),
	// excluding queueing delay.
	ExecTime *telemetry.Histogram
	// QueueDelay observes per-operation contention delay (virtual ns)
	// spent waiting for the device to go idle.
	QueueDelay *telemetry.Histogram
	// CopyTime observes each host<->device DMA's modeled duration
	// (virtual ns) — the copy-engine occupancy signal.
	CopyTime *telemetry.Histogram
	// CopyBytes counts total bytes moved across PCIe.
	CopyBytes *telemetry.Counter
}

// SetTelemetry attaches instruments. Must be called during runtime
// construction, before any traffic.
func (d *Device) SetTelemetry(tel Telemetry) {
	d.tel = tel
}

// SetFlightRecorder attaches the flight recorder. Must be called during
// runtime construction, before any traffic.
func (d *Device) SetFlightRecorder(rec *flightrec.Recorder) {
	d.rec = rec
}

// ObserveCopy records one host<->device DMA of n bytes taking d (virtual
// time). The CUDA API layer calls it when charging transfers.
func (d *Device) ObserveCopy(n int64, took time.Duration) {
	d.copies.Add(1)
	d.copyBytes.Add(n)
	d.tel.CopyTime.ObserveDuration(took)
	d.tel.CopyBytes.Add(n)
	d.rec.Emit(flightrec.DomainGPU, flightrec.EvCopy,
		d.rec.ExecTrace(), 0, d.ordinal, uint64(n), uint64(took), 0)
}

// Copies reports the device's DMA accounting: number of host<->device
// transfers and total bytes moved. Pool-level aggregated queries read it.
func (d *Device) Copies() (n, bytes int64) {
	return d.copies.Load(), d.copyBytes.Load()
}

// New creates a device with the given spec on the shared clock.
func New(spec Spec, clock *vtime.Clock) *Device {
	return NewIndexed(spec, clock, 0)
}

// NewIndexed creates device number ordinal of a multi-device pool. The
// ordinal is stamped into every DevPtr the device allocates (see DevPtr);
// ordinal 0 reproduces New's single-device pointer layout exactly.
func NewIndexed(spec Spec, clock *vtime.Clock, ordinal int) *Device {
	if ordinal < 0 || ordinal >= MaxDevices {
		panic(fmt.Sprintf("gpu: device ordinal %d out of range [0, %d)", ordinal, MaxDevices))
	}
	return &Device{
		spec:    spec,
		clock:   clock,
		ordinal: ordinal,
		mem:     make(map[DevPtr][]byte),
		next:    DevPtr(uint64(ordinal)<<DevPtrOrdinalShift | 0x1000),
	}
}

// Spec returns the device's hardware model.
func (d *Device) Spec() Spec { return d.spec }

// Ordinal returns the device's pool index (0 for a single device).
func (d *Device) Ordinal() int { return d.ordinal }

// Clock returns the virtual clock the device advances.
func (d *Device) Clock() *vtime.Clock { return d.clock }

// Launches returns the total number of kernels executed.
func (d *Device) Launches() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.launches
}

// MemUsed returns currently allocated device memory in bytes.
func (d *Device) MemUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Alloc reserves size bytes of device memory.
func (d *Device) Alloc(size int64) (DevPtr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("gpu: alloc size %d must be positive", size)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used+size > d.spec.MemoryBytes {
		return 0, fmt.Errorf("%w: %d requested, %d free",
			ErrOutOfMemory, size, d.spec.MemoryBytes-d.used)
	}
	ptr := d.next
	d.next += DevPtr(size) + 0x100 // pad so adjacent buffers never alias
	d.mem[ptr] = make([]byte, size)
	d.used += size
	return ptr, nil
}

// Free releases a device allocation.
func (d *Device) Free(ptr DevPtr) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	buf, ok := d.mem[ptr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadPtr, ptr)
	}
	d.used -= int64(len(buf))
	delete(d.mem, ptr)
	return nil
}

// Bytes returns the backing storage of a device allocation so kernels and
// copy operations can operate on real data. Callers must not retain the
// slice past Free.
func (d *Device) Bytes(ptr DevPtr) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	buf, ok := d.mem[ptr]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrBadPtr, ptr)
	}
	return buf, nil
}

// TransferTime models one host<->device DMA of n bytes.
func (d *Device) TransferTime(n int64) time.Duration {
	if n <= 0 {
		return d.spec.PCIeLatency
	}
	return d.spec.PCIeLatency +
		time.Duration(float64(n)/d.spec.PCIeBytesPerSec*float64(time.Second))
}

// ComputeTime converts a kernel's FLOP budget to modeled execution time.
func (d *Device) ComputeTime(flops float64) time.Duration {
	if flops <= 0 {
		return 0
	}
	return time.Duration(flops / (d.spec.GFLOPS * 1e9) * float64(time.Second))
}

// Execute runs a device operation of the given modeled cost on behalf of
// client, advancing the virtual clock past any queueing delay (contention
// with other clients) plus the operation itself, then runs fn (which may be
// nil for timing-only operations). It returns the operation's completion
// time.
func (d *Device) Execute(client string, cost time.Duration, fn func()) time.Duration {
	d.mu.Lock()
	now := d.clock.Now()
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	end := start + cost
	d.busyUntil = end
	d.launches++
	d.spans = append(d.spans, busySpan{client: client, start: start, end: end})
	d.pruneLocked(end)
	d.mu.Unlock()

	d.tel.Launches.Inc()
	d.tel.ExecTime.ObserveDuration(cost)
	d.tel.QueueDelay.ObserveDuration(start - now)
	d.rec.Emit(flightrec.DomainGPU, flightrec.EvExec,
		d.rec.ExecTrace(), 0, d.ordinal, uint64(cost), uint64(start-now), 0)

	d.clock.AdvanceTo(end)
	if fn != nil {
		fn()
	}
	return end
}

// OccupyUntil marks the device busy for client until t without running
// anything. Fluid-model experiments (the Fig 1/13 contention timelines) use
// it to inject a competing workload's device occupancy.
func (d *Device) OccupyUntil(client string, t time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := d.clock.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	if t < start {
		return
	}
	d.busyUntil = t
	d.spans = append(d.spans, busySpan{client: client, start: start, end: t})
	d.pruneLocked(t)
}

// OccupySpan records client occupancy over an arbitrary [start, end)
// interval without running anything. Scenario drivers use it to lay down
// interleaved busy slices within a timestep so trailing-window utilization
// queries observe the intended duty cycle.
func (d *Device) OccupySpan(client string, start, end time.Duration) {
	if end <= start {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if end > d.busyUntil {
		d.busyUntil = end
	}
	d.spans = append(d.spans, busySpan{client: client, start: start, end: end})
	d.pruneLocked(end)
}

// BusyUntil reports the virtual instant the device next becomes idle.
func (d *Device) BusyUntil() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busyUntil
}

const utilizationHistory = 5 * time.Second

// SetUtilizationRetention guarantees busy spans are retained for at least
// window before pruning, even if no Utilization query that wide has run yet.
// Callers that know they will sample a long trailing window can arm it up
// front instead of relying on the first query to grow the horizon.
func (d *Device) SetUtilizationRetention(window time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if window > d.maxWindow {
		d.maxWindow = window
	}
}

func (d *Device) pruneLocked(now time.Duration) {
	// The horizon must cover the widest window any caller samples: pruning
	// at a fixed history while a wider Utilization window is in use would
	// silently undercount busy time and flip the Fig 3 policy.
	horizon := utilizationHistory
	if d.maxWindow > horizon {
		horizon = d.maxWindow
	}
	cutoff := now - horizon
	i := 0
	for i < len(d.spans) && d.spans[i].end < cutoff {
		i++
	}
	if i > 0 {
		d.spans = append(d.spans[:0], d.spans[i:]...)
	}
}

// Utilization reports the fraction of the trailing window during which the
// device was busy, optionally filtered to one client (empty string = all).
// This is the signal the NVML shim exposes to contention policies.
func (d *Device) Utilization(window time.Duration, client string) float64 {
	if window <= 0 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if window > d.maxWindow {
		// Remember the widest requested window (pre-clamp) so future prunes
		// keep enough history to answer it accurately.
		d.maxWindow = window
	}
	now := d.clock.Now()
	from := now - window
	if from < 0 {
		from = 0
		window = now
		if window == 0 {
			return 0
		}
	}
	var busy time.Duration
	for _, s := range d.spans {
		if s.end <= from || (client != "" && s.client != client) {
			continue
		}
		st, en := s.start, s.end
		if st < from {
			st = from
		}
		if en > now {
			en = now
		}
		if en > st {
			busy += en - st
		}
	}
	u := float64(busy) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}
