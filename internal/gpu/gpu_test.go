package gpu

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"lakego/internal/vtime"
)

func newDev() *Device { return New(DefaultSpec(), vtime.New()) }

func TestAllocWriteReadFree(t *testing.T) {
	d := newDev()
	ptr, err := d.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := d.Bytes(ptr)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte("hello"))
	buf2, _ := d.Bytes(ptr)
	if string(buf2[:5]) != "hello" {
		t.Fatalf("device memory = %q, want hello", buf2[:5])
	}
	if got := d.MemUsed(); got != 64 {
		t.Fatalf("MemUsed = %d, want 64", got)
	}
	if err := d.Free(ptr); err != nil {
		t.Fatal(err)
	}
	if got := d.MemUsed(); got != 0 {
		t.Fatalf("MemUsed after free = %d, want 0", got)
	}
	if _, err := d.Bytes(ptr); !errors.Is(err, ErrBadPtr) {
		t.Fatalf("Bytes after free: err = %v, want ErrBadPtr", err)
	}
}

func TestAllocRejectsOversize(t *testing.T) {
	spec := DefaultSpec()
	spec.MemoryBytes = 128
	d := New(spec, vtime.New())
	if _, err := d.Alloc(256); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if _, err := d.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
}

func TestAllocationsDoNotAlias(t *testing.T) {
	d := newDev()
	p1, _ := d.Alloc(16)
	p2, _ := d.Alloc(16)
	b1, _ := d.Bytes(p1)
	b2, _ := d.Bytes(p2)
	b1[0] = 0xAA
	if b2[0] == 0xAA {
		t.Fatal("distinct allocations share memory")
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	d := newDev()
	small := d.TransferTime(1 << 10)
	large := d.TransferTime(1 << 20)
	if large <= small {
		t.Fatalf("TransferTime(1MB)=%v not > TransferTime(1KB)=%v", large, small)
	}
	// A 12 GB/s link moves 12 MB in ~1 ms; check within 2x.
	got := d.TransferTime(12 << 20)
	if got < 500*time.Microsecond || got > 2*time.Millisecond {
		t.Fatalf("TransferTime(12MB) = %v, want ~1ms", got)
	}
}

func TestComputeTime(t *testing.T) {
	d := newDev()
	if got := d.ComputeTime(0); got != 0 {
		t.Fatalf("ComputeTime(0) = %v, want 0", got)
	}
	// 4.5 GFLOP at 4500 GFLOPS = 1 ms.
	got := d.ComputeTime(4.5e9)
	if got != time.Millisecond {
		t.Fatalf("ComputeTime(4.5e9) = %v, want 1ms", got)
	}
}

func TestExecuteAdvancesClockAndRunsKernel(t *testing.T) {
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	ran := false
	end := d.Execute("kernel", 100*time.Microsecond, func() { ran = true })
	if !ran {
		t.Fatal("kernel body did not run")
	}
	if end != 100*time.Microsecond || clk.Now() != end {
		t.Fatalf("end = %v, clock = %v; want both 100µs", end, clk.Now())
	}
}

func TestExecuteQueuesBehindBusyDevice(t *testing.T) {
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	d.Execute("a", 50*time.Microsecond, nil)
	// Rewind our view: a second client issuing at t=50µs queues... but with a
	// shared clock the device is already free. Use OccupyUntil to model an
	// overlapping occupant instead.
	d.OccupyUntil("hog", 200*time.Microsecond)
	end := d.Execute("b", 10*time.Microsecond, nil)
	if end != 210*time.Microsecond {
		t.Fatalf("queued kernel finished at %v, want 210µs", end)
	}
}

func TestUtilizationWindowed(t *testing.T) {
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	d.Execute("ml", 100*time.Millisecond, nil) // busy [0,100ms]
	clk.Advance(100 * time.Millisecond)        // idle [100ms,200ms]
	got := d.Utilization(200*time.Millisecond, "")
	if got < 0.45 || got > 0.55 {
		t.Fatalf("Utilization = %.3f, want ~0.5", got)
	}
}

func TestUtilizationPerClient(t *testing.T) {
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	d.Execute("ml", 40*time.Millisecond, nil)
	d.Execute("hash", 60*time.Millisecond, nil)
	all := d.Utilization(100*time.Millisecond, "")
	ml := d.Utilization(100*time.Millisecond, "ml")
	hash := d.Utilization(100*time.Millisecond, "hash")
	if all < 0.99 {
		t.Fatalf("total utilization = %.3f, want ~1.0", all)
	}
	if ml < 0.35 || ml > 0.45 {
		t.Fatalf("ml utilization = %.3f, want ~0.4", ml)
	}
	if hash < 0.55 || hash > 0.65 {
		t.Fatalf("hash utilization = %.3f, want ~0.6", hash)
	}
}

func TestUtilizationEmptyWindow(t *testing.T) {
	d := newDev()
	if got := d.Utilization(time.Second, ""); got != 0 {
		t.Fatalf("idle utilization = %v, want 0", got)
	}
	if got := d.Utilization(0, ""); got != 0 {
		t.Fatalf("zero-window utilization = %v, want 0", got)
	}
}

func TestSpanPruning(t *testing.T) {
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	for i := 0; i < 1000; i++ {
		d.Execute("x", 10*time.Millisecond, nil)
	}
	d.mu.Lock()
	n := len(d.spans)
	d.mu.Unlock()
	// 5s history at 10ms per span = at most ~501 spans retained.
	if n > 600 {
		t.Fatalf("retained %d spans, pruning not effective", n)
	}
	if got := d.Launches(); got != 1000 {
		t.Fatalf("Launches = %d, want 1000", got)
	}
}

// Property: utilization is always within [0,1] regardless of the schedule.
func TestQuickUtilizationBounded(t *testing.T) {
	f := func(costs []uint16, idles []uint16, window uint32) bool {
		clk := vtime.New()
		d := New(DefaultSpec(), clk)
		for i, c := range costs {
			d.Execute("w", time.Duration(c)*time.Microsecond, nil)
			if i < len(idles) {
				clk.Advance(time.Duration(idles[i]) * time.Microsecond)
			}
		}
		u := d.Utilization(time.Duration(window)*time.Microsecond, "")
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
