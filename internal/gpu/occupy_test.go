package gpu

import (
	"testing"
	"time"

	"lakego/internal/vtime"
)

func TestOccupySpanRecordsArbitraryIntervals(t *testing.T) {
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	// Lay sliced occupancy across a 100ms step: 10 slices, 40% duty.
	for k := 0; k < 10; k++ {
		s := time.Duration(k) * 10 * time.Millisecond
		d.OccupySpan("duty", s, s+4*time.Millisecond)
	}
	clk.AdvanceTo(100 * time.Millisecond)
	u := d.Utilization(100*time.Millisecond, "duty")
	if u < 0.35 || u > 0.45 {
		t.Fatalf("sliced utilization = %.3f, want ~0.40", u)
	}
	if got := d.BusyUntil(); got != 94*time.Millisecond {
		t.Fatalf("BusyUntil = %v, want 94ms", got)
	}
}

func TestOccupySpanIgnoresEmptyOrInverted(t *testing.T) {
	d := New(DefaultSpec(), vtime.New())
	d.OccupySpan("x", 10, 10)
	d.OccupySpan("x", 20, 5)
	d.Clock().Advance(time.Second)
	if u := d.Utilization(time.Second, ""); u != 0 {
		t.Fatalf("utilization = %v after degenerate spans", u)
	}
}

func TestOccupyUntilQueuesBehindExistingWork(t *testing.T) {
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	d.Execute("a", 10*time.Millisecond, nil) // busy until 10ms
	clk.Reset()                              // rewind observer view; device state persists
	clk.Advance(time.Millisecond)
	d.OccupyUntil("b", 5*time.Millisecond) // earlier than busyUntil: extends nothing
	if got := d.BusyUntil(); got != 10*time.Millisecond {
		t.Fatalf("BusyUntil = %v, want 10ms (no shrink)", got)
	}
}
