package gpu

import (
	"testing"
	"time"

	"lakego/internal/vtime"
)

func TestStreamSerializesWithinItself(t *testing.T) {
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	s := d.NewStream("w")
	e1 := s.EnqueueCompute(0, nil) // launch overhead only (5µs)
	e2 := s.EnqueueCompute(0, nil)
	if e2 != e1+d.Spec().LaunchOverhead {
		t.Fatalf("second op completes at %v, want %v", e2, e1+d.Spec().LaunchOverhead)
	}
	if clk.Now() != 0 {
		t.Fatalf("clock advanced (%v) before synchronize", clk.Now())
	}
	s.Synchronize()
	if clk.Now() != e2 {
		t.Fatalf("clock = %v after sync, want %v", clk.Now(), e2)
	}
}

func TestStreamsOverlap(t *testing.T) {
	// Two streams, each with 100µs of work: wall time with overlap is
	// ~100µs, not 200µs.
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	a := d.NewStream("a")
	b := d.NewStream("b")
	cost := d.ComputeTime(d.Spec().GFLOPS * 1e9 / 1e4) // 100µs of FLOPs
	a.EnqueueCompute(float64(cost)/float64(time.Second)*d.Spec().GFLOPS*1e9, nil)
	b.EnqueueCompute(float64(cost)/float64(time.Second)*d.Spec().GFLOPS*1e9, nil)
	a.Synchronize()
	b.Synchronize()
	if got := clk.Now(); got > 120*time.Microsecond {
		t.Fatalf("overlapped streams took %v, want ~105µs", got)
	}
}

func TestPipelineBeatsSequential(t *testing.T) {
	// Double buffering: copy chunk i+1 while computing chunk i. The
	// pipelined virtual time must beat the strictly sequential one.
	run := func(pipelined bool) time.Duration {
		clk := vtime.New()
		d := New(DefaultSpec(), clk)
		copyStream := d.NewStream("copy")
		computeStream := d.NewStream("compute")
		const chunks = 8
		const bytes = 1 << 20
		flops := 4.0e8 // ~90µs of compute, comparable to each chunk transfer
		for i := 0; i < chunks; i++ {
			ev := copyStream.RecordEvent()
			copyStream.EnqueueTransfer(bytes, nil)
			if pipelined {
				// Compute waits only for the chunk's copy.
				computeStream.WaitEvent(copyStream.RecordEvent())
				computeStream.EnqueueCompute(flops, nil)
				_ = ev
			} else {
				// Strict order: copy, then compute, on one timeline.
				copyStream.EnqueueCompute(flops, nil)
			}
		}
		copyStream.Synchronize()
		computeStream.Synchronize()
		return clk.Now()
	}
	seq := run(false)
	pipe := run(true)
	if pipe >= seq {
		t.Fatalf("pipelined %v not faster than sequential %v", pipe, seq)
	}
	// Should approach max(copy total, compute total), far below the sum.
	if float64(pipe) > 0.75*float64(seq) {
		t.Fatalf("pipeline speedup too small: %v vs %v", pipe, seq)
	}
}

func TestEventOrderingAcrossStreams(t *testing.T) {
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	producer := d.NewStream("p")
	consumer := d.NewStream("c")
	producer.EnqueueTransfer(12<<20, nil) // ~1ms copy
	ev := producer.RecordEvent()
	consumer.WaitEvent(ev)
	end := consumer.EnqueueCompute(0, nil)
	if end < ev.At() {
		t.Fatalf("consumer ran at %v, before producer's event %v", end, ev.At())
	}
	if got := ev.Synchronize(d); got < ev.At() {
		t.Fatalf("event sync advanced to %v, want >= %v", got, ev.At())
	}
}

func TestStreamUtilizationAttribution(t *testing.T) {
	clk := vtime.New()
	d := New(DefaultSpec(), clk)
	s := d.NewStream("ml")
	s.EnqueueCompute(d.Spec().GFLOPS*1e9/100, nil) // 10ms of work
	s.Synchronize()
	u := d.Utilization(clk.Now(), "ml")
	if u < 0.9 {
		t.Fatalf("stream work not attributed: utilization %.2f", u)
	}
}

func TestStreamFunctionalEffectsApplied(t *testing.T) {
	d := New(DefaultSpec(), vtime.New())
	s := d.NewStream("x")
	ran := false
	s.EnqueueCompute(0, func() { ran = true })
	if !ran {
		t.Fatal("kernel body not applied at enqueue")
	}
	moved := false
	s.EnqueueTransfer(4096, func() { moved = true })
	if !moved {
		t.Fatal("transfer body not applied at enqueue")
	}
}
