package ecryptfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs, err := NewFS(EngineCPU, nil, 4096, "secret")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 10*4096+123) // non-block-aligned tail
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := fs.Write("a.dat", data); err != nil {
		t.Fatal(err)
	}
	got, _, err := fs.Read("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted data")
	}
}

func TestDataAtRestIsEncrypted(t *testing.T) {
	fs, _ := NewFS(EngineCPU, nil, 4096, "secret")
	plain := bytes.Repeat([]byte("SECRET42"), 1024)
	fs.Write("b.dat", plain)
	for _, block := range fs.lower["b.dat"] {
		if bytes.Contains(block, []byte("SECRET42")) {
			t.Fatal("plaintext visible in lower store")
		}
	}
}

func TestTamperDetected(t *testing.T) {
	fs, _ := NewFS(EngineAESNI, nil, 4096, "secret")
	fs.Write("c.dat", make([]byte, 3*4096))
	if err := fs.Tamper("c.dat", 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Read("c.dat"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered read err = %v, want ErrCorrupt", err)
	}
	if err := fs.Tamper("missing", 0, 0); err == nil {
		t.Fatal("tamper on missing file succeeded")
	}
}

func TestReadMissing(t *testing.T) {
	fs, _ := NewFS(EngineCPU, nil, 4096, "k")
	if _, _, err := fs.Read("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestNewFSValidation(t *testing.T) {
	if _, err := NewFS(EngineCPU, nil, 64, "k"); err == nil {
		t.Fatal("tiny block size accepted")
	}
}

func TestDifferentKeysCannotRead(t *testing.T) {
	fs1, _ := NewFS(EngineCPU, nil, 4096, "key-one")
	fs2, _ := NewFS(EngineCPU, nil, 4096, "key-two")
	fs1.Write("x", []byte("hello world"))
	fs2.lower["x"] = fs1.lower["x"]
	fs2.sizes["x"] = fs1.sizes["x"]
	if _, _, err := fs2.Read("x"); err == nil {
		t.Fatal("wrong key decrypted data")
	}
}

// §7.7 calibration targets.
func TestFig14Targets(t *testing.T) {
	m := DefaultModel()
	mb := func(v float64) float64 { return v / 1e6 }

	// CPU path is flat at ~142/136 MB/s.
	for _, s := range Fig14BlockSizes() {
		if r := mb(m.Throughput(EngineCPU, s, false)); r < 140 || r > 145 {
			t.Fatalf("CPU read @%d = %.0f MB/s, want ~142", s, r)
		}
		if w := mb(m.Throughput(EngineCPU, s, true)); w < 134 || w > 139 {
			t.Fatalf("CPU write @%d = %.0f MB/s, want ~136", s, w)
		}
	}
	// AES-NI peaks near 670/560.
	if r := mb(m.Throughput(EngineAESNI, 4<<20, false)); r < 640 || r > 675 {
		t.Fatalf("AES-NI peak read = %.0f, want ~670", r)
	}
	if w := mb(m.Throughput(EngineAESNI, 4<<20, true)); w < 540 || w > 565 {
		t.Fatalf("AES-NI peak write = %.0f, want ~560", w)
	}
	// LAKE reaches ~840 MB/s reading and ~836 writing at large blocks.
	if r := mb(m.Throughput(EngineLAKE, 2<<20, false)); r < 800 || r > 870 {
		t.Fatalf("LAKE read @2M = %.0f, want ~840", r)
	}
	if w := mb(m.Throughput(EngineLAKE, 4<<20, true)); w < 800 || w > 870 {
		t.Fatalf("LAKE write @4M = %.0f, want ~836", w)
	}
	// 6x over CPU reading (§7.7: 840 vs 142).
	ratio := m.Throughput(EngineLAKE, 2<<20, false) / m.Throughput(EngineCPU, 2<<20, false)
	if ratio < 5.5 || ratio > 6.5 {
		t.Fatalf("LAKE/CPU read ratio = %.2f, want ~6", ratio)
	}
}

// Crossover points: LAKE passes AES-NI above 16K reads and above 128K
// writes (Table 3's "16/128KB" row).
func TestFig14Crossovers(t *testing.T) {
	m := DefaultModel()
	readCross, writeCross := 0, 0
	for _, s := range Fig14BlockSizes() {
		if readCross == 0 && m.Throughput(EngineLAKE, s, false) > m.Throughput(EngineAESNI, s, false) {
			readCross = s
		}
		if writeCross == 0 && m.Throughput(EngineLAKE, s, true) > m.Throughput(EngineAESNI, s, true) {
			writeCross = s
		}
	}
	if readCross != 16<<10 {
		t.Fatalf("read crossover = %d, want 16K", readCross)
	}
	if writeCross != 256<<10 {
		t.Fatalf("write crossover = %d, want 256K (first size above 128K)", writeCross)
	}
}

func TestComboGains(t *testing.T) {
	m := DefaultModel()
	s := 1 << 20
	read := m.Throughput(EngineGPUAESNI, s, false) / m.Throughput(EngineLAKE, s, false)
	write := m.Throughput(EngineGPUAESNI, s, true) / m.Throughput(EngineLAKE, s, true)
	if read < 1.25 || read > 1.35 {
		t.Fatalf("combo read gain = %.2f, want ~1.31", read)
	}
	if write < 1.18 || write > 1.26 {
		t.Fatalf("combo write gain = %.2f, want ~1.22", write)
	}
}

func TestModeledTimesScaleWithEngine(t *testing.T) {
	data := make([]byte, 1<<20)
	var cpuT, lakeT time.Duration
	for _, e := range []Engine{EngineCPU, EngineLAKE} {
		fs, _ := NewFS(e, nil, 2<<20, "k")
		fs.Write("f", data)
		_, d, err := fs.Read("f")
		if err != nil {
			t.Fatal(err)
		}
		if e == EngineCPU {
			cpuT = d
		} else {
			lakeT = d
		}
	}
	if lakeT >= cpuT {
		t.Fatalf("LAKE read time %v not < CPU %v", lakeT, cpuT)
	}
}

// §7.8 utilization averages: CPU 56%, AES-NI 24%, LAKE ~20% combined.
func TestFig15UtilizationAverages(t *testing.T) {
	m := DefaultModel()
	avg := func(e Engine) (cpu, api, gpu float64, dur time.Duration) {
		pts := UtilizationTrace(m, e, 2<<30, 2<<20, 18*time.Second)
		n := 0
		for _, p := range pts {
			if p.KernelCPU == 0 && p.UserAPI == 0 && p.GPU == 0 {
				continue
			}
			cpu += float64(p.KernelCPU)
			api += float64(p.UserAPI)
			gpu += float64(p.GPU)
			n++
			if p.T > dur {
				dur = p.T
			}
		}
		if n > 0 {
			cpu, api, gpu = cpu/float64(n), api/float64(n), gpu/float64(n)
		}
		return
	}
	cpuU, _, _, cpuDur := avg(EngineCPU)
	if cpuU < 50 || cpuU > 62 {
		t.Fatalf("CPU engine kernel util = %.0f, want ~56", cpuU)
	}
	aesU, _, _, aesDur := avg(EngineAESNI)
	if aesU < 20 || aesU > 28 {
		t.Fatalf("AES-NI util = %.0f, want ~24", aesU)
	}
	lakeCPU, lakeAPI, lakeGPU, lakeDur := avg(EngineLAKE)
	if combined := lakeCPU + lakeAPI; combined < 16 || combined > 24 {
		t.Fatalf("LAKE combined CPU util = %.0f, want ~20", combined)
	}
	if lakeGPU < 30 {
		t.Fatalf("LAKE GPU util = %.0f, want busy device", lakeGPU)
	}
	// Faster engines finish sooner: LAKE < AES-NI < CPU durations.
	if !(lakeDur < aesDur && aesDur < cpuDur) {
		t.Fatalf("durations not ordered: lake=%v aesni=%v cpu=%v", lakeDur, aesDur, cpuDur)
	}
}

// Property: round trip holds for arbitrary contents and block sizes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte, bsRaw uint8) bool {
		bs := 512 << (bsRaw % 4)
		fs, err := NewFS(EngineLAKE, nil, bs, "quick")
		if err != nil {
			return false
		}
		if _, err := fs.Write("f", data); err != nil {
			return false
		}
		got, _, err := fs.Read("f")
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAtPartial(t *testing.T) {
	fs, _ := NewFS(EngineLAKE, nil, 4096, "k")
	data := make([]byte, 5*4096+100)
	for i := range data {
		data[i] = byte(i * 7)
	}
	fs.Write("p", data)
	cases := []struct{ off, n int64 }{
		{0, 10}, {4090, 20}, {4096, 4096}, {5 * 4096, 100}, {100, 0},
		{int64(len(data)) - 1, 1}, {0, int64(len(data))},
	}
	for _, c := range cases {
		got, d, err := fs.ReadAt("p", c.off, c.n)
		if err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", c.off, c.n, err)
		}
		want := data[c.off : c.off+c.n]
		if !bytes.Equal(got, want) {
			t.Fatalf("ReadAt(%d,%d) wrong data", c.off, c.n)
		}
		if c.n > 0 && d <= 0 {
			t.Fatalf("ReadAt(%d,%d) charged no time", c.off, c.n)
		}
	}
	// Reads past EOF truncate; negative offsets fail.
	if got, _, err := fs.ReadAt("p", int64(len(data))-5, 100); err != nil || len(got) != 5 {
		t.Fatalf("EOF-truncating read = %d bytes, %v", len(got), err)
	}
	if _, _, err := fs.ReadAt("p", -1, 5); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, _, err := fs.ReadAt("p", int64(len(data))+1, 1); err == nil {
		t.Fatal("offset past EOF accepted")
	}
	if _, _, err := fs.ReadAt("ghost", 0, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadAtChargesOnlyTouchedBlocks(t *testing.T) {
	fs, _ := NewFS(EngineCPU, nil, 4096, "k")
	data := make([]byte, 64*4096)
	fs.Write("big", data)
	_, small, _ := fs.ReadAt("big", 0, 10)      // 1 block
	_, large, _ := fs.ReadAt("big", 0, 32*4096) // 32 blocks
	if large < 20*small {
		t.Fatalf("32-block read (%v) not ~32x a 1-block read (%v)", large, small)
	}
}

func TestRemoveAndSize(t *testing.T) {
	fs, _ := NewFS(EngineCPU, nil, 4096, "k")
	fs.Write("a", make([]byte, 123))
	if n, err := fs.Size("a"); err != nil || n != 123 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if fs.Files() != 1 {
		t.Fatalf("Files = %d", fs.Files())
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if _, err := fs.Size("a"); err == nil {
		t.Fatal("size of removed file succeeded")
	}
	if fs.Files() != 0 {
		t.Fatalf("Files = %d after remove", fs.Files())
	}
}
