// Package ecryptfs reproduces the filesystem encryption study (§7.7, §7.8):
// eCryptfs modified to use parallelizable AES-GCM, with the cipher work
// placed on the CPU, on AES-NI, or on a GPU through a LAKE-backed Linux
// crypto API cipher — plus the combined GPU+AES-NI configuration.
//
// The filesystem itself is real: a stacked encrypting FS over an in-memory
// lower store, performing genuine AES-GCM (crypto/cipher) per block with
// authenticated integrity. Throughput numbers come from a calibrated
// pipeline model — disk bandwidth versus per-engine cipher bandwidth as a
// function of block size — which reproduces Fig 14's curves: flat ~142/136
// MB/s for the software CPU path, AES-NI peaking at ~670/560 MB/s, the
// LAKE GPU path overtaking AES-NI beyond 16 KiB reads / 128 KiB writes and
// reaching ~840 MB/s, and GPU+AES-NI adding ~31%/22%.
package ecryptfs

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Engine selects where cipher work runs.
type Engine int

// Cipher engines of Fig 14.
const (
	EngineCPU Engine = iota
	EngineAESNI
	EngineLAKE
	EngineGPUAESNI
)

var engineNames = [...]string{"CPU", "AES-NI", "LAKE", "GPU+AES-NI"}

func (e Engine) String() string {
	if e >= 0 && int(e) < len(engineNames) {
		return engineNames[e]
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Engines lists the four configurations in Fig 14's legend order.
func Engines() []Engine { return []Engine{EngineCPU, EngineAESNI, EngineLAKE, EngineGPUAESNI} }

// Model is the calibrated throughput model. All bandwidths in bytes/sec.
type Model struct {
	// DiskReadBW / DiskWriteBW bound the lower filesystem.
	DiskReadBW, DiskWriteBW float64
	// CPUReadBW / CPUWriteBW are the software AES-GCM rates (flat).
	CPUReadBW, CPUWriteBW float64
	// AESNIPeakRead / AESNIPeakWrite with a block-size ramp.
	AESNIPeakRead, AESNIPeakWrite float64
	// AESNIRampBytes is the half-saturation block size of the ramp.
	AESNIRampBytes float64
	// GPUFixedRead / GPUFixedWrite are per-batch costs of the LAKE path
	// (reads pipeline with readahead; synchronous writes pay the full
	// remoting round trip per batch).
	GPUFixedRead, GPUFixedWrite time.Duration
	// GPUEffBW is the LAKE path's asymptotic bandwidth (PCIe + cipher).
	GPUEffBW float64
	// ComboReadGain / ComboWriteGain are the GPU+AES-NI multipliers
	// (§7.7: +31% read, +22% write over LAKE alone).
	ComboReadGain, ComboWriteGain float64
}

// DefaultModel returns the calibration used across the evaluation.
// Targets (Fig 14, §7.7): CPU 142/136 MB/s; AES-NI peaks 670/560 MB/s;
// LAKE read crosses AES-NI above 16 KiB and asymptotes at ~840 MB/s;
// LAKE write crosses above 128 KiB and reaches ~836 MB/s at 4 MiB.
func DefaultModel() *Model {
	return &Model{
		DiskReadBW:     1200e6,
		DiskWriteBW:    1150e6,
		CPUReadBW:      142e6,
		CPUWriteBW:     136e6,
		AESNIPeakRead:  670e6,
		AESNIPeakWrite: 560e6,
		AESNIRampBytes: 2048,
		GPUFixedRead:   8 * time.Microsecond,
		GPUFixedWrite:  160 * time.Microsecond,
		GPUEffBW:       850e6,
		ComboReadGain:  1.31,
		ComboWriteGain: 1.22,
	}
}

// CipherBW returns the engine's cipher bandwidth for the given block size.
func (m *Model) CipherBW(e Engine, blockSize int, write bool) float64 {
	s := float64(blockSize)
	switch e {
	case EngineCPU:
		if write {
			return m.CPUWriteBW
		}
		return m.CPUReadBW
	case EngineAESNI:
		peak := m.AESNIPeakRead
		if write {
			peak = m.AESNIPeakWrite
		}
		return peak * s / (s + m.AESNIRampBytes)
	case EngineLAKE, EngineGPUAESNI:
		fixed := m.GPUFixedRead
		if write {
			fixed = m.GPUFixedWrite
		}
		bw := s / (fixed.Seconds() + s/m.GPUEffBW)
		if e == EngineGPUAESNI {
			if write {
				bw *= m.ComboWriteGain
			} else {
				bw *= m.ComboReadGain
			}
		}
		return bw
	}
	return 0
}

// Throughput returns the end-to-end filesystem throughput for sequential
// access at the given block size: the disk and cipher stages pipeline (the
// readahead size is set to the block size, §7.7), so the slower stage
// bounds the rate.
func (m *Model) Throughput(e Engine, blockSize int, write bool) float64 {
	disk := m.DiskReadBW
	if write {
		disk = m.DiskWriteBW
	}
	c := m.CipherBW(e, blockSize, write)
	if c < disk {
		return c
	}
	return disk
}

// Fig14BlockSizes is the x-axis of Fig 14.
func Fig14BlockSizes() []int {
	return []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10,
		128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
}

// --- Real stacked encrypting filesystem -----------------------------------

// ErrNotFound is returned when reading a file that was never written.
var ErrNotFound = errors.New("ecryptfs: file not found")

// ErrCorrupt is returned when authenticated decryption fails.
var ErrCorrupt = errors.New("ecryptfs: block failed authentication")

// FS is the stacked encrypting filesystem: data at rest in the lower store
// is AES-GCM ciphertext, one authenticated record per block.
type FS struct {
	engine    Engine
	model     *Model
	blockSize int
	gcm       cipher.AEAD
	lower     map[string][][]byte // lower filesystem: name -> encrypted blocks
	sizes     map[string]int
}

// NewFS mounts an encrypting filesystem with the given engine and block
// size over an empty lower store. key may be any passphrase; it is
// stretched with SHA-256.
func NewFS(engine Engine, model *Model, blockSize int, key string) (*FS, error) {
	if blockSize < 512 {
		return nil, fmt.Errorf("ecryptfs: block size %d too small", blockSize)
	}
	if model == nil {
		model = DefaultModel()
	}
	k := sha256.Sum256([]byte(key))
	blk, err := aes.NewCipher(k[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, err
	}
	return &FS{
		engine:    engine,
		model:     model,
		blockSize: blockSize,
		gcm:       gcm,
		lower:     make(map[string][][]byte),
		sizes:     make(map[string]int),
	}, nil
}

// Engine returns the cipher engine in use.
func (f *FS) Engine() Engine { return f.engine }

// nonce derives a deterministic per-file, per-block nonce. Unique (name,
// index) pairs never repeat under one key in this store, which is the GCM
// requirement.
func (f *FS) nonce(name string, idx int) []byte {
	h := sha256.Sum256([]byte(name))
	n := make([]byte, 12)
	copy(n, h[:8])
	binary.LittleEndian.PutUint32(n[8:], uint32(idx))
	return n
}

// Write encrypts data under name and returns the modeled wall time of the
// operation (synchronous writes, §7.7).
func (f *FS) Write(name string, data []byte) (time.Duration, error) {
	nblocks := (len(data) + f.blockSize - 1) / f.blockSize
	blocks := make([][]byte, 0, nblocks)
	for i := 0; i < nblocks; i++ {
		lo, hi := i*f.blockSize, (i+1)*f.blockSize
		if hi > len(data) {
			hi = len(data)
		}
		ct := f.gcm.Seal(nil, f.nonce(name, i), data[lo:hi], nil)
		blocks = append(blocks, ct)
	}
	f.lower[name] = blocks
	f.sizes[name] = len(data)
	tput := f.model.Throughput(f.engine, f.blockSize, true)
	return time.Duration(float64(len(data)) / tput * float64(time.Second)), nil
}

// Read decrypts name's contents, verifying every block's authentication
// tag, and returns the modeled wall time.
func (f *FS) Read(name string) ([]byte, time.Duration, error) {
	blocks, ok := f.lower[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	out := make([]byte, 0, f.sizes[name])
	for i, ct := range blocks {
		pt, err := f.gcm.Open(nil, f.nonce(name, i), ct, nil)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %s block %d", ErrCorrupt, name, i)
		}
		out = append(out, pt...)
	}
	tput := f.model.Throughput(f.engine, f.blockSize, false)
	return out, time.Duration(float64(len(out)) / tput * float64(time.Second)), nil
}

// ReadAt decrypts only the blocks covering [off, off+n) — the partial-read
// path real stacked filesystems serve. Readahead is the block size (§7.7:
// "The read-ahead size of the disk is set to the block size, in order to
// fully overlap the decryption and file system read"), so the modeled time
// charges whole blocks touched.
func (f *FS) ReadAt(name string, off, n int64) ([]byte, time.Duration, error) {
	blocks, ok := f.lower[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	size := int64(f.sizes[name])
	if off < 0 || n < 0 || off > size {
		return nil, 0, fmt.Errorf("ecryptfs: read [%d,%d) outside file of %d bytes", off, off+n, size)
	}
	if off+n > size {
		n = size - off
	}
	if n == 0 {
		return nil, 0, nil
	}
	first := off / int64(f.blockSize)
	last := (off + n - 1) / int64(f.blockSize)
	var plain []byte
	for i := first; i <= last; i++ {
		pt, err := f.gcm.Open(nil, f.nonce(name, int(i)), blocks[i], nil)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %s block %d", ErrCorrupt, name, i)
		}
		plain = append(plain, pt...)
	}
	start := off - first*int64(f.blockSize)
	out := plain[start : start+n]
	touched := (last - first + 1) * int64(f.blockSize)
	tput := f.model.Throughput(f.engine, f.blockSize, false)
	return out, time.Duration(float64(touched) / tput * float64(time.Second)), nil
}

// Size returns a file's plaintext length.
func (f *FS) Size(name string) (int64, error) {
	if _, ok := f.lower[name]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(f.sizes[name]), nil
}

// Remove deletes a file from the lower store.
func (f *FS) Remove(name string) error {
	if _, ok := f.lower[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(f.lower, name)
	delete(f.sizes, name)
	return nil
}

// Files returns the number of stored files.
func (f *FS) Files() int { return len(f.lower) }

// Tamper flips a byte of the stored ciphertext (test/demo hook for the
// integrity property).
func (f *FS) Tamper(name string, block, offset int) error {
	blocks, ok := f.lower[name]
	if !ok || block >= len(blocks) || offset >= len(blocks[block]) {
		return ErrNotFound
	}
	blocks[block][offset] ^= 0xFF
	return nil
}

// --- Fig 15: utilization traces -------------------------------------------

// UtilPoint is one sample of the Fig 15 timeline.
type UtilPoint struct {
	T time.Duration
	// KernelCPU, UserAPI and GPU are utilization percentages: kernel
	// cipher work, lakeD's API handling, and device occupancy.
	KernelCPU, UserAPI, GPU int
}

// UtilizationTrace models reading a file of the given size at the given
// block size with engine e, returning per-250ms utilization samples over a
// horizon covering the slowest engine (Fig 15: 2 GiB at 2 MiB blocks).
//
// Averages are calibrated to §7.8: the software CPU path averages 56%
// kernel CPU, AES-NI 24%, and LAKE ~20% split between the kernel side and
// the lakeD handler, with the GPU partially occupied.
func UtilizationTrace(m *Model, e Engine, fileBytes int64, blockSize int, horizon time.Duration) []UtilPoint {
	if m == nil {
		m = DefaultModel()
	}
	tput := m.Throughput(e, blockSize, false)
	active := time.Duration(float64(fileBytes) / tput * float64(time.Second))
	const step = 250 * time.Millisecond
	var kernel, user, gpuU int
	switch e {
	case EngineCPU:
		kernel, user, gpuU = 56, 0, 0
	case EngineAESNI:
		kernel, user, gpuU = 24, 0, 0
	case EngineLAKE, EngineGPUAESNI:
		kernel, user, gpuU = 12, 8, 45
		if e == EngineGPUAESNI {
			kernel += 10 // AES-NI lanes working alongside the GPU
		}
	}
	var out []UtilPoint
	for t := time.Duration(0); t <= horizon; t += step {
		p := UtilPoint{T: t}
		if t <= active {
			// Deterministic ripple so the series looks like a
			// measurement, not a constant.
			r := int(t/step) % 5
			p.KernelCPU = kernel + r - 2
			if p.KernelCPU < 0 {
				p.KernelCPU = 0
			}
			p.UserAPI = user
			if user > 0 {
				p.UserAPI = user + (r+1)%3 - 1
			}
			p.GPU = gpuU
			if gpuU > 0 {
				p.GPU = gpuU + 2*r - 4
			}
		}
		out = append(out, p)
	}
	return out
}
