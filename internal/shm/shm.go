// Package shm implements lakeShm, LAKE's bulk-data kernel<->user shared
// memory channel (§4: "lakeShm works by requesting and mapping a large
// contiguous memory region from the Linux kernel. When lakeD is started, the
// same region is mapped to its process").
//
// The region here is one Go byte slice playing the role of the CMA-backed
// DMA region (the artifact boots with cma=128M). Buffers handed out by Alloc
// are sub-slices of the region, so kernel-domain code and the user-domain
// daemon literally address the same memory — the zero-copy property §4.1
// relies on. Placement uses the best-fit allocator, as in the prototype.
package shm

import (
	"fmt"
	"sync"

	"lakego/internal/bestfit"
)

// DefaultRegionSize matches the artifact's cma=128M boot parameter.
const DefaultRegionSize = 128 << 20

// allocAlign keeps buffers cache-line aligned, like the prototype's
// allocator.
const allocAlign = 64

// Region is the shared contiguous memory area. All methods are safe for
// concurrent use.
type Region struct {
	mu    sync.Mutex
	mem   []byte
	alloc *bestfit.Allocator
}

// Buffer is one allocation inside the region. The same Buffer value is
// usable from both the kernel domain and the user domain; Offset is the
// stable identifier that crosses the boundary in remoted commands.
type Buffer struct {
	region *Region
	off    int64
	size   int64
}

// NewRegion reserves a shared region of size bytes.
func NewRegion(size int64) (*Region, error) {
	a, err := bestfit.New(size, allocAlign)
	if err != nil {
		return nil, fmt.Errorf("shm: %w", err)
	}
	return &Region{mem: make([]byte, size), alloc: a}, nil
}

// Size returns the total region size.
func (r *Region) Size() int64 { return int64(len(r.mem)) }

// Used returns currently allocated bytes (including alignment padding).
func (r *Region) Used() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.alloc.Used()
}

// Alloc reserves a buffer of size bytes, the kernel-side malloc-like call
// the paper describes ("lakeShm ... provides a function similar to malloc").
func (r *Region) Alloc(size int64) (*Buffer, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	off, err := r.alloc.Alloc(size)
	if err != nil {
		return nil, fmt.Errorf("shm: %w", err)
	}
	return &Buffer{region: r, off: off, size: size}, nil
}

// Free releases the buffer back to the region.
func (r *Region) Free(b *Buffer) error {
	if b == nil || b.region != r {
		return fmt.Errorf("shm: buffer does not belong to this region")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.alloc.Free(b.off)
}

// At resolves an offset/length pair received over the command channel into
// the user-domain view of the same bytes. This is lakeD's side of the
// zero-copy handoff.
func (r *Region) At(off, size int64) ([]byte, error) {
	if off < 0 || size < 0 || off+size > int64(len(r.mem)) {
		return nil, fmt.Errorf("shm: range [%d,%d) outside region of %d bytes",
			off, off+size, len(r.mem))
	}
	return r.mem[off : off+size], nil
}

// Offset returns the buffer's offset within the region.
func (b *Buffer) Offset() int64 { return b.off }

// Size returns the buffer's requested size.
func (b *Buffer) Size() int64 { return b.size }

// Bytes returns the buffer's backing memory. Writes are visible to both
// domains immediately: there is exactly one copy of the data.
func (b *Buffer) Bytes() []byte {
	return b.region.mem[b.off : b.off+b.size]
}
