package shm

import (
	"testing"
	"testing/quick"
)

func TestAllocAndZeroCopyVisibility(t *testing.T) {
	r, err := NewRegion(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	// Kernel domain writes...
	copy(b.Bytes(), []byte("feature-vector"))
	// ...user domain resolves the same offset and sees the bytes with no copy.
	view, err := r.At(b.Offset(), b.Size())
	if err != nil {
		t.Fatal(err)
	}
	if string(view[:14]) != "feature-vector" {
		t.Fatalf("user view = %q", view[:14])
	}
	// And mutations flow the other way too.
	view[0] = 'F'
	if b.Bytes()[0] != 'F' {
		t.Fatal("kernel view did not observe user write: not zero-copy")
	}
}

func TestFreeReturnsSpace(t *testing.T) {
	r, _ := NewRegion(1 << 10)
	b, err := r.Alloc(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Alloc(64); err == nil {
		t.Fatal("alloc on full region succeeded")
	}
	if err := r.Free(b); err != nil {
		t.Fatal(err)
	}
	if r.Used() != 0 {
		t.Fatalf("Used = %d after free", r.Used())
	}
	if _, err := r.Alloc(64); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestFreeForeignBufferRejected(t *testing.T) {
	r1, _ := NewRegion(1 << 10)
	r2, _ := NewRegion(1 << 10)
	b, _ := r1.Alloc(64)
	if err := r2.Free(b); err == nil {
		t.Fatal("freeing foreign buffer succeeded")
	}
	if err := r1.Free(nil); err == nil {
		t.Fatal("freeing nil buffer succeeded")
	}
}

func TestAtBoundsChecks(t *testing.T) {
	r, _ := NewRegion(100)
	for _, c := range []struct{ off, size int64 }{
		{-1, 10}, {0, -1}, {90, 20}, {101, 1},
	} {
		if _, err := r.At(c.off, c.size); err == nil {
			t.Errorf("At(%d, %d) succeeded, want error", c.off, c.size)
		}
	}
	if _, err := r.At(0, 100); err != nil {
		t.Errorf("At(0, 100) failed: %v", err)
	}
}

func TestNewRegionRejectsBadSize(t *testing.T) {
	if _, err := NewRegion(0); err == nil {
		t.Fatal("NewRegion(0) succeeded")
	}
	if _, err := NewRegion(-5); err == nil {
		t.Fatal("NewRegion(-5) succeeded")
	}
}

// Property: concurrent-free buffers never overlap in the region.
func TestQuickBuffersDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		r, err := NewRegion(1 << 20)
		if err != nil {
			return false
		}
		type span struct{ lo, hi int64 }
		var spans []span
		for _, s := range sizes {
			b, err := r.Alloc(int64(s) + 1)
			if err != nil {
				break
			}
			spans = append(spans, span{b.Offset(), b.Offset() + b.Size()})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
