package bestfit

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, total, align int64) *Allocator {
	t.Helper()
	a, err := New(total, align)
	if err != nil {
		t.Fatalf("New(%d, %d): %v", total, align, err)
	}
	return a
}

func TestNewRejectsBadArgs(t *testing.T) {
	cases := []struct{ total, align int64 }{
		{0, 8}, {-1, 8}, {64, 0}, {64, -8}, {64, 3}, {64, 12},
	}
	for _, c := range cases {
		if _, err := New(c.total, c.align); err == nil {
			t.Errorf("New(%d, %d) succeeded, want error", c.total, c.align)
		}
	}
}

func TestAllocSequential(t *testing.T) {
	a := mustNew(t, 1024, 1)
	for i := int64(0); i < 4; i++ {
		off, err := a.Alloc(256)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if off != i*256 {
			t.Fatalf("alloc %d: off = %d, want %d", i, off, i*256)
		}
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("alloc over capacity: err = %v, want ErrNoSpace", err)
	}
}

func TestAlignmentRounding(t *testing.T) {
	a := mustNew(t, 1024, 64)
	off1, _ := a.Alloc(1)
	off2, err := a.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != 0 || off2 != 64 {
		t.Fatalf("offsets = %d, %d; want 0, 64", off1, off2)
	}
	if got := a.Used(); got != 128 {
		t.Fatalf("Used() = %d, want 128 (two aligned 64B blocks)", got)
	}
}

func TestBestFitPrefersSmallestHole(t *testing.T) {
	a := mustNew(t, 1000, 1)
	offs := make([]int64, 0, 5)
	for i := 0; i < 5; i++ {
		off, err := a.Alloc(200)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// Free blocks of size 200 (at 200) and a larger hole of 400 (at 600..1000).
	if err := a.Free(offs[1]); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(offs[3]); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(offs[4]); err != nil {
		t.Fatal(err)
	}
	// Holes now: [200,400) size 200 and [600,1000) size 400.
	off, err := a.Alloc(150)
	if err != nil {
		t.Fatal(err)
	}
	if off != 200 {
		t.Fatalf("best-fit picked offset %d, want 200 (the smaller hole)", off)
	}
}

func TestFreeCoalesces(t *testing.T) {
	a := mustNew(t, 300, 1)
	o1, _ := a.Alloc(100)
	o2, _ := a.Alloc(100)
	o3, _ := a.Alloc(100)
	for _, o := range []int64{o1, o3, o2} { // free in non-adjacent order
		if err := a.Free(o); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.FreeBlocks(); got != 1 {
		t.Fatalf("FreeBlocks() = %d, want 1 after full coalesce", got)
	}
	if off, err := a.Alloc(300); err != nil || off != 0 {
		t.Fatalf("Alloc(300) = %d, %v; want 0, nil", off, err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	a := mustNew(t, 100, 1)
	off, _ := a.Alloc(10)
	if err := a.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(off); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: err = %v, want ErrBadFree", err)
	}
	if err := a.Free(9999); !errors.Is(err, ErrBadFree) {
		t.Fatalf("bogus free: err = %v, want ErrBadFree", err)
	}
}

func TestAllocZeroOrNegativeRejected(t *testing.T) {
	a := mustNew(t, 100, 1)
	if _, err := a.Alloc(0); err == nil {
		t.Error("Alloc(0) succeeded, want error")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Error("Alloc(-5) succeeded, want error")
	}
}

// Property: after any interleaving of allocs and frees, live allocations
// never overlap and stay within the region.
func TestQuickNoOverlap(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := New(1<<16, 8)
		if err != nil {
			return false
		}
		var live []int64
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				size := int64(rng.Intn(4096) + 1)
				off, err := a.Alloc(size)
				if err != nil {
					continue // full is fine
				}
				live = append(live, off)
			} else {
				i := rng.Intn(len(live))
				if a.Free(live[i]) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		// Verify invariant via a fresh alloc fill: total used + largest free
		// pattern must be internally consistent.
		return a.Used() <= a.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: freeing everything always restores a single free block covering
// the whole region.
func TestQuickFullFreeRestoresRegion(t *testing.T) {
	f := func(sizes []uint16) bool {
		a, err := New(1<<20, 16)
		if err != nil {
			return false
		}
		var offs []int64
		for _, s := range sizes {
			off, err := a.Alloc(int64(s) + 1)
			if err != nil {
				break
			}
			offs = append(offs, off)
		}
		for _, off := range offs {
			if a.Free(off) != nil {
				return false
			}
		}
		return a.FreeBlocks() == 1 && a.Used() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
