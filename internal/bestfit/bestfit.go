// Package bestfit implements the best-fit memory allocator that backs
// lakeShm's contiguous DMA region (LAKE §6: "A best-fit based memory
// allocator algorithm is used").
//
// The allocator manages offsets within a fixed-size region; it never touches
// the memory itself, so the same allocator serves both the kernel-domain and
// user-domain views of the shared mapping. Free blocks are kept in address
// order and coalesced eagerly on free, and allocation picks the smallest free
// block that fits (ties broken by lowest address), which is what keeps
// long-running mixed alloc/free workloads from fragmenting the region.
package bestfit

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoSpace is returned when no free block can satisfy an allocation.
var ErrNoSpace = errors.New("bestfit: out of space")

// ErrBadFree is returned when Free is called with an offset that does not
// correspond to a live allocation.
var ErrBadFree = errors.New("bestfit: free of unallocated offset")

type block struct {
	off  int64
	size int64
}

// Strategy selects how Alloc picks among free blocks.
type Strategy int

// Placement strategies. BestFit is what the LAKE prototype uses; FirstFit
// exists for the ablation benchmark comparing long-run fragmentation.
const (
	BestFit Strategy = iota
	FirstFit
)

// Allocator hands out non-overlapping [offset, offset+size) ranges inside a
// region of fixed total size. It is not safe for concurrent use; callers
// (the shm package) serialize access.
type Allocator struct {
	total    int64
	align    int64
	strategy Strategy
	free     []block         // sorted by offset, no two adjacent
	live     map[int64]int64 // offset -> size
}

// New creates a best-fit allocator over a region of total bytes, rounding
// every allocation up to a multiple of align. align must be a power of two.
func New(total, align int64) (*Allocator, error) {
	return NewWithStrategy(total, align, BestFit)
}

// NewWithStrategy creates an allocator with an explicit placement strategy.
func NewWithStrategy(total, align int64, s Strategy) (*Allocator, error) {
	if total <= 0 {
		return nil, fmt.Errorf("bestfit: total %d must be positive", total)
	}
	if align <= 0 || align&(align-1) != 0 {
		return nil, fmt.Errorf("bestfit: align %d must be a positive power of two", align)
	}
	if s != BestFit && s != FirstFit {
		return nil, fmt.Errorf("bestfit: unknown strategy %d", s)
	}
	return &Allocator{
		total:    total,
		align:    align,
		strategy: s,
		free:     []block{{off: 0, size: total}},
		live:     make(map[int64]int64),
	}, nil
}

// Total returns the size of the managed region.
func (a *Allocator) Total() int64 { return a.total }

// Used returns the number of bytes currently allocated (after alignment).
func (a *Allocator) Used() int64 {
	var used int64
	for _, sz := range a.live {
		used += sz
	}
	return used
}

// Free-block count; exposed for fragmentation diagnostics and tests.
func (a *Allocator) FreeBlocks() int { return len(a.free) }

// Alloc reserves size bytes and returns the offset of the reservation.
func (a *Allocator) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("bestfit: alloc size %d must be positive", size)
	}
	need := (size + a.align - 1) &^ (a.align - 1)
	best := -1
	for i, b := range a.free {
		if b.size < need {
			continue
		}
		if a.strategy == FirstFit {
			best = i
			break
		}
		if best == -1 || b.size < a.free[best].size {
			best = i
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("%w: need %d bytes, %d free in %d blocks",
			ErrNoSpace, need, a.total-a.Used(), len(a.free))
	}
	b := a.free[best]
	off := b.off
	if b.size == need {
		a.free = append(a.free[:best], a.free[best+1:]...)
	} else {
		a.free[best] = block{off: b.off + need, size: b.size - need}
	}
	a.live[off] = need
	return off, nil
}

// Free releases the allocation that starts at off, coalescing with adjacent
// free blocks.
func (a *Allocator) Free(off int64) error {
	size, ok := a.live[off]
	if !ok {
		return fmt.Errorf("%w: offset %d", ErrBadFree, off)
	}
	delete(a.live, off)

	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off > off })
	nb := block{off: off, size: size}
	// Coalesce with predecessor.
	if i > 0 && a.free[i-1].off+a.free[i-1].size == nb.off {
		nb.off = a.free[i-1].off
		nb.size += a.free[i-1].size
		a.free = append(a.free[:i-1], a.free[i:]...)
		i--
	}
	// Coalesce with successor.
	if i < len(a.free) && nb.off+nb.size == a.free[i].off {
		nb.size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	a.free = append(a.free, block{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = nb
	return nil
}
