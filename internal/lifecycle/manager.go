package lifecycle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/flightrec"
	"lakego/internal/nn"
	"lakego/internal/policy"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

// Outcome is one observed ground-truth record fed back into the lifecycle:
// the feature vector an inference saw, what the serving model predicted,
// and what the world actually did (for LinnOS: whether the read really
// exceeded the latency threshold; for KML: the pattern the window really
// was). The manager retains X — hand it an owned slice.
type Outcome struct {
	X         []float32
	Predicted int
	Label     int
}

// Config parameterizes a Manager.
type Config struct {
	// Model is the family label stamped on telemetry and trace events.
	Model string

	// Buffer is the bounded feedback channel's capacity (default 4096).
	// Offer never blocks: beyond-capacity outcomes are dropped and counted.
	Buffer int
	// Minibatch is the SGD step size (default 64).
	Minibatch int
	// LR is the SGD learning rate (default 0.05).
	LR float32
	// RoundSamples is how many feedback samples one retrain round consumes
	// before the candidate is shadow-scored for promotion (default 256).
	RoundSamples int
	// ShadowWindow is how many recent outcomes the A-B comparison replays
	// over (default 512).
	ShadowWindow int
	// PromoteMargin is the accuracy edge (0..1) the candidate must hold
	// over the serving version across the shadow window before it is
	// promoted (default 0.02 — ties and noise don't churn versions).
	PromoteMargin float64

	// DriftWindow is how many outcomes one drift evaluation window spans
	// (default 256).
	DriftWindow int
	// DriftTolerance is the live-accuracy drop below the pinned baseline
	// that marks a window bad (default 0.10).
	DriftTolerance float64
	// DriftBadWindows is how many consecutive bad windows trigger a
	// demotion (default 2 — one bad window is weather, two is climate).
	DriftBadWindows int
}

// DefaultConfig returns the shipping lifecycle parameters for a model.
func DefaultConfig(model string) Config {
	return Config{
		Model:           model,
		Buffer:          4096,
		Minibatch:       64,
		LR:              0.05,
		RoundSamples:    256,
		ShadowWindow:    512,
		PromoteMargin:   0.02,
		DriftWindow:     256,
		DriftTolerance:  0.10,
		DriftBadWindows: 2,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig(c.Model)
	if c.Buffer <= 0 {
		c.Buffer = d.Buffer
	}
	if c.Minibatch <= 0 {
		c.Minibatch = d.Minibatch
	}
	if c.LR <= 0 {
		c.LR = d.LR
	}
	if c.RoundSamples <= 0 {
		c.RoundSamples = d.RoundSamples
	}
	if c.ShadowWindow <= 0 {
		c.ShadowWindow = d.ShadowWindow
	}
	if c.PromoteMargin < 0 {
		c.PromoteMargin = d.PromoteMargin
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = d.DriftWindow
	}
	if c.DriftTolerance <= 0 {
		c.DriftTolerance = d.DriftTolerance
	}
	if c.DriftBadWindows <= 0 {
		c.DriftBadWindows = d.DriftBadWindows
	}
}

// Telemetry is the manager's instrument set; core.Runtime.NewLifecycle
// wires it with model="..."-labeled series. Zero-value instruments are
// no-ops.
type Telemetry struct {
	Registrations   *telemetry.Counter
	Swaps           *telemetry.Counter
	RetrainSteps    *telemetry.Counter
	RetrainSamples  *telemetry.Counter
	DriftAlarms     *telemetry.Counter
	Demotions       *telemetry.Counter
	FallbackEnters  *telemetry.Counter
	FeedbackDropped *telemetry.Counter
	ServingVersion  *telemetry.Gauge
	ShadowAccuracy  *telemetry.Gauge // candidate accuracy, per-mille
}

// Stats snapshots lifecycle activity.
type Stats struct {
	ServingSeq   uint64
	ServingHash  uint64
	Versions     int
	SamplesSeen  uint64
	Dropped      uint64
	RetrainSteps uint64
	Swaps        uint64
	Demotions    uint64
	DriftAlarms  uint64
	Fallback     bool
	// Baseline and LiveAccuracy are the drift detector's pinned reference
	// and the current (partial-window) live accuracy, 0..1.
	Baseline     float64
	LiveAccuracy float64
}

// Manager runs one model's lifecycle: it owns the registry, the online
// trainer and the drift detector, and applies serving flips to the
// attached predictor.
//
// Concurrency contract: Observe is safe from any goroutine and never
// blocks (a bounded-channel send). Processing — Pump or Serve — must run
// from one goroutine at a time; all mutation happens there under one
// mutex, so the feedback order fully determines the trained weights
// (fixed inputs reproduce bit-identical models; the determinism test pins
// this).
type Manager struct {
	cfg   Config
	clock *vtime.Clock
	reg   *Registry
	rec   *flightrec.Recorder
	tel   Telemetry

	feedback chan Outcome
	dropped  atomic.Uint64
	healthy  atomic.Bool

	mu         sync.Mutex
	apply      func(*nn.Network) error
	demoteHook func(model string, healthy bool)

	// Online trainer state (all under mu).
	candidate *nn.Network
	scratch   *nn.Scratch
	window    []Outcome // ring of the last ShadowWindow outcomes
	wnext     int
	wcount    int
	batchX    [][]float32
	batchY    []int
	roundLeft int

	// Drift detector state (all under mu).
	dHits, dSeen int
	dBad         int
	baseline     float64 // negative = pin from the next completed window

	samplesSeen  atomic.Uint64
	retrainSteps atomic.Uint64
	swaps        atomic.Uint64
	demotions    atomic.Uint64
	driftAlarms  atomic.Uint64
	evSeq        atomic.Uint64
}

// NewManager builds a lifecycle manager seeded with base as version 1,
// already serving. base is snapshotted — the caller's copy stays free.
func NewManager(clock *vtime.Clock, cfg Config, base *nn.Network) (*Manager, error) {
	if base == nil {
		return nil, fmt.Errorf("lifecycle: nil base network")
	}
	cfg.fillDefaults()
	m := &Manager{
		cfg:      cfg,
		clock:    clock,
		reg:      NewRegistry(),
		feedback: make(chan Outcome, cfg.Buffer),
		window:   make([]Outcome, 0, cfg.ShadowWindow),
		batchX:   make([][]float32, 0, cfg.Minibatch),
		batchY:   make([]int, 0, cfg.Minibatch),
	}
	m.roundLeft = cfg.RoundSamples
	m.baseline = -1
	v := m.reg.Register(base, Meta{Model: cfg.Model, Note: "base", TrainedAt: m.now()})
	if _, _, err := m.reg.Promote(v.Seq); err != nil {
		return nil, err
	}
	m.candidate = base.Clone()
	m.scratch = nn.NewScratch(m.candidate)
	m.healthy.Store(true)
	return m, nil
}

func (m *Manager) now() time.Duration {
	if m.clock == nil {
		return 0
	}
	return m.clock.Now()
}

// SetFlightRecorder attaches the flight recorder; lifecycle events land in
// the DomainLifecycle ring (nil-safe).
func (m *Manager) SetFlightRecorder(rec *flightrec.Recorder) { m.rec = rec }

// SetTelemetry attaches the instrument set.
func (m *Manager) SetTelemetry(t Telemetry) {
	m.tel = t
	if v := m.reg.Serving(); v != nil {
		t.ServingVersion.Set(int64(v.Seq))
	}
	t.Registrations.Add(int64(m.reg.Len()))
}

// Attach registers the hot-swap hook — typically linnos.(*Predictor).SwapNet
// or kml.(*Classifier).SwapNet — and immediately applies the current
// serving version so the predictor and registry agree from the start.
func (m *Manager) Attach(apply func(*nn.Network) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.apply = apply
	if v := m.reg.Serving(); v != nil && apply != nil {
		return apply(v.Net())
	}
	return nil
}

// Registry exposes the version registry.
func (m *Manager) Registry() *Registry { return m.reg }

// Model returns the model family label this manager governs.
func (m *Manager) Model() string { return m.cfg.Model }

// SetDemotionHook installs a callback fired after every drift demotion and
// on the transition into heuristic fallback, with the model label and
// whether the model path is still healthy. The hook runs synchronously on
// the processing goroutine with the manager mutex held: it must be cheap
// and must not call back into the manager (Stats would deadlock) — set a
// flag, ping a channel. The health plane uses it as a poll-soon signal.
func (m *Manager) SetDemotionHook(f func(model string, healthy bool)) {
	m.mu.Lock()
	m.demoteHook = f
	m.mu.Unlock()
}

// Serving returns the serving version.
func (m *Manager) Serving() *Version { return m.reg.Serving() }

// Healthy reports whether the model path should be used at all; false
// means drift exhausted every registered version and routing should stay
// on the CPU/heuristic path.
func (m *Manager) Healthy() bool { return m.healthy.Load() }

// WrapPolicy layers drift fallback onto an execution policy: while the
// model is unhealthy every batch routes to the CPU path regardless of
// pol's profitability verdict. Use it where a policy.Func feeds the
// existing *Auto entry points.
func (m *Manager) WrapPolicy(pol policy.Func) policy.Func {
	return func(batch int) policy.Decision {
		if !m.Healthy() {
			return policy.UseCPU
		}
		if pol == nil {
			return policy.UseGPU
		}
		return pol(batch)
	}
}

// Observe offers one outcome to the lifecycle. Never blocks: when the
// bounded feedback channel is full the outcome is dropped and counted
// (the hot path must not back-pressure on the trainer). Reports whether
// the outcome was accepted.
func (m *Manager) Observe(o Outcome) bool {
	select {
	case m.feedback <- o:
		return true
	default:
		m.dropped.Add(1)
		m.tel.FeedbackDropped.Inc()
		return false
	}
}

// Pump drains and processes every buffered outcome, returning how many it
// consumed. Call it from the daemon's service loop (or tests); processing
// is strictly FIFO, so a fixed Observe sequence yields a bit-identical
// trained model.
func (m *Manager) Pump() int {
	n := 0
	for {
		select {
		case o := <-m.feedback:
			m.process(o)
			n++
		default:
			return n
		}
	}
}

// Serve processes feedback until stop closes — the in-daemon retraining
// loop. Run it on its own goroutine next to lakeD.
func (m *Manager) Serve(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case o := <-m.feedback:
			m.process(o)
		}
	}
}

func (m *Manager) process(o Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samplesSeen.Add(1)

	// Drift: live accuracy of what was actually served.
	m.dSeen++
	if o.Predicted == o.Label {
		m.dHits++
	}
	if m.dSeen >= m.cfg.DriftWindow {
		m.closeDriftWindow()
	}

	// Shadow window ring.
	if len(m.window) < m.cfg.ShadowWindow {
		m.window = append(m.window, o)
	} else {
		m.window[m.wnext] = o
	}
	m.wnext = (m.wnext + 1) % m.cfg.ShadowWindow
	if m.wcount < m.cfg.ShadowWindow {
		m.wcount++
	}

	// Online SGD on the candidate.
	m.batchX = append(m.batchX, o.X)
	m.batchY = append(m.batchY, o.Label)
	if len(m.batchX) >= m.cfg.Minibatch {
		m.step()
	}

	m.roundLeft--
	if m.roundLeft <= 0 {
		m.roundLeft = m.cfg.RoundSamples
		if len(m.batchX) > 0 { // flush the partial minibatch before scoring
			m.step()
		}
		m.shadowRound()
	}
}

// step runs one SGD minibatch on the candidate's own weights — scratch
// buffers are reused, so steady-state retraining allocates nothing.
func (m *Manager) step() {
	loss, err := m.candidate.TrainBatchScratch(m.scratch, m.batchX, m.batchY, m.cfg.LR)
	n := len(m.batchX)
	m.batchX = m.batchX[:0]
	m.batchY = m.batchY[:0]
	if err != nil {
		// Shape mismatches cannot happen for outcomes produced by the
		// attached predictor; a malformed outcome is dropped, not fatal.
		m.dropped.Add(uint64(n))
		m.tel.FeedbackDropped.Add(int64(n))
		return
	}
	m.retrainSteps.Add(1)
	m.tel.RetrainSteps.Inc()
	m.tel.RetrainSamples.Add(int64(n))
	m.rec.Emit(flightrec.DomainLifecycle, flightrec.EvRetrainStep,
		0, m.evSeq.Add(1), 0, uint64(n), uint64(loss*1000), 0)
}

// shadowRound A-B scores the candidate against the serving version over
// the retained outcome window and promotes on a clear win.
func (m *Manager) shadowRound() {
	serving := m.reg.Serving()
	if serving == nil || m.wcount == 0 {
		return
	}
	var candHits, servHits int
	for i := 0; i < m.wcount; i++ {
		o := m.window[i]
		if m.candidate.Predict(o.X) == o.Label {
			candHits++
		}
		if serving.Net().Predict(o.X) == o.Label {
			servHits++
		}
	}
	m.rec.Emit(flightrec.DomainLifecycle, flightrec.EvShadowScore,
		0, m.evSeq.Add(1), 0, uint64(candHits), uint64(servHits), uint64(m.wcount))
	candAcc := float64(candHits) / float64(m.wcount)
	m.tel.ShadowAccuracy.Set(int64(candAcc * 1000))
	servAcc := float64(servHits) / float64(m.wcount)
	if candAcc < servAcc+m.cfg.PromoteMargin {
		return
	}
	v := m.reg.Register(m.candidate, Meta{
		Model:     m.cfg.Model,
		Note:      "online-retrain",
		TrainedAt: m.now(),
		Samples:   int(m.samplesSeen.Load()),
		ParentSeq: serving.Seq,
	})
	m.tel.Registrations.Inc()
	m.rec.Emit(flightrec.DomainLifecycle, flightrec.EvModelRegister,
		0, m.evSeq.Add(1), 0, v.Seq, v.Hash, 0)
	if v.Seq == serving.Seq {
		return // candidate dedup'd back to the serving weights: no-op
	}
	nv, old, err := m.reg.Promote(v.Seq)
	if err != nil {
		return
	}
	m.applySwap(nv, old, ReasonPromote)
	// The candidate won on this window: its shadow accuracy is the new
	// drift baseline, and the live counters restart for the new version.
	m.baseline = candAcc
	m.dHits, m.dSeen, m.dBad = 0, 0, 0
	if m.healthy.CompareAndSwap(false, true) {
		m.rec.Emit(flightrec.DomainLifecycle, flightrec.EvFallback,
			0, m.evSeq.Add(1), 0, 0, 0, 0)
	}
}

// closeDriftWindow evaluates one completed live-accuracy window against
// the pinned baseline.
func (m *Manager) closeDriftWindow() {
	acc := float64(m.dHits) / float64(m.dSeen)
	m.dHits, m.dSeen = 0, 0
	if m.baseline < 0 {
		m.baseline = acc // first window after a (re)pin sets the reference
		return
	}
	if acc >= m.baseline-m.cfg.DriftTolerance {
		m.dBad = 0
		return
	}
	m.dBad++
	m.driftAlarms.Add(1)
	m.tel.DriftAlarms.Inc()
	m.rec.Emit(flightrec.DomainLifecycle, flightrec.EvDriftAlarm,
		0, m.evSeq.Add(1), 0, uint64(acc*1000), uint64(m.baseline*1000), uint64(m.dBad))
	if m.dBad >= m.cfg.DriftBadWindows {
		m.dBad = 0
		m.demote()
	}
}

// demote rolls the serving slot back to the previous version; with no
// previous version left it marks the model unhealthy so WrapPolicy routes
// everything to the CPU/heuristic path.
func (m *Manager) demote() {
	v, old, err := m.reg.Rollback()
	if err != nil {
		if m.healthy.CompareAndSwap(true, false) {
			m.tel.FallbackEnters.Inc()
			m.rec.Emit(flightrec.DomainLifecycle, flightrec.EvFallback,
				0, m.evSeq.Add(1), 0, 1, 0, 0)
			if m.demoteHook != nil {
				m.demoteHook(m.cfg.Model, false)
			}
		}
		return
	}
	m.demotions.Add(1)
	m.tel.Demotions.Inc()
	if m.demoteHook != nil {
		m.demoteHook(m.cfg.Model, true)
	}
	m.applySwap(v, old, ReasonDemote)
	// Resync the trainer onto the reinstated weights. The baseline is
	// deliberately NOT re-pinned: the reinstated version is held to the
	// same standard, so a rollback that also drifts cascades down the
	// version stack and finally into heuristic fallback.
	m.candidate = v.Net().Clone()
}

// applySwap pushes a registry flip into the attached predictor and records
// it. Caller holds mu.
func (m *Manager) applySwap(nv, old *Version, reason SwapReason) {
	if m.apply != nil {
		if err := m.apply(nv.Net()); err != nil {
			// A predictor that rejects the new weights keeps serving the
			// old ones; put the registry back in agreement.
			if old != nil {
				_, _, _ = m.reg.Promote(old.Seq)
			}
			return
		}
	}
	m.swaps.Add(1)
	m.tel.Swaps.Inc()
	m.tel.ServingVersion.Set(int64(nv.Seq))
	var oldSeq uint64
	if old != nil {
		oldSeq = old.Seq
	}
	m.rec.Emit(flightrec.DomainLifecycle, flightrec.EvModelSwap,
		0, m.evSeq.Add(1), 0, nv.Seq, oldSeq, uint64(reason))
}

// LoadBlob registers an externally supplied serialized model (the
// untrusted path: decode is bounds-checked before allocation). The version
// is registered but not promoted — call PromoteVersion to serve it.
func (m *Manager) LoadBlob(blob []byte, note string) (*Version, error) {
	v, err := m.reg.RegisterBlob(blob, Meta{Model: m.cfg.Model, Note: note, TrainedAt: m.now()})
	if err != nil {
		return nil, err
	}
	m.tel.Registrations.Inc()
	m.rec.Emit(flightrec.DomainLifecycle, flightrec.EvModelRegister,
		0, m.evSeq.Add(1), 0, v.Seq, v.Hash, 0)
	return v, nil
}

// PromoteVersion explicitly flips the serving slot to a registered version
// (operator action), resyncing the trainer's candidate onto it.
func (m *Manager) PromoteVersion(seq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	nv, old, err := m.reg.Promote(seq)
	if err != nil {
		return err
	}
	if old == nv {
		return nil
	}
	m.applySwap(nv, old, ReasonPromote)
	m.candidate = nv.Net().Clone()
	m.scratch = nn.NewScratch(m.candidate)
	m.baseline = -1
	m.dHits, m.dSeen, m.dBad = 0, 0, 0
	return nil
}

// Dropped reports outcomes lost to the bounded feedback channel.
func (m *Manager) Dropped() uint64 { return m.dropped.Load() }

// Stats snapshots lifecycle activity.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Versions:     m.reg.Len(),
		SamplesSeen:  m.samplesSeen.Load(),
		Dropped:      m.dropped.Load(),
		RetrainSteps: m.retrainSteps.Load(),
		Swaps:        m.swaps.Load(),
		Demotions:    m.demotions.Load(),
		DriftAlarms:  m.driftAlarms.Load(),
		Fallback:     !m.healthy.Load(),
	}
	if m.baseline >= 0 {
		s.Baseline = m.baseline
	}
	if v := m.reg.Serving(); v != nil {
		s.ServingSeq, s.ServingHash = v.Seq, v.Hash
	}
	if m.dSeen > 0 {
		s.LiveAccuracy = float64(m.dHits) / float64(m.dSeen)
	}
	return s
}
