// Scenario tests for the online model lifecycle, exercised from outside
// the package through the same surfaces laked uses: a LinnOS predictor
// whose serving network is hot-swapped while inference traffic is in
// flight, and a rerated trace whose shifted latency distribution the
// in-daemon trainer must chase while a frozen model falls behind.
package lifecycle_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"lakego/internal/core"
	"lakego/internal/lifecycle"
	"lakego/internal/linnos"
	"lakego/internal/nn"
	"lakego/internal/storage"
	"lakego/internal/trace"
)

func bootRT(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// pinnedNet builds a Base-shaped network whose final layer ignores its
// input and always answers class. Two such nets give every inference a
// detectable version identity: any mixed-version batch would contain
// both answers.
func pinnedNet(class int) *nn.Network {
	net := nn.New(1, linnos.Base.Sizes()...)
	last := len(net.Layers) - 1
	for i := range net.Layers[last].W {
		net.Layers[last].W[i] = 0
	}
	for i := range net.Layers[last].B {
		net.Layers[last].B[i] = 0
	}
	net.Layers[last].B[class] = 1000
	return net
}

// TestHotSwapUnderLoadZeroDroppedZeroMixed pins the ISSUE's core
// invariant: with inference workers hammering InferCPU while another
// goroutine flips the serving network, every submitted batch completes
// and every batch is uniformly one version — the swap is a single
// atomic pointer flip observed at most once per batch. Run under -race
// in CI's chaos job.
func TestHotSwapUnderLoadZeroDroppedZeroMixed(t *testing.T) {
	rt := bootRT(t)
	fast := pinnedNet(0) // logits favor "not slow"
	slow := pinnedNet(1) // logits favor "slow"
	pred, err := linnos.NewPredictor(rt, linnos.Base, fast)
	if err != nil {
		t.Fatal(err)
	}

	probe := make([][]float32, 64)
	for i := range probe {
		probe[i] = make([]float32, linnos.InputWidth)
	}

	const workers = 4
	const batchesPerWorker = 300
	var submitted, completed, mixed, short atomic.Uint64

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		nets := [2]*nn.Network{fast, slow}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := pred.SwapNet(nets[i%2]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batchesPerWorker; b++ {
				submitted.Add(1)
				out, _ := pred.InferCPU(probe)
				if len(out) != len(probe) {
					short.Add(1)
					continue
				}
				for _, v := range out[1:] {
					if v != out[0] {
						mixed.Add(1)
					}
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	swapper.Wait()

	if got, want := completed.Load(), uint64(workers*batchesPerWorker); got != want {
		t.Fatalf("completed %d of %d submitted (%d short)", got, want, short.Load())
	}
	if submitted.Load() != completed.Load() {
		t.Fatalf("dropped inferences: submitted %d, completed %d", submitted.Load(), completed.Load())
	}
	if mixed.Load() != 0 {
		t.Fatalf("%d predictions disagreed within their batch: a swap mixed versions mid-batch", mixed.Load())
	}
}

// TestOnlineRetrainBeatsFrozenOnReratedTrace is the ISSUE's acceptance
// scenario. A LinnOS model trained offline on the Azure profile is
// frozen; the same weights seed a lifecycle manager that observes a 3x
// rerated reissue of the trace (heavier queueing shifts the latency
// distribution, so the old decision boundary degrades). The online
// trainer must promote at least one retrained version, drop nothing,
// and score strictly better than the frozen model on held-out samples
// from the rerated stream.
func TestOnlineRetrainBeatsFrozenOnReratedTrace(t *testing.T) {
	rt := bootRT(t)

	// Offline phase: train on the original-rate trace.
	orig := trace.Azure().Generate(21, 4000)
	origSamples, _ := linnos.CollectSamples(storage.DefaultConfig("orig", 21), orig)
	frozen, _, err := linnos.Train(linnos.Base, 7, origSamples, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	// Reissue phase: same profile at 3x arrival rate, fresh device.
	reissue := trace.Azure().Rerate(3).Generate(22, 6000)
	reSamples, _ := linnos.CollectSamples(storage.DefaultConfig("reissue", 22), reissue)
	if len(reSamples) < 1000 {
		t.Fatalf("only %d reissue samples", len(reSamples))
	}
	// Interleave the split: under 3x rerate the device queue deepens over
	// the trace, so a tail holdout would be a different distribution than
	// the stream. Every 5th sample is held out, the rest are streamed.
	var stream, holdout []linnos.Sample
	for i, s := range reSamples {
		if i%5 == 4 {
			holdout = append(holdout, s)
		} else {
			stream = append(stream, s)
		}
	}

	pred, err := linnos.NewPredictor(rt, linnos.Base, frozen.Clone())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := rt.NewLifecycle(lifecycle.DefaultConfig("linnos-base"), frozen.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Attach(pred.SwapNet); err != nil {
		t.Fatal(err)
	}

	for _, s := range stream {
		isSlow, _ := pred.InferCPU([][]float32{s.X})
		o := lifecycle.Outcome{X: s.X, Predicted: b2i(isSlow[0]), Label: b2i(s.Slow)}
		if !mgr.Observe(o) {
			t.Fatal("bounded feedback channel dropped despite inline pumping")
		}
		mgr.Pump()
	}

	st := mgr.Stats()
	if st.Swaps == 0 {
		t.Fatalf("online trainer never promoted a retrained version: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d feedback samples", st.Dropped)
	}

	score := func(net *nn.Network) int {
		hits := 0
		for _, s := range holdout {
			if (net.Predict(s.X) == 1) == s.Slow {
				hits++
			}
		}
		return hits
	}
	frozenHits := score(frozen)
	// The predictor serves whatever the manager last promoted: score
	// through the live net to prove the Attach wiring, not a copy.
	onlineHits := score(pred.Net())
	t.Logf("holdout %d: frozen %d (%.3f), online-retrained %d (%.3f), swaps %d",
		len(holdout), frozenHits, float64(frozenHits)/float64(len(holdout)),
		onlineHits, float64(onlineHits)/float64(len(holdout)), st.Swaps)
	if onlineHits <= frozenHits {
		t.Fatalf("online-retrained model (%d/%d) does not beat frozen (%d/%d) on the rerated holdout",
			onlineHits, len(holdout), frozenHits, len(holdout))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
