// Package lifecycle manages the online model lifecycle for LAKE's
// ML-assisted subsystems: a versioned registry of immutable model snapshots
// whose serving slot is an atomic pointer flip, an in-daemon online trainer
// driven by a bounded feedback channel of observed outcomes, and a drift
// detector that demotes a degraded model back to its predecessor — or all
// the way to the CPU/heuristic path — without ever dropping or mixing an
// inference.
//
// The paper trains its models offline and ships frozen weights into the
// kernel module; §8 calls out keeping models current as the open problem
// ("the kernel must adapt as workloads shift"). This package closes that
// loop inside lakeD: the daemon observes ground truth as it completes I/Os
// (did the read actually turn out slow?), feeds those outcomes back into
// SGD on a working copy of the serving model, A-B shadow-scores the
// candidate against the serving version over the same recent window, and
// promotes only when the candidate is measurably better. Every version is
// content-hashed and retained, so a promotion that later drifts is rolled
// back with the same atomic flip that installed it.
package lifecycle

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/nn"
)

// Meta carries a version's provenance.
type Meta struct {
	// Model is the model family label ("linnos-NN", "kml", ...).
	Model string
	// Note is free-form provenance ("base", "online-retrain", ...).
	Note string
	// TrainedAt is the virtual time the version was registered.
	TrainedAt time.Duration
	// Samples is the cumulative feedback sample count behind the version.
	Samples int
	// ParentSeq is the Seq of the version this one was trained from
	// (0 for a root version).
	ParentSeq uint64
}

// Version is one immutable registered model snapshot. The weights behind
// Net() must never be mutated — the trainer always works on its own clone.
type Version struct {
	// Seq is the registration ordinal, unique and monotonically increasing
	// within one registry (1 is the first registered version).
	Seq uint64
	// Hash is the FNV-1a 64-bit content hash of the serialized weights:
	// two versions with equal hashes are (to hash collision) the same
	// model, and the registry dedups on it.
	Hash uint64
	// Meta is the version's provenance.
	Meta Meta

	net  *nn.Network
	blob []byte
}

// Net returns the version's network. The snapshot is shared, not copied:
// callers must treat it as read-only (inference only — train on a Clone).
func (v *Version) Net() *nn.Network { return v.net }

// Blob returns a copy of the version's serialized weights (nn.Marshal
// format), suitable for persistence or shipping across the boundary.
func (v *Version) Blob() []byte { return append([]byte(nil), v.blob...) }

// SwapReason says why the serving slot flipped.
type SwapReason int

// Swap reasons; the values are stable — they ride flight-recorder events.
const (
	ReasonPromote  SwapReason = 0 // candidate beat serving in shadow scoring
	ReasonDemote   SwapReason = 1 // drift detector rolled the model back
	ReasonRollback SwapReason = 2 // explicit operator rollback
)

func (r SwapReason) String() string {
	switch r {
	case ReasonPromote:
		return "promote"
	case ReasonDemote:
		return "demote"
	case ReasonRollback:
		return "rollback"
	}
	return fmt.Sprintf("SwapReason(%d)", int(r))
}

// Registry holds every registered version of one model and the serving
// slot. Registration and promotion serialize on an internal mutex; reading
// the serving version is a single atomic pointer load, so inference paths
// pay no lock and an in-flight batch that loaded the pointer before a flip
// simply completes on the version it started with — swaps never drop or
// mix inferences.
type Registry struct {
	mu       sync.Mutex
	serving  atomic.Pointer[Version]
	versions []*Version
	byHash   map[uint64]*Version
	// past is the serving-history stack Rollback pops: every Promote pushes
	// the displaced version.
	past    []*Version
	nextSeq uint64
}

// NewRegistry creates an empty registry (no serving version until the
// first Promote).
func NewRegistry() *Registry {
	return &Registry{byHash: make(map[uint64]*Version)}
}

func contentHash(blob []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(blob)
	return h.Sum64()
}

// Register snapshots net as a new immutable version and returns it. The
// network is deep-copied, so the caller may keep training the original.
// A re-registration of byte-identical weights returns the existing version
// instead of minting a duplicate.
func (r *Registry) Register(net *nn.Network, meta Meta) *Version {
	snap := net.Clone()
	blob := snap.Marshal()
	hash := contentHash(blob)
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.byHash[hash]; ok {
		return v
	}
	r.nextSeq++
	v := &Version{Seq: r.nextSeq, Hash: hash, Meta: meta, net: snap, blob: blob}
	r.versions = append(r.versions, v)
	r.byHash[hash] = v
	return v
}

// RegisterBlob decodes an untrusted serialized model through the hardened
// nn.Unmarshal (shape declarations are bounds-checked against the bytes
// actually present before any allocation) and registers it.
func (r *Registry) RegisterBlob(blob []byte, meta Meta) (*Version, error) {
	net, err := nn.Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: reject model blob: %w", err)
	}
	return r.Register(net, meta), nil
}

// Serving returns the current serving version (nil before the first
// Promote). One atomic load — safe from any goroutine, never blocks.
func (r *Registry) Serving() *Version { return r.serving.Load() }

// Version looks a registered version up by sequence number.
func (r *Registry) Version(seq uint64) (*Version, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.versions {
		if v.Seq == seq {
			return v, true
		}
	}
	return nil, false
}

// Versions lists every registered version in registration order.
func (r *Registry) Versions() []*Version {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]*Version(nil), r.versions...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len reports how many versions are registered.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.versions)
}

// Promote flips the serving slot to the version with the given sequence
// number and returns (new, displaced). The displaced version (nil on the
// first promote) is pushed onto the rollback stack.
func (r *Registry) Promote(seq uint64) (*Version, *Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var v *Version
	for _, c := range r.versions {
		if c.Seq == seq {
			v = c
			break
		}
	}
	if v == nil {
		return nil, nil, fmt.Errorf("lifecycle: no version %d", seq)
	}
	old := r.serving.Load()
	if old == v {
		return v, old, nil
	}
	if old != nil {
		r.past = append(r.past, old)
	}
	r.serving.Store(v)
	return v, old, nil
}

// Rollback pops the previous serving version off the history stack and
// reinstates it, returning (reinstated, displaced). It fails when there is
// no earlier version to return to — the caller's cue to fall back to the
// heuristic path instead.
func (r *Registry) Rollback() (*Version, *Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.past) == 0 {
		return nil, nil, fmt.Errorf("lifecycle: no previous version to roll back to")
	}
	v := r.past[len(r.past)-1]
	r.past = r.past[:len(r.past)-1]
	old := r.serving.Load()
	r.serving.Store(v)
	return v, old, nil
}
