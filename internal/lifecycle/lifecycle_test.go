package lifecycle

import (
	"bytes"
	"encoding/binary"
	"testing"

	"lakego/internal/nn"
	"lakego/internal/policy"
	"lakego/internal/vtime"
)

// labeledStream emits a deterministic, learnable outcome stream: two input
// clusters with label = which cluster, predictions attributed to pred.
func labeledStream(n int, pred *nn.Network) []Outcome {
	out := make([]Outcome, n)
	for i := range out {
		label := i % 2
		x := []float32{-1, -1}
		if label == 1 {
			x = []float32{1, 1}
		}
		// Deterministic jitter keeps the stream from being two literal points.
		x[0] += float32(i%7) * 0.01
		x[1] -= float32(i%5) * 0.01
		out[i] = Outcome{X: x, Label: label, Predicted: pred.Predict(x)}
	}
	return out
}

// constantBase returns a Base-shaped net whose final layer always picks
// class 0 — a provably mediocre (50%) serving model the online trainer
// must beat for promotion to trigger.
func constantBase(seed int64) *nn.Network {
	net := nn.New(seed, 2, 8, 2)
	last := len(net.Layers) - 1
	for i := range net.Layers[last].W {
		net.Layers[last].W[i] = 0
	}
	net.Layers[last].B[0] = 1
	net.Layers[last].B[1] = 0
	return net
}

func TestRegistryVersioning(t *testing.T) {
	r := NewRegistry()
	n1 := nn.New(1, 2, 4, 2)
	v1 := r.Register(n1, Meta{Model: "m", Note: "base"})
	if v1.Seq != 1 {
		t.Fatalf("first version seq %d, want 1", v1.Seq)
	}
	// Re-registering identical weights dedups on content hash.
	if v := r.Register(n1.Clone(), Meta{Note: "dup"}); v != v1 {
		t.Fatalf("identical weights minted a new version (seq %d)", v.Seq)
	}
	if r.Serving() != nil {
		t.Fatal("registry serving before any promote")
	}
	if _, _, err := r.Promote(v1.Seq); err != nil {
		t.Fatal(err)
	}
	if r.Serving() != v1 {
		t.Fatal("promote did not install v1")
	}

	n2 := n1.Clone()
	n2.Layers[0].W[0] += 0.5
	v2 := r.Register(n2, Meta{Note: "variant"})
	if v2.Seq != 2 || v2.Hash == v1.Hash {
		t.Fatalf("distinct weights: seq %d hash %x vs %x", v2.Seq, v2.Hash, v1.Hash)
	}
	nv, old, err := r.Promote(v2.Seq)
	if err != nil || nv != v2 || old != v1 {
		t.Fatalf("promote v2: nv=%v old=%v err=%v", nv, old, err)
	}
	back, displaced, err := r.Rollback()
	if err != nil || back != v1 || displaced != v2 {
		t.Fatalf("rollback: back=%v displaced=%v err=%v", back, displaced, err)
	}
	if _, _, err := r.Rollback(); err == nil {
		t.Fatal("rollback with empty history succeeded")
	}
	if got := r.Len(); got != 2 {
		t.Fatalf("registry holds %d versions, want 2", got)
	}

	// The untrusted-blob path goes through the hardened decoder: a crafted
	// allocation-bomb blob is rejected, a valid blob registers and its
	// version round-trips byte-identically.
	bomb := binary.LittleEndian.AppendUint32(nil, 0x4C4E4E31)
	bomb = binary.LittleEndian.AppendUint32(bomb, 1)
	bomb = binary.LittleEndian.AppendUint32(bomb, 1<<20)
	bomb = binary.LittleEndian.AppendUint32(bomb, 1<<20)
	bomb = append(bomb, 1)
	if _, err := r.RegisterBlob(bomb, Meta{}); err == nil {
		t.Fatal("allocation-bomb blob registered")
	}
	blob := nn.New(9, 2, 3, 2).Marshal()
	v3, err := r.RegisterBlob(blob, Meta{Note: "imported"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v3.Blob(), blob) {
		t.Fatal("registered blob is not byte-identical")
	}
}

func TestManagerPromotesOnBetterCandidate(t *testing.T) {
	base := constantBase(3) // always predicts class 0: 50% on the stream
	cfg := DefaultConfig("test")
	cfg.Minibatch = 16
	cfg.RoundSamples = 64
	cfg.ShadowWindow = 128
	m, err := NewManager(vtime.New(), cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	var applied int
	if err := m.Attach(func(*nn.Network) error { applied++; return nil }); err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("Attach applied serving %d times, want 1", applied)
	}
	for _, o := range labeledStream(2000, base) {
		if !m.Observe(o) {
			m.Pump()
			m.Observe(o)
		}
		m.Pump()
	}
	st := m.Stats()
	if st.Swaps == 0 {
		t.Fatalf("online training never promoted: %+v", st)
	}
	if st.ServingSeq == 1 {
		t.Fatal("serving still the untrained base")
	}
	if applied < 2 {
		t.Fatalf("swap hook applied %d times, want >= 2 (attach + promote)", applied)
	}
	// The promoted model must actually have learned the stream.
	serving := m.Serving().Net()
	hits := 0
	probe := labeledStream(100, base)
	for _, o := range probe {
		if serving.Predict(o.X) == o.Label {
			hits++
		}
	}
	if hits < 95 {
		t.Fatalf("promoted model scores %d/100 on the training distribution", hits)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d outcomes despite inline pumping", st.Dropped)
	}
}

// TestManagerDeterministicRetrain pins the in-daemon trainer's determinism:
// the same feedback sequence must reproduce bit-identical weights, so a
// retrained model is as reproducible as an offline fixed-seed run.
func TestManagerDeterministicRetrain(t *testing.T) {
	run := func() (uint64, []byte, uint64) {
		base := constantBase(3)
		cfg := DefaultConfig("det")
		cfg.Minibatch = 16
		cfg.RoundSamples = 64
		m, err := NewManager(vtime.New(), cfg, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range labeledStream(1500, base) {
			m.Observe(o)
			m.Pump()
		}
		v := m.Serving()
		return v.Hash, v.Net().Marshal(), m.Stats().Swaps
	}
	h1, blob1, swaps1 := run()
	h2, blob2, swaps2 := run()
	if swaps1 == 0 {
		t.Fatal("stream never promoted; determinism unexercised")
	}
	if swaps1 != swaps2 || h1 != h2 || !bytes.Equal(blob1, blob2) {
		t.Fatalf("online retraining is not deterministic: swaps %d/%d hash %x/%x",
			swaps1, swaps2, h1, h2)
	}
}

// TestDriftDemotesThenFallsBack walks the full degradation cascade: a
// pinned baseline, two bad windows -> rollback to the previous version,
// two more -> no versions left -> heuristic fallback via WrapPolicy.
func TestDriftDemotesThenFallsBack(t *testing.T) {
	base := nn.New(3, 2, 8, 2)
	cfg := DefaultConfig("drift")
	cfg.DriftWindow = 50
	cfg.DriftBadWindows = 2
	cfg.RoundSamples = 1 << 30 // keep the trainer out of this test
	m, err := NewManager(vtime.New(), cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	// Manually install a second version so there is something to demote.
	v2net := base.Clone()
	v2net.Layers[0].W[0] += 0.25
	v2 := m.Registry().Register(v2net, Meta{Model: "drift", Note: "manual"})
	if err := m.PromoteVersion(v2.Seq); err != nil {
		t.Fatal(err)
	}
	if m.Serving().Seq != v2.Seq {
		t.Fatal("manual promote did not install v2")
	}

	good := Outcome{X: []float32{1, 1}, Predicted: 1, Label: 1}
	bad := Outcome{X: []float32{1, 1}, Predicted: 0, Label: 1}
	feed := func(o Outcome, n int) {
		for i := 0; i < n; i++ {
			m.Observe(o)
			m.Pump()
		}
	}

	feed(good, cfg.DriftWindow) // pins baseline = 1.0
	if st := m.Stats(); st.Baseline != 1.0 {
		t.Fatalf("baseline %v, want 1.0", st.Baseline)
	}
	feed(bad, 2*cfg.DriftWindow) // two bad windows -> demote to v1
	st := m.Stats()
	if st.Demotions != 1 || st.ServingSeq != 1 {
		t.Fatalf("after bad windows: demotions %d serving %d, want 1/1 (%+v)",
			st.Demotions, st.ServingSeq, st)
	}
	if st.Fallback {
		t.Fatal("fell back before exhausting the version stack")
	}
	if !m.Healthy() {
		t.Fatal("unhealthy while a rollback target remained")
	}
	feed(bad, 2*cfg.DriftWindow) // v1 held to the same baseline -> fallback
	st = m.Stats()
	if !st.Fallback || m.Healthy() {
		t.Fatalf("version stack exhausted but no fallback: %+v", st)
	}
	// WrapPolicy must now force the CPU path no matter what pol says.
	pol := m.WrapPolicy(func(int) policy.Decision { return policy.UseGPU })
	if pol(1024) != policy.UseCPU {
		t.Fatal("unhealthy model still routed to GPU")
	}
}

func TestObserveNeverBlocks(t *testing.T) {
	base := nn.New(1, 2, 2)
	cfg := DefaultConfig("bounded")
	cfg.Buffer = 8
	m, err := NewManager(vtime.New(), cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	o := Outcome{X: []float32{1, 0}, Predicted: 0, Label: 0}
	accepted := 0
	for i := 0; i < 100; i++ {
		if m.Observe(o) {
			accepted++
		}
	}
	if accepted != cfg.Buffer {
		t.Fatalf("accepted %d, want exactly the buffer capacity %d", accepted, cfg.Buffer)
	}
	if got := m.Dropped(); got != 100-uint64(cfg.Buffer) {
		t.Fatalf("dropped %d, want %d (drops must be counted, never silent)", got, 100-cfg.Buffer)
	}
	if n := m.Pump(); n != cfg.Buffer {
		t.Fatalf("pumped %d, want %d", n, cfg.Buffer)
	}
}

func TestWrapPolicyHealthyPassthrough(t *testing.T) {
	m, err := NewManager(vtime.New(), DefaultConfig("p"), nn.New(1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	pol := m.WrapPolicy(func(batch int) policy.Decision {
		calls++
		if batch >= 8 {
			return policy.UseGPU
		}
		return policy.UseCPU
	})
	if pol(16) != policy.UseGPU || pol(2) != policy.UseCPU || calls != 2 {
		t.Fatal("healthy manager must pass decisions through")
	}
	if m.WrapPolicy(nil)(1) != policy.UseGPU {
		t.Fatal("nil policy defaults to GPU while healthy")
	}
}
