// Doorbell: futex-style park/unpark on an atomic word. The ring transport
// replaces per-message Go-channel sends with descriptor pushes; the
// doorbell is the one remaining wakeup primitive, and it is paid only on
// the empty→nonempty ring transition — a whole batcher flush rings once.
package lockfree

import "sync/atomic"

// Doorbell state machine. The word is the futex: producers flip it, the
// consumer parks on it.
const (
	bellIdle   uint32 = iota // consumer running (or work pending); no wake needed
	bellParked               // consumer parked in Wait, needs an explicit wake
)

// Doorbell is a binary wakeup latch shared by any number of ringers and one
// waiter. Ring is lock-free in the fast path (one atomic load when the
// waiter is running); only the idle→wake edge touches the channel, so a
// burst of N rings costs one wakeup — the rest coalesce.
//
// The protocol mirrors a futex: the waiter publishes "parked" with a CAS,
// re-checks the readiness predicate supplied by the caller, and only then
// sleeps; a ringer that observes parked swaps the word back to idle and
// posts the (capacity-1) wake channel. The re-check closes the lost-wakeup
// window — a ring that lands between the waiter's predicate miss and its
// park is observed either by the waiter's re-check or by the ringer's swap.
type Doorbell struct {
	state atomic.Uint32
	wake  chan struct{}

	// Telemetry (racy-read safe): total rings, wakeups actually delivered,
	// and rings coalesced into an already-pending wake.
	rings     atomic.Uint64
	wakes     atomic.Uint64
	coalesced atomic.Uint64
}

// NewDoorbell returns an idle doorbell.
func NewDoorbell() *Doorbell {
	return &Doorbell{wake: make(chan struct{}, 1)}
}

// Ring notifies the waiter that work may be available. Alloc-free; safe for
// concurrent ringers. When no waiter is parked this is a single atomic load
// plus a counter bump.
func (b *Doorbell) Ring() {
	b.rings.Add(1)
	if b.state.Load() != bellParked {
		return
	}
	if b.state.CompareAndSwap(bellParked, bellIdle) {
		b.wakes.Add(1)
		b.wake <- struct{}{} // cap 1, and only one CAS winner posts: never blocks
		return
	}
	b.coalesced.Add(1)
}

// Wait parks until a ring arrives, unless ready() already reports work.
// ready is re-checked after publishing the parked state, closing the race
// with a concurrent Ring. Single waiter only.
func (b *Doorbell) Wait(ready func() bool) {
	if ready() {
		return
	}
	for {
		b.state.Store(bellParked)
		if ready() {
			// Work arrived before we could sleep. Un-park; a ringer may
			// have already swapped us back and posted a wake — drain it so
			// the token doesn't spuriously satisfy the next Wait.
			if !b.state.CompareAndSwap(bellParked, bellIdle) {
				<-b.wake
			}
			return
		}
		<-b.wake
		if ready() {
			return
		}
	}
}

// Stats reports (rings, wakes delivered, rings coalesced).
func (b *Doorbell) Stats() (rings, wakes, coalesced uint64) {
	return b.rings.Load(), b.wakes.Load(), b.coalesced.Load()
}
