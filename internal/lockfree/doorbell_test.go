package lockfree

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoorbellReadyShortCircuits(t *testing.T) {
	b := NewDoorbell()
	calls := 0
	b.Wait(func() bool { calls++; return true })
	if calls != 1 {
		t.Fatalf("ready() called %d times, want 1", calls)
	}
	if rings, wakes, _ := b.Stats(); rings != 0 || wakes != 0 {
		t.Fatalf("short-circuit Wait touched the bell: rings=%d wakes=%d", rings, wakes)
	}
}

func TestDoorbellRingWakesParkedWaiter(t *testing.T) {
	b := NewDoorbell()
	var work atomic.Bool
	woke := make(chan struct{})
	go func() {
		b.Wait(work.Load)
		close(woke)
	}()
	// Let the waiter park, then publish work and ring.
	time.Sleep(10 * time.Millisecond)
	work.Store(true)
	b.Ring()
	select {
	case <-woke:
	case <-time.After(5 * time.Second):
		t.Fatal("parked waiter never woke after Ring")
	}
	if _, wakes, _ := b.Stats(); wakes != 1 {
		t.Fatalf("wakes = %d, want 1", wakes)
	}
}

func TestDoorbellNoLostWakeup(t *testing.T) {
	// Hammer the park/ring race: the waiter repeatedly parks on a predicate
	// a ringer flips concurrently. A lost wakeup hangs the Wait; the test
	// passes iff every round completes.
	b := NewDoorbell()
	var work atomic.Bool
	const rounds = 5000
	done := make(chan struct{})
	go func() {
		for i := 0; i < rounds; i++ {
			b.Wait(work.Load)
			work.Store(false)
		}
		close(done)
	}()
	go func() {
		for i := 0; i < rounds; i++ {
			work.Store(true)
			b.Ring()
			for work.Load() {
				runtime.Gosched()
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lost wakeup: waiter wedged mid-round")
	}
}

func TestDoorbellRingWithoutWaiterIsCheap(t *testing.T) {
	b := NewDoorbell()
	for i := 0; i < 100; i++ {
		b.Ring()
	}
	rings, wakes, coalesced := b.Stats()
	if rings != 100 || wakes != 0 || coalesced != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (100, 0, 0)", rings, wakes, coalesced)
	}
	// The un-posted rings must not leave a stale token that satisfies a
	// later Wait without work.
	var work atomic.Bool
	woke := make(chan struct{})
	go func() {
		b.Wait(work.Load)
		close(woke)
	}()
	select {
	case <-woke:
		t.Fatal("Wait returned without work: a waiterless Ring leaked a wake token")
	case <-time.After(50 * time.Millisecond):
	}
	work.Store(true)
	b.Ring()
	<-woke
}

func TestDoorbellBurstCoalesces(t *testing.T) {
	// A burst of rings against one parked waiter delivers one wake; the rest
	// are fast-path no-ops or coalesced. This is the transport's doorbell
	// batching: a flush of N frames pays one wakeup.
	b := NewDoorbell()
	var work atomic.Bool
	woke := make(chan struct{})
	go func() {
		b.Wait(work.Load)
		close(woke)
	}()
	time.Sleep(10 * time.Millisecond)
	work.Store(true)
	const burst = 64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); b.Ring() }()
	}
	wg.Wait()
	<-woke
	rings, wakes, _ := b.Stats()
	if rings != burst {
		t.Fatalf("rings = %d, want %d", rings, burst)
	}
	if wakes != 1 {
		t.Fatalf("wakes = %d, want 1: burst did not coalesce", wakes)
	}
}

func TestDoorbellAllocFree(t *testing.T) {
	b := NewDoorbell()
	if n := testing.AllocsPerRun(1000, b.Ring); n != 0 {
		t.Fatalf("Ring allocates %v bytes/op, want 0", n)
	}
	var work atomic.Bool
	work.Store(true)
	if n := testing.AllocsPerRun(1000, func() { b.Wait(work.Load) }); n != 0 {
		t.Fatalf("ready Wait allocates %v/op, want 0", n)
	}
}
