// Package lockfree provides the lock-free hash table that backs feature
// capture in the LAKE feature registry (§5.3: "The register relies on
// lock-free data structures to enable instrumentation calls on arbitrary
// kernel threads without needing additional locking disciplines").
//
// The table is a fixed-capacity open-addressing map from string feature keys
// to immutable byte-slice values. Readers and writers never block: key slots
// are claimed with a single CAS, value updates publish a fresh slice via
// atomic pointer swap, and numeric increments retry a CAS loop over the
// encoded value. Fixed capacity is the right trade-off here because the set
// of feature keys is declared up front by the registry schema.
package lockfree

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Map is a lock-free hash map from string keys to []byte values.
// All methods are safe for concurrent use. Values returned by Load must be
// treated as immutable.
type Map struct {
	mask  uint64
	slots []slot
	count atomic.Int64
}

type slot struct {
	key atomic.Pointer[string]
	val atomic.Pointer[[]byte]
}

// NewMap returns a map that can hold up to capacity distinct keys.
// The underlying table is sized at twice the capacity (rounded up to a power
// of two) to keep probe chains short.
func NewMap(capacity int) *Map {
	if capacity <= 0 {
		panic(fmt.Sprintf("lockfree: capacity %d must be positive", capacity))
	}
	n := 2
	for n < capacity*2 {
		n <<= 1
	}
	return &Map{mask: uint64(n - 1), slots: make([]slot, n)}
}

// fnv1a matches hash/fnv but avoids the allocation of the hash.Hash object
// on the capture hot path.
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// findOrInsert locates the slot for key, claiming an empty slot if needed.
// Returns nil when the table is full of other keys.
func (m *Map) findOrInsert(key string) *slot {
	h := fnv1a(key)
	for i := uint64(0); i <= m.mask; i++ {
		s := &m.slots[(h+i)&m.mask]
		k := s.key.Load()
		if k == nil {
			kc := key // copy so the stored pointer does not alias caller memory
			if s.key.CompareAndSwap(nil, &kc) {
				m.count.Add(1)
				return s
			}
			k = s.key.Load()
		}
		if k != nil && *k == key {
			return s
		}
	}
	return nil
}

// find locates the slot for key without inserting.
func (m *Map) find(key string) *slot {
	h := fnv1a(key)
	for i := uint64(0); i <= m.mask; i++ {
		s := &m.slots[(h+i)&m.mask]
		k := s.key.Load()
		if k == nil {
			return nil
		}
		if *k == key {
			return s
		}
	}
	return nil
}

// Store sets key to a copy of val. It reports false when the table is full.
func (m *Map) Store(key string, val []byte) bool {
	s := m.findOrInsert(key)
	if s == nil {
		return false
	}
	v := make([]byte, len(val))
	copy(v, val)
	s.val.Store(&v)
	return true
}

// Load returns the value for key. The returned slice must not be modified.
func (m *Map) Load(key string) ([]byte, bool) {
	s := m.find(key)
	if s == nil {
		return nil, false
	}
	v := s.val.Load()
	if v == nil {
		return nil, false
	}
	return *v, true
}

// Add interprets the value for key as a little-endian int64, adds delta to
// it (missing values count as zero), and returns the new total. It reports
// false when the table is full. This implements capture_feature_incr.
func (m *Map) Add(key string, delta int64) (int64, bool) {
	s := m.findOrInsert(key)
	if s == nil {
		return 0, false
	}
	for {
		old := s.val.Load()
		var cur int64
		if old != nil && len(*old) >= 8 {
			cur = int64(binary.LittleEndian.Uint64(*old))
		}
		next := cur + delta
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(next))
		if s.val.CompareAndSwap(old, &buf) {
			return next, true
		}
	}
}

// Len returns the number of distinct keys ever stored.
func (m *Map) Len() int { return int(m.count.Load()) }

// Range calls fn for every key with a non-nil value until fn returns false.
// It observes a weakly consistent snapshot, which is all the registry needs:
// a vector commit that races with a capture may or may not see that capture,
// exactly as in the paper's asynchronous capture model.
func (m *Map) Range(fn func(key string, val []byte) bool) {
	for i := range m.slots {
		s := &m.slots[i]
		k := s.key.Load()
		if k == nil {
			continue
		}
		v := s.val.Load()
		if v == nil {
			continue
		}
		if !fn(*k, *v) {
			return
		}
	}
}

// Reset clears all values but keeps the key set, so a new feature vector
// capture starts from a clean slate without re-claiming slots.
func (m *Map) Reset() {
	for i := range m.slots {
		m.slots[i].val.Store(nil)
	}
}
