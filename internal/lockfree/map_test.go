package lockfree

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreLoad(t *testing.T) {
	m := NewMap(8)
	if !m.Store("lat", []byte{1, 2, 3}) {
		t.Fatal("Store failed")
	}
	got, ok := m.Load("lat")
	if !ok || len(got) != 3 || got[0] != 1 {
		t.Fatalf("Load = %v, %v; want [1 2 3], true", got, ok)
	}
}

func TestLoadMissing(t *testing.T) {
	m := NewMap(8)
	if _, ok := m.Load("nope"); ok {
		t.Fatal("Load of missing key reported ok")
	}
}

func TestStoreCopiesValue(t *testing.T) {
	m := NewMap(4)
	src := []byte{9}
	m.Store("k", src)
	src[0] = 0
	got, _ := m.Load("k")
	if got[0] != 9 {
		t.Fatal("Store aliased caller memory")
	}
}

func TestOverwrite(t *testing.T) {
	m := NewMap(4)
	m.Store("k", []byte{1})
	m.Store("k", []byte{2})
	got, _ := m.Load("k")
	if got[0] != 2 {
		t.Fatalf("Load = %v, want [2]", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestAddFromZero(t *testing.T) {
	m := NewMap(4)
	v, ok := m.Add("pend_ios", 1)
	if !ok || v != 1 {
		t.Fatalf("Add = %d, %v; want 1, true", v, ok)
	}
	v, _ = m.Add("pend_ios", -3)
	if v != -2 {
		t.Fatalf("Add = %d, want -2", v)
	}
	raw, _ := m.Load("pend_ios")
	if got := int64(binary.LittleEndian.Uint64(raw)); got != -2 {
		t.Fatalf("stored value = %d, want -2", got)
	}
}

func TestTableFull(t *testing.T) {
	m := NewMap(1) // table size 2
	m.Store("a", nil)
	m.Store("b", nil)
	if m.Store("c", []byte{1}) {
		t.Fatal("Store succeeded on full table")
	}
	if _, ok := m.Add("d", 1); ok {
		t.Fatal("Add succeeded on full table")
	}
}

func TestReset(t *testing.T) {
	m := NewMap(8)
	m.Store("a", []byte{1})
	m.Add("b", 5)
	m.Reset()
	if _, ok := m.Load("a"); ok {
		t.Fatal("value survived Reset")
	}
	// Keys survive; a fresh Add starts from zero.
	if v, _ := m.Add("b", 2); v != 2 {
		t.Fatalf("Add after Reset = %d, want 2", v)
	}
}

func TestRange(t *testing.T) {
	m := NewMap(8)
	want := map[string]byte{"x": 1, "y": 2, "z": 3}
	for k, v := range want {
		m.Store(k, []byte{v})
	}
	seen := map[string]byte{}
	m.Range(func(k string, v []byte) bool {
		seen[k] = v[0]
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("Range saw %d keys, want %d", len(seen), len(want))
	}
	for k, v := range want {
		if seen[k] != v {
			t.Errorf("Range[%q] = %d, want %d", k, seen[k], v)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m := NewMap(8)
	m.Store("a", []byte{1})
	m.Store("b", []byte{1})
	calls := 0
	m.Range(func(string, []byte) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("Range called fn %d times after early stop, want 1", calls)
	}
}

// Concurrent increments from many goroutines must sum exactly: this is the
// capture_feature_incr path from Listing 4/5 of the paper (I/O issue and
// completion racing on pend_ios).
func TestConcurrentAddExact(t *testing.T) {
	m := NewMap(4)
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if w%2 == 0 {
					m.Add("pend_ios", 1)
				} else {
					m.Add("pend_ios", -1)
				}
			}
		}(w)
	}
	wg.Wait()
	raw, _ := m.Load("pend_ios")
	if got := int64(binary.LittleEndian.Uint64(raw)); got != 0 {
		t.Fatalf("final counter = %d, want 0", got)
	}
}

// Concurrent inserts of distinct keys must each land exactly once.
func TestConcurrentDistinctInserts(t *testing.T) {
	const n = 64
	m := NewMap(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Store(fmt.Sprintf("key-%d", i), []byte{byte(i)})
		}(i)
	}
	wg.Wait()
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := m.Load(fmt.Sprintf("key-%d", i))
		if !ok || v[0] != byte(i) {
			t.Fatalf("key-%d = %v, %v", i, v, ok)
		}
	}
}

// Property: the map agrees with a plain Go map under sequential operation.
func TestQuickAgreesWithMap(t *testing.T) {
	type op struct {
		Key   uint8
		Val   uint8
		IsAdd bool
	}
	f := func(ops []op) bool {
		m := NewMap(256)
		ref := map[string]int64{}
		refSet := map[string][]byte{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%16)
			if o.IsAdd {
				got, ok := m.Add(k, int64(o.Val))
				ref[k] += int64(o.Val)
				delete(refSet, k)
				if !ok || got != ref[k] {
					return false
				}
			} else {
				m.Store(k, []byte{o.Val})
				refSet[k] = []byte{o.Val}
				ref[k] = 0
			}
		}
		for k, v := range refSet {
			got, ok := m.Load(k)
			if !ok || got[0] != v[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
