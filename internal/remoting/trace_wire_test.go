package remoting

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

// appendLE builds reference frames for the byte-identity tests below with
// the documented little-endian layout, independent of the encoder under
// test.
func appendLE(buf []byte, fields ...any) []byte {
	for _, f := range fields {
		switch v := f.(type) {
		case byte:
			buf = append(buf, v)
		case uint16:
			buf = binary.LittleEndian.AppendUint16(buf, v)
		case uint32:
			buf = binary.LittleEndian.AppendUint32(buf, v)
		case uint64:
			buf = binary.LittleEndian.AppendUint64(buf, v)
		case string:
			buf = append(buf, v...)
		case []byte:
			buf = append(buf, v...)
		default:
			panic("appendLE: unsupported field")
		}
	}
	return buf
}

func sealRef(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(body,
		crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
}

// TestUntracedCommandWireShapeFrozen pins the recorder-disabled guarantee:
// a command with TraceID 0 marshals byte-for-byte to the original cmdMagic
// layout, so old decoders (and old captures) never see the traced magic.
func TestUntracedCommandWireShapeFrozen(t *testing.T) {
	cmd := &Command{
		API:  APICuLaunchKernel,
		Seq:  42,
		Args: []uint64{7, 1 << 40, 3},
		Name: "vecadd",
		Blob: []byte{0xde, 0xad},
	}
	frame, err := MarshalCommand(cmd)
	if err != nil {
		t.Fatal(err)
	}
	want := sealRef(appendLE(nil,
		byte(0xC1), uint32(APICuLaunchKernel), uint64(42),
		uint16(3), uint64(7), uint64(1<<40), uint64(3),
		uint16(6), "vecadd",
		uint32(2), []byte{0xde, 0xad},
	))
	if !bytes.Equal(frame, want) {
		t.Fatalf("untraced frame diverged from the frozen layout:\n got %x\nwant %x", frame, want)
	}
}

// TestTracedCommandWireShape pins the traced variant: magic 0xC2, exactly 8
// extra bytes carrying the trace ID between Seq and the arg count, and a
// lossless round trip.
func TestTracedCommandWireShape(t *testing.T) {
	cmd := &Command{
		API:     APICuMemcpyHtoD,
		Seq:     7,
		TraceID: 0xFEEDFACE,
		Args:    []uint64{11},
		Name:    "",
		Blob:    nil,
	}
	frame, err := MarshalCommand(cmd)
	if err != nil {
		t.Fatal(err)
	}
	untraced := *cmd
	untraced.TraceID = 0
	plain, err := MarshalCommand(&untraced)
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != 0xC2 {
		t.Fatalf("traced magic = %#x, want 0xC2", frame[0])
	}
	if len(frame) != len(plain)+8 {
		t.Fatalf("traced frame is %d bytes over untraced, want exactly 8", len(frame)-len(plain))
	}
	want := sealRef(appendLE(nil,
		byte(0xC2), uint32(APICuMemcpyHtoD), uint64(7), uint64(0xFEEDFACE),
		uint16(1), uint64(11),
		uint16(0),
		uint32(0),
	))
	if !bytes.Equal(frame, want) {
		t.Fatalf("traced frame diverged from the documented layout:\n got %x\nwant %x", frame, want)
	}
	got, err := UnmarshalCommand(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cmd) {
		t.Fatalf("traced round trip: got %+v, want %+v", got, cmd)
	}

	// A traced frame claiming trace ID 0 is malformed: encoders never emit
	// it, so the decoder rejects it rather than aliasing the untraced case.
	zero := sealRef(appendLE(nil,
		byte(0xC2), uint32(APICuMemcpyHtoD), uint64(7), uint64(0),
		uint16(1), uint64(11), uint16(0), uint32(0),
	))
	if _, err := UnmarshalCommand(zero); err == nil {
		t.Fatal("traced frame with zero trace ID was accepted")
	}
}

// TestPeekFrameHeaders covers the recorder's frame peeker: fixed-offset
// header loads for all three magics, graceful refusal otherwise.
func TestPeekFrameHeaders(t *testing.T) {
	cmd := &Command{API: APICuInit, Seq: 9}
	plain, _ := MarshalCommand(cmd)
	cmd.TraceID = 77
	traced, _ := MarshalCommand(cmd)
	resp, _ := MarshalResponse(&Response{Seq: 9, Result: 0})

	if fi, ok := PeekFrame(plain); !ok || fi.Resp || fi.API != uint32(APICuInit) || fi.Seq != 9 || fi.TraceID != 0 {
		t.Fatalf("peek untraced = %+v ok=%v", fi, ok)
	}
	if fi, ok := PeekFrame(traced); !ok || fi.Resp || fi.Seq != 9 || fi.TraceID != 77 {
		t.Fatalf("peek traced = %+v ok=%v", fi, ok)
	}
	if fi, ok := PeekFrame(resp); !ok || !fi.Resp || fi.Seq != 9 {
		t.Fatalf("peek response = %+v ok=%v", fi, ok)
	}
	for _, bad := range [][]byte{nil, {0x00}, {0x55, 1, 2, 3}, traced[:10]} {
		if _, ok := PeekFrame(bad); ok {
			t.Fatalf("peek accepted junk %x", bad)
		}
	}
}

// TestUntracedBatchWireShapeFrozen pins the batch analogue: all-untraced
// entries marshal to the original batchMagic layout byte-for-byte; one
// traced entry switches the whole batch to the widened layout, which
// round-trips losslessly.
func TestUntracedBatchWireShapeFrozen(t *testing.T) {
	bt := &Batch{Entries: []BatchEntry{
		{Seq: 1, InOff: 100, OutOff: 200, Count: 4},
		{Seq: 2, InOff: 300, OutOff: 400, Count: 8},
	}}
	frame, err := MarshalBatch(bt)
	if err != nil {
		t.Fatal(err)
	}
	want := appendLE(nil,
		byte(0xB7), uint16(2),
		uint64(1), uint64(100), uint64(200), uint32(4),
		uint64(2), uint64(300), uint64(400), uint32(8),
	)
	if !bytes.Equal(frame, want) {
		t.Fatalf("untraced batch diverged from the frozen layout:\n got %x\nwant %x", frame, want)
	}

	bt.Entries[1].TraceID = 555
	traced, err := MarshalBatch(bt)
	if err != nil {
		t.Fatal(err)
	}
	if traced[0] != 0xB8 {
		t.Fatalf("traced batch magic = %#x, want 0xB8", traced[0])
	}
	if len(traced) != len(frame)+8*len(bt.Entries) {
		t.Fatalf("traced batch is %d bytes over untraced, want %d", len(traced)-len(frame), 8*len(bt.Entries))
	}
	got, err := UnmarshalBatch(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, bt) {
		t.Fatalf("traced batch round trip: got %+v, want %+v", got, bt)
	}
}
