package remoting

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/boundary"
	"lakego/internal/cuda"
	"lakego/internal/gpu"
	"lakego/internal/shm"
)

// ErrTransport reports a remoting transport failure (closed channel, lost
// response).
var ErrTransport = errors.New("remoting: transport failure")

// Lib is lakeLib: the kernel-side module that exposes accelerator APIs as
// symbols to kernel space. Each method below is one exported stub — same
// name as the user-space API it remotes, per §4 ("to support the cuMemAlloc
// CUDA API in kernel space, we must have a function with the same name in
// lakeLib").
//
// Every call marshals a command, ships it through the boundary transport,
// drives the daemon, and unmarshals the response, charging the channel's
// modeled round-trip cost exactly once. Lib is safe for concurrent use.
type Lib struct {
	tr     *boundary.Transport
	daemon *Daemon
	region *shm.Region

	seq atomic.Uint64

	// callMu serializes the send/serve/receive exchange so concurrent
	// kernel threads cannot interleave on the command socket and steal
	// each other's responses (the prototype's Netlink usage is likewise
	// serialized per socket).
	callMu sync.Mutex

	mu          sync.Mutex
	calls       int64
	remotedTime time.Duration
}

// NewLib creates the kernel-side stub library. The daemon is driven
// synchronously from within calls, which keeps virtual-time accounting
// deterministic while the full wire protocol still runs.
func NewLib(tr *boundary.Transport, daemon *Daemon, region *shm.Region) *Lib {
	return &Lib{tr: tr, daemon: daemon, region: region}
}

// Region returns the kernel-side view of the lakeShm mapping.
func (l *Lib) Region() *shm.Region { return l.region }

// Stats reports remoted call count and cumulative modeled channel time.
func (l *Lib) Stats() (calls int64, channelTime time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.calls, l.remotedTime
}

// call performs one remoted invocation end to end.
func (l *Lib) call(cmd *Command) (*Response, error) {
	cmd.Seq = l.seq.Add(1)
	frame, err := MarshalCommand(cmd)
	if err != nil {
		return nil, err
	}
	l.callMu.Lock()
	defer l.callMu.Unlock()
	if err := l.tr.SendToUser(frame); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTransport, err)
	}
	if !l.daemon.PumpOne() {
		return nil, fmt.Errorf("%w: daemon did not observe command", ErrTransport)
	}
	respFrame, ok := l.tr.RecvInKernel()
	if !ok {
		return nil, fmt.Errorf("%w: no response", ErrTransport)
	}
	resp, err := UnmarshalResponse(respFrame)
	if err != nil {
		return nil, err
	}
	if resp.Seq != cmd.Seq {
		return nil, fmt.Errorf("%w: response seq %d for command %d",
			ErrTransport, resp.Seq, cmd.Seq)
	}
	// Charge the channel's modeled cost for what actually crossed the
	// boundary in both directions (Fig 6's size-dependent overhead).
	d := l.tr.ChargeRoundTrip(len(frame) + len(respFrame))
	l.mu.Lock()
	l.calls++
	l.remotedTime += d
	l.mu.Unlock()
	return resp, nil
}

func (l *Lib) callRes(cmd *Command) (cuda.Result, *Response) {
	resp, err := l.call(cmd)
	if err != nil {
		return cuda.ErrUnknown, nil
	}
	return cuda.Result(resp.Result), resp
}

func val(resp *Response, i int) uint64 {
	if resp == nil || i >= len(resp.Vals) {
		return 0
	}
	return resp.Vals[i]
}

// CuInit remotes cuInit.
func (l *Lib) CuInit() cuda.Result {
	r, _ := l.callRes(&Command{API: APICuInit})
	return r
}

// CuDeviceGetCount remotes cuDeviceGetCount.
func (l *Lib) CuDeviceGetCount() (int, cuda.Result) {
	r, resp := l.callRes(&Command{API: APICuDeviceGetCount})
	return int(val(resp, 0)), r
}

// CuDeviceGetName remotes cuDeviceGetName.
func (l *Lib) CuDeviceGetName() (string, cuda.Result) {
	r, resp := l.callRes(&Command{API: APICuDeviceGetName})
	if resp == nil {
		return "", r
	}
	return string(resp.Blob), r
}

// CuCtxCreate remotes cuCtxCreate; client tags the context for utilization
// attribution.
func (l *Lib) CuCtxCreate(client string) (uint64, cuda.Result) {
	r, resp := l.callRes(&Command{API: APICuCtxCreate, Name: client})
	return val(resp, 0), r
}

// CuCtxDestroy remotes cuCtxDestroy.
func (l *Lib) CuCtxDestroy(ctx uint64) cuda.Result {
	r, _ := l.callRes(&Command{API: APICuCtxDestroy, Args: []uint64{ctx}})
	return r
}

// CuMemAlloc remotes cuMemAlloc.
func (l *Lib) CuMemAlloc(size int64) (gpu.DevPtr, cuda.Result) {
	r, resp := l.callRes(&Command{API: APICuMemAlloc, Args: []uint64{uint64(size)}})
	return gpu.DevPtr(val(resp, 0)), r
}

// CuMemGetInfo remotes cuMemGetInfo: free and total device memory.
func (l *Lib) CuMemGetInfo() (free, total int64, r cuda.Result) {
	r, resp := l.callRes(&Command{API: APICuMemGetInfo})
	return int64(val(resp, 0)), int64(val(resp, 1)), r
}

// CuMemFree remotes cuMemFree.
func (l *Lib) CuMemFree(ptr gpu.DevPtr) cuda.Result {
	r, _ := l.callRes(&Command{API: APICuMemFree, Args: []uint64{uint64(ptr)}})
	return r
}

// CuMemcpyHtoDShm copies from a lakeShm buffer to device memory — the
// zero-copy path: only the offset crosses the boundary.
func (l *Lib) CuMemcpyHtoDShm(dst gpu.DevPtr, src *shm.Buffer, n int64) cuda.Result {
	if n > src.Size() {
		return cuda.ErrInvalidValue
	}
	r, _ := l.callRes(&Command{
		API:  APICuMemcpyHtoD,
		Args: []uint64{uint64(dst), uint64(src.Offset()), uint64(n), 1},
	})
	return r
}

// CuMemcpyHtoD copies from an ordinary kernel buffer to device memory. The
// payload rides inline in the command — the extra-copy path that §4.1 notes
// still works "if applications do not use lakeShm ... this will just cause
// extra data copies" (and the correspondingly larger Fig 6 charge).
func (l *Lib) CuMemcpyHtoD(dst gpu.DevPtr, src []byte) cuda.Result {
	r, _ := l.callRes(&Command{
		API:  APICuMemcpyHtoD,
		Args: []uint64{uint64(dst), 0, uint64(len(src)), 0},
		Blob: src,
	})
	return r
}

// CuMemcpyDtoHShm copies device memory into a lakeShm buffer (zero-copy).
func (l *Lib) CuMemcpyDtoHShm(dst *shm.Buffer, src gpu.DevPtr, n int64) cuda.Result {
	if n > dst.Size() {
		return cuda.ErrInvalidValue
	}
	r, _ := l.callRes(&Command{
		API:  APICuMemcpyDtoH,
		Args: []uint64{uint64(src), uint64(dst.Offset()), uint64(n), 1},
	})
	return r
}

// CuMemcpyDtoH copies device memory into an ordinary kernel buffer; the data
// rides back inline in the response (extra copy).
func (l *Lib) CuMemcpyDtoH(dst []byte, src gpu.DevPtr) cuda.Result {
	r, resp := l.callRes(&Command{
		API:  APICuMemcpyDtoH,
		Args: []uint64{uint64(src), 0, uint64(len(dst)), 0},
	})
	if r == cuda.Success && resp != nil {
		copy(dst, resp.Blob)
	}
	return r
}

// CuModuleLoad remotes cuModuleLoad.
func (l *Lib) CuModuleLoad(path string) (uint64, cuda.Result) {
	r, resp := l.callRes(&Command{API: APICuModuleLoad, Name: path})
	return val(resp, 0), r
}

// CuModuleGetFunction remotes cuModuleGetFunction.
func (l *Lib) CuModuleGetFunction(module uint64, name string) (uint64, cuda.Result) {
	r, resp := l.callRes(&Command{
		API:  APICuModuleGetFunction,
		Args: []uint64{module},
		Name: name,
	})
	return val(resp, 0), r
}

// CuLaunchKernel remotes cuLaunchKernel.
func (l *Lib) CuLaunchKernel(ctx, fn uint64, args []uint64) cuda.Result {
	all := make([]uint64, 0, 2+len(args))
	all = append(all, ctx, fn)
	all = append(all, args...)
	r, _ := l.callRes(&Command{API: APICuLaunchKernel, Args: all})
	return r
}

// CuCtxSynchronize remotes cuCtxSynchronize.
func (l *Lib) CuCtxSynchronize(ctx uint64) cuda.Result {
	r, _ := l.callRes(&Command{API: APICuCtxSynchronize, Args: []uint64{ctx}})
	return r
}

// NvmlGetUtilization remotes the NVML utilization query policies sample
// (Fig 3's "LAKE-remoted nvml API").
func (l *Lib) NvmlGetUtilization() (gpuPct, memPct int, r cuda.Result) {
	r, resp := l.callRes(&Command{API: APINvmlUtilization})
	return int(val(resp, 0)), int(val(resp, 1)), r
}

// CuStreamCreate remotes cuStreamCreate on the given context.
func (l *Lib) CuStreamCreate(ctx uint64) (uint64, cuda.Result) {
	r, resp := l.callRes(&Command{API: APICuStreamCreate, Args: []uint64{ctx}})
	return val(resp, 0), r
}

// CuStreamDestroy remotes cuStreamDestroy.
func (l *Lib) CuStreamDestroy(stream uint64) cuda.Result {
	r, _ := l.callRes(&Command{API: APICuStreamDestroy, Args: []uint64{stream}})
	return r
}

// CuStreamSynchronize remotes cuStreamSynchronize, draining the stream's
// virtual timeline.
func (l *Lib) CuStreamSynchronize(stream uint64) cuda.Result {
	r, _ := l.callRes(&Command{API: APICuStreamSynchronize, Args: []uint64{stream}})
	return r
}

// CuMemcpyHtoDShmAsync enqueues a zero-copy host-to-device transfer on a
// stream; pair with CuStreamSynchronize before launching dependent work
// synchronously, or order with further async ops on the same stream.
func (l *Lib) CuMemcpyHtoDShmAsync(dst gpu.DevPtr, src *shm.Buffer, n int64, stream uint64) cuda.Result {
	if n > src.Size() {
		return cuda.ErrInvalidValue
	}
	r, _ := l.callRes(&Command{
		API:  APICuMemcpyHtoDAsync,
		Args: []uint64{uint64(dst), uint64(src.Offset()), uint64(n), stream},
	})
	return r
}

// CuMemcpyDtoHShmAsync enqueues a zero-copy device-to-host transfer on a
// stream. The shm buffer must not be read before the stream synchronizes.
func (l *Lib) CuMemcpyDtoHShmAsync(dst *shm.Buffer, src gpu.DevPtr, n int64, stream uint64) cuda.Result {
	if n > dst.Size() {
		return cuda.ErrInvalidValue
	}
	r, _ := l.callRes(&Command{
		API:  APICuMemcpyDtoHAsync,
		Args: []uint64{uint64(src), uint64(dst.Offset()), uint64(n), stream},
	})
	return r
}

// CuLaunchKernelAsync remotes a kernel launch onto a stream.
func (l *Lib) CuLaunchKernelAsync(ctx, fn, stream uint64, args []uint64) cuda.Result {
	all := make([]uint64, 0, 3+len(args))
	all = append(all, ctx, fn, stream)
	all = append(all, args...)
	r, _ := l.callRes(&Command{API: APICuLaunchKernelAsync, Args: all})
	return r
}

// CallHighLevel invokes a custom high-level API registered in lakeD under
// name (§4.4). args and blob are handler-defined; large inputs should be
// staged in lakeShm and referenced by offset in args.
func (l *Lib) CallHighLevel(name string, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
	r, resp := l.callRes(&Command{API: APIHighLevel, Name: name, Args: args, Blob: blob})
	if resp == nil {
		return nil, nil, r
	}
	return resp.Vals, resp.Blob, r
}
