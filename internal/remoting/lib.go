package remoting

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/boundary"
	"lakego/internal/cuda"
	"lakego/internal/flightrec"
	"lakego/internal/gpu"
	"lakego/internal/shm"
	"lakego/internal/telemetry"
)

// ErrTransport reports a remoting transport failure (closed channel, lost
// response).
var ErrTransport = errors.New("remoting: transport failure")

// Lib is lakeLib: the kernel-side module that exposes accelerator APIs as
// symbols to kernel space. Each method below is one exported stub — same
// name as the user-space API it remotes, per §4 ("to support the cuMemAlloc
// CUDA API in kernel space, we must have a function with the same name in
// lakeLib").
//
// Every call marshals a command, ships it through the boundary channel,
// drives the daemon, and unmarshals the response, charging the channel's
// modeled round-trip cost exactly once. Lib is safe for concurrent use.
//
// The call path is allocation-free at steady state: command, response, and
// frame storage live in a pooled callState (acquired per call, recycled on
// completion), and the wire codecs are the Append*/Decode*Into variants
// that reuse that storage. The CI allocgate job holds the path at
// 0 allocs/op.
type Lib struct {
	tr     boundary.Channel
	daemon *Daemon
	region *shm.Region

	seq atomic.Uint64
	// shardTag is OR'd into the high bits of every issued sequence number
	// (SetShardTag). In a fleet each shard's lib gets a distinct tag, so
	// sequence spaces — and therefore journal keyspaces — stay disjoint
	// when one shard's journal is migrated into another's daemon.
	shardTag uint64

	// callMu serializes the send/serve/receive exchange so concurrent
	// kernel threads cannot interleave on the command socket and steal
	// each other's responses (the prototype's Netlink usage is likewise
	// serialized per socket).
	callMu sync.Mutex

	// pool recycles callState so the steady-state call path performs no
	// heap allocation (the arena/pool the ring transport's 0 allocs/op
	// target requires).
	pool sync.Pool

	mu          sync.Mutex
	calls       int64
	remotedTime time.Duration

	// res arms the fault-tolerant call path; nil keeps the legacy
	// single-attempt exchange byte-for-byte unchanged.
	res    *Resilience
	rng    *lockedRand
	rstats ResilienceStats
	// dead is set once a call abandons the daemon as unrecoverable; later
	// calls fail fast with ErrDaemonDead (mapped to cuda.ErrNotReady by the
	// stubs, routing workloads to their CPU fallback) until the supervisor
	// restores service and calls MarkRecovered.
	dead bool

	tel LibTelemetry

	// rec is the flight recorder's kernel-domain view; nil-safe like the
	// telemetry instruments. It also serves as the trace-ID allocator for
	// the whole stack, so IDs are unique across lib, batcher, and daemon.
	rec *flightrec.Recorder
}

// callState is one remoted invocation's working storage: the command being
// issued, the marshaled wire frame, and the decoded response. States are
// pooled; all slices keep their capacity across calls, so a warmed-up Lib
// issues commands without touching the heap.
type callState struct {
	cmd   Command
	resp  Response
	frame []byte
}

// newCall acquires a pooled callState primed for api. The embedded command
// and response keep their slice capacities; lengths and scalar fields are
// reset.
func (l *Lib) newCall(api APIID) *callState {
	cs, _ := l.pool.Get().(*callState)
	if cs == nil {
		cs = new(callState)
	}
	cs.cmd = Command{API: api, Args: cs.cmd.Args[:0]}
	cs.resp.Seq = 0
	cs.resp.Result = 0
	cs.resp.Vals = cs.resp.Vals[:0]
	cs.resp.Blob = cs.resp.Blob[:0]
	return cs
}

// done recycles a callState. References into caller memory (inline blob,
// name) are dropped so the pool never pins a caller's buffer; the state's
// own slices keep their capacity.
func (l *Lib) done(cs *callState) {
	cs.cmd.Name = ""
	cs.cmd.Blob = nil
	l.pool.Put(cs)
}

// LibTelemetry is lakeLib's instrument set; all fields may be nil.
type LibTelemetry struct {
	// Calls counts completed remoted invocations.
	Calls *telemetry.Counter
	// CallLatency observes per-call end-to-end virtual latency, including
	// backoff waits on the resilient path.
	CallLatency *telemetry.Histogram
	// Mirrors of the ResilienceStats counters, so fault-machinery activity
	// is visible on the exposition endpoints without polling the struct.
	Retries          *telemetry.Counter
	CorruptResponses *telemetry.Counter
	StaleResponses   *telemetry.Counter
	Recoveries       *telemetry.Counter
	DeadlineExceeded *telemetry.Counter
	DaemonDead       *telemetry.Counter
	// Tracer produces per-call spans when enabled.
	Tracer *telemetry.Tracer
}

// SetTelemetry attaches instruments. Must be called during runtime
// construction, before any traffic.
func (l *Lib) SetTelemetry(tel LibTelemetry) {
	l.tel = tel
}

// SetFlightRecorder attaches the flight recorder. Must be called during
// runtime construction, before any traffic; nil (the default) keeps every
// emission a no-op and every call untraced.
func (l *Lib) SetFlightRecorder(rec *flightrec.Recorder) {
	l.rec = rec
}

// NewLib creates the kernel-side stub library over any boundary channel —
// the legacy Transport or the shm descriptor-ring RingTransport. The daemon
// is driven synchronously from within calls, which keeps virtual-time
// accounting deterministic while the full wire protocol still runs.
func NewLib(tr boundary.Channel, daemon *Daemon, region *shm.Region) *Lib {
	return &Lib{tr: tr, daemon: daemon, region: region}
}

// Region returns the kernel-side view of the lakeShm mapping.
func (l *Lib) Region() *shm.Region { return l.region }

// SetShardTag namespaces this lib's sequence numbers under a fleet shard
// ordinal: bits 48+ carry ord, the low 48 bits count calls. Must be called
// during construction, before any traffic. Ordinal 0 (and a never-tagged
// lib) keeps the original sequence space byte-for-byte.
func (l *Lib) SetShardTag(ord int) {
	l.shardTag = uint64(ord) << 48
}

// Stats reports remoted call count and cumulative modeled channel time.
func (l *Lib) Stats() (calls int64, channelTime time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.calls, l.remotedTime
}

// EnableResilience arms the fault-tolerant call path: per-call deadlines,
// bounded retry with exponential backoff and seeded jitter, and (via
// r.Hook) supervisor-driven daemon recovery mid-call. With faults absent
// the resilient path performs exactly the legacy exchange — no extra
// clock charges and no PRNG draws — so crash-free runs stay bit-identical.
func (l *Lib) EnableResilience(r Resilience) {
	r.Retry = r.Retry.withDefaults()
	if r.MaxRecoveries <= 0 {
		r.MaxRecoveries = DefaultResilience().MaxRecoveries
	}
	l.mu.Lock()
	l.res = &r
	l.rng = newLockedRand(r.Seed)
	l.mu.Unlock()
}

// ResilienceStats returns a snapshot of client-side fault-handling counters.
func (l *Lib) ResilienceStats() ResilienceStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rstats
}

// Healthy reports whether the daemon is believed alive. False means a call
// declared it dead (ErrDaemonDead); stubs return cuda.ErrNotReady and
// workloads run their CPU fallback until MarkRecovered.
func (l *Lib) Healthy() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.dead
}

// MarkRecovered clears the daemon-dead latch after the supervisor has
// restarted lakeD and confirmed liveness (typically via Ping).
func (l *Lib) MarkRecovered() {
	l.mu.Lock()
	l.dead = false
	l.mu.Unlock()
}

// Ping remotes the supervision heartbeat, returning the daemon's restart
// generation and served-command count. It bypasses the daemon-dead fast
// path so the supervisor can probe a daemon it just restarted.
func (l *Lib) Ping() (generation uint64, handled int64, ok bool) {
	cs := l.newCall(APIPing)
	defer l.done(cs)
	if err := l.call(cs); err != nil || cuda.Result(cs.resp.Result) != cuda.Success {
		return 0, 0, false
	}
	return val(&cs.resp, 0), int64(val(&cs.resp, 1)), true
}

func (l *Lib) resilience() *Resilience {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.res
}

// call performs one remoted invocation end to end: cs.cmd goes out, cs.resp
// holds the decoded response on a nil return.
func (l *Lib) call(cs *callState) error {
	cmd := &cs.cmd
	cmd.Seq = l.shardTag | l.seq.Add(1)
	// A trace ID is assigned only when something will consume it (recorder
	// or tracer enabled); otherwise the command keeps TraceID 0 and the wire
	// frame is byte-identical to the untraced protocol. Batcher flushes
	// arrive with an externally assigned ID, which is preserved.
	if cmd.TraceID == 0 && (l.rec.Enabled() || l.tel.Tracer.Enabled()) {
		cmd.TraceID = l.rec.NextTraceID()
	}
	marshalWall := time.Now()
	frame, err := AppendCommand(cs.frame[:0], cmd)
	cs.frame = frame
	if err != nil {
		return err
	}
	marshalTook := time.Since(marshalWall)
	l.callMu.Lock()
	defer l.callMu.Unlock()
	vstart := l.tr.Clock().Now()
	l.rec.Emit(flightrec.DomainKernel, flightrec.EvCallStart,
		cmd.TraceID, cmd.Seq, 0, uint64(cmd.API), uint64(len(frame)), 0)
	l.rec.Emit(flightrec.DomainKernel, flightrec.EvMarshal,
		cmd.TraceID, cmd.Seq, 0, uint64(marshalTook), uint64(len(frame)), 0)
	if l.tel.Tracer.Enabled() {
		// The span either starts here (a direct call) or joins the open one
		// (a call issued inside a batcher flush span). Marshal is a
		// zero-virtual-width stage: it costs wall time only.
		sp, owner := l.tel.Tracer.StartSpan(cmd.API.String(), cmd.Seq, vstart, cmd.TraceID)
		sp.AddStage("marshal", vstart, vstart, marshalTook)
		if owner {
			defer func() { l.tel.Tracer.FinishSpan(sp, l.tr.Clock().Now()) }()
		}
	}
	res := l.resilience()
	if res == nil {
		err = l.exchangeOnce(cs)
	} else {
		err = l.exchangeResilient(cs, res)
	}
	if err == nil {
		l.tel.Calls.Inc()
		l.tel.CallLatency.ObserveDuration(l.tr.Clock().Now() - vstart)
		l.rec.Emit(flightrec.DomainKernel, flightrec.EvCallEnd,
			cmd.TraceID, cmd.Seq, 0, uint64(cmd.API), uint64(uint32(cs.resp.Result)), 0)
	} else {
		l.rec.Emit(flightrec.DomainKernel, flightrec.EvCallEnd,
			cmd.TraceID, cmd.Seq, 0, uint64(cmd.API), uint64(uint32(cuda.ErrUnknown)), 1)
	}
	return err
}

// exchangeOnce is the legacy single-attempt exchange: one send, one pump,
// one receive, strict sequence match. Kept verbatim so stacks that never
// arm resilience behave exactly as before.
func (l *Lib) exchangeOnce(cs *callState) error {
	cmd := &cs.cmd
	if err := l.tr.SendToUser(cs.frame); err != nil {
		return fmt.Errorf("%w: %v", ErrTransport, err)
	}
	if !l.daemon.PumpOne() {
		return fmt.Errorf("%w: daemon did not observe command", ErrTransport)
	}
	demuxWall := time.Now()
	respFrame, ok := l.tr.RecvInKernel()
	if !ok {
		return fmt.Errorf("%w: no response", ErrTransport)
	}
	if err := DecodeResponseInto(&cs.resp, respFrame); err != nil {
		return err
	}
	if cs.resp.Seq != cmd.Seq {
		return fmt.Errorf("%w: response seq %d for command %d",
			ErrTransport, cs.resp.Seq, cmd.Seq)
	}
	if sp := l.tel.Tracer.Open(cmd.TraceID); sp != nil {
		vnow := l.tr.Clock().Now()
		sp.AddStage("demux", vnow, vnow, time.Since(demuxWall))
	}
	l.rec.Emit(flightrec.DomainKernel, flightrec.EvDemux,
		cmd.TraceID, cmd.Seq, 0, uint64(time.Since(demuxWall)), 0, 0)
	// Charge the channel's modeled cost for what actually crossed the
	// boundary in both directions (Fig 6's size-dependent overhead).
	chTimer := l.tel.Tracer.Open(cmd.TraceID).StageTimer("channel", l.tr.Clock().Now())
	d := l.tr.ChargeRoundTrip(len(cs.frame) + len(respFrame))
	chTimer.End(l.tr.Clock().Now())
	l.rec.Emit(flightrec.DomainKernel, flightrec.EvChannel,
		cmd.TraceID, cmd.Seq, 0, uint64(d), uint64(len(cs.frame)+len(respFrame)), 0)
	l.mu.Lock()
	l.calls++
	l.remotedTime += d
	l.mu.Unlock()
	return nil
}

// exchangeResilient performs one call under the armed Resilience: bounded
// retransmission of the same sequence number (the daemon-side journal makes
// redelivery exactly-once), exponential backoff with deterministic jitter
// charged to the virtual clock, a per-call virtual-time deadline, and the
// recovery hook when a full retry round fails. Every error is wrapped with
// the command name and sequence for attribution.
func (l *Lib) exchangeResilient(cs *callState, res *Resilience) error {
	cmd := &cs.cmd
	if cmd.API != APIPing && !l.Healthy() {
		l.mu.Lock()
		l.rstats.DaemonDead++
		l.mu.Unlock()
		l.tel.DaemonDead.Inc()
		return fmt.Errorf("%s seq=%d: %w", cmd.API, cmd.Seq, ErrDaemonDead)
	}
	start := l.tr.Clock().Now()
	overDeadline := func() bool {
		return res.CallDeadline > 0 && l.tr.Clock().Now()-start > res.CallDeadline
	}
	recoveries := 0
	attempt := 0 // failed attempts in the current retry round
	var lastErr error
	for {
		if overDeadline() {
			l.mu.Lock()
			l.rstats.DeadlineExceeded++
			l.mu.Unlock()
			l.tel.DeadlineExceeded.Inc()
			return fmt.Errorf("%s seq=%d after %v: %w (last: %v)",
				cmd.API, cmd.Seq, l.tr.Clock().Now()-start, ErrDeadlineExceeded, lastErr)
		}
		err := l.attemptOnce(cs)
		if err == nil {
			return nil
		}
		lastErr = err
		attempt++
		if attempt < res.Retry.MaxAttempts {
			// Wait out the backoff on the virtual clock, then retransmit
			// the same frame: same sequence, so a daemon that already
			// executed it answers from its journal.
			l.mu.Lock()
			l.rstats.Retries++
			l.mu.Unlock()
			l.tel.Retries.Inc()
			l.rec.Emit(flightrec.DomainKernel, flightrec.EvRetry,
				cmd.TraceID, cmd.Seq, 0, uint64(attempt), 0, 0)
			l.tr.Clock().Advance(res.Retry.BackoffFor(attempt-1, l.rng.draw()))
			continue
		}
		// Full round exhausted: the daemon is unresponsive. Give the
		// supervisor a chance to recover it, then redeliver.
		if res.Hook != nil && recoveries < res.MaxRecoveries &&
			res.Hook.DaemonUnresponsive(cmd.API, cmd.Seq, err) {
			recoveries++
			attempt = 0
			l.mu.Lock()
			l.rstats.Recoveries++
			l.mu.Unlock()
			l.tel.Recoveries.Inc()
			continue
		}
		l.mu.Lock()
		l.rstats.DaemonDead++
		l.dead = true
		l.mu.Unlock()
		l.tel.DaemonDead.Inc()
		return fmt.Errorf("%s seq=%d: %w (last: %v)", cmd.API, cmd.Seq, ErrDaemonDead, err)
	}
}

// attemptOnce sends the frame, drives the daemon through everything queued
// (retransmissions and channel duplicates dedup via the journal), and
// demultiplexes responses: corrupt frames and stale sequences are counted
// and discarded; only this call's sequence completes the attempt.
func (l *Lib) attemptOnce(cs *callState) error {
	cmd := &cs.cmd
	if err := l.tr.SendToUser(cs.frame); err != nil {
		return fmt.Errorf("%s seq=%d: %w: %v", cmd.API, cmd.Seq, ErrTransport, err)
	}
	for l.daemon.PumpOne() {
	}
	demuxWall := time.Now()
	for {
		respFrame, ok := l.tr.RecvInKernel()
		if !ok {
			return fmt.Errorf("%s seq=%d: %w: no response", cmd.API, cmd.Seq, ErrTransport)
		}
		if err := DecodeResponseInto(&cs.resp, respFrame); err != nil {
			l.mu.Lock()
			l.rstats.CorruptResponses++
			l.mu.Unlock()
			l.tel.CorruptResponses.Inc()
			continue
		}
		if cs.resp.Seq != cmd.Seq {
			// A duplicate of an earlier call's response, a journal
			// redelivery that raced a completed call, or the daemon's
			// seq-0 reject of a corrupted command.
			l.mu.Lock()
			l.rstats.StaleResponses++
			l.mu.Unlock()
			l.tel.StaleResponses.Inc()
			continue
		}
		if sp := l.tel.Tracer.Open(cmd.TraceID); sp != nil {
			vnow := l.tr.Clock().Now()
			sp.AddStage("demux", vnow, vnow, time.Since(demuxWall))
		}
		l.rec.Emit(flightrec.DomainKernel, flightrec.EvDemux,
			cmd.TraceID, cmd.Seq, 0, uint64(time.Since(demuxWall)), 0, 0)
		chTimer := l.tel.Tracer.Open(cmd.TraceID).StageTimer("channel", l.tr.Clock().Now())
		d := l.tr.ChargeRoundTrip(len(cs.frame) + len(respFrame))
		chTimer.End(l.tr.Clock().Now())
		l.rec.Emit(flightrec.DomainKernel, flightrec.EvChannel,
			cmd.TraceID, cmd.Seq, 0, uint64(d), uint64(len(cs.frame)+len(respFrame)), 0)
		l.mu.Lock()
		l.calls++
		l.remotedTime += d
		l.mu.Unlock()
		return nil
	}
}

// doCall runs cs through the call path and maps transport-level failures to
// CUDA results the way the stubs surface them. On failure the response's
// payload slices are emptied so stale values from a recycled state can
// never leak into a caller.
func (l *Lib) doCall(cs *callState) cuda.Result {
	if err := l.call(cs); err != nil {
		cs.resp.Vals = cs.resp.Vals[:0]
		cs.resp.Blob = cs.resp.Blob[:0]
		if errors.Is(err, ErrDaemonDead) || errors.Is(err, ErrDeadlineExceeded) {
			// The accelerator service is unavailable, not the request
			// invalid: surface CUDA_ERROR_SYSTEM_NOT_READY so callers
			// route to their CPU fallback (Fig 3 policy handles the rest).
			return cuda.ErrNotReady
		}
		return cuda.ErrUnknown
	}
	return cuda.Result(cs.resp.Result)
}

func val(resp *Response, i int) uint64 {
	if resp == nil || i >= len(resp.Vals) {
		return 0
	}
	return resp.Vals[i]
}

// CuInit remotes cuInit.
func (l *Lib) CuInit() cuda.Result {
	cs := l.newCall(APICuInit)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuDeviceGetCount remotes cuDeviceGetCount.
func (l *Lib) CuDeviceGetCount() (int, cuda.Result) {
	cs := l.newCall(APICuDeviceGetCount)
	r := l.doCall(cs)
	n := int(val(&cs.resp, 0))
	l.done(cs)
	return n, r
}

// CuDeviceGetName remotes cuDeviceGetName.
func (l *Lib) CuDeviceGetName() (string, cuda.Result) {
	cs := l.newCall(APICuDeviceGetName)
	r := l.doCall(cs)
	name := string(cs.resp.Blob)
	l.done(cs)
	return name, r
}

// CuCtxCreate remotes cuCtxCreate; client tags the context for utilization
// attribution.
func (l *Lib) CuCtxCreate(client string) (uint64, cuda.Result) {
	cs := l.newCall(APICuCtxCreate)
	cs.cmd.Name = client
	r := l.doCall(cs)
	h := val(&cs.resp, 0)
	l.done(cs)
	return h, r
}

// CuCtxCreateOnDevice remotes cuCtxCreate pinned to a device ordinal,
// bypassing lakeD's placement policy. The ordinal travels as ordinal+1 so
// the zero value (and the argless single-device wire shape) still means
// "let placement choose".
func (l *Lib) CuCtxCreateOnDevice(client string, ord int) (uint64, cuda.Result) {
	cs := l.newCall(APICuCtxCreate)
	cs.cmd.Name = client
	cs.cmd.Args = append(cs.cmd.Args, uint64(ord)+1)
	r := l.doCall(cs)
	h := val(&cs.resp, 0)
	l.done(cs)
	return h, r
}

// CuCtxDestroy remotes cuCtxDestroy.
func (l *Lib) CuCtxDestroy(ctx uint64) cuda.Result {
	cs := l.newCall(APICuCtxDestroy)
	cs.cmd.Args = append(cs.cmd.Args, ctx)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuMemAlloc remotes cuMemAlloc.
func (l *Lib) CuMemAlloc(size int64) (gpu.DevPtr, cuda.Result) {
	cs := l.newCall(APICuMemAlloc)
	cs.cmd.Args = append(cs.cmd.Args, uint64(size))
	r := l.doCall(cs)
	ptr := gpu.DevPtr(val(&cs.resp, 0))
	l.done(cs)
	return ptr, r
}

// CuMemAllocOnDevice remotes cuMemAlloc against an explicit device
// ordinal; the returned pointer carries the ordinal tag.
func (l *Lib) CuMemAllocOnDevice(size int64, ord int) (gpu.DevPtr, cuda.Result) {
	cs := l.newCall(APICuMemAlloc)
	cs.cmd.Args = append(cs.cmd.Args, uint64(size), uint64(ord))
	r := l.doCall(cs)
	ptr := gpu.DevPtr(val(&cs.resp, 0))
	l.done(cs)
	return ptr, r
}

// CuMemGetInfo remotes cuMemGetInfo: free and total device memory.
func (l *Lib) CuMemGetInfo() (free, total int64, r cuda.Result) {
	cs := l.newCall(APICuMemGetInfo)
	r = l.doCall(cs)
	free, total = int64(val(&cs.resp, 0)), int64(val(&cs.resp, 1))
	l.done(cs)
	return free, total, r
}

// CuMemFree remotes cuMemFree.
func (l *Lib) CuMemFree(ptr gpu.DevPtr) cuda.Result {
	cs := l.newCall(APICuMemFree)
	cs.cmd.Args = append(cs.cmd.Args, uint64(ptr))
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuMemcpyHtoDShm copies from a lakeShm buffer to device memory — the
// zero-copy path: only the offset crosses the boundary.
func (l *Lib) CuMemcpyHtoDShm(dst gpu.DevPtr, src *shm.Buffer, n int64) cuda.Result {
	if n > src.Size() {
		return cuda.ErrInvalidValue
	}
	cs := l.newCall(APICuMemcpyHtoD)
	cs.cmd.Args = append(cs.cmd.Args, uint64(dst), uint64(src.Offset()), uint64(n), 1)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuMemcpyHtoD copies from an ordinary kernel buffer to device memory. The
// payload rides inline in the command — the extra-copy path that §4.1 notes
// still works "if applications do not use lakeShm ... this will just cause
// extra data copies" (and the correspondingly larger Fig 6 charge).
func (l *Lib) CuMemcpyHtoD(dst gpu.DevPtr, src []byte) cuda.Result {
	cs := l.newCall(APICuMemcpyHtoD)
	cs.cmd.Args = append(cs.cmd.Args, uint64(dst), 0, uint64(len(src)), 0)
	cs.cmd.Blob = src
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuMemcpyDtoHShm copies device memory into a lakeShm buffer (zero-copy).
func (l *Lib) CuMemcpyDtoHShm(dst *shm.Buffer, src gpu.DevPtr, n int64) cuda.Result {
	if n > dst.Size() {
		return cuda.ErrInvalidValue
	}
	cs := l.newCall(APICuMemcpyDtoH)
	cs.cmd.Args = append(cs.cmd.Args, uint64(src), uint64(dst.Offset()), uint64(n), 1)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuMemcpyDtoH copies device memory into an ordinary kernel buffer; the data
// rides back inline in the response (extra copy).
func (l *Lib) CuMemcpyDtoH(dst []byte, src gpu.DevPtr) cuda.Result {
	cs := l.newCall(APICuMemcpyDtoH)
	cs.cmd.Args = append(cs.cmd.Args, uint64(src), 0, uint64(len(dst)), 0)
	r := l.doCall(cs)
	if r == cuda.Success {
		copy(dst, cs.resp.Blob)
	}
	l.done(cs)
	return r
}

// CuModuleLoad remotes cuModuleLoad.
func (l *Lib) CuModuleLoad(path string) (uint64, cuda.Result) {
	cs := l.newCall(APICuModuleLoad)
	cs.cmd.Name = path
	r := l.doCall(cs)
	h := val(&cs.resp, 0)
	l.done(cs)
	return h, r
}

// CuModuleGetFunction remotes cuModuleGetFunction.
func (l *Lib) CuModuleGetFunction(module uint64, name string) (uint64, cuda.Result) {
	cs := l.newCall(APICuModuleGetFunction)
	cs.cmd.Name = name
	cs.cmd.Args = append(cs.cmd.Args, module)
	r := l.doCall(cs)
	h := val(&cs.resp, 0)
	l.done(cs)
	return h, r
}

// CuLaunchKernel remotes cuLaunchKernel.
func (l *Lib) CuLaunchKernel(ctx, fn uint64, args []uint64) cuda.Result {
	cs := l.newCall(APICuLaunchKernel)
	cs.cmd.Args = append(cs.cmd.Args, ctx, fn)
	cs.cmd.Args = append(cs.cmd.Args, args...)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuCtxSynchronize remotes cuCtxSynchronize.
func (l *Lib) CuCtxSynchronize(ctx uint64) cuda.Result {
	cs := l.newCall(APICuCtxSynchronize)
	cs.cmd.Args = append(cs.cmd.Args, ctx)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// NvmlGetUtilization remotes the NVML utilization query policies sample
// (Fig 3's "LAKE-remoted nvml API").
func (l *Lib) NvmlGetUtilization() (gpuPct, memPct int, r cuda.Result) {
	cs := l.newCall(APINvmlUtilization)
	r = l.doCall(cs)
	gpuPct, memPct = int(val(&cs.resp, 0)), int(val(&cs.resp, 1))
	l.done(cs)
	return gpuPct, memPct, r
}

// NvmlGetDeviceUtilization remotes a single pool device's utilization by
// ordinal (NvmlGetUtilization aggregates across the pool).
func (l *Lib) NvmlGetDeviceUtilization(ord int) (gpuPct, memPct int, r cuda.Result) {
	cs := l.newCall(APINvmlDeviceUtilization)
	cs.cmd.Args = append(cs.cmd.Args, uint64(ord))
	r = l.doCall(cs)
	gpuPct, memPct = int(val(&cs.resp, 0)), int(val(&cs.resp, 1))
	l.done(cs)
	return gpuPct, memPct, r
}

// CuStreamCreate remotes cuStreamCreate on the given context.
func (l *Lib) CuStreamCreate(ctx uint64) (uint64, cuda.Result) {
	cs := l.newCall(APICuStreamCreate)
	cs.cmd.Args = append(cs.cmd.Args, ctx)
	r := l.doCall(cs)
	h := val(&cs.resp, 0)
	l.done(cs)
	return h, r
}

// CuStreamDestroy remotes cuStreamDestroy.
func (l *Lib) CuStreamDestroy(stream uint64) cuda.Result {
	cs := l.newCall(APICuStreamDestroy)
	cs.cmd.Args = append(cs.cmd.Args, stream)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuStreamSynchronize remotes cuStreamSynchronize, draining the stream's
// virtual timeline.
func (l *Lib) CuStreamSynchronize(stream uint64) cuda.Result {
	cs := l.newCall(APICuStreamSynchronize)
	cs.cmd.Args = append(cs.cmd.Args, stream)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuMemcpyHtoDShmAsync enqueues a zero-copy host-to-device transfer on a
// stream; pair with CuStreamSynchronize before launching dependent work
// synchronously, or order with further async ops on the same stream.
func (l *Lib) CuMemcpyHtoDShmAsync(dst gpu.DevPtr, src *shm.Buffer, n int64, stream uint64) cuda.Result {
	if n > src.Size() {
		return cuda.ErrInvalidValue
	}
	cs := l.newCall(APICuMemcpyHtoDAsync)
	cs.cmd.Args = append(cs.cmd.Args, uint64(dst), uint64(src.Offset()), uint64(n), stream)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuMemcpyDtoHShmAsync enqueues a zero-copy device-to-host transfer on a
// stream. The shm buffer must not be read before the stream synchronizes.
func (l *Lib) CuMemcpyDtoHShmAsync(dst *shm.Buffer, src gpu.DevPtr, n int64, stream uint64) cuda.Result {
	if n > dst.Size() {
		return cuda.ErrInvalidValue
	}
	cs := l.newCall(APICuMemcpyDtoHAsync)
	cs.cmd.Args = append(cs.cmd.Args, uint64(src), uint64(dst.Offset()), uint64(n), stream)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CuLaunchKernelAsync remotes a kernel launch onto a stream.
func (l *Lib) CuLaunchKernelAsync(ctx, fn, stream uint64, args []uint64) cuda.Result {
	cs := l.newCall(APICuLaunchKernelAsync)
	cs.cmd.Args = append(cs.cmd.Args, ctx, fn, stream)
	cs.cmd.Args = append(cs.cmd.Args, args...)
	r := l.doCall(cs)
	l.done(cs)
	return r
}

// CallHighLevel invokes a custom high-level API registered in lakeD under
// name (§4.4). args and blob are handler-defined; large inputs should be
// staged in lakeShm and referenced by offset in args. The returned slices
// are the caller's to keep (copied out of the pooled response).
func (l *Lib) CallHighLevel(name string, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
	cs := l.newCall(APIHighLevel)
	cs.cmd.Name = name
	cs.cmd.Args = append(cs.cmd.Args, args...)
	cs.cmd.Blob = blob
	r := l.doCall(cs)
	var vals []uint64
	var out []byte
	if len(cs.resp.Vals) > 0 {
		vals = append(vals, cs.resp.Vals...)
	}
	if len(cs.resp.Blob) > 0 {
		out = append(out, cs.resp.Blob...)
	}
	l.done(cs)
	return vals, out, r
}
