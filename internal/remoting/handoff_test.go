package remoting

import (
	"bytes"
	"testing"
)

// TestHandoffMigrationExactlyOnce is the wire-level migration contract: a
// command executed on shard A whose journal crossed to shard B as a sealed
// handoff frame must, when the same wire frame is redelivered to B, be
// answered byte-identically from the journal — never re-executed.
func TestHandoffMigrationExactlyOnce(t *testing.T) {
	a, b := newStack(t), newStack(t)

	frame, err := MarshalCommand(&Command{API: APICuDeviceGetCount, Seq: 41})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.tr.SendToUser(frame); err != nil {
		t.Fatal(err)
	}
	if !a.daemon.PumpOne() {
		t.Fatal("shard A daemon had nothing to pump")
	}
	respA, ok := a.tr.RecvInKernel()
	if !ok {
		t.Fatal("no response from shard A")
	}
	if got := a.daemon.Executed(); got != 1 {
		t.Fatalf("shard A executed %d commands, want 1", got)
	}

	// Migrate: export A's journal, cross the sealed wire frame, import
	// into B.
	hframe, err := MarshalHandoff(&Handoff{SrcShard: 0, DstShard: 1, Entries: a.daemon.ExportJournal()})
	if err != nil {
		t.Fatal(err)
	}
	h, err := UnmarshalHandoff(hframe)
	if err != nil {
		t.Fatal(err)
	}
	if n := b.daemon.ImportJournal(h.Entries); n == 0 {
		t.Fatal("no journal entries imported into shard B")
	}

	// A flipped bit anywhere in the frame must reject the whole handoff.
	bad := bytes.Clone(hframe)
	bad[len(bad)/2] ^= 0x01
	if _, err := UnmarshalHandoff(bad); err == nil {
		t.Fatal("corrupted handoff frame decoded")
	}

	// Redeliver the original wire frame to B: answered from the migrated
	// journal, byte-identical, zero re-executed.
	if err := b.tr.SendToUser(frame); err != nil {
		t.Fatal(err)
	}
	if !b.daemon.PumpOne() {
		t.Fatal("shard B daemon had nothing to pump")
	}
	respB, ok := b.tr.RecvInKernel()
	if !ok {
		t.Fatal("no response from shard B")
	}
	if !bytes.Equal(respA, respB) {
		t.Fatal("journal-served response differs from the original execution")
	}
	if got := b.daemon.Executed(); got != 0 {
		t.Fatalf("shard B re-executed %d migrated commands", got)
	}
	if got := b.daemon.Redelivered(); got != 1 {
		t.Fatalf("shard B redelivered %d, want 1", got)
	}
}
