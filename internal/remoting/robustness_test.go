package remoting

import (
	"math/rand"
	"sync"
	"testing"

	"lakego/internal/cuda"
	"lakego/internal/shm"
)

// The daemon must survive arbitrary garbage on its socket: corrupt frames
// produce error responses (or are dropped), never panics — a kernel-facing
// daemon cannot crash on malformed input.
func TestDaemonSurvivesGarbageFrames(t *testing.T) {
	s := newStack(t)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		frame := make([]byte, rng.Intn(256))
		rng.Read(frame)
		if err := s.tr.SendToUser(frame); err != nil {
			t.Fatal(err)
		}
		if !s.daemon.PumpOne() {
			t.Fatal("daemon did not consume frame")
		}
		resp, ok := s.tr.RecvInKernel()
		if !ok {
			t.Fatal("daemon sent no response")
		}
		// Whatever came back must parse as a response frame.
		if _, err := UnmarshalResponse(resp); err != nil {
			t.Fatalf("daemon response unparseable: %v", err)
		}
	}
}

// Mutated valid commands (bit flips) must also never panic the daemon.
func TestDaemonSurvivesBitFlips(t *testing.T) {
	s := newStack(t)
	base, err := MarshalCommand(&Command{
		API:  APICuMemcpyHtoD,
		Seq:  1,
		Args: []uint64{1, 2, 3, 4},
		Blob: []byte{1, 2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		frame := append([]byte(nil), base...)
		for flips := 0; flips < 3; flips++ {
			frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
		}
		if err := s.tr.SendToUser(frame); err != nil {
			t.Fatal(err)
		}
		s.daemon.PumpOne()
		s.tr.RecvInKernel()
	}
}

// lakeLib must be safe for concurrent kernel threads: parallel remoted
// calls through one Lib must all succeed with correctly-matched responses.
func TestConcurrentRemotedCalls(t *testing.T) {
	s := newStack(t)
	s.lib.CuInit()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	errs := make(chan string, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ptr, r := s.lib.CuMemAlloc(64)
				if r != cuda.Success {
					errs <- "alloc: " + r.String()
					return
				}
				if r := s.lib.CuMemFree(ptr); r != cuda.Success {
					errs <- "free: " + r.String()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	calls, _ := s.lib.Stats()
	if calls != 1+workers*per*2 {
		t.Fatalf("calls = %d, want %d", calls, 1+workers*per*2)
	}
}

// A panicking high-level handler must fail its request with an error
// response, not kill the daemon (§6.1's trusted-daemon posture).
func TestDaemonSurvivesPanickingHandler(t *testing.T) {
	s := newStack(t)
	s.daemon.RegisterHighLevel("boom", func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
		panic("handler bug")
	})
	if _, _, r := s.lib.CallHighLevel("boom", nil, nil); r != cuda.ErrUnknown {
		t.Fatalf("panicking handler returned %v, want ErrUnknown", r)
	}
	// The daemon keeps serving afterwards.
	if r := s.lib.CuInit(); r != cuda.Success {
		t.Fatalf("daemon dead after handler panic: %v", r)
	}
}
