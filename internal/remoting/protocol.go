// Package remoting implements LAKE's API remoting system: the wire protocol
// between kernel and user space, the kernel-side stub library (lakeLib) and
// the user-space daemon that realizes APIs (lakeD).
//
// §4 of the paper: "lakeLib is a kernel module that exposes APIs such as the
// vendor's user space library of an accelerator as symbols to kernel space
// ... Each of these functions does three things: serialize an API identifier
// and all of API parameters into a command, transmit commands through some
// communication channel for remote execution in user space and, finally,
// wait for a response." That is exactly the structure here: every stub in
// Lib marshals a Command, ships the real bytes over a boundary.Transport,
// lakeD deserializes and executes against the CUDA API, and the response
// travels back the same way. The paper's implementation resembles "an RPC
// system" (§6); so does this one, deliberately.
package remoting

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"lakego/internal/flightrec"
)

// APIID identifies a remoted API in command headers.
type APIID uint32

// The remoted API surface: the CUDA driver subset the prototype exposes
// (§6: "The LAKE API remoting system provides kernel space with the CUDA
// driver API version 11.0") plus the escape hatch for custom high-level
// APIs such as the TensorFlow-backed calls of §4.4.
const (
	APIInvalid APIID = iota
	APICuInit
	APICuDeviceGetCount
	APICuDeviceGetName
	APICuCtxCreate
	APICuCtxDestroy
	APICuMemAlloc
	APICuMemFree
	APICuMemcpyHtoD
	APICuMemcpyDtoH
	APICuModuleLoad
	APICuModuleGetFunction
	APICuLaunchKernel
	APICuCtxSynchronize
	APINvmlUtilization
	APIHighLevel
	APICuStreamCreate
	APICuStreamDestroy
	APICuStreamSynchronize
	APICuMemcpyHtoDAsync
	APICuMemcpyDtoHAsync
	APICuLaunchKernelAsync
	APICuMemGetInfo
	APIBatchedInfer
	// APIPing is the supervisor's health probe: lakeD answers with its
	// restart generation and handled-command count. It exercises the full
	// wire path, so a dead daemon or broken channel fails it like any call.
	APIPing
	// APINvmlDeviceUtilization queries one pool device's utilization by
	// ordinal (APINvmlUtilization aggregates across the pool).
	APINvmlDeviceUtilization
)

var apiNames = map[APIID]string{
	APICuInit:              "cuInit",
	APICuDeviceGetCount:    "cuDeviceGetCount",
	APICuDeviceGetName:     "cuDeviceGetName",
	APICuCtxCreate:         "cuCtxCreate",
	APICuCtxDestroy:        "cuCtxDestroy",
	APICuMemAlloc:          "cuMemAlloc",
	APICuMemFree:           "cuMemFree",
	APICuMemcpyHtoD:        "cuMemcpyHtoD",
	APICuMemcpyDtoH:        "cuMemcpyDtoH",
	APICuModuleLoad:        "cuModuleLoad",
	APICuModuleGetFunction: "cuModuleGetFunction",
	APICuLaunchKernel:      "cuLaunchKernel",
	APICuCtxSynchronize:    "cuCtxSynchronize",
	APINvmlUtilization:     "nvmlDeviceGetUtilizationRates",
	APIHighLevel:           "lakeHighLevel",
	APICuStreamCreate:      "cuStreamCreate",
	APICuStreamDestroy:     "cuStreamDestroy",
	APICuStreamSynchronize: "cuStreamSynchronize",
	APICuMemcpyHtoDAsync:   "cuMemcpyHtoDAsync",
	APICuMemcpyDtoHAsync:   "cuMemcpyDtoHAsync",
	APICuLaunchKernelAsync: "cuLaunchKernel(stream)",
	APICuMemGetInfo:        "cuMemGetInfo",
	APIBatchedInfer:        "lakeBatchedInfer",
	APIPing:                "lakePing",

	APINvmlDeviceUtilization: "nvmlDeviceGetUtilizationRates(device)",
}

func (id APIID) String() string {
	if s, ok := apiNames[id]; ok {
		return s
	}
	return fmt.Sprintf("api(%d)", uint32(id))
}

// Command is one serialized kernel->user API invocation.
type Command struct {
	// API selects the handler in lakeD.
	API APIID
	// Seq matches responses to commands.
	Seq uint64
	// TraceID is the flight recorder's cross-boundary correlation key,
	// optional on the wire following the PR-4 ordinal-arg precedent: zero
	// marshals to the original cmdMagic frame byte-for-byte, nonzero
	// switches the header to cmdMagicTraced and inserts the ID after Seq.
	// Old decoders never see the new magic unless a trace ID is in play.
	TraceID uint64
	// Args carries scalar parameters: handles, device pointers, sizes,
	// shm offsets.
	Args []uint64
	// Name carries symbol or module names, and selects the handler for
	// APIHighLevel commands.
	Name string
	// Blob carries inline payload for callers that bypass lakeShm (the
	// double-copy path §4.1 warns about).
	Blob []byte
}

// Response is one serialized user->kernel API completion.
type Response struct {
	Seq    uint64
	Result int32
	Vals   []uint64
	Blob   []byte
}

// Wire format limits; commands beyond these indicate a corrupted frame.
const (
	maxArgs = 1 << 12
	maxName = 1 << 10
	maxBlob = 64 << 20
)

// ErrShortFrame reports a truncated or corrupt wire frame.
var ErrShortFrame = errors.New("remoting: short or corrupt frame")

const (
	cmdMagic = 0xC1
	// cmdMagicTraced marks a command frame carrying a trace ID: the layout
	// of cmdMagic with 8 extra little-endian bytes between Seq and the arg
	// count. Emitted only when Command.TraceID != 0, so untraced runs stay
	// byte-identical to the original wire shape.
	cmdMagicTraced = 0xC2
	respMagic      = 0xE1
)

// Every frame ends with a CRC32-C of the preceding bytes. A corrupted
// channel (the fault plane's bit flips, or a real DMA/socket fault) must be
// detected at the decoder, never executed: an undetected flip inside Args
// would silently run the wrong command against the device.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const crcLen = 4

// sealFrame appends the integrity trailer to a fully encoded frame.
func sealFrame(buf []byte) []byte {
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// openFrame verifies and strips the integrity trailer, returning the frame
// body. Truncated or corrupted frames yield ErrShortFrame.
func openFrame(frame []byte) ([]byte, error) {
	if len(frame) < crcLen+1 {
		return nil, ErrShortFrame
	}
	body := frame[:len(frame)-crcLen]
	want := binary.LittleEndian.Uint32(frame[len(frame)-crcLen:])
	if crc32.Checksum(body, crcTable) != want {
		return nil, ErrShortFrame
	}
	return body, nil
}

// MarshalCommand encodes c into a wire frame.
func MarshalCommand(c *Command) ([]byte, error) {
	if len(c.Args) > maxArgs || len(c.Name) > maxName || len(c.Blob) > maxBlob {
		return nil, fmt.Errorf("remoting: command exceeds wire limits (args=%d name=%d blob=%d)",
			len(c.Args), len(c.Name), len(c.Blob))
	}
	n := 1 + 4 + 8 + 8 + 2 + 8*len(c.Args) + 2 + len(c.Name) + 4 + len(c.Blob) + crcLen
	buf := make([]byte, 0, n)
	if c.TraceID != 0 {
		buf = append(buf, cmdMagicTraced)
	} else {
		buf = append(buf, cmdMagic)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.API))
	buf = binary.LittleEndian.AppendUint64(buf, c.Seq)
	if c.TraceID != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, c.TraceID)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Args)))
	for _, a := range c.Args {
		buf = binary.LittleEndian.AppendUint64(buf, a)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Name)))
	buf = append(buf, c.Name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Blob)))
	buf = append(buf, c.Blob...)
	return sealFrame(buf), nil
}

// UnmarshalCommand decodes a wire frame produced by MarshalCommand. The
// frame's CRC trailer must verify and every byte must be accounted for:
// a flipped bit anywhere is rejected, never executed.
func UnmarshalCommand(frame []byte) (*Command, error) {
	body, err := openFrame(frame)
	if err != nil {
		return nil, err
	}
	r := reader{buf: body}
	m, err := r.u8()
	if err != nil || (m != cmdMagic && m != cmdMagicTraced) {
		return nil, ErrShortFrame
	}
	api, err := r.u32()
	if err != nil {
		return nil, err
	}
	seq, err := r.u64()
	if err != nil {
		return nil, err
	}
	var traceID uint64
	if m == cmdMagicTraced {
		if traceID, err = r.u64(); err != nil {
			return nil, err
		}
		if traceID == 0 {
			return nil, ErrShortFrame // traced frames must carry a real ID
		}
	}
	nargs, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nargs > maxArgs {
		return nil, ErrShortFrame
	}
	args := make([]uint64, nargs)
	for i := range args {
		if args[i], err = r.u64(); err != nil {
			return nil, err
		}
	}
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	blob, err := r.blob()
	if err != nil {
		return nil, err
	}
	if r.pos != len(body) {
		return nil, ErrShortFrame
	}
	return &Command{API: APIID(api), Seq: seq, TraceID: traceID, Args: args, Name: name, Blob: blob}, nil
}

// PeekFrame reads a wire frame's identifying header — direction, API,
// sequence number, trace ID — without decoding or CRC-verifying the body.
// It is the flight recorder's frame peeker: the boundary channel tags its
// send/receive events with it at a few fixed-offset loads per frame. ok is
// false for frames too short or not starting with a known magic; a frame
// corrupted elsewhere simply yields the (possibly garbled) header values,
// which is fine for a diagnostic event stream.
func PeekFrame(frame []byte) (flightrec.FrameInfo, bool) {
	if len(frame) < 1 {
		return flightrec.FrameInfo{}, false
	}
	switch frame[0] {
	case respMagic: // magic | seq u64 | ...
		if len(frame) < 9 {
			return flightrec.FrameInfo{}, false
		}
		return flightrec.FrameInfo{Resp: true, Seq: binary.LittleEndian.Uint64(frame[1:9])}, true
	case cmdMagic: // magic | api u32 | seq u64 | ...
		if len(frame) < 13 {
			return flightrec.FrameInfo{}, false
		}
		return flightrec.FrameInfo{
			API: binary.LittleEndian.Uint32(frame[1:5]),
			Seq: binary.LittleEndian.Uint64(frame[5:13]),
		}, true
	case cmdMagicTraced: // magic | api u32 | seq u64 | trace u64 | ...
		if len(frame) < 21 {
			return flightrec.FrameInfo{}, false
		}
		return flightrec.FrameInfo{
			API:     binary.LittleEndian.Uint32(frame[1:5]),
			Seq:     binary.LittleEndian.Uint64(frame[5:13]),
			TraceID: binary.LittleEndian.Uint64(frame[13:21]),
		}, true
	}
	return flightrec.FrameInfo{}, false
}

// MarshalResponse encodes r into a wire frame.
func MarshalResponse(resp *Response) ([]byte, error) {
	if len(resp.Vals) > maxArgs || len(resp.Blob) > maxBlob {
		return nil, fmt.Errorf("remoting: response exceeds wire limits")
	}
	n := 1 + 8 + 4 + 2 + 8*len(resp.Vals) + 4 + len(resp.Blob) + crcLen
	buf := make([]byte, 0, n)
	buf = append(buf, respMagic)
	buf = binary.LittleEndian.AppendUint64(buf, resp.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(resp.Result))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(resp.Vals)))
	for _, v := range resp.Vals {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(resp.Blob)))
	buf = append(buf, resp.Blob...)
	return sealFrame(buf), nil
}

// UnmarshalResponse decodes a wire frame produced by MarshalResponse,
// verifying the CRC trailer and exact framing like UnmarshalCommand.
func UnmarshalResponse(frame []byte) (*Response, error) {
	body, err := openFrame(frame)
	if err != nil {
		return nil, err
	}
	r := reader{buf: body}
	if m, err := r.u8(); err != nil || m != respMagic {
		return nil, ErrShortFrame
	}
	seq, err := r.u64()
	if err != nil {
		return nil, err
	}
	res, err := r.u32()
	if err != nil {
		return nil, err
	}
	nvals, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nvals > maxArgs {
		return nil, ErrShortFrame
	}
	vals := make([]uint64, nvals)
	for i := range vals {
		if vals[i], err = r.u64(); err != nil {
			return nil, err
		}
	}
	blob, err := r.blob()
	if err != nil {
		return nil, err
	}
	if r.pos != len(body) {
		return nil, ErrShortFrame
	}
	return &Response{Seq: seq, Result: int32(res), Vals: vals, Blob: blob}, nil
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) need(n int) error {
	if r.pos+n > len(r.buf) {
		return ErrShortFrame
	}
	return nil
}

func (r *reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.buf[r.pos]
	r.pos++
	return v, nil
}

func (r *reader) u16() (int, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return int(v), nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if n > maxName {
		return "", ErrShortFrame
	}
	if err := r.need(n); err != nil {
		return "", err
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s, nil
}

func (r *reader) blob() ([]byte, error) {
	n32, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n32 > maxBlob || n32 > math.MaxInt32 {
		return nil, ErrShortFrame
	}
	n := int(n32)
	if err := r.need(n); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.pos:])
	r.pos += n
	return b, nil
}
