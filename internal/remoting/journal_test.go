package remoting

import (
	"fmt"
	"testing"
)

func TestJournalDedup(t *testing.T) {
	j := newJournal(8)
	if _, ok := j.lookup(1); ok {
		t.Fatal("empty journal reported a hit")
	}
	j.record(1, []byte("first"))
	got, ok := j.lookup(1)
	if !ok || string(got) != "first" {
		t.Fatalf("lookup(1) = %q, %v", got, ok)
	}
	// Re-recording must not replace the original response.
	j.record(1, []byte("second"))
	if got, _ := j.lookup(1); string(got) != "first" {
		t.Fatalf("duplicate record replaced the response: %q", got)
	}
	hits, evicts, live := j.stats()
	if hits != 2 || evicts != 0 || live != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (2, 0, 1)", hits, evicts, live)
	}
}

func TestJournalFIFOEviction(t *testing.T) {
	const capacity = 4
	j := newJournal(capacity)
	for seq := uint64(1); seq <= 10; seq++ {
		j.record(seq, []byte(fmt.Sprintf("r%d", seq)))
	}
	_, evicts, live := j.stats()
	if live != capacity || evicts != 10-capacity {
		t.Fatalf("live=%d evicts=%d, want %d and %d", live, evicts, capacity, 10-capacity)
	}
	// Oldest sequences are gone, newest retained.
	for seq := uint64(1); seq <= 6; seq++ {
		if _, ok := j.lookup(seq); ok {
			t.Fatalf("evicted seq %d still present", seq)
		}
	}
	for seq := uint64(7); seq <= 10; seq++ {
		if got, ok := j.lookup(seq); !ok || string(got) != fmt.Sprintf("r%d", seq) {
			t.Fatalf("retained seq %d lost or wrong: %q %v", seq, got, ok)
		}
	}
}

func TestJournalDefaultCapacity(t *testing.T) {
	j := newJournal(0)
	if len(j.slots) != defaultJournalCap {
		t.Fatalf("cap = %d, want %d", len(j.slots), defaultJournalCap)
	}
}

func TestJournalSurvivesDaemonRestart(t *testing.T) {
	// The journal models shm-backed state: Restart must not clear it, so
	// pre-crash sequences still deduplicate afterwards.
	s := newStack(t)
	s.lib.CuInit()
	s.daemon.journal.record(77777, []byte("pre-crash"))
	s.daemon.InjectCrash(false)
	frame, err := MarshalCommand(&Command{API: APICuDeviceGetCount, Seq: 123})
	if err != nil {
		t.Fatal(err)
	}
	s.tr.SendToUser(frame) // give PumpOne a command to die on
	s.daemon.PumpOne()
	if !s.daemon.Crashed() {
		t.Fatal("injected crash did not take")
	}
	s.daemon.Restart()
	if got, ok := s.daemon.journal.lookup(77777); !ok || string(got) != "pre-crash" {
		t.Fatalf("journal entry lost across restart: %q %v", got, ok)
	}
}
