package remoting

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrDeadlineExceeded reports a remoted call that ran out of its virtual-
// time budget (Resilience.CallDeadline) before a response arrived.
var ErrDeadlineExceeded = errors.New("remoting: call deadline exceeded")

// ErrDaemonDead reports a remoted call abandoned because lakeD was declared
// dead and could not be recovered. Callers should route to the CPU
// fallback; the stub layer maps it to cuda.ErrNotReady.
var ErrDaemonDead = errors.New("remoting: lakeD declared dead")

// RetryPolicy is the bounded exponential-backoff schedule a resilient Lib
// applies between attempts of one remoted call. Backoff waits advance the
// virtual clock — a retrying kernel client really does burn that time.
type RetryPolicy struct {
	// MaxAttempts bounds tries per recovery round (>=1).
	MaxAttempts int
	// BaseBackoff is the wait after the first failed attempt; each further
	// failure multiplies it by Multiplier, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Multiplier  float64
	// Jitter spreads each wait uniformly over [1-Jitter, 1+Jitter) of its
	// nominal value, decorrelating concurrent retriers. The draw comes
	// from the Lib's seeded PRNG, so schedules are reproducible.
	Jitter float64
}

// DefaultRetryPolicy mirrors a kernel client's netlink retry posture:
// four tries, 50µs initial backoff doubling to a 2ms ceiling, ±25% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.25,
	}
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = d.MaxAttempts
	}
	if rp.BaseBackoff <= 0 {
		rp.BaseBackoff = d.BaseBackoff
	}
	if rp.MaxBackoff < rp.BaseBackoff {
		// Clamp to max(BaseBackoff, default): a caller with a base above the
		// default 2ms ceiling must not have every wait truncated below its
		// own first backoff.
		rp.MaxBackoff = d.MaxBackoff
		if rp.MaxBackoff < rp.BaseBackoff {
			rp.MaxBackoff = rp.BaseBackoff
		}
	}
	if rp.Multiplier < 1 {
		rp.Multiplier = d.Multiplier
	}
	if rp.Jitter < 0 || rp.Jitter >= 1 {
		rp.Jitter = 0
	}
	return rp
}

// BackoffFor returns the wait before retrying after the attempt-th failure
// (0-based). draw in [0, 1) supplies the deterministic jitter; with Jitter
// 0 the schedule is the pure capped exponential. Pure math, no clock:
// the table-driven tests pin the schedule exactly.
func (rp RetryPolicy) BackoffFor(attempt int, draw float64) time.Duration {
	d := float64(rp.BaseBackoff)
	for i := 0; i < attempt; i++ {
		d *= rp.Multiplier
		if d >= float64(rp.MaxBackoff) {
			d = float64(rp.MaxBackoff)
			break
		}
	}
	if d > float64(rp.MaxBackoff) {
		d = float64(rp.MaxBackoff)
	}
	if rp.Jitter > 0 {
		d *= 1 - rp.Jitter + 2*rp.Jitter*draw
	}
	return time.Duration(d)
}

// RecoveryHook is the supervisor's entry point into the client retry path:
// Lib calls DaemonUnresponsive when one remoted call exhausts a full retry
// round. Returning true means the daemon was recovered (restarted and
// re-attached) and the call should be redelivered — the daemon-side
// sequence journal guarantees redelivery executes at most once. Returning
// false abandons the call with ErrDaemonDead.
type RecoveryHook interface {
	DaemonUnresponsive(api APIID, seq uint64, err error) bool
}

// Resilience arms a Lib's client-side fault handling: per-call deadlines,
// bounded retry with exponential backoff and deterministic jitter, and the
// supervisor hook that recovers a dead daemon mid-call.
type Resilience struct {
	// Retry is the per-round backoff schedule (zero value = defaults).
	Retry RetryPolicy
	// CallDeadline bounds one call's total virtual time across attempts,
	// backoffs and recoveries. 0 means no deadline.
	CallDeadline time.Duration
	// MaxRecoveries bounds RecoveryHook invocations per call (each grants
	// a fresh retry round). Default 2.
	MaxRecoveries int
	// Seed initializes the jitter PRNG.
	Seed int64
	// Hook is notified when a call exhausts a retry round; nil means dead
	// daemons are never recovered in-call.
	Hook RecoveryHook
}

// DefaultResilience returns the default client robustness configuration
// (no deadline; the retry schedule of DefaultRetryPolicy).
func DefaultResilience() Resilience {
	return Resilience{Retry: DefaultRetryPolicy(), MaxRecoveries: 2}
}

// ResilienceStats counts client-side fault handling events, attributing
// chaos-run behavior: how often calls retried, what the demultiplexer
// discarded, and how recoveries resolved.
type ResilienceStats struct {
	// Retries counts failed attempts that were retried.
	Retries int64
	// StaleResponses counts demuxed frames whose sequence belonged to an
	// already-completed call (duplicates or redelivered responses).
	StaleResponses int64
	// CorruptResponses counts frames that failed to decode.
	CorruptResponses int64
	// Recoveries counts successful RecoveryHook round trips.
	Recoveries int64
	// DeadlineExceeded and DaemonDead count abandoned calls by cause.
	DeadlineExceeded, DaemonDead int64
}

// lockedRand is a mutex-guarded PRNG: jitter draws stay deterministic in
// single-threaded runs and data-race-free in concurrent ones.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) draw() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}
