package remoting

import "sync"

// journal is lakeD's exactly-once dedup log: every executed command's
// response frame is recorded under its sequence number before the response
// is sent. A redelivered sequence (a client retry after a lost response, or
// a duplicated frame in the channel) is answered from the journal without
// re-executing — the command's side effects happen at most once.
//
// In the modeled deployment the journal lives in a lakeD-private slice of
// the pinned CMA region backing lakeShm, which is why it survives a daemon
// crash: the restarted process re-attaches the same region and resumes
// deduplicating against pre-crash sequences. Here that persistence is
// modeled by the supervisor handing the same journal to the daemon across
// Restart.
//
// Capacity is bounded FIFO: sequence numbers are issued monotonically and a
// client abandons a call long before the journal cycles, so evicting the
// oldest entries is safe.
type journal struct {
	mu     sync.Mutex
	cap    int
	byseq  map[uint64][]byte
	fifo   []uint64
	hits   int64
	evicts int64
}

// defaultJournalCap covers far more in-flight sequences than the transport
// can buffer; see the eviction argument above.
const defaultJournalCap = 4096

func newJournal(capacity int) *journal {
	if capacity <= 0 {
		capacity = defaultJournalCap
	}
	return &journal{cap: capacity, byseq: make(map[uint64][]byte, capacity)}
}

// lookup returns the recorded response frame for seq, if any, counting a
// hit (a detected redelivery).
func (j *journal) lookup(seq uint64) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	frame, ok := j.byseq[seq]
	if ok {
		j.hits++
	}
	return frame, ok
}

// record stores the response frame for seq, evicting the oldest entry at
// capacity. Recording an already-present seq is a no-op (the first
// execution's response stands).
func (j *journal) record(seq uint64, frame []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.byseq[seq]; dup {
		return
	}
	if len(j.fifo) >= j.cap {
		old := j.fifo[0]
		j.fifo = j.fifo[1:]
		delete(j.byseq, old)
		j.evicts++
	}
	j.byseq[seq] = frame
	j.fifo = append(j.fifo, seq)
}

// stats returns (hits, evictions, live entries).
func (j *journal) stats() (hits, evicts int64, live int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits, j.evicts, len(j.fifo)
}
