package remoting

import "sync"

// journal is lakeD's exactly-once dedup log: every executed command's
// response frame is recorded under its sequence number before the response
// is sent. A redelivered sequence (a client retry after a lost response, or
// a duplicated frame in the channel) is answered from the journal without
// re-executing — the command's side effects happen at most once.
//
// In the modeled deployment the journal lives in a lakeD-private slice of
// the pinned CMA region backing lakeShm, which is why it survives a daemon
// crash: the restarted process re-attaches the same region and resumes
// deduplicating against pre-crash sequences. Here that persistence is
// modeled by the supervisor handing the same journal to the daemon across
// Restart.
//
// Capacity is bounded FIFO: sequence numbers are issued monotonically and a
// client abandons a call long before the journal cycles, so evicting the
// oldest entries is safe. Storage is a preallocated slot ring — record
// copies the frame into the slot's recycled buffer and eviction is
// overwrite-in-place — so a warmed journal records without heap allocation
// (part of the serving path's 0 allocs/op budget).
type journal struct {
	mu sync.Mutex
	// slots is the fixed ring; next is the cursor the next record lands on
	// (== the oldest live entry once the ring has wrapped).
	slots []jentry
	next  int
	// byseq indexes live slots by sequence number.
	byseq  map[uint64]int
	live   int
	hits   int64
	evicts int64
}

// jentry is one journal slot. buf keeps its capacity across evictions.
type jentry struct {
	seq  uint64
	buf  []byte
	used bool
}

// defaultJournalCap covers far more in-flight sequences than the transport
// can buffer; see the eviction argument above.
const defaultJournalCap = 4096

func newJournal(capacity int) *journal {
	if capacity <= 0 {
		capacity = defaultJournalCap
	}
	return &journal{
		slots: make([]jentry, capacity),
		byseq: make(map[uint64]int, capacity),
	}
}

// lookup returns the recorded response frame for seq, if any, counting a
// hit (a detected redelivery). The returned frame aliases journal storage:
// it is valid until the journal cycles past the entry, which cannot happen
// before the caller's immediately following send (the transport copies).
func (j *journal) lookup(seq uint64) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i, ok := j.byseq[seq]
	if !ok {
		return nil, false
	}
	j.hits++
	return j.slots[i].buf, true
}

// record stores a copy of the response frame for seq, evicting the oldest
// entry at capacity. Recording an already-present seq is a no-op (the first
// execution's response stands).
func (j *journal) record(seq uint64, frame []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.byseq[seq]; dup {
		return
	}
	s := &j.slots[j.next]
	if s.used {
		delete(j.byseq, s.seq)
		j.evicts++
	} else {
		s.used = true
		j.live++
	}
	s.seq = seq
	s.buf = append(s.buf[:0], frame...)
	j.byseq[seq] = j.next
	j.next++
	if j.next == len(j.slots) {
		j.next = 0
	}
}

// stats returns (hits, evictions, live entries).
func (j *journal) stats() (hits, evicts int64, live int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits, j.evicts, j.live
}
