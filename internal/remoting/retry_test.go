package remoting

import (
	"errors"
	"strings"
	"testing"
	"time"

	"lakego/internal/cuda"
	"lakego/internal/faults"
)

func TestBackoffForSchedule(t *testing.T) {
	rp := RetryPolicy{
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		Multiplier:  2,
	}
	cases := []struct {
		name    string
		policy  RetryPolicy
		attempt int
		draw    float64
		want    time.Duration
	}{
		{"first, no jitter", rp, 0, 0.5, 50 * time.Microsecond},
		{"second doubles", rp, 1, 0.5, 100 * time.Microsecond},
		{"third doubles again", rp, 2, 0.5, 200 * time.Microsecond},
		{"capped at max", rp, 10, 0.5, 2 * time.Millisecond},
		{"far past cap stays capped", rp, 60, 0.5, 2 * time.Millisecond},
		{
			"jitter low edge",
			RetryPolicy{BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond, Multiplier: 2, Jitter: 0.25},
			0, 0,
			75 * time.Microsecond, // 100µs * (1 - 0.25)
		},
		{
			"jitter midpoint is nominal",
			RetryPolicy{BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond, Multiplier: 2, Jitter: 0.25},
			0, 0.5,
			100 * time.Microsecond,
		},
		{
			"jitter high edge",
			RetryPolicy{BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond, Multiplier: 2, Jitter: 0.25},
			0, 0.999999,
			// 100µs * (1 - 0.25 + 0.5*0.999999) = 124999.95ns, truncated
			124999 * time.Nanosecond,
		},
		{
			"multiplier 1 never grows",
			RetryPolicy{BaseBackoff: 30 * time.Microsecond, MaxBackoff: time.Millisecond, Multiplier: 1},
			5, 0.5,
			30 * time.Microsecond,
		},
	}
	for _, tc := range cases {
		if got := tc.policy.BackoffFor(tc.attempt, tc.draw); got != tc.want {
			t.Errorf("%s: BackoffFor(%d, %v) = %v, want %v", tc.name, tc.attempt, tc.draw, got, tc.want)
		}
	}
}

func TestBackoffDeterministicAcrossRuns(t *testing.T) {
	rp := DefaultRetryPolicy()
	r1, r2 := newLockedRand(9), newLockedRand(9)
	for i := 0; i < 32; i++ {
		a := rp.BackoffFor(i%4, r1.draw())
		b := rp.BackoffFor(i%4, r2.draw())
		if a != b {
			t.Fatalf("step %d: same seed gave %v vs %v", i, a, b)
		}
	}
}

func TestRetryPolicyWithDefaults(t *testing.T) {
	// The zero value picks up every default except Jitter: an explicit 0
	// (no jitter) is indistinguishable from unset, and must stay 0 so the
	// schedule is exactly the capped exponential.
	d := DefaultRetryPolicy()
	d.Jitter = 0
	if got := (RetryPolicy{}).withDefaults(); got != d {
		t.Fatalf("zero policy defaulted to %+v, want %+v", got, d)
	}
	custom := RetryPolicy{MaxAttempts: 7, BaseBackoff: time.Microsecond, MaxBackoff: time.Second, Multiplier: 3, Jitter: 0.1}
	if got := custom.withDefaults(); got != custom {
		t.Fatalf("valid policy altered by withDefaults: %+v", got)
	}
	bad := RetryPolicy{Jitter: 1.5}.withDefaults()
	if bad.Jitter != 0 {
		t.Fatalf("out-of-range jitter kept: %v", bad.Jitter)
	}
}

// TestWithDefaultsMaxBackoffNeverBelowBase regresses the clamp bug: a
// BaseBackoff above the 2ms default ceiling with MaxBackoff unset used to
// leave MaxBackoff < BaseBackoff, truncating every wait below the caller's
// own first backoff.
func TestWithDefaultsMaxBackoffNeverBelowBase(t *testing.T) {
	d := DefaultRetryPolicy()
	cases := []struct {
		name    string
		policy  RetryPolicy
		wantMax time.Duration
	}{
		{"base above default cap, max unset", RetryPolicy{BaseBackoff: 5 * time.Millisecond}, 5 * time.Millisecond},
		{"base equals default cap, max unset", RetryPolicy{BaseBackoff: d.MaxBackoff}, d.MaxBackoff},
		{"base below default cap, max unset", RetryPolicy{BaseBackoff: 50 * time.Microsecond}, d.MaxBackoff},
		{"explicit max below base", RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Millisecond}, 10 * time.Millisecond},
		{"explicit max above base kept", RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 20 * time.Millisecond}, 20 * time.Millisecond},
	}
	for _, tc := range cases {
		got := tc.policy.withDefaults()
		if got.MaxBackoff != tc.wantMax {
			t.Errorf("%s: MaxBackoff = %v, want %v", tc.name, got.MaxBackoff, tc.wantMax)
		}
		if got.MaxBackoff < got.BaseBackoff {
			t.Errorf("%s: MaxBackoff %v < BaseBackoff %v after withDefaults", tc.name, got.MaxBackoff, got.BaseBackoff)
		}
		// The first wait must be the full base, never truncated by the cap.
		if w := got.BackoffFor(0, 0.5); w < got.BaseBackoff {
			t.Errorf("%s: first backoff %v < base %v", tc.name, w, got.BaseBackoff)
		}
	}
}

// healHook clears the fault plane on its first invocation and reports the
// daemon recovered, modeling a supervisor fixing the channel.
type healHook struct {
	plane *faults.Plane
	calls int
}

func (h *healHook) DaemonUnresponsive(api APIID, seq uint64, err error) bool {
	h.calls++
	h.plane.SetMix(faults.Mix{})
	return true
}

// restartHook restarts the daemon process, modeling the supervisor path.
type restartHook struct {
	d     *Daemon
	calls int
}

func (h *restartHook) DaemonUnresponsive(api APIID, seq uint64, err error) bool {
	h.calls++
	h.d.Restart()
	return true
}

func TestResilientCallSurvivesDrops(t *testing.T) {
	s := newStack(t)
	plane := faults.NewPlane(faults.Mix{Drop: 0.3, Seed: 11}, s.clock)
	s.tr.InjectFaults(plane)
	// No recovery hook: the retry round alone must ride out the loss, so
	// give it enough attempts that a 30% drop storm cannot exhaust it.
	s.lib.EnableResilience(Resilience{Seed: 1, Retry: RetryPolicy{MaxAttempts: 16}})
	if r := s.lib.CuInit(); r != cuda.Success {
		t.Fatalf("CuInit under 30%% drop: %s", r)
	}
	for i := 0; i < 200; i++ {
		ptr, r := s.lib.CuMemAlloc(64)
		if r != cuda.Success {
			t.Fatalf("alloc %d under 30%% drop: %s", i, r)
		}
		if r := s.lib.CuMemFree(ptr); r != cuda.Success {
			t.Fatalf("free %d under 30%% drop: %s", i, r)
		}
	}
	st := s.lib.ResilienceStats()
	if st.Retries == 0 {
		t.Fatal("30% drop over 400 calls produced zero retries")
	}
	if st.DaemonDead != 0 || st.DeadlineExceeded != 0 {
		t.Fatalf("unexpected abandoned calls: %+v", st)
	}
}

func TestResilientCallSurvivesCorruption(t *testing.T) {
	s := newStack(t)
	plane := faults.NewPlane(faults.Mix{Corrupt: 0.3, Seed: 12}, s.clock)
	s.tr.InjectFaults(plane)
	s.lib.EnableResilience(Resilience{Seed: 2, Retry: RetryPolicy{MaxAttempts: 16}})
	if r := s.lib.CuInit(); r != cuda.Success {
		t.Fatalf("CuInit under 30%% corruption: %s", r)
	}
	for i := 0; i < 200; i++ {
		if _, r := s.lib.CuDeviceGetCount(); r != cuda.Success {
			t.Fatalf("call %d under corruption: %s", i, r)
		}
	}
	st := s.lib.ResilienceStats()
	if st.CorruptResponses == 0 && st.Retries == 0 {
		t.Fatal("30% corruption left no trace in resilience stats")
	}
}

func TestCallDeadlineExceeded(t *testing.T) {
	s := newStack(t)
	plane := faults.NewPlane(faults.Mix{Drop: 1, Seed: 13}, s.clock)
	s.tr.InjectFaults(plane)
	s.lib.EnableResilience(Resilience{CallDeadline: 100 * time.Microsecond, Seed: 3})
	cs := s.lib.newCall(APICuDeviceGetCount)
	defer s.lib.done(cs)
	err := s.lib.call(cs)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("total loss with 100µs deadline returned %v, want ErrDeadlineExceeded", err)
	}
	if st := s.lib.ResilienceStats(); st.DeadlineExceeded != 1 {
		t.Fatalf("DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
}

func TestDaemonDeadMapsToNotReady(t *testing.T) {
	s := newStack(t)
	s.lib.EnableResilience(Resilience{Seed: 4}) // no hook: dead stays dead
	if r := s.lib.CuInit(); r != cuda.Success {
		t.Fatal(r)
	}
	s.daemon.InjectCrash(false)
	if _, r := s.lib.CuMemAlloc(64); r != cuda.ErrNotReady {
		t.Fatalf("crashed daemon without recovery returned %s, want CUDA_ERROR_SYSTEM_NOT_READY", r)
	}
	if s.lib.Healthy() {
		t.Fatal("lib still healthy after declaring the daemon dead")
	}
	// Later calls fail fast on the latch.
	before := s.lib.ResilienceStats()
	if _, r := s.lib.CuMemAlloc(64); r != cuda.ErrNotReady {
		t.Fatal("latched-dead call did not return ErrNotReady")
	}
	after := s.lib.ResilienceStats()
	if after.DaemonDead != before.DaemonDead+1 || after.Retries != before.Retries {
		t.Fatalf("latched-dead call retried: before %+v after %+v", before, after)
	}
	// Manual recovery restores service.
	s.daemon.Restart()
	s.lib.MarkRecovered()
	if _, r := s.lib.CuMemAlloc(64); r != cuda.Success {
		t.Fatalf("post-recovery alloc failed: %s", r)
	}
}

func TestRecoveryHookHealsChannel(t *testing.T) {
	s := newStack(t)
	plane := faults.NewPlane(faults.Mix{Drop: 1, Seed: 14}, s.clock)
	s.tr.InjectFaults(plane)
	hook := &healHook{plane: plane}
	s.lib.EnableResilience(Resilience{Seed: 5, Hook: hook})
	if r := s.lib.CuInit(); r != cuda.Success {
		t.Fatalf("CuInit did not recover after heal: %s", r)
	}
	if hook.calls != 1 {
		t.Fatalf("hook invoked %d times, want 1", hook.calls)
	}
	st := s.lib.ResilienceStats()
	if st.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", st.Recoveries)
	}
	// Three backoffs (between the four failed attempts) must have advanced
	// the virtual clock by at least the jitter floor of the schedule.
	rp := DefaultRetryPolicy()
	min := time.Duration(float64(rp.BackoffFor(0, 0)+rp.BackoffFor(1, 0)+rp.BackoffFor(2, 0)) * 1.0)
	if s.clock.Now() < min {
		t.Fatalf("clock advanced %v, want >= %v of backoff", s.clock.Now(), min)
	}
}

func TestCrashAfterExecRedeliversExactlyOnce(t *testing.T) {
	s := newStack(t)
	hook := &restartHook{d: s.daemon}
	s.lib.EnableResilience(Resilience{Seed: 6, Hook: hook})
	if r := s.lib.CuInit(); r != cuda.Success {
		t.Fatal(r)
	}
	execBefore := s.daemon.Executed()

	// The daemon will execute the next command, journal its response,
	// then die before sending it.
	s.daemon.InjectCrash(true)
	ptr, r := s.lib.CuMemAlloc(128)
	if r != cuda.Success {
		t.Fatalf("alloc across crash-after-exec: %s", r)
	}
	if hook.calls == 0 {
		t.Fatal("crash did not reach the recovery hook")
	}
	if got := s.daemon.Executed() - execBefore; got != 1 {
		t.Fatalf("command executed %d times across the crash, want exactly 1", got)
	}
	if s.daemon.Redelivered() == 0 {
		t.Fatal("redelivery was not served from the journal")
	}
	if r := s.lib.CuMemFree(ptr); r != cuda.Success {
		t.Fatalf("the allocation from the crashed exchange is not live: %s", r)
	}
}

func TestCrashBeforeExecRedeliversExactlyOnce(t *testing.T) {
	s := newStack(t)
	hook := &restartHook{d: s.daemon}
	s.lib.EnableResilience(Resilience{Seed: 7, Hook: hook})
	if r := s.lib.CuInit(); r != cuda.Success {
		t.Fatal(r)
	}
	execBefore := s.daemon.Executed()
	s.daemon.InjectCrash(false) // dies holding the consumed command
	if _, r := s.lib.CuMemAlloc(128); r != cuda.Success {
		t.Fatalf("alloc across crash-before-exec: %s", r)
	}
	if got := s.daemon.Executed() - execBefore; got != 1 {
		t.Fatalf("command executed %d times across the crash, want exactly 1", got)
	}
}

func TestPingReportsGeneration(t *testing.T) {
	s := newStack(t)
	s.lib.EnableResilience(Resilience{Seed: 8})
	gen, _, ok := s.lib.Ping()
	if !ok || gen != 0 {
		t.Fatalf("ping: gen=%d ok=%v, want gen=0 ok=true", gen, ok)
	}
	s.daemon.Restart()
	gen, _, ok = s.lib.Ping()
	if !ok || gen != 1 {
		t.Fatalf("post-restart ping: gen=%d ok=%v, want gen=1 ok=true", gen, ok)
	}
}

func TestDaemonErrorsCarryCommandContext(t *testing.T) {
	s := newStack(t)
	s.lib.CuInit()
	// An unknown module function fails inside the daemon; its log entry
	// must name the command and sequence.
	if _, r := s.lib.CuModuleGetFunction(9999, "nope"); r == cuda.Success {
		t.Fatal("bogus module lookup succeeded")
	}
	errs := s.daemon.Errors()
	if len(errs) == 0 {
		t.Fatal("daemon recorded no errors")
	}
	last := errs[len(errs)-1]
	for _, want := range []string{"cuModuleGetFunction", "seq="} {
		if !strings.Contains(last, want) {
			t.Fatalf("error %q missing %q", last, want)
		}
	}
}
