package remoting

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Zero-allocation codecs for the steady-state hot path. The Marshal*/
// Unmarshal* functions in protocol.go allocate their outputs — correct, and
// still the canonical codecs for cold paths and fuzzing — while the
// Append*/Decode*Into variants here produce byte-identical wire frames into
// caller-owned storage: Append* extends a reusable buffer, Decode*Into
// reuses the destination's slice capacity. Once the buffers have warmed to
// their steady-state sizes, a remoted call performs no heap allocation in
// either codec direction (pinned by TestAllocs* and the CI allocgate job).

// AppendCommand appends c's wire frame — byte-identical to
// MarshalCommand(c) — to dst and returns the extended slice.
func AppendCommand(dst []byte, c *Command) ([]byte, error) {
	if len(c.Args) > maxArgs || len(c.Name) > maxName || len(c.Blob) > maxBlob {
		return dst, fmt.Errorf("remoting: command exceeds wire limits (args=%d name=%d blob=%d)",
			len(c.Args), len(c.Name), len(c.Blob))
	}
	start := len(dst)
	if c.TraceID != 0 {
		dst = append(dst, cmdMagicTraced)
	} else {
		dst = append(dst, cmdMagic)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.API))
	dst = binary.LittleEndian.AppendUint64(dst, c.Seq)
	if c.TraceID != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, c.TraceID)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(c.Args)))
	for _, a := range c.Args {
		dst = binary.LittleEndian.AppendUint64(dst, a)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(c.Name)))
	dst = append(dst, c.Name...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Blob)))
	dst = append(dst, c.Blob...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], crcTable)), nil
}

// AppendResponse appends resp's wire frame — byte-identical to
// MarshalResponse(resp) — to dst and returns the extended slice.
func AppendResponse(dst []byte, resp *Response) ([]byte, error) {
	if len(resp.Vals) > maxArgs || len(resp.Blob) > maxBlob {
		return dst, fmt.Errorf("remoting: response exceeds wire limits")
	}
	start := len(dst)
	dst = append(dst, respMagic)
	dst = binary.LittleEndian.AppendUint64(dst, resp.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(resp.Result))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(resp.Vals)))
	for _, v := range resp.Vals {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resp.Blob)))
	dst = append(dst, resp.Blob...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], crcTable)), nil
}

// maxInternedNames bounds lakeD's name intern table. The names crossing the
// wire are a small fixed vocabulary — model names, kernel symbols, client
// tags — so the table saturates within the first few calls per name; past
// the bound a fresh string is returned (one allocation, pathological input
// only) rather than growing without limit.
const maxInternedNames = 256

// internName resolves b to a stable string through the intern table,
// allocating only the first time a name is seen. The map lookup keyed by
// string(b) does not allocate (the compiler elides the conversion).
func internName(names map[string]string, b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := names[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(names) < maxInternedNames {
		names[s] = s
	}
	return s
}

// DecodeCommandInto decodes frame into c, accepting exactly the frames
// UnmarshalCommand accepts. c's Args capacity is reused; Name is resolved
// through the names intern table; Blob ALIASES frame — valid only as long
// as the frame view is, which for a ring-transport frame means until the
// next RecvInUser. lakeD decodes and fully executes a command before its
// next pump, so the alias never outlives the view.
func DecodeCommandInto(c *Command, names map[string]string, frame []byte) error {
	body, err := openFrame(frame)
	if err != nil {
		return err
	}
	r := reader{buf: body}
	m, err := r.u8()
	if err != nil || (m != cmdMagic && m != cmdMagicTraced) {
		return ErrShortFrame
	}
	api, err := r.u32()
	if err != nil {
		return err
	}
	seq, err := r.u64()
	if err != nil {
		return err
	}
	var traceID uint64
	if m == cmdMagicTraced {
		if traceID, err = r.u64(); err != nil {
			return err
		}
		if traceID == 0 {
			return ErrShortFrame // traced frames must carry a real ID
		}
	}
	nargs, err := r.u16()
	if err != nil {
		return err
	}
	if nargs > maxArgs {
		return ErrShortFrame
	}
	args := c.Args[:0]
	for i := 0; i < nargs; i++ {
		a, err := r.u64()
		if err != nil {
			return err
		}
		args = append(args, a)
	}
	nameLen, err := r.u16()
	if err != nil {
		return err
	}
	if nameLen > maxName {
		return ErrShortFrame
	}
	if err := r.need(nameLen); err != nil {
		return err
	}
	nameBytes := r.buf[r.pos : r.pos+nameLen]
	r.pos += nameLen
	blobLen, err := r.u32()
	if err != nil {
		return err
	}
	if blobLen > maxBlob || blobLen > math.MaxInt32 {
		return ErrShortFrame
	}
	if err := r.need(int(blobLen)); err != nil {
		return err
	}
	var blob []byte
	if blobLen > 0 {
		blob = r.buf[r.pos : r.pos+int(blobLen)]
	}
	r.pos += int(blobLen)
	if r.pos != len(body) {
		return ErrShortFrame
	}
	c.API = APIID(api)
	c.Seq = seq
	c.TraceID = traceID
	c.Args = args
	c.Name = internName(names, nameBytes)
	c.Blob = blob
	return nil
}

// DecodeResponseInto decodes frame into resp, accepting exactly the frames
// UnmarshalResponse accepts. resp's Vals and Blob capacities are reused;
// the blob bytes are COPIED out of the frame (unlike DecodeCommandInto's
// alias) because lakeLib's stubs read response payloads after the call
// lock is released, by which time a borrowed ring view may be recycled.
func DecodeResponseInto(resp *Response, frame []byte) error {
	body, err := openFrame(frame)
	if err != nil {
		return err
	}
	r := reader{buf: body}
	if m, err := r.u8(); err != nil || m != respMagic {
		return ErrShortFrame
	}
	seq, err := r.u64()
	if err != nil {
		return err
	}
	res, err := r.u32()
	if err != nil {
		return err
	}
	nvals, err := r.u16()
	if err != nil {
		return err
	}
	if nvals > maxArgs {
		return ErrShortFrame
	}
	vals := resp.Vals[:0]
	for i := 0; i < nvals; i++ {
		v, err := r.u64()
		if err != nil {
			return err
		}
		vals = append(vals, v)
	}
	blobLen, err := r.u32()
	if err != nil {
		return err
	}
	if blobLen > maxBlob || blobLen > math.MaxInt32 {
		return ErrShortFrame
	}
	if err := r.need(int(blobLen)); err != nil {
		return err
	}
	blob := append(resp.Blob[:0], r.buf[r.pos:r.pos+int(blobLen)]...)
	r.pos += int(blobLen)
	if r.pos != len(body) {
		return ErrShortFrame
	}
	resp.Seq = seq
	resp.Result = int32(res)
	resp.Vals = vals
	resp.Blob = blob
	return nil
}

// AppendBatch appends bt's batch payload — byte-identical to
// MarshalBatch(bt) — to dst and returns the extended slice.
func AppendBatch(dst []byte, bt *Batch) ([]byte, error) {
	if len(bt.Entries) > maxBatchEntries {
		return dst, fmt.Errorf("remoting: batch has %d entries, max %d", len(bt.Entries), maxBatchEntries)
	}
	traced := false
	for _, e := range bt.Entries {
		if e.TraceID != 0 {
			traced = true
			break
		}
	}
	if traced {
		dst = append(dst, tracedBatchMagic)
	} else {
		dst = append(dst, batchMagic)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(bt.Entries)))
	for _, e := range bt.Entries {
		dst = binary.LittleEndian.AppendUint64(dst, e.Seq)
		dst = binary.LittleEndian.AppendUint64(dst, e.InOff)
		dst = binary.LittleEndian.AppendUint64(dst, e.OutOff)
		dst = binary.LittleEndian.AppendUint32(dst, e.Count)
		if traced {
			dst = binary.LittleEndian.AppendUint64(dst, e.TraceID)
		}
	}
	return dst, nil
}

// UnmarshalBatchInto decodes frame into bt, reusing bt.Entries capacity.
// Accepts exactly the frames UnmarshalBatch accepts.
func UnmarshalBatchInto(bt *Batch, frame []byte) error {
	r := reader{buf: frame}
	m, err := r.u8()
	if err != nil || (m != batchMagic && m != tracedBatchMagic) {
		return ErrShortFrame
	}
	n, err := r.u16()
	if err != nil {
		return err
	}
	if n > maxBatchEntries {
		return ErrShortFrame
	}
	entries := bt.Entries[:0]
	for i := 0; i < n; i++ {
		var e BatchEntry
		if e.Seq, err = r.u64(); err != nil {
			return err
		}
		if e.InOff, err = r.u64(); err != nil {
			return err
		}
		if e.OutOff, err = r.u64(); err != nil {
			return err
		}
		c, err := r.u32()
		if err != nil {
			return err
		}
		e.Count = c
		if m == tracedBatchMagic {
			if e.TraceID, err = r.u64(); err != nil {
				return err
			}
		}
		entries = append(entries, e)
	}
	if r.pos != len(frame) {
		return ErrShortFrame
	}
	bt.Entries = entries
	return nil
}
