package remoting

import (
	"bytes"
	"testing"
	"time"

	"lakego/internal/cuda"
)

// FuzzUnmarshalCommand: arbitrary bytes must never panic the decoder, and
// anything that decodes must re-encode to an equivalent command.
func FuzzUnmarshalCommand(f *testing.F) {
	seed, _ := MarshalCommand(&Command{
		API: APICuLaunchKernel, Seq: 9, Args: []uint64{1, 2, 3},
		Name: "vecadd", Blob: []byte{1, 2},
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{cmdMagic})
	f.Fuzz(func(t *testing.T, data []byte) {
		cmd, err := UnmarshalCommand(data)
		if err != nil {
			return
		}
		re, err := MarshalCommand(cmd)
		if err != nil {
			// Decoded command exceeding wire limits cannot happen: the
			// decoder enforces the same limits.
			t.Fatalf("re-marshal failed: %v", err)
		}
		cmd2, err := UnmarshalCommand(re)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if cmd2.API != cmd.API || cmd2.Seq != cmd.Seq || cmd2.Name != cmd.Name ||
			len(cmd2.Args) != len(cmd.Args) || !bytes.Equal(cmd2.Blob, cmd.Blob) {
			t.Fatal("round trip not stable")
		}
	})
}

// FuzzUnmarshalResponse mirrors FuzzUnmarshalCommand for the response path.
func FuzzUnmarshalResponse(f *testing.F) {
	seed, _ := MarshalResponse(&Response{Seq: 1, Result: 2, Vals: []uint64{3}, Blob: []byte{4}})
	f.Add(seed)
	f.Add([]byte{respMagic, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := UnmarshalResponse(data)
		if err != nil {
			return
		}
		re, err := MarshalResponse(resp)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if _, err := UnmarshalResponse(re); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
	})
}

// FuzzUnmarshalBatch mirrors FuzzUnmarshalCommand for the batched-infer
// frame: arbitrary bytes must never panic the decoder, and anything that
// decodes must round-trip bit-for-bit through MarshalBatch.
func FuzzUnmarshalBatch(f *testing.F) {
	seed, _ := MarshalBatch(&Batch{Entries: []BatchEntry{
		{Seq: 1, InOff: 0, OutOff: 128, Count: 4},
		{Seq: 7, InOff: 4096, OutOff: 8192, Count: 1},
	}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{batchMagic})
	f.Add([]byte{batchMagic, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		bt, err := UnmarshalBatch(data)
		if err != nil {
			return
		}
		re, err := MarshalBatch(bt)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		bt2, err := UnmarshalBatch(re)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if len(bt2.Entries) != len(bt.Entries) {
			t.Fatalf("round trip lost entries: %d != %d", len(bt2.Entries), len(bt.Entries))
		}
		for i := range bt.Entries {
			if bt.Entries[i] != bt2.Entries[i] {
				t.Fatalf("entry %d not stable: %+v != %+v", i, bt.Entries[i], bt2.Entries[i])
			}
		}
	})
}

// FuzzDaemonFrame: the daemon must answer every frame with a parseable
// response and never panic.
func FuzzDaemonFrame(f *testing.F) {
	good, _ := MarshalCommand(&Command{API: APICuMemAlloc, Seq: 1, Args: []uint64{64}})
	f.Add(good)
	f.Add([]byte{0xFF, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := newStack(t)
		if err := s.tr.SendToUser(data); err != nil {
			return
		}
		if !s.daemon.PumpOne() {
			t.Fatal("daemon did not consume frame")
		}
		resp, ok := s.tr.RecvInKernel()
		if !ok {
			t.Fatal("no response")
		}
		if _, err := UnmarshalResponse(resp); err != nil {
			t.Fatalf("unparseable response: %v", err)
		}
	})
}

// FuzzResponseDemux: arbitrary garbage landing on the kernel-bound
// (response) channel ahead of a real exchange must never panic the
// resilient demux or wedge the stack. The poisoned call may observe a
// spoofed result (the simulated channel has a single trusted writer, so
// spoofing is outside the threat model), but the demux must discard
// non-matching frames and the next call must complete cleanly.
func FuzzResponseDemux(f *testing.F) {
	spoof, _ := MarshalResponse(&Response{Seq: 999, Result: 0, Vals: []uint64{7}})
	f.Add(spoof)
	f.Add([]byte{})
	f.Add([]byte{respMagic})
	f.Add([]byte{respMagic, 0, 0, 0})
	f.Add([]byte{0xFF, 0xEE, 0xDD})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := newStack(t)
		s.lib.EnableResilience(Resilience{Seed: 9, Retry: RetryPolicy{MaxAttempts: 8}})
		if r := s.lib.CuInit(); r != cuda.Success {
			t.Fatalf("CuInit: %s", r)
		}
		if err := s.tr.SendToKernel(data); err != nil {
			return
		}
		s.lib.CuDeviceGetCount() // must terminate; result may be spoofed
		if _, r := s.lib.CuDeviceGetCount(); r != cuda.Success {
			t.Fatalf("call after garbage was demuxed failed: %s", r)
		}
		if !s.lib.Healthy() {
			t.Fatal("garbage response frame killed the channel")
		}
	})
}

// FuzzBackoffFor: any attempt/draw combination must yield a backoff within
// [0, MaxBackoff*(1+Jitter)] — no negative sleeps, no overflow blowups —
// and withDefaults must never leave MaxBackoff below BaseBackoff, so the
// first wait of a defaulted policy is always the caller's full base.
func FuzzBackoffFor(f *testing.F) {
	f.Add(0, 0.5)
	f.Add(63, 1.0)
	f.Add(1000000, 0.0)
	f.Add(-5, 0.25)
	f.Add(5000, 0.5) // base 5ms > the 2ms default cap: the withDefaults clamp bug
	f.Fuzz(func(t *testing.T, attempt int, draw float64) {
		if draw < 0 || draw > 1 || draw != draw {
			return // BackoffFor's contract: draw in [0, 1]
		}
		p := DefaultRetryPolicy()
		d := p.BackoffFor(attempt, draw)
		limit := p.MaxBackoff + time.Duration(float64(p.MaxBackoff)*p.Jitter)
		if d < 0 || d > limit {
			t.Fatalf("BackoffFor(%d, %v) = %v outside [0, %v]", attempt, draw, d, limit)
		}
		// Reuse attempt as a fuzzed BaseBackoff (in µs) for a policy that
		// leaves MaxBackoff to withDefaults.
		if base := time.Duration(attempt) * time.Microsecond; base > 0 {
			p2 := RetryPolicy{BaseBackoff: base}.withDefaults()
			if p2.MaxBackoff < p2.BaseBackoff {
				t.Fatalf("withDefaults(base=%v): MaxBackoff %v < BaseBackoff %v", base, p2.MaxBackoff, p2.BaseBackoff)
			}
			if w := p2.BackoffFor(0, draw); w != base { // Jitter defaults to 0
				t.Fatalf("withDefaults(base=%v): first backoff %v, want the full base", base, w)
			}
		}
	})
}

// FuzzUnmarshalHandoff: the migration frame decoder must never panic on
// arbitrary bytes, must reject any frame whose CRC seal does not hold, and
// must round-trip every frame it accepts.
func FuzzUnmarshalHandoff(f *testing.F) {
	seed, _ := MarshalHandoff(&Handoff{
		SrcShard: 1, DstShard: 2,
		Entries: []JournalEntry{{Seq: 7, Frame: []byte{0xE1, 1, 2}}, {Seq: 9}},
	})
	f.Add(seed)
	empty, _ := MarshalHandoff(&Handoff{})
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte{handoffMagic})
	if len(seed) > 0 {
		flipped := bytes.Clone(seed)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalHandoff(data)
		if err != nil {
			return
		}
		re, err := MarshalHandoff(h)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		h2, err := UnmarshalHandoff(re)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if h2.SrcShard != h.SrcShard || h2.DstShard != h.DstShard || len(h2.Entries) != len(h.Entries) {
			t.Fatal("handoff round trip not stable")
		}
		for i := range h.Entries {
			if h2.Entries[i].Seq != h.Entries[i].Seq || !bytes.Equal(h2.Entries[i].Frame, h.Entries[i].Frame) {
				t.Fatalf("entry %d round trip not stable", i)
			}
		}
	})
}
