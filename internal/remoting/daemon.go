package remoting

import (
	"fmt"
	"sync"

	"lakego/internal/boundary"
	"lakego/internal/cuda"
	"lakego/internal/gpu"
	"lakego/internal/nvml"
	"lakego/internal/shm"
)

// HighLevelHandler realizes one custom high-level API (§4.4). It runs in the
// user domain with direct access to the CUDA API and the shared region, so
// handlers can implement TensorFlow-style functionality that would be
// impractical to port to kernel space. Returned values and blob travel back
// in the response.
type HighLevelHandler func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) (vals []uint64, out []byte, result cuda.Result)

// Daemon is lakeD: the trusted user-space process that listens for commands
// from lakeLib, deserializes them, and executes the requested APIs against
// the vendor library (§4: "This daemon must have access to the vendor's
// library (e.g. cudart.so) to realize APIs requested by lakeLib").
type Daemon struct {
	api    *cuda.API
	region *shm.Region
	tr     *boundary.Transport

	mu        sync.Mutex
	highlevel map[string]HighLevelHandler
	handled   int64
}

// NewDaemon creates a daemon serving the given CUDA API and shared region
// over the transport.
func NewDaemon(api *cuda.API, region *shm.Region, tr *boundary.Transport) *Daemon {
	return &Daemon{
		api:       api,
		region:    region,
		tr:        tr,
		highlevel: make(map[string]HighLevelHandler),
	}
}

// API exposes the daemon's CUDA binding (the "vendor library" it links).
func (d *Daemon) API() *cuda.API { return d.api }

// Region exposes the daemon's view of the lakeShm mapping.
func (d *Daemon) Region() *shm.Region { return d.region }

// Handled reports the number of commands served.
func (d *Daemon) Handled() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.handled
}

// RegisterHighLevel installs a custom high-level API under name. Adding an
// API requires exactly what §4.4 describes: a prototype on the lakeLib side
// (Lib.CallHighLevel) and an implementation here.
func (d *Daemon) RegisterHighLevel(name string, h HighLevelHandler) {
	if name == "" || h == nil {
		panic("remoting: RegisterHighLevel requires a name and handler")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.highlevel[name] = h
}

// PumpOne receives and serves a single pending command, sending its
// response back through the transport. It reports whether a command was
// pending.
func (d *Daemon) PumpOne() bool {
	frame, ok := d.tr.RecvInUser()
	if !ok {
		return false
	}
	resp := d.handleFrame(frame)
	out, err := MarshalResponse(resp)
	if err != nil {
		// A response we built ourselves must marshal; failure is a bug.
		panic(fmt.Sprintf("remoting: marshal response: %v", err))
	}
	if err := d.tr.SendToKernel(out); err != nil {
		return true // transport closed mid-flight; drop, like a dead socket
	}
	d.mu.Lock()
	d.handled++
	d.mu.Unlock()
	return true
}

func (d *Daemon) handleFrame(frame []byte) (resp *Response) {
	cmd, err := UnmarshalCommand(frame)
	if err != nil {
		return &Response{Result: int32(cuda.ErrInvalidValue)}
	}
	// The daemon is a long-lived trusted process (§6.1); a buggy
	// high-level handler or device kernel must fail the one request, not
	// the daemon. Mirrors the sandboxing posture the paper suggests.
	defer func() {
		if r := recover(); r != nil {
			resp = &Response{Seq: cmd.Seq, Result: int32(cuda.ErrUnknown)}
		}
	}()
	return d.execute(cmd)
}

// arg returns cmd.Args[i] or 0 when absent; handlers validate semantics.
func arg(cmd *Command, i int) uint64 {
	if i < len(cmd.Args) {
		return cmd.Args[i]
	}
	return 0
}

func (d *Daemon) execute(cmd *Command) *Response {
	resp := &Response{Seq: cmd.Seq, Result: int32(cuda.Success)}
	switch cmd.API {
	case APICuInit:
		resp.Result = int32(d.api.Init())

	case APICuDeviceGetCount:
		n, r := d.api.DeviceGetCount()
		resp.Result = int32(r)
		resp.Vals = []uint64{uint64(n)}

	case APICuDeviceGetName:
		name, r := d.api.DeviceGetName()
		resp.Result = int32(r)
		resp.Blob = []byte(name)

	case APICuCtxCreate:
		h, r := d.api.CtxCreate(cmd.Name)
		resp.Result = int32(r)
		resp.Vals = []uint64{h}

	case APICuCtxDestroy:
		resp.Result = int32(d.api.CtxDestroy(arg(cmd, 0)))

	case APICuMemAlloc:
		ptr, r := d.api.MemAlloc(int64(arg(cmd, 0)))
		resp.Result = int32(r)
		resp.Vals = []uint64{uint64(ptr)}

	case APICuMemFree:
		resp.Result = int32(d.api.MemFree(gpu.DevPtr(arg(cmd, 0))))

	case APICuMemcpyHtoD:
		resp.Result = int32(d.memcpyHtoD(cmd))

	case APICuMemcpyDtoH:
		resp.Result, resp.Blob = d.memcpyDtoH(cmd)

	case APICuModuleLoad:
		h, r := d.api.ModuleLoad(cmd.Name)
		resp.Result = int32(r)
		resp.Vals = []uint64{h}

	case APICuModuleGetFunction:
		h, r := d.api.ModuleGetFunction(arg(cmd, 0), cmd.Name)
		resp.Result = int32(r)
		resp.Vals = []uint64{h}

	case APICuLaunchKernel:
		if len(cmd.Args) < 2 {
			resp.Result = int32(cuda.ErrInvalidValue)
			break
		}
		resp.Result = int32(d.api.LaunchKernel(cmd.Args[0], cmd.Args[1], cmd.Args[2:]))

	case APICuCtxSynchronize:
		resp.Result = int32(d.api.CtxSynchronize(arg(cmd, 0)))

	case APINvmlUtilization:
		u := nvml.DeviceGetUtilizationRates(d.api.Device())
		resp.Vals = []uint64{uint64(u.GPU), uint64(u.Memory)}

	case APICuMemGetInfo:
		free, total, r := d.api.MemGetInfo()
		resp.Result = int32(r)
		resp.Vals = []uint64{uint64(free), uint64(total)}

	case APICuStreamCreate:
		h, r := d.api.StreamCreate(arg(cmd, 0))
		resp.Result = int32(r)
		resp.Vals = []uint64{h}

	case APICuStreamDestroy:
		resp.Result = int32(d.api.StreamDestroy(arg(cmd, 0)))

	case APICuStreamSynchronize:
		resp.Result = int32(d.api.StreamSynchronize(arg(cmd, 0)))

	case APICuMemcpyHtoDAsync:
		resp.Result = int32(d.memcpyAsync(cmd, true))

	case APICuMemcpyDtoHAsync:
		resp.Result = int32(d.memcpyAsync(cmd, false))

	case APICuLaunchKernelAsync:
		if len(cmd.Args) < 3 {
			resp.Result = int32(cuda.ErrInvalidValue)
			break
		}
		resp.Result = int32(d.api.LaunchKernelAsync(cmd.Args[0], cmd.Args[1], cmd.Args[2], cmd.Args[3:]))

	case APIBatchedInfer:
		return d.batchedInfer(cmd)

	case APIHighLevel:
		d.mu.Lock()
		h, ok := d.highlevel[cmd.Name]
		d.mu.Unlock()
		if !ok {
			resp.Result = int32(cuda.ErrNotFound)
			break
		}
		vals, blob, r := h(d.api, d.region, cmd.Args, cmd.Blob)
		resp.Result = int32(r)
		resp.Vals, resp.Blob = vals, blob

	default:
		resp.Result = int32(cuda.ErrInvalidValue)
	}
	return resp
}

// memcpyHtoD supports both data paths of §4.1: zero-copy (source is a
// lakeShm offset, args = [dst, shmOff, len, 1]) and inline (source rode in
// cmd.Blob, args = [dst, 0, len, 0], the extra-copy path).
func (d *Daemon) memcpyHtoD(cmd *Command) cuda.Result {
	if len(cmd.Args) < 4 {
		return cuda.ErrInvalidValue
	}
	dst := gpu.DevPtr(cmd.Args[0])
	length := int64(cmd.Args[2])
	if length < 0 || length > maxBlob {
		return cuda.ErrInvalidValue
	}
	var src []byte
	if cmd.Args[3] == 1 {
		view, err := d.region.At(int64(cmd.Args[1]), length)
		if err != nil {
			return cuda.ErrInvalidValue
		}
		src = view
	} else {
		if int64(len(cmd.Blob)) < length {
			return cuda.ErrInvalidValue
		}
		src = cmd.Blob[:length]
	}
	return d.api.MemcpyHtoD(dst, src)
}

// memcpyAsync serves the asynchronous copy APIs. Async copies support only
// the lakeShm path (args = [devPtr, shmOff, len, stream]): an inline blob
// cannot ride a response that has already been sent by the time the stream
// drains.
func (d *Daemon) memcpyAsync(cmd *Command, htod bool) cuda.Result {
	if len(cmd.Args) < 4 {
		return cuda.ErrInvalidValue
	}
	length := int64(cmd.Args[2])
	if length < 0 || length > maxBlob {
		return cuda.ErrInvalidValue
	}
	view, err := d.region.At(int64(cmd.Args[1]), length)
	if err != nil {
		return cuda.ErrInvalidValue
	}
	stream := cmd.Args[3]
	if htod {
		return d.api.MemcpyHtoDAsync(gpu.DevPtr(cmd.Args[0]), view, stream)
	}
	return d.api.MemcpyDtoHAsync(view, gpu.DevPtr(cmd.Args[0]), stream)
}

// memcpyDtoH mirrors memcpyHtoD for device-to-host copies: args =
// [src, shmOff, len, viaShm].
func (d *Daemon) memcpyDtoH(cmd *Command) (int32, []byte) {
	if len(cmd.Args) < 4 {
		return int32(cuda.ErrInvalidValue), nil
	}
	src := gpu.DevPtr(cmd.Args[0])
	length := int64(cmd.Args[2])
	if length < 0 || length > maxBlob {
		return int32(cuda.ErrInvalidValue), nil
	}
	if cmd.Args[3] == 1 {
		view, err := d.region.At(int64(cmd.Args[1]), length)
		if err != nil {
			return int32(cuda.ErrInvalidValue), nil
		}
		return int32(d.api.MemcpyDtoH(view, src)), nil
	}
	buf := make([]byte, length)
	r := d.api.MemcpyDtoH(buf, src)
	if r != cuda.Success {
		return int32(r), nil
	}
	return int32(r), buf
}
