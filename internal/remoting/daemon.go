package remoting

import (
	"fmt"
	"sync"

	"lakego/internal/boundary"
	"lakego/internal/cuda"
	"lakego/internal/faults"
	"lakego/internal/flightrec"
	"lakego/internal/gpu"
	"lakego/internal/nvml"
	"lakego/internal/shm"
	"lakego/internal/telemetry"
)

// HighLevelHandler realizes one custom high-level API (§4.4). It runs in the
// user domain with direct access to the CUDA API and the shared region, so
// handlers can implement TensorFlow-style functionality that would be
// impractical to port to kernel space. Returned values and blob travel back
// in the response.
type HighLevelHandler func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) (vals []uint64, out []byte, result cuda.Result)

// Daemon is lakeD: the trusted user-space process that listens for commands
// from lakeLib, deserializes them, and executes the requested APIs against
// the vendor library (§4: "This daemon must have access to the vendor's
// library (e.g. cudart.so) to realize APIs requested by lakeLib").
type Daemon struct {
	api     *cuda.API
	region  *shm.Region
	tr      boundary.Channel
	journal *journal

	// pumpMu serializes PumpOne; scratch is the pump's reusable working
	// state (decoded command, response under construction, outbound frame
	// buffer, name intern table, batch demux state). With every buffer
	// warmed the daemon serves a command without heap allocation — lakeD's
	// half of the ring transport's 0 allocs/op budget.
	pumpMu  sync.Mutex
	scratch pumpScratch

	mu        sync.Mutex
	highlevel map[string]HighLevelHandler
	handled   int64
	executed  int64
	crashed   bool
	// pendingCrash is a test/supervisor-injected crash for the next
	// executed command; the fault plane injects probabilistic ones.
	pendingCrash faults.CrashPoint
	fault        *faults.Plane
	restarts     int64
	generation   uint64
	errlog       []string

	tel DaemonTelemetry

	// rec is the flight recorder's daemon-domain view; nil-safe. Its
	// BeginExec/EndExec window is how GPU-domain events inherit the trace ID
	// of the command lakeD is executing.
	rec *flightrec.Recorder
}

// DaemonTelemetry is lakeD's instrument set; all fields may be nil.
type DaemonTelemetry struct {
	// Handled counts responses that reached the channel.
	Handled *telemetry.Counter
	// Executed counts commands whose handler actually ran.
	Executed *telemetry.Counter
	// Redelivered counts commands answered from the sequence journal.
	Redelivered *telemetry.Counter
	// CorruptFrames counts undecodable command frames.
	CorruptFrames *telemetry.Counter
	// GPUUtil / MemUtil hold the last NVML utilization sample served (%).
	GPUUtil *telemetry.Gauge
	MemUtil *telemetry.Gauge
	// Tracer attaches dispatch and launch stages to the open call span.
	Tracer *telemetry.Tracer
}

// SetTelemetry attaches instruments. Must be called during runtime
// construction, before any traffic.
func (d *Daemon) SetTelemetry(tel DaemonTelemetry) {
	d.tel = tel
}

// SetFlightRecorder attaches the flight recorder. Must be called during
// runtime construction, before any traffic.
func (d *Daemon) SetFlightRecorder(rec *flightrec.Recorder) {
	d.rec = rec
}

// maxErrlog bounds the daemon's attribution log.
const maxErrlog = 64

// pumpScratch is PumpOne's reusable working state, guarded by pumpMu. The
// decoded command's Blob aliases the received frame (valid until the next
// receive — the command is fully executed before then); everything else is
// daemon-owned storage whose capacity survives across pumps.
type pumpScratch struct {
	cmd  Command
	resp Response
	// out is the outbound response frame buffer.
	out []byte
	// names interns command names so steady-state decode never allocates a
	// string (the wire vocabulary is a small fixed set of model names and
	// kernel symbols).
	names map[string]string
	// Batch demux state for batchedInfer.
	bt         Batch
	perRes     []cuda.Result
	admitted   []int
	launchArgs [3]uint64
}

// NewDaemon creates a daemon serving the given CUDA API and shared region
// over any boundary channel — the legacy Transport or the shm
// descriptor-ring RingTransport.
func NewDaemon(api *cuda.API, region *shm.Region, tr boundary.Channel) *Daemon {
	d := &Daemon{
		api:       api,
		region:    region,
		tr:        tr,
		journal:   newJournal(0),
		highlevel: make(map[string]HighLevelHandler),
	}
	d.scratch.names = make(map[string]string, maxInternedNames)
	return d
}

// InjectFaults attaches a fault plane whose CrashNow decisions can crash
// the daemon while serving commands. A nil plane detaches.
func (d *Daemon) InjectFaults(p *faults.Plane) {
	d.mu.Lock()
	d.fault = p
	d.mu.Unlock()
}

// InjectCrash schedules a deterministic crash on the next served command:
// before its execution (the command is lost) or after (the response is
// lost, proving redelivery dedup). Tests and the chaos harness use it for
// targeted crash placement.
func (d *Daemon) InjectCrash(afterExec bool) {
	d.mu.Lock()
	if afterExec {
		d.pendingCrash = faults.CrashAfterExec
	} else {
		d.pendingCrash = faults.CrashBeforeExec
	}
	d.mu.Unlock()
}

// Crashed reports whether the daemon process is down. A crashed daemon
// consumes nothing from the channel: commands queue up (or the client's
// sends eventually fail) until the supervisor restarts it.
func (d *Daemon) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// crash marks the daemon dead, recording the crash point for attribution.
// The flight recorder captures the moment (and dumps itself: the rings are
// the crash artifact, like a kernel's ftrace buffer after an oops).
func (d *Daemon) crash(at faults.CrashPoint, cmd *Command) {
	d.mu.Lock()
	d.crashed = true
	d.logErrLocked(fmt.Sprintf("lakeD: %s while serving %s seq=%d", at, cmd.API, cmd.Seq))
	d.mu.Unlock()
	d.rec.Emit(flightrec.DomainDaemon, flightrec.EvCrash,
		cmd.TraceID, cmd.Seq, 0, uint64(at), uint64(cmd.API), 0)
	d.rec.TriggerDump("daemon-crash")
}

// Restart models the supervisor relaunching lakeD and re-attaching its
// state: the CUDA contexts and allocations live in the driver and survive,
// the lakeShm mapping is re-established over the same pinned region, and
// the sequence journal is recovered from its shm-backed slice — so
// redelivered in-flight commands still deduplicate across the crash.
func (d *Daemon) Restart() {
	d.mu.Lock()
	d.crashed = false
	d.pendingCrash = faults.CrashNone
	d.restarts++
	gen := d.generation + 1
	d.generation = gen
	d.mu.Unlock()
	d.rec.Emit(flightrec.DomainDaemon, flightrec.EvRestart, 0, 0, 0, gen, 0, 0)
}

// Restarts counts supervisor restarts; Generation is the current restart
// epoch (0 for the original process).
func (d *Daemon) Restarts() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.restarts
}

// Generation returns the daemon's restart epoch.
func (d *Daemon) Generation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.generation
}

// Executed counts commands whose handler actually ran — journal-served
// redeliveries are excluded, so in an exactly-once run Executed equals the
// number of distinct client calls that completed.
func (d *Daemon) Executed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.executed
}

// Redelivered counts commands answered from the sequence journal instead
// of being re-executed.
func (d *Daemon) Redelivered() int64 {
	hits, _, _ := d.journal.stats()
	return hits
}

// Errors returns the daemon's recent failure log. Every entry carries the
// command name and sequence number, so chaos-test failures are
// attributable to a specific remoted call.
func (d *Daemon) Errors() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.errlog))
	copy(out, d.errlog)
	return out
}

func (d *Daemon) logErrLocked(msg string) {
	if len(d.errlog) >= maxErrlog {
		d.errlog = d.errlog[1:]
	}
	d.errlog = append(d.errlog, msg)
}

func (d *Daemon) logErr(msg string) {
	d.mu.Lock()
	d.logErrLocked(msg)
	d.mu.Unlock()
}

// API exposes the daemon's CUDA binding (the "vendor library" it links).
func (d *Daemon) API() *cuda.API { return d.api }

// Region exposes the daemon's view of the lakeShm mapping.
func (d *Daemon) Region() *shm.Region { return d.region }

// Handled reports the number of commands served.
func (d *Daemon) Handled() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.handled
}

// RegisterHighLevel installs a custom high-level API under name. Adding an
// API requires exactly what §4.4 describes: a prototype on the lakeLib side
// (Lib.CallHighLevel) and an implementation here.
func (d *Daemon) RegisterHighLevel(name string, h HighLevelHandler) {
	if name == "" || h == nil {
		panic("remoting: RegisterHighLevel requires a name and handler")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.highlevel[name] = h
}

// PumpOne receives and serves a single pending command, sending its
// response back through the transport. It reports whether a command was
// served. A crashed daemon serves nothing — the process is down — until
// the supervisor restarts it.
//
// Exactly-once protocol: before any response is sent, the (seq, response)
// pair is recorded in the sequence journal. A frame whose sequence is
// already journaled — a client retry after a lost response, or a channel
// duplicate — is answered from the journal without re-executing.
func (d *Daemon) PumpOne() bool {
	if d.Crashed() {
		return false
	}
	d.pumpMu.Lock()
	defer d.pumpMu.Unlock()
	frame, ok := d.tr.RecvInUser()
	if !ok {
		return false
	}
	cmd := &d.scratch.cmd
	if err := DecodeCommandInto(cmd, d.scratch.names, frame); err != nil {
		// Undecodable frame: no trustworthy sequence to journal. Answer
		// with a seq-0 error the client demux will discard, forcing a
		// clean retransmit of the command.
		d.tel.CorruptFrames.Inc()
		d.logErr(fmt.Sprintf("lakeD: corrupt frame (%d bytes): %v", len(frame), err))
		resp := &d.scratch.resp
		resp.Seq = 0
		resp.Result = int32(cuda.ErrInvalidValue)
		resp.Vals = resp.Vals[:0]
		resp.Blob = resp.Blob[:0]
		d.respond(d.mustAppendResponse(resp))
		return true
	}
	d.rec.Emit(flightrec.DomainDaemon, flightrec.EvDispatch,
		cmd.TraceID, cmd.Seq, 0, uint64(cmd.API), uint64(len(frame)), 0)
	dispatch := d.tel.Tracer.Open(cmd.TraceID).StageTimer("dispatch", d.tr.Clock().Now())
	if cached, dup := d.journal.lookup(cmd.Seq); dup {
		d.tel.Redelivered.Inc()
		d.rec.Emit(flightrec.DomainDaemon, flightrec.EvJournalHit,
			cmd.TraceID, cmd.Seq, 0, uint64(cmd.API), 0, 0)
		d.respond(cached)
		// The journaled response answers a redelivery whose original send was
		// lost; this respond completes the call's daemon-side chain.
		d.rec.Emit(flightrec.DomainDaemon, flightrec.EvRespond,
			cmd.TraceID, cmd.Seq, 0, uint64(cmd.API), uint64(len(cached)), 0)
		dispatch.End(d.tr.Clock().Now())
		return true
	}
	switch d.crashPoint() {
	case faults.CrashBeforeExec:
		// The process dies holding the consumed command: it never
		// executes and the client must redeliver it.
		d.crash(faults.CrashBeforeExec, cmd)
		return false
	case faults.CrashAfterExec:
		// The command executes and its response is journaled (the journal
		// write is part of serving, in the shm-backed slice), but the
		// process dies before the response reaches the socket. The
		// client's redelivery is answered from the journal — never
		// re-executed.
		out := d.mustAppendResponse(d.handleCmd(cmd))
		d.journal.record(cmd.Seq, out)
		d.crash(faults.CrashAfterExec, cmd)
		return false
	}
	out := d.mustAppendResponse(d.handleCmd(cmd))
	d.journal.record(cmd.Seq, out)
	d.respond(out)
	d.rec.Emit(flightrec.DomainDaemon, flightrec.EvRespond,
		cmd.TraceID, cmd.Seq, 0, uint64(cmd.API), uint64(len(out)), 0)
	dispatch.End(d.tr.Clock().Now())
	return true
}

// crashPoint consumes any pending injected crash, else asks the fault
// plane.
func (d *Daemon) crashPoint() faults.CrashPoint {
	d.mu.Lock()
	p := d.pendingCrash
	d.pendingCrash = faults.CrashNone
	fault := d.fault
	d.mu.Unlock()
	if p != faults.CrashNone {
		return p
	}
	return fault.CrashNow()
}

// respond sends a response frame, tolerating a transport closed mid-flight
// (a dead socket drops the bytes).
func (d *Daemon) respond(out []byte) {
	if err := d.tr.SendToKernel(out); err != nil {
		return
	}
	d.mu.Lock()
	d.handled++
	d.mu.Unlock()
	d.tel.Handled.Inc()
}

// mustAppendResponse encodes a response the daemon built itself into the
// pump's reusable outbound buffer; failure is a bug, not an input
// condition. The returned frame is valid until the next pump (the journal
// copies it on record; the transport copies it on send).
func (d *Daemon) mustAppendResponse(resp *Response) []byte {
	out, err := AppendResponse(d.scratch.out[:0], resp)
	if err != nil {
		panic(fmt.Sprintf("remoting: marshal response: %v", err))
	}
	d.scratch.out = out
	return out
}

// handleCmd executes one decoded command, surviving handler panics and
// logging every failure with the command name and sequence so chaos-test
// failures are attributable.
func (d *Daemon) handleCmd(cmd *Command) (resp *Response) {
	// The daemon is a long-lived trusted process (§6.1); a buggy
	// high-level handler or device kernel must fail the one request, not
	// the daemon. Mirrors the sandboxing posture the paper suggests.
	d.rec.BeginExec(cmd.TraceID)
	d.rec.Emit(flightrec.DomainDaemon, flightrec.EvExecStart,
		cmd.TraceID, cmd.Seq, 0, uint64(cmd.API), 0, 0)
	defer func() {
		if r := recover(); r != nil {
			d.logErr(fmt.Sprintf("lakeD: panic in %s seq=%d: %v", cmd.API, cmd.Seq, r))
			resp = &d.scratch.resp
			resp.Seq = cmd.Seq
			resp.Result = int32(cuda.ErrUnknown)
			resp.Vals = resp.Vals[:0]
			resp.Blob = resp.Blob[:0]
		}
		d.rec.Emit(flightrec.DomainDaemon, flightrec.EvExecEnd,
			cmd.TraceID, cmd.Seq, 0, uint64(cmd.API), uint64(uint32(resp.Result)), 0)
		d.rec.EndExec()
	}()
	if cmd.API != APIPing {
		// Heartbeats are supervision traffic, not workload: Executed stays
		// comparable to the number of distinct client calls.
		d.mu.Lock()
		d.executed++
		d.mu.Unlock()
		d.tel.Executed.Inc()
	}
	resp = d.execute(cmd)
	if r := cuda.Result(resp.Result); r != cuda.Success {
		d.logErr(fmt.Sprintf("lakeD: %s seq=%d: %s", cmd.API, cmd.Seq, r))
	}
	return resp
}

// arg returns cmd.Args[i] or 0 when absent; handlers validate semantics.
func arg(cmd *Command, i int) uint64 {
	if i < len(cmd.Args) {
		return cmd.Args[i]
	}
	return 0
}

// execute serves one decoded command into the pump's scratch response.
// Every case appends into the response's recycled Vals/Blob storage, so a
// warmed daemon builds responses without heap allocation.
func (d *Daemon) execute(cmd *Command) *Response {
	resp := &d.scratch.resp
	resp.Seq = cmd.Seq
	resp.Result = int32(cuda.Success)
	resp.Vals = resp.Vals[:0]
	resp.Blob = resp.Blob[:0]
	switch cmd.API {
	case APICuInit:
		resp.Result = int32(d.api.Init())

	case APICuDeviceGetCount:
		n, r := d.api.DeviceGetCount()
		resp.Result = int32(r)
		resp.Vals = append(resp.Vals, uint64(n))

	case APICuDeviceGetName:
		name, r := d.api.DeviceGetName()
		resp.Result = int32(r)
		resp.Blob = append(resp.Blob, name...)

	case APICuCtxCreate:
		// Optional arg 0 pins the context to device ordinal-1; 0 (or no
		// args, the single-device wire shape) lets placement choose.
		var h uint64
		var r cuda.Result
		if ord := arg(cmd, 0); ord > 0 {
			h, r = d.api.CtxCreateOnDevice(cmd.Name, int(ord-1))
		} else {
			h, r = d.api.CtxCreate(cmd.Name)
		}
		resp.Result = int32(r)
		resp.Vals = append(resp.Vals, h)

	case APICuCtxDestroy:
		resp.Result = int32(d.api.CtxDestroy(arg(cmd, 0)))

	case APICuMemAlloc:
		// Optional arg 1 pins the device ordinal; absent (the single-device
		// wire shape) allocates in the current context, per cuMemAlloc.
		var ptr gpu.DevPtr
		var r cuda.Result
		if len(cmd.Args) >= 2 {
			ptr, r = d.api.MemAllocOnDevice(int64(arg(cmd, 0)), int(arg(cmd, 1)))
		} else {
			ptr, r = d.api.MemAlloc(int64(arg(cmd, 0)))
		}
		resp.Result = int32(r)
		resp.Vals = append(resp.Vals, uint64(ptr))

	case APICuMemFree:
		resp.Result = int32(d.api.MemFree(gpu.DevPtr(arg(cmd, 0))))

	case APICuMemcpyHtoD:
		resp.Result = int32(d.memcpyHtoD(cmd))

	case APICuMemcpyDtoH:
		d.memcpyDtoH(cmd, resp)

	case APICuModuleLoad:
		h, r := d.api.ModuleLoad(cmd.Name)
		resp.Result = int32(r)
		resp.Vals = append(resp.Vals, h)

	case APICuModuleGetFunction:
		h, r := d.api.ModuleGetFunction(arg(cmd, 0), cmd.Name)
		resp.Result = int32(r)
		resp.Vals = append(resp.Vals, h)

	case APICuLaunchKernel:
		if len(cmd.Args) < 2 {
			resp.Result = int32(cuda.ErrInvalidValue)
			break
		}
		launch := d.tel.Tracer.Open(cmd.TraceID).StageTimer("launch", d.tr.Clock().Now())
		resp.Result = int32(d.api.LaunchKernel(cmd.Args[0], cmd.Args[1], cmd.Args[2:]))
		launch.End(d.tr.Clock().Now())

	case APICuCtxSynchronize:
		resp.Result = int32(d.api.CtxSynchronize(arg(cmd, 0)))

	case APINvmlUtilization:
		// Aggregated over the pool (identical to the single-device reading
		// when the pool has one device).
		u := nvml.AggregateUtilizationRates(d.api.Devices())
		d.tel.GPUUtil.Set(int64(u.GPU))
		d.tel.MemUtil.Set(int64(u.Memory))
		resp.Vals = append(resp.Vals, uint64(u.GPU), uint64(u.Memory))

	case APINvmlDeviceUtilization:
		devs := d.api.Devices()
		ord := int(arg(cmd, 0))
		if ord < 0 || ord >= len(devs) {
			resp.Result = int32(cuda.ErrInvalidValue)
			break
		}
		u := nvml.DeviceGetUtilizationRates(devs[ord])
		resp.Vals = append(resp.Vals, uint64(u.GPU), uint64(u.Memory))

	case APICuMemGetInfo:
		free, total, r := d.api.MemGetInfo()
		resp.Result = int32(r)
		resp.Vals = append(resp.Vals, uint64(free), uint64(total))

	case APICuStreamCreate:
		h, r := d.api.StreamCreate(arg(cmd, 0))
		resp.Result = int32(r)
		resp.Vals = append(resp.Vals, h)

	case APICuStreamDestroy:
		resp.Result = int32(d.api.StreamDestroy(arg(cmd, 0)))

	case APICuStreamSynchronize:
		resp.Result = int32(d.api.StreamSynchronize(arg(cmd, 0)))

	case APICuMemcpyHtoDAsync:
		resp.Result = int32(d.memcpyAsync(cmd, true))

	case APICuMemcpyDtoHAsync:
		resp.Result = int32(d.memcpyAsync(cmd, false))

	case APICuLaunchKernelAsync:
		if len(cmd.Args) < 3 {
			resp.Result = int32(cuda.ErrInvalidValue)
			break
		}
		resp.Result = int32(d.api.LaunchKernelAsync(cmd.Args[0], cmd.Args[1], cmd.Args[2], cmd.Args[3:]))

	case APIBatchedInfer:
		d.batchedInfer(cmd, resp)

	case APIPing:
		// Heartbeat (supervision): reports the restart generation and the
		// served-command count, letting the supervisor detect silent
		// restarts and confirm liveness after ReAttached.
		d.mu.Lock()
		resp.Vals = append(resp.Vals, d.generation, uint64(d.handled))
		d.mu.Unlock()

	case APIHighLevel:
		d.mu.Lock()
		h, ok := d.highlevel[cmd.Name]
		d.mu.Unlock()
		if !ok {
			resp.Result = int32(cuda.ErrNotFound)
			break
		}
		vals, blob, r := h(d.api, d.region, cmd.Args, cmd.Blob)
		resp.Result = int32(r)
		resp.Vals = append(resp.Vals, vals...)
		resp.Blob = append(resp.Blob, blob...)

	default:
		resp.Result = int32(cuda.ErrInvalidValue)
	}
	return resp
}

// memcpyHtoD supports both data paths of §4.1: zero-copy (source is a
// lakeShm offset, args = [dst, shmOff, len, 1]) and inline (source rode in
// cmd.Blob, args = [dst, 0, len, 0], the extra-copy path).
func (d *Daemon) memcpyHtoD(cmd *Command) cuda.Result {
	if len(cmd.Args) < 4 {
		return cuda.ErrInvalidValue
	}
	dst := gpu.DevPtr(cmd.Args[0])
	length := int64(cmd.Args[2])
	if length < 0 || length > maxBlob {
		return cuda.ErrInvalidValue
	}
	var src []byte
	if cmd.Args[3] == 1 {
		view, err := d.region.At(int64(cmd.Args[1]), length)
		if err != nil {
			return cuda.ErrInvalidValue
		}
		src = view
	} else {
		if int64(len(cmd.Blob)) < length {
			return cuda.ErrInvalidValue
		}
		src = cmd.Blob[:length]
	}
	return d.api.MemcpyHtoD(dst, src)
}

// memcpyAsync serves the asynchronous copy APIs. Async copies support only
// the lakeShm path (args = [devPtr, shmOff, len, stream]): an inline blob
// cannot ride a response that has already been sent by the time the stream
// drains.
func (d *Daemon) memcpyAsync(cmd *Command, htod bool) cuda.Result {
	if len(cmd.Args) < 4 {
		return cuda.ErrInvalidValue
	}
	length := int64(cmd.Args[2])
	if length < 0 || length > maxBlob {
		return cuda.ErrInvalidValue
	}
	view, err := d.region.At(int64(cmd.Args[1]), length)
	if err != nil {
		return cuda.ErrInvalidValue
	}
	stream := cmd.Args[3]
	if htod {
		return d.api.MemcpyHtoDAsync(gpu.DevPtr(cmd.Args[0]), view, stream)
	}
	return d.api.MemcpyDtoHAsync(view, gpu.DevPtr(cmd.Args[0]), stream)
}

// memcpyDtoH mirrors memcpyHtoD for device-to-host copies: args =
// [src, shmOff, len, viaShm]. The inline return path reuses the scratch
// response's Blob capacity for the copied-back payload.
func (d *Daemon) memcpyDtoH(cmd *Command, resp *Response) {
	if len(cmd.Args) < 4 {
		resp.Result = int32(cuda.ErrInvalidValue)
		return
	}
	src := gpu.DevPtr(cmd.Args[0])
	length := int64(cmd.Args[2])
	if length < 0 || length > maxBlob {
		resp.Result = int32(cuda.ErrInvalidValue)
		return
	}
	if cmd.Args[3] == 1 {
		view, err := d.region.At(int64(cmd.Args[1]), length)
		if err != nil {
			resp.Result = int32(cuda.ErrInvalidValue)
			return
		}
		resp.Result = int32(d.api.MemcpyDtoH(view, src))
		return
	}
	if int64(cap(resp.Blob)) < length {
		resp.Blob = make([]byte, length)
	} else {
		resp.Blob = resp.Blob[:length]
	}
	r := d.api.MemcpyDtoH(resp.Blob, src)
	resp.Result = int32(r)
	if r != cuda.Success {
		resp.Blob = resp.Blob[:0]
	}
}
