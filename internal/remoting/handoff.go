package remoting

import (
	"encoding/binary"
	"fmt"
)

// Shard handoff: when a fleet shard drains (or dies), its exactly-once
// state — the sequence journal mapping executed commands to their response
// frames — must move to the shard inheriting its clients, or a client
// retrying an in-flight call after re-route would re-execute it. The
// Handoff frame is that transfer's wire format. Sequence numbers are
// shard-tagged (Lib.SetShardTag), so merged journals from different shards
// can never collide on a key.

// JournalEntry is one journaled (sequence, response frame) pair, exported
// in execution (FIFO) order.
type JournalEntry struct {
	Seq   uint64
	Frame []byte
}

// Handoff is the migration payload shipped from a draining shard to its
// successor: the source journal plus the shard ordinals for attribution.
type Handoff struct {
	SrcShard uint32
	DstShard uint32
	Entries  []JournalEntry
}

// handoffMagic leads a handoff frame (0xC1/0xC2 are commands, 0xE1
// responses, 0xB7/0xB8 batches).
const handoffMagic = 0xD7

// maxHandoffEntries bounds a decodable handoff well above any journal
// capacity in use; a larger count indicates a corrupt frame.
const maxHandoffEntries = 1 << 16

// MarshalHandoff encodes h into a CRC-sealed wire frame.
func MarshalHandoff(h *Handoff) ([]byte, error) {
	if len(h.Entries) > maxHandoffEntries {
		return nil, fmt.Errorf("remoting: handoff exceeds wire limits (%d entries)", len(h.Entries))
	}
	n := 1 + 4 + 4 + 4 + crcLen
	for _, e := range h.Entries {
		n += 8 + 4 + len(e.Frame)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, handoffMagic)
	buf = binary.LittleEndian.AppendUint32(buf, h.SrcShard)
	buf = binary.LittleEndian.AppendUint32(buf, h.DstShard)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.Entries)))
	for _, e := range h.Entries {
		if len(e.Frame) > maxBlob {
			return nil, fmt.Errorf("remoting: handoff entry seq=%d exceeds wire limits (%d bytes)", e.Seq, len(e.Frame))
		}
		buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Frame)))
		buf = append(buf, e.Frame...)
	}
	return sealFrame(buf), nil
}

// UnmarshalHandoff decodes a wire frame produced by MarshalHandoff,
// verifying the CRC trailer and exact framing like UnmarshalCommand: a
// flipped bit anywhere is rejected, never merged into a journal.
func UnmarshalHandoff(frame []byte) (*Handoff, error) {
	body, err := openFrame(frame)
	if err != nil {
		return nil, err
	}
	r := reader{buf: body}
	if m, err := r.u8(); err != nil || m != handoffMagic {
		return nil, ErrShortFrame
	}
	h := new(Handoff)
	if h.SrcShard, err = r.u32(); err != nil {
		return nil, err
	}
	if h.DstShard, err = r.u32(); err != nil {
		return nil, err
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if count > maxHandoffEntries {
		return nil, ErrShortFrame
	}
	for i := uint32(0); i < count; i++ {
		var e JournalEntry
		if e.Seq, err = r.u64(); err != nil {
			return nil, err
		}
		flen, err := r.u32()
		if err != nil {
			return nil, err
		}
		if flen > maxBlob {
			return nil, ErrShortFrame
		}
		if err := r.need(int(flen)); err != nil {
			return nil, err
		}
		if flen > 0 {
			e.Frame = make([]byte, flen)
			copy(e.Frame, r.buf[r.pos:])
			r.pos += int(flen)
		}
		h.Entries = append(h.Entries, e)
	}
	if r.pos != len(body) {
		return nil, ErrShortFrame
	}
	return h, nil
}

// export snapshots the journal's live entries in FIFO order, walking the
// slot ring from the eviction cursor (the oldest live entry once wrapped).
// Frames are copied: the snapshot must stay intact while the source journal
// keeps recording during a drain.
func (j *journal) export() []JournalEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalEntry, 0, j.live)
	n := len(j.slots)
	for k := 0; k < n; k++ {
		s := &j.slots[(j.next+k)%n]
		if !s.used {
			continue
		}
		frame := make([]byte, len(s.buf))
		copy(frame, s.buf)
		out = append(out, JournalEntry{Seq: s.seq, Frame: frame})
	}
	return out
}

// ExportJournal snapshots the daemon's sequence journal for a handoff. The
// daemon keeps serving afterwards; the fleet quiesces the shard before
// exporting so no entry is recorded between export and cutover.
func (d *Daemon) ExportJournal() []JournalEntry {
	return d.journal.export()
}

// ImportJournal merges migrated entries into the daemon's journal,
// returning how many were absorbed. Present sequences are kept (record is
// first-writer-wins), which cannot happen between distinct shard tags.
func (d *Daemon) ImportJournal(entries []JournalEntry) int {
	n := 0
	for _, e := range entries {
		d.journal.record(e.Seq, e.Frame)
		n++
	}
	return n
}
