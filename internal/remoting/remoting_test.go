package remoting

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"lakego/internal/boundary"
	"lakego/internal/cuda"
	"lakego/internal/gpu"
	"lakego/internal/shm"
	"lakego/internal/vtime"
)

// stack assembles the full remoting pipeline used across the tests.
type stack struct {
	clock  *vtime.Clock
	dev    *gpu.Device
	api    *cuda.API
	region *shm.Region
	tr     *boundary.Transport
	daemon *Daemon
	lib    *Lib
}

func newStack(t *testing.T) *stack {
	t.Helper()
	clock := vtime.New()
	dev := gpu.New(gpu.DefaultSpec(), clock)
	api := cuda.NewAPI(dev)
	api.RegisterKernel(cuda.VecAddKernel())
	region, err := shm.NewRegion(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	tr := boundary.NewTransport(boundary.Netlink, clock, 16)
	daemon := NewDaemon(api, region, tr)
	lib := NewLib(tr, daemon, region)
	return &stack{clock, dev, api, region, tr, daemon, lib}
}

func TestCommandRoundTrip(t *testing.T) {
	c := &Command{
		API:  APICuLaunchKernel,
		Seq:  42,
		Args: []uint64{1, 2, 3, 0xdeadbeef},
		Name: "vecadd",
		Blob: []byte{9, 8, 7},
	}
	frame, err := MarshalCommand(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCommand(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.API != c.API || got.Seq != c.Seq || got.Name != c.Name ||
		len(got.Args) != 4 || got.Args[3] != 0xdeadbeef ||
		!bytes.Equal(got.Blob, c.Blob) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := &Response{Seq: 7, Result: int32(cuda.ErrNotFound), Vals: []uint64{11}, Blob: []byte("x")}
	frame, err := MarshalResponse(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Result != int32(cuda.ErrNotFound) ||
		len(got.Vals) != 1 || got.Vals[0] != 11 || string(got.Blob) != "x" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestUnmarshalRejectsCorruptFrames(t *testing.T) {
	good, _ := MarshalCommand(&Command{API: APICuInit, Args: []uint64{1}})
	for cut := 0; cut < len(good); cut++ {
		if _, err := UnmarshalCommand(good[:cut]); err == nil {
			t.Fatalf("truncated frame at %d bytes unmarshalled", cut)
		}
	}
	if _, err := UnmarshalCommand([]byte{0x00, 0x01}); err == nil {
		t.Fatal("bad magic accepted")
	}
	goodR, _ := MarshalResponse(&Response{Seq: 1, Vals: []uint64{2}})
	for cut := 0; cut < len(goodR); cut++ {
		if _, err := UnmarshalResponse(goodR[:cut]); err == nil {
			t.Fatalf("truncated response at %d bytes unmarshalled", cut)
		}
	}
}

func TestAPIIDString(t *testing.T) {
	if APICuMemAlloc.String() != "cuMemAlloc" {
		t.Fatalf("APICuMemAlloc = %q", APICuMemAlloc)
	}
	if APIID(9999).String() == "" {
		t.Fatal("unknown id stringifies empty")
	}
}

func TestRemotedInitAndDeviceQueries(t *testing.T) {
	s := newStack(t)
	if r := s.lib.CuInit(); r != cuda.Success {
		t.Fatalf("CuInit = %v", r)
	}
	n, r := s.lib.CuDeviceGetCount()
	if r != cuda.Success || n != 1 {
		t.Fatalf("CuDeviceGetCount = %d, %v", n, r)
	}
	name, r := s.lib.CuDeviceGetName()
	if r != cuda.Success || name == "" {
		t.Fatalf("CuDeviceGetName = %q, %v", name, r)
	}
	if s.daemon.Handled() != 3 {
		t.Fatalf("daemon handled %d, want 3", s.daemon.Handled())
	}
}

func TestRemotedVecAddViaShm(t *testing.T) {
	s := newStack(t)
	s.lib.CuInit()
	ctx, _ := s.lib.CuCtxCreate("kernel-app")
	mod, _ := s.lib.CuModuleLoad("kernels.cubin")
	fn, r := s.lib.CuModuleGetFunction(mod, "vecadd")
	if r != cuda.Success {
		t.Fatalf("CuModuleGetFunction = %v", r)
	}

	const n = 64
	av, bv := make([]float32, n), make([]float32, n)
	for i := range av {
		av[i], bv[i] = float32(i), float32(i*10)
	}
	// Kernel app allocates copiable memory via lakeShm (§4.1).
	abuf, _ := s.region.Alloc(4 * n)
	bbuf, _ := s.region.Alloc(4 * n)
	cbuf, _ := s.region.Alloc(4 * n)
	cuda.PutFloat32s(abuf.Bytes(), av)
	cuda.PutFloat32s(bbuf.Bytes(), bv)

	ap, _ := s.lib.CuMemAlloc(4 * n)
	bp, _ := s.lib.CuMemAlloc(4 * n)
	cp, _ := s.lib.CuMemAlloc(4 * n)
	if r := s.lib.CuMemcpyHtoDShm(ap, abuf, 4*n); r != cuda.Success {
		t.Fatalf("HtoD a = %v", r)
	}
	if r := s.lib.CuMemcpyHtoDShm(bp, bbuf, 4*n); r != cuda.Success {
		t.Fatalf("HtoD b = %v", r)
	}
	if r := s.lib.CuLaunchKernel(ctx, fn, []uint64{uint64(ap), uint64(bp), uint64(cp), n}); r != cuda.Success {
		t.Fatalf("launch = %v", r)
	}
	if r := s.lib.CuMemcpyDtoHShm(cbuf, cp, 4*n); r != cuda.Success {
		t.Fatalf("DtoH = %v", r)
	}
	cv, err := cuda.Float32s(cbuf.Bytes(), n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cv {
		if cv[i] != float32(i*11) {
			t.Fatalf("c[%d] = %v, want %v", i, cv[i], float32(i*11))
		}
	}
	if s.clock.Now() == 0 {
		t.Fatal("virtual clock did not advance across remoted calls")
	}
}

func TestRemotedInlineCopyPath(t *testing.T) {
	s := newStack(t)
	s.lib.CuInit()
	ptr, _ := s.lib.CuMemAlloc(8)
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if r := s.lib.CuMemcpyHtoD(ptr, src); r != cuda.Success {
		t.Fatalf("inline HtoD = %v", r)
	}
	dst := make([]byte, 8)
	if r := s.lib.CuMemcpyDtoH(dst, ptr); r != cuda.Success {
		t.Fatalf("inline DtoH = %v", r)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("dst = %v, want %v", dst, src)
	}
}

func TestInlinePathCostsMoreThanShmPath(t *testing.T) {
	// Moving 16 KiB inline must charge more channel time than moving the
	// same bytes via lakeShm, where only the offset crosses the boundary.
	measure := func(viaShm bool) time.Duration {
		s := newStack(t)
		s.lib.CuInit()
		const n = 16 << 10
		ptr, _ := s.lib.CuMemAlloc(n)
		start := s.clock.Now()
		if viaShm {
			buf, _ := s.region.Alloc(n)
			if r := s.lib.CuMemcpyHtoDShm(ptr, buf, n); r != cuda.Success {
				t.Fatalf("shm HtoD = %v", r)
			}
		} else {
			if r := s.lib.CuMemcpyHtoD(ptr, make([]byte, n)); r != cuda.Success {
				t.Fatalf("inline HtoD = %v", r)
			}
		}
		return s.clock.Now() - start
	}
	inline, viaShm := measure(false), measure(true)
	if inline <= viaShm {
		t.Fatalf("inline copy (%v) not more expensive than shm copy (%v)", inline, viaShm)
	}
}

func TestHighLevelAPI(t *testing.T) {
	s := newStack(t)
	s.daemon.RegisterHighLevel("tf_infer", func(api *cuda.API, region *shm.Region, args []uint64, blob []byte) ([]uint64, []byte, cuda.Result) {
		// Echo back a transformed blob and a computed value.
		out := make([]byte, len(blob))
		for i, b := range blob {
			out[i] = b + 1
		}
		return []uint64{args[0] * 2}, out, cuda.Success
	})
	vals, blob, r := s.lib.CallHighLevel("tf_infer", []uint64{21}, []byte{1, 2})
	if r != cuda.Success {
		t.Fatalf("CallHighLevel = %v", r)
	}
	if len(vals) != 1 || vals[0] != 42 {
		t.Fatalf("vals = %v, want [42]", vals)
	}
	if !bytes.Equal(blob, []byte{2, 3}) {
		t.Fatalf("blob = %v, want [2 3]", blob)
	}
	if _, _, r := s.lib.CallHighLevel("missing", nil, nil); r != cuda.ErrNotFound {
		t.Fatalf("missing handler = %v, want ErrNotFound", r)
	}
}

func TestErrorForwarding(t *testing.T) {
	s := newStack(t)
	// Before CuInit, remoted calls must forward CUDA's error code — the
	// kernel application does its own error checking (§4.1).
	if _, r := s.lib.CuMemAlloc(64); r != cuda.ErrNotInitialized {
		t.Fatalf("CuMemAlloc before init = %v, want ErrNotInitialized", r)
	}
	s.lib.CuInit()
	if r := s.lib.CuMemFree(gpu.DevPtr(0xbad)); r != cuda.ErrInvalidValue {
		t.Fatalf("bad free = %v, want ErrInvalidValue", r)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := newStack(t)
	s.lib.CuInit()
	s.lib.CuDeviceGetCount()
	calls, channel := s.lib.Stats()
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if channel < 50*time.Microsecond {
		t.Fatalf("channel time = %v, want >= 2x netlink base", channel)
	}
}

func TestClosedTransportSurfacesError(t *testing.T) {
	s := newStack(t)
	s.tr.Close()
	if r := s.lib.CuInit(); r != cuda.ErrUnknown {
		t.Fatalf("CuInit on closed transport = %v, want ErrUnknown", r)
	}
}

func TestNvmlRemoted(t *testing.T) {
	s := newStack(t)
	s.clock.Advance(time.Second)
	g, m, r := s.lib.NvmlGetUtilization()
	if r != cuda.Success {
		t.Fatalf("NvmlGetUtilization = %v", r)
	}
	if g != 0 || m != 0 {
		t.Fatalf("idle utilization = %d,%d; want 0,0", g, m)
	}
}

// Property: any command survives marshal/unmarshal bit-exactly.
func TestQuickCommandRoundTrip(t *testing.T) {
	f := func(api uint32, seq uint64, args []uint64, name string, blob []byte) bool {
		if len(args) > 1000 || len(name) > 500 || len(blob) > 5000 {
			return true // outside wire limits; covered elsewhere
		}
		c := &Command{API: APIID(api), Seq: seq, Args: args, Name: name, Blob: blob}
		frame, err := MarshalCommand(c)
		if err != nil {
			return false
		}
		got, err := UnmarshalCommand(frame)
		if err != nil {
			return false
		}
		if got.API != c.API || got.Seq != c.Seq || got.Name != c.Name {
			return false
		}
		if len(got.Args) != len(c.Args) {
			return false
		}
		for i := range c.Args {
			if got.Args[i] != c.Args[i] {
				return false
			}
		}
		return bytes.Equal(got.Blob, c.Blob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
