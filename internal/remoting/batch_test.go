package remoting

import (
	"testing"

	"lakego/internal/cuda"
	"lakego/internal/gpu"
)

// doubleKernel is an offload-style inference kernel (args = [in, out, n])
// that doubles each input float, used to verify batched scatter/gather.
func doubleKernel() *cuda.Kernel {
	return &cuda.Kernel{
		Name:  "double",
		Flops: func(args []uint64) float64 { return float64(args[2]) },
		Body: func(dev *gpu.Device, args []uint64) error {
			inMem, err := dev.Bytes(gpu.DevPtr(args[0]))
			if err != nil {
				return err
			}
			outMem, err := dev.Bytes(gpu.DevPtr(args[1]))
			if err != nil {
				return err
			}
			n := int(args[2])
			xs, err := cuda.Float32s(inMem, n)
			if err != nil {
				return err
			}
			out := make([]float32, n)
			for i, x := range xs {
				out[i] = 2 * x
			}
			return cuda.PutFloat32s(outMem, out)
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	bt := &Batch{Entries: []BatchEntry{
		{Seq: 3, InOff: 64, OutOff: 256, Count: 2},
		{Seq: 9, InOff: 1024, OutOff: 2048, Count: 16},
	}}
	frame, err := MarshalBatch(bt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || got.Entries[0] != bt.Entries[0] || got.Entries[1] != bt.Entries[1] {
		t.Fatalf("round trip mismatch: %+v", got.Entries)
	}
	if _, err := UnmarshalBatch(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame decoded")
	}
	if _, err := UnmarshalBatch(append(frame, 0)); err == nil {
		t.Fatal("frame with trailing bytes decoded")
	}
}

// TestBatchedInferScatterGather drives APIBatchedInfer end to end: three
// requests with distinct shm slices must come back demuxed by sequence with
// each output scattered to its own slice, from a single kernel launch.
func TestBatchedInferScatterGather(t *testing.T) {
	s := newStack(t)
	s.api.RegisterKernel(doubleKernel())
	s.lib.CuInit()
	ctx, _ := s.lib.CuCtxCreate("kernel-batch")
	mod, _ := s.lib.CuModuleLoad("batch.cubin")
	fn, r := s.lib.CuModuleGetFunction(mod, "double")
	if r != cuda.Success {
		t.Fatalf("CuModuleGetFunction = %v", r)
	}
	const maxItems = 16
	devIn, _ := s.lib.CuMemAlloc(4 * maxItems)
	devOut, _ := s.lib.CuMemAlloc(4 * maxItems)
	spec := BatchSpec{Ctx: ctx, Fn: fn, DevIn: devIn, DevOut: devOut, InWidth: 1, OutWidth: 1}

	counts := []int{2, 3, 1}
	entries := make([]BatchEntry, len(counts))
	var inputs [][]float32
	outBufs := make([]int64, len(counts))
	next := float32(1)
	for i, c := range counts {
		in, _ := s.region.Alloc(int64(4 * c))
		out, _ := s.region.Alloc(int64(4 * c))
		xs := make([]float32, c)
		for j := range xs {
			xs[j] = next
			next++
		}
		cuda.PutFloat32s(in.Bytes(), xs)
		inputs = append(inputs, xs)
		outBufs[i] = out.Offset()
		entries[i] = BatchEntry{
			Seq: uint64(100 + i), InOff: uint64(in.Offset()), OutOff: uint64(out.Offset()), Count: uint32(c),
		}
	}

	launchesBefore := s.dev.Launches()
	per, r := s.lib.CuBatchedInfer("double", spec, entries)
	if r != cuda.Success {
		t.Fatalf("CuBatchedInfer = %v", r)
	}
	if s.dev.Launches() != launchesBefore+1 {
		t.Fatalf("launches = %d, want exactly one batched launch", s.dev.Launches()-launchesBefore)
	}
	for i, e := range entries {
		if per[e.Seq] != cuda.Success {
			t.Fatalf("entry %d result = %v", i, per[e.Seq])
		}
		view, _ := s.region.At(outBufs[i], int64(4*counts[i]))
		got, _ := cuda.Float32s(view, counts[i])
		for j, y := range got {
			if y != 2*inputs[i][j] {
				t.Fatalf("entry %d item %d = %v, want %v", i, j, y, 2*inputs[i][j])
			}
		}
	}
}

// TestBatchedInferPartialFailure: an entry with a bad shm range fails alone
// while valid entries still execute.
func TestBatchedInferPartialFailure(t *testing.T) {
	s := newStack(t)
	s.api.RegisterKernel(doubleKernel())
	s.lib.CuInit()
	ctx, _ := s.lib.CuCtxCreate("kernel-batch")
	mod, _ := s.lib.CuModuleLoad("batch.cubin")
	fn, _ := s.lib.CuModuleGetFunction(mod, "double")
	devIn, _ := s.lib.CuMemAlloc(64)
	devOut, _ := s.lib.CuMemAlloc(64)
	spec := BatchSpec{Ctx: ctx, Fn: fn, DevIn: devIn, DevOut: devOut, InWidth: 1, OutWidth: 1}

	in, _ := s.region.Alloc(4)
	out, _ := s.region.Alloc(4)
	cuda.PutFloat32s(in.Bytes(), []float32{21})
	entries := []BatchEntry{
		{Seq: 1, InOff: uint64(in.Offset()), OutOff: uint64(out.Offset()), Count: 1},
		{Seq: 2, InOff: 1 << 40, OutOff: uint64(out.Offset()), Count: 1},             // bad input range
		{Seq: 3, InOff: uint64(in.Offset()), OutOff: uint64(out.Offset()), Count: 0}, // empty
	}
	per, r := s.lib.CuBatchedInfer("double", spec, entries)
	if r != cuda.Success {
		t.Fatalf("CuBatchedInfer = %v", r)
	}
	if per[1] != cuda.Success || per[2] == cuda.Success || per[3] == cuda.Success {
		t.Fatalf("per-entry results = %v", per)
	}
	got, _ := cuda.Float32s(out.Bytes(), 1)
	if got[0] != 42 {
		t.Fatalf("valid entry output = %v, want 42", got[0])
	}
}
