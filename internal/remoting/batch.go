package remoting

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lakego/internal/cuda"
	"lakego/internal/flightrec"
	"lakego/internal/gpu"
)

// This file is the wire half of the cross-client batching subsystem
// (internal/batcher): one APIBatchedInfer command carries many independent
// inference requests, each referencing its own lakeShm slices, and lakeD
// gathers them into a single device launch. Per-request results travel back
// in one response and are demultiplexed by request sequence number.

// BatchEntry describes one client request inside a batched-infer command.
// The request's input lives at InOff in lakeShm (Count items of the model's
// input width) and its output is scattered back to OutOff — only offsets
// cross the boundary, preserving the §4.1 zero-copy property per request.
type BatchEntry struct {
	// Seq is the batcher-assigned request sequence used to demux results.
	Seq uint64
	// InOff / OutOff are lakeShm offsets of the request's slices.
	InOff, OutOff uint64
	// Count is the number of inference items in this request.
	Count uint32
	// TraceID is the member request's flight-recorder correlation key,
	// propagated through the coalesced flush. Optional on the wire like
	// Command.TraceID: a batch whose entries are all untraced marshals to
	// the original batchMagic layout byte-for-byte.
	TraceID uint64
}

// Batch is the payload of an APIBatchedInfer command.
type Batch struct {
	Entries []BatchEntry
}

// maxBatchEntries bounds one batched command; a frame beyond it is corrupt.
// It is half maxArgs because each entry produces a (seq, result) pair in the
// response's Vals.
const maxBatchEntries = maxArgs / 2

const (
	batchMagic = 0xB7
	// tracedBatchMagic marks a batch whose entries carry trace IDs: the
	// batchMagic layout with 8 extra bytes per entry. Used only when at
	// least one entry is traced, mirroring cmdMagicTraced.
	tracedBatchMagic = 0xB8
)

// MarshalBatch encodes a batch descriptor for transport in a Command blob.
func MarshalBatch(bt *Batch) ([]byte, error) {
	if len(bt.Entries) > maxBatchEntries {
		return nil, fmt.Errorf("remoting: batch has %d entries, max %d", len(bt.Entries), maxBatchEntries)
	}
	traced := false
	for _, e := range bt.Entries {
		if e.TraceID != 0 {
			traced = true
			break
		}
	}
	buf := make([]byte, 0, 1+2+36*len(bt.Entries))
	if traced {
		buf = append(buf, tracedBatchMagic)
	} else {
		buf = append(buf, batchMagic)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(bt.Entries)))
	for _, e := range bt.Entries {
		buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, e.InOff)
		buf = binary.LittleEndian.AppendUint64(buf, e.OutOff)
		buf = binary.LittleEndian.AppendUint32(buf, e.Count)
		if traced {
			buf = binary.LittleEndian.AppendUint64(buf, e.TraceID)
		}
	}
	return buf, nil
}

// UnmarshalBatch decodes a frame produced by MarshalBatch.
func UnmarshalBatch(frame []byte) (*Batch, error) {
	r := reader{buf: frame}
	m, err := r.u8()
	if err != nil || (m != batchMagic && m != tracedBatchMagic) {
		return nil, ErrShortFrame
	}
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n > maxBatchEntries {
		return nil, ErrShortFrame
	}
	entries := make([]BatchEntry, n)
	for i := range entries {
		if entries[i].Seq, err = r.u64(); err != nil {
			return nil, err
		}
		if entries[i].InOff, err = r.u64(); err != nil {
			return nil, err
		}
		if entries[i].OutOff, err = r.u64(); err != nil {
			return nil, err
		}
		c, err := r.u32()
		if err != nil {
			return nil, err
		}
		entries[i].Count = c
		if m == tracedBatchMagic {
			if entries[i].TraceID, err = r.u64(); err != nil {
				return nil, err
			}
		}
	}
	if r.pos != len(frame) {
		return nil, ErrShortFrame
	}
	return &Batch{Entries: entries}, nil
}

// BatchSpec carries the device-side state a batched launch executes
// against: the model's context, kernel handle, staging allocations and item
// widths. The kernel side (internal/batcher) owns these handles; lakeD
// validates them per command like any other remoted handle.
type BatchSpec struct {
	Ctx, Fn       uint64
	DevIn, DevOut gpu.DevPtr
	// InWidth / OutWidth are per-item float32 counts.
	InWidth, OutWidth int
}

// args flattens the spec into command args; batchSpecFromArgs inverts it.
func (s BatchSpec) args() []uint64 {
	return []uint64{s.Ctx, s.Fn, uint64(s.DevIn), uint64(s.DevOut), uint64(s.InWidth), uint64(s.OutWidth)}
}

func batchSpecFromArgs(args []uint64) (BatchSpec, bool) {
	if len(args) < 6 {
		return BatchSpec{}, false
	}
	return BatchSpec{
		Ctx: args[0], Fn: args[1],
		DevIn: gpu.DevPtr(args[2]), DevOut: gpu.DevPtr(args[3]),
		InWidth: int(args[4]), OutWidth: int(args[5]),
	}, true
}

// CuBatchedInfer remotes one dynamically formed batch: a single command
// whose entries are independent client requests. It returns the per-request
// results keyed by BatchEntry.Seq plus the command-level result. A non-nil
// map with Success command result may still contain per-entry failures
// (e.g. one request's shm range was invalid while the rest executed).
func (l *Lib) CuBatchedInfer(model string, spec BatchSpec, entries []BatchEntry) (map[uint64]cuda.Result, cuda.Result) {
	return l.CuBatchedInferTraced(model, spec, entries, 0)
}

// CuBatchedInferTraced is CuBatchedInfer under an externally assigned trace
// ID: the batcher allocates one ID per flush so the remoted command (and
// its daemon-side events and span stages) correlate with the flush span,
// while the entries keep their member trace IDs.
func (l *Lib) CuBatchedInferTraced(model string, spec BatchSpec, entries []BatchEntry, traceID uint64) (map[uint64]cuda.Result, cuda.Result) {
	var sc BatchScratch
	res, r := l.CuBatchedInferInto(model, spec, entries, traceID, &sc)
	if res == nil {
		return nil, r
	}
	per := make(map[uint64]cuda.Result, len(res))
	for i := range res {
		per[entries[i].Seq] = res[i]
	}
	return per, r
}

// BatchScratch holds a flusher's reusable wire and demux buffers for
// CuBatchedInferInto. One scratch per serialized flusher (the batcher keeps
// one per model, under its execution lock); the zero value is ready to use.
type BatchScratch struct {
	blob    []byte
	results []cuda.Result
}

// CuBatchedInferInto is the allocation-free batched-infer path: the batch
// payload is marshaled into sc's reusable blob and the per-request results
// are decoded into sc's reusable slice, aligned 1:1 with entries (lakeD
// answers in entry order; the sequence of every pair is verified). The
// returned slice aliases sc and is valid until the next call with the same
// scratch. A nil results slice means the exchange itself failed (or the
// response was not aligned with the request) — callers treat every entry
// as failed with the command-level result.
func (l *Lib) CuBatchedInferInto(model string, spec BatchSpec, entries []BatchEntry, traceID uint64, sc *BatchScratch) ([]cuda.Result, cuda.Result) {
	bt := Batch{Entries: entries}
	blob, err := AppendBatch(sc.blob[:0], &bt)
	sc.blob = blob
	if err != nil {
		return nil, cuda.ErrInvalidValue
	}
	cs := l.newCall(APIBatchedInfer)
	cs.cmd.TraceID = traceID
	cs.cmd.Name = model
	cs.cmd.Args = append(cs.cmd.Args,
		spec.Ctx, spec.Fn, uint64(spec.DevIn), uint64(spec.DevOut),
		uint64(spec.InWidth), uint64(spec.OutWidth))
	cs.cmd.Blob = blob
	if err := l.call(cs); err != nil {
		l.done(cs)
		if errors.Is(err, ErrDaemonDead) || errors.Is(err, ErrDeadlineExceeded) {
			return nil, cuda.ErrNotReady
		}
		return nil, cuda.ErrUnknown
	}
	r := cuda.Result(cs.resp.Result)
	vals := cs.resp.Vals
	results := sc.results[:0]
	aligned := len(vals) == 2*len(entries)
	for i := 0; aligned && i < len(entries); i++ {
		if vals[2*i] != entries[i].Seq {
			aligned = false
			break
		}
		results = append(results, cuda.Result(vals[2*i+1]))
	}
	sc.results = results
	l.done(cs)
	if !aligned {
		if len(vals) == 0 {
			// The daemon rejected the command wholesale (e.g. a bad spec):
			// command-level result, zero per-entry results.
			return results[:0], r
		}
		return nil, cuda.ErrUnknown
	}
	return results, r
}

// batchedInfer is lakeD's side of the batching subsystem: it validates each
// entry, gathers the valid requests' shm slices into the model's device
// input staging area, performs ONE launch over the combined batch, and
// scatters per-request output slices back into lakeShm. Data movement is
// charged as one aggregated DMA per direction — the transfer amortization
// that makes cross-client batching profitable.
func (d *Daemon) batchedInfer(cmd *Command, resp *Response) {
	sc := &d.scratch
	spec, ok := batchSpecFromArgs(cmd.Args)
	if !ok || spec.InWidth <= 0 || spec.OutWidth <= 0 {
		resp.Result = int32(cuda.ErrInvalidValue)
		return
	}
	bt := &sc.bt
	if err := UnmarshalBatchInto(bt, cmd.Blob); err != nil {
		resp.Result = int32(cuda.ErrInvalidValue)
		return
	}
	// Daemon-side proof that member trace IDs survived the coalesced wire
	// trip: one flush_member event per traced entry, linking member -> flush.
	for _, e := range bt.Entries {
		if e.TraceID != 0 {
			d.rec.Emit(flightrec.DomainDaemon, flightrec.EvFlushMember,
				e.TraceID, e.Seq, 0, cmd.TraceID, uint64(e.Count), 0)
		}
	}
	// Staging pointers are routed to their owning device by the ordinal tag
	// every DevPtr carries; the flush placement already picked the device by
	// choosing which spec to send.
	inMem, errIn := d.api.Bytes(spec.DevIn)
	outMem, errOut := d.api.Bytes(spec.DevOut)
	if errIn != nil || errOut != nil {
		resp.Result = int32(cuda.ErrInvalidValue)
		return
	}

	// Validate and admit entries until staging capacity is exhausted;
	// rejected entries fail individually without sinking the launch. The
	// per-entry result and admission scratch reuse their capacity across
	// flushes (perRes must be re-zeroed: Success is the zero value).
	if cap(sc.perRes) < len(bt.Entries) {
		sc.perRes = make([]cuda.Result, len(bt.Entries))
	} else {
		sc.perRes = sc.perRes[:len(bt.Entries)]
		for i := range sc.perRes {
			sc.perRes[i] = cuda.Success
		}
	}
	perRes := sc.perRes
	admitted := sc.admitted[:0]
	items := 0
	for i, e := range bt.Entries {
		inBytes := int64(e.Count) * int64(4*spec.InWidth)
		outBytes := int64(e.Count) * int64(4*spec.OutWidth)
		switch {
		case e.Count == 0:
			perRes[i] = cuda.ErrInvalidValue
			continue
		case int64(items+int(e.Count))*int64(4*spec.InWidth) > int64(len(inMem)),
			int64(items+int(e.Count))*int64(4*spec.OutWidth) > int64(len(outMem)):
			perRes[i] = cuda.ErrOutOfMemory
			continue
		}
		if _, err := d.region.At(int64(e.InOff), inBytes); err != nil {
			perRes[i] = cuda.ErrInvalidValue
			continue
		}
		if _, err := d.region.At(int64(e.OutOff), outBytes); err != nil {
			perRes[i] = cuda.ErrInvalidValue
			continue
		}
		admitted = append(admitted, i)
		items += int(e.Count)
	}

	if items > 0 {
		// Gather: one aggregated host->device DMA for all admitted slices.
		cursor := 0
		for _, i := range admitted {
			e := bt.Entries[i]
			n := int(e.Count) * 4 * spec.InWidth
			view, _ := d.region.At(int64(e.InOff), int64(n))
			copy(inMem[cursor:cursor+n], view)
			cursor += n
		}
		d.api.ChargeTransferFor(spec.DevIn, int64(cursor))

		lt := d.tel.Tracer.Open(cmd.TraceID).StageTimer("launch", d.tr.Clock().Now())
		sc.launchArgs = [3]uint64{uint64(spec.DevIn), uint64(spec.DevOut), uint64(items)}
		launch := d.api.LaunchKernel(spec.Ctx, spec.Fn, sc.launchArgs[:])
		lt.End(d.tr.Clock().Now())
		if launch != cuda.Success {
			for _, i := range admitted {
				perRes[i] = launch
			}
		} else {
			// Scatter: one aggregated device->host DMA back to lakeShm.
			cursor = 0
			total := 0
			for _, i := range admitted {
				e := bt.Entries[i]
				n := int(e.Count) * 4 * spec.OutWidth
				view, _ := d.region.At(int64(e.OutOff), int64(n))
				copy(view, outMem[cursor:cursor+n])
				cursor += n
				total += n
			}
			d.api.ChargeTransferFor(spec.DevOut, int64(total))
		}
	}

	sc.admitted = admitted
	resp.Result = int32(cuda.Success)
	resp.Vals = resp.Vals[:0]
	for i, e := range bt.Entries {
		resp.Vals = append(resp.Vals, e.Seq, uint64(uint32(perRes[i])))
	}
}
