package remoting

import (
	"testing"

	"lakego/internal/cuda"
)

func TestRemotedStreamLifecycle(t *testing.T) {
	s := newStack(t)
	s.lib.CuInit()
	ctx, _ := s.lib.CuCtxCreate("async")
	stream, r := s.lib.CuStreamCreate(ctx)
	if r != cuda.Success {
		t.Fatalf("CuStreamCreate = %v", r)
	}
	if r := s.lib.CuStreamSynchronize(stream); r != cuda.Success {
		t.Fatalf("sync empty stream = %v", r)
	}
	if r := s.lib.CuStreamDestroy(stream); r != cuda.Success {
		t.Fatalf("destroy = %v", r)
	}
	if r := s.lib.CuStreamDestroy(stream); r != cuda.ErrInvalidHandle {
		t.Fatalf("double destroy = %v, want ErrInvalidHandle", r)
	}
	if _, r := s.lib.CuStreamCreate(999); r != cuda.ErrInvalidContext {
		t.Fatalf("stream on bad ctx = %v", r)
	}
}

func TestRemotedAsyncVecAdd(t *testing.T) {
	s := newStack(t)
	s.lib.CuInit()
	ctx, _ := s.lib.CuCtxCreate("async")
	mod, _ := s.lib.CuModuleLoad("m")
	fn, _ := s.lib.CuModuleGetFunction(mod, "vecadd")
	stream, _ := s.lib.CuStreamCreate(ctx)

	const n = 32
	in, _ := s.region.Alloc(4 * n)
	out, _ := s.region.Alloc(4 * n)
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i)
	}
	cuda.PutFloat32s(in.Bytes(), vals)
	da, _ := s.lib.CuMemAlloc(4 * n)
	dc, _ := s.lib.CuMemAlloc(4 * n)

	if r := s.lib.CuMemcpyHtoDShmAsync(da, in, 4*n, stream); r != cuda.Success {
		t.Fatalf("HtoD async = %v", r)
	}
	if r := s.lib.CuLaunchKernelAsync(ctx, fn, stream, []uint64{uint64(da), uint64(da), uint64(dc), n}); r != cuda.Success {
		t.Fatalf("launch async = %v", r)
	}
	if r := s.lib.CuMemcpyDtoHShmAsync(out, dc, 4*n, stream); r != cuda.Success {
		t.Fatalf("DtoH async = %v", r)
	}
	if r := s.lib.CuStreamSynchronize(stream); r != cuda.Success {
		t.Fatalf("sync = %v", r)
	}
	got, _ := cuda.Float32s(out.Bytes(), n)
	for i := range got {
		if got[i] != float32(2*i) {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], float32(2*i))
		}
	}
}

// Async device time accrues on the stream timeline, not the caller's clock:
// a large async copy must not advance virtual time until synchronize, and
// the sync sequence must cost at least as much device time as async.
func TestAsyncOverlapsDeviceTime(t *testing.T) {
	s := newStack(t)
	s.lib.CuInit()
	ctx, _ := s.lib.CuCtxCreate("async")
	stream, _ := s.lib.CuStreamCreate(ctx)
	const n = 768 << 10 // ~65µs of PCIe time
	buf, err := s.region.Alloc(n)
	if err != nil {
		t.Fatal(err)
	}
	dp, _ := s.lib.CuMemAlloc(n)

	before := s.clock.Now()
	if r := s.lib.CuMemcpyHtoDShmAsync(dp, buf, n, stream); r != cuda.Success {
		t.Fatal(r)
	}
	afterEnqueue := s.clock.Now() - before
	// Only the command round trip is charged at enqueue, not the copy.
	if afterEnqueue > 40*1000 { // 40µs
		t.Fatalf("async enqueue advanced clock by %v, want channel cost only", afterEnqueue)
	}
	s.lib.CuStreamSynchronize(stream)
	total := s.clock.Now() - before
	if total < 90*1000 { // enqueue roundtrip + ~65µs transfer
		t.Fatalf("after sync only %v elapsed, transfer time lost", total)
	}
}

func TestAsyncErrorPaths(t *testing.T) {
	s := newStack(t)
	s.lib.CuInit()
	ctx, _ := s.lib.CuCtxCreate("a")
	stream, _ := s.lib.CuStreamCreate(ctx)
	buf, _ := s.region.Alloc(64)
	if r := s.lib.CuMemcpyHtoDShmAsync(1, buf, 128, stream); r != cuda.ErrInvalidValue {
		t.Fatalf("oversized async copy = %v", r)
	}
	if r := s.lib.CuMemcpyHtoDShmAsync(1, buf, 64, 12345); r != cuda.ErrInvalidHandle {
		t.Fatalf("bad stream = %v", r)
	}
	if r := s.lib.CuLaunchKernelAsync(ctx, 999, stream, nil); r != cuda.ErrInvalidHandle {
		t.Fatalf("bad fn = %v", r)
	}
	if r := s.lib.CuStreamSynchronize(777); r != cuda.ErrInvalidHandle {
		t.Fatalf("sync bad stream = %v", r)
	}
}

func TestRemotedMemGetInfo(t *testing.T) {
	s := newStack(t)
	s.lib.CuInit()
	free0, total, r := s.lib.CuMemGetInfo()
	if r != cuda.Success || total <= 0 || free0 != total {
		t.Fatalf("MemGetInfo = %d/%d, %v", free0, total, r)
	}
	s.lib.CuMemAlloc(1 << 20)
	free1, _, _ := s.lib.CuMemGetInfo()
	if free1 != free0-(1<<20) {
		t.Fatalf("free after alloc = %d, want %d", free1, free0-(1<<20))
	}
}
