// Package healthplane is LAKE's live health surface: it tails the flight
// recorder's rings without disturbing the zero-allocation emit path, folds
// the events and telemetry-histogram deltas into rolling multi-window
// per-stage/per-shard latency percentiles and SRE-style error-budget burn
// rates, and — when a burn threshold trips, a shard stalls, or a model is
// demoted for drift — captures a black-box incident bundle (flight dump +
// merged telemetry snapshot + model registry state) into a bounded ring
// served at /incidents.json. The paper's evaluation answers "where did the
// time go?" offline; this package answers it while the fleet is serving.
//
// The plane sits entirely on the read side: nothing on the call path knows
// it exists. All ingestion happens in Poll, which the laked HTTP handlers
// (and tests) drive explicitly — deterministic under the virtual clock,
// no background goroutine to leak.
package healthplane

import (
	"sync"
	"sync/atomic"
	"time"

	"lakego/internal/flightrec"
	"lakego/internal/lifecycle"
	"lakego/internal/telemetry"
)

// Config tunes the plane. Zero values take the defaults below.
type Config struct {
	// Tick is the virtual-time bucketing granularity; the three rolling
	// windows are 1, ShortTicks and LongTicks ticks (1s/30s/5m by default).
	// Micro-scale simulations (lakeload, tests) shrink Tick to match their
	// compressed virtual timelines.
	Tick       time.Duration
	ShortTicks int
	LongTicks  int
	// FastBurn and SlowBurn are the burn-rate alert thresholds (SRE
	// workbook: 14.4 pages immediately, 6 pages within hours).
	FastBurn float64
	SlowBurn float64
	// Objectives defaults to DefaultObjectives.
	Objectives []Objective
	// MaxIncidents bounds the retained incident ring.
	MaxIncidents int
	// StallPolls is how many consecutive Polls a shard may show outstanding
	// work with no completion progress before the watchdog trips.
	StallPolls int
	// Version is surfaced on /healthz and /statusz.
	Version string
}

func (c *Config) fillDefaults() {
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.ShortTicks <= 0 {
		c.ShortTicks = 30
	}
	if c.LongTicks <= 0 {
		c.LongTicks = 300
	}
	if c.LongTicks < c.ShortTicks {
		c.LongTicks = c.ShortTicks
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 14.4
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 6
	}
	if len(c.Objectives) == 0 {
		c.Objectives = DefaultObjectives()
	}
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = 8
	}
	if c.StallPolls <= 0 {
		c.StallPolls = 3
	}
	if c.Version == "" {
		c.Version = "dev"
	}
}

// ShardHealth is one shard's liveness as seen by the readiness probe and
// the stall watchdog.
type ShardHealth struct {
	Ordinal     int    `json:"ordinal"`
	State       string `json:"state"`
	Ready       bool   `json:"ready"`
	Outstanding int64  `json:"outstanding"`
	Handled     int64  `json:"handled"`
}

type stallState struct {
	lastHandled int64
	polls       int
	tripped     bool
}

// Plane is the health plane for one runtime or fleet. Wire it with the
// Set* methods (core.Runtime.NewHealthPlane and fleet.Fleet.NewHealthPlane
// do), then drive it with Poll. All methods are safe for concurrent use.
type Plane struct {
	cfg    Config
	bounds []int64

	wallStart time.Time

	mu          sync.Mutex
	rec         *flightrec.Recorder
	cursor      flightrec.TailCursor
	tailBuf     []flightrec.Event
	tailSkipped uint64
	now         func() time.Duration
	snapFn      func() telemetry.Snapshot
	prevCum     map[string][]int64
	shardProbe  func() []ShardHealth
	modelsFn    func() []*lifecycle.Manager
	prevDemote  map[string]uint64
	prevFall    map[string]bool
	hooked      map[*lifecycle.Manager]bool
	stages      map[string]*stageSeries
	objs        []*objState
	stalls      map[int]*stallState
	incidents   []*Incident
	incidentSeq int
	polls       int64

	// demotePing is flipped by the lifecycle demotion hook (which runs
	// under the manager's mutex and must not call back into the plane); the
	// next Poll consumes it. Purely a freshness signal — capture itself is
	// driven by the demotion-counter delta, so a hook-less manager attached
	// late is still caught.
	demotePing atomic.Bool
}

// New builds a plane; wire sources with the Set* methods before Poll.
func New(cfg Config) *Plane {
	cfg.fillDefaults()
	p := &Plane{
		cfg:        cfg,
		bounds:     telemetry.DefaultLatencyBuckets(),
		wallStart:  time.Now(),
		tailBuf:    make([]flightrec.Event, 4096),
		prevCum:    map[string][]int64{},
		prevDemote: map[string]uint64{},
		prevFall:   map[string]bool{},
		hooked:     map[*lifecycle.Manager]bool{},
		stages:     map[string]*stageSeries{},
		stalls:     map[int]*stallState{},
	}
	for _, o := range cfg.Objectives {
		p.objs = append(p.objs, &objState{obj: o, ring: make([]objTick, cfg.LongTicks)})
	}
	return p
}

// SetRecorder attaches the flight recorder the plane tails and dumps.
func (p *Plane) SetRecorder(rec *flightrec.Recorder) {
	p.mu.Lock()
	p.rec = rec
	p.mu.Unlock()
}

// SetClock installs the virtual-time source (runtime clock or fleet
// VirtualElapsed) that positions ticks.
func (p *Plane) SetClock(now func() time.Duration) {
	p.mu.Lock()
	p.now = now
	p.mu.Unlock()
}

// SetTelemetrySource installs the snapshot function whose cumulative
// histogram deltas feed the histogram-derived stages and whose output
// rides incident bundles.
func (p *Plane) SetTelemetrySource(f func() telemetry.Snapshot) {
	p.mu.Lock()
	p.snapFn = f
	p.mu.Unlock()
}

// SetShardProbe installs the per-shard liveness probe behind /readyz and
// the stall watchdog.
func (p *Plane) SetShardProbe(f func() []ShardHealth) {
	p.mu.Lock()
	p.shardProbe = f
	p.mu.Unlock()
}

// SetModelSource installs the lifecycle managers feeding /models.json, the
// SLO models section, and drift-demotion incident capture. The function is
// re-invoked each Poll, so managers created after the plane are picked up
// (and get the demotion hook installed on first sight).
func (p *Plane) SetModelSource(f func() []*lifecycle.Manager) {
	p.mu.Lock()
	p.modelsFn = f
	p.mu.Unlock()
}

func (p *Plane) vnow() time.Duration {
	if p.now == nil {
		return 0
	}
	return p.now()
}

// UptimeVNS returns virtual nanoseconds since the clock started.
func (p *Plane) UptimeVNS() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.vnow())
}

// UptimeSeconds returns wall seconds since the plane was built.
func (p *Plane) UptimeSeconds() int64 {
	return int64(time.Since(p.wallStart) / time.Second)
}

// Poll ingests everything new since the last call — tailed flight events,
// telemetry histogram deltas, shard liveness, model lifecycle state —
// re-evaluates burn-rate alerts and the stall watchdog, and captures
// incident bundles for any rising edge. Returns the incidents captured by
// this call (usually none).
func (p *Plane) Poll() []*Incident {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.polls++
	p.demotePing.Store(false)
	for _, m := range p.managersLocked() {
		if !p.hooked[m] {
			p.hooked[m] = true
			m.SetDemotionHook(func(string, bool) { p.demotePing.Store(true) })
		}
	}
	tick := int64(p.vnow() / p.cfg.Tick)

	p.ingestTailLocked()
	p.ingestHistogramsLocked(tick)

	var captured []*Incident
	for _, o := range p.evaluate(tick) {
		captured = append(captured, p.captureLocked(o.severity,
			"objective "+o.obj.Name+" ("+o.obj.Stage+") burning error budget", o.obj.Name))
	}
	captured = append(captured, p.watchdogLocked()...)
	captured = append(captured, p.demotionsLocked()...)
	return captured
}

// ingestTailLocked drains the recorder rings into the engine.
func (p *Plane) ingestTailLocked() {
	if p.rec == nil {
		return
	}
	for {
		n, next, skipped := p.rec.TailInto(p.cursor, p.tailBuf)
		p.cursor = next
		p.tailSkipped += skipped
		for _, e := range p.tailBuf[:n] {
			p.ingestEventLocked(e)
		}
		if n < len(p.tailBuf) {
			return
		}
	}
}

func (p *Plane) ingestEventLocked(e flightrec.Event) {
	tick := int64(e.VTime / p.cfg.Tick)
	switch e.Kind {
	case flightrec.EvChannel:
		p.sample(StageBoundary, e.Shard, int64(e.Arg0), tick, 1)
	case flightrec.EvExec:
		p.sample(StageGPUExec, e.Shard, int64(e.Arg0), tick, 1)
		p.sample(StageGPUQueue, e.Shard, int64(e.Arg1), tick, 1)
	case flightrec.EvCopy:
		p.sample(StageCopy, e.Shard, int64(e.Arg1), tick, 1)
	case flightrec.EvCallEnd:
		if e.Arg1 != 0 { // non-Success result burns the call budget outright
			p.fail(StageCall, tick, 1)
		}
	case flightrec.EvQueueFull:
		p.fail(StageBoundary, tick, 1)
	}
}

// ingestHistogramsLocked turns cumulative-bucket deltas of the mapped
// latency families into engine samples valued at the bucket upper bound,
// attributed to the poll's current tick.
func (p *Plane) ingestHistogramsLocked(tick int64) {
	if p.snapFn == nil {
		return
	}
	snap := p.snapFn()
	for name, hs := range snap.Histograms {
		family, labels := splitSeries(name)
		stage, ok := histStages[family]
		if !ok {
			continue
		}
		shard := shardFromLabels(labels)
		cum := make([]int64, len(hs.Buckets))
		for i, b := range hs.Buckets {
			cum[i] = b.Cumulative
		}
		prev := p.prevCum[name]
		var prevAt int64
		for i, b := range hs.Buckets {
			// Per-bucket (non-cumulative) delta since the previous poll.
			cur := b.Cumulative - prevAt
			prevAt = b.Cumulative
			if prev != nil {
				var prevPrev int64
				if i > 0 {
					prevPrev = prev[i-1]
				}
				cur -= prev[i] - prevPrev
			}
			if cur <= 0 {
				continue
			}
			lat := int64(0)
			if i < len(p.bounds) {
				lat = p.bounds[i]
			} else if len(p.bounds) > 0 {
				lat = 2 * p.bounds[len(p.bounds)-1] // +Inf bucket: over budget for any objective
			}
			p.sample(stage, shard, lat, tick, cur)
		}
		p.prevCum[name] = cum
	}
}

// splitSeries separates `family{labels}` (mirrors telemetry.splitName,
// unexported there).
func splitSeries(name string) (family, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i], name[i:]
		}
	}
	return name, ""
}

// shardFromLabels extracts a shard="N" pair; 0 when absent.
func shardFromLabels(labels string) uint16 {
	const key = `shard="`
	i := indexOf(labels, key)
	if i < 0 {
		return 0
	}
	var n uint16
	for j := i + len(key); j < len(labels) && labels[j] >= '0' && labels[j] <= '9'; j++ {
		n = n*10 + uint16(labels[j]-'0')
	}
	return n
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// watchdogLocked trips when a shard holds outstanding work across
// StallPolls consecutive polls without completing anything — the
// completion-progress stall a dead daemon or wedged ring produces.
func (p *Plane) watchdogLocked() []*Incident {
	if p.shardProbe == nil {
		return nil
	}
	var captured []*Incident
	for _, sh := range p.shardProbe() {
		st, ok := p.stalls[sh.Ordinal]
		if !ok {
			st = &stallState{lastHandled: sh.Handled}
			p.stalls[sh.Ordinal] = st
			continue
		}
		if sh.Outstanding > 0 && sh.Handled == st.lastHandled {
			st.polls++
			if st.polls >= p.cfg.StallPolls && !st.tripped {
				st.tripped = true
				captured = append(captured, p.captureLocked("watchdog-stall",
					"shard "+shardKey(uint16(sh.Ordinal))+" has outstanding work with no completion progress", ""))
			}
		} else {
			st.polls = 0
			st.tripped = false
		}
		st.lastHandled = sh.Handled
	}
	return captured
}

// demotionsLocked captures an incident when a model's demotion count rises
// or it newly enters heuristic fallback since the previous poll.
func (p *Plane) demotionsLocked() []*Incident {
	var captured []*Incident
	for _, m := range p.managersLocked() {
		st := m.Stats()
		model := m.Model()
		if prev, ok := p.prevDemote[model]; ok && st.Demotions > prev {
			captured = append(captured, p.captureLocked("drift-demotion",
				"model "+model+" demoted for drift (serving seq now "+utoa(st.ServingSeq)+")", ""))
		} else if fell := st.Fallback && !p.prevFall[model]; fell && ok {
			captured = append(captured, p.captureLocked("drift-demotion",
				"model "+model+" exhausted versions, routing on heuristic fallback", ""))
		}
		p.prevDemote[model] = st.Demotions
		p.prevFall[model] = st.Fallback
	}
	return captured
}

func (p *Plane) managersLocked() []*lifecycle.Manager {
	if p.modelsFn == nil {
		return nil
	}
	return p.modelsFn()
}

// modelStatus renders the SLO models section. Callers hold p.mu.
func (p *Plane) modelStatus() []ModelStatus {
	var out []ModelStatus
	for _, m := range p.managersLocked() {
		st := m.Stats()
		out = append(out, ModelStatus{
			Model:        m.Model(),
			ServingSeq:   st.ServingSeq,
			Versions:     st.Versions,
			Healthy:      m.Healthy(),
			Fallback:     st.Fallback,
			Swaps:        st.Swaps,
			Demotions:    st.Demotions,
			DriftAlarms:  st.DriftAlarms,
			LiveAccuracy: st.LiveAccuracy,
			Baseline:     st.Baseline,
		})
	}
	return out
}

// SLO polls and returns the current snapshot.
func (p *Plane) SLO() *SLOSnapshot {
	p.Poll()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sloLocked(int64(p.vnow() / p.cfg.Tick))
}

// Ready reports whether every shard is serving, with the per-shard detail.
// A plane without a probe is trivially ready (single-runtime laked without
// a supervisor).
func (p *Plane) Ready() (bool, []ShardHealth) {
	p.mu.Lock()
	probe := p.shardProbe
	p.mu.Unlock()
	if probe == nil {
		return true, nil
	}
	shards := probe()
	ready := true
	for _, sh := range shards {
		if !sh.Ready {
			ready = false
		}
	}
	return ready, shards
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
