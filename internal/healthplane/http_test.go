package healthplane

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lakego/internal/flightrec"
	"lakego/internal/lifecycle"
	"lakego/internal/nn"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

// testPlane wires a plane to a live recorder, registry, model and probe —
// the shape laked serves.
func testPlane(t *testing.T) (*Plane, *flightrec.Recorder, *telemetry.Registry) {
	t.Helper()
	clock := vtime.New()
	rec := flightrec.New(clock, 256)
	rec.SetEnabled(true)
	reg := telemetry.NewRegistry()
	m, err := lifecycle.NewManager(clock, lifecycle.DefaultConfig("pred"), nn.New(1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Tick: time.Millisecond, Version: "test"})
	p.SetClock(clock.Now)
	p.SetRecorder(rec)
	p.SetTelemetrySource(reg.Snapshot)
	p.SetModelSource(func() []*lifecycle.Manager { return []*lifecycle.Manager{m} })
	p.SetShardProbe(func() []ShardHealth {
		return []ShardHealth{{Ordinal: 0, State: "Active", Ready: true, Handled: 1}}
	})
	return p, rec, reg
}

func get(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, []byte(body.String())
}

func TestHTTPEndpoints(t *testing.T) {
	p, rec, _ := testPlane(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// /healthz is pure liveness.
	code, body := get(t, srv, "/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	var hz map[string]interface{}
	if err := json.Unmarshal(body, &hz); err != nil || hz["status"] != "ok" || hz["version"] != "test" {
		t.Fatalf("/healthz body = %s (%v)", body, err)
	}

	// /readyz reflects the probe.
	code, body = get(t, srv, "/readyz")
	if code != 200 || !strings.Contains(string(body), `"ready": true`) {
		t.Fatalf("/readyz = %d %s", code, body)
	}

	// /statusz is the text one-pager.
	code, body = get(t, srv, "/statusz")
	if code != 200 || !strings.Contains(string(body), "objectives") || !strings.Contains(string(body), "model pred") {
		t.Fatalf("/statusz = %d %s", code, body)
	}

	// /slo.json decodes into the snapshot shape with the default objectives.
	code, body = get(t, srv, "/slo.json")
	if code != 200 {
		t.Fatalf("/slo.json = %d", code)
	}
	var slo SLOSnapshot
	if err := json.Unmarshal(body, &slo); err != nil {
		t.Fatalf("/slo.json decode: %v", err)
	}
	if len(slo.Objectives) != 2 || len(slo.Objectives[0].Windows) != 3 {
		t.Fatalf("/slo.json objectives = %+v", slo.Objectives)
	}
	if len(slo.Models) != 1 || slo.Models[0].Model != "pred" {
		t.Fatalf("/slo.json models = %+v", slo.Models)
	}

	// /incidents.json is an array even when empty.
	code, body = get(t, srv, "/incidents.json")
	if code != 200 || !strings.HasPrefix(strings.TrimSpace(string(body)), "[") {
		t.Fatalf("/incidents.json = %d %s", code, body)
	}

	// /models.json carries the registry in laked's shape.
	code, body = get(t, srv, "/models.json")
	if code != 200 || !strings.Contains(string(body), `"pred"`) {
		t.Fatalf("/models.json = %d %s", code, body)
	}

	rec.Emit(flightrec.DomainBoundary, flightrec.EvChannel, 0, 1, 0, 1000, 64, 0)
	rec.Emit(flightrec.DomainBoundary, flightrec.EvChannel, 0, 2, 0, 2000, 64, 0)
}

func TestHTTPTailCursorFlow(t *testing.T) {
	p, rec, _ := testPlane(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	rec.Emit(flightrec.DomainBoundary, flightrec.EvChannel, 0, 1, 0, 1000, 64, 0)
	rec.Emit(flightrec.DomainGPU, flightrec.EvExec, 0, 2, 0, 500, 50, 0)

	code, body := get(t, srv, "/flightrec.tail")
	if code != 200 {
		t.Fatalf("/flightrec.tail = %d", code)
	}
	var tail struct {
		Cursor  string `json:"cursor"`
		Skipped uint64 `json:"skipped"`
		Events  []struct {
			Domain string `json:"domain"`
			Kind   string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Events) != 2 || tail.Skipped != 0 {
		t.Fatalf("tail = %+v", tail)
	}

	// Resuming from the returned cursor sees only what came after.
	rec.Emit(flightrec.DomainBoundary, flightrec.EvChannel, 0, 3, 0, 3000, 64, 0)
	code, body = get(t, srv, "/flightrec.tail?cursor="+tail.Cursor+"&max=10")
	if code != 200 {
		t.Fatalf("resumed tail = %d", code)
	}
	if err := json.Unmarshal(body, &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Events) != 1 {
		t.Fatalf("resumed tail returned %d events, want 1", len(tail.Events))
	}

	// A malformed cursor is a client error, not a panic.
	if code, _ = get(t, srv, "/flightrec.tail?cursor=garbage"); code != 400 {
		t.Fatalf("bad cursor = %d, want 400", code)
	}
	if code, _ = get(t, srv, "/flightrec.tail?max=zap"); code != 400 {
		t.Fatalf("bad max = %d, want 400", code)
	}
}

// TestHTTPDumpOnDemand pins the on-demand dump contract: /flightrec.dump
// and /flightrec.json answer 200 with a live Snapshot("http") even when no
// automatic dump has fired, and ?last=1 serves the retained trigger dump
// (404 until one exists).
func TestHTTPDumpOnDemand(t *testing.T) {
	p, rec, _ := testPlane(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	rec.Emit(flightrec.DomainBoundary, flightrec.EvChannel, 0, 1, 0, 1000, 64, 0)

	code, body := get(t, srv, "/flightrec.dump")
	if code != 200 {
		t.Fatalf("/flightrec.dump = %d, want on-demand 200", code)
	}
	d, err := flightrec.ReadDump(body)
	if err != nil || d.TotalEvents() != 1 {
		t.Fatalf("on-demand dump: %v, events %v", err, d)
	}
	if d.Reason != "http" {
		t.Fatalf("on-demand dump reason = %q", d.Reason)
	}

	code, body = get(t, srv, "/flightrec.json")
	if code != 200 {
		t.Fatalf("/flightrec.json = %d", code)
	}
	var jd flightrec.Dump
	if err := json.Unmarshal(body, &jd); err != nil {
		t.Fatalf("/flightrec.json decode: %v", err)
	}

	// No automatic dump yet: ?last=1 is a 404, not an empty 200.
	if code, _ = get(t, srv, "/flightrec.dump?last=1"); code != 404 {
		t.Fatalf("?last=1 with no dump = %d, want 404", code)
	}
	rec.TriggerDump("test trigger")
	code, body = get(t, srv, "/flightrec.dump?last=1")
	if code != 200 {
		t.Fatalf("?last=1 after trigger = %d", code)
	}
	if d, err = flightrec.ReadDump(body); err != nil || d.Reason != "test trigger" {
		t.Fatalf("retained dump reason = %v %q", err, d.Reason)
	}
}

func TestHTTPReadyz503(t *testing.T) {
	p := New(Config{})
	p.SetShardProbe(func() []ShardHealth {
		return []ShardHealth{
			{Ordinal: 0, State: "Active", Ready: true},
			{Ordinal: 1, State: "Draining", Ready: false},
		}
	})
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	code, body := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with unready shard = %d, want 503", code)
	}
	if !strings.Contains(string(body), "Draining") {
		t.Fatalf("/readyz body lacks shard detail: %s", body)
	}

	// No probe wired: trivially ready.
	bare := httptest.NewServer(New(Config{}).Handler())
	defer bare.Close()
	if code, _ := get(t, bare, "/readyz"); code != 200 {
		t.Fatalf("probe-less /readyz = %d, want 200", code)
	}
}
