package healthplane

import (
	"time"

	"lakego/internal/flightrec"
	"lakego/internal/lifecycle"
	"lakego/internal/telemetry"
)

// ModelVersionState is one registry version inside an incident bundle,
// mirroring laked's /models.json shape so offline tooling reads both.
type ModelVersionState struct {
	Seq     uint64 `json:"seq"`
	Hash    string `json:"hash"`
	Note    string `json:"note"`
	Samples int    `json:"samples"`
	Parent  uint64 `json:"parent,omitempty"`
	Serving bool   `json:"serving,omitempty"`
}

// ModelRegistryState is one model's full registry inside a bundle.
type ModelRegistryState struct {
	Model    string              `json:"model"`
	Stats    lifecycle.Stats     `json:"stats"`
	Versions []ModelVersionState `json:"versions"`
}

// Incident is one black-box capture: everything an operator needs to
// diagnose the anomaly after the fact, bundled at the moment it tripped.
type Incident struct {
	ID      int    `json:"id"`
	Trigger string `json:"trigger"` // fast-burn, slow-burn, watchdog-stall, drift-demotion
	Detail  string `json:"detail"`
	// Objective names the breached objective for burn triggers.
	Objective string        `json:"objective,omitempty"`
	VTime     time.Duration `json:"vtime_ns"`
	Wall      int64         `json:"wall_unix_ns"`
	// Dump is the flight-recorder black box at capture time.
	Dump *flightrec.Dump `json:"dump"`
	// Telemetry is the merged metrics snapshot at capture time.
	Telemetry telemetry.Snapshot `json:"telemetry"`
	// Models is the registry state of every attached lifecycle manager.
	Models []ModelRegistryState `json:"models,omitempty"`
	// SLO is the burn/percentile state that (for burn triggers) tripped.
	SLO *SLOSnapshot `json:"slo"`
}

// captureLocked bundles an incident and retains it in the bounded ring.
// The caller holds p.mu.
func (p *Plane) captureLocked(trigger, detail, objective string) *Incident {
	p.incidentSeq++
	inc := &Incident{
		ID:        p.incidentSeq,
		Trigger:   trigger,
		Detail:    detail,
		Objective: objective,
		VTime:     p.vnow(),
		Wall:      time.Now().UnixNano(),
		SLO:       p.sloLocked(int64(p.vnow() / p.cfg.Tick)),
	}
	if p.rec != nil {
		inc.Dump = p.rec.TriggerDump("healthplane: " + trigger + ": " + detail)
	}
	if p.snapFn != nil {
		inc.Telemetry = p.snapFn()
	}
	inc.Models = p.registryStateLocked()
	p.incidents = append(p.incidents, inc)
	if len(p.incidents) > p.cfg.MaxIncidents {
		p.incidents = p.incidents[len(p.incidents)-p.cfg.MaxIncidents:]
	}
	return inc
}

// registryStateLocked snapshots every attached model registry.
func (p *Plane) registryStateLocked() []ModelRegistryState {
	var out []ModelRegistryState
	for _, m := range p.managersLocked() {
		serving := m.Serving()
		rs := ModelRegistryState{Model: m.Model(), Stats: m.Stats()}
		for _, v := range m.Registry().Versions() {
			rs.Versions = append(rs.Versions, ModelVersionState{
				Seq:     v.Seq,
				Hash:    hashHex(v.Hash),
				Note:    v.Meta.Note,
				Samples: v.Meta.Samples,
				Parent:  v.Meta.ParentSeq,
				Serving: v == serving,
			})
		}
		out = append(out, rs)
	}
	return out
}

func hashHex(h uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[h&0xf]
		h >>= 4
	}
	return string(b[:])
}

// Incidents returns the retained ring, oldest first.
func (p *Plane) Incidents() []*Incident {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Incident, len(p.incidents))
	copy(out, p.incidents)
	return out
}
