package healthplane

import (
	"strings"
	"testing"
	"time"

	"lakego/internal/flightrec"
	"lakego/internal/lifecycle"
	"lakego/internal/nn"
	"lakego/internal/telemetry"
	"lakego/internal/vtime"
)

func TestBurnRate(t *testing.T) {
	if got := burnRate(0, 0, 0.999); got != 0 {
		t.Fatalf("empty window burns %v, want 0", got)
	}
	// 1% failing against a 0.1% budget burns at 10x.
	if got := burnRate(990, 10, 0.999); got < 9.99 || got > 10.01 {
		t.Fatalf("burn = %v, want ~10", got)
	}
	// All-good traffic burns nothing.
	if got := burnRate(1000, 0, 0.999); got != 0 {
		t.Fatalf("all-good burn = %v, want 0", got)
	}
	// A 100% target must not divide by zero.
	if got := burnRate(0, 10, 1.0); got <= 0 {
		t.Fatalf("target=1 burn = %v, want positive", got)
	}
}

func TestWindowTallyAndRings(t *testing.T) {
	p := New(Config{Tick: time.Millisecond, ShortTicks: 3, LongTicks: 5,
		Objectives: []Objective{{Name: "o", Stage: StageCall, Budget: time.Millisecond, Target: 0.9}}})
	o := p.objs[0]
	p.sample(StageCall, 0, int64(500*time.Microsecond), 1, 10) // good
	p.sample(StageCall, 0, int64(2*time.Millisecond), 2, 4)    // bad
	p.fail(StageCall, 2, 1)

	if g, b := windowTally(o, 2, 1); g != 0 || b != 5 {
		t.Fatalf("tick-2 window = (%d,%d), want (0,5)", g, b)
	}
	if g, b := windowTally(o, 2, 3); g != 10 || b != 5 {
		t.Fatalf("3-tick window = (%d,%d), want (10,5)", g, b)
	}
	// Lapping the ring (LongTicks=5) retires old ticks from the tally.
	p.sample(StageCall, 0, int64(time.Microsecond), 7, 2)
	if g, b := windowTally(o, 7, 5); g != 2 || b != 0 {
		t.Fatalf("post-lap window = (%d,%d), want (2,0)", g, b)
	}
}

func TestEvaluateLatchAndRearm(t *testing.T) {
	p := New(Config{Tick: time.Millisecond, ShortTicks: 3, LongTicks: 6, FastBurn: 5, SlowBurn: 2,
		Objectives: []Objective{{Name: "o", Stage: StageCall, Budget: time.Microsecond, Target: 0.9}}})
	o := p.objs[0]

	// All-bad traffic burns at 1/(1-0.9) = 10 >= FastBurn in both windows.
	p.fail(StageCall, 1, 100)
	tripped := p.evaluate(1)
	if len(tripped) != 1 || tripped[0].severity != "fast-burn" {
		t.Fatalf("evaluate = %+v, want one fast-burn trip", tripped)
	}
	if !o.inAlert {
		t.Fatal("objective not latched after trip")
	}
	// The latch holds: re-evaluating the same burning state trips nothing.
	if again := p.evaluate(1); len(again) != 0 {
		t.Fatalf("latched objective re-tripped: %+v", again)
	}

	// A flood of good traffic clears both windows and re-arms the latch.
	p.sample(StageCall, 0, 0, 2, 10000)
	if cleared := p.evaluate(2); len(cleared) != 0 || o.inAlert {
		t.Fatalf("alert did not clear: tripped=%v inAlert=%v", cleared, o.inAlert)
	}

	// A second breach episode trips a second alert.
	p.fail(StageCall, 9, 100)
	if second := p.evaluate(9); len(second) != 1 {
		t.Fatalf("re-armed objective did not re-trip: %+v", second)
	}
}

func TestPollIngestsTailAndHistogramDeltas(t *testing.T) {
	clock := vtime.New()
	rec := flightrec.New(clock, 256)
	rec.SetEnabled(true)
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lake_lib_call_latency_ns", "t", telemetry.DefaultLatencyBuckets())

	p := New(Config{Tick: time.Millisecond})
	p.SetClock(clock.Now)
	p.SetRecorder(rec)
	p.SetTelemetrySource(reg.Snapshot)

	rec.Emit(flightrec.DomainBoundary, flightrec.EvChannel, 0, 1, 0, uint64(500*time.Microsecond), 64, 0)
	rec.Emit(flightrec.DomainGPU, flightrec.EvExec, 0, 2, 0, uint64(30*time.Microsecond), uint64(5*time.Microsecond), 0)
	rec.Emit(flightrec.DomainKernel, flightrec.EvCallEnd, 0, 3, 0, 7, 1, 0) // Result!=0: outright call failure
	for i := 0; i < 3; i++ {
		h.Observe(int64(2 * time.Millisecond))
	}

	incidents := p.Poll()
	// 1 failed + 3 good calls against the default 0.999 target burns at
	// (1/4)/0.001 = 250 in every window: the calls objective fast-burns and
	// captures exactly one incident on the rising edge.
	if len(incidents) != 1 {
		t.Fatalf("Poll captured %d incidents, want 1", len(incidents))
	}
	inc := incidents[0]
	if inc.Trigger != "fast-burn" || inc.Objective != "calls" {
		t.Fatalf("incident = %s/%s, want fast-burn/calls", inc.Trigger, inc.Objective)
	}
	if inc.Dump == nil || inc.Dump.TotalEvents() == 0 {
		t.Fatal("incident bundle missing flight dump")
	}
	if inc.Telemetry.Histograms == nil {
		t.Fatal("incident bundle missing telemetry snapshot")
	}
	if inc.SLO == nil {
		t.Fatal("incident bundle missing SLO state")
	}
	// The latch holds across polls: no second incident for the same episode.
	if again := p.Poll(); len(again) != 0 {
		t.Fatalf("latched breach re-captured: %d incidents", len(again))
	}

	snap := p.SLO()
	counts := map[string]int64{}
	for _, st := range snap.Stages {
		if st.Shard == "*" {
			counts[st.Stage] = st.Windows[0].Count
		}
	}
	if counts[StageBoundary] != 1 || counts[StageGPUExec] != 1 || counts[StageGPUQueue] != 1 {
		t.Fatalf("event stage counts = %v", counts)
	}
	// 3 histogram observations ingested once, as deltas — not re-counted on
	// the second and third polls.
	if counts[StageCall] != 3 {
		t.Fatalf("call stage count = %d, want 3 (delta ingestion)", counts[StageCall])
	}
	if snap.Skipped != 0 {
		t.Fatalf("tail skipped %d events on an idle ring", snap.Skipped)
	}

	// One more observation arrives: exactly one more sample lands.
	h.Observe(int64(2 * time.Millisecond))
	p.Poll()
	snap = p.SLO()
	for _, st := range snap.Stages {
		if st.Shard == "*" && st.Stage == StageCall && st.Windows[0].Count != 4 {
			t.Fatalf("call stage count = %d after delta, want 4", st.Windows[0].Count)
		}
	}
}

func TestWatchdogStall(t *testing.T) {
	sh := ShardHealth{Ordinal: 0, State: "Active", Ready: true, Outstanding: 5, Handled: 100}
	p := New(Config{StallPolls: 2})
	p.SetShardProbe(func() []ShardHealth { return []ShardHealth{sh} })

	if inc := p.Poll(); len(inc) != 0 { // first sight: baseline only
		t.Fatalf("baseline poll captured %d incidents", len(inc))
	}
	if inc := p.Poll(); len(inc) != 0 { // stall poll 1 of 2
		t.Fatalf("premature watchdog trip after 1 stalled poll")
	}
	inc := p.Poll() // stall poll 2 of 2: trip
	if len(inc) != 1 || inc[0].Trigger != "watchdog-stall" {
		t.Fatalf("watchdog = %+v, want one watchdog-stall", inc)
	}
	if more := p.Poll(); len(more) != 0 { // tripped latch holds
		t.Fatalf("stalled shard re-captured: %d", len(more))
	}

	sh.Handled = 150 // progress resumes: watchdog re-arms
	if inc := p.Poll(); len(inc) != 0 {
		t.Fatalf("progress poll captured %d incidents", len(inc))
	}
	sh.Outstanding, sh.Handled = 3, 150
	p.Poll() // stall poll 1 of 2
	if inc := p.Poll(); len(inc) != 1 {
		t.Fatalf("second stall episode captured %d incidents, want 1", len(inc))
	}
}

func TestDemotionFallbackCapture(t *testing.T) {
	cfg := lifecycle.DefaultConfig("pred")
	cfg.DriftWindow = 4
	cfg.DriftBadWindows = 1
	m, err := lifecycle.NewManager(vtime.New(), cfg, nn.New(1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}

	p := New(Config{})
	p.SetModelSource(func() []*lifecycle.Manager { return []*lifecycle.Manager{m} })
	if inc := p.Poll(); len(inc) != 0 { // baseline: installs hook, records stats
		t.Fatalf("baseline poll captured %d incidents", len(inc))
	}

	// First drift window pins a perfect baseline; the second is all-wrong,
	// and with no predecessor version the demotion lands in fallback.
	for i := 0; i < cfg.DriftWindow; i++ {
		m.Observe(lifecycle.Outcome{X: []float32{0}, Predicted: 1, Label: 1})
	}
	m.Pump()
	for i := 0; i < cfg.DriftWindow; i++ {
		m.Observe(lifecycle.Outcome{X: []float32{0}, Predicted: 1, Label: 0})
	}
	m.Pump()
	if m.Healthy() {
		t.Fatal("manager still healthy; drift scenario did not demote")
	}
	if !p.demotePing.Load() {
		t.Fatal("demotion hook did not ping the plane")
	}

	inc := p.Poll()
	if len(inc) != 1 || inc[0].Trigger != "drift-demotion" {
		t.Fatalf("demotion capture = %+v, want one drift-demotion", inc)
	}
	if !strings.Contains(inc[0].Detail, "pred") {
		t.Fatalf("incident detail %q does not name the model", inc[0].Detail)
	}
	if len(inc[0].Models) != 1 || !inc[0].Models[0].Stats.Fallback {
		t.Fatalf("incident registry state = %+v, want fallback pred", inc[0].Models)
	}
	if len(inc[0].Models[0].Versions) != 1 {
		t.Fatalf("registry versions = %d, want 1", len(inc[0].Models[0].Versions))
	}
	if more := p.Poll(); len(more) != 0 { // no re-capture while fallen back
		t.Fatalf("fallback re-captured: %d", len(more))
	}
}

func TestIncidentRingBound(t *testing.T) {
	p := New(Config{MaxIncidents: 2})
	p.mu.Lock()
	for i := 0; i < 5; i++ {
		p.captureLocked("test", "n", "")
	}
	p.mu.Unlock()
	incs := p.Incidents()
	if len(incs) != 2 {
		t.Fatalf("retained %d incidents, want 2", len(incs))
	}
	if incs[0].ID != 4 || incs[1].ID != 5 {
		t.Fatalf("retained IDs %d,%d, want 4,5 (newest)", incs[0].ID, incs[1].ID)
	}
}

func TestHistogramShardAttribution(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram(`lake_lib_call_latency_ns{shard="3"}`, "t", telemetry.DefaultLatencyBuckets())
	p := New(Config{})
	p.SetTelemetrySource(reg.Snapshot)
	h.Observe(int64(time.Millisecond))
	p.Poll()
	snap := p.SLO()
	var found bool
	for _, st := range snap.Stages {
		if st.Stage == StageCall && st.Shard == "3" && st.Windows[2].Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("shard-labeled histogram not attributed to shard 3: %+v", snap.Stages)
	}
}
