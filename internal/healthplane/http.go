package healthplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"lakego/internal/flightrec"
)

// Paths are the routes Handler serves; laked mounts each on its telemetry
// mux so the health plane and /metrics share one listener.
var Paths = []string{
	"/healthz",
	"/readyz",
	"/statusz",
	"/slo.json",
	"/incidents.json",
	"/flightrec.tail",
	"/flightrec.dump",
	"/flightrec.json",
	"/models.json",
}

// Handler returns the plane's HTTP surface. Every GET is read-only and
// drives at most one Poll; nothing here touches the hot path.
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", p.handleHealthz)
	mux.HandleFunc("/readyz", p.handleReadyz)
	mux.HandleFunc("/statusz", p.handleStatusz)
	mux.HandleFunc("/slo.json", p.handleSLO)
	mux.HandleFunc("/incidents.json", p.handleIncidents)
	mux.HandleFunc("/flightrec.tail", p.handleTail)
	mux.HandleFunc("/flightrec.dump", p.handleDump(false))
	mux.HandleFunc("/flightrec.json", p.handleDump(true))
	mux.HandleFunc("/models.json", p.handleModels)
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
	_, _ = w.Write([]byte("\n"))
}

// handleHealthz is pure liveness: the process answers, therefore 200.
func (p *Plane) handleHealthz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, map[string]interface{}{
		"status":         "ok",
		"version":        p.cfg.Version,
		"uptime_vns":     p.UptimeVNS(),
		"uptime_seconds": p.UptimeSeconds(),
	})
}

// handleReadyz is serving-readiness: 503 until every shard is Active with
// a healthy (or reattached) daemon.
func (p *Plane) handleReadyz(w http.ResponseWriter, req *http.Request) {
	ready, shards := p.Ready()
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, map[string]interface{}{"ready": ready, "shards": shards})
}

// handleStatusz is the human one-pager.
func (p *Plane) handleStatusz(w http.ResponseWriter, req *http.Request) {
	snap := p.SLO()
	ready, shards := p.Ready()
	p.mu.Lock()
	polls := p.polls
	skipped := p.tailSkipped
	incidents := len(p.incidents)
	p.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "lake health plane (version %s)\n", p.cfg.Version)
	fmt.Fprintf(w, "uptime: %d vns virtual, %ds wall; polls %d, tail skipped %d\n",
		p.UptimeVNS(), p.UptimeSeconds(), polls, skipped)
	fmt.Fprintf(w, "ready: %v (%d shards)\n", ready, len(shards))
	for _, sh := range shards {
		fmt.Fprintf(w, "  shard %d: %s ready=%v outstanding=%d handled=%d\n",
			sh.Ordinal, sh.State, sh.Ready, sh.Outstanding, sh.Handled)
	}
	fmt.Fprintf(w, "objectives (windows %s):\n", windowNames(p))
	for _, o := range snap.Objectives {
		alert := "ok"
		if o.InAlert {
			alert = "ALERT " + o.Severity
		}
		fmt.Fprintf(w, "  %-10s stage=%-11s target=%.4g budget=%dns %s", o.Name, o.Stage, o.Target, o.BudgetNS, alert)
		for _, ws := range o.Windows {
			fmt.Fprintf(w, "  [%s burn %.2f att %.4f]", ws.Name, ws.BurnRate, ws.Attainment)
		}
		fmt.Fprintln(w)
	}
	for _, m := range snap.Models {
		fmt.Fprintf(w, "model %s: serving seq %d of %d, healthy=%v fallback=%v swaps=%d demotions=%d drift=%d acc=%.3f\n",
			m.Model, m.ServingSeq, m.Versions, m.Healthy, m.Fallback, m.Swaps, m.Demotions, m.DriftAlarms, m.LiveAccuracy)
	}
	fmt.Fprintf(w, "incidents retained: %d (see /incidents.json)\n", incidents)
}

func windowNames(p *Plane) string {
	spec := p.windowSpec()
	return spec[0].name + "/" + spec[1].name + "/" + spec[2].name
}

func (p *Plane) handleSLO(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, p.SLO())
}

func (p *Plane) handleIncidents(w http.ResponseWriter, req *http.Request) {
	p.Poll()
	incs := p.Incidents()
	if incs == nil {
		incs = []*Incident{}
	}
	writeJSON(w, incs)
}

// handleTail serves /flightrec.tail?cursor=<opaque>&max=N: the events
// published since the cursor, the cursor to resume from, and the exact
// count the reader missed. Clients keep their own cursors — tailing never
// disturbs the plane's internal SLO cursor or other readers.
func (p *Plane) handleTail(w http.ResponseWriter, req *http.Request) {
	p.mu.Lock()
	rec := p.rec
	p.mu.Unlock()
	if rec == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	cur, err := flightrec.ParseTailCursor(req.URL.Query().Get("cursor"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	max := 0
	if s := req.URL.Query().Get("max"); s != "" {
		if max, err = strconv.Atoi(s); err != nil {
			http.Error(w, "bad max: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	events, next, skipped := rec.Tail(cur, max)
	type tailEvent struct {
		VTimeNS int64  `json:"vtime_ns"`
		Wall    int64  `json:"wall_unix_ns"`
		Domain  string `json:"domain"`
		Kind    string `json:"kind"`
		TraceID uint64 `json:"trace_id,omitempty"`
		Seq     uint64 `json:"seq,omitempty"`
		Shard   uint16 `json:"shard,omitempty"`
		Device  uint16 `json:"device,omitempty"`
		Arg0    uint64 `json:"a0,omitempty"`
		Arg1    uint64 `json:"a1,omitempty"`
		Arg2    uint64 `json:"a2,omitempty"`
	}
	out := struct {
		Cursor  string      `json:"cursor"`
		Skipped uint64      `json:"skipped"`
		Events  []tailEvent `json:"events"`
	}{Cursor: next.String(), Skipped: skipped, Events: make([]tailEvent, 0, len(events))}
	for _, e := range events {
		out.Events = append(out.Events, tailEvent{
			VTimeNS: int64(e.VTime), Wall: e.Wall,
			Domain: e.Domain.String(), Kind: e.Kind.String(),
			TraceID: e.TraceID, Seq: e.Seq, Shard: e.Shard, Device: e.Device,
			Arg0: e.Arg0, Arg1: e.Arg1, Arg2: e.Arg2,
		})
	}
	writeJSON(w, out)
}

// handleDump serves /flightrec.dump (binary) and /flightrec.json. The
// default is an on-demand Snapshot("http") — always 200 while the recorder
// runs, no crash required; ?last=1 returns the retained automatic dump
// (404 until one has fired).
func (p *Plane) handleDump(asJSON bool) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		p.mu.Lock()
		rec := p.rec
		p.mu.Unlock()
		if rec == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		var dump *flightrec.Dump
		if req.URL.Query().Get("last") != "" {
			if dump = rec.LastDump(); dump == nil {
				http.Error(w, "no automatic dump recorded", http.StatusNotFound)
				return
			}
		} else if dump = rec.Snapshot("http"); dump == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		if asJSON {
			b, err := dump.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(b)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(dump.Encode())
	}
}

// handleModels serves the registry state in laked's /models.json shape.
func (p *Plane) handleModels(w http.ResponseWriter, req *http.Request) {
	p.mu.Lock()
	states := p.registryStateLocked()
	p.mu.Unlock()
	out := map[string]interface{}{}
	for _, rs := range states {
		out[rs.Model] = map[string]interface{}{
			"stats":    rs.Stats,
			"versions": rs.Versions,
		}
	}
	writeJSON(w, out)
}
