package healthplane

import (
	"strings"
	"time"

	"lakego/internal/telemetry"
)

// Stage keys for the latency series the SLO engine tracks. Event-fed stages
// (boundary, gpu_exec, gpu_queue, copy) are attributed to the virtual tick
// the event was stamped in; histogram-fed stages (call, gpu_item, cpu_item,
// batch_queue) are derived from cumulative-histogram deltas between polls
// and land in the tick current at poll time.
const (
	StageCall       = "call"
	StageBoundary   = "boundary"
	StageGPUExec    = "gpu_exec"
	StageGPUQueue   = "gpu_queue"
	StageCopy       = "copy"
	StageGPUItem    = "gpu_item"
	StageCPUItem    = "cpu_item"
	StageBatchQueue = "batch_queue"
)

// histStages maps telemetry histogram families to engine stages.
var histStages = map[string]string{
	"lake_lib_call_latency_ns":     StageCall,
	"lake_batcher_queue_delay_ns":  StageBatchQueue,
	telemetry.MetricGPUItemLatency: StageGPUItem,
	telemetry.MetricCPUItemLatency: StageCPUItem,
}

// Objective is one latency SLO: samples of Stage faster than Budget are
// good, the rest (and stage errors) burn the error budget 1-Target.
type Objective struct {
	Name   string        `json:"name"`
	Stage  string        `json:"stage"`
	Budget time.Duration `json:"budget_ns"`
	Target float64       `json:"target"`
}

// DefaultObjectives covers the two ends of the remoted path: end-to-end
// call latency and the boundary crossing itself.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "calls", Stage: StageCall, Budget: 5 * time.Millisecond, Target: 0.999},
		{Name: "boundary", Stage: StageBoundary, Budget: time.Millisecond, Target: 0.99},
	}
}

// tickBucket is one virtual-time tick of one stage series: a non-cumulative
// latency histogram. Generation-checked: the ring index is tick%LongTicks
// and a stale tick number means the slot belongs to a lapped window and
// must be zeroed before reuse.
type tickBucket struct {
	tick   int64
	counts []int64 // len(bounds)+1, +Inf last
	total  int64
	sum    int64
}

// stageSeries is the latency history of one (stage, shard) pair over the
// last LongTicks virtual ticks.
type stageSeries struct {
	stage string
	shard uint16
	ring  []tickBucket
}

// objTick is one tick of one objective's good/bad tally.
type objTick struct {
	tick      int64
	good, bad int64
}

// objState is an objective plus its rolling budget tally and alert latch.
// One breach episode fires one incident: inAlert latches on the rising
// edge and re-arms only when both burn conditions clear.
type objState struct {
	obj      Objective
	ring     []objTick
	inAlert  bool
	severity string // "fast-burn" or "slow-burn" while in alert
}

func (p *Plane) series(stage string, shard uint16) *stageSeries {
	key := stage + "|" + shardKey(shard)
	s, ok := p.stages[key]
	if !ok {
		s = &stageSeries{stage: stage, shard: shard, ring: make([]tickBucket, p.cfg.LongTicks)}
		p.stages[key] = s
	}
	return s
}

func shardKey(shard uint16) string { return utoa(uint64(shard)) }

// slot returns the tick's bucket in the ring, zeroing a lapped slot.
func (p *Plane) slot(ring []tickBucket, tick int64) *tickBucket {
	b := &ring[tick%int64(len(ring))]
	// A zero-value slot has tick 0, which a real tick 0 must still claim —
	// hence the counts==nil check alongside the generation mismatch.
	if b.tick != tick || b.counts == nil {
		if b.counts == nil {
			b.counts = make([]int64, len(p.bounds)+1)
		} else {
			for i := range b.counts {
				b.counts[i] = 0
			}
		}
		b.tick = tick
		b.total = 0
		b.sum = 0
	}
	return b
}

func (p *Plane) objSlot(o *objState, tick int64) *objTick {
	t := &o.ring[tick%int64(len(o.ring))]
	if t.tick != tick {
		t.tick = tick
		t.good = 0
		t.bad = 0
	}
	return t
}

// sample records n observations of lat virtual-ns at stage/shard in tick,
// and charges every objective watching the stage.
func (p *Plane) sample(stage string, shard uint16, lat int64, tick int64, n int64) {
	if n <= 0 {
		return
	}
	s := p.series(stage, shard)
	b := p.slot(s.ring, tick)
	i := 0
	for i < len(p.bounds) && lat > p.bounds[i] {
		i++
	}
	b.counts[i] += n
	b.total += n
	b.sum += lat * n
	for _, o := range p.objs {
		if o.obj.Stage != stage {
			continue
		}
		t := p.objSlot(o, tick)
		if lat <= int64(o.obj.Budget) {
			t.good += n
		} else {
			t.bad += n
		}
	}
}

// fail charges n outright failures (errors, drops) to every objective
// watching the stage — a failed call burns budget at any latency.
func (p *Plane) fail(stage string, tick int64, n int64) {
	if n <= 0 {
		return
	}
	for _, o := range p.objs {
		if o.obj.Stage != stage {
			continue
		}
		p.objSlot(o, tick).bad += n
	}
}

// windowTally sums an objective's good/bad over the trailing w ticks ending
// at tick now.
func windowTally(o *objState, now int64, w int) (good, bad int64) {
	if w > len(o.ring) {
		w = len(o.ring)
	}
	for t := now - int64(w) + 1; t <= now; t++ {
		if t < 0 {
			continue
		}
		s := &o.ring[t%int64(len(o.ring))]
		if s.tick == t {
			good += s.good
			bad += s.bad
		}
	}
	return good, bad
}

// burnRate is the SRE-workbook burn rate: the fraction of requests failing
// the objective divided by the failure fraction the target budgets for. A
// burn of 1 exhausts the error budget exactly at the objective horizon;
// 14.4 exhausts a 30-day budget in 2 days. Windows with no traffic burn 0.
func burnRate(good, bad int64, target float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - target
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(total)) / budget
}

// evaluate updates every objective's burn state for the tick and returns
// newly tripped alerts (rising edges only — one per breach episode).
func (p *Plane) evaluate(now int64) []*objState {
	var tripped []*objState
	for _, o := range p.objs {
		g1, b1 := windowTally(o, now, 1)
		gs, bs := windowTally(o, now, p.cfg.ShortTicks)
		gl, bl := windowTally(o, now, p.cfg.LongTicks)
		burn1 := burnRate(g1, b1, o.obj.Target)
		burnS := burnRate(gs, bs, o.obj.Target)
		burnL := burnRate(gl, bl, o.obj.Target)
		// Two-window alerting: the long window proves sustained burn, the
		// short one proves it is still happening (no alerts on stale spikes).
		fast := burnS >= p.cfg.FastBurn && burn1 >= p.cfg.FastBurn
		slow := burnL >= p.cfg.SlowBurn && burnS >= p.cfg.SlowBurn
		switch {
		case (fast || slow) && !o.inAlert:
			o.inAlert = true
			if fast {
				o.severity = "fast-burn"
			} else {
				o.severity = "slow-burn"
			}
			tripped = append(tripped, o)
		case !fast && !slow && o.inAlert:
			o.inAlert = false
			o.severity = ""
		}
	}
	return tripped
}

// WindowStats is one trailing window of an objective's budget tally.
type WindowStats struct {
	Name       string  `json:"window"`
	Ticks      int     `json:"ticks"`
	Good       int64   `json:"good"`
	Bad        int64   `json:"bad"`
	Attainment float64 `json:"attainment"`
	BurnRate   float64 `json:"burn_rate"`
}

// ObjectiveStatus is one objective's live burn state.
type ObjectiveStatus struct {
	Name     string        `json:"name"`
	Stage    string        `json:"stage"`
	BudgetNS int64         `json:"budget_ns"`
	Target   float64       `json:"target"`
	Windows  []WindowStats `json:"windows"`
	InAlert  bool          `json:"in_alert"`
	Severity string        `json:"severity,omitempty"`
}

// LatencyWindow is one trailing window of one stage's latency distribution.
type LatencyWindow struct {
	Name  string `json:"window"`
	Count int64  `json:"count"`
	SumNS int64  `json:"sum_ns"`
	P50   int64  `json:"p50_ns"`
	P99   int64  `json:"p99_ns"`
	P999  int64  `json:"p999_ns"`
}

// StageStatus is one (stage, shard) latency series; Shard "*" aggregates
// all shards of the stage.
type StageStatus struct {
	Stage   string          `json:"stage"`
	Shard   string          `json:"shard"`
	Windows []LatencyWindow `json:"windows"`
}

// ModelStatus is one model's lifecycle health in the SLO view.
type ModelStatus struct {
	Model        string  `json:"model"`
	ServingSeq   uint64  `json:"serving_seq"`
	Versions     int     `json:"versions"`
	Healthy      bool    `json:"healthy"`
	Fallback     bool    `json:"fallback"`
	Swaps        uint64  `json:"swaps"`
	Demotions    uint64  `json:"demotions"`
	DriftAlarms  uint64  `json:"drift_alarms"`
	LiveAccuracy float64 `json:"live_accuracy"`
	Baseline     float64 `json:"baseline"`
}

// SLOSnapshot is the /slo.json payload.
type SLOSnapshot struct {
	VNowNS     int64             `json:"vnow_ns"`
	Tick       int64             `json:"tick"`
	TickNS     int64             `json:"tick_ns"`
	Skipped    uint64            `json:"tail_skipped"`
	Objectives []ObjectiveStatus `json:"objectives"`
	Stages     []StageStatus     `json:"stages"`
	Models     []ModelStatus     `json:"models,omitempty"`
	Incidents  int               `json:"incidents"`
}

// windowSpec returns the three trailing windows (1 tick, short, long) with
// human names derived from the configured tick.
func (p *Plane) windowSpec() [3]struct {
	name  string
	ticks int
} {
	return [3]struct {
		name  string
		ticks int
	}{
		{p.cfg.Tick.String(), 1},
		{(time.Duration(p.cfg.ShortTicks) * p.cfg.Tick).String(), p.cfg.ShortTicks},
		{(time.Duration(p.cfg.LongTicks) * p.cfg.Tick).String(), p.cfg.LongTicks},
	}
}

// sloLocked assembles the snapshot; the caller holds p.mu.
func (p *Plane) sloLocked(now int64) *SLOSnapshot {
	spec := p.windowSpec()
	snap := &SLOSnapshot{
		VNowNS:    int64(p.vnow()),
		Tick:      now,
		TickNS:    int64(p.cfg.Tick),
		Skipped:   p.tailSkipped,
		Incidents: len(p.incidents),
	}
	for _, o := range p.objs {
		st := ObjectiveStatus{
			Name:     o.obj.Name,
			Stage:    o.obj.Stage,
			BudgetNS: int64(o.obj.Budget),
			Target:   o.obj.Target,
			InAlert:  o.inAlert,
			Severity: o.severity,
		}
		for _, w := range spec {
			good, bad := windowTally(o, now, w.ticks)
			ws := WindowStats{
				Name:     w.name,
				Ticks:    w.ticks,
				Good:     good,
				Bad:      bad,
				BurnRate: burnRate(good, bad, o.obj.Target),
			}
			if total := good + bad; total > 0 {
				ws.Attainment = float64(good) / float64(total)
			}
			st.Windows = append(st.Windows, ws)
		}
		snap.Objectives = append(snap.Objectives, st)
	}
	snap.Stages = p.stageStatusLocked(now)
	snap.Models = p.modelStatus()
	return snap
}

// stageStatusLocked renders per-(stage,shard) windows plus a "*" aggregate
// per stage, in a stable order.
func (p *Plane) stageStatusLocked(now int64) []StageStatus {
	spec := p.windowSpec()
	type agg struct {
		counts [3][]int64
		total  [3]int64
		sum    [3]int64
	}
	perKey := map[string]*agg{}
	var order []string
	add := func(key string, wi int, b *tickBucket) {
		a, ok := perKey[key]
		if !ok {
			a = &agg{}
			for i := range a.counts {
				a.counts[i] = make([]int64, len(p.bounds)+1)
			}
			perKey[key] = a
			order = append(order, key)
		}
		for i, c := range b.counts {
			a.counts[wi][i] += c
		}
		a.total[wi] += b.total
		a.sum[wi] += b.sum
	}
	for _, key := range sortedStageKeys(p.stages) {
		s := p.stages[key]
		for wi, w := range spec {
			for t := now - int64(w.ticks) + 1; t <= now; t++ {
				if t < 0 {
					continue
				}
				b := &s.ring[t%int64(len(s.ring))]
				if b.tick != t || b.total == 0 {
					continue
				}
				add(s.stage+"|"+shardKey(s.shard), wi, b)
				add(s.stage+"|*", wi, b)
			}
		}
	}
	var out []StageStatus
	for _, key := range order {
		a := perKey[key]
		stage, shard, _ := strings.Cut(key, "|")
		st := StageStatus{Stage: stage, Shard: shard}
		for wi, w := range spec {
			st.Windows = append(st.Windows, LatencyWindow{
				Name:  w.name,
				Count: a.total[wi],
				SumNS: a.sum[wi],
				P50:   quantileFromBuckets(p.bounds, a.counts[wi], 0.50),
				P99:   quantileFromBuckets(p.bounds, a.counts[wi], 0.99),
				P999:  quantileFromBuckets(p.bounds, a.counts[wi], 0.999),
			})
		}
		out = append(out, st)
	}
	return out
}

func sortedStageKeys(m map[string]*stageSeries) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: the key space is a handful of stage|shard pairs.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// quantileFromBuckets mirrors telemetry's bucket-quantile estimate over a
// plain counts slice (the engine's tick buckets are not atomic histograms).
func quantileFromBuckets(bounds []int64, counts []int64, q float64) int64 {
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 || len(bounds) == 0 {
		return 0
	}
	target := int64(q*float64(n) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1]
		}
	}
	return bounds[len(bounds)-1]
}
