// Package mllb reproduces the load balancing workload (§7.3): MLLB's
// multi-layer perceptron for task-stealing decisions [Chen et al.], ported
// to CUDA and placed in a kernel module using LAKE.
//
// The model consumes the migration feature vectors of the sched simulator
// (can_migrate_task's inputs) and is trained on ground-truth labels the
// simulator produces. Figure 10 measures classification time for batches of
// tasks on the CPU versus through LAKE; Table 3 puts the crossover at 256
// inputs, which the calibrated kernel-space CPU cost reproduces ("Using a
// GPU is only profitable for batches larger than 128 inputs").
package mllb

import (
	"fmt"
	"time"

	"lakego/internal/core"
	"lakego/internal/nn"
	"lakego/internal/offload"
	"lakego/internal/policy"
	"lakego/internal/sched"
)

// InputWidth matches the sched feature vector.
const InputWidth = sched.VectorSize

// Sizes is the MLLB perceptron shape.
func Sizes() []int { return []int{InputWidth, 64, 2} }

// Kernel-space CPU cost: a ~1.2 kFLOP perceptron vectorizes to ~0.28 µs per
// decision plus per-invocation FPU bracketing, placing the Fig 10 crossover
// against the LAKE async path (~70 µs fixed) at batch 256.
const (
	cpuFixed   = 2 * time.Microsecond
	cpuPerItem = 280 * time.Nanosecond
)

// MaxBatch bounds one classification batch (Fig 10 sweeps to 1024).
const MaxBatch = 1024

// Balancer is the MLLB model wired through LAKE. It implements
// sched.Balancer for end-to-end scheduling runs and exposes batched
// classification for the Fig 10 sweep.
type Balancer struct {
	net    *nn.Network
	runner *offload.Runner
}

// New wraps a trained network (shape Sizes()) for runtime rt.
func New(rt *core.Runtime, net *nn.Network) (*Balancer, error) {
	got := net.Sizes()
	want := Sizes()
	if len(got) != len(want) || got[0] != want[0] || got[len(got)-1] != want[len(want)-1] {
		return nil, fmt.Errorf("mllb: network sizes %v, want %v", got, want)
	}
	runner, err := offload.NewRunner(rt, offload.Config{
		Name:         "mllb_nn",
		InputWidth:   InputWidth,
		OutputWidth:  2,
		MaxBatch:     MaxBatch,
		CPUFixed:     cpuFixed,
		CPUPerItem:   cpuPerItem,
		FlopsPerItem: net.Flops(),
		Forward:      net.Forward,
	})
	if err != nil {
		return nil, err
	}
	return &Balancer{net: net, runner: runner}, nil
}

// Net returns the underlying network.
func (b *Balancer) Net() *nn.Network { return b.net }

// Runner exposes the offload runner for sweeps.
func (b *Balancer) Runner() *offload.Runner { return b.runner }

// ShouldMigrate implements sched.Balancer with a single real inference.
func (b *Balancer) ShouldMigrate(f sched.Features) bool {
	return b.net.Predict(f.Vector()) == 1
}

// ClassifyCPU scores a batch of migration candidates on the CPU path.
func (b *Balancer) ClassifyCPU(batch [][]float32) ([]bool, time.Duration) {
	out, d := b.runner.RunCPU(batch)
	return argmax1(out), d
}

// ClassifyLAKE scores a batch through LAKE.
func (b *Balancer) ClassifyLAKE(batch [][]float32, sync bool) ([]bool, time.Duration, error) {
	out, d, err := b.runner.RunLAKE(batch, sync)
	if err != nil {
		return nil, 0, err
	}
	return argmax1(out), d, nil
}

// ClassifyAuto routes the batch through pol and scores on the decided
// path, falling back to the kernel CPU path when lakeD is unavailable —
// load-balancing decisions cannot wait out a daemon restart. The returned
// Decision is the path that ran.
func (b *Balancer) ClassifyAuto(batch [][]float32, pol policy.Func) ([]bool, policy.Decision, time.Duration, error) {
	out, dec, d, err := b.runner.RunAuto(batch, pol)
	if err != nil {
		return nil, dec, 0, err
	}
	return argmax1(out), dec, d, nil
}

func argmax1(out [][]float32) []bool {
	res := make([]bool, len(out))
	for i, y := range out {
		res[i] = y[1] > y[0]
	}
	return res
}

// TrainFromSim runs a skewed scheduling workload, harvests the simulator's
// labeled migration opportunities, and fits a fresh MLLB network. Returns
// the network and its training accuracy.
func TrainFromSim(seed int64, epochs int) (*nn.Network, float64, error) {
	cfg := sched.DefaultConfig()
	cfg.Seed = seed
	sim, err := sched.NewSim(cfg, sched.Heuristic{})
	if err != nil {
		return nil, 0, err
	}
	sim.SpawnRandom(400, time.Millisecond, 40*time.Millisecond)
	sim.Run(30 * time.Second)
	samples := sim.Samples()
	if len(samples) == 0 {
		return nil, 0, fmt.Errorf("mllb: simulator produced no samples")
	}
	xs := make([][]float32, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		xs[i] = s.Features.Vector()
		if s.Beneficial {
			labels[i] = 1
		}
	}
	net := nn.New(seed, Sizes()...)
	for e := 0; e < epochs; e++ {
		for at := 0; at < len(xs); at += 64 {
			end := at + 64
			if end > len(xs) {
				end = len(xs)
			}
			if _, err := net.TrainBatch(xs[at:end], labels[at:end], 0.05); err != nil {
				return nil, 0, err
			}
		}
	}
	return net, net.Accuracy(xs, labels), nil
}

// Sweep produces the Fig 10 series.
func Sweep(b *Balancer, batches []int) ([]offload.SweepPoint, error) {
	return offload.Sweep(b.runner, batches, func(i int) []float32 {
		f := sched.Features{
			SrcQueueLen: i%20 + 1, DstQueueLen: i % 5,
			SrcLoad: float64(i%20 + 1), DstLoad: float64(i % 5),
			TaskRemaining: time.Duration(i%50) * time.Millisecond,
			TaskWeight:    1 + i%3,
			CacheHot:      i%2 == 0,
			SameNode:      i%3 == 0,
			Imbalance:     float64(i%10) / 10,
		}
		return f.Vector()
	})
}
