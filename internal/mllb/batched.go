package mllb

import (
	"lakego/internal/batcher"
)

// BatchModelName is the batcher model registered by EnableBatching.
const BatchModelName = "mllb_nn_batched"

// EnableBatching registers the balancer with the lakeD cross-client
// batcher: individual runqueues rarely accumulate the 256-input Fig 10
// crossover on their own, so per-core balancers coalesce their candidate
// sets into one launch.
func (b *Balancer) EnableBatching(bt *batcher.Batcher) error {
	return bt.RegisterModel(batcher.ModelConfig{
		Name:       BatchModelName,
		InputWidth: InputWidth, OutputWidth: 2,
		MaxBatch: MaxBatch,
		CPUFixed: cpuFixed, CPUPerItem: cpuPerItem,
		FlopsPerItem: b.net.Flops(),
		Forward:      b.net.Forward,
	})
}

// ClassifyBatched scores migration candidates through the cross-client
// batcher, bit-identical to ClassifyCPU / ClassifyLAKE.
func (b *Balancer) ClassifyBatched(c *batcher.Client, batch [][]float32) ([]bool, error) {
	out, err := c.Infer(BatchModelName, batch)
	if err != nil {
		return nil, err
	}
	return argmax1(out), nil
}
